// Package data is the real-corpus streaming pipeline of the reproduction:
// a trainable byte-level BPE tokenizer, a sharded corpus reader that never
// slurps the file, a seeded shuffle buffer, and a sequence packer emitting
// fixed-length micro-batches behind the same TrainBatch contract the
// synthetic path uses (internal/engine.Batcher).
//
// The design follows the corpus → tokenize → shuffle → pack → micro-batch
// shape of GPT-style data loaders. Determinism is a hard requirement
// throughout — the same (file, config, seed) triple yields the same batch
// stream on every rank of any world, which is what keeps simulated data
// parallelism bitwise-reproducible:
//
//   - BPE merges are selected by (count desc, pair asc) — no map-iteration
//     order leaks into the vocabulary.
//   - Documents are assigned to ranks by a pure function of (document
//     index, world size); see ShardOf.
//   - Shuffling is a bounded, seeded reservoir per shard stream.
//
// Memory stays bounded regardless of corpus size: the reader works in
// fixed-size chunks, documents are capped at MaxDocBytes, and the shuffle
// buffer holds a fixed number of tokenized documents. Steady-state batch
// production draws every token buffer from an internal/arena pool and
// performs no heap allocation.
package data

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
)

// EOT is the end-of-text token id, emitted between documents by the
// packer. It sits immediately after the 256 byte tokens, so BPE merge ids
// start at 257 and a tokenizer's id space is stable across vocab sizes.
const EOT = 256

// byteVocab is the number of reserved ids below the first merge: 256 raw
// bytes plus EOT.
const byteVocab = 257

// Sentinel errors for the distinct tokenizer failure classes.
var (
	// ErrVocab marks an unusable vocab size (below the byte+EOT floor).
	ErrVocab = errors.New("data: vocab size below byte floor")
	// ErrTokenizerJSON marks a malformed or inconsistent vocab file.
	ErrTokenizerJSON = errors.New("data: invalid tokenizer JSON")
	// ErrToken marks a token id outside the tokenizer's vocabulary.
	ErrToken = errors.New("data: token id out of range")
)

// merge is one learned BPE rule: the adjacent pair (L,R) rewrites to id
// 257+index. Earlier merges have priority during encoding.
type merge struct {
	L, R int
}

// Tokenizer is a byte-level BPE tokenizer. Ids 0-255 are raw bytes, 256 is
// EOT, and 257+i is the product of the i-th merge. A Tokenizer with no
// merges is the plain byte tokenizer. Encode/Decode round-trip any byte
// sequence exactly (byte-level BPE has no unknown-token case).
//
// EncodeInto reuses an internal scratch buffer, so a Tokenizer must not be
// shared across goroutines; each Loader (and each rank) owns its own.
type Tokenizer struct {
	merges []merge
	rank   map[uint64]int // pair key → merge index (encode priority)
	vocab  [][]byte       // id → bytes; vocab[EOT] is empty
	buf    []int          // encode scratch
}

// pairKey packs an adjacent id pair into one map key.
func pairKey(l, r int) uint64 { return uint64(l)<<32 | uint64(uint32(r)) }

// NewByteTokenizer returns the merge-free byte tokenizer (vocab 257: every
// byte plus EOT). It needs no training and handles any input.
func NewByteTokenizer() *Tokenizer {
	t := &Tokenizer{rank: map[uint64]int{}}
	t.buildVocab()
	return t
}

// buildVocab materializes the id → bytes table from the merge list.
func (t *Tokenizer) buildVocab() {
	t.vocab = make([][]byte, byteVocab+len(t.merges))
	for b := 0; b < 256; b++ {
		t.vocab[b] = []byte{byte(b)}
	}
	t.vocab[EOT] = nil
	for i, m := range t.merges {
		t.vocab[byteVocab+i] = append(append([]byte{}, t.vocab[m.L]...), t.vocab[m.R]...)
	}
}

// VocabSize returns the number of token ids the tokenizer emits (257 byte
// ids plus one per learned merge). Model vocabularies must be at least
// this large.
func (t *Tokenizer) VocabSize() int { return byteVocab + len(t.merges) }

// Merges returns the number of learned merge rules.
func (t *Tokenizer) Merges() int { return len(t.merges) }

// TrainBPE learns up to vocabSize-257 merges from sample, most-frequent
// pair first. Ties break toward the numerically smallest pair, so the
// merge list — and therefore every downstream token stream — is a pure
// function of the sample bytes. Training stops early when no pair repeats;
// the resulting vocab may be smaller than the budget on tiny corpora.
// vocabSize must be ≥ 257 (257 means zero merges, the byte tokenizer).
func TrainBPE(sample []byte, vocabSize int) (*Tokenizer, error) {
	if vocabSize < byteVocab {
		return nil, fmt.Errorf("%w: %d (want ≥ %d)", ErrVocab, vocabSize, byteVocab)
	}
	seq := make([]int, len(sample))
	for i, b := range sample {
		seq[i] = int(b)
	}
	t := &Tokenizer{rank: map[uint64]int{}}
	counts := map[uint64]int{}
	for id := byteVocab; id < vocabSize; id++ {
		clear(counts)
		for i := 0; i+1 < len(seq); i++ {
			counts[pairKey(seq[i], seq[i+1])]++
		}
		bestKey, bestCount := uint64(0), 0
		for k, c := range counts {
			if c > bestCount || (c == bestCount && k < bestKey) {
				bestKey, bestCount = k, c
			}
		}
		if bestCount < 2 {
			break // nothing left worth merging
		}
		m := merge{L: int(bestKey >> 32), R: int(uint32(bestKey))}
		t.rank[bestKey] = len(t.merges)
		t.merges = append(t.merges, m)
		seq = mergePair(seq, m.L, m.R, id)
	}
	t.buildVocab()
	return t, nil
}

// mergePair rewrites every non-overlapping (l,r) occurrence in seq to id,
// left to right, in place.
func mergePair(seq []int, l, r, id int) []int {
	w := 0
	for i := 0; i < len(seq); {
		if i+1 < len(seq) && seq[i] == l && seq[i+1] == r {
			seq[w] = id
			i += 2
		} else {
			seq[w] = seq[i]
			i++
		}
		w++
	}
	return seq[:w]
}

// EncodeInto tokenizes text and appends the ids to dst, returning the
// extended slice. Merges apply in training order (lowest merge index
// first), each rewriting every occurrence left to right — the standard
// greedy BPE encode. It never emits EOT; document separators are the
// packer's job.
func (t *Tokenizer) EncodeInto(dst []int, text []byte) []int {
	if len(text) == 0 {
		return dst
	}
	if cap(t.buf) < len(text) {
		t.buf = make([]int, len(text))
	}
	buf := t.buf[:len(text)]
	for i, b := range text {
		buf[i] = int(b)
	}
	for len(t.merges) > 0 {
		best := -1
		for i := 0; i+1 < len(buf); i++ {
			if m, ok := t.rank[pairKey(buf[i], buf[i+1])]; ok && (best == -1 || m < best) {
				best = m
			}
		}
		if best == -1 {
			break
		}
		m := t.merges[best]
		buf = mergePair(buf, m.L, m.R, byteVocab+best)
	}
	return append(dst, buf...)
}

// Encode is the allocating convenience form of EncodeInto.
func (t *Tokenizer) Encode(text []byte) []int { return t.EncodeInto(nil, text) }

// DecodeInto appends the bytes of ids to dst. EOT decodes to nothing.
// Unknown ids are ErrToken.
func (t *Tokenizer) DecodeInto(dst []byte, ids []int) ([]byte, error) {
	for _, id := range ids {
		if id < 0 || id >= len(t.vocab) {
			return dst, fmt.Errorf("%w: %d (vocab %d)", ErrToken, id, len(t.vocab))
		}
		dst = append(dst, t.vocab[id]...)
	}
	return dst, nil
}

// Decode is the allocating convenience form of DecodeInto.
func (t *Tokenizer) Decode(ids []int) ([]byte, error) { return t.DecodeInto(nil, ids) }

// tokenizerJSON is the on-disk vocab format: the ordered merge list fully
// determines the vocabulary, so nothing else is stored.
type tokenizerJSON struct {
	Kind   string   `json:"kind"` // always "bpe"
	Merges [][2]int `json:"merges"`
}

// SaveJSON serializes the tokenizer's merge list.
func (t *Tokenizer) SaveJSON() ([]byte, error) {
	out := tokenizerJSON{Kind: "bpe", Merges: make([][2]int, len(t.merges))}
	for i, m := range t.merges {
		out.Merges[i] = [2]int{m.L, m.R}
	}
	return json.MarshalIndent(out, "", "  ")
}

// LoadTokenizerJSON rebuilds a tokenizer from SaveJSON output, validating
// that every merge references only previously defined ids.
func LoadTokenizerJSON(blob []byte) (*Tokenizer, error) {
	var in tokenizerJSON
	if err := json.Unmarshal(blob, &in); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrTokenizerJSON, err)
	}
	if in.Kind != "bpe" {
		return nil, fmt.Errorf("%w: kind %q (want \"bpe\")", ErrTokenizerJSON, in.Kind)
	}
	t := &Tokenizer{rank: map[uint64]int{}}
	for i, p := range in.Merges {
		l, r := p[0], p[1]
		limit := byteVocab + i // ids defined so far
		if l < 0 || r < 0 || l >= limit || r >= limit || l == EOT || r == EOT {
			return nil, fmt.Errorf("%w: merge %d references id out of range (%d,%d)", ErrTokenizerJSON, i, l, r)
		}
		key := pairKey(l, r)
		if _, dup := t.rank[key]; dup {
			return nil, fmt.Errorf("%w: duplicate merge (%d,%d)", ErrTokenizerJSON, l, r)
		}
		t.rank[key] = i
		t.merges = append(t.merges, merge{L: l, R: r})
	}
	t.buildVocab()
	return t, nil
}

// SaveTokenizerFile writes the vocab JSON to path.
func SaveTokenizerFile(t *Tokenizer, path string) error {
	blob, err := t.SaveJSON()
	if err != nil {
		return err
	}
	return os.WriteFile(path, blob, 0o644)
}

// LoadTokenizerFile reads a vocab JSON written by SaveTokenizerFile.
func LoadTokenizerFile(path string) (*Tokenizer, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("data: reading tokenizer: %w", err)
	}
	t, err := LoadTokenizerJSON(blob)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return t, nil
}
