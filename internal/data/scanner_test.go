package data

import (
	"io"
	"strings"
	"testing"
)

// scanAll drains a scanner, copying each document (the returned slice is
// only valid until the next call).
func scanAll(t *testing.T, s *docScanner) []string {
	t.Helper()
	var out []string
	for {
		doc, err := s.next()
		if err == io.EOF {
			return out
		}
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, string(doc))
	}
}

// Blank lines frame documents; internal newlines survive; leading,
// trailing and repeated separators collapse.
func TestDocScannerFraming(t *testing.T) {
	in := "\n\nfirst doc line one\nline two\n\nsecond doc\n\n\n  \t\nthird\ndoc\n"
	want := []string{"first doc line one\nline two", "second doc", "third\ndoc"}
	got := scanAll(t, newDocScanner(strings.NewReader(in), 0, 0))
	if len(got) != len(want) {
		t.Fatalf("got %d docs %q, want %d", len(got), got, len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("doc %d = %q, want %q", i, got[i], want[i])
		}
	}
}

// Framing is invariant under chunk size — boundaries may fall anywhere,
// including inside separators.
func TestDocScannerChunkInvariance(t *testing.T) {
	in := "alpha beta\ngamma\n\ndelta\n\nepsilon zeta eta theta iota kappa\n\nlast"
	want := scanAll(t, newDocScanner(strings.NewReader(in), 1<<20, 0))
	for _, chunk := range []int{1, 2, 3, 7, 16, len(in) - 1} {
		got := scanAll(t, newDocScanner(strings.NewReader(in), chunk, 0))
		if len(got) != len(want) {
			t.Fatalf("chunk %d: %d docs, want %d", chunk, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("chunk %d doc %d = %q, want %q", chunk, i, got[i], want[i])
			}
		}
	}
}

// Documents (and even single lines) larger than the cap are split, so the
// resident set stays bounded; no byte of a non-blank line is lost.
func TestDocScannerDocCap(t *testing.T) {
	long := strings.Repeat("x", 1000) // one 1000-byte line, no newline
	s := newDocScanner(strings.NewReader(long), 64, 100)
	docs := scanAll(t, s)
	total := 0
	for _, d := range docs {
		if len(d) > 200 { // cap plus one-line slack
			t.Fatalf("doc of %d bytes escaped the 100-byte cap", len(d))
		}
		total += len(d)
	}
	if total != 1000 {
		t.Fatalf("cap split lost bytes: %d of 1000", total)
	}

	// Multi-line doc crossing the cap splits at a line boundary.
	in := strings.Repeat("abcdefghij\n", 30) // 330 bytes, one doc
	docs = scanAll(t, newDocScanner(strings.NewReader(in), 32, 100))
	if len(docs) < 2 {
		t.Fatalf("expected a split, got %d docs", len(docs))
	}
	joined := strings.Join(docs, "\n") + "\n"
	if joined != in {
		t.Fatalf("split lost content: %d bytes vs %d", len(joined), len(in))
	}
}

// reset rewinds cleanly: a second pass produces identical documents.
func TestDocScannerReset(t *testing.T) {
	in := "one\n\ntwo\n\nthree"
	s := newDocScanner(strings.NewReader(in), 4, 0)
	first := scanAll(t, s)
	s.reset(strings.NewReader(in))
	second := scanAll(t, s)
	if len(first) != 3 || len(second) != 3 {
		t.Fatalf("passes saw %d / %d docs, want 3", len(first), len(second))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("doc %d differs after reset: %q vs %q", i, first[i], second[i])
		}
	}
}

// An empty or all-blank stream yields no documents, just EOF.
func TestDocScannerEmpty(t *testing.T) {
	for _, in := range []string{"", "\n", "\n\n \t\n"} {
		if docs := scanAll(t, newDocScanner(strings.NewReader(in), 8, 0)); len(docs) != 0 {
			t.Errorf("input %q: got %d docs, want 0", in, len(docs))
		}
	}
}
