package data

import (
	"bytes"
	"errors"
	"path/filepath"
	"testing"
)

// A trained tokenizer must compress its own training sample, apply merges
// deterministically, and round-trip exactly.
func TestTrainBPECompressesAndRoundTrips(t *testing.T) {
	sample := bytes.Repeat([]byte("the cat sat on the mat. the dog ate the log.\n"), 50)
	tok, err := TrainBPE(sample, 300)
	if err != nil {
		t.Fatal(err)
	}
	if tok.Merges() == 0 {
		t.Fatal("trained tokenizer learned no merges")
	}
	if tok.VocabSize() != 257+tok.Merges() {
		t.Fatalf("VocabSize %d, want %d", tok.VocabSize(), 257+tok.Merges())
	}
	ids := tok.Encode(sample)
	if len(ids) >= len(sample) {
		t.Fatalf("BPE did not compress: %d tokens for %d bytes", len(ids), len(sample))
	}
	for _, id := range ids {
		if id < 0 || id >= tok.VocabSize() || id == EOT {
			t.Fatalf("Encode emitted invalid id %d", id)
		}
	}
	back, err := tok.Decode(ids)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, sample) {
		t.Fatal("Decode(Encode(sample)) != sample")
	}
}

// Training is deterministic: same sample, same merges — twice.
func TestTrainBPEDeterministic(t *testing.T) {
	sample := bytes.Repeat([]byte("abcabd abcabd xyz xyz "), 40)
	a, err := TrainBPE(sample, 280)
	if err != nil {
		t.Fatal(err)
	}
	b, err := TrainBPE(sample, 280)
	if err != nil {
		t.Fatal(err)
	}
	if a.Merges() != b.Merges() {
		t.Fatalf("merge counts differ: %d vs %d", a.Merges(), b.Merges())
	}
	for i := range a.merges {
		if a.merges[i] != b.merges[i] {
			t.Fatalf("merge %d differs: %v vs %v", i, a.merges[i], b.merges[i])
		}
	}
}

// The byte tokenizer is the identity mapping plus EOT headroom.
func TestByteTokenizer(t *testing.T) {
	tok := NewByteTokenizer()
	if tok.VocabSize() != 257 {
		t.Fatalf("byte vocab %d, want 257", tok.VocabSize())
	}
	in := []byte("hello, \x00\xff world")
	ids := tok.Encode(in)
	if len(ids) != len(in) {
		t.Fatalf("byte encode length %d, want %d", len(ids), len(in))
	}
	back, err := tok.Decode(ids)
	if err != nil || !bytes.Equal(back, in) {
		t.Fatalf("byte round trip failed: %q err %v", back, err)
	}
	// EOT decodes to nothing; out-of-range ids are ErrToken.
	if out, err := tok.Decode([]int{EOT, 'a'}); err != nil || string(out) != "a" {
		t.Fatalf("EOT decode: %q, %v", out, err)
	}
	if _, err := tok.Decode([]int{300}); !errors.Is(err, ErrToken) {
		t.Fatalf("decode of unknown id: %v, want ErrToken", err)
	}
}

// Vocab JSON save/load reproduces the exact tokenizer; corrupt files are
// structured errors.
func TestTokenizerJSONRoundTrip(t *testing.T) {
	sample := bytes.Repeat([]byte("zero redundancy optimizer. "), 60)
	tok, err := TrainBPE(sample, 290)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "vocab.json")
	if err := SaveTokenizerFile(tok, path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadTokenizerFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.VocabSize() != tok.VocabSize() {
		t.Fatalf("loaded vocab %d, want %d", back.VocabSize(), tok.VocabSize())
	}
	in := []byte("an optimizer with zero redundancy")
	a, b := tok.Encode(in), back.Encode(in)
	if len(a) != len(b) {
		t.Fatalf("encode lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("token %d differs: %d vs %d", i, a[i], b[i])
		}
	}

	for name, blob := range map[string]string{
		"not json":        `{{{`,
		"wrong kind":      `{"kind":"wordpiece","merges":[]}`,
		"forward ref":     `{"kind":"bpe","merges":[[300,301]]}`,
		"eot in merge":    `{"kind":"bpe","merges":[[256,97]]}`,
		"duplicate merge": `{"kind":"bpe","merges":[[97,98],[97,98]]}`,
		"negative id":     `{"kind":"bpe","merges":[[-1,97]]}`,
	} {
		if _, err := LoadTokenizerJSON([]byte(blob)); !errors.Is(err, ErrTokenizerJSON) {
			t.Errorf("%s: error %v, want ErrTokenizerJSON", name, err)
		}
	}
}

// Sub-floor vocab budgets are rejected; a floor budget is the byte
// tokenizer; tiny samples stop early instead of inventing merges.
func TestTrainBPEBudgets(t *testing.T) {
	if _, err := TrainBPE([]byte("abc"), 100); !errors.Is(err, ErrVocab) {
		t.Fatalf("TrainBPE(100): %v, want ErrVocab", err)
	}
	tok, err := TrainBPE([]byte("ab"), 257)
	if err != nil || tok.Merges() != 0 {
		t.Fatalf("floor budget: merges %d err %v, want 0 merges", tok.Merges(), err)
	}
	// "ab" has no repeated pair: a huge budget still learns nothing.
	tok, err = TrainBPE([]byte("ab"), 1000)
	if err != nil || tok.Merges() != 0 {
		t.Fatalf("no-repeat sample: merges %d err %v, want 0", tok.Merges(), err)
	}
}

// EncodeInto appends into the destination without clobbering its prefix
// and reuses scratch across calls.
func TestEncodeIntoAppends(t *testing.T) {
	tok := NewByteTokenizer()
	dst := []int{42}
	dst = tok.EncodeInto(dst, []byte("xy"))
	if len(dst) != 3 || dst[0] != 42 || dst[1] != 'x' || dst[2] != 'y' {
		t.Fatalf("EncodeInto = %v", dst)
	}
	if got := tok.EncodeInto(nil, nil); got != nil {
		t.Fatalf("EncodeInto(nil, empty) = %v, want nil", got)
	}
}

// FuzzBPERoundTrip: for any input bytes, Encode then Decode is the
// identity — the byte-level BPE guarantee — for both a trained tokenizer
// and the byte tokenizer. Run as a short smoke in `make check`
// (fuzz-smoke) and at length with `go test -fuzz=FuzzBPERoundTrip`.
func FuzzBPERoundTrip(f *testing.F) {
	trained, err := TrainBPE(bytes.Repeat([]byte("the zero redundancy optimizer shards optimizer state. "), 40), 320)
	if err != nil {
		f.Fatal(err)
	}
	bt := NewByteTokenizer()
	f.Add([]byte("the optimizer"))
	f.Add([]byte(""))
	f.Add([]byte{0, 255, 10, 13, 10})
	f.Add(bytes.Repeat([]byte("ab"), 100))
	f.Fuzz(func(t *testing.T, in []byte) {
		for name, tok := range map[string]*Tokenizer{"trained": trained, "byte": bt} {
			ids := tok.Encode(in)
			out, err := tok.Decode(ids)
			if err != nil {
				t.Fatalf("%s: decode error %v", name, err)
			}
			if !bytes.Equal(out, in) {
				t.Fatalf("%s: round trip changed %q -> %q", name, in, out)
			}
		}
	})
}
