package data

import (
	"fmt"
	"os"
	"path/filepath"
)

// CorpusFiles resolves a corpus path to its ordered file list. A regular
// file is a one-file corpus; a directory is a multi-file corpus made of
// its regular files in sorted name order (subdirectories and dotfiles are
// skipped — no recursion). The order is what defines the corpus: files
// are concatenated logically, a file boundary separates documents exactly
// like a blank line, and document indices run globally across the list,
// so ShardOf sees one corpus no matter how it is split on disk.
func CorpusFiles(path string) ([]string, error) {
	info, err := os.Stat(path)
	if err != nil {
		return nil, fmt.Errorf("data: opening corpus: %w", err)
	}
	if !info.IsDir() {
		return []string{path}, nil
	}
	entries, err := os.ReadDir(path) // sorted by filename
	if err != nil {
		return nil, fmt.Errorf("data: reading corpus directory: %w", err)
	}
	var paths []string
	for _, e := range entries {
		if !e.Type().IsRegular() || e.Name()[0] == '.' {
			continue
		}
		paths = append(paths, filepath.Join(path, e.Name()))
	}
	if len(paths) == 0 {
		return nil, fmt.Errorf("%w: directory %s holds no corpus files", ErrCorpus, path)
	}
	return paths, nil
}
