package data

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"os"

	"repro/internal/arena"
)

// ShardOf is the per-rank document assignment: document d of an epoch
// belongs to rank d mod world. It is a pure function, so for any world
// size the rank shards are disjoint, cover the corpus exactly, and are
// identical on every run — the property that keeps simulated data
// parallelism reproducible (each rank derives the same global batch from
// the same file and seed, and rank r's rows really are shard r's
// documents).
func ShardOf(doc, world int) int {
	if world <= 0 {
		panic("data: world must be positive")
	}
	return doc % world
}

// ErrCorpus marks an unusable corpus file (empty, or fewer documents than
// ranks, so some shard would starve).
var ErrCorpus = errors.New("data: unusable corpus")

// shardStream produces rank r's token stream: it scans the corpus
// documents in order, keeps only those ShardOf assigns to r, tokenizes
// them, runs them through a seeded shuffle buffer, and packs the result
// into a flat token queue with an EOT separator after every document. The
// corpus may be one file or a directory of files (see CorpusFiles): the
// document index runs globally across the sorted file list, a file
// boundary separates documents like a blank line, and at the end of the
// last file the stream seeks every handle back to the start (the stream
// is infinite; epochs are counted; no reopen, so epoch wrap allocates
// nothing). All per-document buffers come from the loader's arena pool,
// so a warmed stream refills without allocating.
type shardStream struct {
	rank, world int
	name        string // corpus path as configured, for errors
	files       []*os.File
	fileIdx     int // file the scanner is currently framing
	sc          *docScanner
	tok         *Tokenizer
	rng         *rand.Rand
	ints        *arena.Ints

	shuffle [][]int // shuffle buffer of tokenized documents
	ring    []int   // packed token queue
	head    int     // consumed prefix of ring

	docIndex   int // position in the current epoch's GLOBAL document sequence
	epochs     int
	primed     bool
	encScratch []int // EncodeInto append target, reused across documents
}

// newShardStream opens one rank's view of the corpus (a file, or a
// directory of files). Streams sharing a loader share its arena but
// nothing else — each holds private handles on every corpus file; two
// streams with equal (rank, world, seed) over the same corpus are
// bitwise-identical.
func newShardStream(path string, rank, world int, tok *Tokenizer, seed int64, chunkBytes, maxDocBytes int, ints *arena.Ints) (*shardStream, error) {
	paths, err := CorpusFiles(path)
	if err != nil {
		return nil, err
	}
	files := make([]*os.File, 0, len(paths))
	for _, p := range paths {
		f, err := os.Open(p)
		if err != nil {
			for _, open := range files {
				open.Close()
			}
			return nil, fmt.Errorf("data: opening corpus: %w", err)
		}
		files = append(files, f)
	}
	return &shardStream{
		rank:  rank,
		world: world,
		name:  path,
		files: files,
		sc:    newDocScanner(files[0], chunkBytes, maxDocBytes),
		tok:   tok,
		// Decorrelate the per-shard shuffle orders while keeping each a
		// pure function of (seed, rank).
		rng:  rand.New(rand.NewSource(seed*0x9E3779B9 + int64(rank))),
		ints: ints,
	}, nil
}

func (s *shardStream) close() error {
	var first error
	for _, f := range s.files {
		if err := f.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// enterFile seeks file i back to its start and points the scanner at it.
func (s *shardStream) enterFile(i int) error {
	s.fileIdx = i
	if _, err := s.files[i].Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("data: rewinding corpus: %w", err)
	}
	s.sc.reset(s.files[i])
	return nil
}

// nextShardDoc returns this rank's next tokenized document (epoch-looping,
// never EOF). The returned buffer belongs to the stream's arena; the
// caller must Put it back once consumed.
func (s *shardStream) nextShardDoc() ([]int, error) {
	for rewinds := 0; ; {
		doc, err := s.sc.next()
		if err == io.EOF {
			// End of one file: move to the next; the global document index
			// keeps counting, so the shard assignment never notices the
			// file boundary.
			if s.fileIdx+1 < len(s.files) {
				if err := s.enterFile(s.fileIdx + 1); err != nil {
					return nil, err
				}
				continue
			}
			// End of the last file: one rewind per call is the normal
			// end-of-epoch case; a second means a full cycle over every
			// file found no document for this rank (empty corpus, or fewer
			// documents than ranks).
			rewinds++
			if rewinds >= 2 {
				return nil, fmt.Errorf("%w: no documents for rank %d of %d in %s",
					ErrCorpus, s.rank, s.world, s.name)
			}
			if err := s.enterFile(0); err != nil {
				return nil, err
			}
			s.docIndex = 0
			s.epochs++
			continue
		}
		if err != nil {
			return nil, err
		}
		d := s.docIndex
		s.docIndex++
		if ShardOf(d, s.world) != s.rank {
			continue
		}
		s.encScratch = s.tok.EncodeInto(s.encScratch[:0], doc)
		buf := s.ints.Get(len(s.encScratch) + 1)
		copy(buf, s.encScratch)
		buf[len(s.encScratch)] = EOT
		return buf, nil
	}
}

// fill tops the ring up to at least n unconsumed tokens, compacting the
// consumed prefix first and drawing documents through the shuffle buffer.
func (s *shardStream) fill(n, shuffleDocs int) error {
	if !s.primed {
		s.shuffle = make([][]int, 0, shuffleDocs)
		for len(s.shuffle) < shuffleDocs {
			d, err := s.nextShardDoc()
			if err != nil {
				return err
			}
			s.shuffle = append(s.shuffle, d)
		}
		s.primed = true
	}
	if s.head > 0 {
		s.ring = s.ring[:copy(s.ring, s.ring[s.head:])]
		s.head = 0
	}
	for len(s.ring) < n {
		i := s.rng.Intn(len(s.shuffle))
		doc := s.shuffle[i]
		repl, err := s.nextShardDoc()
		if err != nil {
			return err
		}
		s.shuffle[i] = repl
		s.ring = append(s.ring, doc...)
		s.ints.Put(doc)
	}
	return nil
}

// release returns every buffered token slice to the arena.
func (s *shardStream) release() {
	for _, d := range s.shuffle {
		s.ints.Put(d)
	}
	s.shuffle = nil
	s.ring = nil
	s.primed = false
}
