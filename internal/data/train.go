package data

import (
	"fmt"
	"io"
	"os"
)

// DefaultZerotokTrainBytes is the standalone trainer's sample budget —
// larger than the in-process DefaultTrainBytes because vocab training as
// a separate offline step (cmd/zerotok) can afford it.
const DefaultZerotokTrainBytes = 4 << 20

// TrainStats reports what a corpus-level BPE training run consumed.
type TrainStats struct {
	// Docs is how many framed documents fed the sample.
	Docs int
	// SampleBytes is the training sample size after framing (separators
	// normalized, documents capped at maxDocBytes).
	SampleBytes int
	// SampleTokens is the sample's token count under the trained
	// vocabulary — SampleBytes/SampleTokens is the compression ratio.
	SampleTokens int
}

// TrainFromCorpus trains a byte-level BPE vocabulary of up to vocabSize
// ids from the head of the corpus at path, framing the text through the
// same streaming document scanner the Loader uses (chunked reads, blank
// line separators, maxDocBytes splits — 0 means DefaultMaxDocBytes), so
// the committed vocabulary sees exactly the documents training will.
// trainBytes caps the sample (0 = DefaultZerotokTrainBytes). This is the
// engine behind cmd/zerotok: train once offline, commit the vocab JSON,
// and point configs at it instead of re-training at every Open.
func TrainFromCorpus(path string, vocabSize, trainBytes, maxDocBytes int) (*Tokenizer, TrainStats, error) {
	var stats TrainStats
	if trainBytes <= 0 {
		trainBytes = DefaultZerotokTrainBytes
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, stats, fmt.Errorf("data: opening corpus: %w", err)
	}
	defer f.Close()

	// Build the sample from framed documents joined by the same "\n\n"
	// separator framing removed, stopping at the byte budget.
	sc := newDocScanner(f, 0, maxDocBytes)
	sample := make([]byte, 0, trainBytes)
	for len(sample) < trainBytes {
		doc, err := sc.next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, stats, err
		}
		if len(sample) > 0 {
			sample = append(sample, '\n', '\n')
		}
		if room := trainBytes - len(sample); len(doc) > room {
			doc = doc[:room]
		}
		sample = append(sample, doc...)
		stats.Docs++
	}
	if len(sample) == 0 {
		return nil, stats, fmt.Errorf("%w: empty corpus %s", ErrCorpus, path)
	}
	stats.SampleBytes = len(sample)

	t, err := TrainBPE(sample, vocabSize)
	if err != nil {
		return nil, stats, err
	}
	stats.SampleTokens = len(t.Encode(sample))
	return t, stats, nil
}
