package data

import (
	"fmt"
	"io"
	"os"
)

// DefaultZerotokTrainBytes is the standalone trainer's sample budget —
// larger than the in-process DefaultTrainBytes because vocab training as
// a separate offline step (cmd/zerotok) can afford it.
const DefaultZerotokTrainBytes = 4 << 20

// TrainStats reports what a corpus-level BPE training run consumed.
type TrainStats struct {
	// Docs is how many framed documents fed the sample.
	Docs int
	// SampleBytes is the training sample size after framing (separators
	// normalized, documents capped at maxDocBytes).
	SampleBytes int
	// SampleTokens is the sample's token count under the trained
	// vocabulary — SampleBytes/SampleTokens is the compression ratio.
	SampleTokens int
}

// TrainFromCorpus trains a byte-level BPE vocabulary of up to vocabSize
// ids from the head of the corpus at path (a file, or a directory of
// files — see CorpusFiles), framing the text through the same streaming
// document scanner the Loader uses (chunked reads, blank line separators,
// file boundaries, maxDocBytes splits — 0 means DefaultMaxDocBytes), so
// the committed vocabulary sees exactly the documents training will.
// trainBytes caps the sample (0 = DefaultZerotokTrainBytes). This is the
// engine behind cmd/zerotok: train once offline, commit the vocab JSON,
// and point configs at it instead of re-training at every Open.
func TrainFromCorpus(path string, vocabSize, trainBytes, maxDocBytes int) (*Tokenizer, TrainStats, error) {
	var stats TrainStats
	if trainBytes <= 0 {
		trainBytes = DefaultZerotokTrainBytes
	}
	paths, err := CorpusFiles(path)
	if err != nil {
		return nil, stats, err
	}

	// Build the sample from framed documents joined by the same "\n\n"
	// separator framing removed, stopping at the byte budget.
	var sc *docScanner
	sample := make([]byte, 0, trainBytes)
	for _, p := range paths {
		if len(sample) >= trainBytes {
			break
		}
		f, err := os.Open(p)
		if err != nil {
			return nil, stats, fmt.Errorf("data: opening corpus: %w", err)
		}
		if sc == nil {
			sc = newDocScanner(f, 0, maxDocBytes)
		} else {
			sc.reset(f)
		}
		for len(sample) < trainBytes {
			doc, err := sc.next()
			if err == io.EOF {
				break
			}
			if err != nil {
				f.Close()
				return nil, stats, err
			}
			if len(sample) > 0 {
				sample = append(sample, '\n', '\n')
			}
			if room := trainBytes - len(sample); len(doc) > room {
				doc = doc[:room]
			}
			sample = append(sample, doc...)
			stats.Docs++
		}
		f.Close()
	}
	if len(sample) == 0 {
		return nil, stats, fmt.Errorf("%w: empty corpus %s", ErrCorpus, path)
	}
	stats.SampleBytes = len(sample)

	t, err := TrainBPE(sample, vocabSize)
	if err != nil {
		return nil, stats, err
	}
	stats.SampleTokens = len(t.Encode(sample))
	return t, stats, nil
}
