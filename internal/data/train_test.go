package data

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TrainFromCorpus produces a tokenizer that round-trips its own training
// sample and respects the byte budget.
func TestTrainFromCorpus(t *testing.T) {
	dir := t.TempDir()
	corpus := filepath.Join(dir, "corpus.txt")
	text := strings.Repeat("the quick brown fox jumps over the lazy dog\n\n", 40)
	if err := os.WriteFile(corpus, []byte(text), 0o644); err != nil {
		t.Fatal(err)
	}

	tok, stats, err := TrainFromCorpus(corpus, 300, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if tok.VocabSize() != 300 {
		t.Errorf("VocabSize = %d, want 300", tok.VocabSize())
	}
	if stats.Docs != 40 || stats.SampleBytes == 0 || stats.SampleTokens == 0 {
		t.Errorf("stats = %+v, want 40 docs with a non-empty sample", stats)
	}

	// Encode/Decode round trip on a fresh document.
	doc := []byte("the lazy fox")
	got, err := tok.Decode(tok.Encode(doc))
	if err != nil || !bytes.Equal(got, doc) {
		t.Errorf("round trip = (%q, %v), want %q", got, err, doc)
	}

	// The trained vocab must actually compress (merges beyond raw bytes).
	if stats.SampleTokens >= stats.SampleBytes {
		t.Errorf("no compression: %d tokens for %d bytes", stats.SampleTokens, stats.SampleBytes)
	}
}

// The byte budget caps the sample even when the corpus is larger.
func TestTrainFromCorpusBudget(t *testing.T) {
	dir := t.TempDir()
	corpus := filepath.Join(dir, "corpus.txt")
	text := strings.Repeat("some words to merge again and again\n\n", 200)
	if err := os.WriteFile(corpus, []byte(text), 0o644); err != nil {
		t.Fatal(err)
	}
	const budget = 512
	_, stats, err := TrainFromCorpus(corpus, 280, budget, 0)
	if err != nil {
		t.Fatal(err)
	}
	if stats.SampleBytes > budget {
		t.Errorf("SampleBytes = %d above the %d budget", stats.SampleBytes, budget)
	}
}

// zerotok's committed-vocab flow: train, save, and load back through the
// loader-facing JSON reader — what a config's tokenizer path consumes.
func TestTrainFromCorpusSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	corpus := filepath.Join(dir, "corpus.txt")
	if err := os.WriteFile(corpus, []byte(strings.Repeat("alpha beta gamma delta\n\n", 30)), 0o644); err != nil {
		t.Fatal(err)
	}
	tok, _, err := TrainFromCorpus(corpus, 290, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	vocabPath := filepath.Join(dir, "vocab.json")
	if err := SaveTokenizerFile(tok, vocabPath); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadTokenizerFile(vocabPath)
	if err != nil {
		t.Fatal(err)
	}
	doc := []byte("beta gamma alpha")
	if got, want := loaded.Encode(doc), tok.Encode(doc); !equalIDs(got, want) {
		t.Errorf("loaded vocab encodes %v, trained vocab %v", got, want)
	}
}

func equalIDs(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Missing and empty corpora fail with wrapped, inspectable errors.
func TestTrainFromCorpusErrors(t *testing.T) {
	if _, _, err := TrainFromCorpus(filepath.Join(t.TempDir(), "nope.txt"), 300, 0, 0); err == nil {
		t.Error("missing corpus trained without error")
	}
	empty := filepath.Join(t.TempDir(), "empty.txt")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := TrainFromCorpus(empty, 300, 0, 0); !errors.Is(err, ErrCorpus) {
		t.Errorf("empty corpus: err = %v, want ErrCorpus", err)
	}
}
