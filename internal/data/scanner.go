package data

import (
	"fmt"
	"io"
)

// Default sizing for the streaming reader. Exposed through Config so tests
// can shrink them; the defaults keep per-stream memory under ~200 KiB no
// matter how large the corpus is.
const (
	// DefaultChunkBytes is the fixed read size of the corpus reader.
	DefaultChunkBytes = 64 << 10
	// DefaultMaxDocBytes caps a single document; longer documents are
	// split at the cap so one pathological document cannot grow the
	// resident set.
	DefaultMaxDocBytes = 64 << 10
)

// docScanner frames a byte stream into documents with bounded memory: the
// reader advances in fixed-size chunks, blank lines separate documents,
// and any document reaching maxDoc bytes is emitted immediately (split).
// The returned document slice is valid until the next call.
//
// Framing rules: a document is a maximal run of non-blank lines, joined
// with the newlines they arrived with; blank lines (possibly with \r) are
// separators and never appear inside a document. The final document needs
// no trailing separator.
type docScanner struct {
	r      io.Reader
	chunk  []byte // fixed read buffer
	avail  []byte // unconsumed tail of chunk
	doc    []byte // document under construction (cap ≤ maxDoc+line slack)
	line   []byte // current partial line (no newline seen yet)
	maxDoc int
	eof    bool
}

// newDocScanner frames r into documents using chunkBytes reads and a
// maxDocBytes document cap.
func newDocScanner(r io.Reader, chunkBytes, maxDocBytes int) *docScanner {
	if chunkBytes <= 0 {
		chunkBytes = DefaultChunkBytes
	}
	if maxDocBytes <= 0 {
		maxDocBytes = DefaultMaxDocBytes
	}
	return &docScanner{r: r, chunk: make([]byte, chunkBytes), maxDoc: maxDocBytes}
}

// reset points the scanner at a new stream (typically the same file seeked
// back to the start), keeping its buffers.
func (s *docScanner) reset(r io.Reader) {
	s.r = r
	s.avail = nil
	s.doc = s.doc[:0]
	s.line = s.line[:0]
	s.eof = false
}

// blank reports whether a line is a document separator: empty or
// whitespace-only.
func blank(line []byte) bool {
	for _, b := range line {
		if b != ' ' && b != '\t' && b != '\r' {
			return false
		}
	}
	return true
}

// endLine folds the completed line (without its newline) into the current
// document and reports whether a full document is now ready.
func (s *docScanner) endLine() bool {
	if blank(s.line) {
		s.line = s.line[:0]
		return len(s.doc) > 0
	}
	if len(s.doc) > 0 {
		s.doc = append(s.doc, '\n')
	}
	s.doc = append(s.doc, s.line...)
	s.line = s.line[:0]
	return len(s.doc) >= s.maxDoc
}

// next returns the next document, or io.EOF when the stream is exhausted.
// Any other read error is returned verbatim.
func (s *docScanner) next() ([]byte, error) {
	s.doc = s.doc[:0]
	for {
		for len(s.avail) > 0 {
			i := 0
			for i < len(s.avail) && s.avail[i] != '\n' {
				i++
			}
			s.line = append(s.line, s.avail[:i]...)
			if i < len(s.avail) {
				s.avail = s.avail[i+1:]
				if s.endLine() {
					return s.doc, nil
				}
			} else {
				s.avail = nil
			}
			// A single line with no newline in sight still cannot grow
			// past the cap: force a split at the document limit.
			if len(s.line) >= s.maxDoc {
				if s.endLine() {
					return s.doc, nil
				}
			}
		}
		if s.eof {
			if len(s.line) > 0 || len(s.doc) > 0 {
				s.endLine()
				if len(s.doc) > 0 {
					return s.doc, nil
				}
			}
			return nil, io.EOF
		}
		n, err := s.r.Read(s.chunk)
		s.avail = s.chunk[:n]
		switch {
		case err == io.EOF:
			s.eof = true
		case err != nil:
			return nil, fmt.Errorf("data: corpus read: %w", err)
		}
	}
}
