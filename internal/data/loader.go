package data

import (
	"errors"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/arena"
)

// DefaultTrainBytes caps the corpus sample BPE training reads — training
// is O(merges × sample), so the cap bounds both memory and Open latency.
const DefaultTrainBytes = 256 << 10

// DefaultShuffleDocs is the per-shard shuffle-buffer size in documents.
const DefaultShuffleDocs = 64

// Config describes a corpus pipeline. It mirrors the "data" section of the
// engine config (internal/engine.DataConfig) but is expressed in resolved
// terms: every field is concrete, no defaults remain to apply except the
// zero-value sizing knobs.
type Config struct {
	// Path is the corpus: a text file, or a directory whose sorted
	// regular files form one logical corpus (see CorpusFiles). Documents
	// are blank-line-separated runs of text (paragraphs) and never span a
	// file boundary; see the package comment for framing.
	Path string
	// Tokenizer selects the token mapping: "byte" (the merge-free byte
	// tokenizer), "bpe" (train a byte-level BPE vocab on the first
	// TrainBytes of the corpus at Open), or a path ending in ".json"
	// holding a vocab written by SaveTokenizerFile.
	Tokenizer string
	// VocabSize is the BPE merge budget (ids including the 257 byte+EOT
	// floor); ignored for "byte" and ".json" tokenizers.
	VocabSize int
	// SeqLen is the micro-batch sequence length.
	SeqLen int
	// ShuffleBuffer is the per-shard shuffle-buffer size in documents
	// (0 = DefaultShuffleDocs).
	ShuffleBuffer int
	// Seed drives the shuffle order.
	Seed int64
	// ChunkBytes and MaxDocBytes size the streaming reader
	// (0 = DefaultChunkBytes / DefaultMaxDocBytes).
	ChunkBytes  int
	MaxDocBytes int
	// TrainBytes caps the BPE training sample (0 = DefaultTrainBytes).
	TrainBytes int
}

// ErrConfig marks an invalid data.Config.
var ErrConfig = errors.New("data: invalid config")

// Loader streams deterministic global micro-batches from a corpus (one
// file, or a directory of files treated as their sorted concatenation).
// One Loader serves one rank, but its output is rank-independent: it
// maintains all `world` shard streams and interleaves them row-block by
// row-block, so every rank's Loader (same corpus, config, seed) emits the
// same global batch while rank r's row block [r·B/N, (r+1)·B/N) — the rows
// zero.Trainer assigns to rank r — contains exactly shard r's documents.
//
// NextBatch returns buffers owned by the Loader, valid until the next
// call; a warmed Loader produces batches with zero heap allocation.
type Loader struct {
	cfg     Config
	tok     *Tokenizer
	streams []*shardStream
	ints    *arena.Ints

	rows, rowsPer int // global micro-batch rows, rows per rank
	ids, targets  []int
	tokens        int64
	batches       int64
}

// Open builds the pipeline: tokenizer (trained, loaded or byte-level),
// one shard stream per rank, and the packer. rows is the global
// micro-batch row count; world the data-parallel degree (rows must divide
// evenly). The corpus must hold at least `world` documents, so no shard
// starves.
func Open(cfg Config, rows, world int) (*Loader, error) {
	if rows <= 0 || world <= 0 || rows%world != 0 {
		return nil, fmt.Errorf("%w: rows %d must be a positive multiple of world %d", ErrConfig, rows, world)
	}
	if cfg.SeqLen < 2 {
		return nil, fmt.Errorf("%w: seq_len %d (want ≥ 2)", ErrConfig, cfg.SeqLen)
	}
	if cfg.ShuffleBuffer < 0 {
		return nil, fmt.Errorf("%w: shuffle_buffer %d (want ≥ 0)", ErrConfig, cfg.ShuffleBuffer)
	}
	if cfg.ShuffleBuffer == 0 {
		cfg.ShuffleBuffer = DefaultShuffleDocs
	}
	tok, err := openTokenizer(cfg)
	if err != nil {
		return nil, err
	}
	l := &Loader{
		cfg:     cfg,
		tok:     tok,
		ints:    arena.NewInts(),
		rows:    rows,
		rowsPer: rows / world,
		ids:     make([]int, rows*cfg.SeqLen),
		targets: make([]int, rows*cfg.SeqLen),
	}
	for r := 0; r < world; r++ {
		s, err := newShardStream(cfg.Path, r, world, tok, cfg.Seed, cfg.ChunkBytes, cfg.MaxDocBytes, l.ints)
		if err != nil {
			l.Close()
			return nil, err
		}
		// Every stream applies the shared tokenizer through its own
		// scratch, but EncodeInto scratch lives on the Tokenizer; give
		// each stream a private tokenizer view to keep fills reentrant.
		if r > 0 {
			s.tok = tok.clone()
		}
		l.streams = append(l.streams, s)
	}
	return l, nil
}

// clone returns an encode-independent copy sharing the immutable tables.
func (t *Tokenizer) clone() *Tokenizer {
	return &Tokenizer{merges: t.merges, rank: t.rank, vocab: t.vocab}
}

// openTokenizer resolves the Tokenizer field: byte, trained-on-corpus BPE,
// or a saved vocab file.
func openTokenizer(cfg Config) (*Tokenizer, error) {
	switch {
	case cfg.Tokenizer == "" || cfg.Tokenizer == "byte":
		return NewByteTokenizer(), nil
	case cfg.Tokenizer == "bpe":
		sample, err := readSample(cfg.Path, cfg.TrainBytes)
		if err != nil {
			return nil, err
		}
		if len(sample) == 0 {
			return nil, fmt.Errorf("%w: empty corpus %s", ErrCorpus, cfg.Path)
		}
		vocab := cfg.VocabSize
		if vocab == 0 {
			vocab = 512
		}
		return TrainBPE(sample, vocab)
	case strings.HasSuffix(cfg.Tokenizer, ".json"):
		return LoadTokenizerFile(cfg.Tokenizer)
	default:
		return nil, fmt.Errorf("%w: tokenizer %q (want \"byte\", \"bpe\" or a .json vocab path)", ErrConfig, cfg.Tokenizer)
	}
}

// readSample reads up to max bytes from the head of the corpus at path
// (the bounded BPE training sample), walking the file list in corpus
// order with a document separator between files.
func readSample(path string, max int) ([]byte, error) {
	if max <= 0 {
		max = DefaultTrainBytes
	}
	paths, err := CorpusFiles(path)
	if err != nil {
		return nil, err
	}
	buf := make([]byte, 0, max)
	for _, p := range paths {
		room := max - len(buf)
		if len(buf) > 0 {
			room -= 2 // the inter-file document separator
		}
		if room <= 0 {
			break
		}
		f, err := os.Open(p)
		if err != nil {
			return nil, fmt.Errorf("data: opening corpus: %w", err)
		}
		chunk := make([]byte, room)
		n, err := io.ReadFull(f, chunk)
		f.Close()
		if err != nil && err != io.EOF && err != io.ErrUnexpectedEOF {
			return nil, fmt.Errorf("data: sampling corpus: %w", err)
		}
		if n == 0 {
			continue
		}
		if len(buf) > 0 {
			buf = append(buf, '\n', '\n')
		}
		buf = append(buf, chunk[:n]...)
	}
	return buf, nil
}

// NextBatch packs the next global micro-batch: rows×SeqLen ids and their
// next-token targets, row-major, rank r's row block drawn from shard
// stream r. The returned slices are reused on the next call.
func (l *Loader) NextBatch() (ids, targets []int) {
	seq := l.cfg.SeqLen
	for r, s := range l.streams {
		for row := 0; row < l.rowsPer; row++ {
			if err := s.fill(seq+1, l.cfg.ShuffleBuffer); err != nil {
				// Streams are infinite (epoch-looping); the only failures
				// are corpus-gone-unreadable classes, which are
				// programming or environment errors mid-run.
				panic(err)
			}
			base := (r*l.rowsPer + row) * seq
			copy(l.ids[base:base+seq], s.ring[s.head:s.head+seq])
			copy(l.targets[base:base+seq], s.ring[s.head+1:s.head+1+seq])
			s.head += seq
		}
	}
	l.tokens += int64(l.rows * seq)
	l.batches++
	return l.ids, l.targets
}

// VocabSize returns the tokenizer's id count; the model's vocabulary must
// be at least this large.
func (l *Loader) VocabSize() int { return l.tok.VocabSize() }

// Tokenizer returns the loader's tokenizer (shared tables; do not encode
// concurrently with NextBatch).
func (l *Loader) Tokenizer() *Tokenizer { return l.tok }

// Tokens returns the total tokens emitted so far.
func (l *Loader) Tokens() int64 { return l.tokens }

// Batches returns how many micro-batches have been produced.
func (l *Loader) Batches() int64 { return l.batches }

// Epochs returns the number of completed passes over the corpus by the
// slowest shard stream.
func (l *Loader) Epochs() int {
	min := -1
	for _, s := range l.streams {
		if min == -1 || s.epochs < min {
			min = s.epochs
		}
	}
	if min == -1 {
		return 0
	}
	return min
}

// ResidentTokens reports the tokens currently buffered across shuffle
// buffers and token queues — the bounded working set.
func (l *Loader) ResidentTokens() int {
	n := 0
	for _, s := range l.streams {
		for _, d := range s.shuffle {
			n += len(d)
		}
		n += len(s.ring) - s.head
	}
	return n
}

// Close releases file handles and pooled buffers.
func (l *Loader) Close() error {
	var first error
	for _, s := range l.streams {
		s.release()
		if err := s.close(); err != nil && first == nil {
			first = err
		}
	}
	l.streams = nil
	l.ints.Release()
	return first
}
