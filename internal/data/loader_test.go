package data

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func testLoaderConfig(path string) Config {
	return Config{Path: path, Tokenizer: "byte", SeqLen: 8, ShuffleBuffer: 4, Seed: 11}
}

// Two loaders over the same (file, config, seed) emit bitwise-identical
// batch streams — the property every rank of a world relies on.
func TestLoaderDeterministicAcrossInstances(t *testing.T) {
	path, _ := writeCorpus(t, 17)
	cfg := testLoaderConfig(path)
	a, err := Open(cfg, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := Open(cfg, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	for step := 0; step < 50; step++ {
		ai, at := a.NextBatch()
		bi, bt := b.NextBatch()
		for i := range ai {
			if ai[i] != bi[i] || at[i] != bt[i] {
				t.Fatalf("step %d token %d: (%d,%d) vs (%d,%d)", step, i, ai[i], at[i], bi[i], bt[i])
			}
		}
	}
}

// Batch shape and the next-token target contract: targets are ids shifted
// by one within each row's stream.
func TestLoaderBatchShapeAndTargets(t *testing.T) {
	path, _ := writeCorpus(t, 9)
	cfg := testLoaderConfig(path)
	l, err := Open(cfg, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for step := 0; step < 10; step++ {
		ids, targets := l.NextBatch()
		if len(ids) != 4*cfg.SeqLen || len(targets) != len(ids) {
			t.Fatalf("batch shape %d/%d, want %d", len(ids), len(targets), 4*cfg.SeqLen)
		}
		for row := 0; row < 4; row++ {
			base := row * cfg.SeqLen
			for i := 0; i < cfg.SeqLen-1; i++ {
				if targets[base+i] != ids[base+i+1] {
					t.Fatalf("step %d row %d pos %d: target %d != next id %d",
						step, row, i, targets[base+i], ids[base+i+1])
				}
			}
		}
	}
	if l.Batches() != 10 || l.Tokens() != int64(10*4*cfg.SeqLen) {
		t.Fatalf("counters: batches %d tokens %d", l.Batches(), l.Tokens())
	}
}

// Row blocks follow the shard assignment: with a byte tokenizer and
// single-char documents, rank r's rows contain only shard-r document
// bytes (plus EOT separators).
func TestLoaderRowBlocksMatchShards(t *testing.T) {
	// Doc d is the single letter 'a'+d repeated; d mod 2 fixes its shard.
	var sb strings.Builder
	for d := 0; d < 10; d++ {
		sb.WriteString(strings.Repeat(string(rune('a'+d)), 20))
		sb.WriteString("\n\n")
	}
	path := filepath.Join(t.TempDir(), "corpus.txt")
	if err := os.WriteFile(path, []byte(sb.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg := Config{Path: path, Tokenizer: "byte", SeqLen: 6, ShuffleBuffer: 2, Seed: 3}
	l, err := Open(cfg, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for step := 0; step < 20; step++ {
		ids, _ := l.NextBatch()
		for row := 0; row < 4; row++ {
			rank := row / 2 // rowsPer = 2
			for i := 0; i < cfg.SeqLen; i++ {
				id := ids[row*cfg.SeqLen+i]
				if id == EOT {
					continue
				}
				doc := id - 'a'
				if doc < 0 || doc >= 10 {
					t.Fatalf("unexpected token %d", id)
				}
				if ShardOf(doc, 2) != rank {
					t.Fatalf("step %d: doc %d token in rank %d's rows", step, doc, rank)
				}
			}
		}
	}
}

// The working set stays bounded on a corpus much larger than the shuffle
// buffer: resident tokens never exceed the shuffle buffer + one batch +
// one document per stream, regardless of how much of the file streams by.
func TestLoaderBoundedMemory(t *testing.T) {
	// 400 documents: two orders of magnitude beyond 4 shuffled docs/shard.
	var sb strings.Builder
	for d := 0; d < 400; d++ {
		fmt.Fprintf(&sb, "doc %d %s\n\n", d, strings.Repeat("lorem ipsum dolor sit amet ", 2))
	}
	path := filepath.Join(t.TempDir(), "big.txt")
	if err := os.WriteFile(path, []byte(sb.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg := Config{Path: path, Tokenizer: "byte", SeqLen: 16, ShuffleBuffer: 4, Seed: 5, ChunkBytes: 1 << 10, MaxDocBytes: 1 << 10}
	const world = 2
	l, err := Open(cfg, 4, world)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	// Per stream: shuffle (4 docs ≤ 4·(maxDoc+1)) + ring (< seqLen+1+doc).
	perStream := cfg.ShuffleBuffer*(cfg.MaxDocBytes+1) + cfg.SeqLen + 1 + cfg.MaxDocBytes + 1
	limit := world * perStream
	for step := 0; step < 500; step++ {
		l.NextBatch()
		if got := l.ResidentTokens(); got > limit {
			t.Fatalf("step %d: resident %d tokens exceeds bound %d", step, got, limit)
		}
	}
	if l.Epochs() < 1 {
		t.Fatalf("expected at least one full pass over the corpus, got %d", l.Epochs())
	}
}

// After warm-up, batch production allocates nothing — the PR 5 contract
// extended to the data path.
func TestLoaderSteadyStateAllocations(t *testing.T) {
	path, _ := writeCorpus(t, 31)
	cfg := testLoaderConfig(path)
	l, err := Open(cfg, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for i := 0; i < 50; i++ { // warm-up: pools fill, ring reaches high water
		l.NextBatch()
	}
	avg := testing.AllocsPerRun(100, func() { l.NextBatch() })
	if avg > 0.5 {
		t.Fatalf("steady-state NextBatch allocates %.1f allocs/op, want 0", avg)
	}
}

// BPE mode trains on the corpus head at Open and the loader reports the
// actual vocabulary; a .json tokenizer spec loads a saved vocab.
func TestLoaderTokenizerModes(t *testing.T) {
	path, _ := writeCorpus(t, 8)
	bpe := Config{Path: path, Tokenizer: "bpe", VocabSize: 300, SeqLen: 8, ShuffleBuffer: 2, Seed: 1}
	l, err := Open(bpe, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if l.VocabSize() <= 257 || l.VocabSize() > 300 {
		t.Fatalf("bpe vocab %d, want in (257, 300]", l.VocabSize())
	}
	vocabPath := filepath.Join(t.TempDir(), "vocab.json")
	if err := SaveTokenizerFile(l.Tokenizer(), vocabPath); err != nil {
		t.Fatal(err)
	}
	wantVocab := l.VocabSize()
	l.Close()

	fromFile := Config{Path: path, Tokenizer: vocabPath, SeqLen: 8, ShuffleBuffer: 2, Seed: 1}
	l2, err := Open(fromFile, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.VocabSize() != wantVocab {
		t.Fatalf("loaded vocab %d, want %d", l2.VocabSize(), wantVocab)
	}
}

// Open rejects bad geometry, unknown tokenizers and unusable corpora with
// structured errors.
func TestOpenErrors(t *testing.T) {
	path, _ := writeCorpus(t, 4)
	ok := testLoaderConfig(path)
	cases := []struct {
		name  string
		cfg   Config
		rows  int
		world int
		want  error
	}{
		{"rows not multiple of world", ok, 3, 2, ErrConfig},
		{"zero rows", ok, 0, 1, ErrConfig},
		{"seq too short", Config{Path: path, SeqLen: 1}, 2, 1, ErrConfig},
		{"negative shuffle", Config{Path: path, SeqLen: 8, ShuffleBuffer: -1}, 2, 1, ErrConfig},
		{"unknown tokenizer", Config{Path: path, Tokenizer: "wordpiece", SeqLen: 8}, 2, 1, ErrConfig},
		{"low bpe budget", Config{Path: path, Tokenizer: "bpe", VocabSize: 10, SeqLen: 8}, 2, 1, ErrVocab},
	}
	for _, tc := range cases {
		if _, err := Open(tc.cfg, tc.rows, tc.world); !errors.Is(err, tc.want) {
			t.Errorf("%s: error %v, want %v", tc.name, err, tc.want)
		}
	}
	if _, err := Open(testLoaderConfig(filepath.Join(t.TempDir(), "missing.txt")), 2, 1); err == nil {
		t.Error("missing corpus: want error")
	}
	empty := filepath.Join(t.TempDir(), "empty.txt")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	l, err := Open(testLoaderConfig(empty), 2, 1)
	if err == nil {
		// The empty corpus surfaces on first fill (streams are lazy);
		// either Open or the first batch must fail cleanly.
		func() {
			defer func() {
				if recover() == nil {
					t.Error("empty corpus: want Open error or NextBatch panic")
				}
			}()
			l.NextBatch()
		}()
		l.Close()
	}
}

// A directory corpus is bitwise-equivalent to its concatenation: loaders
// over the split and single-file forms of the same corpus emit identical
// batch streams, far enough to wrap epochs on every shard.
func TestLoaderDirectoryMatchesSingleFile(t *testing.T) {
	single, _ := writeCorpus(t, 17)
	dir, _ := writeCorpusDir(t, 17, 3)
	a, err := Open(testLoaderConfig(single), 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := Open(testLoaderConfig(dir), 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	for step := 0; step < 80; step++ {
		ai, at := a.NextBatch()
		bi, bt := b.NextBatch()
		for i := range ai {
			if ai[i] != bi[i] || at[i] != bt[i] {
				t.Fatalf("step %d token %d: single (%d,%d) vs directory (%d,%d)",
					step, i, ai[i], at[i], bi[i], bt[i])
			}
		}
	}
	if a.Epochs() != b.Epochs() {
		t.Fatalf("epochs: single %d vs directory %d", a.Epochs(), b.Epochs())
	}
	if b.Epochs() < 1 {
		t.Fatalf("test too short to cover the multi-file epoch wrap (epochs %d)", b.Epochs())
	}
}

// The zero-allocation steady state survives multi-file epoch wraps: the
// seek-based restart reuses every open handle and buffer.
func TestLoaderDirectorySteadyStateAllocations(t *testing.T) {
	dir, _ := writeCorpusDir(t, 31, 4)
	l, err := Open(testLoaderConfig(dir), 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for i := 0; i < 50; i++ { // warm-up: pools fill, several epochs wrap
		l.NextBatch()
	}
	if l.Epochs() < 1 {
		t.Fatalf("warm-up did not wrap an epoch (epochs %d); allocs check would miss the wrap path", l.Epochs())
	}
	avg := testing.AllocsPerRun(100, func() { l.NextBatch() })
	if avg > 0.5 {
		t.Fatalf("steady-state NextBatch over a directory allocates %.1f allocs/op, want 0", avg)
	}
}

// BPE mode samples across the file list: training on a directory corpus
// succeeds and yields the same vocabulary as the concatenated file.
func TestLoaderDirectoryBPE(t *testing.T) {
	single, _ := writeCorpus(t, 8)
	dir, _ := writeCorpusDir(t, 8, 2)
	a, err := Open(Config{Path: single, Tokenizer: "bpe", VocabSize: 300, SeqLen: 8, ShuffleBuffer: 2, Seed: 1}, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := Open(Config{Path: dir, Tokenizer: "bpe", VocabSize: 300, SeqLen: 8, ShuffleBuffer: 2, Seed: 1}, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if a.VocabSize() != b.VocabSize() {
		t.Fatalf("bpe vocab: single %d vs directory %d (sample must be the concatenation)",
			a.VocabSize(), b.VocabSize())
	}
}

// TrainFromCorpus frames a directory exactly like the concatenated file.
func TestTrainFromCorpusDirectory(t *testing.T) {
	single, _ := writeCorpus(t, 12)
	dir, _ := writeCorpusDir(t, 12, 3)
	ta, sa, err := TrainFromCorpus(single, 300, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	tb, sb, err := TrainFromCorpus(dir, 300, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if sa.Docs != sb.Docs || sa.SampleBytes != sb.SampleBytes || sa.SampleTokens != sb.SampleTokens {
		t.Fatalf("train stats diverge: single %+v vs directory %+v", sa, sb)
	}
	if ta.VocabSize() != tb.VocabSize() {
		t.Fatalf("vocab sizes diverge: %d vs %d", ta.VocabSize(), tb.VocabSize())
	}
}
