package data

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/arena"
)

// Property: for every world size, ShardOf partitions any document range —
// per-rank sets are pairwise disjoint, their union covers the corpus
// exactly, and the assignment is a pure function (stable across calls and
// across world sizes in the sense that changing N never drops or
// duplicates a document).
func TestShardAssignmentPartition(t *testing.T) {
	f := func(docsRaw uint8, worldRaw uint8) bool {
		docs := int(docsRaw)%200 + 1
		world := int(worldRaw)%12 + 1
		seen := make([]int, docs) // how many ranks claimed each doc
		for r := 0; r < world; r++ {
			for d := 0; d < docs; d++ {
				if ShardOf(d, world) == r {
					seen[d]++
				}
			}
		}
		for d, n := range seen {
			if n != 1 {
				t.Logf("doc %d claimed by %d ranks (world %d)", d, n, world)
				return false
			}
		}
		// Stability: the assignment is deterministic.
		for d := 0; d < docs; d++ {
			if ShardOf(d, world) != ShardOf(d, world) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// writeCorpus materializes numbered blank-line-separated documents and
// returns the path plus the document texts.
func writeCorpus(t testing.TB, docs int) (string, []string) {
	t.Helper()
	var sb strings.Builder
	texts := make([]string, docs)
	for d := 0; d < docs; d++ {
		texts[d] = fmt.Sprintf("document %03d body text", d)
		sb.WriteString(texts[d])
		sb.WriteString("\n\n")
	}
	path := filepath.Join(t.TempDir(), "corpus.txt")
	if err := os.WriteFile(path, []byte(sb.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	return path, texts
}

// The stream level honors the assignment: rank r's stream yields exactly
// the documents ShardOf maps to r, in epoch order, for every world size.
func TestShardStreamsPartitionTheCorpus(t *testing.T) {
	const docs = 23
	path, texts := writeCorpus(t, docs)
	tok := NewByteTokenizer()
	for world := 1; world <= 6; world++ {
		claimed := make([]int, docs)
		for r := 0; r < world; r++ {
			ints := arena.NewInts()
			s, err := newShardStream(path, r, world, tok.clone(), 1, 16, 0, ints)
			if err != nil {
				t.Fatal(err)
			}
			// One full epoch of this rank's documents.
			perRank := docs / world
			if r < docs%world {
				perRank++
			}
			for i := 0; i < perRank; i++ {
				buf, err := s.nextShardDoc()
				if err != nil {
					t.Fatal(err)
				}
				if buf[len(buf)-1] != EOT {
					t.Fatalf("world %d rank %d: doc missing EOT terminator", world, r)
				}
				body, err := tok.Decode(buf[:len(buf)-1])
				if err != nil {
					t.Fatal(err)
				}
				found := -1
				for d, text := range texts {
					if string(body) == text {
						found = d
						break
					}
				}
				if found == -1 {
					t.Fatalf("world %d rank %d: unknown document %q", world, r, body)
				}
				if ShardOf(found, world) != r {
					t.Fatalf("world %d: doc %d surfaced on rank %d, want %d",
						world, found, r, ShardOf(found, world))
				}
				claimed[found]++
			}
			s.close()
		}
		for d, n := range claimed {
			if n != 1 {
				t.Fatalf("world %d: doc %d claimed %d times, want exactly once", world, d, n)
			}
		}
	}
}

// A rank whose shard is empty (fewer documents than ranks) fails with
// ErrCorpus instead of spinning on the file forever.
func TestShardStreamStarvedRank(t *testing.T) {
	path, _ := writeCorpus(t, 2)
	s, err := newShardStream(path, 3, 4, NewByteTokenizer(), 1, 0, 0, arena.NewInts())
	if err != nil {
		t.Fatal(err)
	}
	defer s.close()
	if _, err := s.nextShardDoc(); !errors.Is(err, ErrCorpus) {
		t.Fatalf("starved rank error = %v, want ErrCorpus", err)
	}
}

// Epoch looping: draining past the end of the corpus rewinds and replays
// the same shard in the same order.
func TestShardStreamEpochLoop(t *testing.T) {
	path, _ := writeCorpus(t, 5)
	tok := NewByteTokenizer()
	s, err := newShardStream(path, 1, 2, tok, 1, 32, 0, arena.NewInts())
	if err != nil {
		t.Fatal(err)
	}
	defer s.close()
	var first []string
	for i := 0; i < 2; i++ { // docs 1, 3
		buf, err := s.nextShardDoc()
		if err != nil {
			t.Fatal(err)
		}
		body, _ := tok.Decode(buf[:len(buf)-1])
		first = append(first, string(body))
	}
	for epoch := 0; epoch < 3; epoch++ {
		for i := 0; i < 2; i++ {
			buf, err := s.nextShardDoc()
			if err != nil {
				t.Fatal(err)
			}
			body, _ := tok.Decode(buf[:len(buf)-1])
			if string(body) != first[i] {
				t.Fatalf("epoch %d doc %d = %q, want %q", epoch+1, i, body, first[i])
			}
		}
	}
	if s.epochs < 3 {
		t.Fatalf("epochs = %d, want ≥ 3", s.epochs)
	}
}

// writeCorpusDir splits the same numbered documents across `files` sorted
// files in a directory, cycling blocks so every file holds a contiguous
// run of the global document sequence. Returns the directory and texts.
func writeCorpusDir(t testing.TB, docs, files int) (string, []string) {
	t.Helper()
	dir := t.TempDir()
	texts := make([]string, docs)
	per := (docs + files - 1) / files
	for fi := 0; fi < files; fi++ {
		var sb strings.Builder
		for d := fi * per; d < (fi+1)*per && d < docs; d++ {
			texts[d] = fmt.Sprintf("document %03d body text", d)
			sb.WriteString(texts[d])
			sb.WriteString("\n\n")
		}
		name := filepath.Join(dir, fmt.Sprintf("shard-%02d.txt", fi))
		if err := os.WriteFile(name, []byte(sb.String()), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir, texts
}

// CorpusFiles resolves a file to itself and a directory to its sorted
// regular files, skipping dotfiles and subdirectories, and rejects an
// empty directory with ErrCorpus.
func TestCorpusFilesResolution(t *testing.T) {
	path, _ := writeCorpus(t, 3)
	got, err := CorpusFiles(path)
	if err != nil || len(got) != 1 || got[0] != path {
		t.Fatalf("file corpus resolved to %v (%v), want [%s]", got, err, path)
	}

	dir := t.TempDir()
	for _, name := range []string{"b.txt", "a.txt", "c.txt"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("x\n"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.WriteFile(filepath.Join(dir, ".hidden"), []byte("x\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Mkdir(filepath.Join(dir, "sub"), 0o755); err != nil {
		t.Fatal(err)
	}
	got, err = CorpusFiles(dir)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{filepath.Join(dir, "a.txt"), filepath.Join(dir, "b.txt"), filepath.Join(dir, "c.txt")}
	if len(got) != len(want) {
		t.Fatalf("directory resolved to %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("directory resolved to %v, want %v (sorted, no dotfiles/subdirs)", got, want)
		}
	}

	if _, err := CorpusFiles(t.TempDir()); !errors.Is(err, ErrCorpus) {
		t.Fatalf("empty directory error = %v, want ErrCorpus", err)
	}
	if _, err := CorpusFiles(filepath.Join(dir, "missing")); err == nil {
		t.Fatal("missing path: want error")
	}
}

// The multi-file corpus is exactly the concatenation of its sorted files:
// for every world size, rank r's document sequence over the directory is
// identical to its sequence over the single concatenated file — the
// global document index never notices the file boundaries. Runs past the
// epoch wrap so the seek-everything restart is covered too.
func TestMultiFileStreamsMatchConcatenated(t *testing.T) {
	const docs = 23
	single, _ := writeCorpus(t, docs)
	dir, _ := writeCorpusDir(t, docs, 4)
	tok := NewByteTokenizer()
	for world := 1; world <= 5; world++ {
		for r := 0; r < world; r++ {
			a, err := newShardStream(single, r, world, tok.clone(), 1, 16, 0, arena.NewInts())
			if err != nil {
				t.Fatal(err)
			}
			b, err := newShardStream(dir, r, world, tok.clone(), 1, 16, 0, arena.NewInts())
			if err != nil {
				t.Fatal(err)
			}
			// Two full epochs of this rank's documents plus change.
			draws := 2*(docs/world+1) + 3
			for i := 0; i < draws; i++ {
				da, err := a.nextShardDoc()
				if err != nil {
					t.Fatal(err)
				}
				db, err := b.nextShardDoc()
				if err != nil {
					t.Fatal(err)
				}
				if len(da) != len(db) {
					t.Fatalf("world %d rank %d draw %d: doc lengths %d vs %d", world, r, i, len(da), len(db))
				}
				for j := range da {
					if da[j] != db[j] {
						t.Fatalf("world %d rank %d draw %d token %d: %d vs %d", world, r, i, j, da[j], db[j])
					}
				}
			}
			if a.epochs != b.epochs {
				t.Fatalf("world %d rank %d: epochs %d vs %d", world, r, a.epochs, b.epochs)
			}
			a.close()
			b.close()
		}
	}
}

// Property: the file split of a corpus is invisible to sharding — for any
// document count, file count and world size, every document surfaces on
// exactly the rank ShardOf assigns it when streamed from a directory.
func TestMultiFileShardAssignmentProperty(t *testing.T) {
	tok := NewByteTokenizer()
	f := func(docsRaw, filesRaw, worldRaw uint8) bool {
		docs := int(docsRaw)%20 + 1
		files := int(filesRaw)%5 + 1
		world := int(worldRaw)%docs + 1 // world ≤ docs: no starved ranks
		dir, texts := writeCorpusDir(t, docs, files)
		claimed := make([]int, docs)
		for r := 0; r < world; r++ {
			s, err := newShardStream(dir, r, world, tok.clone(), 1, 16, 0, arena.NewInts())
			if err != nil {
				t.Log(err)
				return false
			}
			perRank := docs / world
			if r < docs%world {
				perRank++
			}
			for i := 0; i < perRank; i++ {
				buf, err := s.nextShardDoc()
				if err != nil {
					t.Log(err)
					return false
				}
				body, err := tok.Decode(buf[:len(buf)-1])
				if err != nil {
					t.Log(err)
					return false
				}
				found := -1
				for d, text := range texts {
					if string(body) == text {
						found = d
						break
					}
				}
				if found == -1 || ShardOf(found, world) != r {
					t.Logf("docs %d files %d world %d: doc %d on rank %d", docs, files, world, found, r)
					return false
				}
				claimed[found]++
			}
			s.close()
		}
		for _, n := range claimed {
			if n != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: ShardOf balances every world — rank loads differ by at most
// one document, and the heavier ranks are exactly the first docs%world.
func TestShardAssignmentBalance(t *testing.T) {
	f := func(docsRaw, worldRaw uint8) bool {
		docs := int(docsRaw)%300 + 1
		world := int(worldRaw)%16 + 1
		load := make([]int, world)
		for d := 0; d < docs; d++ {
			load[ShardOf(d, world)]++
		}
		for r, n := range load {
			want := docs / world
			if r < docs%world {
				want++
			}
			if n != want {
				t.Logf("docs %d world %d rank %d: load %d, want %d", docs, world, r, n, want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Epoch looping over a directory replays the same shard in the same
// order, and a rank with no documents anywhere in the file set fails with
// ErrCorpus after one full cycle instead of spinning.
func TestMultiFileEpochLoopAndStarvation(t *testing.T) {
	dir, _ := writeCorpusDir(t, 5, 3)
	tok := NewByteTokenizer()
	s, err := newShardStream(dir, 1, 2, tok, 1, 32, 0, arena.NewInts())
	if err != nil {
		t.Fatal(err)
	}
	defer s.close()
	var first []string
	for i := 0; i < 2; i++ { // docs 1, 3
		buf, err := s.nextShardDoc()
		if err != nil {
			t.Fatal(err)
		}
		body, _ := tok.Decode(buf[:len(buf)-1])
		first = append(first, string(body))
	}
	for epoch := 0; epoch < 3; epoch++ {
		for i := 0; i < 2; i++ {
			buf, err := s.nextShardDoc()
			if err != nil {
				t.Fatal(err)
			}
			body, _ := tok.Decode(buf[:len(buf)-1])
			if string(body) != first[i] {
				t.Fatalf("epoch %d doc %d = %q, want %q", epoch+1, i, body, first[i])
			}
		}
	}
	if s.epochs < 3 {
		t.Fatalf("epochs = %d, want ≥ 3", s.epochs)
	}

	starved, err := newShardStream(dir, 5, 6, NewByteTokenizer(), 1, 0, 0, arena.NewInts())
	if err != nil {
		t.Fatal(err)
	}
	defer starved.close()
	if _, err := starved.nextShardDoc(); !errors.Is(err, ErrCorpus) {
		t.Fatalf("starved rank over directory: error = %v, want ErrCorpus", err)
	}
}
