package data

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/arena"
)

// Property: for every world size, ShardOf partitions any document range —
// per-rank sets are pairwise disjoint, their union covers the corpus
// exactly, and the assignment is a pure function (stable across calls and
// across world sizes in the sense that changing N never drops or
// duplicates a document).
func TestShardAssignmentPartition(t *testing.T) {
	f := func(docsRaw uint8, worldRaw uint8) bool {
		docs := int(docsRaw)%200 + 1
		world := int(worldRaw)%12 + 1
		seen := make([]int, docs) // how many ranks claimed each doc
		for r := 0; r < world; r++ {
			for d := 0; d < docs; d++ {
				if ShardOf(d, world) == r {
					seen[d]++
				}
			}
		}
		for d, n := range seen {
			if n != 1 {
				t.Logf("doc %d claimed by %d ranks (world %d)", d, n, world)
				return false
			}
		}
		// Stability: the assignment is deterministic.
		for d := 0; d < docs; d++ {
			if ShardOf(d, world) != ShardOf(d, world) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// writeCorpus materializes numbered blank-line-separated documents and
// returns the path plus the document texts.
func writeCorpus(t testing.TB, docs int) (string, []string) {
	t.Helper()
	var sb strings.Builder
	texts := make([]string, docs)
	for d := 0; d < docs; d++ {
		texts[d] = fmt.Sprintf("document %03d body text", d)
		sb.WriteString(texts[d])
		sb.WriteString("\n\n")
	}
	path := filepath.Join(t.TempDir(), "corpus.txt")
	if err := os.WriteFile(path, []byte(sb.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	return path, texts
}

// The stream level honors the assignment: rank r's stream yields exactly
// the documents ShardOf maps to r, in epoch order, for every world size.
func TestShardStreamsPartitionTheCorpus(t *testing.T) {
	const docs = 23
	path, texts := writeCorpus(t, docs)
	tok := NewByteTokenizer()
	for world := 1; world <= 6; world++ {
		claimed := make([]int, docs)
		for r := 0; r < world; r++ {
			ints := arena.NewInts()
			s, err := newShardStream(path, r, world, tok.clone(), 1, 16, 0, ints)
			if err != nil {
				t.Fatal(err)
			}
			// One full epoch of this rank's documents.
			perRank := docs / world
			if r < docs%world {
				perRank++
			}
			for i := 0; i < perRank; i++ {
				buf, err := s.nextShardDoc()
				if err != nil {
					t.Fatal(err)
				}
				if buf[len(buf)-1] != EOT {
					t.Fatalf("world %d rank %d: doc missing EOT terminator", world, r)
				}
				body, err := tok.Decode(buf[:len(buf)-1])
				if err != nil {
					t.Fatal(err)
				}
				found := -1
				for d, text := range texts {
					if string(body) == text {
						found = d
						break
					}
				}
				if found == -1 {
					t.Fatalf("world %d rank %d: unknown document %q", world, r, body)
				}
				if ShardOf(found, world) != r {
					t.Fatalf("world %d: doc %d surfaced on rank %d, want %d",
						world, found, r, ShardOf(found, world))
				}
				claimed[found]++
			}
			s.close()
		}
		for d, n := range claimed {
			if n != 1 {
				t.Fatalf("world %d: doc %d claimed %d times, want exactly once", world, d, n)
			}
		}
	}
}

// A rank whose shard is empty (fewer documents than ranks) fails with
// ErrCorpus instead of spinning on the file forever.
func TestShardStreamStarvedRank(t *testing.T) {
	path, _ := writeCorpus(t, 2)
	s, err := newShardStream(path, 3, 4, NewByteTokenizer(), 1, 0, 0, arena.NewInts())
	if err != nil {
		t.Fatal(err)
	}
	defer s.close()
	if _, err := s.nextShardDoc(); !errors.Is(err, ErrCorpus) {
		t.Fatalf("starved rank error = %v, want ErrCorpus", err)
	}
}

// Epoch looping: draining past the end of the corpus rewinds and replays
// the same shard in the same order.
func TestShardStreamEpochLoop(t *testing.T) {
	path, _ := writeCorpus(t, 5)
	tok := NewByteTokenizer()
	s, err := newShardStream(path, 1, 2, tok, 1, 32, 0, arena.NewInts())
	if err != nil {
		t.Fatal(err)
	}
	defer s.close()
	var first []string
	for i := 0; i < 2; i++ { // docs 1, 3
		buf, err := s.nextShardDoc()
		if err != nil {
			t.Fatal(err)
		}
		body, _ := tok.Decode(buf[:len(buf)-1])
		first = append(first, string(body))
	}
	for epoch := 0; epoch < 3; epoch++ {
		for i := 0; i < 2; i++ {
			buf, err := s.nextShardDoc()
			if err != nil {
				t.Fatal(err)
			}
			body, _ := tok.Decode(buf[:len(buf)-1])
			if string(body) != first[i] {
				t.Fatalf("epoch %d doc %d = %q, want %q", epoch+1, i, body, first[i])
			}
		}
	}
	if s.epochs < 3 {
		t.Fatalf("epochs = %d, want ≥ 3", s.epochs)
	}
}
