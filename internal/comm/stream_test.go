package comm

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
)

// A stream must produce bitwise the same reductions as direct synchronous
// collectives: it only moves *when* the ring runs, never what it computes.
func TestStreamMatchesSyncCollectives(t *testing.T) {
	const n, elems = 4, 1000
	mk := func() [][]float32 {
		bufs := make([][]float32, n)
		r := rand.New(rand.NewSource(42))
		for i := range bufs {
			bufs[i] = make([]float32, elems)
			for j := range bufs[i] {
				bufs[i][j] = float32(r.NormFloat64())
			}
		}
		return bufs
	}

	syncBufs := mk()
	ws := NewWorld(n)
	ws.Run(func(c *Comm) {
		parts := Partition(elems, n)
		c.ReduceScatter(syncBufs[c.Rank()], parts)
		c.AllGather(syncBufs[c.Rank()], parts)
	})

	asyncBufs := mk()
	wa := NewWorld(n)
	wa.Run(func(c *Comm) {
		s := NewScheduler(c)
		defer s.Close()
		st := s.Stream("grad")
		parts := Partition(elems, n)
		st.ReduceScatter(F32Buf(asyncBufs[c.Rank()]), parts)
		st.AllGather(F32Buf(asyncBufs[c.Rank()]), parts).Wait()
	})

	for r := 0; r < n; r++ {
		for j := range syncBufs[r] {
			if syncBufs[r][j] != asyncBufs[r][j] {
				t.Fatalf("rank %d elem %d: stream %v != sync %v", r, j, asyncBufs[r][j], syncBufs[r][j])
			}
		}
	}
}

// Handles complete in submission order within a stream, Flush is a
// completion barrier, and the counters add up.
func TestStreamFIFOAndFlush(t *testing.T) {
	const n, ops = 2, 50
	w := NewWorld(n)
	w.Run(func(c *Comm) {
		s := NewScheduler(c)
		defer s.Close()
		st := s.Stream("grad")
		var order []int
		var handles []Handle
		for i := 0; i < ops; i++ {
			i := i
			handles = append(handles, st.Submit(func(c *Comm) {
				c.Barrier() // real cross-rank op so the worker does wire work
				order = append(order, i)
			}))
		}
		st.Flush()
		if len(order) != ops {
			t.Errorf("rank %d: %d ops ran before Flush returned, want %d", c.Rank(), len(order), ops)
		}
		for i, v := range order {
			if v != i {
				t.Errorf("rank %d: op %d ran at position %d (order must be FIFO)", c.Rank(), v, i)
				break
			}
		}
		for i, h := range handles {
			if !h.Done() {
				t.Errorf("rank %d: handle %d not done after Flush", c.Rank(), i)
			}
			h.Wait() // must not block or panic after completion
		}
		if p := st.Pending(); p != 0 {
			t.Errorf("rank %d: %d ops pending after Flush", c.Rank(), p)
		}
		if got := st.Completed(); got != ops {
			t.Errorf("rank %d: Completed() = %d, want %d", c.Rank(), got, ops)
		}
	})
}

// The whole point of a stream: the main goroutine may mutate buffer regions
// disjoint from in-flight ops. Run under -race to prove the overlap is
// data-race free.
func TestStreamOverlapsDisjointCompute(t *testing.T) {
	const n, elems, half = 2, 4096, 2048
	bufs := make([][]float32, n)
	for i := range bufs {
		bufs[i] = make([]float32, elems)
		for j := range bufs[i] {
			bufs[i][j] = 1
		}
	}
	w := NewWorld(n)
	w.Run(func(c *Comm) {
		s := NewScheduler(c)
		defer s.Close()
		st := s.Stream("grad")
		x := bufs[c.Rank()]
		// Reduce the first half while "computing" into the second half.
		st.ReduceScatter(F32Buf(x[:half]), Partition(half, n))
		h := st.AllGather(F32Buf(x[:half]), Partition(half, n))
		for j := half; j < elems; j++ {
			x[j] *= 2
		}
		h.Wait()
		// Now reduce the second half too.
		st.ReduceScatter(F32Buf(x[half:]), Partition(half, n))
		st.AllGather(F32Buf(x[half:]), Partition(half, n)).Wait()
	})
	for r := 0; r < n; r++ {
		if bufs[r][0] != n {
			t.Errorf("rank %d: first half = %v, want %v", r, bufs[r][0], float32(n))
		}
		if bufs[r][elems-1] != 2*n {
			t.Errorf("rank %d: second half = %v, want %v", r, bufs[r][elems-1], float32(2*n))
		}
	}
}

// Distinct streams are independent ordering domains: ops submitted in
// opposite relative order on different ranks still pair correctly, because
// pairing is per-stream. (With a single shared FIFO this schedule would
// deadlock or scramble.) Run under -race.
func TestStreamsAreIndependentOrderingDomains(t *testing.T) {
	const n, elems = 4, 512
	a := make([][]float32, n)
	b := make([][]float32, n)
	for i := range a {
		a[i] = make([]float32, elems)
		b[i] = make([]float32, elems)
		for j := range a[i] {
			a[i][j] = float32(i + 1)
			b[i][j] = float32(10 * (i + 1))
		}
	}
	w := NewWorld(n)
	w.Run(func(c *Comm) {
		s := NewScheduler(c)
		defer s.Close()
		grad := s.Stream("grad")
		pf := s.Stream("prefetch")
		// Even ranks submit grad first, odd ranks prefetch first: the
		// cross-stream submission interleaving differs per rank, the
		// per-stream order does not.
		var h1, h2 Handle
		if c.Rank()%2 == 0 {
			h1 = grad.AllReduce(F32Buf(a[c.Rank()]))
			h2 = pf.AllReduce(F32Buf(b[c.Rank()]))
		} else {
			h2 = pf.AllReduce(F32Buf(b[c.Rank()]))
			h1 = grad.AllReduce(F32Buf(a[c.Rank()]))
		}
		h1.Wait()
		h2.Wait()
	})
	wantA := float32(n * (n + 1) / 2)
	wantB := 10 * wantA
	for r := 0; r < n; r++ {
		if a[r][0] != wantA || a[r][elems-1] != wantA {
			t.Errorf("rank %d: grad-stream sum = %v, want %v", r, a[r][0], wantA)
		}
		if b[r][0] != wantB || b[r][elems-1] != wantB {
			t.Errorf("rank %d: prefetch-stream sum = %v, want %v", r, b[r][0], wantB)
		}
	}
}

// A stream must survive many submit/wait cycles (one per training step).
func TestStreamReuseAcrossSteps(t *testing.T) {
	const n, steps = 3, 20
	var total atomic.Int64
	w := NewWorld(n)
	w.Run(func(c *Comm) {
		s := NewScheduler(c)
		defer s.Close()
		st := s.Stream("grad")
		x := make([]float32, 99)
		for i := 0; i < steps; i++ {
			for j := range x {
				x[j] = 1
			}
			st.ReduceScatter(F32Buf(x), Partition(len(x), n)).Wait()
			total.Add(1)
		}
	})
	if got := total.Load(); got != n*steps {
		t.Errorf("completed %d step waits, want %d", got, n*steps)
	}
}

// The queue depth is an option, not a package constant: a depth-1 stream
// still completes an arbitrarily long schedule (backpressure blocks the
// producer, never drops or reorders), and per-stream overrides beat the
// scheduler default.
func TestQueueDepthOptionAndBackpressure(t *testing.T) {
	const n, ops = 2, 40
	w := NewWorld(n)
	w.Run(func(c *Comm) {
		s := NewScheduler(c, WithQueueDepth(1))
		defer s.Close()
		st := s.Stream("tiny")
		if st.Depth() != 1 {
			t.Errorf("rank %d: depth = %d, want scheduler default 1", c.Rank(), st.Depth())
		}
		wide := s.StreamWithDepth("wide", 128)
		if wide.Depth() != 128 {
			t.Errorf("rank %d: wide depth = %d, want 128", c.Rank(), wide.Depth())
		}
		x := []float32{1}
		var last Handle
		for i := 0; i < ops; i++ {
			last = st.AllReduce(F32Buf(x)) // blocks on the full queue, must not deadlock
		}
		last.Wait()
		if got := st.Completed(); got != ops {
			t.Errorf("rank %d: completed %d ops on depth-1 stream, want %d", c.Rank(), got, ops)
		}
	})
}

// Two schedulers claiming the same stream name on the same rank would share
// wire channels; the second claim must panic instead.
func TestDuplicateStreamNamePanics(t *testing.T) {
	w := NewWorld(1)
	c := w.Comm(0)
	s1 := NewScheduler(c)
	defer s1.Close()
	s1.Stream("grad")
	if s1.Stream("grad") == nil {
		t.Fatal("get-or-create within one scheduler must return the stream")
	}
	s2 := NewScheduler(c)
	defer s2.Close()
	defer func() {
		if recover() == nil {
			t.Error("expected panic for duplicate stream name across schedulers")
		}
	}()
	s2.Stream("grad")
}

// After Close, the name is released and a fresh scheduler may reuse it.
func TestCloseReleasesStreamNames(t *testing.T) {
	w := NewWorld(1)
	c := w.Comm(0)
	s1 := NewScheduler(c)
	s1.Stream("grad")
	s1.Close()
	s1.Close() // double Close is a no-op
	s2 := NewScheduler(c)
	defer s2.Close()
	s2.Stream("grad") // must not panic
}

// Stats and ResetStats are safe while streams are live: harness goroutines
// may poll mid-flight (run under -race), and a Scheduler.Barrier quiesce
// makes reset/read exact.
func TestStatsSafeWithLiveStreams(t *testing.T) {
	const n, elems, rounds = 2, 256, 30
	w := NewWorld(n)
	stop := make(chan struct{})
	var poll sync.WaitGroup
	poll.Add(1)
	go func() { // harness goroutine polling while collectives are in flight
		defer poll.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = w.Stats(0)
				_ = w.TotalElemsSent()
			}
		}
	}()
	w.Run(func(c *Comm) {
		s := NewScheduler(c)
		defer s.Close()
		st := s.Stream("grad")
		x := make([]float32, elems)
		for i := 0; i < rounds; i++ {
			st.AllReduce(F32Buf(x))
		}
		// Quiesce, then reset: afterwards the counters are exactly zero on
		// every rank even though the streams still exist.
		s.Barrier()
		c.Barrier() // all ranks quiesced before any rank resets
		if c.Rank() == 0 {
			w.ResetStats()
		}
		c.Barrier()
		st.AllReduce(F32Buf(x))
		s.Barrier()
	})
	close(stop)
	poll.Wait()
	// Post-reset traffic is exactly one allreduce per rank.
	want := 2 * int64(elems) * int64(n-1) / int64(n)
	for r := 0; r < n; r++ {
		st := w.Stats(r)
		// The reset happens between two barriers, but the second barrier's
		// own messages land after it — subtract the dissemination rounds
		// (nil payloads, 0 elems) by checking elems only.
		if st.ElemsSent != want {
			t.Errorf("rank %d: %d elems after quiesced reset, want %d", r, st.ElemsSent, want)
		}
	}
}

// Native byte accounting: an F16 buffer moves 2 bytes per element on the
// wire, an F32 buffer 4 — measured by Stats, not inferred.
func TestBufferDTypeByteAccounting(t *testing.T) {
	const n, elems = 4, 1200
	run := func(d DType) Stats {
		w := NewWorld(n)
		w.Run(func(c *Comm) {
			s := NewScheduler(c)
			defer s.Close()
			x := make([]float32, elems)
			s.Stream("grad").AllGather(Buffer{Data: x, DType: d}, Partition(elems, n)).Wait()
		})
		return w.Stats(0)
	}
	f32 := run(F32)
	f16 := run(F16)
	if f32.ElemsSent != f16.ElemsSent {
		t.Fatalf("element counts must be dtype-independent: %d vs %d", f32.ElemsSent, f16.ElemsSent)
	}
	if want := f32.ElemsSent * 4; f32.BytesSent != want {
		t.Errorf("F32 bytes = %d, want %d", f32.BytesSent, want)
	}
	if want := f16.ElemsSent * 2; f16.BytesSent != want {
		t.Errorf("F16 bytes = %d, want %d", f16.BytesSent, want)
	}
	if f16.PerStream["grad"] != f16.ElemsSent {
		t.Errorf("PerStream[grad] = %d, want %d", f16.PerStream["grad"], f16.ElemsSent)
	}
}

// The hierarchical all-reduce flows through streams like the flat
// collectives: same sums, dtype-accurate bytes, intra/inter split intact.
func TestStreamHierarchicalAllReduce(t *testing.T) {
	const n, nodeSize, elems = 8, 4, 300
	bufs := make([][]float32, n)
	for i := range bufs {
		bufs[i] = make([]float32, elems)
		for j := range bufs[i] {
			bufs[i][j] = float32(i + 1)
		}
	}
	w := NewWorld(n)
	w.Run(func(c *Comm) {
		s := NewScheduler(c)
		defer s.Close()
		s.Stream("grad").AllReduceHierarchical(F16Buf(bufs[c.Rank()]), nodeSize).Wait()
	})
	want := float32(n * (n + 1) / 2)
	for r := 0; r < n; r++ {
		if bufs[r][0] != want || bufs[r][elems-1] != want {
			t.Errorf("rank %d: hierarchical sum = %v, want %v", r, bufs[r][0], want)
		}
	}
	st := w.Stats(0)
	if st.PerGroup["hier-intra"].Elems == 0 || st.PerGroup["hier-inter"].Elems == 0 {
		t.Error("intra/inter accounting split missing on the stream path")
	}
	if st.BytesSent != 2*st.ElemsSent {
		t.Errorf("F16 hierarchical: %d bytes for %d elems, want 2 B/elem", st.BytesSent, st.ElemsSent)
	}
}

// Buffer.Quantize rounds through binary16 for F16 and leaves F32 alone.
func TestBufferQuantize(t *testing.T) {
	x := []float32{1.0002441, 0.1, -3.14159}
	orig := append([]float32(nil), x...)
	F32Buf(x).Quantize()
	for i := range x {
		if x[i] != orig[i] {
			t.Fatalf("F32 Quantize must be a no-op, elem %d changed", i)
		}
	}
	F16Buf(x).Quantize()
	if x[1] == orig[1] {
		t.Error("0.1 is not fp16-representable; Quantize should have rounded it")
	}
	b := F16Buf(append([]float32(nil), x...))
	before := append([]float32(nil), b.Data...)
	b.Quantize() // idempotent on already-rounded values
	for i := range b.Data {
		if b.Data[i] != before[i] {
			t.Errorf("Quantize not idempotent at %d", i)
		}
	}
	if F16Buf(x).Bytes() != int64(2*len(x)) || F32Buf(x).Bytes() != int64(4*len(x)) {
		t.Error("Buffer.Bytes wrong")
	}
}
