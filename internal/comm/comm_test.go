package comm

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"testing/quick"
)

func randVec(r *rand.Rand, n int) []float32 {
	v := make([]float32, n)
	for i := range v {
		v[i] = float32(r.NormFloat64())
	}
	return v
}

// expectedSum builds the elementwise sum of per-rank inputs.
func expectedSum(inputs [][]float32) []float32 {
	out := make([]float32, len(inputs[0]))
	for _, in := range inputs {
		for i, v := range in {
			out[i] += v
		}
	}
	return out
}

func approxEqual(a, b []float32, tol float32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		d := a[i] - b[i]
		if d < 0 {
			d = -d
		}
		if d > tol {
			return false
		}
	}
	return true
}

func TestAllReduceSums(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 7, 8, 16} {
		for _, size := range []int{1, 5, 64, 1000} {
			r := rand.New(rand.NewSource(int64(n*1000 + size)))
			inputs := make([][]float32, n)
			for i := range inputs {
				inputs[i] = randVec(r, size)
			}
			want := expectedSum(inputs)
			w := NewWorld(n)
			results := make([][]float32, n)
			w.Run(func(c *Comm) {
				x := append([]float32(nil), inputs[c.Rank()]...)
				c.AllReduce(x)
				results[c.Rank()] = x
			})
			for rk, got := range results {
				if !approxEqual(got, want, 1e-4) {
					t.Fatalf("n=%d size=%d rank %d: allreduce mismatch", n, size, rk)
				}
			}
		}
	}
}

func TestAllReduceAvg(t *testing.T) {
	n := 4
	w := NewWorld(n)
	results := make([][]float32, n)
	w.Run(func(c *Comm) {
		x := []float32{float32(c.Rank()), 8}
		c.AllReduceAvg(x)
		results[c.Rank()] = x
	})
	for rk, got := range results {
		if got[0] != 1.5 || got[1] != 8 {
			t.Errorf("rank %d: avg = %v, want [1.5 8]", rk, got)
		}
	}
}

func TestReduceScatterThenAllGatherEqualsAllReduce(t *testing.T) {
	for _, n := range []int{2, 3, 5, 8} {
		size := 97 // deliberately not divisible by n
		r := rand.New(rand.NewSource(int64(n)))
		inputs := make([][]float32, n)
		for i := range inputs {
			inputs[i] = randVec(r, size)
		}
		want := expectedSum(inputs)
		w := NewWorld(n)
		results := make([][]float32, n)
		w.Run(func(c *Comm) {
			x := append([]float32(nil), inputs[c.Rank()]...)
			parts := Partition(len(x), c.Size())
			shard := c.ReduceScatter(x, parts)
			// Shard must alias x at this rank's partition.
			p := parts[c.Rank()]
			if len(shard) != p.Len() {
				t.Errorf("rank %d shard len %d, want %d", c.Rank(), len(shard), p.Len())
			}
			c.AllGather(x, parts)
			results[c.Rank()] = x
		})
		for rk, got := range results {
			if !approxEqual(got, want, 1e-4) {
				t.Fatalf("n=%d rank %d: rs+ag != allreduce", n, rk)
			}
		}
	}
}

func TestBroadcastAllRootsAllSizes(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 5, 8, 13} {
		for root := 0; root < n; root++ {
			want := randVec(rand.New(rand.NewSource(int64(root))), 37)
			w := NewWorld(n)
			results := make([][]float32, n)
			w.Run(func(c *Comm) {
				x := make([]float32, len(want))
				if c.Rank() == root {
					copy(x, want)
				}
				c.Broadcast(x, root)
				results[c.Rank()] = x
			})
			for rk, got := range results {
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("n=%d root=%d rank %d: broadcast mismatch", n, root, rk)
				}
			}
		}
	}
}

func TestReduceToRoot(t *testing.T) {
	for _, n := range []int{2, 4, 6} {
		for root := 0; root < n; root += n - 1 {
			r := rand.New(rand.NewSource(int64(n + root)))
			inputs := make([][]float32, n)
			for i := range inputs {
				inputs[i] = randVec(r, 41)
			}
			want := expectedSum(inputs)
			w := NewWorld(n)
			var rootGot []float32
			w.Run(func(c *Comm) {
				x := append([]float32(nil), inputs[c.Rank()]...)
				c.Reduce(x, root)
				if c.Rank() == root {
					rootGot = x
				}
			})
			if !approxEqual(rootGot, want, 1e-4) {
				t.Fatalf("n=%d root=%d: reduce mismatch", n, root)
			}
		}
	}
}

func TestGather(t *testing.T) {
	n := 5
	w := NewWorld(n)
	var got [][]float32
	w.Run(func(c *Comm) {
		shard := []float32{float32(c.Rank()), float32(c.Rank() * 10)}
		if c.Rank() == 2 {
			out := make([][]float32, n)
			c.Gather(shard, 2, out)
			got = out
		} else {
			c.Gather(shard, 2, nil)
		}
	})
	for r := 0; r < n; r++ {
		want := []float32{float32(r), float32(r * 10)}
		if !reflect.DeepEqual(got[r], want) {
			t.Errorf("gather slot %d = %v, want %v", r, got[r], want)
		}
	}
}

func TestBarrier(t *testing.T) {
	n := 8
	w := NewWorld(n)
	var mu sync.Mutex
	phase := make([]int, 0, 2*n)
	w.Run(func(c *Comm) {
		mu.Lock()
		phase = append(phase, 1)
		mu.Unlock()
		c.Barrier()
		mu.Lock()
		phase = append(phase, 2)
		mu.Unlock()
	})
	// All phase-1 entries must precede all phase-2 entries.
	for i := 0; i < n; i++ {
		if phase[i] != 1 {
			t.Fatalf("entry %d = %d, want 1 (barrier leaked)", i, phase[i])
		}
	}
	for i := n; i < 2*n; i++ {
		if phase[i] != 2 {
			t.Fatalf("entry %d = %d, want 2", i, phase[i])
		}
	}
}

func TestSendRecvPointToPoint(t *testing.T) {
	w := NewWorld(2)
	w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, []float32{3, 1, 4})
			got := c.Recv(1)
			if !reflect.DeepEqual(got, []float32{1, 5, 9}) {
				t.Errorf("rank 0 received %v", got)
			}
		} else {
			got := c.Recv(0)
			if !reflect.DeepEqual(got, []float32{3, 1, 4}) {
				t.Errorf("rank 1 received %v", got)
			}
			c.Send(0, []float32{1, 5, 9})
		}
	})
}

func TestSendCopiesData(t *testing.T) {
	w := NewWorld(2)
	w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			buf := []float32{42}
			c.Send(1, buf)
			buf[0] = -1 // mutating after send must not affect the receiver
			c.Barrier()
		} else {
			got := c.Recv(0)
			c.Barrier()
			if got[0] != 42 {
				t.Errorf("receiver saw mutated buffer: %v", got)
			}
		}
	})
}

// Volume identities from §7.1: ring all-reduce moves 2Ψ(N-1)/N per rank,
// reduce-scatter and all-gather each move Ψ(N-1)/N.
func TestCollectiveVolumeIdentities(t *testing.T) {
	const psi int64 = 1200
	for _, n := range []int{2, 3, 4, 8} {
		w := NewWorld(n)
		w.Run(func(c *Comm) {
			x := make([]float32, psi)
			c.AllReduce(x)
		})
		perRank := ringVolume(psi, n) * 2
		for r := 0; r < n; r++ {
			if got := w.Stats(r).ElemsSent; got != perRank {
				t.Errorf("n=%d allreduce rank %d sent %d elems, want %d", n, r, got, perRank)
			}
		}

		w.ResetStats()
		w.Run(func(c *Comm) {
			x := make([]float32, psi)
			parts := Partition(len(x), c.Size())
			c.ReduceScatter(x, parts)
		})
		for r := 0; r < n; r++ {
			got := w.Stats(r).ElemsSent
			if got > ringVolume(psi, n)+psi/int64(n)+1 || got < ringVolume(psi, n)-psi/int64(n)-1 {
				t.Errorf("n=%d reducescatter rank %d sent %d elems, want ≈%d", n, r, got, ringVolume(psi, n))
			}
		}
	}
}

// ringVolume is the exact per-rank element count of one ring phase when psi
// divides evenly: psi*(n-1)/n.
func ringVolume(psi int64, n int) int64 {
	return psi * int64(n-1) / int64(n)
}

func TestPartitionProperties(t *testing.T) {
	// Properties: ranges are contiguous, disjoint, cover [0,n), and sizes
	// differ by at most one.
	f := func(n uint16, parts uint8) bool {
		p := int(parts%64) + 1
		total := int(n)
		ranges := Partition(total, p)
		if len(ranges) != p {
			return false
		}
		lo := 0
		minLen, maxLen := total+1, -1
		for _, r := range ranges {
			if r.Lo != lo || r.Hi < r.Lo {
				return false
			}
			lo = r.Hi
			if r.Len() < minLen {
				minLen = r.Len()
			}
			if r.Len() > maxLen {
				maxLen = r.Len()
			}
		}
		return lo == total && maxLen-minLen <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestPartitionEdgeCases(t *testing.T) {
	// More parts than elements: trailing ranges are empty.
	ranges := Partition(3, 5)
	lens := []int{1, 1, 1, 0, 0}
	for i, r := range ranges {
		if r.Len() != lens[i] {
			t.Errorf("Partition(3,5)[%d].Len() = %d, want %d", i, r.Len(), lens[i])
		}
	}
	if got := Partition(0, 3); got[2].Hi != 0 {
		t.Error("Partition(0,3) should produce empty ranges")
	}
}

func TestWorldValidation(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	mustPanic("zero world", func() { NewWorld(0) })
	w := NewWorld(2)
	mustPanic("rank range", func() { w.Comm(2) })
	mustPanic("send self", func() { w.Comm(0).Send(0, nil) })
}

// Property: all-reduce result equals the float64 reference sum on random
// vectors across random world sizes.
func TestAllReduceQuick(t *testing.T) {
	f := func(seed int64, nRaw uint8, sizeRaw uint16) bool {
		n := int(nRaw%7) + 1
		size := int(sizeRaw%200) + 1
		r := rand.New(rand.NewSource(seed))
		inputs := make([][]float32, n)
		for i := range inputs {
			inputs[i] = randVec(r, size)
		}
		want := expectedSum(inputs)
		w := NewWorld(n)
		ok := true
		var mu sync.Mutex
		w.Run(func(c *Comm) {
			x := append([]float32(nil), inputs[c.Rank()]...)
			c.AllReduce(x)
			if !approxEqual(x, want, 1e-3) {
				mu.Lock()
				ok = false
				mu.Unlock()
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
