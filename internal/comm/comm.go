// Package comm implements the collective communication substrate for the
// ZeRO reproduction: an N-rank in-process "cluster" where every rank is a
// goroutine and links are Go channels.
//
// The collectives (ring all-reduce, ring reduce-scatter, ring all-gather,
// tree broadcast) are implemented from scratch with the same algorithms the
// paper's analysis assumes (§7.1: "state-of-art implementation of all-reduce
// uses a two-step approach... both implemented using a pipelined approach"),
// and every rank counts the elements it sends and receives. The paper's
// central communication claims — baseline DP moves 2Ψ per rank, ZeRO
// Pos+g moves 2Ψ, Pos+g+p moves 3Ψ — are therefore *measured* by the test
// suite, not assumed.
package comm

import (
	"fmt"
	"sync"
)

// World is a fixed-size group of ranks connected all-to-all. Create one per
// simulated job, hand each worker goroutine its Comm via Run or Comm.
type World struct {
	n     int
	links [][]chan []float32 // links[src][dst], buffered
	stats []Stats            // per-rank counters, owned by that rank's goroutine
}

// Stats counts communication traffic for one rank. Element counts are
// dtype-agnostic; multiply by the storage width (2 bytes for fp16 gradients
// and parameters) to get bytes on the wire.
type Stats struct {
	ElemsSent     int64
	ElemsRecv     int64
	Messages      int64
	PerCollective map[string]int64 // elems sent, keyed by collective name
}

func (s *Stats) record(op string, sent, recv int64) {
	s.ElemsSent += sent
	s.ElemsRecv += recv
	s.Messages++
	if s.PerCollective == nil {
		s.PerCollective = make(map[string]int64)
	}
	s.PerCollective[op] += sent
}

// NewWorld creates a world of n ranks. n must be positive.
func NewWorld(n int) *World {
	if n <= 0 {
		panic("comm: world size must be positive")
	}
	links := make([][]chan []float32, n)
	for i := range links {
		links[i] = make([]chan []float32, n)
		for j := range links[i] {
			if i != j {
				// Capacity 8 lets lock-step ring phases run without a
				// rendezvous and absorbs tree-broadcast fan-out.
				links[i][j] = make(chan []float32, 8)
			}
		}
	}
	return &World{n: n, links: links, stats: make([]Stats, n)}
}

// Size returns the number of ranks.
func (w *World) Size() int { return w.n }

// Comm returns the communicator handle for one rank. Each handle must only
// be used from a single goroutine at a time.
func (w *World) Comm(rank int) *Comm {
	if rank < 0 || rank >= w.n {
		panic(fmt.Sprintf("comm: rank %d out of range [0,%d)", rank, w.n))
	}
	return &Comm{w: w, rank: rank}
}

// Run spawns one goroutine per rank, invokes fn with that rank's Comm, and
// waits for all ranks to return. This is the SPMD entry point used by every
// trainer in the repository.
func (w *World) Run(fn func(c *Comm)) {
	var wg sync.WaitGroup
	for r := 0; r < w.n; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			fn(w.Comm(rank))
		}(r)
	}
	wg.Wait()
}

// Stats returns a copy of the traffic counters for rank r. Only call after
// the ranks have quiesced (e.g. after Run returns).
func (w *World) Stats(r int) Stats {
	s := w.stats[r]
	if s.PerCollective != nil {
		cp := make(map[string]int64, len(s.PerCollective))
		for k, v := range s.PerCollective {
			cp[k] = v
		}
		s.PerCollective = cp
	}
	return s
}

// TotalElemsSent sums sent elements over all ranks.
func (w *World) TotalElemsSent() int64 {
	var t int64
	for r := range w.stats {
		t += w.stats[r].ElemsSent
	}
	return t
}

// ResetStats clears all traffic counters. Only call while ranks are quiesced.
func (w *World) ResetStats() {
	for r := range w.stats {
		w.stats[r] = Stats{}
	}
}

// Comm is one rank's handle on the world.
type Comm struct {
	w    *World
	rank int
}

// Rank returns this communicator's rank id.
func (c *Comm) Rank() int { return c.rank }

// Size returns the world size.
func (c *Comm) Size() int { return c.w.n }

// World returns the underlying world (for stats inspection).
func (c *Comm) World() *World { return c.w }

// send transmits a copy of data to dst and accounts for it under op.
func (c *Comm) send(op string, dst int, data []float32) {
	if dst == c.rank {
		panic("comm: send to self")
	}
	cp := make([]float32, len(data))
	copy(cp, data)
	c.w.links[c.rank][dst] <- cp
	c.w.stats[c.rank].record(op, int64(len(data)), 0)
}

// recv blocks for a message from src and accounts for it.
func (c *Comm) recv(op string, src int) []float32 {
	if src == c.rank {
		panic("comm: recv from self")
	}
	data := <-c.w.links[src][c.rank]
	c.w.stats[c.rank].record(op, 0, int64(len(data)))
	return data
}

// Send transmits data to dst (point-to-point).
func (c *Comm) Send(dst int, data []float32) { c.send("p2p", dst, data) }

// Recv blocks for a message from src (point-to-point).
func (c *Comm) Recv(src int) []float32 { return c.recv("p2p", src) }

// Barrier blocks until every rank has entered it. Implemented as a
// dissemination barrier: ⌈log2 n⌉ rounds of empty messages.
func (c *Comm) Barrier() {
	n := c.w.n
	for dist := 1; dist < n; dist <<= 1 {
		dst := (c.rank + dist) % n
		src := (c.rank - dist%n + n) % n
		c.send("barrier", dst, nil)
		c.recv("barrier", src)
	}
}
