// Package comm implements the collective communication substrate for the
// ZeRO reproduction: an N-rank in-process "cluster" where every rank is a
// goroutine and links are Go channels.
//
// The collectives (ring all-reduce, ring reduce-scatter, ring all-gather,
// tree broadcast) are implemented from scratch with the same algorithms the
// paper's analysis assumes (§7.1: "state-of-art implementation of all-reduce
// uses a two-step approach... both implemented using a pipelined approach"),
// and every rank counts the elements and bytes it sends and receives. The
// paper's central communication claims — baseline DP moves 2Ψ per rank, ZeRO
// Pos+g moves 2Ψ, Pos+g+p moves 3Ψ — are therefore *measured* by the test
// suite, not assumed.
//
// # Ordering domains (streams)
//
// Every Comm belongs to exactly one ordering domain. World.Comm returns the
// default domain; Scheduler.Stream creates named domains ("grad",
// "prefetch", "checkpoint", ...) that execute asynchronously on a worker
// goroutine per stream. Each (src, dst, stream) triple has its own private
// channel, so collectives on different streams never interleave on the wire:
// if every rank creates the same stream names and submits the same per-stream
// op order, the cross-rank pairing of every op is deterministic — the
// contract NCCL streams give CUDA callers, and the reason concurrent
// gradient reduction, parameter prefetch and checkpoint gathers compose
// without a global serialization point.
package comm

import (
	"fmt"
	"sync"

	"repro/internal/arena"
)

// DefaultStream is the Stats key under which traffic of the default
// ordering domain (plain World.Comm communicators) is recorded.
const DefaultStream = "default"

// linkDepth is the per-channel buffer capacity: deep enough that lock-step
// ring phases run without a rendezvous and tree-broadcast fan-out is
// absorbed.
const linkDepth = 8

// World is a fixed-size group of ranks connected all-to-all. Create one per
// simulated job, hand each worker goroutine its Comm via Run or Comm.
type World struct {
	n     int
	links [][]chan []float32 // default-domain links[src][dst], buffered

	mu          sync.Mutex                    // guards the two maps below
	streamLinks map[streamLink]chan []float32 // named-domain links, lazily created
	streamNames map[streamClaim]bool          // (rank, stream) pairs claimed by live Schedulers

	stats []rankStats // per-rank counters, locked per rank

	// wire pools the per-message copies every send makes: after a warm-up
	// step, steady-state collectives move data through recycled buffers
	// instead of allocating one per message. Internal receive paths (ring
	// phases, broadcast, reduce, gather) recycle the buffer after their
	// last read — Gather clones each shard into caller-owned memory first —
	// while a buffer handed out by the public Recv escapes to the caller
	// and simply falls back to the GC.
	wire *arena.Arena

	// faults is the rank-failure bookkeeping (nil until fault injection is
	// enabled; see failure.go). dead/closed inside are guarded by mu.
	faults *faultState
}

// streamLink keys one directed channel of a named ordering domain.
type streamLink struct {
	src, dst int
	stream   string
}

// streamClaim records that a rank's Scheduler owns a stream name; a second
// Scheduler claiming the same name on the same rank would silently share
// wire channels with the first, so claiming twice panics instead.
type streamClaim struct {
	rank int
	name string
}

// Traffic is one bucket of per-group accounting: elements and native wire
// bytes sent under a group label.
type Traffic struct {
	Elems int64
	Bytes int64
}

// Stats counts communication traffic for one rank. Element counts are
// dtype-agnostic; byte counts are native — each op records the wire width of
// the Buffer it moved (2 bytes for F16, 4 for F32), so fp16 traffic is
// measured rather than inferred by convention.
type Stats struct {
	ElemsSent int64
	ElemsRecv int64
	BytesSent int64
	BytesRecv int64
	Messages  int64
	// PerCollective maps collective name (suffixed ":<label>" on labeled
	// group communicators) to elements sent under it.
	PerCollective map[string]int64
	// PerStream maps ordering-domain name (DefaultStream for plain Comms)
	// to elements sent on it.
	PerStream map[string]int64
	// PerGroup maps a group communicator's accounting label (Comm.Named;
	// "hier-intra"/"hier-inter" for the hierarchical collectives, "mp"/"dp"
	// for the 2D layout helpers) to the traffic sent under it, with native
	// byte accounting — the counters behind the measured intra-vs-inter
	// node split.
	PerGroup map[string]Traffic
}

// rankStats wraps one rank's Stats with a lock: a rank's traffic may be
// recorded concurrently by its main goroutine and its stream workers.
type rankStats struct {
	mu sync.Mutex
	s  Stats
}

func (rs *rankStats) record(op, stream, label string, width int, sent, recv int64) {
	rs.mu.Lock()
	s := &rs.s
	s.ElemsSent += sent
	s.ElemsRecv += recv
	s.BytesSent += sent * int64(width)
	s.BytesRecv += recv * int64(width)
	s.Messages++
	if s.PerCollective == nil {
		s.PerCollective = make(map[string]int64)
	}
	s.PerCollective[op] += sent
	if s.PerStream == nil {
		s.PerStream = make(map[string]int64)
	}
	if stream == "" {
		stream = DefaultStream
	}
	s.PerStream[stream] += sent
	if label != "" {
		if s.PerGroup == nil {
			s.PerGroup = make(map[string]Traffic)
		}
		tr := s.PerGroup[label]
		tr.Elems += sent
		tr.Bytes += sent * int64(width)
		s.PerGroup[label] = tr
	}
	rs.mu.Unlock()
}

// NewWorld creates a world of n ranks. n must be positive.
func NewWorld(n int) *World {
	if n <= 0 {
		panic("comm: world size must be positive")
	}
	links := make([][]chan []float32, n)
	for i := range links {
		links[i] = make([]chan []float32, n)
		for j := range links[i] {
			if i != j {
				links[i][j] = make(chan []float32, linkDepth)
			}
		}
	}
	return &World{
		n:           n,
		links:       links,
		streamLinks: make(map[streamLink]chan []float32),
		streamNames: make(map[streamClaim]bool),
		stats:       make([]rankStats, n),
		wire:        arena.New(),
	}
}

// WirePool exposes the world's wire-buffer arena for instrumentation and
// pool-hygiene tests (Resident/Stats/Release).
func (w *World) WirePool() *arena.Arena { return w.wire }

// Size returns the number of ranks.
func (w *World) Size() int { return w.n }

// Comm returns the communicator handle for one rank, on the default
// ordering domain with F32 wire accounting. Each handle must only be used
// from a single goroutine at a time.
func (w *World) Comm(rank int) *Comm {
	if rank < 0 || rank >= w.n {
		panic(fmt.Sprintf("comm: rank %d out of range [0,%d)", rank, w.n))
	}
	return &Comm{w: w, rank: rank, pos: rank, topos: &topoCache{}}
}

// Run spawns one goroutine per rank, invokes fn with that rank's Comm, and
// waits for all ranks to return. This is the SPMD entry point used by every
// trainer in the repository.
func (w *World) Run(fn func(c *Comm)) {
	var wg sync.WaitGroup
	for r := 0; r < w.n; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			fn(w.Comm(rank))
		}(r)
	}
	wg.Wait()
}

// channel resolves the directed wire between src and dst on one ordering
// domain. Default-domain channels are preallocated; named-domain channels
// are created on first use (sender or receiver, whichever arrives first).
func (w *World) channel(src, dst int, stream string) chan []float32 {
	if stream == "" {
		return w.links[src][dst]
	}
	k := streamLink{src: src, dst: dst, stream: stream}
	w.mu.Lock()
	ch := w.streamLinks[k]
	if ch == nil {
		ch = make(chan []float32, linkDepth)
		w.streamLinks[k] = ch
	}
	w.mu.Unlock()
	return ch
}

// claimStream registers a named ordering domain for one rank. Two live
// Schedulers claiming the same name on the same rank would share wire
// channels and scramble pairing, so the second claim panics.
func (w *World) claimStream(rank int, name string) {
	w.mu.Lock()
	defer w.mu.Unlock()
	k := streamClaim{rank: rank, name: name}
	if w.streamNames[k] {
		panic(fmt.Sprintf("comm: stream %q already exists for rank %d (one ordering domain per name per rank)", name, rank))
	}
	w.streamNames[k] = true
}

// releaseStream returns a stream name to the pool (Scheduler.Close).
func (w *World) releaseStream(rank int, name string) {
	w.mu.Lock()
	delete(w.streamNames, streamClaim{rank: rank, name: name})
	w.mu.Unlock()
}

// Stats returns a copy of the traffic counters for rank r. Safe to call at
// any time, including while streams are executing ops; for a snapshot that
// is consistent *across* in-flight ops, quiesce first with
// Scheduler.Barrier (or return from Run).
func (w *World) Stats(r int) Stats {
	rs := &w.stats[r]
	rs.mu.Lock()
	s := rs.s
	if s.PerCollective != nil {
		cp := make(map[string]int64, len(s.PerCollective))
		for k, v := range s.PerCollective {
			cp[k] = v
		}
		s.PerCollective = cp
	}
	if s.PerStream != nil {
		cp := make(map[string]int64, len(s.PerStream))
		for k, v := range s.PerStream {
			cp[k] = v
		}
		s.PerStream = cp
	}
	if s.PerGroup != nil {
		cp := make(map[string]Traffic, len(s.PerGroup))
		for k, v := range s.PerGroup {
			cp[k] = v
		}
		s.PerGroup = cp
	}
	rs.mu.Unlock()
	return s
}

// TotalElemsSent sums sent elements over all ranks.
func (w *World) TotalElemsSent() int64 {
	var t int64
	for r := range w.stats {
		rs := &w.stats[r]
		rs.mu.Lock()
		t += rs.s.ElemsSent
		rs.mu.Unlock()
	}
	return t
}

// TotalBytesSent sums natively accounted wire bytes over all ranks.
func (w *World) TotalBytesSent() int64 {
	var t int64
	for r := range w.stats {
		rs := &w.stats[r]
		rs.mu.Lock()
		t += rs.s.BytesSent
		rs.mu.Unlock()
	}
	return t
}

// ResetStats clears all traffic counters. Safe to call while streams exist;
// quiesce with Scheduler.Barrier first if ops are in flight and the reset
// must not race mid-collective counts.
func (w *World) ResetStats() {
	for r := range w.stats {
		rs := &w.stats[r]
		rs.mu.Lock()
		rs.s = Stats{}
		rs.mu.Unlock()
	}
}

// Comm is one rank's communicator: a process group (the whole world, or a
// subset carved out by Split/Subgroup) bound to one ordering domain (stream)
// and one wire dtype for traffic accounting. World.Comm hands out the
// world group on the default domain; Scheduler.Stream derives named domains;
// Split, Subgroup, MPGroup, DPGroup and NodeTopology derive subgroups.
//
// Every collective is group-generic: it runs over the communicator's member
// set, with ranks, partition indices and broadcast roots all expressed in
// group-local coordinates. On the world communicator, group-local and global
// ranks coincide.
type Comm struct {
	w       *World
	rank    int    // global (world) rank: wire identity and stats slot
	members []int  // group members as global ranks; nil ⇒ the whole world
	pos     int    // this rank's index within the group (== rank when members is nil)
	stream  string // "" = default ordering domain
	dtype   DType  // wire width recorded by Stats; F32 unless derived
	label   string // PerGroup accounting label ("" = unattributed)

	// opCache maps collective names to their ":<label>"-suffixed form so
	// labeled sends don't concatenate strings per message. Built once by
	// Named and shared (read-only) by every derived view.
	opCache map[string]string
	// topos caches NodeTopology results per (nodeSize, dtype, label) so
	// hierarchical collectives don't rebuild sub-communicators per op. The
	// pointer is shared by same-group views (Named/WithDType) and reset by
	// Subgroup/Split, whose member sets differ. Comm handles are
	// single-goroutine, so the cache is unlocked.
	topos *topoCache
}

// Rank returns this communicator's group-local rank: the index of this rank
// within the group's member list. On the world communicator it equals the
// global rank.
func (c *Comm) Rank() int { return c.pos }

// Size returns the group's member count (the world size on the world
// communicator).
func (c *Comm) Size() int {
	if c.members == nil {
		return c.w.n
	}
	return len(c.members)
}

// GlobalRank returns the underlying world rank, regardless of how deeply
// this communicator was derived.
func (c *Comm) GlobalRank() int { return c.rank }

// Members returns the group's member list as global ranks, in group-rank
// order (index i is the global rank of group rank i).
func (c *Comm) Members() []int {
	if c.members == nil {
		out := make([]int, c.w.n)
		for i := range out {
			out[i] = i
		}
		return out
	}
	return append([]int(nil), c.members...)
}

// global translates a group-local rank to the global rank addressed on the
// wire.
func (c *Comm) global(member int) int {
	if c.members == nil {
		return member
	}
	return c.members[member]
}

// World returns the underlying world (for stats inspection).
func (c *Comm) World() *World { return c.w }

// Named returns a view of the communicator whose traffic is additionally
// aggregated under label in Stats.PerGroup (and whose PerCollective keys
// carry a ":<label>" suffix), so e.g. MP and DP traffic of a 2D layout, or
// the intra-vs-inter split of a hierarchical collective, can be separated.
func (c *Comm) Named(label string) *Comm {
	if label == c.label {
		return c
	}
	cp := *c
	cp.label = label
	cp.opCache = buildOpCache(label)
	return &cp
}

// knownOps lists every collective name a Comm records, so Named can
// precompute the labeled forms instead of allocating a concatenation per
// message on the hot path.
var knownOps = []string{
	"allreduce", "reducescatter", "allgather", "broadcast", "reduce",
	"gather", "split", "p2p", "barrier",
}

func buildOpCache(label string) map[string]string {
	if label == "" {
		return nil
	}
	m := make(map[string]string, len(knownOps))
	for _, op := range knownOps {
		m[op] = op + ":" + label
	}
	return m
}

// Label returns the traffic-accounting label set by Named ("" if none).
func (c *Comm) Label() string { return c.label }

// StreamName returns the ordering domain this communicator runs on.
func (c *Comm) StreamName() string {
	if c.stream == "" {
		return DefaultStream
	}
	return c.stream
}

// DType returns the wire dtype this communicator accounts traffic at.
func (c *Comm) DType() DType { return c.dtype }

// WithDType returns a view of the communicator whose traffic is accounted
// at d's wire width. The view shares the ordering domain — it is the same
// stream, only the bookkeeping changes.
func (c *Comm) WithDType(d DType) *Comm {
	if d == c.dtype {
		return c
	}
	cp := *c
	cp.dtype = d
	return &cp
}

// opName decorates a collective name with the group label so PerCollective
// separates labeled group traffic from the unlabeled world traffic.
func (c *Comm) opName(op string) string {
	if c.label == "" {
		return op
	}
	if s, ok := c.opCache[op]; ok {
		return s
	}
	return op + ":" + c.label
}

// send transmits a copy of data to the group-local rank dst and accounts
// for it under op. The copy draws from the world's wire pool; the receiver
// recycles it after its last read (every internal path — Gather clones
// before recycling) or lets it escape to the GC (the public Recv).
func (c *Comm) send(op string, dst int, data []float32) {
	gdst := c.global(dst)
	if gdst == c.rank {
		panic("comm: send to self")
	}
	cp := c.w.wire.Get(len(data))
	copy(cp, data)
	if c.w.faultsOn() {
		c.w.preOp(c.rank)
		c.sendWire(gdst, cp)
	} else {
		c.w.channel(c.rank, gdst, c.stream) <- cp
	}
	c.w.stats[c.rank].record(c.opName(op), c.stream, c.label, c.dtype.Bytes(), int64(len(data)), 0)
}

// release returns a received wire buffer to the pool. Call only after the
// last read of the buffer.
func (c *Comm) release(data []float32) { c.w.wire.Put(data) }

// recv blocks for a message from the group-local rank src and accounts for
// it.
func (c *Comm) recv(op string, src int) []float32 {
	gsrc := c.global(src)
	if gsrc == c.rank {
		panic("comm: recv from self")
	}
	var data []float32
	if c.w.faultsOn() {
		c.w.preOp(c.rank)
		data = c.recvWire(gsrc)
	} else {
		data = <-c.w.channel(gsrc, c.rank, c.stream)
	}
	c.w.stats[c.rank].record(c.opName(op), c.stream, c.label, c.dtype.Bytes(), 0, int64(len(data)))
	return data
}

// Send transmits data to the group-local rank dst (point-to-point).
func (c *Comm) Send(dst int, data []float32) { c.send("p2p", dst, data) }

// Recv blocks for a message from the group-local rank src (point-to-point).
func (c *Comm) Recv(src int) []float32 { return c.recv("p2p", src) }

// Barrier blocks until every member of the group has entered it.
// Implemented as a dissemination barrier: ⌈log2 n⌉ rounds of empty
// messages.
func (c *Comm) Barrier() {
	n := c.Size()
	for dist := 1; dist < n; dist <<= 1 {
		dst := (c.pos + dist) % n
		src := (c.pos - dist%n + n) % n
		c.send("barrier", dst, nil)
		c.recv("barrier", src)
	}
}
