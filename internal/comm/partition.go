package comm

// Range is a half-open index interval [Lo, Hi) into a flat buffer.
type Range struct {
	Lo, Hi int
}

// Len returns the number of elements in the range.
func (r Range) Len() int { return r.Hi - r.Lo }

// Partition splits n elements into parts near-equal ranges: the first
// n%parts ranges get one extra element. This is the partitioning rule ZeRO
// uses for optimizer states, gradients and parameters ("we group the
// optimizer states into Nd equal partitions", §5.1); near-equal handles the
// common case where the parameter count does not divide evenly.
func Partition(n, parts int) []Range {
	if parts <= 0 {
		panic("comm: Partition needs at least one part")
	}
	if n < 0 {
		panic("comm: Partition of negative length")
	}
	out := make([]Range, parts)
	base := n / parts
	extra := n % parts
	lo := 0
	for i := range out {
		size := base
		if i < extra {
			size++
		}
		out[i] = Range{Lo: lo, Hi: lo + size}
		lo += size
	}
	return out
}
