package comm

import "repro/internal/tensor"

// DType names the wire storage width of a buffer. The simulator's arithmetic
// is always float32 (exactly like fp32 accumulation on tensor cores); the
// dtype decides how many bytes each element occupies on the wire, which is
// what Stats records. F16 corresponds to tensor.Half storage — §3.1's
// mixed-precision convention where parameters, gradients and activations
// travel as 2-byte fp16 while masters stay fp32.
type DType uint8

const (
	// F32 is 4-byte IEEE-754 binary32, the default wire width.
	F32 DType = iota
	// F16 is 2-byte IEEE-754 binary16 (tensor.Half) wire storage.
	F16
)

// Bytes returns the storage width of one element.
func (d DType) Bytes() int {
	if d == F16 {
		return tensor.BytesPerHalf
	}
	return tensor.BytesPerFloat32
}

func (d DType) String() string {
	if d == F16 {
		return "f16"
	}
	return "f32"
}

// Buffer is a typed view of a flat float32 slice: the data plus the dtype it
// occupies on the wire. Collectives on a Stream take Buffers so traffic is
// byte-accounted natively; the values themselves stay float32 (fp16 storage
// of an fp32-computed value is modeled by rounding through binary16, see
// Quantize).
type Buffer struct {
	Data  []float32
	DType DType
}

// F32Buf wraps x as an fp32-wire buffer.
func F32Buf(x []float32) Buffer { return Buffer{Data: x, DType: F32} }

// F16Buf wraps x as an fp16-wire buffer.
func F16Buf(x []float32) Buffer { return Buffer{Data: x, DType: F16} }

// Len returns the element count.
func (b Buffer) Len() int { return len(b.Data) }

// Bytes returns the wire size of the whole buffer.
func (b Buffer) Bytes() int64 { return int64(len(b.Data)) * int64(b.DType.Bytes()) }

// Quantize rounds every value through the buffer's storage format in place:
// a no-op for F32, round-to-nearest-even binary16 for F16 — the operation
// that makes "this buffer is stored in fp16" true for the float32 values the
// simulator computes with.
func (b Buffer) Quantize() {
	if b.DType != F16 {
		return
	}
	tensor.RoundHalf(b.Data)
}
