package comm

import "sync"

// Scheduler multiplexes named ordering domains ("streams") over one rank's
// communicator — the stream abstraction NCCL and DeepSpeed use to let
// gradient reduction, parameter prefetch and checkpoint gathers proceed
// concurrently without a global serialization point.
//
// Determinism contract: every rank of the world must create the same stream
// names and submit the same per-stream op order. Each stream owns private
// wire channels per rank pair, so ops pair FIFO within a stream and never
// with another stream's ops — same names + same per-stream submission order
// ⇒ the same global pairing on every run, which is what keeps overlapped
// schedules bitwise identical to synchronous ones.
//
// Buffer ownership: a submitted op owns its buffer region until its Handle
// is waited (or the stream flushed). Callers may freely mutate *disjoint*
// regions concurrently — that is the point: backward writes layer k's
// gradients while layer k+1's bucket is on the wire, and the prefetch stream
// gathers layer k+1's parameters while layer k computes.
type Scheduler struct {
	c     *Comm
	depth int

	mu      sync.Mutex
	streams map[string]*Stream
	order   []*Stream
	closed  bool
}

// defaultQueueDepth is the submission-queue capacity a Scheduler gives its
// streams unless overridden by WithQueueDepth or StreamWithDepth: deep
// enough that a backward pass never blocks on submission at realistic
// bucket counts.
const defaultQueueDepth = 64

// SchedulerOption configures a Scheduler at construction.
type SchedulerOption func(*Scheduler)

// WithQueueDepth sets the default submission-queue capacity for streams
// created by the Scheduler. When a stream's queue is full, Submit blocks
// until the worker drains an op — backpressure that bounds how far a
// producer can run ahead of the wire, never dropping or reordering ops.
// Non-positive depths are ignored.
func WithQueueDepth(depth int) SchedulerOption {
	return func(s *Scheduler) {
		if depth > 0 {
			s.depth = depth
		}
	}
}

// NewScheduler creates a stream scheduler over one rank's communicator.
// Creation is cheap (no goroutines until a stream is created). The
// scheduler assumes it is the only issuer of named streams for this rank;
// a second scheduler may coexist only if its stream names are disjoint
// (enforced by panic).
func NewScheduler(c *Comm, opts ...SchedulerOption) *Scheduler {
	s := &Scheduler{c: c, depth: defaultQueueDepth, streams: make(map[string]*Stream)}
	for _, o := range opts {
		o(s)
	}
	return s
}

// Stream returns the named ordering domain, creating it (and its worker
// goroutine) on first use. Streams are get-or-create: a second call with
// the same name returns the same stream.
func (s *Scheduler) Stream(name string) *Stream { return s.StreamWithDepth(name, 0) }

// StreamWithDepth is Stream with a per-stream submission-queue capacity
// override (0 uses the scheduler default). The depth only applies on
// creation; an existing stream keeps its queue.
func (s *Scheduler) StreamWithDepth(name string, depth int) *Stream {
	if name == "" || name == DefaultStream {
		panic("comm: stream name must be non-empty and not the default domain")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		panic("comm: Stream on closed Scheduler")
	}
	if st := s.streams[name]; st != nil {
		return st
	}
	if depth <= 0 {
		depth = s.depth
	}
	s.c.w.claimStream(s.c.rank, name)
	// Two persistent dtype views of the stream's communicator, so typed ops
	// execute without deriving a per-op view: the worker picks the view
	// whose dtype matches the buffer, and WithDType inside the collective
	// becomes the identity. Both views share one topology cache.
	view := *s.c
	view.stream = name
	view.dtype = F32
	view.topos = &topoCache{}
	view16 := view
	view16.dtype = F16
	st := &Stream{
		name: name,
		c32:  &view,
		c16:  &view16,
		ops:  make(chan streamOp, depth),
		done: make(chan struct{}),
	}
	st.cond = sync.NewCond(&st.mu)
	go st.loop()
	s.streams[name] = st
	s.order = append(s.order, st)
	return st
}

// Barrier blocks until every op submitted to every stream of this scheduler
// has completed — the local quiesce point harness code uses before reading
// or resetting World stats while streams exist. Like Stream.Flush it is
// rank-local: pair it across ranks by having every rank run the same
// schedule.
func (s *Scheduler) Barrier() {
	s.mu.Lock()
	streams := append([]*Stream(nil), s.order...)
	s.mu.Unlock()
	for _, st := range streams {
		st.Flush()
	}
}

// Close drains every stream, stops the workers and releases the stream
// names. Safe to call more than once; the scheduler must not be used
// afterwards.
func (s *Scheduler) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	streams := s.order
	s.mu.Unlock()
	for _, st := range streams {
		close(st.ops)
		<-st.done
		s.c.w.releaseStream(s.c.rank, st.name)
	}
}

// Handle is the completion token of one submitted op: the stream plus the
// op's position in its FIFO. It is a small value — obtaining one allocates
// nothing — and because streams execute strictly in submission order,
// "op k is done" is exactly "the stream has completed ≥ k ops". The zero
// Handle is valid and behaves as already-complete.
type Handle struct {
	st  *Stream
	seq int64
}

// Wait blocks until the op completes. Waiting the zero Handle is a no-op,
// and Wait may be called from any goroutine, any number of times.
func (h Handle) Wait() {
	if h.st != nil {
		h.st.waitFor(h.seq)
	}
}

// Done reports (without blocking) whether the op has completed.
func (h Handle) Done() bool {
	if h.st == nil {
		return true
	}
	h.st.mu.Lock()
	defer h.st.mu.Unlock()
	return h.st.completed >= h.seq
}

// Valid reports whether the handle refers to a submitted op (false for the
// zero Handle) — how pipelined schedulers mark "not launched yet" without
// allocating sentinel objects.
func (h Handle) Valid() bool { return h.st != nil }

// opKind discriminates the precompiled collective ops a stream executes
// without a closure allocation per submission.
type opKind uint8

const (
	opFn opKind = iota
	opReduceScatter
	opAllGather
	opAllReduce
	opAllReduceAvg
	opReduceScatterHier
	opAllGatherHier
	opAllReduceHier
)

// streamOp is one queued unit of work: either a typed collective (kind +
// buffer + partition) or an arbitrary fn.
type streamOp struct {
	kind     opKind
	b        Buffer
	parts    []Range
	nodeSize int
	fn       func(*Comm)
}

// Stream is one named ordering domain of one rank: a FIFO of collective ops
// executed by a dedicated worker goroutine on a stream-tagged communicator.
// Ops on the same stream execute in submission order; ops on different
// streams are unordered with respect to each other (their wire channels are
// disjoint, so no ordering is needed for correctness).
type Stream struct {
	name string
	c32  *Comm // stream view with F32 accounting (the default)
	c16  *Comm // same domain, F16 accounting
	ops  chan streamOp
	done chan struct{}

	submitMu  sync.Mutex // serializes seq assignment with queue order
	submitted int64

	mu        sync.Mutex // guards completed and err; cond signals progress
	cond      *sync.Cond
	completed int64
	err       error // rank-death error captured by the worker; re-raised at waits
}

func (st *Stream) loop() {
	defer close(st.done)
	for op := range st.ops {
		if st.Err() == nil {
			st.execSafe(op)
		}
		st.mu.Lock()
		st.completed++
		st.cond.Broadcast()
		st.mu.Unlock()
	}
}

// execSafe runs one op, capturing rank-death panics (an injected kill or a
// dead peer observed on the wire) so the worker goroutine survives to drain
// its queue: subsequent ops complete as no-ops and Scheduler.Close still
// works during teardown. The captured error is re-panicked on the rank's own
// goroutine at the next Wait/Flush. Panics outside the rank-failure protocol
// propagate and crash, as programming errors should.
func (st *Stream) execSafe(op streamOp) {
	defer func() {
		if r := recover(); r != nil {
			err, ok := AsRankDeath(r)
			if !ok {
				panic(r)
			}
			st.mu.Lock()
			if st.err == nil {
				st.err = err
			}
			st.mu.Unlock()
		}
	}()
	st.exec(op)
}

// Err returns the rank-death error the worker captured, if any.
func (st *Stream) Err() error {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.err
}

// commFor picks the persistent stream view matching the buffer's wire
// dtype, so collectives run without deriving a per-op communicator.
func (st *Stream) commFor(d DType) *Comm {
	if d == F16 {
		return st.c16
	}
	return st.c32
}

func (st *Stream) exec(op streamOp) {
	c := st.commFor(op.b.DType)
	switch op.kind {
	case opFn:
		if op.fn != nil {
			op.fn(st.c32)
		}
	case opReduceScatter:
		c.ReduceScatter(op.b.Data, op.parts)
	case opAllGather:
		c.AllGather(op.b.Data, op.parts)
	case opAllReduce:
		c.AllReduce(op.b.Data)
	case opAllReduceAvg:
		c.AllReduceAvg(op.b.Data)
	case opReduceScatterHier:
		if err := c.ReduceScatterHierarchical(op.b, op.parts, op.nodeSize); err != nil {
			panic(err)
		}
	case opAllGatherHier:
		if err := c.AllGatherHierarchical(op.b, op.parts, op.nodeSize); err != nil {
			panic(err)
		}
	case opAllReduceHier:
		if err := c.AllReduceHierarchical(op.b, op.nodeSize); err != nil {
			panic(err)
		}
	}
}

// waitFor blocks until the stream has completed at least seq ops. If the
// worker captured a rank-death error, waitFor re-panics it here — on the
// rank's own goroutine — so the death propagates to World.RunFallible even
// when it struck an asynchronously executing op.
func (st *Stream) waitFor(seq int64) {
	st.mu.Lock()
	for st.completed < seq {
		st.cond.Wait()
	}
	err := st.err
	st.mu.Unlock()
	if err != nil {
		panic(err)
	}
}

// enqueue assigns the op its FIFO position and queues it. Sequence
// assignment and channel send happen under one lock so the queue order
// always matches the sequence order, even with multiple submitters; the
// worker never takes this lock, so backpressure (a full queue) cannot
// deadlock completion.
func (st *Stream) enqueue(op streamOp) Handle {
	st.submitMu.Lock()
	st.submitted++
	seq := st.submitted
	st.ops <- op
	st.submitMu.Unlock()
	return Handle{st: st, seq: seq}
}

// Name returns the stream's ordering-domain name.
func (st *Stream) Name() string { return st.name }

// Rank returns the rank the stream belongs to.
func (st *Stream) Rank() int { return st.c32.rank }

// Size returns the world size.
func (st *Stream) Size() int { return st.c32.w.n }

// Depth returns the submission-queue capacity.
func (st *Stream) Depth() int { return cap(st.ops) }

// Submit enqueues an arbitrary op; fn runs on the worker goroutine with the
// stream's communicator (use Comm.WithDType inside fn for non-F32
// accounting). Blocks only when the queue is full (see WithQueueDepth).
// The typed collective methods below are cheaper (no closure); prefer them
// on hot paths.
func (st *Stream) Submit(fn func(c *Comm)) Handle {
	return st.enqueue(streamOp{kind: opFn, fn: fn})
}

// ReduceScatter enqueues a reduce-scatter of b under parts. The parts slice
// is owned by the op until its Handle is waited.
func (st *Stream) ReduceScatter(b Buffer, parts []Range) Handle {
	return st.enqueue(streamOp{kind: opReduceScatter, b: b, parts: parts})
}

// AllGather enqueues an all-gather of b under parts.
func (st *Stream) AllGather(b Buffer, parts []Range) Handle {
	return st.enqueue(streamOp{kind: opAllGather, b: b, parts: parts})
}

// AllReduce enqueues an all-reduce (sum) of b.
func (st *Stream) AllReduce(b Buffer) Handle {
	return st.enqueue(streamOp{kind: opAllReduce, b: b})
}

// AllReduceAvg enqueues an all-reduce followed by division by the world
// size — the gradient-averaging collective.
func (st *Stream) AllReduceAvg(b Buffer) Handle {
	return st.enqueue(streamOp{kind: opAllReduceAvg, b: b})
}

// checkNodeSize validates a hierarchical submission eagerly, before the op
// reaches the worker: topology errors are programming errors at this layer
// (zero.New surfaces them at construction time), so a bad nodeSize panics
// at the submission site instead of killing the worker goroutine later.
func (st *Stream) checkNodeSize(nodeSize int) {
	if err := CheckNodeSize(st.Size(), nodeSize); err != nil {
		panic(err)
	}
}

// AllReduceHierarchical enqueues a two-level sum of b (hierarchical
// reduce-scatter + hierarchical all-gather) for groups laid out as nodes
// of nodeSize ranks. On a stream it composes with the other ordering
// domains exactly like the flat collectives do, with the intra/inter split
// recorded under the "hier-intra"/"hier-inter" group labels at b's wire
// width.
func (st *Stream) AllReduceHierarchical(b Buffer, nodeSize int) Handle {
	st.checkNodeSize(nodeSize)
	return st.enqueue(streamOp{kind: opAllReduceHier, b: b, nodeSize: nodeSize})
}

// ReduceScatterHierarchical enqueues a two-level reduce-scatter of b under
// the ownership partition parts (member i ends up owning parts[i]).
func (st *Stream) ReduceScatterHierarchical(b Buffer, parts []Range, nodeSize int) Handle {
	st.checkNodeSize(nodeSize)
	return st.enqueue(streamOp{kind: opReduceScatterHier, b: b, parts: parts, nodeSize: nodeSize})
}

// AllGatherHierarchical enqueues a two-level all-gather of b under parts.
func (st *Stream) AllGatherHierarchical(b Buffer, parts []Range, nodeSize int) Handle {
	st.checkNodeSize(nodeSize)
	return st.enqueue(streamOp{kind: opAllGatherHier, b: b, parts: parts, nodeSize: nodeSize})
}

// Flush blocks until every previously submitted op has completed on this
// rank's stream. It is a local barrier: pair it across ranks (every rank
// submits the same schedule, every rank flushes).
func (st *Stream) Flush() {
	st.submitMu.Lock()
	seq := st.submitted
	st.submitMu.Unlock()
	st.waitFor(seq)
}

// Pending returns the number of submitted ops not yet completed. It is
// advisory (racy by nature) and meant for tests and instrumentation.
func (st *Stream) Pending() int64 {
	st.submitMu.Lock()
	sub := st.submitted
	st.submitMu.Unlock()
	st.mu.Lock()
	defer st.mu.Unlock()
	return sub - st.completed
}

// Completed returns the number of ops the worker has finished executing.
func (st *Stream) Completed() int64 {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.completed
}
