package comm

import (
	"sync"
	"sync/atomic"
)

// Scheduler multiplexes named ordering domains ("streams") over one rank's
// communicator — the stream abstraction NCCL and DeepSpeed use to let
// gradient reduction, parameter prefetch and checkpoint gathers proceed
// concurrently without a global serialization point.
//
// Determinism contract: every rank of the world must create the same stream
// names and submit the same per-stream op order. Each stream owns private
// wire channels per rank pair, so ops pair FIFO within a stream and never
// with another stream's ops — same names + same per-stream submission order
// ⇒ the same global pairing on every run, which is what keeps overlapped
// schedules bitwise identical to synchronous ones.
//
// Buffer ownership: a submitted op owns its buffer region until its Handle
// is waited (or the stream flushed). Callers may freely mutate *disjoint*
// regions concurrently — that is the point: backward writes layer k's
// gradients while layer k+1's bucket is on the wire, and the prefetch stream
// gathers layer k+1's parameters while layer k computes.
type Scheduler struct {
	c     *Comm
	depth int

	mu      sync.Mutex
	streams map[string]*Stream
	order   []*Stream
	closed  bool
}

// defaultQueueDepth is the submission-queue capacity a Scheduler gives its
// streams unless overridden by WithQueueDepth or StreamWithDepth: deep
// enough that a backward pass never blocks on submission at realistic
// bucket counts.
const defaultQueueDepth = 64

// SchedulerOption configures a Scheduler at construction.
type SchedulerOption func(*Scheduler)

// WithQueueDepth sets the default submission-queue capacity for streams
// created by the Scheduler. When a stream's queue is full, Submit blocks
// until the worker drains an op — backpressure that bounds how far a
// producer can run ahead of the wire, never dropping or reordering ops.
// Non-positive depths are ignored.
func WithQueueDepth(depth int) SchedulerOption {
	return func(s *Scheduler) {
		if depth > 0 {
			s.depth = depth
		}
	}
}

// NewScheduler creates a stream scheduler over one rank's communicator.
// Creation is cheap (no goroutines until a stream is created). The
// scheduler assumes it is the only issuer of named streams for this rank;
// a second scheduler may coexist only if its stream names are disjoint
// (enforced by panic).
func NewScheduler(c *Comm, opts ...SchedulerOption) *Scheduler {
	s := &Scheduler{c: c, depth: defaultQueueDepth, streams: make(map[string]*Stream)}
	for _, o := range opts {
		o(s)
	}
	return s
}

// Stream returns the named ordering domain, creating it (and its worker
// goroutine) on first use. Streams are get-or-create: a second call with
// the same name returns the same stream.
func (s *Scheduler) Stream(name string) *Stream { return s.StreamWithDepth(name, 0) }

// StreamWithDepth is Stream with a per-stream submission-queue capacity
// override (0 uses the scheduler default). The depth only applies on
// creation; an existing stream keeps its queue.
func (s *Scheduler) StreamWithDepth(name string, depth int) *Stream {
	if name == "" || name == DefaultStream {
		panic("comm: stream name must be non-empty and not the default domain")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		panic("comm: Stream on closed Scheduler")
	}
	if st := s.streams[name]; st != nil {
		return st
	}
	if depth <= 0 {
		depth = s.depth
	}
	s.c.w.claimStream(s.c.rank, name)
	view := *s.c
	view.stream = name
	view.dtype = F32
	st := &Stream{
		name: name,
		c:    &view,
		ops:  make(chan streamOp, depth),
		done: make(chan struct{}),
	}
	go st.loop()
	s.streams[name] = st
	s.order = append(s.order, st)
	return st
}

// Barrier blocks until every op submitted to every stream of this scheduler
// has completed — the local quiesce point harness code uses before reading
// or resetting World stats while streams exist. Like Stream.Flush it is
// rank-local: pair it across ranks by having every rank run the same
// schedule.
func (s *Scheduler) Barrier() {
	s.mu.Lock()
	streams := append([]*Stream(nil), s.order...)
	s.mu.Unlock()
	for _, st := range streams {
		st.Flush()
	}
}

// Close drains every stream, stops the workers and releases the stream
// names. Safe to call more than once; the scheduler must not be used
// afterwards.
func (s *Scheduler) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	streams := s.order
	s.mu.Unlock()
	for _, st := range streams {
		close(st.ops)
		<-st.done
		s.c.w.releaseStream(s.c.rank, st.name)
	}
}

// Handle is the completion token of one submitted op. Wait blocks until the
// op has executed on the stream's worker; waiting is per-op, so a caller
// can synchronize exactly the dependency it has (e.g. "layer k's parameters
// are resident") instead of draining the whole queue.
type Handle struct {
	done chan struct{}
}

// Wait blocks until the op completes. Waiting a nil handle is a no-op, and
// Wait may be called from any goroutine, any number of times.
func (h *Handle) Wait() {
	if h != nil {
		<-h.done
	}
}

// Done reports (without blocking) whether the op has completed.
func (h *Handle) Done() bool {
	if h == nil {
		return true
	}
	select {
	case <-h.done:
		return true
	default:
		return false
	}
}

type streamOp struct {
	fn func(*Comm)
	h  *Handle
}

// Stream is one named ordering domain of one rank: a FIFO of collective ops
// executed by a dedicated worker goroutine on a stream-tagged communicator.
// Ops on the same stream execute in submission order; ops on different
// streams are unordered with respect to each other (their wire channels are
// disjoint, so no ordering is needed for correctness).
type Stream struct {
	name string
	c    *Comm
	ops  chan streamOp
	done chan struct{}

	submitted atomic.Int64
	completed atomic.Int64
}

func (st *Stream) loop() {
	defer close(st.done)
	for op := range st.ops {
		if op.fn != nil {
			op.fn(st.c)
			st.completed.Add(1)
		}
		if op.h != nil {
			close(op.h.done)
		}
	}
}

// Name returns the stream's ordering-domain name.
func (st *Stream) Name() string { return st.name }

// Rank returns the rank the stream belongs to.
func (st *Stream) Rank() int { return st.c.rank }

// Size returns the world size.
func (st *Stream) Size() int { return st.c.w.n }

// Depth returns the submission-queue capacity.
func (st *Stream) Depth() int { return cap(st.ops) }

// Submit enqueues an arbitrary op; fn runs on the worker goroutine with the
// stream's communicator (use Comm.WithDType inside fn for non-F32
// accounting). Blocks only when the queue is full (see WithQueueDepth).
func (st *Stream) Submit(fn func(c *Comm)) *Handle {
	h := &Handle{done: make(chan struct{})}
	st.submitted.Add(1)
	st.ops <- streamOp{fn: fn, h: h}
	return h
}

// ReduceScatter enqueues a reduce-scatter of b under parts.
func (st *Stream) ReduceScatter(b Buffer, parts []Range) *Handle {
	return st.Submit(func(c *Comm) { c.WithDType(b.DType).ReduceScatter(b.Data, parts) })
}

// AllGather enqueues an all-gather of b under parts.
func (st *Stream) AllGather(b Buffer, parts []Range) *Handle {
	return st.Submit(func(c *Comm) { c.WithDType(b.DType).AllGather(b.Data, parts) })
}

// AllReduce enqueues an all-reduce (sum) of b.
func (st *Stream) AllReduce(b Buffer) *Handle {
	return st.Submit(func(c *Comm) { c.WithDType(b.DType).AllReduce(b.Data) })
}

// AllReduceAvg enqueues an all-reduce followed by division by the world
// size — the gradient-averaging collective.
func (st *Stream) AllReduceAvg(b Buffer) *Handle {
	return st.Submit(func(c *Comm) { c.WithDType(b.DType).AllReduceAvg(b.Data) })
}

// checkNodeSize validates a hierarchical submission eagerly, before the op
// reaches the worker: topology errors are programming errors at this layer
// (zero.New surfaces them at construction time), so a bad nodeSize panics
// at the submission site instead of killing the worker goroutine later.
func (st *Stream) checkNodeSize(nodeSize int) {
	if err := CheckNodeSize(st.Size(), nodeSize); err != nil {
		panic(err)
	}
}

// AllReduceHierarchical enqueues a two-level sum of b (hierarchical
// reduce-scatter + hierarchical all-gather) for groups laid out as nodes
// of nodeSize ranks. On a stream it composes with the other ordering
// domains exactly like the flat collectives do, with the intra/inter split
// recorded under the "hier-intra"/"hier-inter" group labels at b's wire
// width.
func (st *Stream) AllReduceHierarchical(b Buffer, nodeSize int) *Handle {
	st.checkNodeSize(nodeSize)
	return st.Submit(func(c *Comm) {
		if err := c.AllReduceHierarchical(b, nodeSize); err != nil {
			panic(err)
		}
	})
}

// ReduceScatterHierarchical enqueues a two-level reduce-scatter of b under
// the ownership partition parts (member i ends up owning parts[i]).
func (st *Stream) ReduceScatterHierarchical(b Buffer, parts []Range, nodeSize int) *Handle {
	st.checkNodeSize(nodeSize)
	return st.Submit(func(c *Comm) {
		if err := c.ReduceScatterHierarchical(b, parts, nodeSize); err != nil {
			panic(err)
		}
	})
}

// AllGatherHierarchical enqueues a two-level all-gather of b under parts.
func (st *Stream) AllGatherHierarchical(b Buffer, parts []Range, nodeSize int) *Handle {
	st.checkNodeSize(nodeSize)
	return st.Submit(func(c *Comm) {
		if err := c.AllGatherHierarchical(b, parts, nodeSize); err != nil {
			panic(err)
		}
	})
}

// Flush blocks until every previously submitted op has completed on this
// rank's stream. It is a local barrier: pair it across ranks (every rank
// submits the same schedule, every rank flushes).
func (st *Stream) Flush() {
	h := &Handle{done: make(chan struct{})}
	st.ops <- streamOp{h: h}
	<-h.done
}

// Pending returns the number of submitted ops not yet completed. It is
// advisory (racy by nature) and meant for tests and instrumentation.
func (st *Stream) Pending() int64 { return st.submitted.Load() - st.completed.Load() }

// Completed returns the number of ops the worker has finished executing.
func (st *Stream) Completed() int64 { return st.completed.Load() }
