package comm

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Process groups: every Comm is a communicator over a member set, and
// Split/Subgroup derive sub-communicators the way MPI_Comm_split and
// MPI_Comm_create_group do — the building block for 2D parallelism, where
// the paper's deployment (§10.1) nests Megatron model parallelism inside
// each node (an MP group of consecutive ranks) under ZeRO data parallelism
// across nodes (a DP group of strided ranks), and for the hierarchical
// intra/inter-node collectives of internal/comm/hierarchical.go.
//
// Construction returns structured errors (ErrGroup, ErrColor, ErrTopology)
// instead of panicking, so trainers can validate a topology at setup time
// and surface the problem before any collective is in flight.

// Structured error classes for group and topology construction; match with
// errors.Is.
var (
	// ErrGroup marks invalid member lists: empty, out of range, duplicate,
	// or not containing the calling rank.
	ErrGroup = errors.New("comm: invalid group")
	// ErrColor marks an invalid Split color (anything below ColorNone).
	ErrColor = errors.New("comm: invalid split color")
	// ErrTopology marks node layouts the group cannot be tiled by (node
	// size not positive, or not dividing the group size).
	ErrTopology = errors.New("comm: invalid topology")
)

// ColorNone is the Split color for ranks that opt out of every subgroup
// (MPI_UNDEFINED): Split returns (nil, nil) for them.
const ColorNone = -1

// Split partitions the communicator into disjoint sub-communicators, one
// per distinct color, and returns the one this rank belongs to — the
// MPI_Comm_split idiom. Members of a subgroup are ordered by (key, parent
// rank). A rank passing ColorNone participates in the exchange but joins no
// group (returns nil, nil). Colors below ColorNone are invalid; because the
// color exchange is itself a collective, every member must call Split, and
// an invalid color anywhere makes Split return ErrColor on *every* member
// (no rank is left blocked on a group that will never form).
func (c *Comm) Split(color, key int) (*Comm, error) {
	n := c.Size()
	// The wire payload is int32; colors or keys outside that range cannot
	// be exchanged faithfully (silent truncation would merge distinct
	// colors). An out-of-range value is replaced by a sentinel below
	// ColorNone so the *exchange still completes* and every member fails
	// together, exactly like a remote invalid color.
	const wireInvalid = math.MinInt32
	overflow := color > math.MaxInt32 || key < math.MinInt32 || key > math.MaxInt32
	valid := !overflow && color >= ColorNone
	wireColor, wireKey := int32(wireInvalid), int32(0)
	if valid {
		wireColor, wireKey = int32(color), int32(key)
	}
	// Exchange (color, key) via an all-gather of bit-exact int32 payloads:
	// Float32frombits round-trips any 32-bit pattern through the float32
	// wire without arithmetic touching it.
	buf := make([]float32, 2*n)
	buf[2*c.pos] = math.Float32frombits(uint32(wireColor))
	buf[2*c.pos+1] = math.Float32frombits(uint32(wireKey))
	if n > 1 {
		c.ringAllGather("split", buf, Partition(len(buf), n), c.pos)
	}
	if overflow {
		return nil, fmt.Errorf("%w: color %d / key %d do not fit the int32 exchange", ErrColor, color, key)
	}
	if !valid {
		return nil, fmt.Errorf("%w: color %d (want ≥ %d, or ColorNone to opt out)", ErrColor, color, ColorNone)
	}
	colors := make([]int, n)
	keys := make([]int, n)
	for i := 0; i < n; i++ {
		colors[i] = int(int32(math.Float32bits(buf[2*i])))
		keys[i] = int(int32(math.Float32bits(buf[2*i+1])))
	}
	for i, col := range colors {
		if col < ColorNone {
			return nil, fmt.Errorf("%w: member %d passed color %d (want ≥ %d)", ErrColor, i, col, ColorNone)
		}
	}
	if color == ColorNone {
		return nil, nil
	}
	var members []int
	for i, col := range colors {
		if col == color {
			members = append(members, i)
		}
	}
	sort.SliceStable(members, func(a, b int) bool {
		return keys[members[a]] < keys[members[b]]
	})
	return c.Subgroup(members)
}

// Subgroup creates a sub-communicator over the given members without any
// communication (the MPI_Comm_create_group shape): members are group-local
// ranks of the *parent* communicator, must include the calling rank, and
// must contain no duplicates. Every listed member must make the same call
// before using the subgroup collectively; member order defines the
// subgroup's rank order.
func (c *Comm) Subgroup(members []int) (*Comm, error) {
	if len(members) == 0 {
		return nil, fmt.Errorf("%w: empty member list", ErrGroup)
	}
	n := c.Size()
	pos := -1
	seen := make(map[int]bool, len(members))
	global := make([]int, len(members))
	for i, m := range members {
		if m < 0 || m >= n {
			return nil, fmt.Errorf("%w: member %d out of range [0,%d)", ErrGroup, m, n)
		}
		if seen[m] {
			return nil, fmt.Errorf("%w: duplicate member %d", ErrGroup, m)
		}
		seen[m] = true
		if m == c.pos {
			pos = i
		}
		global[i] = c.global(m)
	}
	if pos < 0 {
		return nil, fmt.Errorf("%w: rank %d is not a member", ErrGroup, c.pos)
	}
	cp := *c
	cp.members = global
	cp.pos = pos
	// A subgroup's member set differs from its parent's, so it gets a fresh
	// topology cache (the parent's cached node layouts do not apply).
	cp.topos = &topoCache{}
	return &cp, nil
}

// CheckNodeSize validates that a group of the given size tiles into nodes
// of nodeSize ranks; the error wraps ErrTopology.
func CheckNodeSize(size, nodeSize int) error {
	if nodeSize <= 0 || size%nodeSize != 0 {
		return fmt.Errorf("%w: group size %d is not a positive multiple of node size %d", ErrTopology, size, nodeSize)
	}
	return nil
}

// MPGroup returns the model-parallel group this rank belongs to when the
// group is laid out as consecutive blocks of mpSize ranks (ranks 0..mp-1
// form replica 0, etc. — MP inside the "node"). Collective: every member
// of c must call it. Traffic is attributed to the "mp" group label.
func (c *Comm) MPGroup(mpSize int) (*Comm, error) {
	if err := CheckNodeSize(c.Size(), mpSize); err != nil {
		return nil, err
	}
	g, err := c.Split(c.pos/mpSize, c.pos)
	if err != nil {
		return nil, err
	}
	return g.Named("mp"), nil
}

// DPGroup returns the data-parallel group: ranks with the same MP position
// across replicas (stride mpSize). Collective: every member of c must call
// it. Traffic is attributed to the "dp" group label.
func (c *Comm) DPGroup(mpSize int) (*Comm, error) {
	if err := CheckNodeSize(c.Size(), mpSize); err != nil {
		return nil, err
	}
	g, err := c.Split(c.pos%mpSize, c.pos)
	if err != nil {
		return nil, err
	}
	return g.Named("dp"), nil
}
