package comm

// Group is a communicator over an arbitrary subset of the world's ranks —
// the building block for 2D parallelism, where the paper's deployment
// (§10.1) nests Megatron model parallelism inside each node (an MP group of
// consecutive ranks) under ZeRO data parallelism across nodes (a DP group
// of strided ranks).
type Group struct {
	c     *Comm
	ranks []int
	pos   int    // index of c's rank within ranks
	label string // traffic-accounting label ("mp", "dp", ...)
}

// Group creates a subgroup communicator over the given ranks (which must
// include this rank, appear in a consistent order on every member, and
// contain no duplicates). Collectives on the group must be entered by
// every member.
func (c *Comm) Group(ranks []int) *Group {
	pos := -1
	seen := make(map[int]bool, len(ranks))
	for i, r := range ranks {
		if r < 0 || r >= c.w.n {
			panic("comm: group rank out of range")
		}
		if seen[r] {
			panic("comm: duplicate rank in group")
		}
		seen[r] = true
		if r == c.rank {
			pos = i
		}
	}
	if pos < 0 {
		panic("comm: this rank is not a member of the group")
	}
	return &Group{c: c, ranks: append([]int(nil), ranks...), pos: pos}
}

// Named sets the group's traffic-accounting label: collectives record under
// "group-<op>:<label>" in Stats.PerCollective, so MP and DP traffic of a 2D
// layout can be separated.
func (g *Group) Named(label string) *Group {
	g.label = label
	return g
}

func (g *Group) op(base string) string {
	if g.label == "" {
		return base
	}
	return base + ":" + g.label
}

// MPGroup returns the model-parallel group this rank belongs to when the
// world is laid out as consecutive blocks of mpSize ranks (ranks 0..mp-1
// form replica 0, etc. — MP inside the "node").
func (c *Comm) MPGroup(mpSize int) *Group {
	if mpSize <= 0 || c.w.n%mpSize != 0 {
		panic("comm: world size must be a multiple of mpSize")
	}
	base := (c.rank / mpSize) * mpSize
	ranks := make([]int, mpSize)
	for i := range ranks {
		ranks[i] = base + i
	}
	return c.Group(ranks).Named("mp")
}

// DPGroup returns the data-parallel group: ranks with the same MP position
// across replicas (stride mpSize).
func (c *Comm) DPGroup(mpSize int) *Group {
	if mpSize <= 0 || c.w.n%mpSize != 0 {
		panic("comm: world size must be a multiple of mpSize")
	}
	local := c.rank % mpSize
	ranks := make([]int, c.w.n/mpSize)
	for i := range ranks {
		ranks[i] = i*mpSize + local
	}
	return c.Group(ranks).Named("dp")
}

// Rank returns this member's position within the group.
func (g *Group) Rank() int { return g.pos }

// Size returns the group's member count.
func (g *Group) Size() int { return len(g.ranks) }

// AllReduce sums x elementwise across the group, in place (ring).
func (g *Group) AllReduce(x []float32) {
	if len(g.ranks) == 1 {
		return
	}
	parts := Partition(len(x), len(g.ranks))
	g.c.groupReduceScatter(g.op("group-allreduce"), x, parts, g.ranks, g.pos)
	g.c.groupAllGather(g.op("group-allreduce"), x, parts, g.ranks, g.pos, g.pos)
}

// AllReduceAvg sums and divides by the group size.
func (g *Group) AllReduceAvg(x []float32) {
	g.AllReduce(x)
	inv := 1 / float32(len(g.ranks))
	for i := range x {
		x[i] *= inv
	}
}

// ReduceScatter reduces x so member i owns the fully reduced parts[i];
// returns this member's shard (a subslice of x).
func (g *Group) ReduceScatter(x []float32, parts []Range) []float32 {
	if len(parts) != len(g.ranks) {
		panic("comm: group ReduceScatter partition count != group size")
	}
	if len(g.ranks) > 1 {
		g.c.groupReduceScatter(g.op("group-reducescatter"), x, parts, g.ranks, g.pos)
	}
	p := parts[g.pos]
	return x[p.Lo:p.Hi]
}

// AllGather collects each member's shard into the full buffer on every
// member.
func (g *Group) AllGather(x []float32, parts []Range) {
	if len(parts) != len(g.ranks) {
		panic("comm: group AllGather partition count != group size")
	}
	if len(g.ranks) > 1 {
		g.c.groupAllGather(g.op("group-allgather"), x, parts, g.ranks, g.pos, g.pos)
	}
}

// Broadcast distributes the root member's x to the whole group (root is a
// group-local index). Linear fan-out: group sizes here are node-scale.
func (g *Group) Broadcast(x []float32, root int) {
	if root < 0 || root >= len(g.ranks) {
		panic("comm: group Broadcast root out of range")
	}
	if len(g.ranks) == 1 {
		return
	}
	if g.pos == root {
		for i, r := range g.ranks {
			if i != root {
				g.c.send(g.op("group-broadcast"), r, x)
			}
		}
		return
	}
	data := g.c.recv(g.op("group-broadcast"), g.ranks[root])
	copy(x, data)
}
