package comm

// Ring and tree collectives. Per-rank traffic for a buffer of Ψ elements on
// N ranks (the quantities the paper's §7 analysis is built on):
//
//	ReduceScatter: sends Ψ·(N-1)/N   ≈ Ψ
//	AllGather:     sends Ψ·(N-1)/N   ≈ Ψ
//	AllReduce:     sends 2Ψ·(N-1)/N  ≈ 2Ψ  (reduce-scatter + all-gather)
//	Broadcast:     tree; root sends ≤ Ψ·⌈log2 N⌉ aggregate, Ψ per edge
//
// All collectives must be entered by every rank of the world with buffers of
// identical length; they are synchronizing operations.

// AllReduce sums x elementwise across all ranks, in place, using the
// two-phase ring algorithm (pipelined reduce-scatter then all-gather).
func (c *Comm) AllReduce(x []float32) {
	n := c.w.n
	if n == 1 {
		return
	}
	parts := Partition(len(x), n)
	c.ringReduceScatter("allreduce", x, parts)
	c.ringAllGather("allreduce", x, parts, c.rank)
}

// AllReduceAvg sums x across ranks and divides by the world size — the
// gradient-averaging step of data-parallel training.
func (c *Comm) AllReduceAvg(x []float32) {
	c.AllReduce(x)
	inv := 1 / float32(c.w.n)
	for i := range x {
		x[i] *= inv
	}
}

// ReduceScatter reduces x elementwise across ranks and leaves rank r owning
// the fully reduced partition parts[r] (in place; other regions of x hold
// partially reduced garbage afterwards). parts must come from
// Partition(len(x), Size()). Returns this rank's reduced shard as a subslice
// of x.
func (c *Comm) ReduceScatter(x []float32, parts []Range) []float32 {
	if len(parts) != c.w.n {
		panic("comm: ReduceScatter partition count != world size")
	}
	if c.w.n > 1 {
		c.ringReduceScatter("reducescatter", x, parts)
	}
	p := parts[c.rank]
	return x[p.Lo:p.Hi]
}

// AllGather collects each rank's shard (shard = x[parts[rank]] already in
// place) into the full buffer x on every rank. parts must come from
// Partition(len(x), Size()).
func (c *Comm) AllGather(x []float32, parts []Range) {
	if len(parts) != c.w.n {
		panic("comm: AllGather partition count != world size")
	}
	if c.w.n == 1 {
		return
	}
	c.ringAllGather("allgather", x, parts, c.rank)
}

// Broadcast distributes root's x to every rank, in place, over a binomial
// tree (⌈log2 N⌉ latency, one buffer per tree edge).
func (c *Comm) Broadcast(x []float32, root int) {
	n := c.w.n
	if n == 1 {
		return
	}
	// Virtual rank with root at 0 simplifies the tree arithmetic.
	vr := (c.rank - root + n) % n
	// Receive once from the parent: the node with this rank's lowest set
	// bit cleared.
	mask := 1
	for mask < n {
		if vr&mask != 0 {
			parent := ((vr - mask) + root) % n
			data := c.recv("broadcast", parent)
			copy(x, data)
			break
		}
		mask <<= 1
	}
	// Forward to children at decreasing distances below the receive bit.
	mask >>= 1
	for mask > 0 {
		if child := vr + mask; child < n {
			c.send("broadcast", (child+root)%n, x)
		}
		mask >>= 1
	}
}

// Reduce sums x across ranks onto root (in place at root; other ranks' x is
// unchanged). Implemented as reduce-scatter + gather-to-root so per-rank
// volume stays O(Ψ).
func (c *Comm) Reduce(x []float32, root int) {
	n := c.w.n
	if n == 1 {
		return
	}
	parts := Partition(len(x), n)
	work := make([]float32, len(x))
	copy(work, x)
	c.ringReduceScatter("reduce", work, parts)
	mine := parts[c.rank]
	if c.rank == root {
		copy(x[mine.Lo:mine.Hi], work[mine.Lo:mine.Hi])
		for r := 0; r < n; r++ {
			if r == root {
				continue
			}
			shard := c.recv("reduce", r)
			p := parts[r]
			copy(x[p.Lo:p.Hi], shard)
		}
	} else {
		c.send("reduce", root, work[mine.Lo:mine.Hi])
	}
}

// Gather collects each rank's shard to root. shard lengths may differ per
// rank; root receives them in rank order into out (caller-sized). Non-root
// ranks pass out == nil.
func (c *Comm) Gather(shard []float32, root int, out [][]float32) {
	if c.rank == root {
		if len(out) != c.w.n {
			panic("comm: Gather out must have one slot per rank")
		}
		out[root] = append([]float32(nil), shard...)
		for r := 0; r < c.w.n; r++ {
			if r == root {
				continue
			}
			out[r] = c.recv("gather", r)
		}
		return
	}
	c.send("gather", root, shard)
}

// ringReduceScatter runs the N-1 step ring so that, on return, rank r holds
// the fully reduced chunk parts[r] inside x.
func (c *Comm) ringReduceScatter(op string, x []float32, parts []Range) {
	n := c.w.n
	right := (c.rank + 1) % n
	left := (c.rank - 1 + n) % n
	for s := 0; s < n-1; s++ {
		sendIdx := ((c.rank-s-1)%n + n) % n
		recvIdx := ((c.rank-s-2)%n + n) % n
		sp := parts[sendIdx]
		c.send(op, right, x[sp.Lo:sp.Hi])
		data := c.recv(op, left)
		rp := parts[recvIdx]
		dst := x[rp.Lo:rp.Hi]
		if len(data) != len(dst) {
			panic("comm: ring chunk length mismatch (buffers must be equal-length on all ranks)")
		}
		for i, v := range data {
			dst[i] += v
		}
	}
}

// ringAllGather runs the N-1 step ring so that, on return, every rank holds
// every chunk. ownIdx names the chunk this rank contributes.
func (c *Comm) ringAllGather(op string, x []float32, parts []Range, ownIdx int) {
	n := c.w.n
	right := (c.rank + 1) % n
	left := (c.rank - 1 + n) % n
	for s := 0; s < n-1; s++ {
		sendIdx := ((ownIdx-s)%n + n) % n
		recvIdx := ((ownIdx-s-1)%n + n) % n
		sp := parts[sendIdx]
		c.send(op, right, x[sp.Lo:sp.Hi])
		data := c.recv(op, left)
		rp := parts[recvIdx]
		dst := x[rp.Lo:rp.Hi]
		if len(data) != len(dst) {
			panic("comm: ring chunk length mismatch (buffers must be equal-length on all ranks)")
		}
		copy(dst, data)
	}
}
