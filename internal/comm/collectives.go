package comm

import "fmt"

// Ring and tree collectives. Per-rank traffic for a buffer of Ψ elements on
// a group of N members (the quantities the paper's §7 analysis is built on):
//
//	ReduceScatter: sends Ψ·(N-1)/N   ≈ Ψ
//	AllGather:     sends Ψ·(N-1)/N   ≈ Ψ
//	AllReduce:     sends 2Ψ·(N-1)/N  ≈ 2Ψ  (reduce-scatter + all-gather)
//	Broadcast:     tree; root sends ≤ Ψ·⌈log2 N⌉ aggregate, Ψ per edge
//
// Every collective is group-generic: it runs over the members of its Comm —
// the whole world for World.Comm handles, a rank subset for communicators
// derived by Split/Subgroup — with ranks, partition indices and roots in
// group-local coordinates. All members must enter the collective with
// buffers of identical length; collectives are synchronizing operations.

// AllReduce sums x elementwise across the group, in place, using the
// two-phase ring algorithm (pipelined reduce-scatter then all-gather).
func (c *Comm) AllReduce(x []float32) {
	n := c.Size()
	if n == 1 {
		return
	}
	parts := Partition(len(x), n)
	c.ringReduceScatter("allreduce", x, parts)
	c.ringAllGather("allreduce", x, parts, c.pos)
}

// AllReduceAvg sums x across the group and divides by the group size — the
// gradient-averaging step of data-parallel training.
func (c *Comm) AllReduceAvg(x []float32) {
	c.AllReduce(x)
	inv := 1 / float32(c.Size())
	for i := range x {
		x[i] *= inv
	}
}

// ReduceScatter reduces x elementwise across the group and leaves member r
// owning the fully reduced partition parts[r] (in place; other regions of x
// hold partially reduced garbage afterwards). parts has one Range per
// member — typically Partition(len(x), Size()), but any list of disjoint
// ranges works (the hierarchical collectives pass non-tiling lists).
// Returns this member's reduced shard as a subslice of x.
func (c *Comm) ReduceScatter(x []float32, parts []Range) []float32 {
	if len(parts) != c.Size() {
		panic("comm: ReduceScatter partition count != group size")
	}
	if c.Size() > 1 {
		c.ringReduceScatter("reducescatter", x, parts)
	}
	p := parts[c.pos]
	return x[p.Lo:p.Hi]
}

// AllGather collects each member's shard (shard = x[parts[rank]] already in
// place) into every listed range of x on every member. parts has one Range
// per member (see ReduceScatter for the shape contract).
func (c *Comm) AllGather(x []float32, parts []Range) {
	if len(parts) != c.Size() {
		panic("comm: AllGather partition count != group size")
	}
	if c.Size() == 1 {
		return
	}
	c.ringAllGather("allgather", x, parts, c.pos)
}

// Broadcast distributes the root member's x to every member, in place, over
// a binomial tree (⌈log2 N⌉ latency, one buffer per tree edge). root is a
// group-local rank.
func (c *Comm) Broadcast(x []float32, root int) {
	n := c.Size()
	c.checkRoot(root)
	if n == 1 {
		return
	}
	// Virtual rank with root at 0 simplifies the tree arithmetic.
	vr := (c.pos - root + n) % n
	// Receive once from the parent: the node with this rank's lowest set
	// bit cleared.
	mask := 1
	for mask < n {
		if vr&mask != 0 {
			parent := ((vr - mask) + root) % n
			data := c.recv("broadcast", parent)
			copy(x, data)
			c.release(data)
			break
		}
		mask <<= 1
	}
	// Forward to children at decreasing distances below the receive bit.
	mask >>= 1
	for mask > 0 {
		if child := vr + mask; child < n {
			c.send("broadcast", (child+root)%n, x)
		}
		mask >>= 1
	}
}

// Reduce sums x across the group onto the root member (in place at root;
// other members' x is unchanged). Implemented as reduce-scatter +
// gather-to-root so per-rank volume stays O(Ψ). root is a group-local rank.
func (c *Comm) Reduce(x []float32, root int) {
	n := c.Size()
	c.checkRoot(root)
	if n == 1 {
		return
	}
	parts := Partition(len(x), n)
	work := c.w.wire.Get(len(x))
	copy(work, x)
	c.ringReduceScatter("reduce", work, parts)
	mine := parts[c.pos]
	if c.pos == root {
		copy(x[mine.Lo:mine.Hi], work[mine.Lo:mine.Hi])
		for r := 0; r < n; r++ {
			if r == root {
				continue
			}
			shard := c.recv("reduce", r)
			p := parts[r]
			copy(x[p.Lo:p.Hi], shard)
			c.release(shard)
		}
	} else {
		c.send("reduce", root, work[mine.Lo:mine.Hi])
	}
	c.release(work)
}

// Gather collects each member's shard to the root member. shard lengths may
// differ per member; root receives them in group-rank order into out
// (caller-sized). Non-root members pass out == nil.
func (c *Comm) Gather(shard []float32, root int, out [][]float32) {
	c.checkRoot(root)
	if c.pos == root {
		if len(out) != c.Size() {
			panic("comm: Gather out must have one slot per group member")
		}
		out[root] = append([]float32(nil), shard...)
		for r := 0; r < c.Size(); r++ {
			if r == root {
				continue
			}
			data := c.recv("gather", r)
			out[r] = append([]float32(nil), data...)
			c.release(data)
		}
		return
	}
	c.send("gather", root, shard)
}

// checkRoot panics on a root outside the group — roots are group-local
// ranks, an easy slip now that Rank() is group-local too (passing a global
// rank into a subgroup's Broadcast would otherwise silently re-root at 0
// or index out of range deep in the wire lookup).
func (c *Comm) checkRoot(root int) {
	if root < 0 || root >= c.Size() {
		panic(fmt.Sprintf("comm: root %d out of range [0,%d) (roots are group-local ranks)", root, c.Size()))
	}
}

// ringReduceScatter runs the N-1 step ring so that, on return, member r
// holds the fully reduced chunk parts[r] inside x.
func (c *Comm) ringReduceScatter(op string, x []float32, parts []Range) {
	n := c.Size()
	right := (c.pos + 1) % n
	left := (c.pos - 1 + n) % n
	for s := 0; s < n-1; s++ {
		sendIdx := ((c.pos-s-1)%n + n) % n
		recvIdx := ((c.pos-s-2)%n + n) % n
		sp := parts[sendIdx]
		c.send(op, right, x[sp.Lo:sp.Hi])
		data := c.recv(op, left)
		rp := parts[recvIdx]
		dst := x[rp.Lo:rp.Hi]
		if len(data) != len(dst) {
			panic("comm: ring chunk length mismatch (buffers must be equal-length on all ranks)")
		}
		for i, v := range data {
			dst[i] += v
		}
		c.release(data)
	}
}

// ringAllGather runs the N-1 step ring so that, on return, every member
// holds every chunk. ownIdx names the chunk this member contributes.
func (c *Comm) ringAllGather(op string, x []float32, parts []Range, ownIdx int) {
	n := c.Size()
	right := (c.pos + 1) % n
	left := (c.pos - 1 + n) % n
	for s := 0; s < n-1; s++ {
		sendIdx := ((ownIdx-s)%n + n) % n
		recvIdx := ((ownIdx-s-1)%n + n) % n
		sp := parts[sendIdx]
		c.send(op, right, x[sp.Lo:sp.Hi])
		data := c.recv(op, left)
		rp := parts[recvIdx]
		dst := x[rp.Lo:rp.Hi]
		if len(data) != len(dst) {
			panic("comm: ring chunk length mismatch (buffers must be equal-length on all ranks)")
		}
		copy(dst, data)
		c.release(data)
	}
}
