package comm

import (
	"errors"
	"testing"
	"time"
)

// runFallibleWithTimeout runs fn under RunFallible and fails the test if the
// world does not quiesce — the deadlock these tests exist to rule out.
func runFallibleWithTimeout(t *testing.T, w *World, fn func(c *Comm)) []error {
	t.Helper()
	type result struct{ errs []error }
	ch := make(chan result, 1)
	go func() { ch <- result{w.RunFallible(fn)} }()
	select {
	case r := <-ch:
		return r.errs
	case <-time.After(30 * time.Second):
		t.Fatal("RunFallible did not return: surviving ranks deadlocked instead of observing the failure")
		return nil
	}
}

// countDeaths splits a RunFallible result into injected kills and observed
// peer failures.
func countDeaths(errs []error) (killed, observed, survived int) {
	for _, err := range errs {
		if err == nil {
			survived++
		} else if _, ok := errorsAsKilled(err); ok {
			killed++
		} else {
			observed++
		}
	}
	return
}

func errorsAsKilled(err error) (Killed, bool) {
	var k Killed
	ok := errors.As(err, &k)
	return k, ok
}

// TestFailRankUnblocksAllReduce kills one rank mid-allreduce loop and checks
// every surviving rank errors out with RankFailure instead of deadlocking.
func TestFailRankUnblocksAllReduce(t *testing.T) {
	const n = 4
	const victim = 2
	w := NewWorld(n)
	errs := runFallibleWithTimeout(t, w, func(c *Comm) {
		buf := make([]float32, 64)
		for step := 0; ; step++ {
			if c.Rank() == victim && step == 3 {
				c.Fail()
			}
			for i := range buf {
				buf[i] = float32(c.Rank() + step + i)
			}
			c.AllReduce(buf)
			if step > 1000 {
				t.Errorf("rank %d ran %d steps without observing the kill", c.Rank(), step)
				return
			}
		}
	})
	k, ok := errorsAsKilled(errs[victim])
	if !ok || k.Rank != victim {
		t.Fatalf("victim error = %v, want Killed{%d}", errs[victim], victim)
	}
	killed, observed, survived := countDeaths(errs)
	if killed != 1 || observed != n-1 || survived != 0 {
		t.Fatalf("deaths = (killed %d, observed %d, survived %d), want (1, %d, 0): %v",
			killed, observed, survived, n-1, errs)
	}
}

// TestFailRankAfterOpsDeterministic arms the op-countdown trigger twice with
// the same schedule and checks the victim dies at the identical op both
// times (same surviving-rank error sets).
func TestFailRankAfterOpsDeterministic(t *testing.T) {
	run := func() ([]error, int) {
		w := NewWorld(4)
		w.FailRankAfterOps(1, 17)
		steps := 0
		errs := runFallibleWithTimeout(t, w, func(c *Comm) {
			buf := make([]float32, 8)
			for step := 0; step < 50; step++ {
				c.AllReduce(buf)
				if c.Rank() == 0 {
					steps = step
				}
			}
		})
		return errs, steps
	}
	errs1, _ := run()
	errs2, _ := run()
	for r := range errs1 {
		e1, e2 := errs1[r], errs2[r]
		if (e1 == nil) != (e2 == nil) {
			t.Fatalf("rank %d: nondeterministic death: run1 %v, run2 %v", r, e1, e2)
		}
		if e1 != nil && e1.Error() != e2.Error() {
			t.Fatalf("rank %d: run1 %q, run2 %q", r, e1, e2)
		}
	}
	if k, ok := errorsAsKilled(errs1[1]); !ok || k.Rank != 1 {
		t.Fatalf("rank 1 error = %v, want Killed{1}", errs1[1])
	}
}

// TestFailRankUnblocksStreams kills a rank whose collectives ride named
// streams: the surviving ranks' stream workers must capture the death, their
// Handle.Wait must re-panic it on the rank goroutine, and Scheduler.Close
// must still drain during teardown.
func TestFailRankUnblocksStreams(t *testing.T) {
	const n = 4
	const victim = 0
	w := NewWorld(n)
	errs := runFallibleWithTimeout(t, w, func(c *Comm) {
		s := NewScheduler(c)
		defer s.Close()
		grad := s.Stream("grad")
		pf := s.Stream("prefetch")
		buf := make([]float32, 32)
		buf2 := make([]float32, 32)
		for step := 0; step < 200; step++ {
			if c.Rank() == victim && step == 5 {
				c.Fail()
			}
			h1 := grad.AllReduce(F32Buf(buf))
			h2 := pf.AllReduce(F32Buf(buf2))
			h1.Wait()
			h2.Wait()
		}
	})
	// The victim dies by injection; survivors die by observing the cascade —
	// either directly (RankFailure from a wire op) or via their own rank's
	// death signal raised by a stream worker (Killed). What matters is that
	// no rank survives and none deadlocks.
	if k, ok := errorsAsKilled(errs[victim]); !ok || k.Rank != victim {
		t.Fatalf("victim error = %v, want Killed{%d}", errs[victim], victim)
	}
	for r, err := range errs {
		if err == nil {
			t.Fatalf("rank %d survived a world with a dead member: %v", r, errs)
		}
	}
}

// TestBarrierNilDistinctFromClose pins the property the failure detector
// depends on: Barrier's live nil payloads arrive with ok == true, while a
// closed wire yields ok == false — so a barrier passes right up until a real
// death.
func TestBarrierNilDistinctFromClose(t *testing.T) {
	w := NewWorld(3)
	// Barriers on a healthy fault-enabled world must pass.
	w.EnableFaultInjection()
	w.Run(func(c *Comm) {
		for i := 0; i < 10; i++ {
			c.Barrier()
		}
	})
	// Now kill a rank; the next barrier must fail on survivors, not hang.
	errs := runFallibleWithTimeout(t, w, func(c *Comm) {
		if c.Rank() == 1 {
			c.Fail()
		}
		c.Barrier()
	})
	if errs[0] == nil || errs[2] == nil {
		t.Fatalf("survivors passed a barrier with a dead member: %v", errs)
	}
}

// TestInFlightMessagesDeliveredBeforeFailure checks buffered wire messages
// sent before a death are still received (the channel drains before ok goes
// false) — a rank's last completed sends are not lost.
func TestInFlightMessagesDeliveredBeforeFailure(t *testing.T) {
	w := NewWorld(2)
	w.EnableFaultInjection()
	payload := []float32{1, 2, 3}
	got := make(chan []float32, 1)
	errs := runFallibleWithTimeout(t, w, func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, payload)
			c.Fail()
		}
		data := c.Recv(0)
		got <- append([]float32(nil), data...)
		// The next receive observes the death.
		c.Recv(0)
	})
	if errs[1] == nil {
		t.Fatal("rank 1 should observe rank 0's death on the second recv")
	}
	data := <-got
	for i, v := range payload {
		if data[i] != v {
			t.Fatalf("in-flight payload corrupted: got %v", data)
		}
	}
}

// TestRunFallibleCleanRun checks the fallible runner is transparent for
// healthy worlds: all errors nil, results identical to Run.
func TestRunFallibleCleanRun(t *testing.T) {
	w := NewWorld(4)
	sums := make([]float32, 4)
	errs := runFallibleWithTimeout(t, w, func(c *Comm) {
		buf := []float32{float32(c.Rank() + 1)}
		c.AllReduce(buf)
		sums[c.Rank()] = buf[0]
	})
	if err, r := FirstFailure(errs); err != nil {
		t.Fatalf("rank %d failed on a healthy run: %v", r, err)
	}
	for r, s := range sums {
		if s != 10 {
			t.Fatalf("rank %d: allreduce sum = %v, want 10", r, s)
		}
	}
}

// TestRankDeadAndLazyChannels checks channels created after a death come
// back closed, so late stream creation cannot resurrect a dead wire.
func TestRankDeadAndLazyChannels(t *testing.T) {
	w := NewWorld(2)
	w.EnableFaultInjection()
	w.FailRank(1)
	if !w.RankDead(1) || w.RankDead(0) {
		t.Fatalf("RankDead = (%v, %v), want (false, true)", w.RankDead(0), w.RankDead(1))
	}
	errs := runFallibleWithTimeout(t, w, func(c *Comm) {
		if c.Rank() != 0 {
			return
		}
		s := NewScheduler(c)
		defer s.Close()
		h := s.Stream("late").Submit(func(sc *Comm) { sc.Recv(1) })
		h.Wait()
	})
	if errs[0] == nil {
		t.Fatal("recv on a lazily created wire to a dead rank should fail")
	}
}
