package comm

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Rank-failure model. A real cluster loses a worker when its process dies:
// peers observe reset connections, not a polite goodbye. The in-process
// analogue is a closed per-rank death channel: every wire operation on a
// fault-enabled world selects on the death signal of the peer it is paired
// with (and of its own rank), so a blocked sender or receiver unblocks the
// moment either side dies, and panics a typed RankFailure instead of
// deadlocking mid-collective. Wire channels themselves are never closed —
// close-vs-send is a data race — and messages enqueued before a death are
// still drained first, so a rank's last completed sends are never lost.
//
// A rank that observes a peer death fail-stops: it marks itself dead before
// unwinding, which cascades the signal to its own stream workers and to
// peers blocked on it, so teardown (deferred Scheduler.Close et al) always
// drains. World.RunFallible converts the death panics into per-rank errors.
//
// Fault handling is opt-in per world (EnableFaultInjection, implied by
// RunFallible and FailRank): worlds that never inject faults keep the
// select-free send/recv fast path.

// RankFailure is the panic value a collective raises when it observes a dead
// peer: a receive from (or send to) a rank whose wire channels were closed.
type RankFailure struct {
	Rank int // the rank that observed the failure
	Peer int // the peer whose death was observed
}

func (f RankFailure) Error() string {
	return fmt.Sprintf("comm: rank %d observed failure of rank %d", f.Rank, f.Peer)
}

// Killed is the panic value raised on a rank that is itself being killed by
// fault injection (Comm.Fail or an armed FailRankAfterOps trigger).
type Killed struct {
	Rank int
}

func (k Killed) Error() string {
	return fmt.Sprintf("comm: rank %d killed by fault injection", k.Rank)
}

// AsRankDeath reports whether a recovered panic value is part of the
// rank-failure protocol (an injected Killed or an observed RankFailure) and
// returns it as an error. Any other panic value is a genuine bug and should
// be re-panicked.
func AsRankDeath(r any) (error, bool) {
	switch v := r.(type) {
	case Killed:
		return v, true
	case RankFailure:
		return v, true
	}
	return nil, false
}

// faultState holds a world's fault-injection bookkeeping. Allocated lazily;
// the enabled flag is checked on the send hot path with one atomic load.
// dead is guarded by the world's mu; death[r] is closed (exactly once, under
// mu) when rank r dies.
type faultState struct {
	enabled atomic.Bool
	trigger []atomic.Int64 // per-rank countdown; <=0 means disarmed

	dead  []bool
	death []chan struct{} // death[r] closed when rank r dies
}

// EnableFaultInjection switches the world's wire layer into fault-tolerant
// mode: sends and receives select on peer death signals, so a dead rank
// surfaces as a RankFailure panic instead of a deadlock. Must be called
// before ranks start exchanging messages (RunFallible does it
// automatically); idempotent.
func (w *World) EnableFaultInjection() {
	w.mu.Lock()
	if w.faults == nil {
		fs := &faultState{
			trigger: make([]atomic.Int64, w.n),
			dead:    make([]bool, w.n),
			death:   make([]chan struct{}, w.n),
		}
		for r := range fs.death {
			fs.death[r] = make(chan struct{})
		}
		w.faults = fs
	}
	w.faults.enabled.Store(true)
	w.mu.Unlock()
}

// faultsOn reports whether fault injection is enabled (hot-path check).
func (w *World) faultsOn() bool {
	fs := w.faults
	return fs != nil && fs.enabled.Load()
}

// FailRankAfterOps arms a deterministic kill switch: the n-th wire operation
// (send or receive, counted across the rank's goroutines) performed by rank
// after this call panics Killed. n must be positive. Calling with a schedule
// that drives the rank's ops from a single goroutine (the usual test setup)
// makes the kill point exactly reproducible.
func (w *World) FailRankAfterOps(rank, n int) {
	if rank < 0 || rank >= w.n {
		panic(fmt.Sprintf("comm: rank %d out of range [0,%d)", rank, w.n))
	}
	if n <= 0 {
		panic("comm: FailRankAfterOps count must be positive")
	}
	w.EnableFaultInjection()
	w.faults.trigger[rank].Store(int64(n))
}

// FailRank marks rank dead and broadcasts its death signal. Peers blocked on
// a wire paired with the rank unblock immediately and panic RankFailure (any
// messages the rank enqueued before dying are drained first); operations on
// wires created later observe the death the same way. Idempotent.
func (w *World) FailRank(rank int) {
	if rank < 0 || rank >= w.n {
		panic(fmt.Sprintf("comm: rank %d out of range [0,%d)", rank, w.n))
	}
	w.EnableFaultInjection()
	w.mu.Lock()
	fs := w.faults
	if !fs.dead[rank] {
		fs.dead[rank] = true
		close(fs.death[rank])
	}
	w.mu.Unlock()
}

// RankDead reports whether rank has been marked dead.
func (w *World) RankDead(rank int) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.faults != nil && w.faults.dead[rank]
}

// preOp runs the fault-injection countdown for one wire operation on rank.
// Called from send/recv only when fault injection is enabled.
func (w *World) preOp(rank int) {
	t := &w.faults.trigger[rank]
	if t.Load() > 0 && t.Add(-1) == 0 {
		w.FailRank(rank)
		panic(Killed{Rank: rank})
	}
}

// sendWire is the fault-aware send path: deliver cp to gdst, or observe a
// death. A send that fits the wire buffer always succeeds (real networks
// accept writes into the void too — the message is simply never consumed);
// only a *blocked* sender consults the death signals, so the fault machinery
// never changes healthy-world pairing.
func (c *Comm) sendWire(gdst int, cp []float32) {
	ch := c.w.channel(c.rank, gdst, c.stream)
	select {
	case ch <- cp:
		return
	default:
	}
	fs := c.w.faults
	select {
	case ch <- cp:
	case <-fs.death[gdst]:
		// Fail-stop: a collective interrupted by a peer death cannot
		// complete, so this rank dies too before unwinding — the signal
		// cascades to its own stream workers and to peers blocked on it,
		// keeping teardown (deferred Scheduler.Close et al) drainable.
		c.w.FailRank(c.rank)
		panic(RankFailure{Rank: c.rank, Peer: gdst})
	case <-fs.death[c.rank]:
		// Another goroutine of this rank died (injected kill or observed
		// failure); abort this one as part of the same death.
		panic(Killed{Rank: c.rank})
	}
}

// recvWire is the fault-aware receive path. Messages already on the wire are
// always drained before a death is reported — including one racing the death
// signal — so a rank's last completed sends are never lost.
func (c *Comm) recvWire(gsrc int) []float32 {
	ch := c.w.channel(gsrc, c.rank, c.stream)
	select {
	case data := <-ch:
		return data
	default:
	}
	fs := c.w.faults
	select {
	case data := <-ch:
		return data
	case <-fs.death[gsrc]:
		// The send of any message enqueued before the death signal
		// happens-before the close, so one final poll is decisive.
		select {
		case data := <-ch:
			return data
		default:
		}
		c.w.FailRank(c.rank)
		panic(RankFailure{Rank: c.rank, Peer: gsrc})
	case <-fs.death[c.rank]:
		panic(Killed{Rank: c.rank})
	}
}

// Fail kills this communicator's rank: its wire channels close (peers
// observe the death) and the calling goroutine panics Killed, to be
// converted into an error by World.RunFallible. It never returns.
func (c *Comm) Fail() {
	c.w.FailRank(c.rank)
	panic(Killed{Rank: c.rank})
}

// RunFallible is Run for worlds where ranks may die: it spawns one goroutine
// per rank, converts rank-death panics (injected kills and observed peer
// failures) into per-rank errors, and returns once every rank has either
// returned or died. errs[r] is nil for ranks that completed normally. When a
// rank dies, its wire channels are closed before its slot is recorded, so
// peers blocked on it cascade into RankFailure instead of deadlocking. Any
// panic outside the rank-failure protocol propagates (crashes) as usual.
func (w *World) RunFallible(fn func(c *Comm)) []error {
	w.EnableFaultInjection()
	errs := make([]error, w.n)
	var wg sync.WaitGroup
	for r := 0; r < w.n; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			defer func() {
				if rec := recover(); rec != nil {
					err, ok := AsRankDeath(rec)
					if !ok {
						panic(rec)
					}
					w.FailRank(rank)
					errs[rank] = err
				}
			}()
			fn(w.Comm(rank))
		}(r)
	}
	wg.Wait()
	return errs
}

// FirstFailure returns the first non-nil error of a RunFallible result and
// the rank it occurred on, or (nil, -1) if every rank completed.
func FirstFailure(errs []error) (error, int) {
	for r, err := range errs {
		if err != nil {
			return err, r
		}
	}
	return nil, -1
}
