package comm

import "sync/atomic"

// AsyncEngine executes one rank's collective operations on a dedicated
// worker goroutine, in submission order, so communication overlaps with
// compute on the rank's main goroutine — the paper's bucketed
// communication/computation overlap (§7.2: gradient buckets are reduced
// "as they become available during the backward propagation").
//
// Correctness contract, mirroring NCCL stream semantics:
//
//   - Every rank of the world must submit the same collectives in the same
//     order; the per-rank FIFO makes cross-rank pairing deterministic.
//   - A submitted op owns its buffer region until Flush returns. The caller
//     may freely mutate *disjoint* regions concurrently (that is the whole
//     point: backward writes layer k's gradients while layer k+1's bucket
//     is on the wire).
//   - The rank's Comm must not be used directly between a submission and
//     the next Flush: two goroutines of one rank interleaving collectives
//     would scramble ring pairing.
//
// Flush is the barrier the trainer runs before the optimizer step; Close
// shuts the worker down.
type AsyncEngine struct {
	c         *Comm
	ops       chan asyncOp
	done      chan struct{}
	submitted atomic.Int64
	completed atomic.Int64
}

type asyncOp struct {
	fn  func(*Comm)
	ack chan struct{}
}

// DefaultAsyncDepth is the submission-queue capacity: deep enough that a
// backward pass never blocks on submission at realistic bucket counts.
const DefaultAsyncDepth = 64

// NewAsyncEngine starts the worker goroutine for one rank's communicator.
// The engine assumes exclusive use of c until Close.
func NewAsyncEngine(c *Comm) *AsyncEngine {
	e := &AsyncEngine{
		c:    c,
		ops:  make(chan asyncOp, DefaultAsyncDepth),
		done: make(chan struct{}),
	}
	go e.loop()
	return e
}

func (e *AsyncEngine) loop() {
	defer close(e.done)
	for op := range e.ops {
		if op.fn != nil {
			op.fn(e.c)
			e.completed.Add(1)
		}
		if op.ack != nil {
			close(op.ack)
		}
	}
}

// Submit enqueues an arbitrary collective; fn runs on the worker goroutine
// with the engine's Comm. Blocks only if the queue is full.
func (e *AsyncEngine) Submit(fn func(c *Comm)) {
	e.submitted.Add(1)
	e.ops <- asyncOp{fn: fn}
}

// ReduceScatter enqueues an asynchronous reduce-scatter of x under parts.
func (e *AsyncEngine) ReduceScatter(x []float32, parts []Range) {
	e.Submit(func(c *Comm) { c.ReduceScatter(x, parts) })
}

// AllGather enqueues an asynchronous all-gather of x under parts.
func (e *AsyncEngine) AllGather(x []float32, parts []Range) {
	e.Submit(func(c *Comm) { c.AllGather(x, parts) })
}

// Flush blocks until every previously submitted op has completed on this
// rank. It is a local barrier: pair it across ranks (every rank submits the
// same schedule, every rank flushes) exactly like a stream synchronize.
func (e *AsyncEngine) Flush() {
	ack := make(chan struct{})
	e.ops <- asyncOp{ack: ack}
	<-ack
}

// Pending returns the number of submitted ops not yet completed. It is
// advisory (racy by nature) and meant for tests and instrumentation.
func (e *AsyncEngine) Pending() int64 {
	return e.submitted.Load() - e.completed.Load()
}

// Completed returns the number of ops the worker has finished executing.
func (e *AsyncEngine) Completed() int64 { return e.completed.Load() }

// Close drains the queue and stops the worker. The engine must not be used
// afterwards.
func (e *AsyncEngine) Close() {
	close(e.ops)
	<-e.done
}
