package comm

import (
	"errors"
	"math/rand"
	"testing"
)

// collectiveOp names one group-generic collective exercised by the
// partition property test.
type collectiveOp struct {
	name string
	run  func(c *Comm, x []float32)
}

var propertyOps = []collectiveOp{
	{"allreduce", func(c *Comm, x []float32) { c.AllReduce(x) }},
	{"reducescatter", func(c *Comm, x []float32) { c.ReduceScatter(x, Partition(len(x), c.Size())) }},
	{"allgather", func(c *Comm, x []float32) { c.AllGather(x, Partition(len(x), c.Size())) }},
	{"broadcast", func(c *Comm, x []float32) { c.Broadcast(x, c.Size()-1) }},
}

// Property: for ANY Split partition of ANY world, a group collective is
// bitwise equal to the flat collective run on a world of exactly the
// group's size with the members' buffers — the ring arithmetic depends
// only on (group size, group rank), never on which global ranks the group
// happens to contain. Buffer sizes include lengths smaller than the group
// size, so Partition's empty ranges are exercised.
func TestPropertySplitGroupsMatchFlatBitwise(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	for trial := 0; trial < 24; trial++ {
		n := 2 + r.Intn(8)
		colors := make([]int, n)
		for i := range colors {
			colors[i] = r.Intn(3)
		}
		size := 1 + r.Intn(40) // often < n: uneven/empty partition ranges
		op := propertyOps[trial%len(propertyOps)]
		inputs := make([][]float32, n)
		for i := range inputs {
			inputs[i] = randVec(r, size)
		}

		w := NewWorld(n)
		got := make([][]float32, n)
		w.Run(func(c *Comm) {
			g, err := c.Split(colors[c.Rank()], c.Rank())
			if err != nil {
				t.Errorf("Split: %v", err)
				return
			}
			x := append([]float32(nil), inputs[c.Rank()]...)
			op.run(g, x)
			got[c.Rank()] = x
		})

		for color := 0; color < 3; color++ {
			var members []int
			for i, col := range colors {
				if col == color {
					members = append(members, i)
				}
			}
			if len(members) == 0 {
				continue
			}
			fw := NewWorld(len(members))
			ref := make([][]float32, len(members))
			fw.Run(func(c *Comm) {
				x := append([]float32(nil), inputs[members[c.Rank()]]...)
				op.run(c, x)
				ref[c.Rank()] = x
			})
			for i, m := range members {
				for j := range ref[i] {
					if got[m][j] != ref[i][j] {
						t.Fatalf("trial %d op %s n=%d size=%d color %d member %d elem %d: group %v != flat %v",
							trial, op.name, n, size, color, m, j, got[m][j], ref[i][j])
					}
				}
			}
		}
	}
}

// Split's member order is (key, parent rank): reversed keys reverse the
// group's rank order, and ColorNone ranks get no communicator.
func TestSplitKeysAndColorNone(t *testing.T) {
	const n = 5
	w := NewWorld(n)
	w.Run(func(c *Comm) {
		color := 0
		if c.Rank() == 2 {
			color = ColorNone
		}
		g, err := c.Split(color, -c.Rank()) // reversed order
		if err != nil {
			t.Error(err)
			return
		}
		if c.Rank() == 2 {
			if g != nil {
				t.Error("ColorNone rank must get a nil communicator")
			}
			return
		}
		if g.Size() != n-1 {
			t.Errorf("rank %d: group size %d, want %d", c.Rank(), g.Size(), n-1)
		}
		// Reversed keys: global rank 4 is group rank 0, global 0 is last.
		wantPos := map[int]int{4: 0, 3: 1, 1: 2, 0: 3}[c.Rank()]
		if g.Rank() != wantPos {
			t.Errorf("rank %d: group rank %d, want %d", c.Rank(), g.Rank(), wantPos)
		}
		if g.GlobalRank() != c.Rank() {
			t.Errorf("rank %d: GlobalRank %d", c.Rank(), g.GlobalRank())
		}
		// A quick collective sanity check in the permuted order.
		x := []float32{float32(c.Rank())}
		g.AllReduce(x)
		if x[0] != 0+1+3+4 {
			t.Errorf("rank %d: permuted group sum %v", c.Rank(), x[0])
		}
	})
}

// An invalid color anywhere fails the Split on every member — nobody is
// left blocked waiting for a group that will never assemble.
func TestSplitInvalidColorFailsEverywhere(t *testing.T) {
	const n = 4
	w := NewWorld(n)
	w.Run(func(c *Comm) {
		color := c.Rank()
		if c.Rank() == 3 {
			color = -7
		}
		if _, err := c.Split(color, 0); !errors.Is(err, ErrColor) {
			t.Errorf("rank %d: err = %v, want ErrColor", c.Rank(), err)
		}
	})
}

// Colors and keys travel as int32 on the wire; values that do not fit must
// fail loudly on every member (never silently truncate and merge groups).
func TestSplitRejectsInt32Overflow(t *testing.T) {
	if int64(int(^uint(0)>>1)) <= int64(1)<<31 {
		t.Skip("32-bit int platform: overflow is unrepresentable")
	}
	const n = 2
	w := NewWorld(n)
	w.Run(func(c *Comm) {
		color := 0
		if c.Rank() == 1 {
			color = 1 << 32 // would truncate to 0 and merge with rank 0's group
		}
		if _, err := c.Split(color, 0); !errors.Is(err, ErrColor) {
			t.Errorf("rank %d: err = %v, want ErrColor for overflowing color", c.Rank(), err)
		}
	})
	w2 := NewWorld(n)
	w2.Run(func(c *Comm) {
		if _, err := c.Split(0, 1<<40); !errors.Is(err, ErrColor) {
			t.Errorf("rank %d: err = %v, want ErrColor for overflowing key", c.Rank(), err)
		}
	})
}

// Subgroup membership validation returns structured ErrGroup errors.
func TestSubgroupValidation(t *testing.T) {
	w := NewWorld(4)
	w.Run(func(c *Comm) {
		if c.Rank() != 0 {
			return
		}
		for _, tc := range []struct {
			name    string
			members []int
		}{
			{"not a member", []int{1, 2}},
			{"duplicate", []int{0, 0}},
			{"out of range", []int{0, 9}},
			{"negative", []int{0, -1}},
			{"empty", nil},
		} {
			if _, err := c.Subgroup(tc.members); !errors.Is(err, ErrGroup) {
				t.Errorf("%s: err = %v, want ErrGroup", tc.name, err)
			}
		}
		if _, err := c.MPGroup(3); !errors.Is(err, ErrTopology) {
			t.Error("indivisible mpSize must return ErrTopology")
		}
		// Roots are group-local ranks; out-of-range roots fail loudly
		// instead of silently re-rooting at member 0.
		for _, root := range []int{-1, 4} {
			func() {
				defer func() {
					if recover() == nil {
						t.Errorf("Broadcast root %d: expected panic", root)
					}
				}()
				c.Broadcast(make([]float32, 2), root)
			}()
		}
	})
}

// Nested splits: splitting a subgroup works in the subgroup's coordinates
// — a 2×2 grid derived in two steps matches the direct MP/DP groups.
func TestSplitNested(t *testing.T) {
	const n = 8
	w := NewWorld(n)
	w.Run(func(c *Comm) {
		half, err := c.Split(c.Rank()/4, c.Rank()) // two halves of 4
		if err != nil {
			t.Error(err)
			return
		}
		pair, err := half.Split(half.Rank()/2, half.Rank()) // pairs within the half
		if err != nil {
			t.Error(err)
			return
		}
		if pair.Size() != 2 {
			t.Errorf("rank %d: nested group size %d", c.Rank(), pair.Size())
		}
		x := []float32{float32(c.Rank())}
		pair.AllReduce(x)
		partner := c.Rank() ^ 1
		if x[0] != float32(c.Rank()+partner) {
			t.Errorf("rank %d: pair sum %v, want %d", c.Rank(), x[0], c.Rank()+partner)
		}
	})
}

// Group collectives must stay race-clean and correct with three named
// streams active on every rank at the same time (run under -race): the
// hierarchical composition on the grad stream, a flat gather on the
// prefetch stream, a subgroup all-reduce on the checkpoint stream, and a
// default-domain subgroup collective from the main goroutine — four
// ordering domains concurrently in flight.
func TestGroupCollectivesWithThreeStreamsActive(t *testing.T) {
	const n, nodeSize, elems = 8, 4, 512
	grad := make([][]float32, n)
	gather := make([][]float32, n)
	ckpt := make([][]float32, n)
	main := make([][]float32, n)
	for i := 0; i < n; i++ {
		grad[i] = make([]float32, elems)
		gather[i] = make([]float32, elems)
		ckpt[i] = make([]float32, elems)
		main[i] = make([]float32, elems)
		for j := 0; j < elems; j++ {
			grad[i][j] = float32(i + 1)
			gather[i][j] = float32(100 + i)
			ckpt[i][j] = float32(i + 1)
			main[i][j] = float32(i + 1)
		}
	}
	parts := Partition(elems, n)
	w := NewWorld(n)
	w.Run(func(c *Comm) {
		s := NewScheduler(c)
		defer s.Close()
		h1 := s.Stream("grad").AllReduceHierarchical(F16Buf(grad[c.Rank()]), nodeSize)
		h2 := s.Stream("prefetch").AllGather(F32Buf(gather[c.Rank()]), parts)
		// Checkpoint stream: a node-subgroup all-reduce submitted as a raw
		// op (subgroups are derived from the stream's comm inside the op).
		h3 := s.Stream("checkpoint").Submit(func(sc *Comm) {
			topo, err := sc.NodeTopology(nodeSize)
			if err != nil {
				panic(err)
			}
			topo.Intra.AllReduce(ckpt[sc.GlobalRank()])
		})
		// Default domain, main goroutine: inter-node subgroup all-reduce
		// while all three streams are in flight.
		topo, err := c.NodeTopology(nodeSize)
		if err != nil {
			t.Error(err)
			return
		}
		topo.Inter.AllReduce(main[c.Rank()])
		h1.Wait()
		h2.Wait()
		h3.Wait()
	})
	wantAll := float32(n * (n + 1) / 2) // 36
	for r := 0; r < n; r++ {
		if grad[r][0] != wantAll || grad[r][elems-1] != wantAll {
			t.Errorf("rank %d: hierarchical grad sum %v, want %v", r, grad[r][0], wantAll)
		}
		// Gather: element j holds the owner's value 100+owner.
		for j, p := range parts {
			if gather[r][p.Lo] != float32(100+j) {
				t.Errorf("rank %d: gather elem %d = %v, want %v", r, p.Lo, gather[r][p.Lo], 100+j)
			}
		}
		node := r / nodeSize
		wantIntra := float32(0)
		for i := 0; i < nodeSize; i++ {
			wantIntra += float32(node*nodeSize + i + 1)
		}
		if ckpt[r][0] != wantIntra {
			t.Errorf("rank %d: intra-node checkpoint sum %v, want %v", r, ckpt[r][0], wantIntra)
		}
		slot := r % nodeSize
		wantInter := float32(0)
		for m := 0; m < n/nodeSize; m++ {
			wantInter += float32(m*nodeSize + slot + 1)
		}
		if main[r][0] != wantInter {
			t.Errorf("rank %d: inter-node sum %v, want %v", r, main[r][0], wantInter)
		}
	}
}

// Uneven edge cases for the hierarchical partition forms: buffers shorter
// than the group size (empty owned ranges) and ragged partitions must
// reduce and gather exactly like the flat ring.
func TestHierarchicalUnevenPartitions(t *testing.T) {
	for _, size := range []int{1, 3, 7, 11} {
		const n, nodeSize = 8, 2
		r := rand.New(rand.NewSource(int64(size)))
		inputs := make([][]float32, n)
		for i := range inputs {
			inputs[i] = randVec(r, size)
		}
		want := expectedSum(inputs)
		parts := Partition(size, n)
		w := NewWorld(n)
		w.Run(func(c *Comm) {
			x := append([]float32(nil), inputs[c.Rank()]...)
			if err := c.ReduceScatterHierarchical(F32Buf(x), parts, nodeSize); err != nil {
				t.Error(err)
				return
			}
			if err := c.AllGatherHierarchical(F32Buf(x), parts, nodeSize); err != nil {
				t.Error(err)
				return
			}
			if !approxEqual(x, want, 1e-3) {
				t.Errorf("size %d rank %d: uneven hierarchical sum mismatch", size, c.Rank())
			}
		})
	}
}
