package comm

// Hierarchical (two-level) all-reduce, the NCCL-style algorithm clusters of
// multi-GPU nodes use: an intra-node reduce-scatter concentrates each local
// rank's share of the node's sum, only that 1/nodeSize share crosses the
// node uplink for an inter-node all-reduce, and an intra-node all-gather
// redistributes the result. Per-rank inter-node traffic drops from
// 2Ψ(N-1)/N to 2(Ψ/nodeSize)(M-1)/M for M nodes — the reason DP
// communication survives the node boundary while flat MP all-reduces do
// not (the effective-bandwidth model in internal/perfmodel.DPBandwidth).
//
// Traffic is accounted separately under "hier-intra" and "hier-inter" in
// Stats.PerCollective, so the intra/inter split is measurable. Like every
// collective, it runs on whatever ordering domain its Comm is bound to —
// synchronously on the default domain, or asynchronously via
// Stream.AllReduceHierarchical with byte-accurate dtype accounting.

// AllReduceHierarchical sums x elementwise across all ranks, in place,
// using the two-level algorithm with the given node width. The world size
// must be a multiple of nodeSize.
func (c *Comm) AllReduceHierarchical(x []float32, nodeSize int) {
	n := c.w.n
	if nodeSize <= 0 || n%nodeSize != 0 {
		panic("comm: world size must be a multiple of nodeSize")
	}
	if n == 1 {
		return
	}
	if nodeSize == 1 || nodeSize == n {
		c.AllReduce(x)
		return
	}
	node := c.rank / nodeSize
	local := c.rank % nodeSize
	nodes := n / nodeSize

	intra := make([]int, nodeSize)
	for i := range intra {
		intra[i] = node*nodeSize + i
	}
	inter := make([]int, nodes)
	for i := range inter {
		inter[i] = i*nodeSize + local
	}

	// 1. Intra-node reduce-scatter: local rank i ends up owning chunk i of
	//    this node's partial sum.
	parts := Partition(len(x), nodeSize)
	c.groupReduceScatter("hier-intra", x, parts, intra, local)

	// 2. Inter-node all-reduce of the owned chunk across same-local peers.
	own := parts[local]
	chunk := x[own.Lo:own.Hi]
	subParts := Partition(len(chunk), nodes)
	c.groupReduceScatter("hier-inter", chunk, subParts, inter, node)
	c.groupAllGather("hier-inter", chunk, subParts, inter, node, node)

	// 3. Intra-node all-gather of the globally reduced chunks.
	c.groupAllGather("hier-intra", x, parts, intra, local, local)
}

// groupReduceScatter runs the ring reduce-scatter over an arbitrary rank
// subset. group lists the member ranks in ring order; pos is this rank's
// index in group; parts has one range per member. On return, member i owns
// the fully reduced parts[i].
func (c *Comm) groupReduceScatter(op string, x []float32, parts []Range, group []int, pos int) {
	g := len(group)
	if g == 1 {
		return
	}
	right := group[(pos+1)%g]
	left := group[(pos-1+g)%g]
	for s := 0; s < g-1; s++ {
		sendIdx := ((pos-s-1)%g + g) % g
		recvIdx := ((pos-s-2)%g + g) % g
		sp := parts[sendIdx]
		c.send(op, right, x[sp.Lo:sp.Hi])
		data := c.recv(op, left)
		rp := parts[recvIdx]
		dst := x[rp.Lo:rp.Hi]
		if len(data) != len(dst) {
			panic("comm: group ring chunk length mismatch")
		}
		for i, v := range data {
			dst[i] += v
		}
	}
}

// groupAllGather runs the ring all-gather over an arbitrary rank subset;
// ownIdx names the chunk this member contributes.
func (c *Comm) groupAllGather(op string, x []float32, parts []Range, group []int, pos, ownIdx int) {
	g := len(group)
	if g == 1 {
		return
	}
	right := group[(pos+1)%g]
	left := group[(pos-1+g)%g]
	for s := 0; s < g-1; s++ {
		sendIdx := ((ownIdx-s)%g + g) % g
		recvIdx := ((ownIdx-s-1)%g + g) % g
		sp := parts[sendIdx]
		c.send(op, right, x[sp.Lo:sp.Hi])
		data := c.recv(op, left)
		rp := parts[recvIdx]
		dst := x[rp.Lo:rp.Hi]
		if len(data) != len(dst) {
			panic("comm: group ring chunk length mismatch")
		}
		copy(dst, data)
	}
}
