package comm

import "fmt"

// Hierarchical (two-level) collectives, the NCCL-style algorithms clusters
// of multi-GPU nodes use: only 1/nodeSize of the buffer ever crosses the
// node uplink, which is why DP communication survives the node boundary
// while flat MP all-reduces do not (the effective-bandwidth model in
// internal/perfmodel.DPBandwidth). They are compositions of the ordinary
// group collectives over the two sub-communicators of a node Topology —
// there is no bespoke ring code here.
//
// For Ψ elements on M nodes of S ranks, per-rank traffic of one pass:
//
//	intra-node: Ψ·(S-1)/S        (recorded under the "hier-intra" group)
//	inter-node: (Ψ/S)·(M-1)/M    (recorded under the "hier-inter" group)
//
// and a hierarchical all-reduce is two passes, so its inter-node volume is
// 2(Ψ/S)(M-1)/M versus the flat ring's 2Ψ(N-1)/N — the cut the paper's
// trillion-parameter analysis (§2.3, §7) rests on. The split is measured:
// Stats.PerGroup["hier-intra"/"hier-inter"] counts elements and native
// dtype-accurate bytes per group.
//
// The reduce-scatter/all-gather forms take the same []Range ownership
// partition as the flat collectives (member i ends up owning parts[i], in
// group-local order), so a ZeRO trainer can swap them in bucket-for-bucket:
// the intra-node phase runs one reduce-scatter per node block with that
// block's slice of the partition, and the inter-node phase finishes (or
// seeds) the owned slices across same-slot ranks. Because each element's
// accumulation order depends only on its owner's (node, slot) coordinates,
// the result is independent of bucket framing — every schedule on the same
// topology is bitwise identical. Across *different* topologies the
// reduction tree differs, so sums agree only up to float reassociation.
//
// Like every collective, these run on whatever ordering domain their Comm
// is bound to — synchronously on the default domain, or asynchronously via
// the Stream.*Hierarchical methods with byte-accurate dtype accounting.

// Topology is a communicator's node layout: consecutive blocks of NodeSize
// members form one node. Intra connects the members of this rank's node;
// Inter connects the same-slot members across nodes.
type Topology struct {
	NodeSize int
	Nodes    int
	// Intra is this rank's intra-node group (consecutive members), with
	// traffic attributed to "hier-intra".
	Intra *Comm
	// Inter is this rank's inter-node group (same node-local slot across
	// nodes, stride NodeSize), with traffic attributed to "hier-inter".
	Inter *Comm

	// interScratch backs interParts so steady-state hierarchical ops don't
	// allocate a partition per bucket. Safe because a Topology, like the
	// Comm it came from, is used by one goroutine at a time and the slice
	// is consumed synchronously by the inter-phase collective.
	interScratch []Range
}

// topoKey identifies one cached topology: the node width plus the dtype and
// label of the view that built it (sub-communicators inherit both, and the
// byte accounting must match the buffers that flow through them).
type topoKey struct {
	nodeSize int
	dtype    DType
	label    string
}

// topoCache memoizes NodeTopology per communicator chain. Building a
// topology means deriving two sub-communicators (member lists, label maps)
// — cheap once, but not per collective: a bucketed hierarchical schedule
// issues hundreds of ops per step. The cache pointer is shared by
// same-group views (Named/WithDType) and dropped by Subgroup/Split, whose
// member sets differ; Comm handles are single-goroutine, so no lock.
type topoCache struct {
	m map[topoKey]*Topology
}

// NodeTopology carves the communicator into nodes of nodeSize consecutive
// members and returns this rank's intra-node and inter-node groups. It is
// communication-free; every member must construct the same topology before
// collectives on it pair up. The group size must be a multiple of nodeSize
// (ErrTopology otherwise).
func (c *Comm) NodeTopology(nodeSize int) (*Topology, error) {
	if err := CheckNodeSize(c.Size(), nodeSize); err != nil {
		return nil, err
	}
	key := topoKey{nodeSize: nodeSize, dtype: c.dtype, label: c.label}
	if c.topos != nil {
		if t := c.topos.m[key]; t != nil {
			return t, nil
		}
	}
	node, slot := c.pos/nodeSize, c.pos%nodeSize
	nodes := c.Size() / nodeSize
	intraMembers := make([]int, nodeSize)
	for i := range intraMembers {
		intraMembers[i] = node*nodeSize + i
	}
	interMembers := make([]int, nodes)
	for i := range interMembers {
		interMembers[i] = i*nodeSize + slot
	}
	intra, err := c.Subgroup(intraMembers)
	if err != nil {
		return nil, err
	}
	inter, err := c.Subgroup(interMembers)
	if err != nil {
		return nil, err
	}
	topo := &Topology{
		NodeSize: nodeSize,
		Nodes:    nodes,
		Intra:    intra.Named("hier-intra"),
		Inter:    inter.Named("hier-inter"),
	}
	if c.topos != nil {
		if c.topos.m == nil {
			c.topos.m = make(map[topoKey]*Topology)
		}
		c.topos.m[key] = topo
	}
	return topo, nil
}

// interParts extracts the ownership ranges of this rank's inter-node group:
// the slices owned by the same node-local slot in every node. The returned
// slice aliases the topology's scratch and is valid until the next call.
func (t *Topology) interParts(parts []Range) []Range {
	slot := t.Intra.Rank()
	if cap(t.interScratch) < t.Nodes {
		t.interScratch = make([]Range, t.Nodes)
	}
	out := t.interScratch[:t.Nodes]
	for m := range out {
		out[m] = parts[m*t.NodeSize+slot]
	}
	return out
}

// checkHierParts validates the partition/topology pair shared by the
// hierarchical reduce-scatter and all-gather.
func (c *Comm) checkHierParts(parts []Range, nodeSize int) error {
	if len(parts) != c.Size() {
		return fmt.Errorf("%w: partition count %d != group size %d", ErrGroup, len(parts), c.Size())
	}
	return CheckNodeSize(c.Size(), nodeSize)
}

// ReduceScatterHierarchical reduces b across the group in two levels so
// member i ends up owning the fully reduced parts[i], like ReduceScatter:
// each node block runs an intra-node reduce-scatter of its slice of the
// partition, then the inter-node groups finish the owned slices across
// nodes. Only (|b|/nodeSize)·(M-1)/M elements per rank cross nodes.
// Degenerate layouts (one node, or one rank per node) fall back to the
// flat ring.
func (c *Comm) ReduceScatterHierarchical(b Buffer, parts []Range, nodeSize int) error {
	if err := c.checkHierParts(parts, nodeSize); err != nil {
		return err
	}
	v := c.WithDType(b.DType)
	n := c.Size()
	if n == 1 || nodeSize == 1 || nodeSize == n {
		v.ReduceScatter(b.Data, parts)
		return nil
	}
	topo, err := v.NodeTopology(nodeSize)
	if err != nil {
		return err
	}
	// Intra-node: concentrate each node's partial sums on the member that
	// will own them, one node block of the partition at a time.
	for m := 0; m < topo.Nodes; m++ {
		topo.Intra.ReduceScatter(b.Data, parts[m*nodeSize:(m+1)*nodeSize])
	}
	// Inter-node: finish the reduction of the owned slices across the
	// same-slot ranks of every node.
	topo.Inter.ReduceScatter(b.Data, topo.interParts(parts))
	return nil
}

// AllGatherHierarchical is the mirror of ReduceScatterHierarchical: member
// i contributes parts[i] (already in place) and every member ends up with
// every range, with only (|b|/nodeSize)·(M-1)/M elements per rank crossing
// nodes. Inter-node groups exchange the owned slices first; each node then
// redistributes internally, block by block.
func (c *Comm) AllGatherHierarchical(b Buffer, parts []Range, nodeSize int) error {
	if err := c.checkHierParts(parts, nodeSize); err != nil {
		return err
	}
	v := c.WithDType(b.DType)
	n := c.Size()
	if n == 1 || nodeSize == 1 || nodeSize == n {
		v.AllGather(b.Data, parts)
		return nil
	}
	topo, err := v.NodeTopology(nodeSize)
	if err != nil {
		return err
	}
	topo.Inter.AllGather(b.Data, topo.interParts(parts))
	for m := 0; m < topo.Nodes; m++ {
		topo.Intra.AllGather(b.Data, parts[m*nodeSize:(m+1)*nodeSize])
	}
	return nil
}

// AllReduceHierarchical sums b elementwise across the group, in place,
// using the two-level algorithm with the given node width: a hierarchical
// reduce-scatter over the canonical partition followed by the matching
// hierarchical all-gather. The group size must be a multiple of nodeSize.
func (c *Comm) AllReduceHierarchical(b Buffer, nodeSize int) error {
	parts := Partition(len(b.Data), c.Size())
	if err := c.ReduceScatterHierarchical(b, parts, nodeSize); err != nil {
		return err
	}
	return c.AllGatherHierarchical(b, parts, nodeSize)
}
