package comm

import (
	"errors"
	"math/rand"
	"testing"
)

// Hierarchical all-reduce must compute the same sums as the flat ring for
// every (world, nodeSize) split, including sizes that do not divide the
// buffer evenly.
func TestHierarchicalAllReduceCorrectness(t *testing.T) {
	cases := []struct{ n, nodeSize int }{
		{4, 2}, {8, 2}, {8, 4}, {12, 4}, {16, 4}, {6, 3}, {4, 4}, {4, 1},
	}
	for _, tc := range cases {
		for _, size := range []int{1, 7, 64, 1013} {
			r := rand.New(rand.NewSource(int64(tc.n*10000 + tc.nodeSize*100 + size)))
			inputs := make([][]float32, tc.n)
			for i := range inputs {
				inputs[i] = randVec(r, size)
			}
			want := expectedSum(inputs)
			w := NewWorld(tc.n)
			results := make([][]float32, tc.n)
			w.Run(func(c *Comm) {
				x := append([]float32(nil), inputs[c.Rank()]...)
				if err := c.AllReduceHierarchical(F32Buf(x), tc.nodeSize); err != nil {
					t.Errorf("n=%d node=%d: %v", tc.n, tc.nodeSize, err)
				}
				results[c.Rank()] = x
			})
			for rk, got := range results {
				if !approxEqual(got, want, 1e-3) {
					t.Fatalf("n=%d node=%d size=%d rank %d: hierarchical sum mismatch",
						tc.n, tc.nodeSize, size, rk)
				}
			}
		}
	}
}

// The reduce-scatter/all-gather forms must honor an arbitrary ownership
// partition exactly like the flat collectives: after RS member i owns
// parts[i] fully reduced, and after AG everyone holds everything —
// bitwise equal to the flat all-gather (gathers copy, they never reassociate).
func TestHierarchicalReduceScatterAllGatherOwnership(t *testing.T) {
	const n, nodeSize, size = 8, 4, 103 // uneven: Partition leaves ragged ranges
	r := rand.New(rand.NewSource(9))
	inputs := make([][]float32, n)
	for i := range inputs {
		inputs[i] = randVec(r, size)
	}
	want := expectedSum(inputs)
	parts := Partition(size, n)
	w := NewWorld(n)
	w.Run(func(c *Comm) {
		x := append([]float32(nil), inputs[c.Rank()]...)
		if err := c.ReduceScatterHierarchical(F32Buf(x), parts, nodeSize); err != nil {
			t.Error(err)
			return
		}
		own := parts[c.Rank()]
		for i := own.Lo; i < own.Hi; i++ {
			if !approxEqual(x[i:i+1], want[i:i+1], 1e-3) {
				t.Errorf("rank %d: owned elem %d = %v, want %v", c.Rank(), i, x[i], want[i])
				return
			}
		}
		// Re-gather: x outside the owned range holds garbage; AG must
		// overwrite everything with the owners' values.
		if err := c.AllGatherHierarchical(F32Buf(x), parts, nodeSize); err != nil {
			t.Error(err)
			return
		}
		if !approxEqual(x, want, 1e-3) {
			t.Errorf("rank %d: gathered buffer mismatch", c.Rank())
		}
	})
}

// The point of the hierarchy: per-rank *inter-node* traffic shrinks by the
// node width. For Ψ elements, N ranks, M nodes of size S: flat ring sends
// 2Ψ(N-1)/N inter-or-intra; hierarchical sends only ≈2(Ψ/S)(M-1)/M across
// nodes. Bytes are native to the buffer dtype (F16 ⇒ 2 B/elem).
func TestHierarchicalInterNodeVolume(t *testing.T) {
	const psi = 1 << 12
	const n, nodeSize = 8, 4
	const nodes = n / nodeSize
	w := NewWorld(n)
	w.Run(func(c *Comm) {
		x := make([]float32, psi)
		if err := c.AllReduceHierarchical(F16Buf(x), nodeSize); err != nil {
			t.Error(err)
		}
	})
	wantInter := int64(2 * (psi / nodeSize) * (nodes - 1) / nodes)
	wantIntra := int64(2 * psi * (nodeSize - 1) / nodeSize)
	flatTotal := int64(2 * psi * (n - 1) / n)
	for r := 0; r < n; r++ {
		st := w.Stats(r)
		inter := st.PerGroup["hier-inter"]
		intra := st.PerGroup["hier-intra"]
		if inter.Elems != wantInter {
			t.Errorf("rank %d inter-node elems %d, want %d", r, inter.Elems, wantInter)
		}
		if intra.Elems != wantIntra {
			t.Errorf("rank %d intra-node elems %d, want %d", r, intra.Elems, wantIntra)
		}
		// The split is exhaustive: intra + inter = the flat ring's volume.
		if intra.Elems+inter.Elems != flatTotal {
			t.Errorf("rank %d: intra %d + inter %d != flat total %d", r, intra.Elems, inter.Elems, flatTotal)
		}
		if inter.Elems*4 > flatTotal {
			t.Errorf("rank %d: hierarchy should cut inter-node traffic ≥4x vs flat ring (%d vs %d)",
				r, inter.Elems, flatTotal)
		}
		// Native byte accounting on the group keys: fp16 wire = 2 B/elem.
		if inter.Bytes != 2*inter.Elems || intra.Bytes != 2*intra.Elems {
			t.Errorf("rank %d: group bytes not fp16-native (intra %+v, inter %+v)", r, intra, inter)
		}
	}
}

// Topology construction returns structured errors instead of panicking.
func TestHierarchicalValidation(t *testing.T) {
	w := NewWorld(4)
	w.Run(func(c *Comm) {
		if c.Rank() != 0 {
			return
		}
		for _, bad := range []int{3, 0, -2, 5} {
			if err := c.AllReduceHierarchical(F32Buf(make([]float32, 8)), bad); !errors.Is(err, ErrTopology) {
				t.Errorf("nodeSize %d: err = %v, want ErrTopology", bad, err)
			}
			if _, err := c.NodeTopology(bad); !errors.Is(err, ErrTopology) {
				t.Errorf("NodeTopology(%d): err = %v, want ErrTopology", bad, err)
			}
		}
		parts := Partition(8, 2) // wrong count for a 4-rank world
		if err := c.ReduceScatterHierarchical(F32Buf(make([]float32, 8)), parts, 2); !errors.Is(err, ErrGroup) {
			t.Error("short partition must return ErrGroup")
		}
	})
}

func TestHierarchicalSingleRank(t *testing.T) {
	w := NewWorld(1)
	w.Run(func(c *Comm) {
		x := []float32{5}
		if err := c.AllReduceHierarchical(F32Buf(x), 1); err != nil {
			t.Error(err)
		}
		if x[0] != 5 {
			t.Errorf("single-rank hierarchical changed data: %v", x[0])
		}
	})
}
