package comm

import (
	"math/rand"
	"testing"
)

// Hierarchical all-reduce must compute the same sums as the flat ring for
// every (world, nodeSize) split, including sizes that do not divide the
// buffer evenly.
func TestHierarchicalAllReduceCorrectness(t *testing.T) {
	cases := []struct{ n, nodeSize int }{
		{4, 2}, {8, 2}, {8, 4}, {12, 4}, {16, 4}, {6, 3}, {4, 4}, {4, 1},
	}
	for _, tc := range cases {
		for _, size := range []int{1, 7, 64, 1013} {
			r := rand.New(rand.NewSource(int64(tc.n*10000 + tc.nodeSize*100 + size)))
			inputs := make([][]float32, tc.n)
			for i := range inputs {
				inputs[i] = randVec(r, size)
			}
			want := expectedSum(inputs)
			w := NewWorld(tc.n)
			results := make([][]float32, tc.n)
			w.Run(func(c *Comm) {
				x := append([]float32(nil), inputs[c.Rank()]...)
				c.AllReduceHierarchical(x, tc.nodeSize)
				results[c.Rank()] = x
			})
			for rk, got := range results {
				if !approxEqual(got, want, 1e-3) {
					t.Fatalf("n=%d node=%d size=%d rank %d: hierarchical sum mismatch",
						tc.n, tc.nodeSize, size, rk)
				}
			}
		}
	}
}

// The point of the hierarchy: per-rank *inter-node* traffic shrinks by the
// node width. For Ψ elements, N ranks, M nodes of size S: flat ring sends
// 2Ψ(N-1)/N inter-or-intra; hierarchical sends only ≈2(Ψ/S)(M-1)/M across
// nodes.
func TestHierarchicalInterNodeVolume(t *testing.T) {
	const psi = 1 << 12
	const n, nodeSize = 8, 4
	const nodes = n / nodeSize
	w := NewWorld(n)
	w.Run(func(c *Comm) {
		x := make([]float32, psi)
		c.AllReduceHierarchical(x, nodeSize)
	})
	wantInter := int64(2 * (psi / nodeSize) * (nodes - 1) / nodes)
	flatTotal := int64(2 * psi * (n - 1) / n)
	for r := 0; r < n; r++ {
		st := w.Stats(r)
		inter := st.PerCollective["hier-inter"]
		if inter != wantInter {
			t.Errorf("rank %d inter-node elems %d, want %d", r, inter, wantInter)
		}
		if inter*4 > flatTotal {
			t.Errorf("rank %d: hierarchy should cut inter-node traffic ≥4x vs flat ring (%d vs %d)",
				r, inter, flatTotal)
		}
		if st.PerCollective["hier-intra"] == 0 {
			t.Errorf("rank %d: no intra-node traffic recorded", r)
		}
	}
}

func TestHierarchicalValidation(t *testing.T) {
	w := NewWorld(4)
	w.Run(func(c *Comm) {
		if c.Rank() != 0 {
			return
		}
		defer func() {
			if recover() == nil {
				t.Error("expected panic for indivisible nodeSize")
			}
		}()
		c.AllReduceHierarchical(make([]float32, 8), 3)
	})
}

func TestHierarchicalSingleRank(t *testing.T) {
	w := NewWorld(1)
	w.Run(func(c *Comm) {
		x := []float32{5}
		c.AllReduceHierarchical(x, 1)
		if x[0] != 5 {
			t.Errorf("single-rank hierarchical changed data: %v", x[0])
		}
	})
}
