package comm

import (
	"math/rand"
	"sync/atomic"
	"testing"
)

// The async engine must produce bitwise the same reductions as direct
// synchronous collectives: it only moves *when* the ring runs, never what
// it computes.
func TestAsyncEngineMatchesSyncCollectives(t *testing.T) {
	const n, elems = 4, 1000
	mk := func() [][]float32 {
		bufs := make([][]float32, n)
		r := rand.New(rand.NewSource(42))
		for i := range bufs {
			bufs[i] = make([]float32, elems)
			for j := range bufs[i] {
				bufs[i][j] = float32(r.NormFloat64())
			}
		}
		return bufs
	}

	sync := mk()
	ws := NewWorld(n)
	ws.Run(func(c *Comm) {
		parts := Partition(elems, n)
		c.ReduceScatter(sync[c.Rank()], parts)
		c.AllGather(sync[c.Rank()], parts)
	})

	async := mk()
	wa := NewWorld(n)
	wa.Run(func(c *Comm) {
		e := NewAsyncEngine(c)
		defer e.Close()
		parts := Partition(elems, n)
		e.ReduceScatter(async[c.Rank()], parts)
		e.AllGather(async[c.Rank()], parts)
		e.Flush()
	})

	for r := 0; r < n; r++ {
		for j := range sync[r] {
			if sync[r][j] != async[r][j] {
				t.Fatalf("rank %d elem %d: async %v != sync %v", r, j, async[r][j], sync[r][j])
			}
		}
	}
}

// Flush is a completion barrier: every op submitted before it must have
// executed when it returns, in submission order.
func TestAsyncEngineFlushOrdering(t *testing.T) {
	const n, ops = 2, 50
	w := NewWorld(n)
	w.Run(func(c *Comm) {
		e := NewAsyncEngine(c)
		defer e.Close()
		var order []int
		for i := 0; i < ops; i++ {
			i := i
			e.Submit(func(c *Comm) {
				c.Barrier() // real cross-rank op so the worker does wire work
				order = append(order, i)
			})
		}
		e.Flush()
		if len(order) != ops {
			t.Errorf("rank %d: %d ops ran before Flush returned, want %d", c.Rank(), len(order), ops)
		}
		for i, v := range order {
			if v != i {
				t.Errorf("rank %d: op %d ran at position %d (order must be FIFO)", c.Rank(), v, i)
				break
			}
		}
		if p := e.Pending(); p != 0 {
			t.Errorf("rank %d: %d ops pending after Flush", c.Rank(), p)
		}
		if got := e.Completed(); got != ops {
			t.Errorf("rank %d: Completed() = %d, want %d", c.Rank(), got, ops)
		}
	})
}

// The whole point of the engine: the main goroutine may mutate buffer
// regions disjoint from in-flight buckets. Run under -race to prove the
// overlap is data-race free.
func TestAsyncEngineOverlapsDisjointCompute(t *testing.T) {
	const n, elems, half = 2, 4096, 2048
	bufs := make([][]float32, n)
	for i := range bufs {
		bufs[i] = make([]float32, elems)
		for j := range bufs[i] {
			bufs[i][j] = 1
		}
	}
	w := NewWorld(n)
	w.Run(func(c *Comm) {
		e := NewAsyncEngine(c)
		defer e.Close()
		x := bufs[c.Rank()]
		// Reduce the first half while "computing" into the second half.
		e.ReduceScatter(x[:half], Partition(half, n))
		e.AllGather(x[:half], Partition(half, n))
		for j := half; j < elems; j++ {
			x[j] *= 2
		}
		e.Flush()
		// Now reduce the second half too.
		e.ReduceScatter(x[half:], Partition(half, n))
		e.AllGather(x[half:], Partition(half, n))
		e.Flush()
	})
	for r := 0; r < n; r++ {
		if bufs[r][0] != n {
			t.Errorf("rank %d: first half = %v, want %v", r, bufs[r][0], float32(n))
		}
		if bufs[r][elems-1] != 2*n {
			t.Errorf("rank %d: second half = %v, want %v", r, bufs[r][elems-1], float32(2*n))
		}
	}
}

// An engine must survive many submit/flush cycles (one per training step)
// and a double Close must not be required for cleanup.
func TestAsyncEngineReuseAcrossSteps(t *testing.T) {
	const n, steps = 3, 20
	var total atomic.Int64
	w := NewWorld(n)
	w.Run(func(c *Comm) {
		e := NewAsyncEngine(c)
		defer e.Close()
		x := make([]float32, 99)
		for s := 0; s < steps; s++ {
			for i := range x {
				x[i] = 1
			}
			e.ReduceScatter(x, Partition(len(x), n))
			e.Flush()
			total.Add(1)
		}
	})
	if got := total.Load(); got != n*steps {
		t.Errorf("completed %d step flushes, want %d", got, n*steps)
	}
}
