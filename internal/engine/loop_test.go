package engine

import (
	"context"
	"errors"
	"sync"
	"testing"

	"repro/internal/model"
)

// The observer contract: the hook fires exactly once per optimizer step,
// at the boundary, with the step counter already advanced and the loss
// materialized — the tap the serve scheduler hangs its metric ring on.
func TestEngineObserverFiresPerBoundary(t *testing.T) {
	cfg := testEngineConfig()
	cfg.GradClip = 1.0 // so GradNorm materializes in the observer
	norm, err := cfg.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	const steps = 4
	var mu sync.Mutex
	infos := make(map[int][]StepInfo) // rank → observations
	if _, err := Run(norm, func(e *Engine) {
		rank := e.Rank()
		e.Observe(func(info StepInfo) {
			mu.Lock()
			infos[rank] = append(infos[rank], info)
			mu.Unlock()
		})
		b := model.NewSyntheticStream(norm.Seed, norm.GlobalBatch, norm.MicroBatch, norm.Model.Seq, norm.Model.Vocab)
		if n, err := e.TrainLoop(context.Background(), b, steps); n != steps || err != nil {
			t.Errorf("rank %d: TrainLoop = (%d, %v), want (%d, nil)", rank, n, err, steps)
		}
	}); err != nil {
		t.Fatal(err)
	}
	for rank, got := range infos {
		if len(got) != steps {
			t.Fatalf("rank %d: observer fired %d times, want %d", rank, len(got), steps)
		}
		for i, info := range got {
			if info.Step != i+1 {
				t.Errorf("rank %d obs %d: Step = %d, want %d", rank, i, info.Step, i+1)
			}
			if info.Loss == 0 {
				t.Errorf("rank %d step %d: loss not materialized: %+v", rank, info.Step, info)
			}
			if rank == 0 && info.GradNorm == 0 {
				t.Errorf("step %d: grad norm not materialized on rank 0: %+v", info.Step, info)
			}
		}
	}
}

// Cancellation is collective: a context cancelled mid-loop stops every
// rank at the same accumulation boundary (no rank left mid-collective),
// TrainLoop reports the agreed completed-step count with ctx's error, and
// Save is legal immediately after — the checkpoint-and-stop contract the
// serve scheduler relies on.
func TestEngineTrainLoopCancelStopsAtBoundary(t *testing.T) {
	cfg := testEngineConfig()
	norm, err := cfg.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	const budget = 50
	const cancelAt = 3
	ctx, cancel := context.WithCancel(context.Background())
	var mu sync.Mutex
	completed := make(map[int]int)
	var savedSteps int
	if _, err := Run(norm, func(e *Engine) {
		if e.Rank() == 0 {
			e.Observe(func(info StepInfo) {
				if info.Step == cancelAt {
					cancel() // cancel lands asynchronously, between boundaries
				}
			})
		}
		b := model.NewSyntheticStream(norm.Seed, norm.GlobalBatch, norm.MicroBatch, norm.Model.Seq, norm.Model.Vocab)
		n, loopErr := e.TrainLoop(ctx, b, budget)
		if !errors.Is(loopErr, context.Canceled) {
			t.Errorf("rank %d: TrainLoop err = %v, want context.Canceled", e.Rank(), loopErr)
		}
		mu.Lock()
		completed[e.Rank()] = n
		mu.Unlock()
		if snap := e.Save(); snap != nil { // must not deadlock or panic
			mu.Lock()
			savedSteps = snap.OptSteps
			mu.Unlock()
		}
	}); err != nil {
		t.Fatal(err)
	}
	if completed[0] != completed[1] {
		t.Errorf("ranks disagree on the stopping boundary: %v", completed)
	}
	if n := completed[0]; n < cancelAt || n >= budget {
		t.Errorf("completed %d steps, want in [%d, %d)", n, cancelAt, budget)
	}
	if savedSteps != completed[0] {
		t.Errorf("checkpoint OptSteps = %d, want the agreed boundary %d", savedSteps, completed[0])
	}
}

// An already-cancelled context stops the loop before any step runs.
func TestEngineTrainLoopPreCancelled(t *testing.T) {
	cfg := testEngineConfig()
	norm, err := cfg.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Run(norm, func(e *Engine) {
		b := model.NewSyntheticStream(norm.Seed, norm.GlobalBatch, norm.MicroBatch, norm.Model.Seq, norm.Model.Vocab)
		n, loopErr := e.TrainLoop(ctx, b, 10)
		if n != 0 || !errors.Is(loopErr, context.Canceled) {
			t.Errorf("rank %d: TrainLoop = (%d, %v), want (0, context.Canceled)", e.Rank(), n, loopErr)
		}
	}); err != nil {
		t.Fatal(err)
	}
}
