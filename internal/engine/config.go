// Package engine is the user-facing entry point of the ZeRO reproduction:
// a declarative, JSON-loadable configuration (the shape of DeepSpeed's
// ds_config.json) compiled down to the internal zero.Options layer, and a
// training Engine whose lifecycle is the paper's three-call loop —
// Forward, Backward, Step — with gradient accumulation across micro-batches
// (§5.2): Backward reduce-scatters each micro-batch's gradient buckets into
// the rank's owned partition, and the optimizer fires only on the
// accumulation boundary.
//
// Every command, example and experiment constructs its training run through
// this one package, so a new knob lands in the config struct once instead
// of being duplicated as ad-hoc flags and hand-built option structs.
package engine

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/comm"
	"repro/internal/data"
	"repro/internal/model"
	"repro/internal/optimizer"
	"repro/internal/zero"
)

// Sentinel errors for the distinct ways a config can be invalid. Validate
// (and everything built on it) wraps one of these, so callers distinguish
// failure classes with errors.Is instead of string matching.
var (
	// ErrJSON marks malformed or unknown-field config JSON.
	ErrJSON = errors.New("engine: malformed config JSON")
	// ErrModel marks an invalid model shape.
	ErrModel = errors.New("engine: invalid model")
	// ErrWorld marks an invalid rank count, or a world whose size does not
	// match the config at Initialize time.
	ErrWorld = errors.New("engine: invalid world")
	// ErrStage marks an unknown ZeRO stage spelling.
	ErrStage = errors.New("engine: invalid stage")
	// ErrOptimizer marks an unknown optimizer name or bad hyperparameters.
	ErrOptimizer = errors.New("engine: invalid optimizer")
	// ErrBatch marks inconsistent batch geometry: global_batch must equal
	// grad_accum_steps × micro_batch, and micro_batch must divide by ranks.
	ErrBatch = errors.New("engine: invalid batch geometry")
	// ErrTopology marks a node layout the world does not tile into.
	ErrTopology = errors.New("engine: invalid topology")
	// ErrSchedule marks bad communication-schedule knobs (negative bucket,
	// queue depth or prefetch depth).
	ErrSchedule = errors.New("engine: invalid schedule")
	// ErrData marks an invalid data section (missing corpus path, unknown
	// tokenizer, sequence length beyond the model, vocabulary mismatch).
	ErrData = errors.New("engine: invalid data section")
	// ErrPrecision marks an invalid precision section (bad loss-scale
	// knobs, or fp16 compute combined with activation checkpointing).
	ErrPrecision = errors.New("engine: invalid precision section")
)

// StageSpec is a ZeRO stage in config form: a JSON number 0-3 or a paper
// name ("ddp", "os", "os+g", "full", "pos+g+p", ...). The empty value means
// stage 0 (plain data parallelism), mirroring DeepSpeed's default.
type StageSpec string

// UnmarshalJSON accepts both `"stage": 2` and `"stage": "os+g"`.
func (s *StageSpec) UnmarshalJSON(b []byte) error {
	var str string
	if err := json.Unmarshal(b, &str); err == nil {
		*s = StageSpec(str)
		return nil
	}
	var num json.Number
	if err := json.Unmarshal(b, &num); err == nil {
		*s = StageSpec(num.String())
		return nil
	}
	return fmt.Errorf("stage must be a number or a string, got %s", b)
}

// Parse resolves the spec to a zero.Stage.
func (s StageSpec) Parse() (zero.Stage, error) {
	if s == "" {
		return zero.StageDDP, nil
	}
	return zero.ParseStage(string(s))
}

// OptimizerConfig is the "optimizer" block: which update rule drives the
// owned partition, and its hyperparameters.
type OptimizerConfig struct {
	Type        string  `json:"type"` // adam (default) | sgd | lamb
	LR          float64 `json:"lr"`
	Momentum    float64 `json:"momentum,omitempty"`     // sgd (0 → 0.9)
	WeightDecay float64 `json:"weight_decay,omitempty"` // adam / lamb
}

// DataConfig is the "data" block: a real text corpus streamed through the
// internal/data pipeline (tokenize → shard → shuffle → pack) instead of
// the synthetic batch generator. Omitting the block keeps the synthetic
// path; see OpenData for how a present block becomes a data.Loader.
type DataConfig struct {
	// Path is the corpus text file (blank-line-separated documents).
	// Relative paths in a loaded config file resolve against the config
	// file's directory, so a corpus can sit next to its config.
	Path string `json:"path"`
	// Tokenizer is "byte" (default), "bpe" (train byte-level BPE on the
	// corpus head at Open), or a ".json" vocab file path.
	Tokenizer string `json:"tokenizer,omitempty"`
	// VocabSize is the BPE vocabulary budget, ids including the 257
	// byte+EOT floor (0 = 512; "byte" ignores it).
	VocabSize int `json:"vocab_size,omitempty"`
	// SeqLen is the packed sequence length per row (0 = model seq; must
	// not exceed it).
	SeqLen int `json:"seq_len,omitempty"`
	// ShuffleBuffer is the per-shard shuffle-buffer size in documents
	// (0 = the data package default).
	ShuffleBuffer int `json:"shuffle_buffer,omitempty"`
	// Seed drives the shuffle order (0 = the top-level config seed, so
	// one field reproduces the whole run).
	Seed int64 `json:"seed,omitempty"`
}

// PrecisionConfig is the "precision" block: the true half-precision
// compute path (§3.1's mixed-precision training taken all the way into the
// kernels) and its dynamic loss-scaling knobs. It subsumes the top-level
// fp16 flag: fp16_compute implies the fp16 master-copy/wire machinery and
// additionally stores activations and the kernel-side weight copy in
// 2-byte form, with f32 accumulation inside the fused kernels.
type PrecisionConfig struct {
	// FP16Compute enables half-precision activation/weight storage with
	// fused convert-on-the-fly kernels. Incompatible with
	// activation_checkpoint (the half path stores, it does not recompute).
	FP16Compute bool `json:"fp16_compute,omitempty"`
	// InitialLossScale seeds the dynamic loss scaler (0 = 65536).
	InitialLossScale float64 `json:"initial_loss_scale,omitempty"`
	// LossScaleWindow is the overflow-free step count after which the
	// scale doubles (0 = 1000).
	LossScaleWindow int `json:"loss_scale_window,omitempty"`
}

// Config is the declarative training configuration. Zero values mean "use
// the documented default"; Validate reports structured errors for every
// inconsistent combination. The batch geometry follows DeepSpeed's
// contract: global_batch = grad_accum_steps × micro_batch, with any one of
// the three derivable from the other two.
type Config struct {
	// Model is the transformer shape to train.
	Model model.Config `json:"model"`
	// Ranks is the simulated GPU count (the data-parallel degree).
	Ranks int `json:"ranks"`
	// Stage selects the ZeRO-DP stage (0-3 or a paper name; default 0).
	Stage StageSpec `json:"stage,omitempty"`
	// Optimizer selects adam|sgd|lamb plus hyperparameters.
	Optimizer OptimizerConfig `json:"optimizer"`
	// GradClip caps the global gradient L2 norm at the accumulation
	// boundary (0 disables).
	GradClip float64 `json:"grad_clip,omitempty"`
	// FP16 simulates mixed-precision training (§3.1).
	FP16 bool `json:"fp16,omitempty"`
	// Precision opts into the true fp16 compute path with dynamic loss
	// scaling when set (see PrecisionConfig).
	Precision *PrecisionConfig `json:"precision,omitempty"`
	// Checkpoint enables activation checkpointing.
	Checkpoint bool `json:"activation_checkpoint,omitempty"`
	// BucketElems is the gradient bucket size in elements (0 = one bucket
	// per layer group).
	BucketElems int `json:"bucket_elems,omitempty"`
	// Overlap rides gradient buckets on the grad stream under backward.
	Overlap bool `json:"overlap,omitempty"`
	// Prefetch pipelines stage-3 parameter all-gathers (§7.2.2).
	Prefetch bool `json:"prefetch,omitempty"`
	// PrefetchDepth is the pipelining window in layer groups (0/1 = the
	// classic one-group-ahead schedule).
	PrefetchDepth int `json:"prefetch_depth,omitempty"`
	// NodeSize routes collectives hierarchically for worlds laid out as
	// nodes of NodeSize ranks (0 = flat).
	NodeSize int `json:"node_size,omitempty"`
	// QueueDepth overrides the per-stream submission-queue capacity.
	QueueDepth int `json:"queue_depth,omitempty"`
	// GlobalBatch is the rows per optimizer step across all ranks.
	GlobalBatch int `json:"global_batch"`
	// MicroBatch is the rows per Forward/Backward across all ranks; the
	// engine accumulates GradAccumSteps of them per optimizer step.
	MicroBatch int `json:"micro_batch,omitempty"`
	// GradAccumSteps is the number of micro-batches folded into the
	// partitioned gradient accumulator per optimizer step (default 1).
	GradAccumSteps int `json:"grad_accum_steps,omitempty"`
	// Seed is the single top-level reproducibility knob: it drives
	// parameter init, synthetic data, and (unless data.seed overrides)
	// the corpus shuffle order.
	Seed int64 `json:"seed,omitempty"`
	// Data streams a real corpus instead of synthetic batches when set.
	Data *DataConfig `json:"data,omitempty"`
	// BaseDir anchors relative data paths (corpus and .json vocab). It is
	// not a JSON field: LoadConfig sets it to the config file's directory,
	// and CLIs set it to the working directory for flag-provided paths. A
	// config that arrives without a load site — an HTTP-submitted job has
	// no config directory — must use absolute paths; Normalized rejects a
	// relative path with no base as ErrData instead of silently resolving
	// against whatever the process's working directory happens to be.
	BaseDir string `json:"-"`
}

// DefaultConfig is the one constructor every entry point starts from: the
// stage-2 streamed schedule (overlap + prefetch, fp32 numerics — set FP16
// for the mixed-precision wire) on a small 4-rank world. cmd/zerotrain's
// flag defaults, cmd/zerobench's sweep base and the examples all derive
// from it, so a new knob defaults consistently everywhere.
func DefaultConfig() Config {
	return Config{
		Model:          model.Config{Layers: 4, Hidden: 64, Heads: 4, Vocab: 101, Seq: 32},
		Ranks:          4,
		Stage:          "2",
		Optimizer:      OptimizerConfig{Type: "adam", LR: 3e-3},
		BucketElems:    4096,
		Overlap:        true,
		Prefetch:       true,
		PrefetchDepth:  1,
		GlobalBatch:    8,
		MicroBatch:     8,
		GradAccumSteps: 1,
		Seed:           7,
	}
}

// ParseConfig decodes a JSON config strictly: unknown fields, trailing
// data and type mismatches are ErrJSON (catching ds_config-style typos at
// load time instead of silently training with defaults).
func ParseConfig(data []byte) (Config, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var c Config
	if err := dec.Decode(&c); err != nil {
		return Config{}, fmt.Errorf("%w: %v", ErrJSON, err)
	}
	if dec.More() {
		return Config{}, fmt.Errorf("%w: trailing data after the config object", ErrJSON)
	}
	return c, nil
}

// LoadConfig reads and strictly parses a JSON config file, setting BaseDir
// to the file's directory so relative data paths (corpus and .json vocab)
// resolve against it at Normalized — `examples/corpus/config.json` can name
// the corpus sitting next to it and still load from any working directory.
func LoadConfig(path string) (Config, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return Config{}, fmt.Errorf("engine: reading config: %w", err)
	}
	c, err := ParseConfig(blob)
	if err != nil {
		return Config{}, fmt.Errorf("%s: %w", path, err)
	}
	c.BaseDir = filepath.Dir(path)
	return c, nil
}

// Normalized returns the config with derivable batch-geometry fields
// filled in (the config Initialize actually runs), validating everything
// and wrapping one sentinel error per failure class.
func (c Config) Normalized() (Config, error) {
	if c.Ranks < 1 {
		return c, fmt.Errorf("%w: ranks %d (want ≥ 1)", ErrWorld, c.Ranks)
	}
	if err := c.Model.Validate(); err != nil {
		return c, fmt.Errorf("%w: %v", ErrModel, err)
	}
	if _, err := c.Stage.Parse(); err != nil {
		return c, fmt.Errorf("%w: %v", ErrStage, err)
	}
	if _, err := optimizer.ParseKind(c.Optimizer.Type); err != nil {
		return c, fmt.Errorf("%w: %v", ErrOptimizer, err)
	}
	if c.Optimizer.LR <= 0 {
		return c, fmt.Errorf("%w: lr %g (want > 0)", ErrOptimizer, c.Optimizer.LR)
	}
	if c.Optimizer.Momentum < 0 || c.Optimizer.Momentum >= 1 {
		return c, fmt.Errorf("%w: momentum %g (want [0,1))", ErrOptimizer, c.Optimizer.Momentum)
	}
	if c.Optimizer.WeightDecay < 0 || c.GradClip < 0 {
		return c, fmt.Errorf("%w: weight_decay %g / grad_clip %g (want ≥ 0)",
			ErrOptimizer, c.Optimizer.WeightDecay, c.GradClip)
	}
	if c.BucketElems < 0 || c.QueueDepth < 0 || c.PrefetchDepth < 0 {
		return c, fmt.Errorf("%w: bucket_elems %d, queue_depth %d, prefetch_depth %d (want ≥ 0)",
			ErrSchedule, c.BucketElems, c.QueueDepth, c.PrefetchDepth)
	}
	if c.NodeSize < 0 {
		return c, fmt.Errorf("%w: node_size %d (want ≥ 0)", ErrTopology, c.NodeSize)
	}
	if c.NodeSize != 0 {
		if err := comm.CheckNodeSize(c.Ranks, c.NodeSize); err != nil {
			return c, fmt.Errorf("%w: %v", ErrTopology, err)
		}
	}
	if p := c.Precision; p != nil {
		if p.InitialLossScale < 0 || p.LossScaleWindow < 0 {
			return c, fmt.Errorf("%w: initial_loss_scale %g / loss_scale_window %d (want ≥ 0)",
				ErrPrecision, p.InitialLossScale, p.LossScaleWindow)
		}
		if p.FP16Compute && c.Checkpoint {
			return c, fmt.Errorf("%w: fp16_compute is incompatible with activation_checkpoint (the half path stores activations, it does not recompute them)",
				ErrPrecision)
		}
	}

	// Batch geometry: global = accum × micro, any one field derivable.
	switch {
	case c.GradAccumSteps < 0 || c.MicroBatch < 0 || c.GlobalBatch < 0:
		return c, fmt.Errorf("%w: negative batch field (global %d, micro %d, accum %d)",
			ErrBatch, c.GlobalBatch, c.MicroBatch, c.GradAccumSteps)
	case c.GradAccumSteps == 0 && c.GlobalBatch > 0 && c.MicroBatch > 0:
		if c.GlobalBatch%c.MicroBatch != 0 {
			return c, fmt.Errorf("%w: global_batch %d not a multiple of micro_batch %d",
				ErrBatch, c.GlobalBatch, c.MicroBatch)
		}
		c.GradAccumSteps = c.GlobalBatch / c.MicroBatch
	case c.GradAccumSteps == 0:
		c.GradAccumSteps = 1
	}
	if c.MicroBatch == 0 && c.GlobalBatch > 0 {
		if c.GlobalBatch%c.GradAccumSteps != 0 {
			return c, fmt.Errorf("%w: global_batch %d not a multiple of grad_accum_steps %d",
				ErrBatch, c.GlobalBatch, c.GradAccumSteps)
		}
		c.MicroBatch = c.GlobalBatch / c.GradAccumSteps
	}
	if c.GlobalBatch == 0 {
		c.GlobalBatch = c.GradAccumSteps * c.MicroBatch
	}
	if c.GlobalBatch <= 0 || c.MicroBatch <= 0 {
		return c, fmt.Errorf("%w: batch geometry unresolved (global %d, micro %d, accum %d)",
			ErrBatch, c.GlobalBatch, c.MicroBatch, c.GradAccumSteps)
	}
	if c.GradAccumSteps*c.MicroBatch != c.GlobalBatch {
		return c, fmt.Errorf("%w: grad_accum_steps %d × micro_batch %d = %d, want global_batch %d",
			ErrBatch, c.GradAccumSteps, c.MicroBatch, c.GradAccumSteps*c.MicroBatch, c.GlobalBatch)
	}
	if c.MicroBatch%c.Ranks != 0 {
		return c, fmt.Errorf("%w: micro_batch %d not divisible by ranks %d",
			ErrBatch, c.MicroBatch, c.Ranks)
	}

	// Data section: fill defaults (sequence length from the model, seed
	// from the top-level knob) and validate what is statically checkable;
	// file contents are OpenData's concern.
	if c.Data != nil {
		d := *c.Data
		if d.Path == "" {
			return c, fmt.Errorf("%w: path is required", ErrData)
		}
		p, err := c.resolve(d.Path)
		if err != nil {
			return c, err
		}
		d.Path = p
		if strings.HasSuffix(d.Tokenizer, ".json") {
			if p, err = c.resolve(d.Tokenizer); err != nil {
				return c, err
			}
			d.Tokenizer = p
		}
		switch {
		case d.Tokenizer == "" || d.Tokenizer == "byte":
			d.Tokenizer = "byte"
			if d.VocabSize != 0 {
				return c, fmt.Errorf("%w: vocab_size %d set with the byte tokenizer (fixed at 257)",
					ErrData, d.VocabSize)
			}
		case d.Tokenizer == "bpe":
			if d.VocabSize == 0 {
				d.VocabSize = 512
			}
			if d.VocabSize < 258 {
				return c, fmt.Errorf("%w: vocab_size %d (bpe wants ≥ 258: 257 byte ids plus merges)",
					ErrData, d.VocabSize)
			}
		case strings.HasSuffix(d.Tokenizer, ".json"):
			// Vocab size comes from the file; checked at OpenData.
		default:
			return c, fmt.Errorf("%w: tokenizer %q (want \"byte\", \"bpe\" or a .json vocab path)",
				ErrData, d.Tokenizer)
		}
		if d.SeqLen == 0 {
			d.SeqLen = c.Model.Seq
		}
		if d.SeqLen < 2 || d.SeqLen > c.Model.Seq {
			return c, fmt.Errorf("%w: seq_len %d (want 2 ≤ seq_len ≤ model seq %d)",
				ErrData, d.SeqLen, c.Model.Seq)
		}
		if d.ShuffleBuffer < 0 {
			return c, fmt.Errorf("%w: shuffle_buffer %d (want ≥ 0)", ErrData, d.ShuffleBuffer)
		}
		if d.Seed == 0 {
			d.Seed = c.Seed
		}
		if need := tokenizerFloor(d); c.Model.Vocab < need {
			return c, fmt.Errorf("%w: model vocab %d below tokenizer vocabulary %d",
				ErrData, c.Model.Vocab, need)
		}
		c.Data = &d
	}
	return c, nil
}

// resolve anchors a data-section file path: absolute paths pass through,
// relative ones join BaseDir, and a relative path with no base is ErrData —
// a config with no load site (an HTTP-submitted job) must not silently
// resolve against the process's working directory.
func (c Config) resolve(path string) (string, error) {
	if filepath.IsAbs(path) {
		return path, nil
	}
	if c.BaseDir == "" {
		return "", fmt.Errorf("%w: relative path %q in a config with no base directory (use an absolute path, or set BaseDir at the load site)", ErrData, path)
	}
	// Absolute output keeps resolution idempotent: Normalized runs both at
	// the entry point and inside engine initialization, and the second
	// pass must not re-join BaseDir onto an already-resolved path.
	p, err := filepath.Abs(filepath.Join(c.BaseDir, path))
	if err != nil {
		return "", fmt.Errorf("%w: resolving %q against %q: %v", ErrData, path, c.BaseDir, err)
	}
	return p, nil
}

// tokenizerFloor returns the statically-known minimum model vocabulary the
// data section requires (the byte+EOT floor, or the BPE budget).
func tokenizerFloor(d DataConfig) int {
	if d.Tokenizer == "bpe" {
		return d.VocabSize
	}
	return 257
}

// Validate reports whether the config is runnable, wrapping one of the
// package's sentinel errors per failure class. It does not mutate c;
// derivable batch fields may stay zero and are filled at Initialize.
func (c Config) Validate() error {
	_, err := c.Normalized()
	return err
}

// OpenData compiles the config's data section into a streaming
// data.Loader producing MicroBatch-row global micro-batches (engine
// Batcher contract). Each rank opens its own Loader; determinism of the
// pipeline makes every rank's batch stream identical. The loader's actual
// vocabulary (known only after training or loading a vocab file) must fit
// the model's.
func OpenData(cfg Config) (*data.Loader, error) {
	norm, err := cfg.Normalized()
	if err != nil {
		return nil, err
	}
	if norm.Data == nil {
		return nil, fmt.Errorf("%w: config has no data section", ErrData)
	}
	d := norm.Data
	l, err := data.Open(data.Config{
		Path:          d.Path,
		Tokenizer:     d.Tokenizer,
		VocabSize:     d.VocabSize,
		SeqLen:        d.SeqLen,
		ShuffleBuffer: d.ShuffleBuffer,
		Seed:          d.Seed,
	}, norm.MicroBatch, norm.Ranks)
	if err != nil {
		return nil, err
	}
	if l.VocabSize() > norm.Model.Vocab {
		l.Close()
		return nil, fmt.Errorf("%w: model vocab %d below tokenizer vocabulary %d",
			ErrData, norm.Model.Vocab, l.VocabSize())
	}
	return l, nil
}

// compile lowers the validated config to the internal zero.Options layer.
func (c Config) compile() (zero.Options, error) {
	stage, err := c.Stage.Parse()
	if err != nil {
		return zero.Options{}, fmt.Errorf("%w: %v", ErrStage, err)
	}
	kind, err := optimizer.ParseKind(c.Optimizer.Type)
	if err != nil {
		return zero.Options{}, fmt.Errorf("%w: %v", ErrOptimizer, err)
	}
	opts := zero.Options{
		Stage:         stage,
		LR:            c.Optimizer.LR,
		Seed:          c.Seed,
		BucketElems:   c.BucketElems,
		Overlap:       c.Overlap,
		Prefetch:      c.Prefetch,
		PrefetchDepth: c.PrefetchDepth,
		Topology:      zero.Topology{NodeSize: c.NodeSize},
		QueueDepth:    c.QueueDepth,
		FP16:          c.FP16,
		Checkpoint:    c.Checkpoint,
		ClipNorm:      c.GradClip,
		Optimizer: optimizer.Spec{
			Kind:        kind,
			LR:          c.Optimizer.LR,
			Momentum:    c.Optimizer.Momentum,
			WeightDecay: c.Optimizer.WeightDecay,
		},
	}
	if p := c.Precision; p != nil {
		opts.FP16Compute = p.FP16Compute
		opts.InitialLossScale = p.InitialLossScale
		opts.LossScaleWindow = p.LossScaleWindow
	}
	return opts, nil
}
