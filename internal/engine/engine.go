package engine

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/comm"
	"repro/internal/zero"
)

// Engine is one rank of a configured training job: the ZeRO trainer plus
// the accumulation-boundary bookkeeping of the Forward/Backward/Step loop.
//
// The lifecycle contract per micro-batch is
//
//	loss := e.Forward(ids, targets) // one micro-batch, sharded across ranks
//	e.Backward()                    // reduce-scatter into the owned accumulator
//	fired := e.Step()               // optimizer fires only on the boundary
//
// Step returns true on every GradAccumSteps-th call — the accumulation
// boundary, where the accumulated partitioned gradient is averaged,
// clipped and consumed by the optimizer. Between boundaries the only
// cross-micro-batch state is the Ψ/Nd gradient accumulator (§5.2);
// micro-batch forward/backward workspace is transient.
type Engine struct {
	cfg Config
	c   *comm.Comm
	tr  *zero.Trainer

	micro   int     // micro-batches since the last boundary
	lossSum float64 // summed micro losses since the last boundary
	last    float64 // mean local loss of the last completed boundary
	steps   int     // optimizer steps fired

	observer   func(StepInfo) // boundary tap, nil when unobserved
	onBoundary []func(int)    // post-step hooks (snapshotters); may run collectives
	stopFlag   []float32      // one-element TrainLoop cancellation vote
}

// StepInfo is the observation delivered at every accumulation boundary:
// the optimizer step that just fired, the boundary's mean local loss, and
// the pre-clipping global gradient norm (0 when clipping is off). Under
// the fp16 compute path it also carries the dynamic loss scale after the
// boundary and the cumulative count of overflow-skipped steps (both 0
// when fp16_compute is off).
type StepInfo struct {
	Step          int
	Loss          float64
	GradNorm      float64
	LossScale     float64
	OverflowSteps int
}

// Observe registers fn to be invoked synchronously at every accumulation
// boundary, right after the optimizer fires inside Step. One observer per
// engine (nil unregisters); it runs on the rank's own goroutine, so a
// server can tap per-step metrics without forking the training loop. The
// observer must not call back into the engine's collective methods.
func (e *Engine) Observe(fn func(StepInfo)) { e.observer = fn }

// OnBoundary appends a hook invoked at every accumulation boundary, after
// the optimizer fires and the observer runs. Unlike Observe, boundary hooks
// MAY submit collectives (that is their point: periodic elastic snapshots
// ride here), so every rank must register the same hooks in the same order —
// they are part of the collective schedule.
func (e *Engine) OnBoundary(fn func(step int)) { e.onBoundary = append(e.onBoundary, fn) }

// Initialize validates cfg, compiles it down to zero.Options and builds
// this rank's Engine — the deepspeed.initialize of the reproduction. The
// same cfg must be passed on every rank of the world.
func Initialize(c *comm.Comm, cfg Config) (*Engine, error) {
	norm, err := cfg.Normalized()
	if err != nil {
		return nil, err
	}
	if c.Size() != norm.Ranks {
		return nil, fmt.Errorf("%w: world has %d ranks, config says %d", ErrWorld, c.Size(), norm.Ranks)
	}
	opts, err := norm.compile()
	if err != nil {
		return nil, err
	}
	tr, err := zero.New(c, norm.Model, opts)
	if err != nil {
		return nil, err
	}
	return &Engine{cfg: norm, c: c, tr: tr}, nil
}

// Run simulates a full data-parallel job: it validates cfg once, spins up
// a world of cfg.Ranks ranks, initializes an Engine per rank and invokes
// body on each rank's goroutine. The world is returned so callers can read
// wire statistics after the run.
func Run(cfg Config, body func(*Engine)) (*comm.World, error) {
	norm, err := cfg.Normalized()
	if err != nil {
		return nil, err
	}
	w := comm.NewWorld(norm.Ranks)
	if err := RunOn(w, norm, body); err != nil {
		return nil, err
	}
	return w, nil
}

// RunOn is Run against a caller-built world — the entry point for hosts
// (servers, schedulers) that need the World handle before the job starts,
// e.g. to read live wire statistics from inside a step observer. The world
// size must match the config's rank count.
func RunOn(w *comm.World, cfg Config, body func(*Engine)) error {
	norm, err := cfg.Normalized()
	if err != nil {
		return err
	}
	var mu sync.Mutex
	var firstErr error
	w.Run(func(c *comm.Comm) {
		e, err := Initialize(c, norm)
		if err != nil {
			// The config validated above, so per-rank failures are
			// identical across ranks; every rank returns before any
			// collective starts.
			mu.Lock()
			if firstErr == nil {
				firstErr = err
			}
			mu.Unlock()
			return
		}
		defer e.Close()
		body(e)
	})
	return firstErr
}

// RunOnFallible is RunOn with rank-death containment: the world runs with
// fault injection enabled, and a rank that dies mid-collective (killed by
// injection, or erroring out after observing a dead peer) surfaces as that
// rank's entry in the returned slice instead of crashing the process. The
// supervisor loop in internal/serve restarts jobs from this signal. The
// second return value reports configuration errors (identical on all
// ranks), which prevent the job from starting at all.
func RunOnFallible(w *comm.World, cfg Config, body func(*Engine)) ([]error, error) {
	norm, err := cfg.Normalized()
	if err != nil {
		return nil, err
	}
	var mu sync.Mutex
	var firstErr error
	errs := w.RunFallible(func(c *comm.Comm) {
		e, err := Initialize(c, norm)
		if err != nil {
			mu.Lock()
			if firstErr == nil {
				firstErr = err
			}
			mu.Unlock()
			return
		}
		defer e.Close()
		body(e)
	})
	if firstErr != nil {
		return nil, firstErr
	}
	return errs, nil
}

// Config returns the normalized configuration the engine runs (batch
// geometry fully resolved).
func (e *Engine) Config() Config { return e.cfg }

// Rank returns this engine's data-parallel rank.
func (e *Engine) Rank() int { return e.c.Rank() }

// Size returns the data-parallel degree.
func (e *Engine) Size() int { return e.c.Size() }

// Stage returns the configured ZeRO stage.
func (e *Engine) Stage() zero.Stage { return e.tr.Stage() }

// Forward runs one micro-batch's forward pass (MicroBatch rows across the
// group, row-major ids/targets; this rank computes its shard) and returns
// the local loss.
func (e *Engine) Forward(ids, targets []int) float64 {
	mb := e.cfg.MicroBatch
	if len(ids) != len(targets) || len(ids) == 0 || len(ids)%mb != 0 || len(ids)/mb > e.cfg.Model.Seq {
		panic(fmt.Sprintf("engine: Forward wants micro_batch %d × seq ≤ %d tokens, got %d",
			mb, e.cfg.Model.Seq, len(ids)))
	}
	loss := e.tr.Forward(ids, targets, mb)
	e.lossSum += loss
	return loss
}

// Backward runs the micro-batch's backward pass and folds its
// reduce-scattered gradient into the owned accumulator.
func (e *Engine) Backward() { e.tr.Backward() }

// Step advances the accumulation counter and, on the boundary (every
// GradAccumSteps-th call), averages the accumulated gradient, applies
// clipping, runs the optimizer and re-materializes parameters. It returns
// whether the optimizer fired. Panics when called without a completed
// Forward/Backward pair since the previous Step.
func (e *Engine) Step() bool {
	if e.tr.AccumulatedMicros() != e.micro+1 {
		panic("engine: Step without a preceding Forward/Backward")
	}
	e.micro++
	if e.micro < e.cfg.GradAccumSteps {
		return false
	}
	e.tr.Update()
	e.last = e.lossSum / float64(e.micro)
	e.micro = 0
	e.lossSum = 0
	e.steps++
	if e.observer != nil {
		e.observer(StepInfo{
			Step: e.steps, Loss: e.last, GradNorm: e.tr.LastGradNorm,
			LossScale: e.tr.LossScale(), OverflowSteps: e.tr.OverflowSteps(),
		})
	}
	for _, fn := range e.onBoundary {
		fn(e.steps)
	}
	return true
}

// Batcher is a stream of global micro-batches: each call returns
// MicroBatch rows × seq_len tokens of ids with their next-token targets,
// row-major. data.Loader streams a real corpus behind this contract;
// model.SyntheticStream cycles the synthetic batch behind the same one.
// Returned slices may be reused by the next call — the engine consumes
// them within the micro-step.
type Batcher interface {
	NextBatch() (ids, targets []int)
}

// TrainStream runs one optimizer step by draining GradAccumSteps
// micro-batches from b through the Forward/Backward/Step lifecycle, and
// returns the mean local loss at the boundary. It is TrainBatch for data
// that arrives as a stream instead of a materialized global batch.
func (e *Engine) TrainStream(b Batcher) float64 {
	if e.micro != 0 {
		panic("engine: TrainStream mid-accumulation")
	}
	for j := 0; j < e.cfg.GradAccumSteps; j++ {
		ids, targets := b.NextBatch()
		e.Forward(ids, targets)
		e.Backward()
		e.Step()
	}
	return e.BatchLoss()
}

// TrainLoop drives up to steps optimizer steps from b, checking ctx at
// every accumulation boundary. Cancellation is collective: before each
// step every rank contributes its local ctx observation to a one-element
// all-reduce, so all ranks agree on the stopping boundary and no rank is
// left blocking mid-collective when cancellation lands asynchronously.
// It returns the number of completed optimizer steps, and ctx's error when
// the loop stopped early. The loop always exits on an accumulation
// boundary, so Save is legal immediately after (checkpoint-and-stop).
func (e *Engine) TrainLoop(ctx context.Context, b Batcher, steps int) (int, error) {
	done := ctx.Done()
	for s := 0; s < steps; s++ {
		stop := false
		select {
		case <-done:
			stop = true
		default:
		}
		if e.stopVote(stop) {
			// Some rank saw the cancel before voting; the cancel
			// happened-before its vote reached us, so Err is set here too.
			if err := ctx.Err(); err != nil {
				return s, err
			}
			return s, context.Canceled
		}
		e.TrainStream(b)
	}
	return steps, nil
}

// stopVote agrees on cancellation across the world: the max of every
// rank's local flag, via a one-element all-reduce on the default stream.
func (e *Engine) stopVote(stop bool) bool {
	if e.stopFlag == nil {
		e.stopFlag = make([]float32, 1)
	}
	e.stopFlag[0] = 0
	if stop {
		e.stopFlag[0] = 1
	}
	e.c.AllReduce(e.stopFlag)
	return e.stopFlag[0] != 0
}

// TrainBatch runs one full global batch — GradAccumSteps micro-batches of
// MicroBatch rows, sliced row-major from ids/targets — through the
// Forward/Backward/Step lifecycle and returns the mean local loss at the
// boundary. It is the one-call convenience for data already materialized
// at global-batch granularity.
func (e *Engine) TrainBatch(ids, targets []int) float64 {
	if e.micro != 0 {
		panic("engine: TrainBatch mid-accumulation")
	}
	if len(ids) != len(targets) || len(ids) == 0 || len(ids)%e.cfg.GlobalBatch != 0 {
		panic(fmt.Sprintf("engine: TrainBatch wants global_batch %d × seq tokens, got %d",
			e.cfg.GlobalBatch, len(ids)))
	}
	seqLen := len(ids) / e.cfg.GlobalBatch
	mt := e.cfg.MicroBatch * seqLen
	for j := 0; j < e.cfg.GradAccumSteps; j++ {
		e.Forward(ids[j*mt:(j+1)*mt], targets[j*mt:(j+1)*mt])
		e.Backward()
		e.Step()
	}
	return e.BatchLoss()
}

// BatchLoss returns the mean local loss of the last completed accumulation
// boundary (0 before the first).
func (e *Engine) BatchLoss() float64 { return e.last }

// Steps returns how many optimizer steps have fired.
func (e *Engine) Steps() int { return e.steps }

// MicroSteps reports the micro-batches accumulated since the last boundary.
func (e *Engine) MicroSteps() int { return e.micro }

// LastGradNorm returns the pre-clipping global gradient norm of the most
// recent boundary (when grad_clip is enabled).
func (e *Engine) LastGradNorm() float64 { return e.tr.LastGradNorm }

// LossScale returns the current dynamic loss scale (0 when fp16_compute
// is off).
func (e *Engine) LossScale() float64 { return e.tr.LossScale() }

// OverflowSteps counts optimizer steps skipped on fp16 overflow.
func (e *Engine) OverflowSteps() int { return e.tr.OverflowSteps() }

// Owned returns this rank's partition of the flat parameter space.
func (e *Engine) Owned() comm.Range { return e.tr.Owned() }

// NumParams returns the model's flat parameter count Ψ.
func (e *Engine) NumParams() int { return e.tr.Model.NumParams() }

// ModelStateBytes returns this rank's resident model-state bytes under the
// §3.1 accounting for the configured stage.
func (e *Engine) ModelStateBytes() int64 { return e.tr.ModelStateBytes() }

// GradAccumElems returns the element count of the persistent gradient
// accumulator (Ψ/Nd at the partitioned stages, independent of
// GradAccumSteps — the §5.2 memory property).
func (e *Engine) GradAccumElems() int { return e.tr.GradAccumElems() }

// Save consolidates the partitioned training state to rank 0 (other ranks
// return nil). Collective; call on an accumulation boundary.
func (e *Engine) Save() *zero.Snapshot { return e.tr.Save() }

// Load restores a snapshot into this rank (see zero.Trainer.Load) and
// adopts its training clock: Steps continues from the snapshot's OptSteps,
// so a supervisor can fast-forward the data stream to the right position.
// Mid-accumulation snapshots (AccumMicros > 0) are rejected — the engine's
// micro-step counter is part of the TrainStream schedule, and resuming a
// half batch would desynchronize it; restore those through zero.Trainer.Load
// directly when driving the micro loop by hand.
func (e *Engine) Load(s *zero.Snapshot) error {
	if s != nil && s.AccumMicros > 0 {
		return fmt.Errorf("engine: snapshot holds %d half-accumulated micro-batches; the engine resumes only from boundaries", s.AccumMicros)
	}
	if err := e.tr.Load(s); err != nil {
		return err
	}
	e.micro = 0
	e.lossSum = 0
	e.steps = s.OptSteps
	return nil
}

// Trainer exposes the underlying zero.Trainer for internal callers that
// tune scheduling knobs between steps (bench harnesses, experiments).
func (e *Engine) Trainer() *zero.Trainer { return e.tr }

// Comm returns the engine's communicator (fault injection, elastic
// snapshot plumbing). Use only from the rank's own goroutine.
func (e *Engine) Comm() *comm.Comm { return e.c }

// Close releases the engine's stream workers.
func (e *Engine) Close() { e.tr.Close() }
