package engine

import (
	"errors"
	"testing"

	"repro/internal/model"
)

// The precision block parses from ds_config-style JSON, validates its
// knobs, and fp16_compute + activation_checkpoint is rejected as
// ErrPrecision before a world is ever spun up.
func TestPrecisionConfigParseAndValidate(t *testing.T) {
	c, err := ParseConfig([]byte(`{
		"model": {"layers": 2, "hidden": 16, "heads": 2, "vocab": 19, "seq": 8},
		"ranks": 2, "optimizer": {"type": "adam", "lr": 0.001},
		"global_batch": 4, "micro_batch": 4,
		"precision": {"fp16_compute": true, "initial_loss_scale": 4096, "loss_scale_window": 50}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if c.Precision == nil || !c.Precision.FP16Compute ||
		c.Precision.InitialLossScale != 4096 || c.Precision.LossScaleWindow != 50 {
		t.Fatalf("precision block did not round-trip: %+v", c.Precision)
	}
	if err := c.Validate(); err != nil {
		t.Fatalf("valid precision config rejected: %v", err)
	}

	bad := c
	bad.Checkpoint = true
	if err := bad.Validate(); !errors.Is(err, ErrPrecision) {
		t.Errorf("fp16_compute + activation_checkpoint: got %v, want ErrPrecision", err)
	}
	bad = c
	bad.Precision = &PrecisionConfig{FP16Compute: true, InitialLossScale: -1}
	if err := bad.Validate(); !errors.Is(err, ErrPrecision) {
		t.Errorf("negative initial_loss_scale: got %v, want ErrPrecision", err)
	}
	// Checkpointing alongside a precision block that does NOT enable fp16
	// compute stays legal.
	ok := c
	ok.Checkpoint = true
	ok.Precision = &PrecisionConfig{InitialLossScale: 1024}
	if err := ok.Validate(); err != nil {
		t.Errorf("checkpoint + non-compute precision block rejected: %v", err)
	}
}

// End-to-end: an fp16_compute engine trains, descends, and surfaces the
// dynamic loss scale and overflow-skip count through StepInfo. Seeding the
// scaler absurdly high forces early skips, so both fields are exercised
// away from their zero values.
func TestEngineFP16ComputeObservesLossScale(t *testing.T) {
	cfg := testEngineConfig()
	cfg.Precision = &PrecisionConfig{
		FP16Compute:      true,
		InitialLossScale: float64(uint64(1) << 28),
		LossScaleWindow:  100,
	}
	norm, err := cfg.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	ids, targets := model.SyntheticBatch(3, norm.GlobalBatch, norm.Model.Seq, norm.Model.Vocab)
	var infos []StepInfo
	var first, last float64
	_, err = Run(norm, func(e *Engine) {
		if e.Rank() == 0 {
			e.Observe(func(si StepInfo) { infos = append(infos, si) })
		}
		for s := 0; s < 30; s++ {
			l := e.TrainBatch(ids, targets)
			if e.Rank() == 0 {
				if s == 0 {
					first = l
				}
				last = l
			}
		}
		if e.Rank() == 0 && e.OverflowSteps() == 0 {
			t.Error("initial scale 2^28 never overflowed fp16")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 30 {
		t.Fatalf("observed %d boundaries, want 30", len(infos))
	}
	if infos[0].LossScale != float64(uint64(1)<<27) {
		t.Errorf("first boundary loss scale %g, want one backoff to 2^27", infos[0].LossScale)
	}
	if infos[0].OverflowSteps != 1 {
		t.Errorf("first boundary OverflowSteps = %d, want 1", infos[0].OverflowSteps)
	}
	lastInfo := infos[len(infos)-1]
	if lastInfo.LossScale >= float64(uint64(1)<<28) || lastInfo.LossScale <= 0 {
		t.Errorf("final loss scale %g did not settle below the seed", lastInfo.LossScale)
	}
	if lastInfo.OverflowSteps >= 30 || lastInfo.OverflowSteps <= 0 {
		t.Errorf("OverflowSteps = %d after 30 boundaries, want a settled positive count", lastInfo.OverflowSteps)
	}
	if last >= first {
		t.Errorf("fp16_compute engine did not descend after recovery: %v -> %v", first, last)
	}
	// The f32 engine reports zeroed precision fields.
	plain := testEngineConfig()
	pn, err := plain.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	_, err = Run(pn, func(e *Engine) {
		e.Observe(func(si StepInfo) {
			if si.LossScale != 0 || si.OverflowSteps != 0 {
				t.Errorf("f32 StepInfo carries precision fields: %+v", si)
			}
		})
		e.TrainBatch(ids, targets)
	})
	if err != nil {
		t.Fatal(err)
	}
}
