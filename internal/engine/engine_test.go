package engine

import (
	"errors"
	"testing"

	"repro/internal/comm"
	"repro/internal/model"
	"repro/internal/zero"
)

// testEngineConfig is a small accumulating stage-2 job used across the
// lifecycle tests.
func testEngineConfig() Config {
	c := DefaultConfig()
	c.Model = model.Config{Layers: 2, Hidden: 16, Heads: 2, Vocab: 19, Seq: 8}
	c.Ranks = 2
	c.Optimizer.LR = 1e-3
	c.GlobalBatch, c.MicroBatch, c.GradAccumSteps = 8, 4, 2
	c.BucketElems = 193
	return c
}

// The Step contract: the optimizer fires exactly on every
// GradAccumSteps-th call, BatchLoss materializes at the boundary, and the
// micro counter resets.
func TestEngineStepFiresOnBoundary(t *testing.T) {
	cfg := testEngineConfig()
	cfg.GradAccumSteps, cfg.MicroBatch, cfg.GlobalBatch = 3, 4, 12
	norm, err := cfg.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	ids, targets := model.SyntheticBatch(3, norm.MicroBatch, norm.Model.Seq, norm.Model.Vocab)
	_, err = Run(norm, func(e *Engine) {
		for b := 0; b < 2; b++ {
			for j := 0; j < norm.GradAccumSteps; j++ {
				loss := e.Forward(ids, targets)
				e.Backward()
				fired := e.Step()
				if want := j == norm.GradAccumSteps-1; fired != want {
					t.Errorf("boundary %d micro %d: Step fired=%v, want %v", b, j, fired, want)
				}
				if fired && e.Rank() == 0 {
					if e.BatchLoss() == 0 || loss == 0 {
						t.Error("BatchLoss not materialized at the boundary")
					}
					if e.MicroSteps() != 0 {
						t.Error("micro counter did not reset at the boundary")
					}
				}
			}
		}
		if e.Steps() != 2 {
			t.Errorf("Steps() = %d, want 2", e.Steps())
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TrainBatch == the explicit Forward/Backward/Step loop, and the engine
// actually trains (the boundary loss descends).
func TestEngineTrainBatchDescends(t *testing.T) {
	cfg := testEngineConfig()
	norm, err := cfg.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	ids, targets := model.SyntheticBatch(3, norm.GlobalBatch, norm.Model.Seq, norm.Model.Vocab)
	var first, last float64
	_, err = Run(norm, func(e *Engine) {
		for s := 0; s < 10; s++ {
			l := e.TrainBatch(ids, targets)
			if e.Rank() == 0 {
				if s == 0 {
					first = l
				}
				last = l
			}
		}
		// The accumulator is the owned partition, independent of k.
		if got, want := e.GradAccumElems(), e.Owned().Len(); got != want {
			t.Errorf("rank %d: GradAccumElems = %d, want %d", e.Rank(), got, want)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if last >= first {
		t.Errorf("accumulated training did not descend: %v -> %v", first, last)
	}
}

// Engine training with accumulation is race-clean under the overlapped +
// prefetched schedule (run with -race in the module's race gate): stage 3,
// all streams armed, two boundaries.
func TestEngineAccumOverlapPrefetchRace(t *testing.T) {
	cfg := testEngineConfig()
	cfg.Stage = "3"
	cfg.Overlap, cfg.Prefetch, cfg.PrefetchDepth = true, true, 2
	cfg.FP16 = true
	norm, err := cfg.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	ids, targets := model.SyntheticBatch(9, norm.GlobalBatch, norm.Model.Seq, norm.Model.Vocab)
	if _, err := Run(norm, func(e *Engine) {
		for s := 0; s < 2; s++ {
			e.TrainBatch(ids, targets)
		}
	}); err != nil {
		t.Fatal(err)
	}
}

// Step without a Forward/Backward pair is a programming error.
func TestEngineStepWithoutBackwardPanics(t *testing.T) {
	cfg := testEngineConfig()
	if _, err := Run(cfg, func(e *Engine) {
		defer func() {
			if recover() == nil {
				t.Error("expected panic from Step without Backward")
			}
		}()
		e.Step()
	}); err != nil {
		t.Fatal(err)
	}
}

// Initialize rejects a world whose size disagrees with the config.
func TestInitializeWorldMismatch(t *testing.T) {
	cfg := testEngineConfig() // says 2 ranks
	w := comm.NewWorld(4)
	w.Run(func(c *comm.Comm) {
		if _, err := Initialize(c, cfg); !errors.Is(err, ErrWorld) {
			t.Errorf("Initialize on wrong-sized world: err = %v, want ErrWorld", err)
		}
	})
}

// Run surfaces config errors instead of spawning a world.
func TestRunRejectsInvalidConfig(t *testing.T) {
	cfg := testEngineConfig()
	cfg.Optimizer.Type = "adafactor"
	if _, err := Run(cfg, func(*Engine) { t.Error("body must not run") }); !errors.Is(err, ErrOptimizer) {
		t.Errorf("Run error = %v, want ErrOptimizer", err)
	}
}

// Save/Load through the engine: an accumulating run checkpoints at a
// boundary and resumes bitwise (the trainer-level guarantee surfaced
// through the Engine API).
func TestEngineSaveLoadResume(t *testing.T) {
	cfg := testEngineConfig()
	norm, err := cfg.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	ids, targets := model.SyntheticBatch(3, norm.GlobalBatch, norm.Model.Seq, norm.Model.Vocab)

	var ref float64
	if _, err := Run(norm, func(e *Engine) {
		var l float64
		for s := 0; s < 5; s++ {
			l = e.TrainBatch(ids, targets)
		}
		if e.Rank() == 0 {
			ref = l
		}
	}); err != nil {
		t.Fatal(err)
	}

	var blob []byte
	if _, err := Run(norm, func(e *Engine) {
		for s := 0; s < 2; s++ {
			e.TrainBatch(ids, targets)
		}
		if snap := e.Save(); snap != nil {
			blob, _ = snap.Encode()
		}
	}); err != nil {
		t.Fatal(err)
	}

	var resumed float64
	if _, err := Run(norm, func(e *Engine) {
		snap, err := zero.DecodeSnapshot(blob)
		if err != nil {
			t.Error(err)
			return
		}
		if err := e.Load(snap); err != nil {
			t.Error(err)
			return
		}
		var l float64
		for s := 0; s < 3; s++ {
			l = e.TrainBatch(ids, targets)
		}
		if e.Rank() == 0 {
			resumed = l
		}
	}); err != nil {
		t.Fatal(err)
	}
	if resumed != ref {
		t.Errorf("resumed boundary loss %.17g != uninterrupted %.17g", resumed, ref)
	}
}

// zerotrain's conversion to the stream loop must not move the synthetic
// path by a single bit: TrainStream over a SyntheticStream replays
// TrainBatch on the materialized batch exactly.
func TestTrainStreamMatchesTrainBatchBitwise(t *testing.T) {
	cfg := testEngineConfig()
	norm, err := cfg.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	const steps = 8
	run := func(stream bool) []float64 {
		losses := make([]float64, 0, steps)
		_, err := Run(norm, func(e *Engine) {
			ids, targets := model.SyntheticBatch(norm.Seed, norm.GlobalBatch, norm.Model.Seq, norm.Model.Vocab)
			batcher := model.NewSyntheticStream(norm.Seed, norm.GlobalBatch, norm.MicroBatch, norm.Model.Seq, norm.Model.Vocab)
			for s := 0; s < steps; s++ {
				var l float64
				if stream {
					l = e.TrainStream(batcher)
				} else {
					l = e.TrainBatch(ids, targets)
				}
				if e.Rank() == 0 {
					losses = append(losses, l)
				}
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return losses
	}
	batch, stream := run(false), run(true)
	for i := range batch {
		if batch[i] != stream[i] {
			t.Fatalf("step %d: TrainBatch loss %.17g != TrainStream loss %.17g", i+1, batch[i], stream[i])
		}
	}
}

// OnBoundary hooks fire at every boundary, after the observer, in
// registration order, and Load adopts the snapshot's step clock while
// rejecting mid-accumulation snapshots.
func TestEngineBoundaryHooksAndLoadClock(t *testing.T) {
	cfg := testEngineConfig()
	norm, err := cfg.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	ids, targets := model.SyntheticBatch(3, norm.GlobalBatch, norm.Model.Seq, norm.Model.Vocab)
	var order [][]string
	_, err = Run(norm, func(e *Engine) {
		r := e.Rank()
		var log []string
		e.Observe(func(si StepInfo) { log = append(log, "observe") })
		e.OnBoundary(func(step int) { log = append(log, "hookA") })
		e.OnBoundary(func(step int) {
			log = append(log, "hookB")
			// Boundary hooks may run collectives — the elastic snapshotter's
			// contract. A barrier is the simplest collective.
			e.Trainer().Scheduler().Barrier()
		})
		for s := 0; s < 2; s++ {
			e.TrainBatch(ids, targets)
		}

		snap := e.Save()
		snap = zero.BroadcastSnapshot(e.Comm(), snap)
		if err := e.Load(snap); err != nil {
			t.Error(err)
		}
		if e.Steps() != 2 {
			t.Errorf("rank %d: Load set Steps()=%d, want 2 (snapshot's clock)", r, e.Steps())
		}
		bad := &zero.Snapshot{AccumMicros: 1}
		if err := e.Load(bad); err == nil {
			t.Errorf("rank %d: mid-accumulation snapshot accepted by engine Load", r)
		}
		if r == 0 {
			order = append(order, log)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"observe", "hookA", "hookB", "observe", "hookA", "hookB"}
	if len(order) != 1 || len(order[0]) != len(want) {
		t.Fatalf("boundary log %v, want %v", order, want)
	}
	for i := range want {
		if order[0][i] != want[i] {
			t.Fatalf("boundary log %v, want %v", order[0], want)
		}
	}
}

// RunOnFallible contains a mid-training rank death: the killed rank and the
// survivors all return errors instead of deadlocking or crashing the
// process, and a healthy run reports no errors at all.
func TestEngineRunOnFallible(t *testing.T) {
	cfg := testEngineConfig()
	norm, err := cfg.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	ids, targets := model.SyntheticBatch(3, norm.GlobalBatch, norm.Model.Seq, norm.Model.Vocab)

	w := comm.NewWorld(norm.Ranks)
	errs, err := RunOnFallible(w, norm, func(e *Engine) {
		for s := 0; s < 3; s++ {
			e.TrainBatch(ids, targets)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for r, e := range errs {
		if e != nil {
			t.Errorf("healthy run: rank %d returned %v", r, e)
		}
	}

	w2 := comm.NewWorld(norm.Ranks)
	w2.EnableFaultInjection()
	w2.FailRankAfterOps(1, 40)
	errs, err = RunOnFallible(w2, norm, func(e *Engine) {
		for s := 0; s < 50; s++ {
			e.TrainBatch(ids, targets)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	var killed comm.Killed
	if errs[1] == nil || !errors.As(errs[1], &killed) || killed.Rank != 1 {
		t.Errorf("rank 1 should die Killed, got %v", errs[1])
	}
	for r, e := range errs {
		if e == nil {
			t.Errorf("rank %d survived a dead world (deadlock risk): all ranks must error out", r)
		}
	}
}
