package engine

import (
	"encoding/json"
	"errors"
	"path/filepath"
	"strings"
	"testing"
)

// Every failure class yields its own wrapped sentinel — and only that one —
// so callers can dispatch on errors.Is without string matching.
func TestValidateSentinelErrors(t *testing.T) {
	sentinels := []error{ErrJSON, ErrModel, ErrWorld, ErrStage, ErrOptimizer, ErrBatch, ErrTopology, ErrSchedule, ErrData}
	mut := func(f func(*Config)) Config {
		c := DefaultConfig()
		// Data-section cases use relative corpus paths; anchor them so the
		// intended validation fires rather than the no-base-dir rejection
		// (which has its own cases below).
		c.BaseDir = "."
		f(&c)
		return c
	}
	cases := []struct {
		name string
		cfg  Config
		want error
	}{
		{"zero ranks", mut(func(c *Config) { c.Ranks = 0 }), ErrWorld},
		{"negative ranks", mut(func(c *Config) { c.Ranks = -2 }), ErrWorld},
		{"hidden not divisible by heads", mut(func(c *Config) { c.Model.Hidden = 65 }), ErrModel},
		{"zero model dims", mut(func(c *Config) { c.Model.Layers = 0 }), ErrModel},
		{"unknown stage name", mut(func(c *Config) { c.Stage = "zero" }), ErrStage},
		{"stage out of range", mut(func(c *Config) { c.Stage = "4" }), ErrStage},
		{"unknown optimizer", mut(func(c *Config) { c.Optimizer.Type = "adagrad" }), ErrOptimizer},
		{"zero lr", mut(func(c *Config) { c.Optimizer.LR = 0 }), ErrOptimizer},
		{"momentum out of range", mut(func(c *Config) { c.Optimizer.Momentum = 1 }), ErrOptimizer},
		{"negative clip", mut(func(c *Config) { c.GradClip = -1 }), ErrOptimizer},
		{"accum times micro not global", mut(func(c *Config) {
			c.GlobalBatch, c.MicroBatch, c.GradAccumSteps = 8, 4, 3
		}), ErrBatch},
		{"micro not dividing global", mut(func(c *Config) {
			c.GlobalBatch, c.MicroBatch, c.GradAccumSteps = 8, 3, 0
		}), ErrBatch},
		{"accum not dividing global", mut(func(c *Config) {
			c.GlobalBatch, c.MicroBatch, c.GradAccumSteps = 8, 0, 3
		}), ErrBatch},
		{"micro not divisible by ranks", mut(func(c *Config) {
			c.GlobalBatch, c.MicroBatch, c.GradAccumSteps = 12, 6, 2
		}), ErrBatch},
		{"no batch at all", mut(func(c *Config) {
			c.GlobalBatch, c.MicroBatch, c.GradAccumSteps = 0, 0, 0
		}), ErrBatch},
		{"negative batch", mut(func(c *Config) { c.GlobalBatch = -8 }), ErrBatch},
		{"node size not tiling ranks", mut(func(c *Config) { c.NodeSize = 3 }), ErrTopology},
		{"negative node size", mut(func(c *Config) { c.NodeSize = -2 }), ErrTopology},
		{"negative bucket", mut(func(c *Config) { c.BucketElems = -1 }), ErrSchedule},
		{"negative queue depth", mut(func(c *Config) { c.QueueDepth = -1 }), ErrSchedule},
		{"negative prefetch depth", mut(func(c *Config) { c.PrefetchDepth = -1 }), ErrSchedule},
		{"data without path", mut(func(c *Config) { c.Data = &DataConfig{} }), ErrData},
		{"unknown tokenizer", mut(func(c *Config) {
			c.Data = &DataConfig{Path: "x.txt", Tokenizer: "wordpiece"}
		}), ErrData},
		{"vocab_size with byte tokenizer", mut(func(c *Config) {
			c.Data = &DataConfig{Path: "x.txt", VocabSize: 300}
		}), ErrData},
		{"bpe budget below floor", mut(func(c *Config) {
			c.Model.Vocab = 512
			c.Data = &DataConfig{Path: "x.txt", Tokenizer: "bpe", VocabSize: 200}
		}), ErrData},
		{"seq_len beyond model", mut(func(c *Config) {
			c.Model.Vocab = 300
			c.Data = &DataConfig{Path: "x.txt", SeqLen: 1000}
		}), ErrData},
		{"seq_len too short", mut(func(c *Config) {
			c.Model.Vocab = 300
			c.Data = &DataConfig{Path: "x.txt", SeqLen: 1}
		}), ErrData},
		{"negative shuffle buffer", mut(func(c *Config) {
			c.Model.Vocab = 300
			c.Data = &DataConfig{Path: "x.txt", ShuffleBuffer: -1}
		}), ErrData},
		{"model vocab below byte floor", mut(func(c *Config) {
			c.Data = &DataConfig{Path: "x.txt"} // DefaultConfig vocab 101 < 257
		}), ErrData},
		{"model vocab below bpe budget", mut(func(c *Config) {
			c.Model.Vocab = 400
			c.Data = &DataConfig{Path: "x.txt", Tokenizer: "bpe", VocabSize: 500}
		}), ErrData},
		{"relative corpus path without base dir", mut(func(c *Config) {
			c.BaseDir = ""
			c.Model.Vocab = 300
			c.Data = &DataConfig{Path: "x.txt"}
		}), ErrData},
		{"relative vocab path without base dir", mut(func(c *Config) {
			c.BaseDir = ""
			c.Model.Vocab = 300
			c.Data = &DataConfig{Path: "/abs/x.txt", Tokenizer: "vocab.json"}
		}), ErrData},
	}
	for _, tc := range cases {
		err := tc.cfg.Validate()
		if err == nil {
			t.Errorf("%s: Validate() = nil, want %v", tc.name, tc.want)
			continue
		}
		for _, s := range sentinels {
			if is, want := errors.Is(err, s), s == tc.want; is != want {
				t.Errorf("%s: errors.Is(%v, %v) = %v, want %v", tc.name, err, s, is, want)
			}
		}
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Errorf("DefaultConfig must validate, got %v", err)
	}
}

// Malformed JSON in all its flavors is ErrJSON: syntax errors, unknown
// fields (ds_config typos), wrong types and trailing garbage.
func TestParseConfigMalformedJSON(t *testing.T) {
	for _, tc := range []struct {
		name, in string
	}{
		{"syntax error", `{"ranks": 4,}`},
		{"unknown field", `{"ranks": 4, "zero_optimization": {"stage": 2}}`},
		{"wrong type", `{"ranks": "four"}`},
		{"bad stage type", `{"stage": [2]}`},
		{"trailing garbage", `{"ranks": 4} {"ranks": 8}`},
		{"not an object", `42 43`},
	} {
		if _, err := ParseConfig([]byte(tc.in)); !errors.Is(err, ErrJSON) {
			t.Errorf("%s: ParseConfig error = %v, want ErrJSON", tc.name, err)
		}
	}
}

// The batch geometry follows the DeepSpeed contract: any one of
// global/micro/accum derives from the other two; all three must agree.
func TestBatchGeometryDerivation(t *testing.T) {
	for _, tc := range []struct {
		name              string
		global, micro, k  int
		wantGlobal, wantK int
		wantMicro         int
	}{
		{"global only", 8, 0, 0, 8, 1, 8},
		{"global+micro derive k", 16, 4, 0, 16, 4, 4},
		{"global+k derive micro", 16, 0, 2, 16, 2, 8},
		{"micro+k derive global", 0, 4, 3, 12, 3, 4},
		{"all three consistent", 16, 8, 2, 16, 2, 8},
	} {
		c := DefaultConfig()
		c.GlobalBatch, c.MicroBatch, c.GradAccumSteps = tc.global, tc.micro, tc.k
		norm, err := c.Normalized()
		if err != nil {
			t.Errorf("%s: %v", tc.name, err)
			continue
		}
		if norm.GlobalBatch != tc.wantGlobal || norm.GradAccumSteps != tc.wantK || norm.MicroBatch != tc.wantMicro {
			t.Errorf("%s: got (global %d, micro %d, k %d), want (%d, %d, %d)", tc.name,
				norm.GlobalBatch, norm.MicroBatch, norm.GradAccumSteps,
				tc.wantGlobal, tc.wantMicro, tc.wantK)
		}
	}
}

// The data section fills its defaults from the rest of the config: the
// sequence length from the model, the shuffle seed from the single
// top-level seed (one field reproduces init, synthetic data and corpus
// order), and the BPE budget from its documented default — without
// mutating the caller's config.
func TestDataConfigDefaults(t *testing.T) {
	c := DefaultConfig()
	c.BaseDir = "."
	c.Model.Vocab = 600
	c.Seed = 99
	c.Data = &DataConfig{Path: "corpus.txt", Tokenizer: "bpe"}
	norm, err := c.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	d := norm.Data
	if d.SeqLen != c.Model.Seq {
		t.Errorf("seq_len default = %d, want model seq %d", d.SeqLen, c.Model.Seq)
	}
	if d.Seed != 99 {
		t.Errorf("data seed = %d, want top-level seed 99", d.Seed)
	}
	if d.VocabSize != 512 {
		t.Errorf("bpe vocab default = %d, want 512", d.VocabSize)
	}
	if d.Tokenizer != "bpe" {
		t.Errorf("tokenizer = %q", d.Tokenizer)
	}
	if c.Data.SeqLen != 0 || c.Data.Seed != 0 {
		t.Error("Normalized mutated the caller's data section")
	}
	// An explicit data seed wins over the top-level one.
	c.Data = &DataConfig{Path: "corpus.txt", Seed: 5}
	if norm, err = c.Normalized(); err != nil {
		t.Fatal(err)
	}
	if norm.Data.Seed != 5 {
		t.Errorf("explicit data seed = %d, want 5", norm.Data.Seed)
	}
}

// Stage accepts both JSON numbers and paper names.
func TestStageSpecJSONForms(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want string
	}{
		{`{"stage": 3}`, "Pos+g+p"},
		{`{"stage": "os+g"}`, "Pos+g"},
		{`{"stage": "ddp"}`, "DP"},
		{`{}`, "DP"}, // omitted → stage 0, the DeepSpeed default
	} {
		c, err := ParseConfig([]byte(tc.in))
		if err != nil {
			t.Fatalf("%s: %v", tc.in, err)
		}
		st, err := c.Stage.Parse()
		if err != nil || st.String() != tc.want {
			t.Errorf("%s: stage %v (err %v), want %s", tc.in, st, err, tc.want)
		}
	}
}

// A config survives a marshal/parse round trip and still validates —
// DefaultConfig is itself a committable artifact.
func TestConfigMarshalRoundTrip(t *testing.T) {
	orig := DefaultConfig()
	blob, err := json.Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseConfig(blob)
	if err != nil {
		t.Fatal(err)
	}
	if back != orig {
		t.Errorf("round trip changed the config:\n  orig %+v\n  back %+v", orig, back)
	}
	if err := back.Validate(); err != nil {
		t.Error(err)
	}
}

// Every committed example config must load strictly and validate — the CI
// config-roundtrip gate (a stale config cannot silently rot in the tree).
func TestCommittedConfigsValidate(t *testing.T) {
	var paths []string
	for _, pattern := range []string{"../../examples/*/config*.json", "../../cmd/*/config.json"} {
		m, err := filepath.Glob(pattern)
		if err != nil {
			t.Fatal(err)
		}
		paths = append(paths, m...)
	}
	if len(paths) == 0 {
		t.Fatal("no committed configs found (expected at least examples/quickstart/config.json)")
	}
	foundQuickstart := false
	for _, p := range paths {
		cfg, err := LoadConfig(p)
		if err != nil {
			t.Errorf("%s: %v", p, err)
			continue
		}
		if err := cfg.Validate(); err != nil {
			t.Errorf("%s: %v", p, err)
		}
		if strings.Contains(p, "quickstart") {
			foundQuickstart = true
		}
	}
	if !foundQuickstart {
		t.Error("examples/quickstart/config.json missing")
	}
}
