package engine

import (
	"math"
	"testing"

	"repro/internal/losscurve"
)

// runCorpusTraining trains the checked-in examples/corpus job for `steps`
// optimizer steps through the streaming data path and returns rank 0's
// per-step boundary losses. Every rank opens its own Loader; the streams
// are seeded, so all ranks derive the same global batch sequence.
func runCorpusTraining(t *testing.T, steps int) []float64 {
	t.Helper()
	cfg, err := LoadConfig("../../examples/corpus/config.json")
	if err != nil {
		t.Fatal(err)
	}
	norm, err := cfg.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	losses := make([]float64, 0, steps)
	_, err = Run(norm, func(e *Engine) {
		ld, lerr := OpenData(norm)
		if lerr != nil {
			t.Error(lerr)
			return
		}
		defer ld.Close()
		for s := 0; s < steps; s++ {
			l := e.TrainStream(ld)
			if e.Rank() == 0 {
				losses = append(losses, l)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(losses) != steps {
		t.Fatalf("collected %d losses, want %d", len(losses), steps)
	}
	return losses
}

// The ISSUE acceptance criterion: `zerotrain -config examples/corpus/config.json`
// trains end-to-end on a real text file, the loss descends on trend, and a
// golden pins the trajectory bit for bit (modulo FMA contraction, hence the
// 1e-9 relative tolerance shared with the stage-equivalence goldens).
func TestCorpusTrainingGolden(t *testing.T) {
	golden := []float64{
		6.2286656575114563,
		6.2323105253373896,
		6.1790784039375648,
		6.1093884646671004,
		6.0669298406480578,
		6.0286071325838932,
		5.9545612901636353,
		5.9177407029340827,
		5.8461921336057383,
		5.7579306156310013,
	}
	got := runCorpusTraining(t, len(golden))
	for i, want := range golden {
		if math.Abs(got[i]-want) > 1e-9*math.Abs(want) {
			t.Errorf("step %d: loss %.17g, want %.17g", i+1, got[i], want)
		}
	}
	if slope := losscurve.FitSlope(got); slope >= 0 {
		t.Errorf("corpus loss trajectory does not descend on trend: slope %g, losses %v", slope, got)
	}
}

// Two independent processes-worth of state — fresh engine, fresh loaders,
// freshly trained tokenizer — replay the identical trajectory bitwise.
func TestCorpusTrainingDeterministic(t *testing.T) {
	a := runCorpusTraining(t, 6)
	b := runCorpusTraining(t, 6)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("step %d: run A loss %.17g != run B loss %.17g", i+1, a[i], b[i])
		}
	}
}
