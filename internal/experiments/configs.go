package experiments

import (
	"fmt"

	"repro/internal/perfmodel"
	"repro/internal/zero"
)

// CConfig is one of the paper's Table 3 ZeRO configurations C1-C5.
type CConfig struct {
	Name  string
	Stage zero.Stage
	Pa    bool
	PaCPU bool
}

// Configs lists Table 3: every row includes CB and MD.
var Configs = []CConfig{
	{"C1", zero.StageOS, false, false},
	{"C2", zero.StageOS, true, false},
	{"C3", zero.StageOSG, false, false},
	{"C4", zero.StageOSG, true, false},
	{"C5", zero.StageOSG, true, true},
}

func (c CConfig) residual(batch, mp int) zero.ResidualConfig {
	return zero.ResidualConfig{
		Batch: batch, Seq: 1024, MP: mp,
		Pa: c.Pa, PaCPU: c.PaCPU, CB: true, MD: true,
	}
}

// Fig6 reproduces Figure 6: the largest trainable model under each
// configuration C1-C5 at fixed batch size and MP = 16 (128 GPUs → Nd = 8).
func Fig6() Table {
	const (
		budget = 32 * zero.GB
		mp     = 16
		nd     = 8
		batch  = 16
	)
	var rows [][]string
	for _, c := range Configs {
		max := zero.MaxMeasuredParams(budget, c.Stage, nd, c.residual(batch, mp))
		rows = append(rows, []string{
			c.Name, c.Stage.String(), flag(c.Pa), flag(c.PaCPU), fmtB(max),
		})
	}
	return Table{
		Title: "Figure 6: max model size under ZeRO configurations C1-C5 (MP=16, batch 16)",
		Note: "Paper: 40B (C1) -> 60B (C2, Pa) -> ... -> 140B (C4, Pos+g) -> 150B (C5, Pa+cpu);\n" +
			"the ordering C1 < C2 <= C3 < C4 < C5 is the reproduced shape.",
		Header: []string{"Config", "ZeRO-DP", "Pa", "Pa+cpu", "Max model"},
		Rows:   rows,
	}
}

// maxBatchFor finds the largest per-replica batch (≤ cap) that fits in the
// device budget for a config; 0 means even batch 1 OOMs.
func maxBatchFor(c CConfig, shape zero.ShapeInfo, mp, nd int, budget float64, cap int) int {
	best := 0
	for b := 1; b <= cap; b++ {
		states := zero.ModelStateBytes(shape.Params, c.Stage, nd) / float64(mp)
		if states+zero.ResidualBytes(shape, c.residual(b, mp)) <= budget*(1-0.03) {
			best = b
		}
	}
	return best
}

// Fig8 reproduces Figure 8: best achievable throughput per GPU under
// C1-C5 for the 60B and 170B models on 400 GPUs. Each config runs at the
// largest batch its memory affords; C5 trades some throughput for memory at
// 60B but is the only configuration that runs 170B at a useful batch size.
func Fig8() Table {
	const (
		budget = 32 * zero.GB
		mp     = 16
		nd     = 25 // 400 GPUs / MP 16
	)
	models := []struct {
		label  string
		layers int
		hidden int
		heads  int
	}{
		{"60B", 75, 8192, 32},
		{"170B", 212, 8192, 64},
	}
	var rows [][]string
	for _, m := range models {
		pshape := perfmodel.GPT2Like(m.layers, m.hidden, m.heads)
		shape := zero.ShapeInfo{Params: pshape.Params(), Layers: m.layers, Hidden: m.hidden}
		for _, c := range Configs {
			batch := maxBatchFor(c, shape, mp, nd, budget, 64)
			if batch == 0 {
				rows = append(rows, []string{m.label, c.Name, "OOM", "-"})
				continue
			}
			cfg := perfmodel.Config{
				Shape: pshape, MP: mp, DP: nd, MicroBatch: batch,
				ZeRO: perfmodel.ZeROConfig{Stage: stageNum(c.Stage), Pa: c.Pa, PaCPU: c.PaCPU},
			}
			b := perfmodel.Estimate(hw, cfg)
			rows = append(rows, []string{
				m.label, c.Name, fmt.Sprint(batch), fmtF(b.TFlopsPerGPU, 1),
			})
		}
	}
	return Table{
		Title: "Figure 8: best throughput per GPU under C1-C5 (400 GPUs)",
		Note: "Each config runs at its max feasible batch. Paper shape: throughput rises\n" +
			"C1->C4 with freed memory; C5 drops at 60B (CPU traffic) but is what makes\n" +
			"170B trainable at a useful batch.",
		Header: []string{"Model", "Config", "Max batch", "TF/GPU"},
		Rows:   rows,
	}
}

func stageNum(s zero.Stage) int {
	switch s {
	case zero.StageOS:
		return 1
	case zero.StageOSG:
		return 2
	case zero.StageOSGP:
		return 3
	default:
		return 0
	}
}

func flag(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}
