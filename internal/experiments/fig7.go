package experiments

import (
	"errors"

	"repro/internal/device"
	"repro/internal/zero"
)

// Fig7 reproduces Figure 7: the maximum memory cached by the allocator
// ("max cache allocated", PyTorch's torch.cuda.max_memory_cached) during a
// training iteration of the 40B and 100B models under configurations C1-C5,
// measured by replaying each configuration's allocation trace against the
// simulated caching allocator in internal/device.
func Fig7() Table {
	const (
		mp = 16
		nd = 25 // 400 GPUs (Table 8)
	)
	models := []struct {
		label  string
		layers int
		hidden int
		batch  int
	}{
		{"40B", 50, 8192, 16},   // Table 8 row: 40B, 50 layers, h=8192, batch 16
		{"100B", 125, 8192, 32}, // Table 8 row: 100B, 125 layers, h=8192, batch 32
	}
	var rows [][]string
	for _, m := range models {
		shape := zero.ShapeForParams(paramsFor(m.layers, m.hidden))
		shape.Layers, shape.Hidden = m.layers, m.hidden
		for _, c := range Configs {
			peak, err := SimulateIterationPeak(shape, c, m.batch, mp, nd, int64(32*zero.GB))
			cell := fmtF(peak/zero.GB, 1)
			if err != nil {
				cell = "OOM"
			}
			rows = append(rows, []string{m.label, c.Name, cell})
		}
	}
	return Table{
		Title: "Figure 7: max cache allocated per GPU (GB), allocator-trace replay",
		Note: "Cached memory falls C1->C2 (Pa shrinks checkpoints); C4->C5 plateaus for\n" +
			"40B but falls for 100B, whose activations dominate (paper §10.5). Configs\n" +
			"whose trace cannot fit report OOM (consistent with Figure 6's max sizes).",
		Header: []string{"Model", "Config", "Max cached (GB)"},
		Rows:   rows,
	}
}

func paramsFor(layers, hidden int) int64 {
	h := int64(hidden)
	return int64(layers)*(12*h*h+13*h) + (50257+1024)*h
}

// SimulateIterationPeak replays one training iteration's allocation
// sequence for a configuration on a fresh simulated device and returns the
// peak reserved ("cached") bytes. The trace follows §6.3's lifetime
// analysis: model states are allocated once and live forever; per layer the
// forward pass allocates short-lived working activations and a long-lived
// checkpoint (routed to an MD contiguous region, since every Table 3 config
// includes MD); the backward pass re-allocates working memory and transient
// gradient buffers; constant-size fused buffers (CB) come and go around the
// reduction.
func SimulateIterationPeak(shape zero.ShapeInfo, c CConfig, batch, mp, nd int, capacity int64) (float64, error) {
	d := device.New(capacity)

	// Persistent model states.
	states := int64(zero.ModelStateBytes(shape.Params, c.Stage, nd)) / int64(mp)
	if _, err := d.Alloc(states); err != nil {
		return 0, err
	}

	// MD region sized for all checkpoints of the iteration.
	ckptPerLayer := int64(2*batch*1024) * int64(shape.Hidden)
	if c.Pa {
		ckptPerLayer /= int64(mp)
	}
	if c.PaCPU {
		ckptPerLayer = 0
	}
	var region *device.Region
	if ckptPerLayer > 0 {
		var err error
		region, err = d.NewRegion(ckptPerLayer * int64(shape.Layers))
		if err != nil {
			return 0, err
		}
	}

	working := int64(12*batch*1024) * int64(shape.Hidden) * 2 / int64(mp)
	gradLayer := 2 * (shape.Params / int64(shape.Layers)) / int64(mp) // fp16 per-layer grads

	// Forward.
	for l := 0; l < shape.Layers; l++ {
		wb, err := d.Alloc(working)
		if err != nil {
			return 0, err
		}
		if region != nil {
			if _, err := region.Alloc(ckptPerLayer); err != nil {
				return 0, err
			}
		}
		d.Free(wb)
	}

	// Backward: recompute working set + transient per-layer gradients.
	for l := shape.Layers - 1; l >= 0; l-- {
		wb, err := d.Alloc(working)
		if err != nil {
			return 0, err
		}
		gb, err := d.Alloc(gradLayer)
		if err != nil {
			return 0, err
		}
		d.Free(wb)
		d.Free(gb) // reduced into the owned partition, bucket released (§5.2)
	}

	// CB fused buffer around the gradient reduction.
	fb, err := d.Alloc(256 << 20)
	if err != nil {
		return 0, err
	}
	d.Free(fb)

	if err := d.Validate(); err != nil {
		return 0, errors.New("allocator invariant violation: " + err.Error())
	}
	return float64(d.Stats().PeakReserved), nil
}
