package experiments

import (
	"fmt"

	"repro/internal/perfmodel"
	"repro/internal/zero"
)

// hw is the paper's testbed profile used by all throughput experiments.
var hw = perfmodel.DGX2()

func specToConfig(r RunSpec, z perfmodel.ZeROConfig) perfmodel.Config {
	return perfmodel.Config{
		Shape:      perfmodel.GPT2Like(r.Layers, r.Hidden, r.Heads),
		MP:         r.MP,
		DP:         r.DP(),
		MicroBatch: r.Batch,
		ZeRO:       z,
	}
}

// Fig2 reproduces Figure 2: per-GPU throughput of ZeRO-100B (Pos+g + Pa)
// versus the Megatron-LM baseline across model sizes, and the speedup.
func Fig2() Table {
	var rows [][]string
	for i, zr := range Fig2ZeRO {
		br := Fig2Baseline[i]
		zb := perfmodel.Estimate(hw, specToConfig(zr, perfmodel.ZeROConfig{Stage: 2, Pa: zr.MP > 1}))
		bb := perfmodel.Estimate(hw, specToConfig(br, perfmodel.ZeROConfig{Stage: 0}))
		rows = append(rows, []string{
			zr.Label,
			fmtF(zb.TFlopsPerGPU, 1),
			fmtF(bb.TFlopsPerGPU, 1),
			fmtF(zb.TFlopsPerGPU/bb.TFlopsPerGPU, 1) + "x",
			fmt.Sprintf("MP %d vs %d", zr.MP, br.MP),
		})
	}
	return Table{
		Title: "Figure 2: ZeRO vs Megatron baseline throughput per GPU (TFlops)",
		Note: "ZeRO keeps MP within a node; the baseline must span nodes beyond 40B\n" +
			"(NVSwitch -> InfiniBand) and collapses.",
		Header: []string{"Model", "ZeRO TF/GPU", "Baseline TF/GPU", "Speedup", "Parallelism"},
		Rows:   rows,
	}
}

// Fig3 reproduces Figure 3: superlinear scalability of the 60B model from
// 64 to 400 GPUs. Aggregate throughput more than doubles when GPUs double
// because the per-GPU memory freed by Pos+g affords bigger batches.
func Fig3() Table {
	var rows [][]string
	var basePerGPU float64
	for i, r := range Fig3Scaling {
		b := perfmodel.Estimate(hw, specToConfig(r, perfmodel.ZeROConfig{Stage: 2, Pa: true}))
		agg := b.TFlopsPerGPU * float64(r.GPUs) / 1e3
		if i == 0 {
			basePerGPU = b.TFlopsPerGPU
		}
		perfect := basePerGPU * float64(r.GPUs) / 1e3
		rows = append(rows, []string{
			fmt.Sprint(r.GPUs),
			fmt.Sprint(r.Batch),
			fmtF(b.TFlopsPerGPU, 1),
			fmtF(agg, 1),
			fmtF(perfect, 1),
			fmtF(agg/perfect, 2) + "x",
		})
	}
	return Table{
		Title: "Figure 3: superlinear scalability, 60B model (Pos+g)",
		Note:  "'vs perfect' > 1.00x means superlinear: per-GPU throughput grows with scale.",
		Header: []string{"GPUs", "Batch/replica", "TF/GPU", "Aggregate PFlops",
			"Perfect-scaling PFlops", "vs perfect"},
		Rows: rows,
	}
}

// Fig4 reproduces Figure 4: the democratization result — ZeRO-DP (Pos+g,
// no model parallelism, no model refactoring) trains up to 13B parameters
// on 128 GPUs at >40 TFlops/GPU, while baseline DP runs out of memory
// beyond ~1.4B.
func Fig4() Table {
	const budget = 32 * zero.GB
	var rows [][]string
	for _, r := range Fig4Models {
		shape := perfmodel.GPT2Like(r.Layers, r.Hidden, r.Heads)
		psi := shape.Params()
		states := zero.ModelStateBytes(psi, zero.StageOSG, r.DP())
		rc := zero.ResidualConfig{Batch: r.Batch, Seq: 1024, MP: 1, CB: true, MD: true}
		resid := zero.ResidualBytes(zero.ShapeInfo{Params: psi, Layers: r.Layers, Hidden: r.Hidden}, rc)
		fits := states+resid <= budget
		status := "OK"
		tf := "-"
		if fits {
			b := perfmodel.Estimate(hw, specToConfig(r, perfmodel.ZeROConfig{Stage: 2}))
			tf = fmtF(b.TFlopsPerGPU, 1)
		} else {
			status = "OOM"
		}
		// Baseline DP replicates 16Ψ: OOM for everything past ~1.4B.
		baseStates := zero.ModelStateBytes(psi, zero.StageDP, r.DP())
		baseStatus := "OOM"
		baseTF := "-"
		if baseStates+resid <= budget {
			baseStatus = "OK"
			bb := perfmodel.Estimate(hw, specToConfig(r, perfmodel.ZeROConfig{Stage: 0}))
			baseTF = fmtF(bb.TFlopsPerGPU, 1)
		}
		rows = append(rows, []string{
			r.Label, fmtB(psi), tf, status, baseTF, baseStatus,
		})
	}
	for _, r := range Fig4Baseline {
		shape := perfmodel.GPT2Like(r.Layers, r.Hidden, r.Heads)
		bb := perfmodel.Estimate(hw, specToConfig(r, perfmodel.ZeROConfig{Stage: 0}))
		rows = append(rows, []string{
			r.Label + " (baseline cfg)", fmtB(shape.Params()), "-", "-",
			fmtF(bb.TFlopsPerGPU, 1), "OK",
		})
	}
	return Table{
		Title: "Figure 4: max model throughput with ZeRO-DP only (no MP), 128 GPUs",
		Note:  "Baseline DP (replicated 16Ψ) OOMs beyond ~1.4B; ZeRO Pos+g reaches 13B.",
		Header: []string{"Model", "Params", "ZeRO TF/GPU", "ZeRO fits",
			"Baseline TF/GPU", "Baseline fits"},
		Rows: rows,
	}
}
