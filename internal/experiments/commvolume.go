package experiments

import (
	"fmt"

	"repro/internal/comm"
	"repro/internal/ddp"
	"repro/internal/model"
	"repro/internal/mp"
	"repro/internal/zero"
)

// CommVolume reproduces the §7-§8 communication analysis with *measured*
// traffic: it trains a small real model under baseline DDP and ZeRO stages
// 1-3 on in-process worlds, counts every element each rank sends through
// the collectives, and compares against the closed forms (2Ψ for DP and
// Pos/Pos+g, 3Ψ for Pos+g+p; Pa ≤ 10% of Megatron MP traffic).
func CommVolume() Table {
	cfg := model.Config{Layers: 3, Hidden: 32, Heads: 4, Vocab: 31, Seq: 8}
	psi := int64(cfg.ParamCount())
	const n, batch = 4, 4
	ids, targets := model.SyntheticBatch(1, batch, cfg.Seq, cfg.Vocab)

	var rows [][]string
	addRow := func(name string, measured int64, psiMult float64) {
		// Per-rank measured average; theory uses the (N-1)/N ring factor.
		perRank := float64(measured) / float64(n)
		theory := psiMult * float64(psi) * float64(n-1) / float64(n)
		rows = append(rows, []string{
			name,
			fmt.Sprintf("%.0f", perRank),
			fmt.Sprintf("%.0f", theory),
			fmtF(perRank/float64(psi), 2) + "Ψ",
			fmtF(psiMult*float64(n-1)/float64(n), 2) + "Ψ",
		})
	}

	// Baseline DDP.
	{
		w := comm.NewWorld(n)
		w.Run(func(c *comm.Comm) {
			tr := ddp.New(c, cfg, 1, 1e-3)
			tr.BucketElems = 0
			tr.Step(ids, targets, batch)
		})
		addRow("DP all-reduce", w.TotalElemsSent(), 2)
	}
	// ZeRO stages.
	for _, st := range []zero.Stage{zero.StageOS, zero.StageOSG, zero.StageOSGP} {
		mult := 2.0
		if st == zero.StageOSGP {
			mult = 3.0
		}
		w := comm.NewWorld(n)
		w.Run(func(c *comm.Comm) {
			tr := zero.MustNew(c, cfg, zero.Options{Stage: st, LR: 1e-3, Seed: 1})
			tr.Step(ids, targets, batch)
		})
		addRow("ZeRO "+st.String(), w.TotalElemsSent(), mult)
	}

	// Pa overhead vs Megatron MP traffic (analytic §8 identity).
	paRatio := float64(mp.PaOverheadElems(16, 1024, 8192)) /
		float64(mp.BlockAllReduceElems(16, 1024, 8192))
	rows = append(rows, []string{
		"Pa vs MP traffic", "-", "-",
		fmtF(paRatio*100, 1) + "%", "≤10% (§8)",
	})

	return Table{
		Title: "§7-§8 communication volume: measured on the wire vs analysis",
		Note: fmt.Sprintf("Real training step, N=%d ranks, Ψ=%d parameters; elements sent per rank.",
			n, psi),
		Header: []string{"System", "Measured/rank", "Theory/rank", "Measured (Ψ)", "Theory (Ψ)"},
		Rows:   rows,
	}
}
