package experiments

import (
	"fmt"

	"repro/internal/losscurve"
)

// Fig5 reproduces Figure 5: Turing-NLG (17B, trained end-to-end with
// ZeRO-100B) validation perplexity over 300K iterations against the
// previous SOTA, the Megatron-LM 8.3B model.
func Fig5() Table {
	big := losscurve.Curve{Params: 17_000_000_000}
	small := losscurve.Curve{Params: 8_300_000_000}
	var rows [][]string
	for _, iter := range []int{1000, 10_000, 50_000, 100_000, 150_000, 200_000, 250_000, 300_000} {
		rows = append(rows, []string{
			fmt.Sprint(iter),
			fmtF(big.Perplexity(iter), 2),
			fmtF(small.Perplexity(iter), 2),
		})
	}
	return Table{
		Title: "Figure 5: Turing-NLG 17B vs Megatron-LM 8.3B validation perplexity",
		Note: "Scaling-law substitution (see DESIGN.md): the 17B curve dominates at every\n" +
			"iteration and ends near the record WebText-103 perplexity of 10.21.",
		Header: []string{"Iteration", "17B (ZeRO) ppl", "8.3B (Megatron) ppl"},
		Rows:   rows,
	}
}
