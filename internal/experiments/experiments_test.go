package experiments

import (
	"bytes"
	"fmt"
	"strconv"
	"strings"
	"testing"

	"repro/internal/zero"
)

func parseF(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(s, "x"), "B"), "T"), 64)
	if err != nil {
		t.Fatalf("cannot parse %q: %v", s, err)
	}
	return v
}

func TestFig1Values(t *testing.T) {
	tab := Fig1()
	if len(tab.Rows) != 4 {
		t.Fatalf("want 4 rows, got %d", len(tab.Rows))
	}
	wants := []string{"120.00 GB", "31.41 GB", "16.64 GB", "1.88 GB"}
	for i, w := range wants {
		if tab.Rows[i][2] != w {
			t.Errorf("row %d: %q, want %q", i, tab.Rows[i][2], w)
		}
	}
}

func TestTable1Shape(t *testing.T) {
	tab := Table1()
	if len(tab.Rows) != 6 || len(tab.Header) != 10 {
		t.Fatalf("table shape %dx%d, want 6x10", len(tab.Rows), len(tab.Header))
	}
	// Spot-check: DP=1024, 1T, Pos+g+p → 15.63 GB.
	last := tab.Rows[5]
	if v := parseF(t, last[9]); v < 15.5 || v > 15.7 {
		t.Errorf("1T Pos+g+p @1024 = %v, want ≈15.6", v)
	}
}

func TestTable2Ordering(t *testing.T) {
	tab := Table2()
	for _, row := range tab.Rows {
		base := parseF(t, row[2])
		pos := parseF(t, row[3])
		posg := parseF(t, row[4])
		meas := parseF(t, row[7])
		if !(base < pos && pos < posg) {
			t.Errorf("MP=%s: theoretical ordering broken: %v %v %v", row[0], base, pos, posg)
		}
		if meas >= pos {
			t.Errorf("MP=%s: measured ZeRO-OS %v must be below theoretical Pos %v", row[0], meas, pos)
		}
	}
}

// Figure 2's shape: ZeRO sustains 30+ TFlops/GPU through 100B; the
// baseline collapses after 40B (cross-node MP); speedup reaches ≥6x for
// the largest models.
func TestFig2Shape(t *testing.T) {
	tab := Fig2()
	byLabel := map[string][]string{}
	for _, r := range tab.Rows {
		byLabel[r[0]] = r
	}
	if v := parseF(t, byLabel["100B"][1]); v < 30 || v > 55 {
		t.Errorf("ZeRO 100B = %v TF/GPU, want 30-55", v)
	}
	if v := parseF(t, byLabel["100B"][2]); v > 6 {
		t.Errorf("baseline 100B = %v TF/GPU, want < 6 (cross-node collapse)", v)
	}
	if v := parseF(t, byLabel["100B"][3]); v < 6 {
		t.Errorf("100B speedup %vx, want ≥6x", v)
	}
	// Baseline is still competitive at 1.5B/8B (MP in node).
	if v := parseF(t, byLabel["8B"][2]); v < 15 {
		t.Errorf("baseline 8B = %v TF/GPU, should be healthy in-node", v)
	}
}

// Figure 3's shape: aggregate throughput beats perfect scaling (superlinear).
func TestFig3Superlinear(t *testing.T) {
	tab := Fig3()
	last := tab.Rows[len(tab.Rows)-1]
	if v := parseF(t, last[5]); v <= 1.0 {
		t.Errorf("400-GPU aggregate vs perfect = %vx, want > 1 (superlinear)", v)
	}
	// Per-GPU throughput at 400 GPUs exceeds the 64-GPU value.
	first := tab.Rows[0]
	if parseF(t, last[2]) <= parseF(t, first[2]) {
		t.Error("per-GPU throughput should grow 64 -> 400 GPUs")
	}
}

// Figure 4's shape: every ZeRO row through 13B fits; baseline fits only the
// ~1.4B-and-below configs.
func TestFig4Democratization(t *testing.T) {
	tab := Fig4()
	for _, r := range tab.Rows {
		switch r[0] {
		case "13B":
			if r[3] != "OK" {
				t.Errorf("13B under ZeRO must fit, got %s", r[3])
			}
			if r[5] != "OOM" {
				t.Errorf("13B under baseline DP must OOM, got %s", r[5])
			}
			if v := parseF(t, r[2]); v < 15 {
				t.Errorf("13B ZeRO throughput %v, want ≥15 TF/GPU", v)
			}
		case "1.5B":
			if r[3] != "OK" {
				t.Errorf("1.5B under ZeRO must fit")
			}
		}
	}
}

func TestFig5Dominance(t *testing.T) {
	tab := Fig5()
	for _, r := range tab.Rows {
		if parseF(t, r[1]) >= parseF(t, r[2]) {
			t.Errorf("iter %s: 17B ppl %s not below 8.3B ppl %s", r[0], r[1], r[2])
		}
	}
	final := tab.Rows[len(tab.Rows)-1]
	if v := parseF(t, final[1]); v < 9.5 || v > 11.5 {
		t.Errorf("final 17B ppl %v, want ≈10.2", v)
	}
}

// Figure 6's shape: max model size strictly grows C1 -> C2 -> C4 -> C5 and
// C2 ≤ C3 ≤ C4 (stage-2 states vs Pa activations trade).
func TestFig6Ordering(t *testing.T) {
	tab := Fig6()
	get := func(name string) float64 {
		for _, r := range tab.Rows {
			if r[0] == name {
				return parseF(t, r[4])
			}
		}
		t.Fatalf("missing config %s", name)
		return 0
	}
	c1, c2, c3, c4, c5 := get("C1"), get("C2"), get("C3"), get("C4"), get("C5")
	if !(c1 < c2 && c2 <= c4 && c4 <= c5) {
		t.Errorf("ordering broken: C1=%v C2=%v C4=%v C5=%v", c1, c2, c4, c5)
	}
	if c3 <= c1 {
		t.Errorf("C3 (Pos+g) = %v should beat C1 (Pos) = %v", c3, c1)
	}
	if c1 < 20 || c1 > 80 {
		t.Errorf("C1 max = %vB, paper reports 40B", c1)
	}
}

// Figure 7's shape: Pa shrinks the cached peak (C1 > C2); for 100B, the
// small-state configs cannot even run (consistent with Figure 6).
func TestFig7Shape(t *testing.T) {
	tab := Fig7()
	vals := map[string]string{}
	for _, r := range tab.Rows {
		vals[r[0]+"/"+r[1]] = r[2]
	}
	c1 := parseF(t, vals["40B/C1"])
	c2 := parseF(t, vals["40B/C2"])
	if c2 >= c1 {
		t.Errorf("40B: C2 cached %v should be below C1 %v (Pa)", c2, c1)
	}
	for _, cfg := range []string{"C1", "C2"} {
		if vals["100B/"+cfg] != "OOM" {
			t.Errorf("100B %s should OOM at batch 32 (Pos states + activations exceed 32GB), got %v",
				cfg, vals["100B/"+cfg])
		}
	}
	if vals["100B/C4"] == "OOM" {
		t.Error("100B C4 should run")
	}
}

// Figure 8's shape: throughput improves with memory headroom C1 -> C4; C5
// loses some at 60B but is the configuration that gives 170B a usable
// batch.
func TestFig8Shape(t *testing.T) {
	tab := Fig8()
	vals := map[string][]string{}
	for _, r := range tab.Rows {
		vals[r[0]+"/"+r[1]] = r
	}
	tf := func(key string) float64 { return parseF(t, vals[key][3]) }
	batch := func(key string) float64 { return parseF(t, vals[key][2]) }

	if tf("60B/C4") <= tf("60B/C1") {
		t.Errorf("60B: C4 (%v) should beat C1 (%v)", tf("60B/C4"), tf("60B/C1"))
	}
	if tf("60B/C5") >= tf("60B/C4") {
		t.Errorf("60B: C5 (%v) should drop below C4 (%v) — CPU offload drag", tf("60B/C5"), tf("60B/C4"))
	}
	if vals["170B/C1"][2] != "OOM" || vals["170B/C2"][2] != "OOM" {
		t.Error("170B should OOM under C1/C2")
	}
	if batch("170B/C5") <= batch("170B/C4") {
		t.Errorf("170B: C5 batch (%v) should exceed C4 batch (%v)",
			batch("170B/C5"), batch("170B/C4"))
	}
}

// The measured comm volumes agree with theory within the ring rounding.
func TestCommVolumeTable(t *testing.T) {
	tab := CommVolume()
	for _, r := range tab.Rows {
		if r[0] == "Pa vs MP traffic" {
			if v := parseF(t, strings.TrimSuffix(r[3], "%")); v > 10 {
				t.Errorf("Pa overhead %v%%, want ≤10%%", v)
			}
			continue
		}
		meas := parseF(t, r[1])
		theory := parseF(t, r[2])
		if theory == 0 || meas/theory < 0.98 || meas/theory > 1.02 {
			t.Errorf("%s: measured %v vs theory %v", r[0], meas, theory)
		}
	}
}

func TestRenderDoesNotPanic(t *testing.T) {
	var buf bytes.Buffer
	for _, tab := range []Table{Fig1(), Table1(), Table2(), Fig2(), Fig3(), Fig4(), Fig5(), Fig6(), Fig7(), Fig8(), CommVolume()} {
		tab.Render(&buf)
	}
	if buf.Len() == 0 {
		t.Error("no output rendered")
	}
}

// The stage sweep's headline: every ZeRO stage moves fewer wire bytes per
// step than the seed's synchronous fp32 DP path, and stages 0-2 move the
// same number of *elements* (2Ψ-class schedules) while stage 3 moves 1.5x.
func TestStageSweepBytesBelowSeed(t *testing.T) {
	sc := DefaultStageSweep()
	sc.Steps = 1
	tab := StageSweep(sc)
	if len(tab.Rows) != 5 {
		t.Fatalf("want seed + 4 stage rows, got %d", len(tab.Rows))
	}
	seedBytes := parseF(t, tab.Rows[0][3])
	seedElems := parseF(t, tab.Rows[0][2])
	for _, row := range tab.Rows[1:] {
		if b := parseF(t, row[3]); b >= seedBytes {
			t.Errorf("%s: %v bytes/rank/step, must be below seed's %v", row[0], b, seedBytes)
		}
	}
	for _, i := range []int{1, 2, 3} { // DP, Pos, Pos+g
		if e := parseF(t, tab.Rows[i][2]); e != seedElems {
			t.Errorf("%s: %v elems, want seed's %v (2Ψ schedule)", tab.Rows[i][0], e, seedElems)
		}
	}
	s3 := parseF(t, tab.Rows[4][2])
	if ratio := s3 / seedElems; ratio < 1.49 || ratio > 1.51 {
		t.Errorf("Pos+g+p elems = %vx seed, want 1.5x (3Ψ vs 2Ψ)", ratio)
	}
}

// A single-stage sweep (zerobench -stage=2) keeps only the seed row plus
// the requested stage.
func TestStageSweepSingleStage(t *testing.T) {
	sc := DefaultStageSweep()
	sc.Steps = 1
	sc.Stages = []zero.Stage{zero.StageOSGrad}
	tab := StageSweep(sc)
	if len(tab.Rows) != 2 || !strings.Contains(tab.Rows[1][0], "Pos+g") {
		t.Fatalf("want seed + Pos+g rows, got %v", tab.Rows)
	}
	if parseF(t, tab.Rows[1][3]) >= parseF(t, tab.Rows[0][3]) {
		t.Error("stage 2 must move fewer bytes per step than the synchronous seed path")
	}
}

// The stage-throughput sweep's shape: each stage unlocks strictly larger
// models (DP dies at 8B, Pos+g at 40B, only Pos+g+p trains 100B without
// MP), and the overlapped schedule never loses to the synchronous one.
func TestStageThroughputShape(t *testing.T) {
	tab := StageThroughput()
	cell := func(model, stage string) []string {
		for _, r := range tab.Rows {
			if r[0] == model && r[1] == stage {
				return r
			}
		}
		t.Fatalf("missing row %s/%s", model, stage)
		return nil
	}
	if cell("8B", "DP")[2] != "OOM" || cell("8B", "Pos")[2] != "OOM" {
		t.Error("8B should OOM under DP and Pos on 32GB")
	}
	if cell("8B", "Pos+g")[2] == "OOM" {
		t.Error("8B should fit under Pos+g (the democratization result)")
	}
	if cell("100B", "Pos+g")[2] != "OOM" {
		t.Error("100B should OOM under Pos+g without MP")
	}
	if cell("100B", "Pos+g+p")[2] == "OOM" {
		t.Error("100B should fit under Pos+g+p")
	}
	for _, r := range tab.Rows {
		if r[2] == "OOM" {
			continue
		}
		if parseF(t, r[3]) < parseF(t, r[4]) {
			t.Errorf("%s/%s: overlap %s TF/GPU below sync %s", r[0], r[1], r[3], r[4])
		}
	}
}

// The stage-memory sweep covers all four stages (stage 0 flat, stage 3
// scaling as 1/Nd) and appends the measured fp16-compute residency block:
// 2-byte activation storage and a per-rank compute footprint below fp32.
func TestStageMemorySweep(t *testing.T) {
	tab := StageMemory()
	if len(tab.Rows) != 8 {
		t.Fatalf("want 4 stage rows + 4 measured rows, got %d", len(tab.Rows))
	}
	if tab.Rows[0][1] != tab.Rows[0][6] {
		t.Errorf("stage 0 must be flat across DP degrees: %v vs %v", tab.Rows[0][1], tab.Rows[0][6])
	}
	last := parseF(t, tab.Rows[3][6])
	if last > 0.2 {
		t.Errorf("Pos+g+p at Nd=1024 = %v GB, want ≈0.12", last)
	}
	if got := tab.Rows[5][1]; got != "4 -> 2 B/elem" {
		t.Errorf("activation storage row = %q, want fp32->fp16 width cut", got)
	}
	var f32Res, f16Res int64
	var pct float64
	if _, err := fmt.Sscanf(tab.Rows[7][1], "%d B -> %d B (%f%% of fp32)", &f32Res, &f16Res, &pct); err != nil {
		t.Fatalf("compute-resident row %q: %v", tab.Rows[7][1], err)
	}
	if f16Res >= f32Res {
		t.Errorf("fp16 compute residency %d B not below fp32's %d B", f16Res, f32Res)
	}
}

// Ablation invariants: bucketing preserves volume while multiplying
// messages; the hierarchy cuts inter-node traffic.
func TestAblationsInvariants(t *testing.T) {
	tab := Ablations()
	if len(tab.Rows) < 6 {
		t.Fatalf("ablations table too small: %d rows", len(tab.Rows))
	}
	if tab.Rows[0][1] != tab.Rows[1][1] {
		t.Errorf("bucketing changed total volume: %s vs %s", tab.Rows[0][1], tab.Rows[1][1])
	}
	m0 := parseF(t, tab.Rows[0][2])
	m1 := parseF(t, tab.Rows[1][2])
	if m1 <= m0 {
		t.Errorf("bucketing should multiply message count: %v vs %v", m0, m1)
	}
}
