package experiments

import (
	"fmt"

	"repro/internal/zero"
)

// Fig1 reproduces Figure 1: the per-device model-state memory of the
// worked example (Ψ = 7.5B, Nd = 64, K = 12) across the three ZeRO-DP
// stages, with the formulas.
func Fig1() Table {
	const psi, nd = 7_500_000_000, 64
	rows := [][]string{}
	specs := []struct {
		stage   zero.Stage
		formula string
	}{
		{zero.StageDP, "(2+2+K)Ψ"},
		{zero.StageOS, "2Ψ+2Ψ+KΨ/Nd"},
		{zero.StageOSG, "2Ψ+(2+K)Ψ/Nd"},
		{zero.StageOSGP, "(2+2+K)Ψ/Nd"},
	}
	for _, s := range specs {
		rows = append(rows, []string{
			s.stage.String(),
			s.formula,
			fmtF(zero.ModelStateGB(psi, s.stage, nd), 2) + " GB",
		})
	}
	return Table{
		Title:  "Figure 1: per-device model-state memory (Ψ=7.5B, Nd=64, K=12)",
		Header: []string{"Stage", "Formula", "Memory"},
		Rows:   rows,
	}
}

// Table1 reproduces Table 1: per-device model-state GB for 7.5B / 128B /
// 1T parameter models across DP degrees and ZeRO-DP stages.
func Table1() Table {
	models := []struct {
		label string
		psi   int64
	}{
		{"7.5B", 7_500_000_000},
		{"128B", 128_000_000_000},
		{"1T", 1_000_000_000_000},
	}
	dps := []int{1, 4, 16, 64, 256, 1024}
	header := []string{"DP"}
	for _, m := range models {
		for _, st := range []zero.Stage{zero.StageOS, zero.StageOSG, zero.StageOSGP} {
			header = append(header, m.label+" "+st.String())
		}
	}
	var rows [][]string
	for _, nd := range dps {
		row := []string{fmt.Sprint(nd)}
		for _, m := range models {
			for _, st := range []zero.Stage{zero.StageOS, zero.StageOSG, zero.StageOSGP} {
				row = append(row, fmtF(zero.ModelStateGB(m.psi, st, nd), 2))
			}
		}
		rows = append(rows, row)
	}
	return Table{
		Title:  "Table 1: per-device model-state memory (GB) vs DP degree",
		Note:   "Bold cells in the paper (fit on 32GB V100) are those ≤ 32.",
		Header: header,
		Rows:   rows,
	}
}

// Table2 reproduces Table 2: maximum theoretical model size from the
// memory analysis (left) and the measured maximum once residual states are
// charged (right), for MP ∈ {1..16} with Nd = 64.
func Table2() Table {
	const budget = 32 * zero.GB
	var rows [][]string
	for _, mp := range []int{1, 2, 4, 8, 16} {
		theo := func(st zero.Stage) string {
			return fmtB(zero.MaxTheoreticalParams(budget, st, 64, mp))
		}
		// Measured: baseline without ZeRO-R; ZeRO-OS (Pos) with CB+MD,
		// matching the paper's ZeRO-OS implementation.
		baseRC := zero.ResidualConfig{Batch: 8, Seq: 1024, MP: mp}
		zeroRC := zero.ResidualConfig{Batch: 8, Seq: 1024, MP: mp, CB: true, MD: true}
		// MaxMeasuredParams already accounts for MP: it returns the total
		// model size whose per-device share (states/MP + residuals) fits.
		measBase := zero.MaxMeasuredParams(budget, zero.StageDP, 64, baseRC)
		measZeRO := zero.MaxMeasuredParams(budget, zero.StageOS, 64, zeroRC)
		rows = append(rows, []string{
			fmt.Sprint(mp), fmt.Sprint(64 * mp),
			theo(zero.StageDP), theo(zero.StageOS), theo(zero.StageOSG), theo(zero.StageOSGP),
			fmtB(measBase), fmtB(measZeRO),
		})
	}
	return Table{
		Title: "Table 2: max model size, theoretical (left) vs measured (right), Nd=64",
		Note:  "Measured charges activations, buffers and fragmentation (ZeRO-OS = Pos + CB + MD).",
		Header: []string{"MP", "GPUs", "Baseline", "Pos", "Pos+g", "Pos+g+p",
			"Measured base", "Measured ZeRO-OS"},
		Rows: rows,
	}
}

// fmtB formats a parameter count in billions/trillions.
func fmtB(p int64) string {
	f := float64(p)
	if f >= 1e12 {
		return fmtF(f/1e12, 2) + "T"
	}
	return fmtF(f/1e9, 1) + "B"
}
