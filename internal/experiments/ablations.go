package experiments

import (
	"fmt"

	"repro/internal/comm"
	"repro/internal/model"
	"repro/internal/zero"
)

// Ablations measures the design choices DESIGN.md calls out, on the real
// engines with deterministic counters (element volumes and message counts
// rather than wall-clock, so the table is stable):
//
//   - gradient bucketing (CB applied to the reduce-scatter): identical
//     volume, more messages, bitwise-identical result;
//   - hierarchical vs flat all-reduce: the inter-node traffic cut that
//     makes cross-node DP viable (perfmodel.DPBandwidth's assumption);
//   - activation checkpointing: the §3.2 memory/recompute trade;
//   - gradient clipping: the extra collective it costs under partitioning.
func Ablations() Table {
	var rows [][]string
	cfg := model.Config{Layers: 3, Hidden: 32, Heads: 4, Vocab: 31, Seq: 8}
	const n, batch = 4, 4
	ids, targets := model.SyntheticBatch(1, batch, cfg.Seq, cfg.Vocab)

	runStage2 := func(opts zero.Options) (elems, msgs int64) {
		opts.Stage = zero.StageOSG
		opts.LR = 1e-3
		opts.Seed = 1
		w := comm.NewWorld(n)
		w.Run(func(c *comm.Comm) {
			tr := zero.MustNew(c, cfg, opts)
			tr.Step(ids, targets, batch)
		})
		for r := 0; r < n; r++ {
			st := w.Stats(r)
			elems += st.ElemsSent
			msgs += st.Messages
		}
		return elems, msgs
	}

	// 1. Bucketing.
	e0, m0 := runStage2(zero.Options{})
	e1, m1 := runStage2(zero.Options{BucketElems: 512})
	rows = append(rows,
		[]string{"reduce-scatter, unfused", fmt.Sprint(e0), fmt.Sprint(m0), "baseline"},
		[]string{"reduce-scatter, 512-elem buckets", fmt.Sprint(e1), fmt.Sprint(m1),
			fmt.Sprintf("same volume, %.1fx messages, bitwise-equal result", float64(m1)/float64(m0))},
	)

	// 2. Hierarchical vs flat all-reduce (8 ranks, 4-wide nodes).
	const psi = 1 << 14
	flat := comm.NewWorld(8)
	flat.Run(func(c *comm.Comm) { c.AllReduce(make([]float32, psi)) })
	hier := comm.NewWorld(8)
	hier.Run(func(c *comm.Comm) {
		if err := c.AllReduceHierarchical(comm.F32Buf(make([]float32, psi)), 4); err != nil {
			panic(err)
		}
	})
	flatPer := flat.Stats(0).ElemsSent
	inter := hier.Stats(0).PerGroup["hier-inter"].Elems
	rows = append(rows,
		[]string{"flat ring all-reduce (8 ranks)", fmt.Sprint(flatPer), "-",
			"all traffic crosses nodes when DP spans them"},
		[]string{"hierarchical (nodes of 4)", fmt.Sprint(hier.Stats(0).ElemsSent), "-",
			fmt.Sprintf("inter-node share only %d elems (%.0fx less)", inter, float64(flatPer)/float64(inter))},
	)

	// 3. Activation checkpointing: memory vs recompute (analytic §3.2).
	shape := zero.ShapeForParams(100e9)
	full := 12 * 32 * 1024 * int64(shape.Hidden) * int64(shape.Layers) * 2
	ckpt := 32 * 1024 * int64(shape.Hidden) * int64(shape.Layers) * 2
	rows = append(rows,
		[]string{"activations, no checkpointing (100B,b32)", fmtF(float64(full)/zero.GB, 0) + " GB", "-", "full activations"},
		[]string{"activation checkpointing", fmtF(float64(ckpt)/zero.GB, 1) + " GB", "-",
			"~sqrt reduction for +33% recompute (§3.2)"},
	)

	// 4. Clipping cost: one extra N-element all-gather per step.
	e2, _ := runStage2(zero.Options{ClipNorm: 1})
	rows = append(rows, []string{"gradient clipping (partitioned norm)",
		fmt.Sprint(e2), "-", fmt.Sprintf("+%d elems/step total: one N-scalar all-gather", e2-e0)})

	return Table{
		Title:  "Ablations: design choices measured on the real engines",
		Note:   "Deterministic counters (elements / messages), 4-rank worlds unless noted.",
		Header: []string{"Variant", "Elems sent (total)", "Messages", "Effect"},
		Rows:   rows,
	}
}
