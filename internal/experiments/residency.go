package experiments

import (
	"fmt"

	"repro/internal/engine"
	"repro/internal/model"
	"repro/internal/tensor"
)

// The miniature world MeasureComputeResidency trains: small enough to run
// inside an experiment render, large enough that the workspace dwarfs the
// fixed per-trainer bookkeeping.
const residencyRanks = 4

var residencyModel = model.Config{Layers: 4, Hidden: 64, Heads: 4, Vocab: 96, Seq: 16}
var residencyPsi = residencyModel.ParamCount()

// ComputeResidency is one precision's measured per-rank compute footprint:
// the activation element width, the retained forward/backward workspace,
// and the full compute residency (workspace plus the parameter copy the
// kernels read).
type ComputeResidency struct {
	ActBytesPerElem int
	WorkspaceBytes  int64
	ResidentBytes   int64
}

// MeasureComputeResidency trains one batch on a miniature stage-2 world and
// reads the rank-0 trainer's retained workspace and compute residency off
// the live engine — the measured counterpart of the §6 residual-state
// analysis. With fp16Compute the model stores activations (and the weight
// views the fused kernels read) in 2 bytes with fp32 accumulation.
func MeasureComputeResidency(fp16Compute bool) ComputeResidency {
	cfg := engine.DefaultConfig()
	cfg.Model = residencyModel
	cfg.Ranks = residencyRanks
	cfg.Stage = "2"
	cfg.Optimizer.LR = 1e-3
	cfg.GlobalBatch = 2 * residencyRanks
	cfg.MicroBatch = cfg.GlobalBatch
	cfg.GradAccumSteps = 1
	cfg.Seed = 1
	cfg.FP16 = true
	if fp16Compute {
		cfg.Precision = &engine.PrecisionConfig{FP16Compute: true}
	}
	ids, targets := model.SyntheticBatch(5, cfg.GlobalBatch, cfg.Model.Seq, cfg.Model.Vocab)
	out := ComputeResidency{ActBytesPerElem: tensor.BytesPerFloat32}
	if fp16Compute {
		out.ActBytesPerElem = tensor.BytesPerHalf
	}
	_, err := engine.Run(cfg, func(e *engine.Engine) {
		e.TrainBatch(ids, targets) // materializes the lazily-sized workspace
		if e.Rank() == 0 {
			out.WorkspaceBytes = e.Trainer().Model.WorkspaceBytes()
			out.ResidentBytes = e.Trainer().ComputeResidencyBytes()
		}
	})
	if err != nil {
		panic(fmt.Sprintf("experiments: residency run: %v", err))
	}
	return out
}
