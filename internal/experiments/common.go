// Package experiments contains one driver per table and figure of the
// paper's evaluation (§10). Each driver returns a Table whose rows mirror
// what the paper reports; cmd/zerobench renders them and bench_test.go
// regenerates them under `go test -bench`. EXPERIMENTS.md records the
// paper-vs-measured comparison for every driver.
package experiments

import (
	"fmt"
	"io"
	"strings"
)

// Table is a rendered experiment result.
type Table struct {
	Title  string
	Note   string
	Header []string
	Rows   [][]string
}

// Render pretty-prints the table with aligned columns.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "\n== %s ==\n", t.Title)
	if t.Note != "" {
		fmt.Fprintf(w, "%s\n", t.Note)
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintln(w, strings.Join(parts, "  "))
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// RunSpec is one row of the paper's appendix configuration tables
// (Tables 5-10): a model shape plus its parallelization and batch size.
type RunSpec struct {
	Label  string
	GPUs   int
	MP     int
	Layers int
	Hidden int
	Heads  int
	Batch  int // per-replica micro-batch ("Batch size" column)
}

// DP returns the data-parallel degree of the run.
func (r RunSpec) DP() int { return r.GPUs / r.MP }

// Fig2ZeRO reproduces Table 5's ZeRO rows (ZeRO-100B: Pos+g + ZeRO-R, MP
// within a node).
var Fig2ZeRO = []RunSpec{
	{"1.5B", 400, 1, 48, 1600, 16, 24},
	{"8B", 400, 4, 72, 3072, 24, 64},
	{"40B", 400, 4, 88, 6144, 32, 12},
	{"60B", 400, 16, 132, 6144, 32, 64},
	{"80B", 400, 16, 100, 8192, 64, 32},
	{"100B", 400, 16, 125, 8192, 64, 32},
	{"120B", 400, 16, 150, 8192, 64, 24},
	{"140B", 400, 16, 175, 8192, 64, 16},
	{"170B", 400, 16, 212, 8192, 64, 12},
}

// Fig2Baseline reproduces Table 5's baseline (Megatron-LM) rows; beyond 40B
// the MP degree forces the group across node boundaries.
var Fig2Baseline = []RunSpec{
	{"1.5B", 400, 2, 48, 1600, 16, 16},
	{"8B", 400, 8, 72, 3072, 24, 8},
	{"40B", 384, 32, 88, 6144, 64, 4},
	{"60B", 384, 64, 132, 6144, 64, 4},
	{"80B", 384, 128, 100, 8192, 128, 4},
	{"100B", 384, 128, 125, 8192, 128, 2},
	{"120B", 384, 128, 150, 8192, 128, 2},
	{"140B", 384, 128, 175, 8192, 128, 2},
	{"170B", 256, 256, 212, 8192, 256, 2},
}

// Fig3Scaling reproduces Table 6: the 60B model from 64 to 400 GPUs; the
// batch grows with the memory freed by higher DP degree — the
// superlinearity mechanism.
var Fig3Scaling = []RunSpec{
	{"60B@64", 64, 16, 75, 8192, 32, 16},
	{"60B@128", 128, 16, 75, 8192, 32, 48},
	{"60B@256", 256, 16, 75, 8192, 32, 48},
	{"60B@400", 400, 16, 75, 8192, 32, 64},
}

// Fig4Models reproduces Table 10: ZeRO-DP only (no MP) on 128 GPUs, up to
// 13B parameters.
var Fig4Models = []RunSpec{
	{"1.5B", 128, 1, 34, 1920, 16, 24},
	{"2.5B", 128, 1, 54, 1920, 16, 24},
	{"4B", 128, 1, 64, 2304, 24, 16},
	{"6B", 128, 1, 52, 3072, 24, 12},
	{"8B", 128, 1, 72, 3072, 24, 8},
	{"10B", 128, 1, 50, 4096, 32, 6},
	{"11B", 128, 1, 54, 4096, 32, 4},
	{"12B", 128, 1, 58, 4096, 32, 4},
	{"13B", 128, 1, 62, 4096, 32, 2},
}

// Fig4Baseline reproduces Table 10's baseline rows: PyTorch DDP tops out
// near 1.4B parameters.
var Fig4Baseline = []RunSpec{
	{"1.16B", 128, 1, 24, 1920, 16, 8},
	{"1.38B", 128, 1, 40, 1536, 16, 1},
}

func fmtF(v float64, prec int) string { return fmt.Sprintf("%.*f", prec, v) }
