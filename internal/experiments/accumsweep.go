package experiments

import (
	"fmt"

	"repro/internal/engine"
	"repro/internal/model"
	"repro/internal/zero"
)

// AccumSweep measures §5.2's gradient-accumulation identities on the real
// engines: per optimizer step with k micro-batches,
//
//	stage 0 (DDP):     2k(N-1)Ψ  total elements (a full all-reduce per micro-batch)
//	stages 1-2:        (k+1)(N-1)Ψ  (k micro reduce-scatters + ONE boundary all-gather)
//	stage 3:           3k(N-1)Ψ  (two parameter gather passes per micro-batch)
//
// while the gradient state carried across micro-batches stays at Ψ/N
// elements for every k at the partitioned stages. Accumulation is where
// partitioned gradients beat replicated DP on the wire, not just in
// memory: at large k, Pos+g approaches HALF of DDP's per-step volume.
func AccumSweep() Table {
	sc := DefaultStageSweep()
	cfg := sc.Base.Model
	psi := int64(cfg.ParamCount())
	ranks := sc.Base.Ranks
	batch := 4 * ranks
	const boundaries = 2
	ids, targets := model.SyntheticBatch(1, batch, cfg.Seq, cfg.Vocab)

	var rows [][]string
	for _, st := range []zero.Stage{zero.StageDDP, zero.StageOSGrad, zero.StageFull} {
		for _, k := range []int{1, 2, 4} {
			rowCfg := sc.Base
			rowCfg.Stage = engine.StageSpec(fmt.Sprint(int(st)))
			rowCfg.BucketElems = sc.Base.BucketElems
			rowCfg.GlobalBatch = batch
			rowCfg.GradAccumSteps = k
			rowCfg.MicroBatch = 0 // derive batch/k
			rowCfg.Overlap = true

			var accumElems int
			w, err := engine.Run(rowCfg, func(e *engine.Engine) {
				for b := 0; b < boundaries; b++ {
					e.TrainBatch(ids, targets)
				}
				if e.Rank() == 0 {
					accumElems = e.GradAccumElems()
				}
			})
			if err != nil {
				panic(fmt.Sprintf("accumsweep: %v", err))
			}

			var mult int64
			switch {
			case st == zero.StageDDP:
				mult = 2 * int64(k)
			case st == zero.StageFull:
				mult = 3 * int64(k)
			default:
				mult = int64(k) + 1
			}
			predicted := mult * int64(ranks-1) * psi
			measured := w.TotalElemsSent() / boundaries
			ddpVolume := 2 * int64(k) * int64(ranks-1) * psi
			rows = append(rows, []string{
				st.String(), fmt.Sprint(k), fmt.Sprint(batch / k),
				fmt.Sprint(measured), fmt.Sprint(predicted),
				fmtF(float64(measured)/float64(ddpVolume), 2) + "x",
				fmt.Sprint(accumElems),
			})
		}
	}
	return Table{
		Title: "Accumulation sweep: wire volume and accumulator residency vs GradAccumSteps",
		Note: fmt.Sprintf("Ψ=%d params, N=%d ranks, global batch %d; measured total elements per\n"+
			"optimizer step (all ranks) against the closed forms 2k/(k+1)/3k·(N-1)Ψ; the\n"+
			"accumulator column is the per-rank gradient state carried across micro-batches\n"+
			"(Ψ/N = %d at the partitioned stages, for every k).",
			psi, ranks, batch, psi/int64(ranks)),
		Header: []string{"Stage", "k", "Micro-batch", "Elems/step (measured)", "Predicted", "vs DDP", "Accum elems/rank"},
		Rows:   rows,
	}
}
