package experiments

import (
	"fmt"
	"time"

	"repro/internal/engine"
	"repro/internal/model"
	"repro/internal/perfmodel"
	"repro/internal/zero"
)

// StageSweepConfig parameterizes the measured stage sweep. Base is an
// engine.Config — the one constructor every entry point shares — so
// cmd/zerobench's -stage/-bucket/-ranks/-nodesize flags mutate the same
// struct zerotrain and the examples run, and a new knob cannot silently
// diverge between them. The sweep derives its global batch (2 rows per
// rank) and fixes k=1; AccumSweep covers the accumulation axis.
type StageSweepConfig struct {
	// Base carries the shared knobs: Ranks, BucketElems, NodeSize, seed.
	Base engine.Config
	// Steps is the measured optimizer steps per row.
	Steps int
	// Stages restricts the sweep (nil sweeps all four).
	Stages []zero.Stage
}

// DefaultStageSweep is the configuration zerobench uses when no flags are
// given: all four stages on a 4-rank world.
func DefaultStageSweep() StageSweepConfig {
	base := engine.DefaultConfig()
	base.Model = model.Config{Layers: 3, Hidden: 32, Heads: 4, Vocab: 31, Seq: 8}
	base.Optimizer.LR = 1e-3
	base.Seed = 1
	base.NodeSize = 0
	return StageSweepConfig{Base: base, Steps: 3}
}

// sweepRow builds one row's engine config from the shared base.
func (sc StageSweepConfig) sweepRow(stage zero.Stage, fp16, overlap, prefetch bool, bucket int) engine.Config {
	cfg := sc.Base
	cfg.Stage = engine.StageSpec(fmt.Sprint(int(stage)))
	cfg.FP16 = fp16
	cfg.Overlap = overlap
	cfg.Prefetch = prefetch
	cfg.BucketElems = bucket
	cfg.GlobalBatch = 2 * cfg.Ranks
	cfg.MicroBatch = cfg.GlobalBatch
	cfg.GradAccumSteps = 1
	return cfg
}

// StageSweep measures the unified Stage API end to end on the real
// engines: for each ZeRO-DP stage it trains a small model through
// engine.Initialize and reports the wire traffic per rank per step —
// elements counted by the collectives and bytes counted *natively* by the
// dtype-tagged buffers (comm.Stats records each op at its Buffer's wire
// width, so the fp16 column is measured, not elems × convention) — and the
// wall-clock of the synchronous schedule versus the streamed schedule
// (grad-stream bucket overlap, plus prefetch of the stage-3 parameter
// gathers).
//
// The seed baseline row is the pre-Stage-API synchronous path: replicated
// DP whose gradients cross the wire in fp32 (4 bytes/element, the only
// width the seed's collectives knew). The ZeRO rows run mixed precision,
// so their gradients and parameters move as fp16 (2 bytes/element, §3.1) —
// which is why every stage, including Pos+g, moves fewer bytes per step
// than the seed path even when the element counts match.
func StageSweep(sc StageSweepConfig) Table {
	if sc.Base.Ranks <= 0 {
		sc.Base.Ranks = 4
	}
	if sc.Steps <= 0 {
		sc.Steps = 3
	}
	stages := sc.Stages
	if len(stages) == 0 {
		stages = zero.AllStages
	}
	cfg := sc.Base.Model
	psi := int64(cfg.ParamCount())
	ranks := sc.Base.Ranks
	batch := 2 * ranks
	ids, targets := model.SyntheticBatch(1, batch, cfg.Seq, cfg.Vocab)
	hier := zero.Topology{NodeSize: sc.Base.NodeSize}.Hierarchical(ranks)

	// run returns per-rank elements, native bytes and inter-node bytes sent
	// per step, and the mean step time.
	run := func(rowCfg engine.Config) (elemsPerRankStep, bytesPerRankStep, interBytesPerRankStep float64, stepTime time.Duration) {
		start := time.Now()
		w, err := engine.Run(rowCfg, func(e *engine.Engine) {
			for s := 0; s < sc.Steps; s++ {
				e.TrainBatch(ids, targets)
			}
		})
		if err != nil {
			panic(fmt.Sprintf("stagesweep: %v", err))
		}
		elapsed := time.Since(start)
		var interBytes int64
		for r := 0; r < ranks; r++ {
			interBytes += w.Stats(r).PerGroup["hier-inter"].Bytes
		}
		perRankStep := float64(ranks * sc.Steps)
		return float64(w.TotalElemsSent()) / perRankStep,
			float64(w.TotalBytesSent()) / perRankStep,
			float64(interBytes) / perRankStep,
			elapsed / time.Duration(sc.Steps)
	}

	// Seed baseline: synchronous replicated DP, fp32 wire, unbucketed, flat.
	seedCfg := sc.sweepRow(zero.StageDDP, false, false, false, 0)
	seedCfg.NodeSize = 0
	seedElems, seedBytes, _, seedTime := run(seedCfg)

	rows := [][]string{{
		"seed sync DP", "fp32", fmtF(seedElems, 0), fmtF(seedBytes, 0), "1.00x", "-", "-",
		fmt.Sprint(seedTime.Round(time.Microsecond)), "-", "-",
	}}
	for _, st := range stages {
		base := sc.sweepRow(st, true, false, false, sc.Base.BucketElems)
		elems, bytes, interBytes, syncTime := run(base)
		over := sc.sweepRow(st, true, true, true, sc.Base.BucketElems)
		_, _, _, overTime := run(over)
		interMeas, interPred := "-", "-"
		if hier {
			// mult·(Ψ/S)·(M-1)/M elements per rank per step cross nodes
			// (mult = the stage's full-width passes), at 2 B/elem fp16.
			mult := 2.0
			if st == zero.StageFull {
				mult = 3.0
			}
			_, interElems := perfmodel.HierarchicalSplit(psi, sc.Base.NodeSize, ranks/sc.Base.NodeSize)
			interMeas = fmtF(interBytes, 0)
			interPred = fmtF(mult*interElems*2, 0)
		}
		rows = append(rows, []string{
			"ZeRO " + st.String(), "fp16",
			fmtF(elems, 0), fmtF(bytes, 0),
			fmtF(bytes/seedBytes, 2) + "x",
			interMeas, interPred,
			fmt.Sprint(syncTime.Round(time.Microsecond)),
			fmt.Sprint(overTime.Round(time.Microsecond)),
			fmtF(float64(syncTime)/float64(overTime), 2) + "x",
		})
	}
	topoNote := "flat topology (every collective is one ring over all ranks)"
	if hier {
		topoNote = fmt.Sprintf("hierarchical topology: M=%d nodes of S=%d ranks; inter-node prediction\n"+
			"is mult·(Ψ/S)·(M-1)/M fp16 bytes per rank per step (mult=2, or 3 at Pos+g+p)",
			ranks/sc.Base.NodeSize, sc.Base.NodeSize)
	}
	return Table{
		Title: "Stage sweep: wire traffic and step time per ZeRO-DP stage",
		Note: fmt.Sprintf("Ψ=%d params, N=%d ranks, bucket=%d elems; bytes measured natively by\n"+
			"dtype-tagged buffers (fp16 = 2 B/elem on the wire); %s.\n"+
			"Step times are wall-clock of this run (overlap = grad-stream buckets + stage-3\n"+
			"prefetch stream). All rows run through engine.Initialize.",
			psi, ranks, sc.Base.BucketElems, topoNote),
		Header: []string{"System", "Wire", "Elems/rank/step", "Bytes/rank/step (measured)", "vs seed",
			"Inter-B/rank/step", "Inter-B predicted", "Step (sync)", "Step (overlap)", "Speedup"},
		Rows: rows,
	}
}

// stageThroughputModels are the Fig-2 ladder shapes re-run as pure ZeRO-DP
// (MP=1) for the stage sweep.
var stageThroughputModels = []struct {
	label                 string
	layers, hidden, heads int
}{
	{"1.5B", 48, 1600, 16},
	{"8B", 72, 3072, 24},
	{"40B", 88, 6144, 32},
	{"100B", 125, 8192, 64},
}

// StageThroughput sweeps all four ZeRO-DP stages through the performance
// model: for each model size it finds the largest micro-batch whose model
// states plus residual states fit a 32 GB device at that stage, then
// estimates per-GPU throughput with the overlapped schedule and with the
// synchronous (SyncComm) schedule. Higher stages fit larger models and
// afford larger batches (the Fig-3 superlinearity mechanism); stage 3 pays
// 3Ψ communication for Ψ/Nd residency.
func StageThroughput() Table {
	const (
		gpus   = 64
		budget = 32 * zero.GB
	)
	var rows [][]string
	for _, m := range stageThroughputModels {
		shape := perfmodel.GPT2Like(m.layers, m.hidden, m.heads)
		psi := shape.Params()
		for _, st := range zero.AllStages {
			maxBatch := 0
			for b := 1; b <= 64; b *= 2 {
				rc := zero.ResidualConfig{Batch: b, Seq: shape.Seq, MP: 1, CB: true, MD: true}
				resid := zero.ResidualBytes(zero.ShapeInfo{Params: psi, Layers: m.layers, Hidden: m.hidden}, rc)
				if zero.ModelStateBytes(psi, st, gpus)+resid <= budget {
					maxBatch = b
				}
			}
			if maxBatch == 0 {
				rows = append(rows, []string{m.label, st.String(), "OOM", "-", "-", "-"})
				continue
			}
			mk := func(sync bool) float64 {
				return perfmodel.Estimate(hw, perfmodel.Config{
					Shape: shape, MP: 1, DP: gpus, MicroBatch: maxBatch,
					// The streamed schedule overlaps gradient buckets and
					// prefetches the stage-3 parameter gathers; the sync
					// schedule exposes everything.
					ZeRO: perfmodel.ZeROConfig{Stage: int(st), SyncComm: sync, Prefetch: !sync},
				}).TFlopsPerGPU
			}
			overlapTF, syncTF := mk(false), mk(true)
			rows = append(rows, []string{
				m.label, st.String(), fmt.Sprint(maxBatch),
				fmtF(overlapTF, 1), fmtF(syncTF, 1),
				fmtF(overlapTF/syncTF, 2) + "x",
			})
		}
	}
	return Table{
		Title: "Stage throughput sweep: ZeRO-DP stages 0-3, 64 GPUs, 32 GB budget",
		Note: "Max micro-batch fitting model+residual states per stage; TF/GPU from the\n" +
			"performance model with the streamed schedule (bucket overlap + stage-3 gather\n" +
			"prefetch) vs the fully synchronous schedule.",
		Header: []string{"Model", "Stage", "Max batch", "TF/GPU (overlap)", "TF/GPU (sync)", "Gain"},
		Rows:   rows,
	}
}

// StageMemory is the Figure-1-style per-device model-state table swept
// across every stage of the unified API and a ladder of DP degrees —
// Table 1 keeps the paper's three-stage layout, this covers stage 0 too.
// Below the analytic ladder it appends the residual-state story (§6),
// measured on a live miniature engine: the fp16 compute path stores
// activations at 2 bytes/element and serves the kernels a 2-byte weight
// view, so the per-rank compute residency is read off the real trainer in
// both precisions, not estimated.
func StageMemory() Table {
	const psi = 7_500_000_000
	dps := []int{1, 4, 16, 64, 256, 1024}
	header := []string{"Stage"}
	for _, nd := range dps {
		header = append(header, fmt.Sprintf("Nd=%d", nd))
	}
	var rows [][]string
	for _, st := range zero.AllStages {
		row := []string{st.String()}
		for _, nd := range dps {
			row = append(row, fmtF(zero.ModelStateGB(psi, st, nd), 2))
		}
		rows = append(rows, row)
	}
	f32 := MeasureComputeResidency(false)
	f16 := MeasureComputeResidency(true)
	rows = append(rows,
		[]string{"-- fp16 compute, measured --"},
		[]string{"activation storage", fmt.Sprintf("%d -> %d B/elem", f32.ActBytesPerElem, f16.ActBytesPerElem)},
		[]string{"workspace/rank", fmt.Sprintf("%d B -> %d B", f32.WorkspaceBytes, f16.WorkspaceBytes)},
		[]string{"compute resident/rank", fmt.Sprintf("%d B -> %d B (%.1f%% of fp32)",
			f32.ResidentBytes, f16.ResidentBytes, 100*float64(f16.ResidentBytes)/float64(f32.ResidentBytes))},
	)
	return Table{
		Title: "Stage memory sweep: per-device model-state GB (Ψ=7.5B) vs DP degree",
		Note: "All four stages of the unified API; stage 0 is flat at (2+2+K)Ψ.\n" +
			fmt.Sprintf("Measured block: live %d-rank stage-2 engine (Ψ=%d), workspace + the\n", residencyRanks, residencyPsi) +
			"parameter copy the kernels read; fp16_compute stores activations and weight\n" +
			"views in 2 bytes with fp32 accumulation (the fp32 master is optimizer state).",
		Header: header,
		Rows:   rows,
	}
}
