package model

import (
	"math"

	"repro/internal/tensor"
)

// causalMask is added to attention scores above the diagonal; large enough
// that exp underflows to zero after the softmax max-shift.
const causalMask = -1e9

// blockForward computes one transformer block given acts.x (the block
// input, [M,h]) and fills the remaining activation fields. It returns the
// block output.
func (m *Model) blockForward(i int, acts *blockActs, batch, seqLen int) []float32 {
	h := m.Cfg.Hidden
	heads := m.Cfg.Heads
	dh := h / heads
	ffn := 4 * h
	mRows := batch * seqLen
	off := m.Layout.blocks[i]
	p := m.Params

	// LN1.
	acts.a = make([]float32, mRows*h)
	acts.xhat1 = make([]float32, mRows*h)
	acts.invStd1 = make([]float32, mRows)
	tensor.LayerNorm(acts.a, acts.xhat1, acts.invStd1, acts.x,
		p[off.ln1Gamma:off.ln1Gamma+h], p[off.ln1Beta:off.ln1Beta+h], mRows, h, lnEps)

	// QKV projection.
	acts.qkv = make([]float32, mRows*3*h)
	tensor.MatMul(acts.qkv, acts.a, p[off.wQKV:off.wQKV+h*3*h], mRows, h, 3*h)
	tensor.AddBiasRows(acts.qkv, p[off.bQKV:off.bQKV+3*h], mRows, 3*h)

	// Multi-head causal self-attention.
	acts.probs = make([]float32, batch*heads*seqLen*seqLen)
	acts.ctx = make([]float32, mRows*h)
	scale := float32(1 / math.Sqrt(float64(dh)))
	qh := make([]float32, seqLen*dh)
	kh := make([]float32, seqLen*dh)
	vh := make([]float32, seqLen*dh)
	ctxh := make([]float32, seqLen*dh)
	for b := 0; b < batch; b++ {
		for hd := 0; hd < heads; hd++ {
			m.gatherHead(acts.qkv, qh, kh, vh, b, hd, batch, seqLen)
			probs := acts.probs[(b*heads+hd)*seqLen*seqLen : (b*heads+hd+1)*seqLen*seqLen]
			tensor.MatMulBT(probs, qh, kh, seqLen, dh, seqLen)
			for t := 0; t < seqLen; t++ {
				row := probs[t*seqLen : (t+1)*seqLen]
				for u := range row {
					if u > t {
						row[u] = causalMask
					} else {
						row[u] *= scale
					}
				}
			}
			tensor.SoftmaxRows(probs, probs, seqLen, seqLen)
			tensor.MatMul(ctxh, probs, vh, seqLen, seqLen, dh)
			// Scatter the head's context back into [M,h].
			for t := 0; t < seqLen; t++ {
				copy(acts.ctx[(b*seqLen+t)*h+hd*dh:(b*seqLen+t)*h+(hd+1)*dh], ctxh[t*dh:(t+1)*dh])
			}
		}
	}

	// Output projection + residual.
	attnOut := make([]float32, mRows*h)
	tensor.MatMul(attnOut, acts.ctx, p[off.wProj:off.wProj+h*h], mRows, h, h)
	tensor.AddBiasRows(attnOut, p[off.bProj:off.bProj+h], mRows, h)
	acts.x2 = make([]float32, mRows*h)
	copy(acts.x2, acts.x)
	tensor.Add(acts.x2, attnOut)

	// LN2 + MLP + residual.
	acts.mlin = make([]float32, mRows*h)
	acts.xhat2 = make([]float32, mRows*h)
	acts.invStd2 = make([]float32, mRows)
	tensor.LayerNorm(acts.mlin, acts.xhat2, acts.invStd2, acts.x2,
		p[off.ln2Gamma:off.ln2Gamma+h], p[off.ln2Beta:off.ln2Beta+h], mRows, h, lnEps)
	acts.h1 = make([]float32, mRows*ffn)
	tensor.MatMul(acts.h1, acts.mlin, p[off.wFC1:off.wFC1+h*ffn], mRows, h, ffn)
	tensor.AddBiasRows(acts.h1, p[off.bFC1:off.bFC1+ffn], mRows, ffn)
	acts.g = make([]float32, mRows*ffn)
	tensor.GELU(acts.g, acts.h1)
	out := make([]float32, mRows*h)
	tensor.MatMul(out, acts.g, p[off.wFC2:off.wFC2+ffn*h], mRows, ffn, h)
	tensor.AddBiasRows(out, p[off.bFC2:off.bFC2+h], mRows, h)
	tensor.Add(out, acts.x2)
	return out
}

// gatherHead copies one (sample, head) slice of the packed QKV activations
// into contiguous [T,dh] scratch matrices.
func (m *Model) gatherHead(qkv, qh, kh, vh []float32, b, hd, batch, seqLen int) {
	h := m.Cfg.Hidden
	dh := h / m.Cfg.Heads
	for t := 0; t < seqLen; t++ {
		base := (b*seqLen + t) * 3 * h
		copy(qh[t*dh:(t+1)*dh], qkv[base+hd*dh:base+(hd+1)*dh])
		copy(kh[t*dh:(t+1)*dh], qkv[base+h+hd*dh:base+h+(hd+1)*dh])
		copy(vh[t*dh:(t+1)*dh], qkv[base+2*h+hd*dh:base+2*h+(hd+1)*dh])
	}
}

// blockBackward consumes dOut (gradient of the block output) and the
// activations from blockForward, accumulates parameter gradients, and
// returns the gradient with respect to the block input.
func (m *Model) blockBackward(i int, acts *blockActs, dOut []float32, batch, seqLen int) []float32 {
	h := m.Cfg.Hidden
	heads := m.Cfg.Heads
	dh := h / heads
	ffn := 4 * h
	mRows := batch * seqLen
	off := m.Layout.blocks[i]
	p, g := m.Params, m.Grads

	// Residual: out = x2 + MLP(LN2(x2)) ⇒ dx2 starts as dOut.
	dX2 := make([]float32, mRows*h)
	copy(dX2, dOut)

	// MLP backward.
	dG := make([]float32, mRows*ffn)
	tensor.MatMulBT(dG, dOut, p[off.wFC2:off.wFC2+ffn*h], mRows, h, ffn)
	tensor.MatMulATAdd(g[off.wFC2:off.wFC2+ffn*h], acts.g, dOut, mRows, ffn, h)
	tensor.BiasGradRows(g[off.bFC2:off.bFC2+h], dOut, mRows, h)
	dH1 := make([]float32, mRows*ffn)
	tensor.GELUBackward(dH1, dG, acts.h1)
	dMlin := make([]float32, mRows*h)
	tensor.MatMulBT(dMlin, dH1, p[off.wFC1:off.wFC1+h*ffn], mRows, ffn, h)
	tensor.MatMulATAdd(g[off.wFC1:off.wFC1+h*ffn], acts.mlin, dH1, mRows, h, ffn)
	tensor.BiasGradRows(g[off.bFC1:off.bFC1+ffn], dH1, mRows, ffn)
	tensor.LayerNormBackward(dX2, g[off.ln2Gamma:off.ln2Gamma+h], g[off.ln2Beta:off.ln2Beta+h],
		dMlin, acts.xhat2, acts.invStd2, p[off.ln2Gamma:off.ln2Gamma+h], mRows, h)

	// Attention output projection backward (dAttnOut == dX2: x2 = x + attnOut).
	dCtx := make([]float32, mRows*h)
	tensor.MatMulBT(dCtx, dX2, p[off.wProj:off.wProj+h*h], mRows, h, h)
	tensor.MatMulATAdd(g[off.wProj:off.wProj+h*h], acts.ctx, dX2, mRows, h, h)
	tensor.BiasGradRows(g[off.bProj:off.bProj+h], dX2, mRows, h)

	// Attention core backward, per (sample, head).
	dQKV := make([]float32, mRows*3*h)
	scale := float32(1 / math.Sqrt(float64(dh)))
	qh := make([]float32, seqLen*dh)
	kh := make([]float32, seqLen*dh)
	vh := make([]float32, seqLen*dh)
	dctxh := make([]float32, seqLen*dh)
	dP := make([]float32, seqLen*seqLen)
	dS := make([]float32, seqLen*seqLen)
	dqh := make([]float32, seqLen*dh)
	dkh := make([]float32, seqLen*dh)
	dvh := make([]float32, seqLen*dh)
	for b := 0; b < batch; b++ {
		for hd := 0; hd < heads; hd++ {
			m.gatherHead(acts.qkv, qh, kh, vh, b, hd, batch, seqLen)
			probs := acts.probs[(b*heads+hd)*seqLen*seqLen : (b*heads+hd+1)*seqLen*seqLen]
			for t := 0; t < seqLen; t++ {
				copy(dctxh[t*dh:(t+1)*dh], dCtx[(b*seqLen+t)*h+hd*dh:(b*seqLen+t)*h+(hd+1)*dh])
			}
			// ctx = P·V.
			tensor.MatMulBT(dP, dctxh, vh, seqLen, dh, seqLen)
			tensor.Zero(dvh)
			tensor.MatMulATAdd(dvh, probs, dctxh, seqLen, seqLen, dh)
			// Softmax.
			tensor.Zero(dS)
			tensor.SoftmaxRowsBackward(dS, dP, probs, seqLen, seqLen)
			// Scale (applied to scores before softmax).
			tensor.Scale(dS, scale)
			// scores = scale·Q·Kᵀ.
			tensor.MatMul(dqh, dS, kh, seqLen, seqLen, dh)
			tensor.Zero(dkh)
			tensor.MatMulATAdd(dkh, dS, qh, seqLen, seqLen, dh)
			// Scatter head gradients into packed dQKV.
			for t := 0; t < seqLen; t++ {
				base := (b*seqLen + t) * 3 * h
				copy(dQKV[base+hd*dh:base+(hd+1)*dh], dqh[t*dh:(t+1)*dh])
				copy(dQKV[base+h+hd*dh:base+h+(hd+1)*dh], dkh[t*dh:(t+1)*dh])
				copy(dQKV[base+2*h+hd*dh:base+2*h+(hd+1)*dh], dvh[t*dh:(t+1)*dh])
			}
		}
	}

	// QKV projection backward.
	dA := make([]float32, mRows*h)
	tensor.MatMulBT(dA, dQKV, p[off.wQKV:off.wQKV+h*3*h], mRows, 3*h, h)
	tensor.MatMulATAdd(g[off.wQKV:off.wQKV+h*3*h], acts.a, dQKV, mRows, h, 3*h)
	tensor.BiasGradRows(g[off.bQKV:off.bQKV+3*h], dQKV, mRows, 3*h)

	// LN1 + residual: dx = dx2 (residual) + LN1-backward(dA).
	dX := make([]float32, mRows*h)
	copy(dX, dX2)
	tensor.LayerNormBackward(dX, g[off.ln1Gamma:off.ln1Gamma+h], g[off.ln1Beta:off.ln1Beta+h],
		dA, acts.xhat1, acts.invStd1, p[off.ln1Gamma:off.ln1Gamma+h], mRows, h)
	return dX
}
