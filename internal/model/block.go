package model

import (
	"math"

	"repro/internal/tensor"
)

// causalMask is added to attention scores above the diagonal; large enough
// that exp underflows to zero after the softmax max-shift.
const causalMask = -1e9

// blockForward computes one transformer block given acts.x (the block
// input, [M,h]), fills the remaining activation fields and writes the block
// output into out (a workspace buffer owned by the caller), returning it.
// All activation buffers are drawn from the persistent workspace and fully
// overwritten — the forward kernels (matmul, layernorm, softmax, GELU)
// write their destinations, so stale values from the previous step never
// leak into the math.
func (m *Model) blockForward(i int, acts *blockActs, out []float32, batch, seqLen int) []float32 {
	h := m.Cfg.Hidden
	heads := m.Cfg.Heads
	dh := h / heads
	ffn := 4 * h
	mRows := batch * seqLen
	off := m.Layout.blocks[i]
	p := m.Params
	ws := &m.ws

	// LN1.
	acts.a = grow(acts.a, mRows*h)
	acts.xhat1 = grow(acts.xhat1, mRows*h)
	acts.invStd1 = grow(acts.invStd1, mRows)
	tensor.LayerNorm(acts.a, acts.xhat1, acts.invStd1, acts.x,
		p[off.ln1Gamma:off.ln1Gamma+h], p[off.ln1Beta:off.ln1Beta+h], mRows, h, lnEps)

	// QKV projection.
	acts.qkv = grow(acts.qkv, mRows*3*h)
	tensor.MatMul(acts.qkv, acts.a, p[off.wQKV:off.wQKV+h*3*h], mRows, h, 3*h)
	tensor.AddBiasRows(acts.qkv, p[off.bQKV:off.bQKV+3*h], mRows, 3*h)

	// Multi-head causal self-attention.
	acts.probs = grow(acts.probs, batch*heads*seqLen*seqLen)
	acts.ctx = grow(acts.ctx, mRows*h)
	scale := float32(1 / math.Sqrt(float64(dh)))
	ws.qh = grow(ws.qh, seqLen*dh)
	ws.kh = grow(ws.kh, seqLen*dh)
	ws.vh = grow(ws.vh, seqLen*dh)
	ws.ctxh = grow(ws.ctxh, seqLen*dh)
	qh, kh, vh, ctxh := ws.qh, ws.kh, ws.vh, ws.ctxh
	for b := 0; b < batch; b++ {
		for hd := 0; hd < heads; hd++ {
			m.gatherHead(acts.qkv, qh, kh, vh, b, hd, batch, seqLen)
			probs := acts.probs[(b*heads+hd)*seqLen*seqLen : (b*heads+hd+1)*seqLen*seqLen]
			tensor.MatMulBT(probs, qh, kh, seqLen, dh, seqLen)
			for t := 0; t < seqLen; t++ {
				row := probs[t*seqLen : (t+1)*seqLen]
				for u := range row {
					if u > t {
						row[u] = causalMask
					} else {
						row[u] *= scale
					}
				}
			}
			tensor.SoftmaxRows(probs, probs, seqLen, seqLen)
			tensor.MatMul(ctxh, probs, vh, seqLen, seqLen, dh)
			// Scatter the head's context back into [M,h].
			for t := 0; t < seqLen; t++ {
				copy(acts.ctx[(b*seqLen+t)*h+hd*dh:(b*seqLen+t)*h+(hd+1)*dh], ctxh[t*dh:(t+1)*dh])
			}
		}
	}

	// Output projection + residual.
	acts.attnOut = grow(acts.attnOut, mRows*h)
	tensor.MatMul(acts.attnOut, acts.ctx, p[off.wProj:off.wProj+h*h], mRows, h, h)
	tensor.AddBiasRows(acts.attnOut, p[off.bProj:off.bProj+h], mRows, h)
	acts.x2 = grow(acts.x2, mRows*h)
	copy(acts.x2, acts.x)
	tensor.Add(acts.x2, acts.attnOut)

	// LN2 + MLP + residual.
	acts.mlin = grow(acts.mlin, mRows*h)
	acts.xhat2 = grow(acts.xhat2, mRows*h)
	acts.invStd2 = grow(acts.invStd2, mRows)
	tensor.LayerNorm(acts.mlin, acts.xhat2, acts.invStd2, acts.x2,
		p[off.ln2Gamma:off.ln2Gamma+h], p[off.ln2Beta:off.ln2Beta+h], mRows, h, lnEps)
	acts.h1 = grow(acts.h1, mRows*ffn)
	tensor.MatMul(acts.h1, acts.mlin, p[off.wFC1:off.wFC1+h*ffn], mRows, h, ffn)
	tensor.AddBiasRows(acts.h1, p[off.bFC1:off.bFC1+ffn], mRows, ffn)
	acts.g = grow(acts.g, mRows*ffn)
	tensor.GELU(acts.g, acts.h1)
	tensor.MatMul(out, acts.g, p[off.wFC2:off.wFC2+ffn*h], mRows, ffn, h)
	tensor.AddBiasRows(out, p[off.bFC2:off.bFC2+h], mRows, h)
	tensor.Add(out, acts.x2)
	return out
}

// gatherHead copies one (sample, head) slice of the packed QKV activations
// into contiguous [T,dh] scratch matrices.
func (m *Model) gatherHead(qkv, qh, kh, vh []float32, b, hd, batch, seqLen int) {
	h := m.Cfg.Hidden
	dh := h / m.Cfg.Heads
	for t := 0; t < seqLen; t++ {
		base := (b*seqLen + t) * 3 * h
		copy(qh[t*dh:(t+1)*dh], qkv[base+hd*dh:base+(hd+1)*dh])
		copy(kh[t*dh:(t+1)*dh], qkv[base+h+hd*dh:base+h+(hd+1)*dh])
		copy(vh[t*dh:(t+1)*dh], qkv[base+2*h+hd*dh:base+2*h+(hd+1)*dh])
	}
}

// blockBackward consumes dOut (gradient of the block output) and the
// activations from blockForward, accumulates parameter gradients, and
// writes the gradient with respect to the block input into dst (which must
// not alias dOut; the caller double-buffers). Workspace scratch reused
// across steps is either fully overwritten by the overwrite-kernels
// (MatMul/MatMulBT, copies) or explicitly zeroed before an accumulating
// kernel (GELUBackward, MatMulATAdd, SoftmaxRowsBackward) — matching the
// zero state fresh allocations used to provide.
func (m *Model) blockBackward(i int, acts *blockActs, dOut, dst []float32, batch, seqLen int) {
	h := m.Cfg.Hidden
	heads := m.Cfg.Heads
	dh := h / heads
	ffn := 4 * h
	mRows := batch * seqLen
	off := m.Layout.blocks[i]
	p, g := m.Params, m.Grads
	ws := &m.ws

	// Residual: out = x2 + MLP(LN2(x2)) ⇒ dx2 starts as dOut.
	ws.dX2 = grow(ws.dX2, mRows*h)
	dX2 := ws.dX2
	copy(dX2, dOut)

	// MLP backward.
	ws.dG = grow(ws.dG, mRows*ffn)
	dG := ws.dG
	tensor.MatMulBT(dG, dOut, p[off.wFC2:off.wFC2+ffn*h], mRows, h, ffn)
	tensor.MatMulATAdd(g[off.wFC2:off.wFC2+ffn*h], acts.g, dOut, mRows, ffn, h)
	tensor.BiasGradRows(g[off.bFC2:off.bFC2+h], dOut, mRows, h)
	ws.dH1 = grow(ws.dH1, mRows*ffn)
	dH1 := ws.dH1
	tensor.Zero(dH1) // GELUBackward accumulates
	tensor.GELUBackward(dH1, dG, acts.h1)
	ws.dMlin = grow(ws.dMlin, mRows*h)
	dMlin := ws.dMlin
	tensor.MatMulBT(dMlin, dH1, p[off.wFC1:off.wFC1+h*ffn], mRows, ffn, h)
	tensor.MatMulATAdd(g[off.wFC1:off.wFC1+h*ffn], acts.mlin, dH1, mRows, h, ffn)
	tensor.BiasGradRows(g[off.bFC1:off.bFC1+ffn], dH1, mRows, ffn)
	tensor.LayerNormBackward(dX2, g[off.ln2Gamma:off.ln2Gamma+h], g[off.ln2Beta:off.ln2Beta+h],
		dMlin, acts.xhat2, acts.invStd2, p[off.ln2Gamma:off.ln2Gamma+h], mRows, h)

	// Attention output projection backward (dAttnOut == dX2: x2 = x + attnOut).
	ws.dCtx = grow(ws.dCtx, mRows*h)
	dCtx := ws.dCtx
	tensor.MatMulBT(dCtx, dX2, p[off.wProj:off.wProj+h*h], mRows, h, h)
	tensor.MatMulATAdd(g[off.wProj:off.wProj+h*h], acts.ctx, dX2, mRows, h, h)
	tensor.BiasGradRows(g[off.bProj:off.bProj+h], dX2, mRows, h)

	// Attention core backward, per (sample, head).
	ws.dQKV = grow(ws.dQKV, mRows*3*h)
	dQKV := ws.dQKV
	scale := float32(1 / math.Sqrt(float64(dh)))
	ws.qh = grow(ws.qh, seqLen*dh)
	ws.kh = grow(ws.kh, seqLen*dh)
	ws.vh = grow(ws.vh, seqLen*dh)
	ws.dctxh = grow(ws.dctxh, seqLen*dh)
	ws.dP = grow(ws.dP, seqLen*seqLen)
	ws.dS = grow(ws.dS, seqLen*seqLen)
	ws.dqh = grow(ws.dqh, seqLen*dh)
	ws.dkh = grow(ws.dkh, seqLen*dh)
	ws.dvh = grow(ws.dvh, seqLen*dh)
	qh, kh, vh := ws.qh, ws.kh, ws.vh
	dctxh, dP, dS := ws.dctxh, ws.dP, ws.dS
	dqh, dkh, dvh := ws.dqh, ws.dkh, ws.dvh
	for b := 0; b < batch; b++ {
		for hd := 0; hd < heads; hd++ {
			m.gatherHead(acts.qkv, qh, kh, vh, b, hd, batch, seqLen)
			probs := acts.probs[(b*heads+hd)*seqLen*seqLen : (b*heads+hd+1)*seqLen*seqLen]
			for t := 0; t < seqLen; t++ {
				copy(dctxh[t*dh:(t+1)*dh], dCtx[(b*seqLen+t)*h+hd*dh:(b*seqLen+t)*h+(hd+1)*dh])
			}
			// ctx = P·V.
			tensor.MatMulBT(dP, dctxh, vh, seqLen, dh, seqLen)
			tensor.MatMulAT(dvh, probs, dctxh, seqLen, seqLen, dh)
			// Softmax.
			tensor.Zero(dS)
			tensor.SoftmaxRowsBackward(dS, dP, probs, seqLen, seqLen)
			// Scale (applied to scores before softmax).
			tensor.Scale(dS, scale)
			// scores = scale·Q·Kᵀ.
			tensor.MatMul(dqh, dS, kh, seqLen, seqLen, dh)
			tensor.MatMulAT(dkh, dS, qh, seqLen, seqLen, dh)
			// Scatter head gradients into packed dQKV.
			for t := 0; t < seqLen; t++ {
				base := (b*seqLen + t) * 3 * h
				copy(dQKV[base+hd*dh:base+(hd+1)*dh], dqh[t*dh:(t+1)*dh])
				copy(dQKV[base+h+hd*dh:base+h+(hd+1)*dh], dkh[t*dh:(t+1)*dh])
				copy(dQKV[base+2*h+hd*dh:base+2*h+(hd+1)*dh], dvh[t*dh:(t+1)*dh])
			}
		}
	}

	// QKV projection backward.
	ws.dA = grow(ws.dA, mRows*h)
	dA := ws.dA
	tensor.MatMulBT(dA, dQKV, p[off.wQKV:off.wQKV+h*3*h], mRows, 3*h, h)
	tensor.MatMulATAdd(g[off.wQKV:off.wQKV+h*3*h], acts.a, dQKV, mRows, h, 3*h)
	tensor.BiasGradRows(g[off.bQKV:off.bQKV+3*h], dQKV, mRows, 3*h)

	// LN1 + residual: dx = dx2 (residual) + LN1-backward(dA).
	copy(dst, dX2)
	tensor.LayerNormBackward(dst, g[off.ln1Gamma:off.ln1Gamma+h], g[off.ln1Beta:off.ln1Beta+h],
		dA, acts.xhat1, acts.invStd1, p[off.ln1Gamma:off.ln1Gamma+h], mRows, h)
}
