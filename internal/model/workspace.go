package model

import "repro/internal/tensor"

// The model's step workspace: every activation, gradient and attention
// scratch buffer the forward/backward pass needs, retained across steps so
// the steady-state training loop performs no heap allocation (the same
// discipline ZeRO-R's constant buffers apply to real training runs, §6.3).
// Buffers grow to the high-water mark of the shapes seen and are reused by
// capacity; ReleaseWorkspace hands everything back to the GC at trainer
// teardown so sequential trainers never double-resident their scratch.
//
// Ownership rule: a buffer returned by grow has UNDEFINED contents. Every
// use below either fully overwrites it (matmul/layernorm/softmax forward
// kernels, explicit copies) or zeroes it first when the consuming kernel
// accumulates (see the tensor package's *Backward conventions).

// workspace holds the per-model scratch. It doubles as the saved forward
// state: Loss fills the activation fields and Backward consumes them.
type workspace struct {
	// saved forward state
	batch, seqLen int
	ids           []int
	targets       []int
	x0            []float32 // embedding output
	blocks        []blockActs
	outs          [][]float32 // per-block outputs (block i's out = block i+1's input)
	xL            []float32   // last block output (alias into outs)
	xhatF         []float32
	invStdF       []float32
	xf            []float32 // final layernorm output
	logits        []float32
	probs         []float32 // softmax over vocab

	// backward scratch
	dLogits []float32
	dXf     []float32
	dXa     []float32 // input-gradient double buffer (blocks alternate)
	dXb     []float32
	dX2     []float32
	dG      []float32
	dH1     []float32
	dMlin   []float32
	dCtx    []float32
	dQKV    []float32
	dA      []float32

	// per-(sample, head) attention scratch, shared by forward and backward
	qh, kh, vh, ctxh []float32
	dctxh, dP, dS    []float32
	dqh, dkh, dvh    []float32

	// fp16 compute path (fp16.go). Saved activations live in the 2-byte
	// hblocks/hxf/hxhatF stores; the s* fp32 staging buffers are shared by
	// every layer (one layer's working set, not one per layer) and reused
	// again by backward. hdXa/hdXb double-buffer the input gradient in
	// 2-byte form; hdStage holds the transient fp16 image of whichever
	// d-tensor feeds the next fused matmul.
	hblocks                                []blockActsH
	hxf, hxhatF                            tensor.HalfBuffer
	hdLogits, hdXa, hdXb, hdStage          tensor.HalfBuffer
	sX, sXhat, sA, sCtx, sAttn, sX2, sMlin []float32
	sQKV, sProbs, sH1, sG, sDH1, sDQKV     []float32
	sLogits                                []float32 // logits, then probs, then dLogits
	pGamma, pBeta, pBias                   []float32 // fp16 param decode scratch
	overflow                               bool      // any fp16 store overflowed since TakeOverflow
}

// grow returns a slice of length n backed by buf when its capacity
// suffices, or a fresh allocation that becomes the new high-water buffer.
// Contents are undefined (see the ownership rule above).
func grow(buf []float32, n int) []float32 {
	if cap(buf) >= n {
		return buf[:n]
	}
	return make([]float32, n)
}

// ReleaseWorkspace drops every retained scratch buffer (and any pending
// forward state), returning the memory to the GC — the teardown hook
// zero.Trainer.Close uses so two sequential trainers in one process never
// hold two workspaces at once.
func (m *Model) ReleaseWorkspace() {
	m.ws = workspace{}
	m.fwd = nil
}

// WorkspaceBytes reports the bytes currently retained by the step
// workspace — the measurable form of the pool-hygiene contract.
func (m *Model) WorkspaceBytes() int64 {
	ws := &m.ws
	var n int
	for _, b := range [][]float32{
		ws.x0, ws.xhatF, ws.invStdF, ws.xf, ws.logits, ws.probs,
		ws.dLogits, ws.dXf, ws.dXa, ws.dXb, ws.dX2, ws.dG, ws.dH1,
		ws.dMlin, ws.dCtx, ws.dQKV, ws.dA,
		ws.qh, ws.kh, ws.vh, ws.ctxh, ws.dctxh, ws.dP, ws.dS,
		ws.dqh, ws.dkh, ws.dvh, ws.xL,
	} {
		n += cap(b)
	}
	// xL aliases the last outs entry; subtract the double count.
	n -= cap(ws.xL)
	for _, b := range ws.outs {
		n += cap(b)
	}
	for i := range ws.blocks {
		a := &ws.blocks[i]
		for _, b := range [][]float32{
			a.xhat1, a.invStd1, a.a, a.qkv, a.probs, a.ctx, a.attnOut,
			a.x2, a.xhat2, a.invStd2, a.mlin, a.h1, a.g,
		} {
			n += cap(b)
		}
	}
	// fp16-path buffers: fp32 staging at 4 bytes, fp16 stores at 2.
	for _, b := range [][]float32{
		ws.sX, ws.sXhat, ws.sA, ws.sCtx, ws.sAttn, ws.sX2, ws.sMlin,
		ws.sQKV, ws.sProbs, ws.sH1, ws.sG, ws.sDH1, ws.sDQKV,
		ws.sLogits, ws.pGamma, ws.pBeta, ws.pBias,
	} {
		n += cap(b)
	}
	var nh int
	for _, b := range []tensor.HalfBuffer{
		ws.hxf, ws.hxhatF, ws.hdLogits, ws.hdXa, ws.hdXb, ws.hdStage,
	} {
		nh += cap(b)
	}
	for i := range ws.hblocks {
		a := &ws.hblocks[i]
		for _, b := range []tensor.HalfBuffer{
			a.xhat1, a.a, a.qkv, a.probs, a.ctx, a.xhat2, a.mlin, a.h1, a.g,
		} {
			nh += cap(b)
		}
		n += cap(a.invStd1) + cap(a.invStd2)
	}
	return int64(n)*4 + int64(nh)*2 + int64(cap(ws.ids)+cap(ws.targets))*8
}
