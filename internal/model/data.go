package model

import "math/rand"

// SyntheticBatch generates a deterministic language-modeling batch: token
// streams with local structure (a noisy repeat-after-k pattern) so the loss
// is learnable, plus next-token targets. It stands in for the paper's text
// corpus; convergence-curve claims are handled by internal/losscurve, while
// this data exercises every numeric code path.
func SyntheticBatch(seed int64, batch, seqLen, vocab int) (ids, targets []int) {
	r := rand.New(rand.NewSource(seed))
	ids = make([]int, batch*seqLen)
	targets = make([]int, batch*seqLen)
	for b := 0; b < batch; b++ {
		stream := make([]int, seqLen+1)
		period := 2 + r.Intn(5)
		for t := range stream {
			if t >= period && r.Float64() < 0.7 {
				stream[t] = stream[t-period] // learnable repetition
			} else {
				stream[t] = r.Intn(vocab)
			}
		}
		copy(ids[b*seqLen:(b+1)*seqLen], stream[:seqLen])
		copy(targets[b*seqLen:(b+1)*seqLen], stream[1:])
	}
	return ids, targets
}

// ShardBatch splits a global batch row-wise across dp ranks; rank r gets
// rows [r*batch/dp, (r+1)*batch/dp). batch must divide evenly, mirroring
// how data-parallel training divides a mini-batch (§2.1).
func ShardBatch(ids, targets []int, batch, dp, rank int) (shardIDs, shardTargets []int, shardBatch int) {
	if batch%dp != 0 {
		panic("model: batch must be divisible by DP degree")
	}
	seqLen := len(ids) / batch
	per := batch / dp
	lo := rank * per * seqLen
	hi := (rank + 1) * per * seqLen
	return ids[lo:hi], targets[lo:hi], per
}
