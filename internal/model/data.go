package model

import "math/rand"

// SyntheticBatch generates a deterministic language-modeling batch: token
// streams with local structure (a noisy repeat-after-k pattern) so the loss
// is learnable, plus next-token targets. It stands in for the paper's text
// corpus; convergence-curve claims are handled by internal/losscurve, while
// this data exercises every numeric code path.
func SyntheticBatch(seed int64, batch, seqLen, vocab int) (ids, targets []int) {
	r := rand.New(rand.NewSource(seed))
	ids = make([]int, batch*seqLen)
	targets = make([]int, batch*seqLen)
	for b := 0; b < batch; b++ {
		stream := make([]int, seqLen+1)
		period := 2 + r.Intn(5)
		for t := range stream {
			if t >= period && r.Float64() < 0.7 {
				stream[t] = stream[t-period] // learnable repetition
			} else {
				stream[t] = r.Intn(vocab)
			}
		}
		copy(ids[b*seqLen:(b+1)*seqLen], stream[:seqLen])
		copy(targets[b*seqLen:(b+1)*seqLen], stream[1:])
	}
	return ids, targets
}

// SyntheticStream adapts SyntheticBatch to the micro-batch stream contract
// (internal/engine.Batcher): it materializes one deterministic global
// batch and cycles its micro-batch slices in order, exactly reproducing
// the slicing TrainBatch performs — so a run driven through the stream is
// bitwise-identical to the legacy materialized-batch loop.
type SyntheticStream struct {
	ids, targets []int
	microTokens  int
	off          int
}

// NewSyntheticStream builds the stream: globalRows rows of seqLen tokens
// from SyntheticBatch(seed), emitted microRows rows at a time. microRows
// must divide globalRows.
func NewSyntheticStream(seed int64, globalRows, microRows, seqLen, vocab int) *SyntheticStream {
	if microRows <= 0 || globalRows%microRows != 0 {
		panic("model: microRows must divide globalRows")
	}
	ids, targets := SyntheticBatch(seed, globalRows, seqLen, vocab)
	return &SyntheticStream{ids: ids, targets: targets, microTokens: microRows * seqLen}
}

// NextBatch returns the next micro-batch slice, wrapping at the end of the
// global batch. The slices alias the stream's fixed buffers.
func (s *SyntheticStream) NextBatch() (ids, targets []int) {
	lo, hi := s.off, s.off+s.microTokens
	s.off = hi % len(s.ids)
	return s.ids[lo:hi], s.targets[lo:hi]
}

// ShardBatch splits a global batch row-wise across dp ranks; rank r gets
// rows [r*batch/dp, (r+1)*batch/dp). batch must divide evenly, mirroring
// how data-parallel training divides a mini-batch (§2.1).
func ShardBatch(ids, targets []int, batch, dp, rank int) (shardIDs, shardTargets []int, shardBatch int) {
	if batch%dp != 0 {
		panic("model: batch must be divisible by DP degree")
	}
	seqLen := len(ids) / batch
	per := batch / dp
	lo := rank * per * seqLen
	hi := (rank + 1) * per * seqLen
	return ids[lo:hi], targets[lo:hi], per
}
