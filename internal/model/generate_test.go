package model

import (
	"testing"

	"repro/internal/tensor"
)

// Overfit a tiny model on a strictly periodic stream; greedy generation
// must then reproduce the period exactly — the end-to-end check that
// embedding, attention (which must look back `period` positions), MLP and
// the tied head cooperate.
func TestGenerateLearnsPeriodicPattern(t *testing.T) {
	cfg := Config{Layers: 2, Hidden: 32, Heads: 4, Vocab: 9, Seq: 16}
	m := New(cfg, 3)

	period := []int{1, 5, 2, 7}
	ids := make([]int, cfg.Seq)
	targets := make([]int, cfg.Seq)
	for i := range ids {
		ids[i] = period[i%4]
		targets[i] = period[(i+1)%4]
	}

	var loss float64
	for step := 0; step < 400; step++ {
		m.ZeroGrads()
		loss = m.Loss(ids, targets, 1)
		m.Backward()
		tensor.AXPY(-0.05, m.Grads, m.Params)
		if loss < 0.05 {
			break
		}
	}
	if loss >= 0.05 {
		t.Fatalf("failed to overfit the period: loss %.4f", loss)
	}

	prompt := []int{1, 5, 2, 7, 1, 5}
	got := m.Generate(prompt, 8)
	want := []int{2, 7, 1, 5, 2, 7, 1, 5}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("generation diverged at %d: got %v, want %v", i, got, want)
		}
	}
}

func TestNextTokenDeterministic(t *testing.T) {
	cfg := Config{Layers: 1, Hidden: 16, Heads: 2, Vocab: 11, Seq: 8}
	m := New(cfg, 5)
	a := m.NextToken([]int{1, 2, 3})
	b := m.NextToken([]int{1, 2, 3})
	if a != b {
		t.Errorf("NextToken not deterministic: %d vs %d", a, b)
	}
	if a < 0 || a >= cfg.Vocab {
		t.Errorf("NextToken out of vocab: %d", a)
	}
}

func TestGenerateSlidesWindow(t *testing.T) {
	cfg := Config{Layers: 1, Hidden: 16, Heads: 2, Vocab: 7, Seq: 4}
	m := New(cfg, 9)
	prompt := []int{1, 2, 3, 4 % 7, 5 % 7, 6}
	got := m.Generate(prompt, 3) // context longer than Seq must not panic
	if len(got) != 3 {
		t.Fatalf("generated %d tokens, want 3", len(got))
	}
}

func TestNextTokenEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	New(Config{Layers: 1, Hidden: 8, Heads: 2, Vocab: 5, Seq: 4}, 1).NextToken(nil)
}
