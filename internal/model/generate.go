package model

// Inference helpers. Training is the paper's subject, but a model you can
// sample from is the natural smoke test that the full pipeline — embedding,
// attention, MLP, tied output head — computes something meaningful, and it
// gives the examples a way to show a trained artifact.

// NextToken returns the greedy (argmax) next-token prediction for a single
// sequence of ids.
func (m *Model) NextToken(ids []int) int {
	if len(ids) == 0 {
		panic("model: NextToken needs at least one token")
	}
	dummy := make([]int, len(ids))
	m.Loss(ids, dummy, 1)
	fs := m.fwd
	m.fwd = nil // inference does not retain backward state
	last := (len(ids) - 1) * m.Cfg.Vocab
	row := fs.probs[last : last+m.Cfg.Vocab]
	best := 0
	for i, p := range row {
		if p > row[best] {
			best = i
		}
	}
	return best
}

// Generate extends prompt by n greedy tokens, re-running the forward pass
// per token (no KV cache — clarity over speed at test scale). The context
// window slides once the configured sequence length is reached.
func (m *Model) Generate(prompt []int, n int) []int {
	out := append([]int(nil), prompt...)
	for i := 0; i < n; i++ {
		ctx := out
		if len(ctx) > m.Cfg.Seq {
			ctx = ctx[len(ctx)-m.Cfg.Seq:]
		}
		out = append(out, m.NextToken(ctx))
	}
	return out[len(prompt):]
}
