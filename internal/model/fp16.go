package model

import (
	"math"

	"repro/internal/tensor"
)

// The fp16 compute path: the GPU mixed-precision contract (§B of the ZeRO
// paper) realized in storage. When FP16Compute is on, every tensor that
// persists across the step — saved forward activations, the double-buffered
// input gradient, and the parameter copy the compute reads — lives in
// 2-byte binary16 form, while all arithmetic accumulates in fp32:
//
//   - Weights: Params stays the fp32 master (the optimizer's domain);
//     ParamsH is its rounded fp16 image and is what every kernel reads.
//     RefreshHalfParams re-encodes a range after the master changes.
//   - Activations: each block's saved-for-backward tensors are HalfBuffers
//     (blockActsH). Forward computes through one set of fp32 staging
//     buffers shared by all layers — O(1) in depth, the activation memory
//     is the 2-byte stores — and every value crossing a kernel boundary is
//     rounded through binary16 (FromFloatsRound), so the fp32 staging
//     always holds exactly the values the fp16 stores decode to.
//   - Matmuls run the fused half-domain kernels (MatMulH/MatMulBTH/
//     MatMulATH-family): fp16 operands, fp32 accumulation, one rounding at
//     the store. Elementwise kernels (layernorm, softmax, GELU) and the
//     per-head attention core run on the rounded fp32 images.
//   - Gradients: dLogits is scaled by LossScale before the backward sweep
//     (dynamic loss scaling), weight gradients accumulate in fp32 Grads,
//     and each overflow detected while encoding an fp16 store raises the
//     workspace overflow flag that TakeOverflow surfaces to the trainer.
//
// The fp32 path is untouched: fp16 mode dispatches to lossH/backwardH at
// the top of Loss/Backward and shares only the small per-head scratch.

// blockActsH is blockActs in 2-byte form: exactly the tensors the backward
// pass reads, stored as binary16. The inverse standard deviations stay
// fp32 — they are O(M) and precision-critical.
type blockActsH struct {
	xhat1   tensor.HalfBuffer // [M,h]
	a       tensor.HalfBuffer // [M,h] ln1 output
	qkv     tensor.HalfBuffer // [M,3h]
	probs   tensor.HalfBuffer // attention softmax [B*heads, T, T]
	ctx     tensor.HalfBuffer // [M,h]
	xhat2   tensor.HalfBuffer // [M,h]
	mlin    tensor.HalfBuffer // [M,h] ln2 output
	h1      tensor.HalfBuffer // [M,ffn] MLP pre-GELU
	g       tensor.HalfBuffer // [M,ffn] GELU output
	invStd1 []float32
	invStd2 []float32
}

// growH is grow for fp16 buffers.
func growH(buf tensor.HalfBuffer, n int) tensor.HalfBuffer {
	if cap(buf) >= n {
		return buf[:n]
	}
	return tensor.NewHalfBuffer(n)
}

// SetFP16Compute switches the model onto the fp16 storage path (and back).
// Enabling allocates the ParamsH compute copy and encodes the current
// master into it; callers that mutate Params afterwards must
// RefreshHalfParams the touched range.
func (m *Model) SetFP16Compute(on bool) {
	m.fp16 = on
	if on {
		if cap(m.ParamsH) < len(m.Params) {
			m.ParamsH = tensor.NewHalfBuffer(len(m.Params))
		}
		m.ParamsH = m.ParamsH[:len(m.Params)]
		m.RefreshHalfParams(0, len(m.Params))
		if m.LossScale == 0 {
			m.LossScale = 1
		}
	}
}

// FP16Compute reports whether the fp16 storage path is active.
func (m *Model) FP16Compute() bool { return m.fp16 }

// RefreshHalfParams re-encodes Params[lo:hi] into the fp16 compute copy —
// the writeback point after the optimizer (or a parameter all-gather)
// changes the fp32 master.
func (m *Model) RefreshHalfParams(lo, hi int) {
	m.ParamsH[lo:hi].FromFloats(m.Params[lo:hi])
}

// TakeOverflow returns and clears the workspace overflow flag: whether any
// fp16 store since the last call overflowed to ±Inf/NaN. The trainer polls
// it per micro-batch to drive dynamic loss scaling.
func (m *Model) TakeOverflow() bool {
	o := m.ws.overflow
	m.ws.overflow = false
	return o
}

// gammaH decodes an h-length layernorm gain from the fp16 compute copy
// into shared scratch.
func (m *Model) gammaH(off, h int) []float32 {
	ws := &m.ws
	ws.pGamma = grow(ws.pGamma, h)
	m.ParamsH[off : off+h].ToFloats(ws.pGamma)
	return ws.pGamma
}

// lnParamsH decodes a layernorm gain/shift pair from the fp16 compute copy.
func (m *Model) lnParamsH(gOff, bOff, h int) (gamma, beta []float32) {
	ws := &m.ws
	ws.pBeta = grow(ws.pBeta, h)
	m.ParamsH[bOff : bOff+h].ToFloats(ws.pBeta)
	return m.gammaH(gOff, h), ws.pBeta
}

// biasH decodes an n-length bias from the fp16 compute copy into shared
// scratch (grown to the ffn high-water mark).
func (m *Model) biasH(off, n int) []float32 {
	ws := &m.ws
	ws.pBias = grow(ws.pBias, n)
	m.ParamsH[off : off+n].ToFloats(ws.pBias[:n])
	return ws.pBias[:n]
}

// lossH is Loss on the fp16 path: same hook schedule, same math, with
// activations flowing through binary16 at every kernel boundary.
func (m *Model) lossH(ids, targets []int, batch int) float64 {
	seqLen := len(ids) / batch
	h := m.Cfg.Hidden
	v := m.Cfg.Vocab
	mRows := batch * seqLen
	fs := &m.ws
	fs.batch, fs.seqLen = batch, seqLen
	fs.ids = append(fs.ids[:0], ids...)
	fs.targets = append(fs.targets[:0], targets...)

	// Embedding: token + position rows decode straight from the fp16
	// parameter copy; the sum re-rounds through binary16 so block 0 sees an
	// fp16-valued input.
	if m.ForwardHook != nil {
		m.ForwardHook(-1)
	}
	tokH := m.ParamsH[m.Layout.tokEmb : m.Layout.tokEmb+v*h]
	posH := m.ParamsH[m.Layout.posEmb : m.Layout.posEmb+m.Cfg.Seq*h]
	fs.sX = grow(fs.sX, mRows*h)
	fs.pBias = grow(fs.pBias, h)
	posRow := fs.pBias[:h]
	for b := 0; b < batch; b++ {
		for t := 0; t < seqLen; t++ {
			id := ids[b*seqLen+t]
			if id < 0 || id >= v {
				panic("model: token id out of range")
			}
			row := fs.sX[(b*seqLen+t)*h : (b*seqLen+t+1)*h]
			tokH[id*h : (id+1)*h].ToFloats(row)
			posH[t*h : (t+1)*h].ToFloats(posRow)
			tensor.Add(row, posRow)
		}
	}
	fs.overflow = tensor.RoundHalfCheck(fs.sX) || fs.overflow

	// Blocks: input and output ride the shared sX staging buffer.
	if len(fs.hblocks) != m.Cfg.Layers {
		fs.hblocks = make([]blockActsH, m.Cfg.Layers)
	}
	for i := 0; i < m.Cfg.Layers; i++ {
		if m.ForwardHook != nil {
			m.ForwardHook(i)
		}
		m.blockForwardH(i, &fs.hblocks[i], batch, seqLen)
	}

	// Final layernorm + tied-embedding head.
	if m.ForwardHook != nil {
		m.ForwardHook(m.Cfg.Layers)
	}
	fs.sA = grow(fs.sA, mRows*h)
	fs.sXhat = grow(fs.sXhat, mRows*h)
	fs.invStdF = grow(fs.invStdF, mRows)
	gammaF, betaF := m.lnParamsH(m.Layout.lnF, m.Layout.lnF+h, h)
	tensor.LayerNorm(fs.sA, fs.sXhat, fs.invStdF, fs.sX, gammaF, betaF, mRows, h, lnEps)
	fs.hxf = growH(fs.hxf, mRows*h)
	fs.overflow = fs.hxf.FromFloatsRound(fs.sA) || fs.overflow
	fs.hxhatF = growH(fs.hxhatF, mRows*h)
	fs.overflow = fs.hxhatF.FromFloatsRound(fs.sXhat) || fs.overflow

	// Logits from fp16 xf against the fp16 tied embedding; the softmax
	// writes probs over the logits in place (SoftmaxRows allows aliasing),
	// so one fp32 [M,v] buffer carries the head state into backward.
	fs.sLogits = grow(fs.sLogits, mRows*v)
	tensor.MatMulBTH(fs.sLogits, fs.hxf, tokH, mRows, h, v)
	loss := tensor.CrossEntropy(fs.sLogits, fs.sLogits, fs.targets, mRows, v)

	m.fwd = fs
	return loss
}

// blockForwardH runs one transformer block on the fp16 path: fp32 staging
// in, fp16 stores out, half-domain matmuls against the fp16 weight views.
// The block input arrives in ws.sX and the output replaces it.
func (m *Model) blockForwardH(i int, acts *blockActsH, batch, seqLen int) {
	h := m.Cfg.Hidden
	heads := m.Cfg.Heads
	dh := h / heads
	ffn := 4 * h
	mRows := batch * seqLen
	off := m.Layout.blocks[i]
	ws := &m.ws
	x := ws.sX

	// LN1.
	ws.sA = grow(ws.sA, mRows*h)
	ws.sXhat = grow(ws.sXhat, mRows*h)
	acts.invStd1 = grow(acts.invStd1, mRows)
	gamma, beta := m.lnParamsH(off.ln1Gamma, off.ln1Beta, h)
	tensor.LayerNorm(ws.sA, ws.sXhat, acts.invStd1, x, gamma, beta, mRows, h, lnEps)
	acts.xhat1 = growH(acts.xhat1, mRows*h)
	ws.overflow = acts.xhat1.FromFloatsRound(ws.sXhat) || ws.overflow
	acts.a = growH(acts.a, mRows*h)
	ws.overflow = acts.a.FromFloatsRound(ws.sA) || ws.overflow

	// QKV projection: fp16 activations × fp16 weights, fp32 accumulation.
	ws.sQKV = grow(ws.sQKV, mRows*3*h)
	tensor.MatMulH(ws.sQKV, acts.a, m.ParamsH[off.wQKV:off.wQKV+h*3*h], mRows, h, 3*h)
	tensor.AddBiasRows(ws.sQKV, m.biasH(off.bQKV, 3*h), mRows, 3*h)
	acts.qkv = growH(acts.qkv, mRows*3*h)
	ws.overflow = acts.qkv.FromFloatsRound(ws.sQKV) || ws.overflow

	// Multi-head causal self-attention on the rounded fp32 images; each
	// head's softmax rounds through its fp16 store before the context
	// matmul so backward replays the same probabilities.
	ws.sProbs = grow(ws.sProbs, batch*heads*seqLen*seqLen)
	ws.sCtx = grow(ws.sCtx, mRows*h)
	acts.probs = growH(acts.probs, batch*heads*seqLen*seqLen)
	scale := float32(1 / math.Sqrt(float64(dh)))
	ws.qh = grow(ws.qh, seqLen*dh)
	ws.kh = grow(ws.kh, seqLen*dh)
	ws.vh = grow(ws.vh, seqLen*dh)
	ws.ctxh = grow(ws.ctxh, seqLen*dh)
	qh, kh, vh, ctxh := ws.qh, ws.kh, ws.vh, ws.ctxh
	for b := 0; b < batch; b++ {
		for hd := 0; hd < heads; hd++ {
			m.gatherHead(ws.sQKV, qh, kh, vh, b, hd, batch, seqLen)
			probs := ws.sProbs[(b*heads+hd)*seqLen*seqLen : (b*heads+hd+1)*seqLen*seqLen]
			tensor.MatMulBT(probs, qh, kh, seqLen, dh, seqLen)
			for t := 0; t < seqLen; t++ {
				row := probs[t*seqLen : (t+1)*seqLen]
				for u := range row {
					if u > t {
						row[u] = causalMask
					} else {
						row[u] *= scale
					}
				}
			}
			tensor.SoftmaxRows(probs, probs, seqLen, seqLen)
			hp := acts.probs[(b*heads+hd)*seqLen*seqLen : (b*heads+hd+1)*seqLen*seqLen]
			ws.overflow = hp.FromFloatsRound(probs) || ws.overflow
			tensor.MatMul(ctxh, probs, vh, seqLen, seqLen, dh)
			for t := 0; t < seqLen; t++ {
				copy(ws.sCtx[(b*seqLen+t)*h+hd*dh:(b*seqLen+t)*h+(hd+1)*dh], ctxh[t*dh:(t+1)*dh])
			}
		}
	}
	acts.ctx = growH(acts.ctx, mRows*h)
	ws.overflow = acts.ctx.FromFloatsRound(ws.sCtx) || ws.overflow

	// Output projection + residual.
	ws.sAttn = grow(ws.sAttn, mRows*h)
	tensor.MatMulH(ws.sAttn, acts.ctx, m.ParamsH[off.wProj:off.wProj+h*h], mRows, h, h)
	tensor.AddBiasRows(ws.sAttn, m.biasH(off.bProj, h), mRows, h)
	ws.sX2 = grow(ws.sX2, mRows*h)
	copy(ws.sX2, x)
	tensor.Add(ws.sX2, ws.sAttn)
	ws.overflow = tensor.RoundHalfCheck(ws.sX2) || ws.overflow

	// LN2 + MLP + residual.
	ws.sMlin = grow(ws.sMlin, mRows*h)
	acts.invStd2 = grow(acts.invStd2, mRows)
	gamma, beta = m.lnParamsH(off.ln2Gamma, off.ln2Beta, h)
	tensor.LayerNorm(ws.sMlin, ws.sXhat, acts.invStd2, ws.sX2, gamma, beta, mRows, h, lnEps)
	acts.xhat2 = growH(acts.xhat2, mRows*h)
	ws.overflow = acts.xhat2.FromFloatsRound(ws.sXhat) || ws.overflow
	acts.mlin = growH(acts.mlin, mRows*h)
	ws.overflow = acts.mlin.FromFloatsRound(ws.sMlin) || ws.overflow

	ws.sH1 = grow(ws.sH1, mRows*ffn)
	tensor.MatMulH(ws.sH1, acts.mlin, m.ParamsH[off.wFC1:off.wFC1+h*ffn], mRows, h, ffn)
	tensor.AddBiasRows(ws.sH1, m.biasH(off.bFC1, ffn), mRows, ffn)
	acts.h1 = growH(acts.h1, mRows*ffn)
	ws.overflow = acts.h1.FromFloatsRound(ws.sH1) || ws.overflow
	ws.sG = grow(ws.sG, mRows*ffn)
	tensor.GELU(ws.sG, ws.sH1)
	acts.g = growH(acts.g, mRows*ffn)
	ws.overflow = acts.g.FromFloatsRound(ws.sG) || ws.overflow

	tensor.MatMulH(ws.sX, acts.g, m.ParamsH[off.wFC2:off.wFC2+ffn*h], mRows, ffn, h)
	tensor.AddBiasRows(ws.sX, m.biasH(off.bFC2, h), mRows, h)
	tensor.Add(ws.sX, ws.sX2)
	ws.overflow = tensor.RoundHalfCheck(ws.sX) || ws.overflow
}

// backwardH is Backward on the fp16 path. The gradient stream mirrors the
// fp32 sequence exactly; input gradients double-buffer through the 2-byte
// hdXa/hdXb pair, and each d-tensor that feeds a matmul is rounded into an
// fp16 staging buffer first so both matmul operands are half-domain.
func (m *Model) backwardH() {
	fs := m.fwd
	if fs == nil {
		panic("model: Backward without a preceding Loss")
	}
	m.fwd = nil
	h := m.Cfg.Hidden
	mRows := fs.batch * fs.seqLen
	v := m.Cfg.Vocab

	if m.BackwardPreHook != nil {
		m.BackwardPreHook(m.Cfg.Layers)
	}
	tokH := m.ParamsH[m.Layout.tokEmb : m.Layout.tokEmb+v*h]
	dTok := m.Grads[m.Layout.tokEmb : m.Layout.tokEmb+v*h]
	dPos := m.Grads[m.Layout.posEmb : m.Layout.posEmb+m.Cfg.Seq*h]

	// Head: dLogits (loss-scaled), then through the tied embedding with
	// both operands fp16. dLogits overwrites the probs buffer in place —
	// CrossEntropyBackward is element-wise in probs, and backward has no
	// further use for the probabilities.
	dLogits := fs.sLogits
	tensor.CrossEntropyBackward(dLogits, fs.sLogits, fs.targets, mRows, v)
	if m.LossScale != 1 {
		tensor.Scale(dLogits, m.LossScale)
	}
	fs.hdLogits = growH(fs.hdLogits, mRows*v)
	fs.overflow = fs.hdLogits.FromFloatsRound(dLogits) || fs.overflow
	fs.sA = grow(fs.sA, mRows*h)
	dXf := fs.sA
	tensor.MatMulH(dXf, fs.hdLogits, tokH, mRows, v, h)
	tensor.MatMulATAddH(dTok, fs.hdLogits, fs.hxf, mRows, v, h)

	// Final layernorm backward into the shared dst staging buffer.
	fs.sAttn = grow(fs.sAttn, mRows*h)
	dst := fs.sAttn
	tensor.Zero(dst)
	fs.sXhat = grow(fs.sXhat, mRows*h)
	fs.hxhatF.ToFloats(fs.sXhat)
	gammaF := m.gammaH(m.Layout.lnF, h)
	dGammaF := m.Grads[m.Layout.lnF : m.Layout.lnF+h]
	dBetaF := m.Grads[m.Layout.lnF+h : m.Layout.lnF+2*h]
	tensor.LayerNormBackward(dst, dGammaF, dBetaF, dXf, fs.sXhat, fs.invStdF, gammaF, mRows, h)

	// Blocks in reverse, double-buffering the input gradient in 2-byte
	// form: each block decodes hdX, writes its input gradient to the fp32
	// dst staging, and re-encodes into the other half buffer.
	fs.hdXa = growH(fs.hdXa, mRows*h)
	fs.overflow = fs.hdXa.FromFloatsRound(dst) || fs.overflow
	fs.hdXb = growH(fs.hdXb, mRows*h)
	hdX, hdNext := fs.hdXa, fs.hdXb
	for i := m.Cfg.Layers - 1; i >= 0; i-- {
		if m.BackwardPreHook != nil {
			m.BackwardPreHook(i)
		}
		m.blockBackwardH(i, &fs.hblocks[i], hdX, hdNext, fs.batch, fs.seqLen)
		hdX, hdNext = hdNext, hdX
		if m.BackwardHook != nil {
			m.BackwardHook(i)
		}
	}

	// Embedding gradients: blockBackwardH left block 0's input gradient
	// (the rounded image of hdX) in the dst staging buffer.
	dX := fs.sAttn
	for b := 0; b < fs.batch; b++ {
		for t := 0; t < fs.seqLen; t++ {
			id := fs.ids[b*fs.seqLen+t]
			row := dX[(b*fs.seqLen+t)*h : (b*fs.seqLen+t+1)*h]
			tensor.Add(dTok[id*h:(id+1)*h], row)
			tensor.Add(dPos[t*h:(t+1)*h], row)
		}
	}
}

// blockBackwardH is blockBackward on the fp16 path: saved activations
// decode from their 2-byte stores on use, matmuls whose operands exist in
// fp16 run the fused half kernels, and the block's input gradient is
// re-encoded into hdst (its fp32 image stays in ws.sAttn for the caller).
func (m *Model) blockBackwardH(i int, acts *blockActsH, hdOut, hdst tensor.HalfBuffer, batch, seqLen int) {
	h := m.Cfg.Hidden
	heads := m.Cfg.Heads
	dh := h / heads
	ffn := 4 * h
	mRows := batch * seqLen
	off := m.Layout.blocks[i]
	g := m.Grads
	ws := &m.ws

	// Residual: dx2 starts as dOut (decoded once; the fp16 copy feeds the
	// fused matmuls directly).
	ws.sX = grow(ws.sX, mRows*h)
	dOut := ws.sX
	hdOut.ToFloats(dOut)
	ws.sX2 = grow(ws.sX2, mRows*h)
	dX2 := ws.sX2
	copy(dX2, dOut)

	// MLP backward.
	ws.sG = grow(ws.sG, mRows*ffn)
	dG := ws.sG
	tensor.MatMulBTH(dG, hdOut, m.ParamsH[off.wFC2:off.wFC2+ffn*h], mRows, h, ffn)
	tensor.MatMulATAddH(g[off.wFC2:off.wFC2+ffn*h], acts.g, hdOut, mRows, ffn, h)
	tensor.BiasGradRows(g[off.bFC2:off.bFC2+h], dOut, mRows, h)
	ws.sH1 = grow(ws.sH1, mRows*ffn)
	acts.h1.ToFloats(ws.sH1)
	ws.sDH1 = grow(ws.sDH1, mRows*ffn)
	dH1 := ws.sDH1
	tensor.Zero(dH1) // GELUBackward accumulates
	tensor.GELUBackward(dH1, dG, ws.sH1)
	ws.hdStage = growH(ws.hdStage, mRows*ffn)
	hdH1 := ws.hdStage[:mRows*ffn]
	ws.overflow = hdH1.FromFloatsRound(dH1) || ws.overflow
	ws.sMlin = grow(ws.sMlin, mRows*h)
	dMlin := ws.sMlin
	tensor.MatMulBTH(dMlin, hdH1, m.ParamsH[off.wFC1:off.wFC1+h*ffn], mRows, ffn, h)
	tensor.MatMulATAddH(g[off.wFC1:off.wFC1+h*ffn], acts.mlin, hdH1, mRows, h, ffn)
	tensor.BiasGradRows(g[off.bFC1:off.bFC1+ffn], dH1, mRows, ffn)
	ws.sXhat = grow(ws.sXhat, mRows*h)
	acts.xhat2.ToFloats(ws.sXhat)
	tensor.LayerNormBackward(dX2, g[off.ln2Gamma:off.ln2Gamma+h], g[off.ln2Beta:off.ln2Beta+h],
		dMlin, ws.sXhat, acts.invStd2, m.gammaH(off.ln2Gamma, h), mRows, h)

	// Attention output projection backward (dAttnOut == dX2), fp16 dX2
	// against the fp16 projection weights and context.
	hdX2 := ws.hdStage[:mRows*h]
	ws.overflow = hdX2.FromFloatsRound(dX2) || ws.overflow
	ws.sCtx = grow(ws.sCtx, mRows*h)
	dCtx := ws.sCtx
	tensor.MatMulBTH(dCtx, hdX2, m.ParamsH[off.wProj:off.wProj+h*h], mRows, h, h)
	tensor.MatMulATAddH(g[off.wProj:off.wProj+h*h], acts.ctx, hdX2, mRows, h, h)
	tensor.BiasGradRows(g[off.bProj:off.bProj+h], dX2, mRows, h)

	// Attention core backward on decoded fp32 images, per (sample, head).
	ws.sQKV = grow(ws.sQKV, mRows*3*h)
	acts.qkv.ToFloats(ws.sQKV)
	ws.sProbs = grow(ws.sProbs, batch*heads*seqLen*seqLen)
	acts.probs.ToFloats(ws.sProbs)
	ws.sDQKV = grow(ws.sDQKV, mRows*3*h)
	dQKV := ws.sDQKV
	scale := float32(1 / math.Sqrt(float64(dh)))
	ws.qh = grow(ws.qh, seqLen*dh)
	ws.kh = grow(ws.kh, seqLen*dh)
	ws.vh = grow(ws.vh, seqLen*dh)
	ws.dctxh = grow(ws.dctxh, seqLen*dh)
	ws.dP = grow(ws.dP, seqLen*seqLen)
	ws.dS = grow(ws.dS, seqLen*seqLen)
	ws.dqh = grow(ws.dqh, seqLen*dh)
	ws.dkh = grow(ws.dkh, seqLen*dh)
	ws.dvh = grow(ws.dvh, seqLen*dh)
	qh, kh, vh := ws.qh, ws.kh, ws.vh
	dctxh, dP, dS := ws.dctxh, ws.dP, ws.dS
	dqh, dkh, dvh := ws.dqh, ws.dkh, ws.dvh
	for b := 0; b < batch; b++ {
		for hd := 0; hd < heads; hd++ {
			m.gatherHead(ws.sQKV, qh, kh, vh, b, hd, batch, seqLen)
			probs := ws.sProbs[(b*heads+hd)*seqLen*seqLen : (b*heads+hd+1)*seqLen*seqLen]
			for t := 0; t < seqLen; t++ {
				copy(dctxh[t*dh:(t+1)*dh], dCtx[(b*seqLen+t)*h+hd*dh:(b*seqLen+t)*h+(hd+1)*dh])
			}
			tensor.MatMulBT(dP, dctxh, vh, seqLen, dh, seqLen)
			tensor.MatMulAT(dvh, probs, dctxh, seqLen, seqLen, dh)
			tensor.Zero(dS)
			tensor.SoftmaxRowsBackward(dS, dP, probs, seqLen, seqLen)
			tensor.Scale(dS, scale)
			tensor.MatMul(dqh, dS, kh, seqLen, seqLen, dh)
			tensor.MatMulAT(dkh, dS, qh, seqLen, seqLen, dh)
			for t := 0; t < seqLen; t++ {
				base := (b*seqLen + t) * 3 * h
				copy(dQKV[base+hd*dh:base+(hd+1)*dh], dqh[t*dh:(t+1)*dh])
				copy(dQKV[base+h+hd*dh:base+h+(hd+1)*dh], dkh[t*dh:(t+1)*dh])
				copy(dQKV[base+2*h+hd*dh:base+2*h+(hd+1)*dh], dvh[t*dh:(t+1)*dh])
			}
		}
	}

	// QKV projection backward.
	hdQKV := ws.hdStage[:mRows*3*h]
	ws.overflow = hdQKV.FromFloatsRound(dQKV) || ws.overflow
	ws.sA = grow(ws.sA, mRows*h)
	dA := ws.sA
	tensor.MatMulBTH(dA, hdQKV, m.ParamsH[off.wQKV:off.wQKV+h*3*h], mRows, 3*h, h)
	tensor.MatMulATAddH(g[off.wQKV:off.wQKV+h*3*h], acts.a, hdQKV, mRows, h, 3*h)
	tensor.BiasGradRows(g[off.bQKV:off.bQKV+3*h], dQKV, mRows, 3*h)

	// LN1 + residual: dx = dx2 + LN1-backward(dA), re-encoded 2-byte.
	ws.sAttn = grow(ws.sAttn, mRows*h)
	dst := ws.sAttn
	copy(dst, dX2)
	acts.xhat1.ToFloats(ws.sXhat)
	tensor.LayerNormBackward(dst, g[off.ln1Gamma:off.ln1Gamma+h], g[off.ln1Beta:off.ln1Beta+h],
		dA, ws.sXhat, acts.invStd1, m.gammaH(off.ln1Gamma, h), mRows, h)
	ws.overflow = hdst.FromFloatsRound(dst) || ws.overflow
}
