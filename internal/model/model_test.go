package model

import (
	"math"
	"testing"

	"repro/internal/tensor"
)

func tinyConfig() Config {
	return Config{Layers: 2, Hidden: 16, Heads: 2, Vocab: 23, Seq: 8}
}

func TestConfigValidate(t *testing.T) {
	if err := tinyConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := tinyConfig()
	bad.Heads = 3 // does not divide 16
	if bad.Validate() == nil {
		t.Error("expected divisibility error")
	}
	if (Config{}).Validate() == nil {
		t.Error("expected positivity error")
	}
}

func TestLayoutCoversBufferExactly(t *testing.T) {
	cfg := tinyConfig()
	layout := BuildLayout(cfg)
	// Segments must tile [0, Total) without gaps or overlap.
	off := 0
	for _, s := range layout.Segments {
		if s.Lo != off {
			t.Fatalf("segment %s starts at %d, expected %d", s.Name, s.Lo, off)
		}
		if s.Len() <= 0 {
			t.Fatalf("segment %s empty", s.Name)
		}
		off = s.Hi
	}
	if off != layout.Total {
		t.Fatalf("segments cover %d of %d", off, layout.Total)
	}
	// Parameter-count formula: 12h²+13h per layer + (V+S)h + 2h.
	h := cfg.Hidden
	want := cfg.Layers*(12*h*h+13*h) + (cfg.Vocab+cfg.Seq)*h + 2*h
	if layout.Total != want {
		t.Errorf("ParamCount = %d, want %d", layout.Total, want)
	}
}

func TestLayerSegmentsPartitionLayout(t *testing.T) {
	cfg := tinyConfig()
	layout := BuildLayout(cfg)
	groups := layout.LayerSegments(cfg.Layers)
	if len(groups) != cfg.Layers+2 {
		t.Fatalf("got %d groups, want %d", len(groups), cfg.Layers+2)
	}
	off := 0
	for _, g := range groups {
		if g.Lo != off {
			t.Fatalf("group %s starts at %d, expected %d", g.Name, g.Lo, off)
		}
		off = g.Hi
	}
	if off != layout.Total {
		t.Fatalf("groups cover %d of %d", off, layout.Total)
	}
}

func TestLossIsFiniteAndNearUniformAtInit(t *testing.T) {
	cfg := tinyConfig()
	m := New(cfg, 1)
	ids, targets := SyntheticBatch(7, 3, cfg.Seq, cfg.Vocab)
	loss := m.Loss(ids, targets, 3)
	uniform := math.Log(float64(cfg.Vocab))
	if math.IsNaN(loss) || math.IsInf(loss, 0) {
		t.Fatalf("loss = %v", loss)
	}
	// Near-uniform prediction at small random init.
	if math.Abs(loss-uniform) > 0.5 {
		t.Errorf("initial loss %.3f, want ≈ ln(V) = %.3f", loss, uniform)
	}
}

func TestDeterministicForward(t *testing.T) {
	cfg := tinyConfig()
	ids, targets := SyntheticBatch(3, 2, cfg.Seq, cfg.Vocab)
	m1 := New(cfg, 42)
	m2 := New(cfg, 42)
	l1 := m1.Loss(ids, targets, 2)
	l2 := m2.Loss(ids, targets, 2)
	if l1 != l2 {
		t.Errorf("same seed, different loss: %v vs %v", l1, l2)
	}
	if d := tensor.MaxDiff(m1.Params, m2.Params); d != 0 {
		t.Errorf("same seed, different params: %g", d)
	}
}

// Full-model gradient check: analytic gradients against central finite
// differences on a sample of parameters from every tensor type.
func TestModelGradientCheck(t *testing.T) {
	cfg := Config{Layers: 2, Hidden: 8, Heads: 2, Vocab: 11, Seq: 5}
	m := New(cfg, 3)
	ids, targets := SyntheticBatch(5, 2, cfg.Seq, cfg.Vocab)
	batch := 2

	m.ZeroGrads()
	loss0 := m.Loss(ids, targets, batch)
	if loss0 <= 0 {
		t.Fatal("degenerate loss")
	}
	m.Backward()
	analytic := append([]float32(nil), m.Grads...)

	const eps = 1e-3
	check := func(idx int, label string) {
		orig := m.Params[idx]
		m.Params[idx] = orig + eps
		lp := m.Loss(ids, targets, batch)
		m.Params[idx] = orig - eps
		lm := m.Loss(ids, targets, batch)
		m.Params[idx] = orig
		numeric := (lp - lm) / (2 * eps)
		got := float64(analytic[idx])
		tol := 2e-2*math.Max(math.Abs(numeric), math.Abs(got)) + 2e-3
		if math.Abs(got-numeric) > tol {
			t.Errorf("%s grad[%d]: analytic %.6f numeric %.6f", label, idx, got, numeric)
		}
	}
	for _, seg := range m.Layout.Segments {
		// Probe three offsets per tensor: first, middle, last.
		check(seg.Lo, seg.Name)
		check(seg.Lo+seg.Len()/2, seg.Name)
		check(seg.Hi-1, seg.Name)
	}
}

// Activation checkpointing must be numerically identical to the vanilla
// backward pass (it recomputes the same floats).
func TestCheckpointingMatchesVanilla(t *testing.T) {
	cfg := tinyConfig()
	ids, targets := SyntheticBatch(11, 2, cfg.Seq, cfg.Vocab)

	vanilla := New(cfg, 9)
	vanilla.ZeroGrads()
	lv := vanilla.Loss(ids, targets, 2)
	vanilla.Backward()

	ckpt := New(cfg, 9)
	ckpt.Checkpoint = true
	ckpt.ZeroGrads()
	lc := ckpt.Loss(ids, targets, 2)
	ckpt.Backward()

	if lv != lc {
		t.Errorf("loss differs under checkpointing: %v vs %v", lv, lc)
	}
	if d := tensor.MaxDiff(vanilla.Grads, ckpt.Grads); d != 0 {
		t.Errorf("gradients differ under checkpointing by %g", d)
	}
}

// A few plain-SGD steps on a learnable synthetic pattern must reduce loss —
// the end-to-end sanity check that forward, backward and the data generator
// cohere.
func TestTrainingReducesLoss(t *testing.T) {
	cfg := Config{Layers: 2, Hidden: 32, Heads: 4, Vocab: 17, Seq: 16}
	m := New(cfg, 5)
	ids, targets := SyntheticBatch(21, 4, cfg.Seq, cfg.Vocab)
	first := m.Loss(ids, targets, 4)
	loss := first
	const lr = 0.05
	for step := 0; step < 30; step++ {
		m.ZeroGrads()
		loss = m.Loss(ids, targets, 4)
		m.Backward()
		tensor.AXPY(-lr, m.Grads, m.Params)
	}
	if loss >= first-0.3 {
		t.Errorf("loss did not fall: %.4f -> %.4f", first, loss)
	}
}

func TestCausalMasking(t *testing.T) {
	// Changing a *future* token must not change the logits (and hence the
	// per-position loss contribution) of earlier positions. We test via
	// the total loss of a batch where only the last target differs in
	// position weighting — more directly: perturb the final input token
	// and verify the loss contribution of position 0 is unchanged by
	// comparing losses with identical targets at position 0 only.
	cfg := Config{Layers: 1, Hidden: 8, Heads: 2, Vocab: 7, Seq: 4}
	base := []int{1, 2, 3, 4}
	alt := []int{1, 2, 3, 5} // future-most token differs
	targets := []int{2, 3, 4, 5}

	lossAt := func(ids []int, pos int) float64 {
		// Loss with a one-position target mask: compare full losses of
		// target vectors differing only at pos is awkward; instead read
		// the model's probability of the target at pos via the loss of a
		// batch of size 1 and the chain: run forward, then recompute.
		m2 := New(cfg, 13)
		_ = m2.Loss(ids, targets, 1)
		probs := m2.fwd.probs
		return float64(probs[pos*cfg.Vocab+targets[pos]])
	}
	for pos := 0; pos < 3; pos++ {
		pBase := lossAt(base, pos)
		pAlt := lossAt(alt, pos)
		if pBase != pAlt {
			t.Errorf("position %d prediction changed when a future token changed: %v vs %v", pos, pBase, pAlt)
		}
	}
	// The final position must differ (it attends to the changed token).
	if lossAt(base, 3) == lossAt(alt, 3) {
		t.Error("final position should see the changed token")
	}
}

func TestShardBatch(t *testing.T) {
	ids, targets := SyntheticBatch(1, 8, 4, 10)
	for rank := 0; rank < 4; rank++ {
		sIDs, sTg, per := ShardBatch(ids, targets, 8, 4, rank)
		if per != 2 || len(sIDs) != 8 || len(sTg) != 8 {
			t.Fatalf("rank %d: per=%d len=%d", rank, per, len(sIDs))
		}
		// Shard r must equal rows [2r, 2r+2).
		for i, v := range sIDs {
			if v != ids[rank*8+i] {
				t.Fatalf("rank %d shard mismatch at %d", rank, i)
			}
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic on indivisible batch")
		}
	}()
	ShardBatch(ids, targets, 8, 3, 0)
}

func TestBackwardWithoutLossPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	New(tinyConfig(), 1).Backward()
}
