// Package model implements a GPT-2-like transformer — the workload of every
// experiment in the ZeRO paper — with real numerics: forward pass, manual
// backpropagation, activation checkpointing, and flat parameter storage.
//
// All parameters live in one flat []float32 with per-tensor segments. That
// layout is what makes the package a faithful ZeRO substrate: ZeRO-DP
// partitions the flat space across data-parallel ranks, stage 3 gathers it
// segment by segment, and gradient bucketing walks the same offsets. The
// model is exercised at laptop scale (tiny vocab/hidden sizes) for
// correctness; the paper-scale shapes are handled analytically by
// internal/perfmodel and the memory planner.
package model

import "fmt"

// Config describes a transformer architecture. The JSON tags are the
// "model" block of the declarative engine config (internal/engine).
type Config struct {
	Layers int `json:"layers"` // transformer blocks
	Hidden int `json:"hidden"` // embedding width h
	Heads  int `json:"heads"`  // attention heads (must divide Hidden)
	Vocab  int `json:"vocab"`  // token vocabulary
	Seq    int `json:"seq"`    // maximum sequence length (position table size)
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.Layers <= 0 || c.Hidden <= 0 || c.Heads <= 0 || c.Vocab <= 0 || c.Seq <= 0:
		return fmt.Errorf("model: all dimensions must be positive: %+v", c)
	case c.Hidden%c.Heads != 0:
		return fmt.Errorf("model: hidden %d not divisible by heads %d", c.Hidden, c.Heads)
	}
	return nil
}

// Segment names one parameter tensor inside the flat buffer. Layer < 0
// marks non-block tensors (embeddings, final layernorm).
type Segment struct {
	Name  string
	Layer int
	Lo    int // inclusive start offset in the flat parameter buffer
	Hi    int // exclusive end offset
}

// Len returns the segment's element count.
func (s Segment) Len() int { return s.Hi - s.Lo }

// Layout is the flat-buffer address map of every parameter tensor.
type Layout struct {
	Segments []Segment
	Total    int

	// Offsets used by the forward/backward passes.
	tokEmb, posEmb                 int
	lnF                            int
	blocks                         []blockOffsets
	hidden, heads, vocab, seq, ffn int
}

type blockOffsets struct {
	ln1Gamma, ln1Beta int
	wQKV, bQKV        int
	wProj, bProj      int
	ln2Gamma, ln2Beta int
	wFC1, bFC1        int
	wFC2, bFC2        int
}

// BuildLayout computes the address map for a configuration. The layout
// order is embeddings, then blocks in order, then the final layernorm —
// matching the temporal order parameters are needed in the forward pass,
// which is what ZeRO stage 3's pipelined all-gather schedule exploits
// (§7.2.2).
func BuildLayout(c Config) Layout {
	if err := c.Validate(); err != nil {
		panic(err)
	}
	h := c.Hidden
	ffn := 4 * h
	l := Layout{hidden: h, heads: c.Heads, vocab: c.Vocab, seq: c.Seq, ffn: ffn}
	off := 0
	add := func(name string, layer, n int) int {
		lo := off
		off += n
		l.Segments = append(l.Segments, Segment{Name: name, Layer: layer, Lo: lo, Hi: off})
		return lo
	}
	l.tokEmb = add("tok_emb", -1, c.Vocab*h)
	l.posEmb = add("pos_emb", -1, c.Seq*h)
	l.blocks = make([]blockOffsets, c.Layers)
	for i := 0; i < c.Layers; i++ {
		b := &l.blocks[i]
		b.ln1Gamma = add(fmt.Sprintf("block%d.ln1.gamma", i), i, h)
		b.ln1Beta = add(fmt.Sprintf("block%d.ln1.beta", i), i, h)
		b.wQKV = add(fmt.Sprintf("block%d.attn.wqkv", i), i, h*3*h)
		b.bQKV = add(fmt.Sprintf("block%d.attn.bqkv", i), i, 3*h)
		b.wProj = add(fmt.Sprintf("block%d.attn.wproj", i), i, h*h)
		b.bProj = add(fmt.Sprintf("block%d.attn.bproj", i), i, h)
		b.ln2Gamma = add(fmt.Sprintf("block%d.ln2.gamma", i), i, h)
		b.ln2Beta = add(fmt.Sprintf("block%d.ln2.beta", i), i, h)
		b.wFC1 = add(fmt.Sprintf("block%d.mlp.w1", i), i, h*ffn)
		b.bFC1 = add(fmt.Sprintf("block%d.mlp.b1", i), i, ffn)
		b.wFC2 = add(fmt.Sprintf("block%d.mlp.w2", i), i, ffn*h)
		b.bFC2 = add(fmt.Sprintf("block%d.mlp.b2", i), i, h)
	}
	l.lnF = add("ln_f.gamma", -1, h)
	add("ln_f.beta", -1, h)
	l.Total = off
	return l
}

// ParamCount returns the total number of parameters for the configuration:
// 12h²+13h per layer plus embeddings and the final layernorm. (The output
// head is tied to the token embedding, as in GPT-2.)
func (c Config) ParamCount() int {
	return BuildLayout(c).Total
}

// LayerSegments groups the flat-buffer ranges by transformer block; index
// -1 (stored first) covers the embeddings, index Layers the final norm.
// ZeRO stage 3 uses these groups as its gather/discard granularity.
func (l Layout) LayerSegments(layers int) []Segment {
	out := make([]Segment, 0, layers+2)
	// Embeddings are [0, blocks[0].ln1Gamma).
	out = append(out, Segment{Name: "embeddings", Layer: -1, Lo: 0, Hi: l.blocks[0].ln1Gamma})
	for i := 0; i < layers; i++ {
		lo := l.blocks[i].ln1Gamma
		hi := l.lnF
		if i+1 < layers {
			hi = l.blocks[i+1].ln1Gamma
		}
		out = append(out, Segment{Name: fmt.Sprintf("block%d", i), Layer: i, Lo: lo, Hi: hi})
	}
	out = append(out, Segment{Name: "ln_f", Layer: layers, Lo: l.lnF, Hi: l.Total})
	return out
}
