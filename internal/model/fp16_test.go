package model

import (
	"math"
	"testing"

	"repro/internal/tensor"
)

// The fp16 path must track the f32 path closely at init: same near-uniform
// loss, and gradients that agree to fp16 rounding noise.
func TestFP16LossAndGradsTrackF32(t *testing.T) {
	cfg := Config{Layers: 2, Hidden: 32, Heads: 4, Vocab: 17, Seq: 16}
	ids, targets := SyntheticBatch(7, 2, cfg.Seq, cfg.Vocab)

	ref := New(cfg, 42)
	ref.ZeroGrads()
	lossF := ref.Loss(ids, targets, 2)
	ref.Backward()

	half := New(cfg, 42)
	half.SetFP16Compute(true)
	half.ZeroGrads()
	lossH := half.Loss(ids, targets, 2)
	half.Backward()

	if math.Abs(lossH-lossF) > 0.02*math.Abs(lossF) {
		t.Errorf("fp16 loss %.5f drifts from f32 loss %.5f", lossH, lossF)
	}
	if half.TakeOverflow() {
		t.Error("unexpected overflow on a well-scaled batch")
	}
	// Relative L2 error of the full gradient.
	var num, den float64
	for i := range ref.Grads {
		d := float64(half.Grads[i] - ref.Grads[i])
		num += d * d
		den += float64(ref.Grads[i]) * float64(ref.Grads[i])
	}
	if den == 0 {
		t.Fatal("degenerate reference gradient")
	}
	if rel := math.Sqrt(num / den); rel > 0.05 {
		t.Errorf("fp16 gradient relative L2 error %.4f > 0.05", rel)
	}
}

// The fp16 path is deterministic: two models with the same seed produce
// bitwise-identical losses and gradients.
func TestFP16Deterministic(t *testing.T) {
	cfg := tinyConfig()
	ids, targets := SyntheticBatch(3, 2, cfg.Seq, cfg.Vocab)
	run := func() (float64, []float32) {
		m := New(cfg, 7)
		m.SetFP16Compute(true)
		m.ZeroGrads()
		l := m.Loss(ids, targets, 2)
		m.Backward()
		return l, append([]float32(nil), m.Grads...)
	}
	l1, g1 := run()
	l2, g2 := run()
	if l1 != l2 {
		t.Errorf("same seed, different fp16 loss: %v vs %v", l1, l2)
	}
	if d := tensor.MaxDiff(g1, g2); d != 0 {
		t.Errorf("same seed, different fp16 grads: %g", d)
	}
}

// Loss scaling: the forward loss is unaffected, and gradients computed at
// scale S are S times the unscaled gradients (the backward d-stream is
// linear in dLogits) up to fp16 rounding at the staging boundaries.
func TestFP16LossScaleScalesGradients(t *testing.T) {
	cfg := tinyConfig()
	ids, targets := SyntheticBatch(5, 2, cfg.Seq, cfg.Vocab)

	base := New(cfg, 13)
	base.SetFP16Compute(true)
	base.ZeroGrads()
	lossBase := base.Loss(ids, targets, 2)
	base.Backward()

	scaled := New(cfg, 13)
	scaled.SetFP16Compute(true)
	scaled.LossScale = 1024
	scaled.ZeroGrads()
	lossScaled := scaled.Loss(ids, targets, 2)
	scaled.Backward()

	if lossBase != lossScaled {
		t.Errorf("loss scale leaked into the forward pass: %v vs %v", lossBase, lossScaled)
	}
	var num, den float64
	for i := range base.Grads {
		d := float64(scaled.Grads[i]/1024 - base.Grads[i])
		num += d * d
		den += float64(base.Grads[i]) * float64(base.Grads[i])
	}
	if rel := math.Sqrt(num / den); rel > 0.01 {
		t.Errorf("unscaled gradients drift by relative L2 %.5f", rel)
	}
}

// An absurd loss scale overflows the fp16 gradient stores; TakeOverflow
// must report it once and clear.
func TestFP16OverflowDetection(t *testing.T) {
	cfg := tinyConfig()
	ids, targets := SyntheticBatch(9, 2, cfg.Seq, cfg.Vocab)
	m := New(cfg, 21)
	m.SetFP16Compute(true)
	m.LossScale = 1e30
	m.ZeroGrads()
	m.Loss(ids, targets, 2)
	m.Backward()
	if !m.TakeOverflow() {
		t.Fatal("loss scale 1e30 did not overflow fp16 gradient stores")
	}
	if m.TakeOverflow() {
		t.Error("overflow flag did not clear")
	}
	// A sane scale on the same model recovers cleanly.
	m.LossScale = 1
	m.ZeroGrads()
	m.Loss(ids, targets, 2)
	m.Backward()
	if m.TakeOverflow() {
		t.Error("overflow persisted after backing off the loss scale")
	}
	if tensor.HasNaNOrInf(m.Grads) {
		t.Error("non-finite gradients after recovery")
	}
}

// SGD on the fp16 path (fp32 master update + half-copy refresh every step)
// must learn the synthetic pattern like the f32 path does.
func TestFP16TrainingReducesLoss(t *testing.T) {
	cfg := Config{Layers: 2, Hidden: 32, Heads: 4, Vocab: 17, Seq: 16}
	m := New(cfg, 5)
	m.SetFP16Compute(true)
	ids, targets := SyntheticBatch(21, 4, cfg.Seq, cfg.Vocab)
	first := m.Loss(ids, targets, 4)
	loss := first
	const lr = 0.05
	for step := 0; step < 30; step++ {
		m.ZeroGrads()
		loss = m.Loss(ids, targets, 4)
		m.Backward()
		tensor.AXPY(-lr, m.Grads, m.Params)
		m.RefreshHalfParams(0, len(m.Params))
	}
	if loss >= first-0.3 {
		t.Errorf("fp16 loss did not fall: %.4f -> %.4f", first, loss)
	}
}

// Compute residency (step workspace plus the parameter copy the kernels
// read: fp32 Params on the f32 path, 2-byte ParamsH on the fp16 path —
// the master then counts as optimizer state, per the paper's accounting)
// must come in under 60% of the f32 baseline at a bench-representative
// shape. This is the model-level half of the acceptance gate.
func TestFP16ResidencyUnder60Percent(t *testing.T) {
	cfg := Config{Layers: 4, Hidden: 128, Heads: 4, Vocab: 512, Seq: 32}
	ids, targets := SyntheticBatch(3, 2, cfg.Seq, cfg.Vocab)

	ref := New(cfg, 1)
	ref.ZeroGrads()
	ref.Loss(ids, targets, 2)
	ref.Backward()
	f32Bytes := ref.WorkspaceBytes() + int64(len(ref.Params))*tensor.BytesPerFloat32

	half := New(cfg, 1)
	half.SetFP16Compute(true)
	half.ZeroGrads()
	half.Loss(ids, targets, 2)
	half.Backward()
	fp16Bytes := half.WorkspaceBytes() + half.ParamsH.Bytes()

	if fp16Bytes >= f32Bytes*3/5 {
		t.Errorf("fp16 residency %d B is not under 60%% of f32 residency %d B (%.1f%%)",
			fp16Bytes, f32Bytes, 100*float64(fp16Bytes)/float64(f32Bytes))
	}
}

// Backward on the fp16 path requires a preceding Loss, like the f32 path.
func TestFP16BackwardWithoutLossPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	m := New(tinyConfig(), 1)
	m.SetFP16Compute(true)
	m.Backward()
}
