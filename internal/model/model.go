package model

import (
	"math"
	"math/rand"

	"repro/internal/tensor"
)

// Model is a GPT-2-like transformer with parameters and gradients stored in
// flat buffers so data-parallel engines (DDP, ZeRO stages 1-3) can
// partition, bucket and gather them by offset.
type Model struct {
	Cfg    Config
	Layout Layout

	// Params is the flat fp32 parameter buffer (the "fp32 master" copy of
	// mixed-precision training).
	Params []float32
	// Grads is the flat gradient buffer, same layout as Params.
	Grads []float32

	// Checkpoint enables activation checkpointing: the forward pass keeps
	// only each block's input and the backward pass recomputes block
	// internals (§3.2's "activation recomputation", the base ZeRO-R builds
	// Pa on).
	Checkpoint bool

	// Store, when non-nil and Checkpoint is on, receives each block's
	// checkpoint instead of it being held inline. ZeRO-R's Pa plugs in
	// here: a store that partitions the checkpoint across the MP group and
	// all-gathers it back on Get (§6.1), or offloads it to host memory
	// (Pa+cpu).
	Store CheckpointStore

	// ForwardHook, when non-nil, is invoked during Loss immediately before
	// each parameter group's compute begins: layer -1 before the embedding
	// lookup, layer i before block i's forward, layer Layers before the
	// final layernorm + tied head. Stage-3 engines use it as the "params
	// must be resident now" synchronization point of §7.2.2's pipelined
	// schedule: wait for this group's prefetched all-gather, launch the
	// next group's. It is not called for the recomputation forwards that
	// checkpointing runs inside Backward (those are covered by
	// BackwardPreHook).
	ForwardHook func(layer int)

	// BackwardPreHook, when non-nil, is invoked during Backward immediately
	// before each parameter group's weights are read: layer Layers before
	// the head/final-layernorm backward (which also reads the tied token
	// embedding), layer i before block i's recomputation and backward.
	// The symmetric synchronization point to ForwardHook for the second
	// parameter gather of stage 3.
	BackwardPreHook func(layer int)

	// BackwardHook, when non-nil, is invoked during Backward immediately
	// after block `layer`'s parameter gradients are final (blocks are
	// visited in reverse order, so layer L-1 fires first). Data-parallel
	// engines use it to launch per-layer gradient collectives while the
	// remaining blocks are still computing — the ZeRO bucketed
	// communication/computation overlap. The hook is not called for the
	// embeddings or final layernorm: the token-embedding gradient keeps
	// accumulating until Backward returns (tied head at the start plus
	// the embedding lookup at the very end), so that segment is only
	// final afterwards. (The final layernorm's own gradients are written
	// once, before the block loop, but share the post-Backward schedule
	// slot for simplicity — they are 2h elements.)
	BackwardHook func(layer int)

	// ParamsH is the binary16 compute copy of Params the fp16 path's
	// kernels read; Params stays the fp32 master. Valid only while
	// FP16Compute is on, refreshed via RefreshHalfParams (see fp16.go).
	ParamsH tensor.HalfBuffer

	// LossScale multiplies dLogits on the fp16 path (dynamic loss scaling;
	// the trainer folds the inverse into its gradient averaging). Zero
	// means 1. Ignored on the fp32 path.
	LossScale float32

	// fp16 routes Loss/Backward through the half-precision storage path.
	fp16 bool

	// ws is the persistent step workspace (activations, gradients,
	// attention scratch), reused across steps; fwd points at it between a
	// Loss and its Backward. See workspace.go for the ownership rules.
	ws  workspace
	fwd *workspace
}

// blockActs holds one block's intermediate activations, drawn from the
// model workspace and reused across steps. x (the block input / activation
// checkpoint) aliases the previous block's output; under a checkpoint
// Store it is nil between the forward Put and the backward Get.
type blockActs struct {
	x       []float32 // block input [M,h] — the activation checkpoint
	xhat1   []float32
	invStd1 []float32
	a       []float32 // ln1 output
	qkv     []float32 // [M,3h]
	probs   []float32 // attention softmax [B*heads, T, T]
	ctx     []float32 // attention context before proj [M,h]
	attnOut []float32 // attention projection output [M,h]
	x2      []float32 // x + attnOut
	xhat2   []float32
	invStd2 []float32
	mlin    []float32 // ln2 output
	h1      []float32 // MLP pre-GELU [M,ffn]
	g       []float32 // GELU output [M,ffn]
}

// New creates a model with Gaussian-initialized weights (std 0.02, GPT-2
// style; residual projections scaled by 1/√(2L)) and unit layernorm gains.
func New(cfg Config, seed int64) *Model {
	layout := BuildLayout(cfg)
	m := &Model{
		Cfg:    cfg,
		Layout: layout,
		Params: make([]float32, layout.Total),
		Grads:  make([]float32, layout.Total),
	}
	r := rand.New(rand.NewSource(seed))
	const std = 0.02
	residStd := std / float32(math.Sqrt(2*float64(cfg.Layers)))
	for _, seg := range layout.Segments {
		p := m.Params[seg.Lo:seg.Hi]
		switch {
		case hasSuffix(seg.Name, ".gamma"):
			tensor.Fill(p, 1)
		case hasSuffix(seg.Name, ".wproj") || hasSuffix(seg.Name, ".w2"):
			for i := range p {
				p[i] = float32(r.NormFloat64()) * residStd
			}
		case hasSuffix(seg.Name, ".wqkv") || hasSuffix(seg.Name, ".w1") ||
			seg.Name == "tok_emb" || seg.Name == "pos_emb":
			for i := range p {
				p[i] = float32(r.NormFloat64()) * std
			}
		}
	}
	return m
}

func hasSuffix(s, suf string) bool {
	return len(s) >= len(suf) && s[len(s)-len(suf):] == suf
}

// NumParams returns the flat parameter count.
func (m *Model) NumParams() int { return m.Layout.Total }

// ZeroGrads clears the gradient buffer.
func (m *Model) ZeroGrads() { tensor.Zero(m.Grads) }

// Loss runs the forward pass on ids/targets (length batch×seqLen each,
// row-major) and returns the mean cross-entropy. State is retained for a
// following Backward call.
func (m *Model) Loss(ids, targets []int, batch int) float64 {
	if len(ids) == 0 || len(ids)%batch != 0 || len(ids) != len(targets) {
		panic("model: ids/targets must be batch x seqLen")
	}
	seqLen := len(ids) / batch
	if seqLen > m.Cfg.Seq {
		panic("model: sequence longer than configured maximum")
	}
	if m.fp16 {
		return m.lossH(ids, targets, batch)
	}
	h := m.Cfg.Hidden
	mRows := batch * seqLen
	fs := &m.ws
	fs.batch, fs.seqLen = batch, seqLen
	fs.ids = append(fs.ids[:0], ids...)
	fs.targets = append(fs.targets[:0], targets...)
	fs.x0 = grow(fs.x0, mRows*h)

	// Embedding: token + position.
	if m.ForwardHook != nil {
		m.ForwardHook(-1)
	}
	tok := m.Params[m.Layout.tokEmb : m.Layout.tokEmb+m.Cfg.Vocab*h]
	pos := m.Params[m.Layout.posEmb : m.Layout.posEmb+m.Cfg.Seq*h]
	for b := 0; b < batch; b++ {
		for t := 0; t < seqLen; t++ {
			id := ids[b*seqLen+t]
			if id < 0 || id >= m.Cfg.Vocab {
				panic("model: token id out of range")
			}
			row := fs.x0[(b*seqLen+t)*h : (b*seqLen+t+1)*h]
			copy(row, tok[id*h:(id+1)*h])
			tensor.Add(row, pos[t*h:(t+1)*h])
		}
	}

	// Blocks.
	if len(fs.blocks) != m.Cfg.Layers {
		fs.blocks = make([]blockActs, m.Cfg.Layers)
		fs.outs = make([][]float32, m.Cfg.Layers)
	}
	x := fs.x0
	for i := 0; i < m.Cfg.Layers; i++ {
		if m.ForwardHook != nil {
			m.ForwardHook(i)
		}
		acts := &fs.blocks[i]
		acts.x = x
		fs.outs[i] = grow(fs.outs[i], mRows*h)
		x = m.blockForward(i, acts, fs.outs[i], batch, seqLen)
		if m.Checkpoint && m.Store != nil {
			m.Store.Put(i, acts.x)
			acts.x = nil
		}
	}
	fs.xL = x

	// Final layernorm + tied-embedding head.
	if m.ForwardHook != nil {
		m.ForwardHook(m.Cfg.Layers)
	}
	fs.xhatF = grow(fs.xhatF, mRows*h)
	fs.invStdF = grow(fs.invStdF, mRows)
	fs.xf = grow(fs.xf, mRows*h)
	gammaF := m.Params[m.Layout.lnF : m.Layout.lnF+h]
	betaF := m.Params[m.Layout.lnF+h : m.Layout.lnF+2*h]
	tensor.LayerNorm(fs.xf, fs.xhatF, fs.invStdF, x, gammaF, betaF, mRows, h, lnEps)

	fs.logits = grow(fs.logits, mRows*m.Cfg.Vocab)
	tensor.MatMulBT(fs.logits, fs.xf, tok, mRows, h, m.Cfg.Vocab)
	fs.probs = grow(fs.probs, mRows*m.Cfg.Vocab)
	loss := tensor.CrossEntropy(fs.probs, fs.logits, fs.targets, mRows, m.Cfg.Vocab)

	m.fwd = fs
	return loss
}

// Backward accumulates gradients of the last Loss call into Grads. Call
// after Loss; panics otherwise.
func (m *Model) Backward() {
	if m.fp16 {
		m.backwardH()
		return
	}
	fs := m.fwd
	if fs == nil {
		panic("model: Backward without a preceding Loss")
	}
	m.fwd = nil
	h := m.Cfg.Hidden
	mRows := fs.batch * fs.seqLen
	v := m.Cfg.Vocab

	// The head reads the tied token embedding and the final layernorm's
	// parameters next.
	if m.BackwardPreHook != nil {
		m.BackwardPreHook(m.Cfg.Layers)
	}
	tok := m.Params[m.Layout.tokEmb : m.Layout.tokEmb+v*h]
	dTok := m.Grads[m.Layout.tokEmb : m.Layout.tokEmb+v*h]
	dPos := m.Grads[m.Layout.posEmb : m.Layout.posEmb+m.Cfg.Seq*h]

	// Head: dLogits, then through the tied embedding.
	fs.dLogits = grow(fs.dLogits, mRows*v)
	dLogits := fs.dLogits
	tensor.CrossEntropyBackward(dLogits, fs.probs, fs.targets, mRows, v)
	fs.dXf = grow(fs.dXf, mRows*h)
	dXf := fs.dXf
	tensor.MatMul(dXf, dLogits, tok, mRows, v, h)
	tensor.MatMulATAdd(dTok, dLogits, fs.xf, mRows, v, h)

	// Final layernorm. LayerNormBackward accumulates into dX, so the reused
	// buffer is zeroed first (fresh allocations used to guarantee this).
	fs.dXa = grow(fs.dXa, mRows*h)
	fs.dXb = grow(fs.dXb, mRows*h)
	dX := fs.dXa
	tensor.Zero(dX)
	gammaF := m.Params[m.Layout.lnF : m.Layout.lnF+h]
	dGammaF := m.Grads[m.Layout.lnF : m.Layout.lnF+h]
	dBetaF := m.Grads[m.Layout.lnF+h : m.Layout.lnF+2*h]
	tensor.LayerNormBackward(dX, dGammaF, dBetaF, dXf, fs.xhatF, fs.invStdF, gammaF, mRows, h)

	// Blocks in reverse, double-buffering the input gradient (block i reads
	// dX while writing the other buffer). Under checkpointing, recompute
	// each block's internals from its saved input first.
	next := fs.dXb
	for i := m.Cfg.Layers - 1; i >= 0; i-- {
		if m.BackwardPreHook != nil {
			m.BackwardPreHook(i)
		}
		acts := &fs.blocks[i]
		if m.Checkpoint {
			if m.Store != nil {
				acts.x = m.Store.Get(i)
			}
			out := fs.outs[i]
			m.blockForward(i, acts, out, fs.batch, fs.seqLen) // rebuild internals
		}
		m.blockBackward(i, acts, dX, next, fs.batch, fs.seqLen)
		dX, next = next, dX
		if m.BackwardHook != nil {
			m.BackwardHook(i)
		}
	}

	// Embedding gradients.
	for b := 0; b < fs.batch; b++ {
		for t := 0; t < fs.seqLen; t++ {
			id := fs.ids[b*fs.seqLen+t]
			row := dX[(b*fs.seqLen+t)*h : (b*fs.seqLen+t+1)*h]
			tensor.Add(dTok[id*h:(id+1)*h], row)
			tensor.Add(dPos[t*h:(t+1)*h], row)
		}
	}
}

const lnEps = 1e-5

// CheckpointStore abstracts where activation checkpoints live between the
// forward and backward passes. Put is called once per block during forward;
// Get must return the identical values during backward (blocks are fetched
// in reverse order).
type CheckpointStore interface {
	Put(layer int, x []float32)
	Get(layer int) []float32
}
