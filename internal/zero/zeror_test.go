package zero

import (
	"sync"
	"testing"

	"repro/internal/comm"
	"repro/internal/model"
	"repro/internal/tensor"
)

// checkpointStream builds a rank's Pa stream; defer the returned func
// inside the rank closure to close the scheduler and release the worker.
func checkpointStream(c *comm.Comm) (*comm.Stream, func()) {
	sched := comm.NewScheduler(c)
	return sched.Stream(StreamCheckpoint), sched.Close
}

func TestInlineStoreRoundTrip(t *testing.T) {
	s := NewInlineStore()
	x := []float32{1, 2, 3}
	s.Put(0, x)
	x[0] = 99 // the store must have copied
	got := s.Get(0)
	if got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Errorf("Get(0) = %v", got)
	}
	if s.DeviceBytes() != 6 {
		t.Errorf("DeviceBytes = %d, want 6 (fp16 accounting)", s.DeviceBytes())
	}
	// Re-Put replaces, not accumulates.
	s.Put(0, []float32{4, 5})
	if s.DeviceBytes() != 4 {
		t.Errorf("DeviceBytes after replace = %d, want 4", s.DeviceBytes())
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic on missing layer")
		}
	}()
	s.Get(7)
}

// Pa round trip: with identical (MP-replicated) checkpoints on every rank,
// partition-then-gather must reconstruct the original exactly, while each
// rank holds only 1/Nm of it (§6.1).
func TestPartitionedStoreRoundTrip(t *testing.T) {
	const n, elems = 4, 103
	ckpt := make([]float32, elems)
	for i := range ckpt {
		ckpt[i] = float32(i) * 0.5
	}
	w := comm.NewWorld(n)
	var mu sync.Mutex
	w.Run(func(c *comm.Comm) {
		st, closeSched := checkpointStream(c)
		defer closeSched()
		s := NewPartitionedStore(st, false)
		s.Put(3, ckpt)
		// Resident share ≈ total/Nm.
		maxShard := int64((elems/n + 1) * 2)
		if s.DeviceBytes() > maxShard {
			mu.Lock()
			t.Errorf("rank %d holds %d bytes, want ≤ %d (1/Nm of checkpoint)",
				c.Rank(), s.DeviceBytes(), maxShard)
			mu.Unlock()
		}
		got := s.Get(3)
		if d := tensor.MaxDiff(got, ckpt); d != 0 {
			mu.Lock()
			t.Errorf("rank %d: reconstruction differs by %g", c.Rank(), d)
			mu.Unlock()
		}
		if s.HostBytes() != 0 || s.PCIeBytes() != 0 {
			mu.Lock()
			t.Errorf("rank %d: Pa (non-cpu) should not touch host memory", c.Rank())
			mu.Unlock()
		}
	})
}

// Pa+cpu: device-resident checkpoint bytes are zero, the shard lives on the
// host, and the PCIe traffic is exactly 2× the shard (out and back, §8).
func TestPartitionedStoreCPUOffload(t *testing.T) {
	const n, elems = 2, 64
	ckpt := make([]float32, elems)
	for i := range ckpt {
		ckpt[i] = float32(i)
	}
	w := comm.NewWorld(n)
	var mu sync.Mutex
	w.Run(func(c *comm.Comm) {
		st, closeSched := checkpointStream(c)
		defer closeSched()
		s := NewPartitionedStore(st, true)
		s.Put(0, ckpt)
		got := s.Get(0)
		mu.Lock()
		defer mu.Unlock()
		if d := tensor.MaxDiff(got, ckpt); d != 0 {
			t.Errorf("rank %d: reconstruction differs by %g", c.Rank(), d)
		}
		if s.DeviceBytes() != 0 {
			t.Errorf("rank %d: Pa+cpu device bytes = %d, want 0", c.Rank(), s.DeviceBytes())
		}
		shardBytes := int64(elems / n * 2)
		if s.HostBytes() != shardBytes {
			t.Errorf("rank %d: host bytes = %d, want %d", c.Rank(), s.HostBytes(), shardBytes)
		}
		if s.PCIeBytes() != 2*shardBytes {
			t.Errorf("rank %d: PCIe bytes = %d, want %d (2x shard)", c.Rank(), s.PCIeBytes(), 2*shardBytes)
		}
	})
}

// End-to-end Pa: a model trained with checkpoints routed through a
// PartitionedStore (ranks running replicated compute, as an MP group does
// for activations) must match inline checkpointing bitwise.
func TestPaTrainingMatchesInline(t *testing.T) {
	cfg := model.Config{Layers: 3, Hidden: 16, Heads: 2, Vocab: 17, Seq: 8}
	ids, targets := model.SyntheticBatch(31, 2, cfg.Seq, cfg.Vocab)

	// Reference: single process with inline checkpointing.
	ref := model.New(cfg, 5)
	ref.Checkpoint = true
	ref.Store = NewInlineStore()
	ref.ZeroGrads()
	refLoss := ref.Loss(ids, targets, 2)
	ref.Backward()

	// MP-replicated group: every rank runs the same data through the same
	// model, checkpoints partitioned across the group.
	const n = 4
	w := comm.NewWorld(n)
	losses := make([]float64, n)
	grads := make([][]float32, n)
	w.Run(func(c *comm.Comm) {
		m := model.New(cfg, 5)
		m.Checkpoint = true
		st, closeSched := checkpointStream(c)
		defer closeSched()
		m.Store = NewPartitionedStore(st, false)
		m.ZeroGrads()
		losses[c.Rank()] = m.Loss(ids, targets, 2)
		m.Backward()
		grads[c.Rank()] = m.Grads
	})
	for r := 0; r < n; r++ {
		if losses[r] != refLoss {
			t.Errorf("rank %d loss %v != reference %v", r, losses[r], refLoss)
		}
		if d := tensor.MaxDiff(grads[r], ref.Grads); d != 0 {
			t.Errorf("rank %d grads differ from inline-checkpoint reference by %g", r, d)
		}
	}
}

// §8 volume identity: re-materializing a checkpoint of E elements costs one
// all-gather = E(Nm-1)/Nm sent per rank, i.e. 1/12 of the Megatron MP
// traffic for the same block — "less than one tenth".
func TestPaGatherVolume(t *testing.T) {
	const n = 4
	const elems = 1200
	ckpt := make([]float32, elems)
	w := comm.NewWorld(n)
	w.Run(func(c *comm.Comm) {
		st, closeSched := checkpointStream(c)
		defer closeSched()
		s := NewPartitionedStore(st, false)
		s.Put(0, ckpt)
		s.Get(0)
	})
	want := int64(elems * (n - 1) / n)
	for r := 0; r < n; r++ {
		if got := w.Stats(r).ElemsSent; got != want {
			t.Errorf("rank %d sent %d elems, want %d (= E(Nm-1)/Nm)", r, got, want)
		}
	}
}
