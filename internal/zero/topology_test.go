package zero

import (
	"math"
	"testing"

	"repro/internal/comm"
	"repro/internal/model"
)

// topoTrajectory trains on an n-rank world laid out as nodes of nodeSize
// ranks and returns rank 0's per-step loss.
func topoTrajectory(t *testing.T, n, nodeSize int, opts Options, steps, batch int, ids, targets []int) []float64 {
	t.Helper()
	opts.Topology = Topology{NodeSize: nodeSize}
	w := comm.NewWorld(n)
	out := make([]float64, steps)
	w.Run(func(c *comm.Comm) {
		tr, err := New(c, testConfig(), opts)
		if err != nil {
			t.Error(err)
			return
		}
		defer tr.Close()
		for s := 0; s < steps; s++ {
			l := tr.Step(ids, targets, batch)
			if c.Rank() == 0 {
				out[s] = l
			}
		}
	})
	return out
}

// The stage-equivalence contract extended across topologies: on a fixed
// node layout, every stage and every schedule — synchronous, grad-bucket
// overlap, stage-3 prefetch, bucketed or not — walks a bit-identical loss
// trajectory. Scheduling never changes arithmetic; on one topology the
// reduction tree is fixed, so the equality is exact. (Across topologies
// the tree differs — see the golden test below.)
func TestTopologyStageEquivalenceBitwise(t *testing.T) {
	const n, steps, batch = 8, 4, 8
	ids, targets := model.SyntheticBatch(31, batch, testConfig().Seq, testConfig().Vocab)
	base := Options{LR: testLR, Seed: testSeed}
	for _, nodeSize := range []int{0, 2, 4} {
		ref := topoTrajectory(t, n, nodeSize, base, steps, batch, ids, targets) // DDP, sync, unbucketed
		for _, stage := range AllStages {
			for _, sched := range []struct{ overlap, prefetch bool }{
				{false, false}, {true, false}, {false, true}, {true, true},
			} {
				opts := base
				opts.Stage = stage
				opts.Overlap = sched.overlap
				opts.Prefetch = sched.prefetch
				opts.BucketElems = 193
				got := topoTrajectory(t, n, nodeSize, opts, steps, batch, ids, targets)
				for s := range ref {
					if got[s] != ref[s] {
						t.Errorf("nodeSize=%d %v overlap=%v prefetch=%v step %d: loss %.17g != reference %.17g",
							nodeSize, stage, sched.overlap, sched.prefetch, s, got[s], ref[s])
						break
					}
				}
			}
		}
	}
}

// Golden trajectories per topology (8 ranks, 6 steps, seed 7, lr 1e-3,
// batch 8, data seed 31). The first step is identical everywhere (the
// initial forward pass involves no reduction); later steps differ across
// topologies only by float reassociation in the two-level reduce-scatter —
// within each topology the values are exact, and across topologies they
// agree to ~1e-8 relative. The tolerance absorbs only cross-platform FMA
// contraction, not algorithm drift.
func TestTopologyLossTrajectoryGolden(t *testing.T) {
	goldens := map[int][]float64{
		0: {
			2.9445802206352325,
			2.9060331552154741,
			2.8750875026649672,
			2.8509056038744891,
			2.8312577232148666,
			2.8141822012346775,
		},
		2: {
			2.9445802206352325,
			2.9060331716091472,
			2.8750875114359307,
			2.8509056038744891,
			2.8312577165796169,
			2.8141821941283323,
		},
		4: {
			2.9445802206352325,
			2.9060331716091472,
			2.8750875114359307,
			2.8509055939696513,
			2.8312577235333247,
			2.8141822095156535,
		},
	}
	const n, batch, steps = 8, 8, 6
	ids, targets := model.SyntheticBatch(31, batch, testConfig().Seq, testConfig().Vocab)
	for _, nodeSize := range []int{0, 2, 4} {
		// The fully streamed stage-3 schedule must land on the same goldens
		// as the per-topology reference above (bitwise, per the
		// equivalence test); the goldens pin the absolute values.
		got := topoTrajectory(t, n, nodeSize, Options{
			Stage: StageFull, LR: testLR, Seed: testSeed,
			Overlap: true, Prefetch: true, BucketElems: 193,
		}, steps, batch, ids, targets)
		for s, want := range goldens[nodeSize] {
			if math.Abs(got[s]-want) > 1e-9*math.Abs(want) {
				t.Errorf("nodeSize=%d step %d: loss %.17g, want golden %.17g", nodeSize, s, got[s], want)
			}
		}
		if got[steps-1] >= got[0] {
			t.Errorf("nodeSize=%d: loss did not fall: %v -> %v", nodeSize, got[0], got[steps-1])
		}
		// Cross-topology: same optimization, different rounding only.
		for s, want := range goldens[0] {
			if rel := math.Abs(got[s]-want) / math.Abs(want); rel > 1e-7 {
				t.Errorf("nodeSize=%d step %d: drifted %g relative from the flat trajectory (reassociation only expected)",
					nodeSize, s, rel)
			}
		}
	}
}

// The §7 volume identity survives hierarchical routing — the two-level
// algorithm re-splits the same total volume, it never adds any: total
// elements sent per step stay mult·(N-1)·Ψ, of which exactly mult·(M-1)·Ψ/M
// cross nodes (per-rank: mult·(Ψ/S)·(M-1)/M, the 1/S inter-node cut that
// perfmodel.DPBandwidth banks on) and the rest stay inside nodes.
func TestTopologyVolumeSplitIdentities(t *testing.T) {
	cfg := testConfig()
	psi := int64(cfg.ParamCount())
	const n, nodeSize, batch = 8, 4, 8
	const nodes = n / nodeSize
	ids, targets := model.SyntheticBatch(5, batch, cfg.Seq, cfg.Vocab)
	for _, tc := range []struct {
		stage Stage
		mult  int64
	}{
		{StageDDP, 2}, {StageOS, 2}, {StageOSGrad, 2}, {StageFull, 3},
	} {
		w := comm.NewWorld(n)
		w.Run(func(c *comm.Comm) {
			tr := MustNew(c, cfg, Options{
				Stage: tc.stage, LR: testLR, Seed: testSeed,
				Topology: Topology{NodeSize: nodeSize},
			})
			tr.Step(ids, targets, batch)
		})
		var intra, inter int64
		for r := 0; r < n; r++ {
			st := w.Stats(r)
			intra += st.PerGroup["hier-intra"].Elems
			inter += st.PerGroup["hier-inter"].Elems
		}
		if total, want := w.TotalElemsSent(), tc.mult*int64(n-1)*psi; total != want {
			t.Errorf("%v: total %d elems, want %d (volume identity must survive routing)", tc.stage, total, want)
		}
		if want := tc.mult * int64(nodes-1) * psi; inter != want {
			t.Errorf("%v: inter-node total %d elems, want %d = %d(M-1)Ψ", tc.stage, inter, want, tc.mult)
		}
		if want := tc.mult * int64(nodes) * int64(nodeSize-1) * psi; intra != want {
			t.Errorf("%v: intra-node total %d elems, want %d", tc.stage, intra, want)
		}
	}
}

// Full composition under a topology: hierarchical routing + FP16 wire +
// gradient clipping + activation checkpointing still matches the same
// configuration's flat-schedule arithmetic contract (sync == overlapped)
// and moves fp16-native bytes on both hierarchy levels.
func TestTopologyComposesWithFP16ClipCheckpoint(t *testing.T) {
	cfg := testConfig()
	const n, nodeSize, steps, batch = 4, 2, 3, 8
	ids, targets := model.SyntheticBatch(71, batch, cfg.Seq, cfg.Vocab)
	run := func(overlap bool) ([]float64, *comm.World) {
		w := comm.NewWorld(n)
		out := make([]float64, steps)
		w.Run(func(c *comm.Comm) {
			tr := MustNew(c, cfg, Options{
				Stage: StageFull, LR: testLR, Seed: testSeed,
				FP16: true, ClipNorm: 1, Checkpoint: true, BucketElems: 193,
				Overlap: overlap, Prefetch: overlap,
				Topology: Topology{NodeSize: nodeSize},
			})
			defer tr.Close()
			for s := 0; s < steps; s++ {
				l := tr.Step(ids, targets, batch)
				if c.Rank() == 0 {
					out[s] = l
				}
			}
		})
		return out, w
	}
	sync, _ := run(false)
	over, w := run(true)
	for s := range sync {
		if sync[s] != over[s] {
			t.Errorf("step %d: overlapped %.17g != sync %.17g under topology+fp16+clip+ckpt", s, over[s], sync[s])
		}
	}
	st := w.Stats(0)
	for _, key := range []string{"hier-intra", "hier-inter"} {
		tr := st.PerGroup[key]
		if tr.Elems == 0 {
			t.Errorf("no %s traffic recorded", key)
			continue
		}
		// The clip partial gather stays flat and fp32, so only the group
		// keys are asserted fp16-native (2 B/elem).
		if tr.Bytes != 2*tr.Elems {
			t.Errorf("%s: %d bytes for %d elems, want fp16-native 2 B/elem", key, tr.Bytes, tr.Elems)
		}
	}
}
