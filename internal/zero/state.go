package zero

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"repro/internal/comm"
	"repro/internal/tensor"
)

// Snapshot is a full training checkpoint: parameters plus the Adam state
// that ZeRO keeps partitioned across ranks. Save gathers the shards to
// rank 0 (the "consolidated checkpoint" operation of ZeRO systems — under
// partitioning no single rank holds the whole optimizer state, so
// checkpointing is itself a collective).
type Snapshot struct {
	Stage     Stage
	WorldSize int
	NumParams int
	OptSteps  int

	Params []float32 // fp32 master parameters (full)
	AdamM  []float32 // first-moment estimates (full)
	AdamV  []float32 // second-moment estimates (full)
}

// Save gathers this world's partitioned training state to rank 0 and
// returns the snapshot there; other ranks return nil. Every rank must
// call Save collectively. At stage 0 every rank already holds the full
// state, so rank 0 snapshots locally and no communication happens.
func (t *Trainer) Save() *Snapshot {
	n := t.Model.NumParams()
	dom := t.optimizerDomain()

	// This rank's authoritative parameter state over its optimizer
	// domain: the fp32 master under FP16 mode, the live slice otherwise.
	paramShard := t.Model.Params[dom.Lo:dom.Hi]
	if t.opts.FP16 {
		paramShard = t.master
	}
	m, v := t.opt.State()

	if t.stage == StageDDP {
		if t.c.Rank() != 0 {
			return nil
		}
		return &Snapshot{
			Stage:     t.stage,
			WorldSize: t.c.Size(),
			NumParams: n,
			OptSteps:  t.opt.Steps(),
			Params:    append([]float32(nil), paramShard...),
			AdamM:     append([]float32(nil), m...),
			AdamV:     append([]float32(nil), v...),
		}
	}

	root := 0
	if t.c.Rank() == root {
		snap := &Snapshot{
			Stage:     t.opts.Stage,
			WorldSize: t.c.Size(),
			NumParams: n,
			OptSteps:  t.opt.Steps(),
			Params:    make([]float32, n),
			AdamM:     make([]float32, n),
			AdamV:     make([]float32, n),
		}
		for _, buf := range []struct {
			dst   []float32
			local []float32
		}{
			{snap.Params, paramShard}, {snap.AdamM, m}, {snap.AdamV, v},
		} {
			out := make([][]float32, t.c.Size())
			t.c.Gather(buf.local, root, out)
			for r, shard := range out {
				p := t.parts[r]
				copy(buf.dst[p.Lo:p.Hi], shard)
			}
		}
		return snap
	}
	for _, local := range [][]float32{paramShard, m, v} {
		t.c.Gather(local, root, nil)
	}
	return nil
}

// Load restores a snapshot into this rank: the owned shard of the master
// parameters and Adam state, plus the replicated (or gathered-on-demand)
// parameter copy. Every rank must receive the same snapshot — use
// BroadcastSnapshot after reading it on one rank. The snapshot's world
// size need not match: repartitioning happens naturally because the state
// is stored unpartitioned (ZeRO elasticity).
func (t *Trainer) Load(s *Snapshot) error {
	if s == nil {
		return fmt.Errorf("zero: Load of nil snapshot")
	}
	if s.NumParams != t.Model.NumParams() {
		return fmt.Errorf("zero: snapshot has %d params, model has %d", s.NumParams, t.Model.NumParams())
	}
	dom := t.optimizerDomain()
	t.opt.Restore(s.AdamM[dom.Lo:dom.Hi], s.AdamV[dom.Lo:dom.Hi], s.OptSteps)
	if t.opts.FP16 {
		copy(t.master, s.Params[dom.Lo:dom.Hi])
		tensor.Copy(t.Model.Params, s.Params)
		quantizeFP16(t.Model.Params)
	} else {
		tensor.Copy(t.Model.Params, s.Params)
	}
	if t.stage == StageFull {
		t.dropUnowned()
	}
	return nil
}

// BroadcastSnapshot distributes rank 0's snapshot to every rank (ranks
// other than 0 pass nil and receive a fresh copy). Must be called
// collectively.
func BroadcastSnapshot(c *comm.Comm, s *Snapshot) *Snapshot {
	header := make([]float32, 4)
	if c.Rank() == 0 {
		header[0] = float32(s.Stage)
		header[1] = float32(s.WorldSize)
		header[2] = float32(s.NumParams)
		header[3] = float32(s.OptSteps)
	}
	c.Broadcast(header, 0)
	if c.Rank() != 0 {
		n := int(header[2])
		s = &Snapshot{
			Stage:     Stage(header[0]),
			WorldSize: int(header[1]),
			NumParams: n,
			OptSteps:  int(header[3]),
			Params:    make([]float32, n),
			AdamM:     make([]float32, n),
			AdamV:     make([]float32, n),
		}
	}
	c.Broadcast(s.Params, 0)
	c.Broadcast(s.AdamM, 0)
	c.Broadcast(s.AdamV, 0)
	return s
}

// Encode serializes the snapshot (gob) for file persistence.
func (s *Snapshot) Encode() ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(s); err != nil {
		return nil, fmt.Errorf("zero: encoding snapshot: %w", err)
	}
	return buf.Bytes(), nil
}

// DecodeSnapshot deserializes a snapshot produced by Encode.
func DecodeSnapshot(data []byte) (*Snapshot, error) {
	var s Snapshot
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&s); err != nil {
		return nil, fmt.Errorf("zero: decoding snapshot: %w", err)
	}
	return &s, nil
}
