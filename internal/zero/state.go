package zero

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"repro/internal/comm"
	"repro/internal/tensor"
)

// Snapshot is a full training checkpoint: parameters plus the optimizer
// state that ZeRO keeps partitioned across ranks. Save gathers the shards
// to rank 0 (the "consolidated checkpoint" operation of ZeRO systems —
// under partitioning no single rank holds the whole optimizer state, so
// checkpointing is itself a collective).
type Snapshot struct {
	Stage     Stage
	WorldSize int
	NumParams int
	OptSteps  int

	Params []float32 // fp32 master parameters (full)
	// Opt holds the optimizer's state tensors, each NumParams long, in the
	// optimizer's State() order: momentum and variance for Adam/LAMB, the
	// single momentum buffer for SGD.
	Opt [][]float32

	// AdamM/AdamV are the legacy field names of the Adam-only snapshot
	// format; DecodeSnapshot folds them into Opt so checkpoints written
	// before the optimizer interface still load.
	AdamM, AdamV []float32
}

// Save gathers this world's partitioned training state to rank 0 and
// returns the snapshot there; other ranks return nil. Every rank must
// call Save collectively. At stage 0 every rank already holds the full
// state, so rank 0 snapshots locally and no communication happens.
// Save must be called on an accumulation boundary (right after Update);
// it panics if micro-gradients are pending in the accumulator, because a
// checkpoint cannot represent a half-accumulated batch.
func (t *Trainer) Save() *Snapshot {
	if t.accumMicros != 0 {
		panic("zero: Save mid-accumulation (call on an Update boundary)")
	}
	n := t.Model.NumParams()
	dom := t.optimizerDomain()

	// This rank's authoritative parameter state over its optimizer
	// domain: the fp32 master under FP16 mode, the live slice otherwise.
	paramShard := t.Model.Params[dom.Lo:dom.Hi]
	if t.opts.FP16 {
		paramShard = t.master
	}
	state := t.opt.State()

	if t.stage == StageDDP {
		if t.c.Rank() != 0 {
			return nil
		}
		snap := &Snapshot{
			Stage:     t.stage,
			WorldSize: t.c.Size(),
			NumParams: n,
			OptSteps:  t.opt.Steps(),
			Params:    append([]float32(nil), paramShard...),
		}
		for _, s := range state {
			snap.Opt = append(snap.Opt, append([]float32(nil), s...))
		}
		return snap
	}

	root := 0
	locals := append([][]float32{paramShard}, state...)
	if t.c.Rank() == root {
		snap := &Snapshot{
			Stage:     t.opts.Stage,
			WorldSize: t.c.Size(),
			NumParams: n,
			OptSteps:  t.opt.Steps(),
			Params:    make([]float32, n),
			Opt:       make([][]float32, len(state)),
		}
		for i := range snap.Opt {
			snap.Opt[i] = make([]float32, n)
		}
		full := append([][]float32{snap.Params}, snap.Opt...)
		for i, local := range locals {
			out := make([][]float32, t.c.Size())
			t.c.Gather(local, root, out)
			for r, shard := range out {
				p := t.parts[r]
				copy(full[i][p.Lo:p.Hi], shard)
			}
		}
		return snap
	}
	for _, local := range locals {
		t.c.Gather(local, root, nil)
	}
	return nil
}

// Load restores a snapshot into this rank: the owned shard of the master
// parameters and optimizer state, plus the replicated (or
// gathered-on-demand) parameter copy. Every rank must receive the same
// snapshot — use BroadcastSnapshot after reading it on one rank. The
// snapshot's world size need not match: repartitioning happens naturally
// because the state is stored unpartitioned (ZeRO elasticity). The
// optimizer kind must match the one that wrote the snapshot (the state
// tensor count is checked).
func (t *Trainer) Load(s *Snapshot) error {
	if s == nil {
		return fmt.Errorf("zero: Load of nil snapshot")
	}
	if s.NumParams != t.Model.NumParams() {
		return fmt.Errorf("zero: snapshot has %d params, model has %d", s.NumParams, t.Model.NumParams())
	}
	if len(s.Opt) != len(t.opt.State()) {
		return fmt.Errorf("zero: snapshot has %d optimizer state tensors, optimizer expects %d (different optimizer kind?)",
			len(s.Opt), len(t.opt.State()))
	}
	dom := t.optimizerDomain()
	shards := make([][]float32, len(s.Opt))
	for i, full := range s.Opt {
		if len(full) != s.NumParams {
			return fmt.Errorf("zero: snapshot optimizer state %d has %d elems, want %d", i, len(full), s.NumParams)
		}
		shards[i] = full[dom.Lo:dom.Hi]
	}
	t.opt.Restore(shards, s.OptSteps)
	if t.opts.FP16 {
		copy(t.master, s.Params[dom.Lo:dom.Hi])
		tensor.Copy(t.Model.Params, s.Params)
		quantizeFP16(t.Model.Params)
	} else {
		tensor.Copy(t.Model.Params, s.Params)
	}
	if t.stage == StageFull {
		t.dropUnowned()
	}
	tensor.Zero(t.accum)
	t.accumMicros = 0
	return nil
}

// BroadcastSnapshot distributes rank 0's snapshot to every rank (ranks
// other than 0 pass nil and receive a fresh copy). Must be called
// collectively.
func BroadcastSnapshot(c *comm.Comm, s *Snapshot) *Snapshot {
	header := make([]float32, 5)
	if c.Rank() == 0 {
		header[0] = float32(s.Stage)
		header[1] = float32(s.WorldSize)
		header[2] = float32(s.NumParams)
		header[3] = float32(s.OptSteps)
		header[4] = float32(len(s.Opt))
	}
	c.Broadcast(header, 0)
	if c.Rank() != 0 {
		n := int(header[2])
		s = &Snapshot{
			Stage:     Stage(header[0]),
			WorldSize: int(header[1]),
			NumParams: n,
			OptSteps:  int(header[3]),
			Params:    make([]float32, n),
			Opt:       make([][]float32, int(header[4])),
		}
		for i := range s.Opt {
			s.Opt[i] = make([]float32, n)
		}
	}
	c.Broadcast(s.Params, 0)
	for _, st := range s.Opt {
		c.Broadcast(st, 0)
	}
	return s
}

// Encode serializes the snapshot (gob) for file persistence.
func (s *Snapshot) Encode() ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(s); err != nil {
		return nil, fmt.Errorf("zero: encoding snapshot: %w", err)
	}
	return buf.Bytes(), nil
}

// DecodeSnapshot deserializes a snapshot produced by Encode. Legacy blobs
// from the Adam-only format (AdamM/AdamV fields) are migrated into Opt.
func DecodeSnapshot(data []byte) (*Snapshot, error) {
	var s Snapshot
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&s); err != nil {
		return nil, fmt.Errorf("zero: decoding snapshot: %w", err)
	}
	if len(s.Opt) == 0 && s.AdamM != nil && s.AdamV != nil {
		s.Opt = [][]float32{s.AdamM, s.AdamV}
	}
	s.AdamM, s.AdamV = nil, nil
	return &s, nil
}
