package zero

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"repro/internal/comm"
	"repro/internal/tensor"
)

// Snapshot is a full training checkpoint: parameters plus the optimizer
// state that ZeRO keeps partitioned across ranks. Save gathers the shards
// to rank 0 (the "consolidated checkpoint" operation of ZeRO systems —
// under partitioning no single rank holds the whole optimizer state, so
// checkpointing is itself a collective).
type Snapshot struct {
	Stage     Stage
	WorldSize int
	NumParams int
	OptSteps  int

	Params []float32 // fp32 master parameters (full)
	// Opt holds the optimizer's state tensors, each NumParams long, in the
	// optimizer's State() order: momentum and variance for Adam/LAMB, the
	// single momentum buffer for SGD.
	Opt [][]float32

	// Accum carries the gradient accumulator when the snapshot was captured
	// mid-accumulation (AccumMicros > 0): the sum of AccumMicros
	// micro-batch gradients, full width. Boundary snapshots (Save) leave it
	// nil. Only the elastic shard-capture path produces mid-accumulation
	// snapshots; Load restores the accumulator so training resumes inside
	// the same accumulation window.
	Accum       []float32
	AccumMicros int

	// AdamM/AdamV are the legacy field names of the Adam-only snapshot
	// format; DecodeSnapshot folds them into Opt so checkpoints written
	// before the optimizer interface still load.
	AdamM, AdamV []float32
}

// Save gathers this world's partitioned training state to rank 0 and
// returns the snapshot there; other ranks return nil. Every rank must
// call Save collectively. At stage 0 every rank already holds the full
// state, so rank 0 snapshots locally and no communication happens.
// Save must be called on an accumulation boundary (right after Update);
// it panics if micro-gradients are pending in the accumulator, because a
// checkpoint cannot represent a half-accumulated batch.
func (t *Trainer) Save() *Snapshot {
	if t.accumMicros != 0 {
		panic("zero: Save mid-accumulation (call on an Update boundary)")
	}
	n := t.Model.NumParams()
	dom := t.optimizerDomain()

	// This rank's authoritative parameter state over its optimizer
	// domain: the fp32 master under FP16 mode, the live slice otherwise.
	paramShard := t.Model.Params[dom.Lo:dom.Hi]
	if t.opts.FP16 {
		paramShard = t.master
	}
	state := t.opt.State()

	if t.stage == StageDDP {
		if t.c.Rank() != 0 {
			return nil
		}
		snap := &Snapshot{
			Stage:     t.stage,
			WorldSize: t.c.Size(),
			NumParams: n,
			OptSteps:  t.opt.Steps(),
			Params:    append([]float32(nil), paramShard...),
		}
		for _, s := range state {
			snap.Opt = append(snap.Opt, append([]float32(nil), s...))
		}
		return snap
	}

	root := 0
	locals := append([][]float32{paramShard}, state...)
	if t.c.Rank() == root {
		snap := &Snapshot{
			Stage:     t.opts.Stage,
			WorldSize: t.c.Size(),
			NumParams: n,
			OptSteps:  t.opt.Steps(),
			Params:    make([]float32, n),
			Opt:       make([][]float32, len(state)),
		}
		for i := range snap.Opt {
			snap.Opt[i] = make([]float32, n)
		}
		full := append([][]float32{snap.Params}, snap.Opt...)
		for i, local := range locals {
			out := make([][]float32, t.c.Size())
			t.c.Gather(local, root, out)
			for r, shard := range out {
				p := t.parts[r]
				copy(full[i][p.Lo:p.Hi], shard)
			}
		}
		return snap
	}
	for _, local := range locals {
		t.c.Gather(local, root, nil)
	}
	return nil
}

// Load restores a snapshot into this rank: the owned shard of the master
// parameters and optimizer state, plus the replicated (or
// gathered-on-demand) parameter copy. Every rank must receive the same
// snapshot — use BroadcastSnapshot after reading it on one rank. The
// snapshot's world size need not match: repartitioning happens naturally
// because the state is stored unpartitioned (ZeRO elasticity). The
// optimizer kind must match the one that wrote the snapshot (the state
// tensor count is checked).
func (t *Trainer) Load(s *Snapshot) error {
	if s == nil {
		return fmt.Errorf("zero: Load of nil snapshot")
	}
	if s.NumParams != t.Model.NumParams() {
		return fmt.Errorf("zero: snapshot has %d params, model has %d", s.NumParams, t.Model.NumParams())
	}
	if len(s.Opt) != len(t.opt.State()) {
		return fmt.Errorf("zero: snapshot has %d optimizer state tensors, optimizer expects %d (different optimizer kind?)",
			len(s.Opt), len(t.opt.State()))
	}
	dom := t.optimizerDomain()
	shards := make([][]float32, len(s.Opt))
	for i, full := range s.Opt {
		if len(full) != s.NumParams {
			return fmt.Errorf("zero: snapshot optimizer state %d has %d elems, want %d", i, len(full), s.NumParams)
		}
		shards[i] = full[dom.Lo:dom.Hi]
	}
	t.opt.Restore(shards, s.OptSteps)
	if t.opts.FP16 {
		copy(t.master, s.Params[dom.Lo:dom.Hi])
		tensor.Copy(t.Model.Params, s.Params)
		quantizeFP16(t.Model.Params)
	} else {
		tensor.Copy(t.Model.Params, s.Params)
	}
	if t.opts.FP16Compute {
		// Re-encode the 2-byte kernel copy from the restored (and already
		// fp16-rounded) parameters. Stage 3's unowned groups go stale when
		// dropUnowned runs below, but the next gather re-halves them.
		t.Model.RefreshHalfParams(0, len(t.Model.Params))
		t.halfStale = true
	}
	if t.stage == StageFull {
		t.dropUnowned()
	}
	if s.AccumMicros > 0 {
		if len(s.Accum) != s.NumParams {
			return fmt.Errorf("zero: snapshot accumulator has %d elems, want %d", len(s.Accum), s.NumParams)
		}
		copy(t.accum, s.Accum[dom.Lo:dom.Hi])
		t.accumMicros = s.AccumMicros
	} else {
		tensor.Zero(t.accum)
		t.accumMicros = 0
	}
	return nil
}

// ShardState is one rank's partition-local slice of the training state: the
// elastic-checkpoint capture unit. Unlike Save it is a pure local copy — no
// collectives — so capturing is legal at any point, including
// mid-accumulation, and never perturbs the stream schedule. The ranges of
// all ranks tile [0, NumParams), so a full world of captures reassembles
// into a Snapshot (see internal/elastic).
type ShardState struct {
	Rank      int
	WorldSize int
	Stage     Stage
	NumParams int
	OptSteps  int

	Lo, Hi int // the owned parameter range this shard covers

	Params []float32   // fp32 master parameters over [Lo, Hi)
	Opt    [][]float32 // optimizer state tensors over [Lo, Hi), State() order

	// Accum/AccumMicros carry the pending gradient accumulator over
	// [Lo, Hi) when captured mid-accumulation; AccumMicros == 0 means a
	// boundary capture and Accum is left empty.
	Accum       []float32
	AccumMicros int
}

// CaptureShard copies this rank's owned training state into dst, reusing
// dst's buffers (a warmed capture allocates nothing). It is local and
// synchronous: safe to call from a boundary hook, between micro-batches, or
// mid-accumulation. At stage 0 the state is replicated, but each rank still
// captures only its partition slice — the replicas are bitwise identical, so
// the tiling reassembles the exact full state.
func (t *Trainer) CaptureShard(dst *ShardState) {
	own := t.Owned()
	dom := t.optimizerDomain()
	lo, hi := own.Lo-dom.Lo, own.Hi-dom.Lo

	dst.Rank = t.c.Rank()
	dst.WorldSize = t.c.Size()
	dst.Stage = t.stage
	dst.NumParams = t.Model.NumParams()
	dst.OptSteps = t.opt.Steps()
	dst.Lo, dst.Hi = own.Lo, own.Hi

	params := t.Model.Params[own.Lo:own.Hi]
	if t.opts.FP16 {
		params = t.master[lo:hi]
	}
	dst.Params = append(dst.Params[:0], params...)

	state := t.opt.State()
	if cap(dst.Opt) < len(state) {
		dst.Opt = make([][]float32, len(state))
	}
	dst.Opt = dst.Opt[:len(state)]
	for i, s := range state {
		dst.Opt[i] = append(dst.Opt[i][:0], s[lo:hi]...)
	}

	dst.AccumMicros = t.accumMicros
	if t.accumMicros > 0 {
		dst.Accum = append(dst.Accum[:0], t.accum[lo:hi]...)
	} else {
		dst.Accum = dst.Accum[:0]
	}
}

// BroadcastSnapshot distributes rank 0's snapshot to every rank (ranks
// other than 0 pass nil and receive a fresh copy). Must be called
// collectively.
func BroadcastSnapshot(c *comm.Comm, s *Snapshot) *Snapshot {
	header := make([]float32, 6)
	if c.Rank() == 0 {
		header[0] = float32(s.Stage)
		header[1] = float32(s.WorldSize)
		header[2] = float32(s.NumParams)
		header[3] = float32(s.OptSteps)
		header[4] = float32(len(s.Opt))
		header[5] = float32(s.AccumMicros)
	}
	c.Broadcast(header, 0)
	if c.Rank() != 0 {
		n := int(header[2])
		s = &Snapshot{
			Stage:       Stage(header[0]),
			WorldSize:   int(header[1]),
			NumParams:   n,
			OptSteps:    int(header[3]),
			AccumMicros: int(header[5]),
			Params:      make([]float32, n),
			Opt:         make([][]float32, int(header[4])),
		}
		for i := range s.Opt {
			s.Opt[i] = make([]float32, n)
		}
		if s.AccumMicros > 0 {
			s.Accum = make([]float32, n)
		}
	}
	c.Broadcast(s.Params, 0)
	for _, st := range s.Opt {
		c.Broadcast(st, 0)
	}
	if s.AccumMicros > 0 {
		c.Broadcast(s.Accum, 0)
	}
	return s
}

// Encode serializes the snapshot (gob) for file persistence, sealed with the
// integrity trailer (see frame.go): truncated or padded blobs fail to decode
// instead of being silently tolerated by gob.
func (s *Snapshot) Encode() ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(s); err != nil {
		return nil, fmt.Errorf("zero: encoding snapshot: %w", err)
	}
	return SealFrame(buf.Bytes()), nil
}

// DecodeSnapshot deserializes a snapshot produced by Encode, verifying the
// integrity trailer first — gob alone accepts blobs with trailing garbage
// and truncations that land on a value boundary; the trailer rejects both.
// Legacy blobs from the Adam-only format (AdamM/AdamV fields) are migrated
// into Opt.
func DecodeSnapshot(data []byte) (*Snapshot, error) {
	payload, err := OpenFrame(data)
	if err != nil {
		return nil, err
	}
	var s Snapshot
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&s); err != nil {
		return nil, fmt.Errorf("zero: decoding snapshot: %w", err)
	}
	if len(s.Opt) == 0 && s.AdamM != nil && s.AdamV != nil {
		s.Opt = [][]float32{s.AdamM, s.AdamV}
	}
	s.AdamM, s.AdamV = nil, nil
	return &s, nil
}
