package zero

import (
	"fmt"

	"repro/internal/comm"
	"repro/internal/model"
	"repro/internal/optimizer"
	"repro/internal/tensor"
)

// Options configures a ZeRO-DP trainer rank.
type Options struct {
	// Stage selects how much model state is partitioned: StageDDP (0,
	// everything replicated — the baseline run through the same code
	// path), StageOS (1, Pos), StageOSGrad (2, Pos+g) or StageFull
	// (3, Pos+g+p).
	Stage Stage
	LR    float64
	Seed  int64
	// BucketElems is the gradient communication bucket size in elements
	// (the CB optimization applied to gradient collectives): each layer
	// group's gradients are reduced in fixed-size partition-aligned
	// buckets, mimicking how ZeRO buckets gradients as they become
	// available during backward (§5.2). 0 reduces each layer group in one
	// bucket.
	BucketElems int
	// Overlap launches each gradient bucket's collectives on a background
	// engine as soon as its layer's backward pass finishes, overlapping
	// communication with the remaining backward compute (§7.2). A Flush
	// barrier runs before the optimizer step. Results are bitwise
	// identical to the synchronous schedule; only wall-clock changes.
	// Ignored while an activation-checkpoint Store is attached (Pa's own
	// collectives share the communicator and must not interleave).
	Overlap bool
	// FP16 simulates mixed-precision training: parameters and gradients
	// are rounded through binary16 around forward/backward while each
	// rank's owned fp32 master shard drives the Adam update (§3.1).
	FP16 bool
	// ClipNorm caps the global gradient L2 norm before the optimizer step
	// (0 disables). The norm of the *partitioned* gradient is computed
	// with one extra N-element all-gather of per-shard partial sums — the
	// collective pattern DeepSpeed uses for ZeRO gradient clipping.
	ClipNorm float64
	// Checkpoint enables activation checkpointing in the wrapped model.
	Checkpoint bool
	// Store, with Checkpoint, routes activation checkpoints through a
	// CheckpointStore (Pa / Pa+cpu from ZeRO-R).
	Store model.CheckpointStore
}

// Trainer is one rank of a ZeRO-powered data-parallel job. The same type
// implements every stage — 0 (baseline DDP), 1 (Pos), 2 (Pos+g) and
// 3 (Pos+g+p); the stage decides which states stay resident per rank and
// which collective schedule runs. Stage 0 is the degenerate case: the
// partition still exists, but every rank runs the optimizer over the full
// buffer and the gradient reduce-scatter is completed into an all-reduce by
// a gradient all-gather.
type Trainer struct {
	Model *model.Model

	// BucketElems, ClipNorm and Overlap mirror the Options fields and may
	// be mutated between steps (internal/ddp tunes them after New).
	BucketElems int
	ClipNorm    float64
	Overlap     bool

	// LastGradNorm is the global gradient norm observed by the most
	// recent Step when ClipNorm is enabled (pre-clipping).
	LastGradNorm float64

	c     *comm.Comm
	opts  Options
	stage Stage

	parts  []comm.Range    // global Ψ/Nd partition; parts[rank] is owned
	opt    *optimizer.Adam // optimizer over the owned partition (full buffer at stage 0)
	master []float32       // fp32 master copy of the optimizer's domain (FP16 mode)
	groups []model.Segment // layer groups: gather and bucket granularity

	engine *comm.AsyncEngine // lazily started overlap engine
}

// New constructs a rank's trainer. Every rank must use identical cfg and
// Options so the replicas agree on layout and initialization.
func New(c *comm.Comm, cfg model.Config, opts Options) *Trainer {
	if !opts.Stage.Valid() {
		panic(fmt.Sprintf("zero: unknown stage %v (want StageDDP..StageFull)", opts.Stage))
	}
	m := model.New(cfg, opts.Seed)
	m.Checkpoint = opts.Checkpoint
	m.Store = opts.Store
	n := m.NumParams()
	parts := comm.Partition(n, c.Size())
	own := parts[c.Rank()]
	optDomain := own
	if opts.Stage == StageDDP {
		optDomain = comm.Range{Lo: 0, Hi: n} // replicated optimizer state
	}
	t := &Trainer{
		Model:       m,
		BucketElems: opts.BucketElems,
		ClipNorm:    opts.ClipNorm,
		Overlap:     opts.Overlap,
		c:           c,
		opts:        opts,
		stage:       opts.Stage,
		parts:       parts,
		opt:         optimizer.NewAdam(optDomain.Len(), opts.LR),
		groups:      m.Layout.LayerSegments(cfg.Layers),
	}
	if opts.FP16 {
		t.master = append([]float32(nil), m.Params[optDomain.Lo:optDomain.Hi]...)
		quantizeFP16(m.Params) // forward always sees fp16-valued weights
	}
	if opts.Stage == StageFull {
		t.dropUnowned()
	}
	return t
}

// Stage returns the trainer's configured ZeRO-DP stage.
func (t *Trainer) Stage() Stage { return t.stage }

// Owned returns this rank's partition of the flat parameter space.
func (t *Trainer) Owned() comm.Range { return t.parts[t.c.Rank()] }

// optimizerDomain is the flat-buffer range the rank's optimizer updates:
// the owned partition, or the whole buffer at stage 0.
func (t *Trainer) optimizerDomain() comm.Range {
	if t.stage == StageDDP {
		return comm.Range{Lo: 0, Hi: t.Model.NumParams()}
	}
	return t.Owned()
}

// Close releases the overlap engine's worker goroutine. Safe to call on
// trainers that never overlapped, and more than once.
func (t *Trainer) Close() {
	if t.engine != nil {
		t.engine.Close()
		t.engine = nil
	}
}

// dropUnowned zeroes every parameter outside the owned partition — the
// stage-3 resident state is Ψ/Nd (§5.3). The full-size buffer remains as
// gather workspace; accounting distinguishes resident from transient.
func (t *Trainer) dropUnowned() {
	own := t.Owned()
	tensor.Zero(t.Model.Params[:own.Lo])
	tensor.Zero(t.Model.Params[own.Hi:])
}

// gatherParams re-materializes the full parameter buffer from the owned
// shards, layer group by layer group — the pipelined all-gather schedule of
// §7.2.2 ("the data parallel process responsible for that partition can
// broadcast the weights... spread across the entire forward propagation").
func (t *Trainer) gatherParams() {
	for _, g := range t.groups {
		groupParts := intersect(t.parts, g.Lo, g.Hi)
		t.c.AllGather(t.Model.Params[:], groupParts)
	}
}

// intersect clips the global partition to [lo,hi), producing a per-rank
// partition of that window (possibly with empty ranges).
func intersect(parts []comm.Range, lo, hi int) []comm.Range {
	out := make([]comm.Range, len(parts))
	for i, p := range parts {
		l, h := p.Lo, p.Hi
		if l < lo {
			l = lo
		}
		if h > hi {
			h = hi
		}
		if l > h {
			l = lo // normalize empty
			h = lo
		}
		out[i] = comm.Range{Lo: l, Hi: h}
	}
	return out
}

// Step runs one ZeRO-DP training step on this rank's shard of the global
// batch and returns the local loss.
func (t *Trainer) Step(ids, targets []int, globalBatch int) float64 {
	shardIDs, shardTargets, per := model.ShardBatch(ids, targets, globalBatch, t.c.Size(), t.c.Rank())
	own := t.Owned()

	// Stage 3: re-materialize parameters for the forward pass.
	if t.stage == StageFull {
		t.gatherParams()
	}

	t.Model.ZeroGrads()
	loss := t.Model.Loss(shardIDs, shardTargets, per)

	// Stage 3: parameters were "discarded once used" after forward; gather
	// them again for the backward pass (the second Ψ of §7.2.2).
	if t.stage == StageFull {
		t.dropUnowned()
		t.gatherParams()
	}

	// Backward pass plus the gradient collective schedule: synchronous
	// after backward, or overlapped bucket by bucket as layers finish.
	if t.Overlap && t.Model.Store == nil {
		t.backwardOverlapped()
	} else {
		t.Model.Backward()
		if t.opts.FP16 {
			quantizeFP16(t.Model.Grads)
		}
		for _, g := range t.commSchedule() {
			t.reduceBucket(g.Lo, g.Hi)
		}
	}

	// Average. Stage 0 holds the full reduced gradient on every rank;
	// the partitioned stages scale just the owned shard.
	gradShard := t.Model.Grads[own.Lo:own.Hi]
	if t.stage == StageDDP {
		tensor.Scale(t.Model.Grads, 1/float32(t.c.Size()))
	} else {
		tensor.Scale(gradShard, 1/float32(t.c.Size()))
	}

	// Stage ≥ 2: gradients outside the owned partition are released as
	// soon as their bucket is reduced (§5.2); zeroing models the release.
	if t.stage >= StageOSGrad {
		tensor.Zero(t.Model.Grads[:own.Lo])
		tensor.Zero(t.Model.Grads[own.Hi:])
	}

	// Global gradient clipping over the partition-ordered partial Σg².
	// Stage 0 computes every partial locally (the full gradient is
	// resident); the partitioned stages contribute their shard's partial
	// and all-gather the rest — same arithmetic, same bits.
	if t.ClipNorm > 0 {
		var partials []float32
		if t.stage == StageDDP {
			partials = optimizer.PartitionSquaredSums(t.Model.Grads, t.parts)
		} else {
			partials = make([]float32, t.c.Size())
			partials[t.c.Rank()] = optimizer.PartialSquaredSum(gradShard)
			t.c.AllGather(partials, comm.Partition(len(partials), t.c.Size()))
		}
		norm := optimizer.GlobalGradNorm(partials)
		t.LastGradNorm = norm
		scale := optimizer.ClipScale(norm, t.ClipNorm)
		if t.stage == StageDDP {
			tensor.Scale(t.Model.Grads, scale)
		} else {
			tensor.Scale(gradShard, scale)
		}
	}

	// Optimizer step over this rank's domain: the owned shard (Pos, §5.1),
	// or the full buffer at stage 0.
	dom := t.optimizerDomain()
	grads := t.Model.Grads[dom.Lo:dom.Hi]
	if t.opts.FP16 {
		t.opt.Step(t.master, grads)
		for i := range t.master {
			t.Model.Params[dom.Lo+i] = tensor.FromFloat32(t.master[i]).Float32()
		}
	} else {
		t.opt.Step(t.Model.Params[dom.Lo:dom.Hi], grads)
	}

	// Post-step parameter state per stage. Stage 0: every replica applied
	// the identical update, nothing to communicate. Stages 1-2: all-gather
	// the updated parameters so every rank has the full set for the next
	// step (the second Ψ of §7.2.1). Stage 3: parameters are gathered
	// lazily at the next forward pass.
	switch t.stage {
	case StageDDP:
	case StageFull:
		t.dropUnowned()
	default:
		t.c.AllGather(t.Model.Params, t.parts)
	}
	return loss
}

// commSchedule returns the deterministic gradient-bucket order shared by
// the synchronous and overlapped paths: transformer blocks in backward
// order (block L-1 first), then the final layernorm, then the embeddings —
// the order in which gradient segments finalize during Backward. Each layer
// group is split into BucketElems-sized windows, also in reverse.
func (t *Trainer) commSchedule() []comm.Range {
	var sched []comm.Range
	layers := t.Model.Cfg.Layers
	for l := layers - 1; l >= 0; l-- {
		sched = append(sched, t.groupBuckets(t.layerGroup(l))...)
	}
	sched = append(sched, t.groupBuckets(t.layerGroup(layers))...) // ln_f
	sched = append(sched, t.groupBuckets(t.layerGroup(-1))...)     // embeddings
	return sched
}

// layerGroup returns the flat-buffer segment for a block index, the final
// norm (index Layers) or the embeddings (index -1).
func (t *Trainer) layerGroup(layer int) model.Segment {
	for _, g := range t.groups {
		if g.Layer == layer {
			return g
		}
	}
	panic(fmt.Sprintf("zero: no layer group %d", layer))
}

// groupBuckets splits one layer group into bucket windows, last window
// first (mirroring backward-order bucket fills inside a layer).
func (t *Trainer) groupBuckets(g model.Segment) []comm.Range {
	bucket := t.BucketElems
	if bucket <= 0 || bucket >= g.Len() {
		return []comm.Range{{Lo: g.Lo, Hi: g.Hi}}
	}
	var out []comm.Range
	for hi := g.Hi; hi > g.Lo; hi -= bucket {
		lo := hi - bucket
		if lo < g.Lo {
			lo = g.Lo
		}
		out = append(out, comm.Range{Lo: lo, Hi: hi})
	}
	return out
}

// reduceBucket reduce-scatters one gradient window across the global
// partition; at stage 0 a gradient all-gather completes the all-reduce so
// every rank holds the full reduced bucket. The window's per-rank ownership
// comes from intersecting the global partition, so the elementwise
// reduction order — and therefore the bits — is independent of bucket
// framing.
func (t *Trainer) reduceBucket(lo, hi int) {
	wparts := intersect(t.parts, lo, hi)
	t.c.ReduceScatter(t.Model.Grads, wparts)
	if t.stage == StageDDP {
		t.c.AllGather(t.Model.Grads, wparts)
	}
}

// backwardOverlapped runs Backward with the bucket schedule submitted to
// the async engine as each layer's gradients finalize, then flushes before
// returning — reduce-scatter of layer k rides under the compute of layers
// k-1..0 (§7.2's communication/computation overlap).
func (t *Trainer) backwardOverlapped() {
	if t.engine == nil {
		t.engine = comm.NewAsyncEngine(t.c)
	}
	submitGroup := func(g model.Segment) {
		if t.opts.FP16 {
			quantizeFP16(t.Model.Grads[g.Lo:g.Hi])
		}
		for _, b := range t.groupBuckets(g) {
			lo, hi := b.Lo, b.Hi
			t.engine.Submit(func(*comm.Comm) { t.reduceBucket(lo, hi) })
		}
	}
	t.Model.BackwardHook = func(layer int) { submitGroup(t.layerGroup(layer)) }
	t.Model.Backward()
	t.Model.BackwardHook = nil
	// The embedding gradients keep accumulating until Backward returns
	// (tied head at the start + embedding lookup at the end), so their
	// buckets — and the small ln_f group that shares this slot — go
	// last, exactly as in commSchedule.
	submitGroup(t.layerGroup(t.Model.Cfg.Layers))
	submitGroup(t.layerGroup(-1))
	t.engine.Flush()
}

// quantizeFP16 rounds every value through binary16 in place, simulating
// fp16 storage of a buffer whose arithmetic happens in fp32.
func quantizeFP16(x []float32) {
	for i, v := range x {
		x[i] = tensor.FromFloat32(v).Float32()
	}
}

// ModelStateBytes returns this rank's resident model-state bytes under the
// §3.1 mixed-precision accounting for the configured stage.
func (t *Trainer) ModelStateBytes() int64 {
	return int64(ModelStateBytes(int64(t.Model.NumParams()), t.stage, t.c.Size()))
}

// OptimizerShardParams returns how many parameters this rank's optimizer
// updates (≈ Ψ/Nd; Ψ at stage 0).
func (t *Trainer) OptimizerShardParams() int { return t.opt.Len() }
