package zero

import (
	"fmt"

	"repro/internal/comm"
	"repro/internal/model"
	"repro/internal/optimizer"
	"repro/internal/tensor"
)

// Stream names of the trainer's ordering domains. Every rank creates the
// same names in the same order, which (with identical per-stream submission
// order) is what makes the overlapped schedules pair deterministically
// across ranks.
const (
	// StreamGrad carries gradient reduce-scatters/all-gathers plus the
	// small post-step collectives (parameter all-gather, clip partials).
	StreamGrad = "grad"
	// StreamPrefetch carries stage-3 parameter all-gathers, pipelined
	// ahead of the layer group that needs them (§7.2.2).
	StreamPrefetch = "prefetch"
	// StreamCheckpoint is the conventional name for ZeRO-R Pa checkpoint
	// stores (NewPartitionedStore), so activation gathers never share an
	// ordering domain with gradient or prefetch traffic.
	StreamCheckpoint = "checkpoint"
	// StreamPriority is the high-priority lane for small latency-bound
	// collectives — the N-element gradient-clip partial all-gather and
	// LAMB's 2·#tensors trust-ratio norm all-gather. On its own ordering
	// domain these messages never queue behind megabyte gradient buckets
	// on the grad stream's FIFO worker, the in-process analogue of NCCL's
	// priority streams.
	StreamPriority = "priority"
)

// Topology describes the simulated cluster's node layout for the trainer's
// collectives. The zero value is a flat (single-level) topology.
type Topology struct {
	// NodeSize is the number of ranks per node. When 1 < NodeSize < world
	// size, every full-width gradient and parameter collective is routed
	// through the two-level hierarchical algorithms (intra-node phase +
	// inter-node phase, §2.3/§7's reason DP survives the node uplink), so
	// only ~1/NodeSize of each bucket crosses nodes — measured under the
	// "hier-intra"/"hier-inter" keys of comm.Stats.PerGroup. 0, 1 or the
	// world size mean flat routing. The world size must be a multiple of
	// NodeSize (zero.New returns the comm.ErrTopology error otherwise).
	NodeSize int
}

// Hierarchical reports whether this topology actually routes two-level
// collectives on a world of the given size: NodeSize strictly between 1
// and the world size, dividing it. The single predicate shared by the
// trainer, the experiments and the CLIs — degenerate layouts (one node,
// or one rank per node) are flat everywhere by the same rule.
func (tp Topology) Hierarchical(worldSize int) bool {
	return tp.NodeSize > 1 && tp.NodeSize < worldSize && worldSize%tp.NodeSize == 0
}

// Options configures a ZeRO-DP trainer rank.
type Options struct {
	// Stage selects how much model state is partitioned: StageDDP (0,
	// everything replicated — the baseline run through the same code
	// path), StageOS (1, Pos), StageOSGrad (2, Pos+g) or StageFull
	// (3, Pos+g+p).
	Stage Stage
	LR    float64
	Seed  int64
	// BucketElems is the gradient communication bucket size in elements
	// (the CB optimization applied to gradient collectives): each layer
	// group's gradients are reduced in fixed-size partition-aligned
	// buckets, mimicking how ZeRO buckets gradients as they become
	// available during backward (§5.2). 0 reduces each layer group in one
	// bucket.
	BucketElems int
	// Overlap submits each gradient bucket to the grad stream as soon as
	// its layer's backward pass finishes, overlapping communication with
	// the remaining backward compute (§7.2); the per-bucket handles are
	// waited before the optimizer step. Results are bitwise identical to
	// the synchronous schedule; only wall-clock changes. Composes with an
	// activation-checkpoint Store: Pa's gathers ride their own checkpoint
	// stream, so the two ordering domains interleave freely on the wire.
	Overlap bool
	// Topology routes the trainer's collectives hierarchically for worlds
	// laid out as nodes of Topology.NodeSize ranks (flat when zero).
	// Composes with Overlap and Prefetch: the hierarchical buckets ride
	// the same streams. Schedules on the same topology are bitwise
	// identical to each other; across topologies the reduction tree (and
	// therefore the float rounding) differs.
	Topology Topology
	// Prefetch pipelines stage 3's parameter all-gathers on the prefetch
	// stream: while a layer group computes, the next group's gather is
	// already on the wire, and the forward/backward pass waits per-group
	// handles at layer entry instead of gathering everything up front —
	// §7.2.2's pipelined schedule ("spread across the entire forward
	// propagation"). Bitwise identical to the synchronous gathers; no-op
	// for stages 0-2, which keep parameters resident.
	Prefetch bool
	// PrefetchDepth is the pipelining window of the Prefetch schedule in
	// layer groups: when a group's parameters arrive, the gathers of the
	// next PrefetchDepth groups are (re-)submitted, so up to that many
	// gathers ride the wire while one group computes. 0 or 1 is the
	// classic one-group-ahead pipeline; larger depths trade transient
	// gather memory for more overlap. Results are bitwise identical at
	// every depth — gathers move bits, they never sum them.
	PrefetchDepth int
	// Optimizer selects and parameterizes the optimizer the rank runs over
	// its partition (Adam, momentum SGD or LAMB — §2.3's optimizer family,
	// all of whose state partitions identically). The zero value means
	// Adam; a zero Spec.LR falls back to Options.LR. LAMB trust ratios are
	// computed over full tensors from partition-ordered partial norms (one
	// extra 2·#tensors-float all-gather per boundary), so the update stays
	// bitwise identical across stages.
	Optimizer optimizer.Spec
	// QueueDepth overrides the per-stream submission-queue capacity
	// (0 = comm's default of 64). When a queue fills, submission blocks
	// until the stream worker drains an op — backpressure, never loss.
	QueueDepth int
	// Scheduler, when non-nil, is the stream scheduler the trainer uses
	// instead of creating (and owning) its own — pass one when other
	// components of the rank (e.g. a Pa checkpoint store) must share the
	// same set of ordering domains. The caller keeps ownership: Close is
	// then the caller's job.
	Scheduler *comm.Scheduler
	// FP16 simulates mixed-precision training: parameters and gradients
	// are rounded through binary16 around forward/backward while each
	// rank's owned fp32 master shard drives the Adam update (§3.1).
	// Collectives carry F16-typed buffers, so Stats counts 2 bytes per
	// element natively.
	FP16 bool
	// FP16Compute enables the true fp16 compute path: activations and the
	// parameter copy the kernels read are *stored* in 2-byte binary16
	// (model.SetFP16Compute) with fp32 accumulation inside the fused half
	// kernels, and dynamic loss scaling guards the gradient stream —
	// overflowing steps are skipped by a group-wide vote so every rank
	// backs the scale off together. Implies FP16 (the master-copy and
	// fp16-wire machinery). Incompatible with Checkpoint: the recompute
	// path has no half-domain equivalent yet (zero.New reports the error).
	FP16Compute bool
	// InitialLossScale overrides the dynamic loss scaler's starting scale
	// under FP16Compute (0 = the conventional 2^16).
	InitialLossScale float64
	// LossScaleWindow overrides how many clean steps double the loss scale
	// under FP16Compute (0 = the conventional 1000).
	LossScaleWindow int
	// ClipNorm caps the global gradient L2 norm before the optimizer step
	// (0 disables). The norm of the *partitioned* gradient is computed
	// with one extra N-element all-gather of per-shard partial sums — the
	// collective pattern DeepSpeed uses for ZeRO gradient clipping.
	ClipNorm float64
	// Checkpoint enables activation checkpointing in the wrapped model.
	Checkpoint bool
	// Store, with Checkpoint, routes activation checkpoints through a
	// CheckpointStore (Pa / Pa+cpu from ZeRO-R). A PartitionedStore should
	// run on a StreamCheckpoint stream of the same Scheduler passed above.
	Store model.CheckpointStore
}

// Trainer is one rank of a ZeRO-powered data-parallel job. The same type
// implements every stage — 0 (baseline DDP), 1 (Pos), 2 (Pos+g) and
// 3 (Pos+g+p); the stage decides which states stay resident per rank and
// which collective schedule runs. Stage 0 is the degenerate case: the
// partition still exists, but every rank runs the optimizer over the full
// buffer and the gradient reduce-scatter is completed into an all-reduce by
// a gradient all-gather.
//
// All of the trainer's collectives flow through comm streams: gradient
// traffic on StreamGrad, stage-3 parameter gathers on StreamPrefetch. The
// synchronous schedules submit and immediately Wait; the overlapped ones
// hold the Handle until the dependency point.
type Trainer struct {
	Model *model.Model

	// BucketElems, ClipNorm, Overlap, Prefetch and PrefetchDepth mirror
	// the Options fields and may be mutated between steps (internal/ddp
	// tunes them after New).
	BucketElems   int
	ClipNorm      float64
	Overlap       bool
	Prefetch      bool
	PrefetchDepth int

	// LastGradNorm is the global gradient norm observed by the most
	// recent Update when ClipNorm is enabled (pre-clipping).
	LastGradNorm float64

	c     *comm.Comm
	opts  Options
	stage Stage

	// Dynamic loss scaling state (FP16Compute): scaler drives the scale,
	// overflow latches any fp16-store overflow seen since the last vote.
	scaler   *optimizer.LossScaler
	overflow bool

	parts    []comm.Range        // global Ψ/Nd partition; parts[rank] is owned
	opt      optimizer.Optimizer // optimizer over the owned partition (full buffer at stage 0)
	master   []float32           // fp32 master copy of the optimizer's domain (FP16 mode)
	groups   []model.Segment     // layer groups: gather and bucket granularity
	nodeSize int                 // hierarchical node width; 0 = flat routing

	// accum is the persistent gradient accumulator over the optimizer
	// domain: Ψ/Nd elements at the partitioned stages, Ψ at stage 0 where
	// gradients are replicated anyway. Backward folds each micro-batch's
	// reduce-scattered gradient into it as the buckets complete, so
	// gradient accumulation never holds more than the partition across
	// micro-batch boundaries (§5.2); Update consumes and re-zeroes it.
	accum       []float32
	accumMicros int // micro-batches folded into accum since the last Update

	sched    *comm.Scheduler
	ownSched bool         // whether Close should close sched
	grad     *comm.Stream // lazily created gradient ordering domain
	prefetch *comm.Stream // lazily created stage-3 gather ordering domain
	priority *comm.Stream // lazily created small-message priority lane

	// Steady-state scratch, preallocated at construction (or on first use
	// for the lazily sized pieces) so step k≥2 of a warmed trainer
	// allocates nothing: the bucket plan caches the gradient schedule and
	// its per-bucket ownership partitions; the prefetchers and hook
	// closures persist across steps; the clip and LAMB buffers hold the
	// small collective payloads.
	plan           bucketPlan      // gradient bucket schedule, keyed off BucketElems
	groupsParts    [][]comm.Range  // per t.groups entry: partition clipped to the group
	fwdPf          paramPrefetcher // stage-3 forward gather pipeline
	bwdPf          paramPrefetcher // stage-3 backward gather pipeline
	halfStale      bool            // stage-3 ParamsH lags the master values (set by Update)
	fwdHook        func(int)       // persistent Model.ForwardHook body
	bwdPreHook     func(int)       // persistent Model.BackwardPreHook body
	bwdHook        func(int)       // persistent Model.BackwardHook body (overlap)
	gradHandles    []comm.Handle   // overlapped-bucket handles, reused per step
	clipPartials   []float32       // N-element clip partial buffer
	clipParts      []comm.Range    // its one-element-per-rank partition
	lambUpdate     []float32       // LAMB raw update over the optimizer domain
	lambPartials   []float32       // partition-ordered 2·#tensors·N norm partials
	lambParts      []comm.Range    // their all-gather partition
	lambWP, lambUP []float32       // per-rank partial folds of one segment
}

// bucketPlan is the cached gradient communication schedule: the bucket
// windows in reduction order, each with its ownership partition clipped to
// the window, plus the submission indices per layer group for the
// overlapped path. Rebuilt only when BucketElems changes (internal/ddp
// tunes it between steps).
type bucketPlan struct {
	built       bool
	bucketElems int
	ranges      []comm.Range
	parts       [][]comm.Range
	byLayer     map[int][]int
}

// New constructs a rank's trainer. Every rank must use identical cfg and
// Options so the replicas agree on layout, initialization and stream
// schedule. Construction performs no communication.
//
// Invalid configurations — an unknown stage, or a Topology.NodeSize the
// world size does not tile into (comm.ErrTopology) — are reported here,
// before any collective is in flight, instead of panicking mid-step.
func New(c *comm.Comm, cfg model.Config, opts Options) (*Trainer, error) {
	if !opts.Stage.Valid() {
		return nil, fmt.Errorf("zero: unknown stage %v (want StageDDP..StageFull)", opts.Stage)
	}
	if opts.FP16Compute {
		if opts.Checkpoint {
			return nil, fmt.Errorf("zero: FP16Compute is incompatible with activation checkpointing")
		}
		opts.FP16 = true // fp16 compute implies the fp16 master-copy/wire machinery
	}
	if opts.Topology.NodeSize != 0 {
		if err := comm.CheckNodeSize(c.Size(), opts.Topology.NodeSize); err != nil {
			return nil, fmt.Errorf("zero: topology: %w", err)
		}
	}
	nodeSize := 0 // flat unless the layout is genuinely two-level
	if opts.Topology.Hierarchical(c.Size()) {
		nodeSize = opts.Topology.NodeSize
	}
	m := model.New(cfg, opts.Seed)
	m.Checkpoint = opts.Checkpoint
	m.Store = opts.Store
	n := m.NumParams()
	parts := comm.Partition(n, c.Size())
	own := parts[c.Rank()]
	optDomain := own
	if opts.Stage == StageDDP {
		optDomain = comm.Range{Lo: 0, Hi: n} // replicated optimizer state
	}
	sched := opts.Scheduler
	ownSched := false
	if sched == nil {
		var so []comm.SchedulerOption
		if opts.QueueDepth > 0 {
			so = append(so, comm.WithQueueDepth(opts.QueueDepth))
		}
		sched = comm.NewScheduler(c, so...)
		ownSched = true
	}
	spec := opts.Optimizer
	if spec.LR == 0 {
		spec.LR = opts.LR
	}
	opt, err := optimizer.New(spec, optDomain.Len())
	if err != nil {
		return nil, fmt.Errorf("zero: %w", err)
	}
	t := &Trainer{
		Model:         m,
		BucketElems:   opts.BucketElems,
		ClipNorm:      opts.ClipNorm,
		Overlap:       opts.Overlap,
		Prefetch:      opts.Prefetch,
		PrefetchDepth: opts.PrefetchDepth,
		c:             c,
		opts:          opts,
		stage:         opts.Stage,
		parts:         parts,
		opt:           opt,
		accum:         make([]float32, optDomain.Len()),
		groups:        m.Layout.LayerSegments(cfg.Layers),
		nodeSize:      nodeSize,
		sched:         sched,
		ownSched:      ownSched,
	}
	if opts.FP16 {
		t.master = append([]float32(nil), m.Params[optDomain.Lo:optDomain.Hi]...)
		quantizeFP16(m.Params) // forward always sees fp16-valued weights
	}
	if opts.FP16Compute {
		m.SetFP16Compute(true) // ParamsH encodes the already-rounded Params exactly
		t.scaler = optimizer.NewLossScaler()
		if opts.InitialLossScale > 0 {
			t.scaler.Scale = opts.InitialLossScale
		}
		if opts.LossScaleWindow > 0 {
			t.scaler.GrowthInterval = opts.LossScaleWindow
		}
		m.LossScale = float32(t.scaler.Scale)
	}
	if opts.Stage == StageFull {
		t.dropUnowned()
	}

	// Preallocate the steady-state scratch: per-group gather partitions,
	// the small-collective payloads, the stage-3 prefetch pipelines and the
	// persistent hook closures. After this, a warmed step allocates nothing.
	t.groupsParts = make([][]comm.Range, len(t.groups))
	for i, g := range t.groups {
		t.groupsParts[i] = intersect(parts, g.Lo, g.Hi)
	}
	t.clipPartials = make([]float32, c.Size())
	t.clipParts = comm.Partition(c.Size(), c.Size())
	if opts.Stage == StageFull {
		layers := cfg.Layers
		fwdOrder := make([]model.Segment, 0, layers+2)
		fwdOrder = append(fwdOrder, t.layerGroup(-1))
		for l := 0; l < layers; l++ {
			fwdOrder = append(fwdOrder, t.layerGroup(l))
		}
		fwdOrder = append(fwdOrder, t.layerGroup(layers))
		t.fwdPf.init(t, fwdOrder)
		bwdOrder := make([]model.Segment, 0, layers+2)
		bwdOrder = append(bwdOrder, t.layerGroup(-1))
		bwdOrder = append(bwdOrder, t.layerGroup(layers))
		for l := layers - 1; l >= 0; l-- {
			bwdOrder = append(bwdOrder, t.layerGroup(l))
		}
		t.bwdPf.init(t, bwdOrder)
		t.fwdHook = func(layer int) { t.fwdPf.arrive(layer + 1) }
		t.bwdPreHook = func(layer int) {
			if layer == layers {
				// The head reads the embeddings and the final layernorm
				// (positions 0 and 1) at once.
				t.bwdPf.arrive(0)
				t.bwdPf.arrive(1)
				return
			}
			t.bwdPf.arrive(layers + 1 - layer)
		}
	}
	t.bwdHook = func(layer int) { t.submitLayerBuckets(layer) }
	return t, nil
}

// MustNew is New for configurations known to be valid (benchmarks,
// examples); it panics on error.
func MustNew(c *comm.Comm, cfg model.Config, opts Options) *Trainer {
	t, err := New(c, cfg, opts)
	if err != nil {
		panic(err)
	}
	return t
}

// Stage returns the trainer's configured ZeRO-DP stage.
func (t *Trainer) Stage() Stage { return t.stage }

// Comm returns the trainer's communicator (fault injection, elastic
// snapshot plumbing). It must only be used from the rank's own goroutine.
func (t *Trainer) Comm() *comm.Comm { return t.c }

// Owned returns this rank's partition of the flat parameter space.
func (t *Trainer) Owned() comm.Range { return t.parts[t.c.Rank()] }

// Scheduler returns the trainer's stream scheduler (the one from
// Options.Scheduler, or the internally created one). Useful for harness
// code that wants a quiesce point (Scheduler.Barrier) before reading or
// resetting World stats mid-run; after Step returns, the streams are
// already drained.
func (t *Trainer) Scheduler() *comm.Scheduler { return t.sched }

// optimizerDomain is the flat-buffer range the rank's optimizer updates:
// the owned partition, or the whole buffer at stage 0.
func (t *Trainer) optimizerDomain() comm.Range {
	if t.stage == StageDDP {
		return comm.Range{Lo: 0, Hi: t.Model.NumParams()}
	}
	return t.Owned()
}

// Close releases the trainer's stream workers (if the scheduler is trainer
// owned) and its model workspace, so two sequential trainers in one process
// never double-resident their scratch. Safe to call on trainers that never
// communicated asynchronously, and more than once.
func (t *Trainer) Close() {
	if t.sched != nil && t.ownSched {
		t.sched.Close()
	}
	t.sched = nil
	t.grad = nil
	t.prefetch = nil
	t.priority = nil
	if t.Model != nil {
		t.Model.ReleaseWorkspace()
	}
}

// gradStream lazily creates the gradient ordering domain. QueueDepth is
// passed per stream so it also applies under a shared Options.Scheduler
// (0 falls back to the scheduler's default).
func (t *Trainer) gradStream() *comm.Stream {
	if t.grad == nil {
		t.grad = t.sched.StreamWithDepth(StreamGrad, t.opts.QueueDepth)
	}
	return t.grad
}

// prefetchStream lazily creates the stage-3 gather ordering domain.
func (t *Trainer) prefetchStream() *comm.Stream {
	if t.prefetch == nil {
		t.prefetch = t.sched.StreamWithDepth(StreamPrefetch, t.opts.QueueDepth)
	}
	return t.prefetch
}

// priorityStream lazily creates the small-message priority lane. Every rank
// reaches it under the same configuration (gradient clipping or LAMB), so
// the stream-name set stays identical across ranks — the determinism
// contract of the scheduler.
func (t *Trainer) priorityStream() *comm.Stream {
	if t.priority == nil {
		t.priority = t.sched.StreamWithDepth(StreamPriority, t.opts.QueueDepth)
	}
	return t.priority
}

// wireDType is the dtype collectives are accounted at: F16 under
// mixed-precision (gradients and parameters move as 2-byte halves on real
// wires, §3.1), F32 otherwise.
func (t *Trainer) wireDType() comm.DType {
	if t.opts.FP16 {
		return comm.F16
	}
	return comm.F32
}

// wireBuf wraps a flat buffer at the trainer's wire dtype.
func (t *Trainer) wireBuf(x []float32) comm.Buffer {
	return comm.Buffer{Data: x, DType: t.wireDType()}
}

// NodeSize returns the effective hierarchical node width (0 when routing
// is flat — including the degenerate one-node and one-rank-per-node
// layouts).
func (t *Trainer) NodeSize() int { return t.nodeSize }

// reduceScatter submits one bucket's reduce-scatter to st, routed through
// the two-level hierarchical algorithm when a topology is configured. The
// ownership layout (parts) is identical either way.
func (t *Trainer) reduceScatter(st *comm.Stream, b comm.Buffer, parts []comm.Range) comm.Handle {
	if t.nodeSize > 0 {
		return st.ReduceScatterHierarchical(b, parts, t.nodeSize)
	}
	return st.ReduceScatter(b, parts)
}

// allGather submits one parameter/gradient all-gather to st, routed like
// reduceScatter. The small N-element clip-partial gather stays flat: it is
// latency-bound, and gathers are bitwise identical however they are routed.
func (t *Trainer) allGather(st *comm.Stream, b comm.Buffer, parts []comm.Range) comm.Handle {
	if t.nodeSize > 0 {
		return st.AllGatherHierarchical(b, parts, t.nodeSize)
	}
	return st.AllGather(b, parts)
}

// dropUnowned zeroes every parameter outside the owned partition — the
// stage-3 resident state is Ψ/Nd (§5.3). The full-size buffer remains as
// gather workspace; accounting distinguishes resident from transient.
func (t *Trainer) dropUnowned() {
	own := t.Owned()
	tensor.Zero(t.Model.Params[:own.Lo])
	tensor.Zero(t.Model.Params[own.Hi:])
}

// gatherParams synchronously re-materializes the full parameter buffer from
// the owned shards, layer group by layer group, on the prefetch stream
// (submit + wait per group). The Prefetch option replaces this with the
// pipelined schedule of §7.2.2; the group order and ring arithmetic are
// identical either way, which is why the two are bitwise equal.
func (t *Trainer) gatherParams() {
	for i := range t.groups {
		t.allGather(t.prefetchStream(), t.wireBuf(t.Model.Params), t.groupsParts[i]).Wait()
		if t.opts.FP16Compute && t.halfStale {
			// The fp16 compute copy must track every freshly gathered group.
			t.Model.RefreshHalfParams(t.groups[i].Lo, t.groups[i].Hi)
		}
	}
	// Every group is now encoded; until the next optimizer step delivers
	// new values, re-gathers (the backward pass, accumulation micro-batches)
	// reproduce these bytes exactly and need no re-encode.
	t.halfStale = false
}

// GatheredParams returns a copy of the full parameter buffer, re-gathering
// the partitioned shards first at stage 3 (a collective there — every rank
// must call it together). Harness code (examples, elastic tests) uses it to
// compare trajectories across stages without reaching into Model.Params.
func (t *Trainer) GatheredParams() []float32 {
	if t.stage == StageOSGP {
		t.gatherParams()
	}
	return append([]float32(nil), t.Model.Params...)
}

// paramPrefetcher pipelines layer-group all-gathers on the prefetch stream:
// submit(k) launches group k's gather, arrive(k) waits for it and keeps the
// next depth groups' gathers in flight — so while group k computes, up to
// depth groups are on the wire (depth 1 is the classic one-group-ahead
// pipeline of §7.2.2; deeper windows trade transient gather memory for more
// overlap). Every rank walks the same order with the same depth, so the
// per-stream submission order is identical across ranks (the determinism
// contract), and gathers only move bits, so results are depth-invariant.
//
// A prefetcher is constructed once per trainer (forward and backward each
// own one) and reset per pass: the gather order, the per-group ownership
// partitions and the handle slots all persist, so a steady-state pass
// submits its whole pipeline without allocating.
type paramPrefetcher struct {
	t          *Trainer
	order      []model.Segment
	orderParts [][]comm.Range
	handles    []comm.Handle
	depth      int
}

// init precomputes the gather order's partitions and handle slots.
func (p *paramPrefetcher) init(t *Trainer, order []model.Segment) {
	p.t = t
	p.order = order
	p.orderParts = make([][]comm.Range, len(order))
	for i, g := range order {
		p.orderParts[i] = intersect(t.parts, g.Lo, g.Hi)
	}
	p.handles = make([]comm.Handle, len(order))
}

// reset clears the launch state for a new pass and re-reads the depth knob
// (PrefetchDepth is mutable between steps).
func (p *paramPrefetcher) reset() {
	p.depth = p.t.prefetchWindow()
	for i := range p.handles {
		p.handles[i] = comm.Handle{}
	}
}

// prefetchWindow is the effective depth-k window: PrefetchDepth, floored at
// the classic depth of one.
func (t *Trainer) prefetchWindow() int {
	if t.PrefetchDepth > 1 {
		return t.PrefetchDepth
	}
	return 1
}

// submit launches the all-gather for order[k] if it exists and has not been
// launched yet.
func (p *paramPrefetcher) submit(k int) {
	if k < 0 || k >= len(p.order) || p.handles[k].Valid() {
		return
	}
	p.handles[k] = p.t.allGather(p.t.prefetchStream(), p.t.wireBuf(p.t.Model.Params), p.orderParts[k])
}

// arrive blocks until order[k]'s parameters are resident and tops the
// pipeline back up to depth groups ahead.
func (p *paramPrefetcher) arrive(k int) {
	p.submit(k) // defensive; a no-op on the normal path
	p.handles[k].Wait()
	if p.t.opts.FP16Compute && p.t.halfStale {
		// The fp16 compute copy must track the group that just landed. A
		// re-gather of unchanged values (the backward pass) skips this: the
		// gather is deterministic, so ParamsH already holds these bytes.
		p.t.Model.RefreshHalfParams(p.order[k].Lo, p.order[k].Hi)
	}
	for d := 1; d <= p.depth; d++ {
		p.submit(k + d)
	}
}

// prime launches the initial window: groups [0, n) for an n-deep start.
func (p *paramPrefetcher) prime(n int) {
	for k := 0; k < n && k < len(p.order); k++ {
		p.submit(k)
	}
}

// forwardPrefetched runs the forward pass with the stage-3 parameter
// gathers pipelined: group order is embeddings, blocks 0..L-1, final
// layernorm (position = layer+1), matching the order Loss touches them.
// The tied head re-reads the embeddings, which stay resident from position
// 0 — gathered groups are only dropped after the pass, exactly like the
// synchronous schedule.
func (t *Trainer) forwardPrefetched(ids, targets []int, per int) float64 {
	t.fwdPf.reset()
	t.fwdPf.prime(t.fwdPf.depth)
	t.Model.ForwardHook = t.fwdHook
	loss := t.Model.Loss(ids, targets, per)
	t.Model.ForwardHook = nil
	// The hooks arrived (and, when stale, re-encoded) every group.
	t.halfStale = false
	return loss
}

// armBackwardPrefetch arms the pipelined parameter gathers for the backward
// pass: the head needs the embeddings and the final layernorm first
// (positions 0 and 1), then blocks L-1..0 (position L+1-layer). The caller
// clears Model.BackwardPreHook after Backward; all handles have been waited
// by then because every group's BackwardPreHook fires.
func (t *Trainer) armBackwardPrefetch() {
	t.bwdPf.reset()
	t.bwdPf.prime(t.bwdPf.depth + 1) // the head reads two groups (embeddings + ln_f) at once
	t.Model.BackwardPreHook = t.bwdPreHook
}

// intersect clips the global partition to [lo,hi), producing a per-rank
// partition of that window (possibly with empty ranges).
func intersect(parts []comm.Range, lo, hi int) []comm.Range {
	out := make([]comm.Range, len(parts))
	for i, p := range parts {
		l, h := p.Lo, p.Hi
		if l < lo {
			l = lo
		}
		if h > hi {
			h = hi
		}
		if l > h {
			l = lo // normalize empty
			h = lo
		}
		out[i] = comm.Range{Lo: l, Hi: h}
	}
	return out
}

// Step runs one ZeRO-DP training step on this rank's shard of the global
// batch and returns the local loss. It is the one-micro-batch composition
// of the three-phase lifecycle — Forward, Backward, Update — and is bitwise
// identical to calling the phases explicitly with a single micro-batch per
// update.
func (t *Trainer) Step(ids, targets []int, globalBatch int) float64 {
	loss := t.Forward(ids, targets, globalBatch)
	t.Backward()
	t.Update()
	return loss
}

// Forward runs the forward pass of one micro-batch (microBatch rows across
// the whole data-parallel group; this rank computes its 1/Nd shard) and
// returns the local loss. Stage 3 re-materializes parameters first — up
// front on the synchronous schedule, or pipelined under the forward compute
// with Prefetch (§7.2.2). Each Forward starts a fresh micro-gradient; the
// cross-micro-batch state lives in the partitioned accumulator that
// Backward maintains.
func (t *Trainer) Forward(ids, targets []int, microBatch int) float64 {
	shardIDs, shardTargets, per := model.ShardBatch(ids, targets, microBatch, t.c.Size(), t.c.Rank())
	prefetching := t.stage == StageFull && t.Prefetch
	if t.stage == StageFull && !prefetching {
		t.gatherParams()
	}
	t.Model.ZeroGrads()
	if prefetching {
		return t.forwardPrefetched(shardIDs, shardTargets, per)
	}
	return t.Model.Loss(shardIDs, shardTargets, per)
}

// Backward runs the backward pass of the micro-batch last seen by Forward
// and folds its gradient into the rank's persistent accumulator: the bucket
// schedule reduce-scatters each window across the group as gradients become
// available (synchronously after backward, or overlapped bucket by bucket
// as layers finish), and only the reduced values over the optimizer domain
// are accumulated. At the partitioned stages that domain is the owned Ψ/Nd
// shard, so gradient accumulation across micro-batches never holds more
// than the partition (§5.2) — the full-width micro gradient is transient
// workspace, re-zeroed by the next Forward.
func (t *Trainer) Backward() {
	own := t.Owned()
	prefetching := t.stage == StageFull && t.Prefetch

	// Stage 3: parameters were "discarded once used" after forward; gather
	// them again for the backward pass (the second Ψ of §7.2.2).
	if t.stage == StageFull {
		t.dropUnowned()
		if !prefetching {
			t.gatherParams()
		}
	}
	if prefetching {
		t.armBackwardPrefetch()
	}

	// Backward pass plus the gradient collective schedule: synchronous
	// after backward, or overlapped bucket by bucket as layers finish.
	// Both ride the grad stream; an attached checkpoint store gathers on
	// its own stream concurrently.
	if t.Overlap {
		t.backwardOverlapped()
	} else {
		t.Model.Backward()
		if t.opts.FP16 {
			t.quantizeGrads(t.Model.Grads)
		}
		p := t.ensurePlan()
		for i := range p.ranges {
			t.reduceBucketAt(p, i).Wait()
		}
	}
	if prefetching {
		t.Model.BackwardPreHook = nil
	}
	// Latch any fp16-store overflow this micro-batch raised; the group
	// votes on the accumulated flag at the next Update.
	if t.opts.FP16Compute && t.Model.TakeOverflow() {
		t.overflow = true
	}

	// Stage ≥ 2: micro-gradients outside the owned partition are released
	// as soon as their bucket is reduced (§5.2); zeroing models the
	// release.
	if t.stage >= StageOSGrad {
		tensor.Zero(t.Model.Grads[:own.Lo])
		tensor.Zero(t.Model.Grads[own.Hi:])
	}

	// Fold this micro-batch's reduced gradient into the accumulator. The
	// first fold adds into zeros, so a single-micro-batch update sees the
	// reduced gradient bit for bit.
	dom := t.optimizerDomain()
	tensor.Add(t.accum, t.Model.Grads[dom.Lo:dom.Hi])
	t.accumMicros++
}

// Update consumes the accumulated gradient — the optimizer-step phase that
// fires on the accumulation boundary. It averages the accumulator over
// ranks × micro-batches, applies global gradient clipping, runs the
// configured optimizer over this rank's domain, re-materializes the
// post-step parameter state for the next micro-batch, and re-zeroes the
// accumulator. Panics if no Backward has run since the last Update.
func (t *Trainer) Update() {
	if t.accumMicros == 0 {
		panic("zero: Update without an accumulated Backward")
	}

	// Dynamic loss scaling (FP16Compute): the group votes on overflow
	// before anything else touches the accumulator, so every rank skips —
	// or steps — together with an identical stream schedule.
	if t.opts.FP16Compute && t.voteOverflow() {
		t.skipStep()
		return
	}

	// Average over the group and the accumulation window. Micro-batch
	// losses are means over 1/k of the rows, so the accumulated sum is
	// k·N times the global-batch mean gradient. Under FP16Compute the
	// loss-scale unscale folds into the same multiply.
	inv := 1 / float32(t.c.Size()*t.accumMicros)
	if t.opts.FP16Compute {
		inv = float32(1 / (float64(t.c.Size()*t.accumMicros) * t.scaler.Scale))
	}
	tensor.Scale(t.accum, inv)

	// Global gradient clipping over the partition-ordered partial Σg².
	// Stage 0 computes every partial locally (the full accumulator is
	// resident); the partitioned stages contribute their shard's partial
	// and all-gather the rest — same arithmetic, same bits.
	// The N-float partial exchange rides the priority lane: it is latency
	// bound, and on its own ordering domain it never queues behind bucket
	// traffic still draining on the grad stream. Gathers move bits, so the
	// result is bitwise identical to the grad-stream schedule.
	if t.ClipNorm > 0 {
		partials := t.clipPartials
		if t.stage == StageDDP {
			optimizer.PartitionSquaredSumsInto(partials, t.accum, t.parts)
		} else {
			partials[t.c.Rank()] = optimizer.PartialSquaredSum(t.accum)
			t.priorityStream().AllGather(comm.F32Buf(partials), t.clipParts).Wait()
		}
		norm := optimizer.GlobalGradNorm(partials)
		t.LastGradNorm = norm
		tensor.Scale(t.accum, optimizer.ClipScale(norm, t.ClipNorm))
	}

	// Optimizer step over this rank's domain: the owned shard (Pos, §5.1),
	// or the full buffer at stage 0. LAMB steps with per-tensor trust
	// ratio blocks clipped to the domain.
	dom := t.optimizerDomain()
	if t.opts.FP16 {
		t.stepOptimizer(t.master, t.accum)
		p := t.Model.Params[dom.Lo:dom.Hi]
		copy(p, t.master)
		tensor.RoundHalf(p)
	} else {
		t.stepOptimizer(t.Model.Params[dom.Lo:dom.Hi], t.accum)
	}

	// Post-step parameter state per stage. Stage 0: every replica applied
	// the identical update, nothing to communicate. Stages 1-2: all-gather
	// the updated parameters so every rank has the full set for the next
	// step (the second Ψ of §7.2.1). Stage 3: parameters are gathered
	// lazily at the next forward pass.
	switch t.stage {
	case StageDDP:
	case StageFull:
		t.dropUnowned()
	default:
		t.allGather(t.gradStream(), t.wireBuf(t.Model.Params), t.parts).Wait()
	}

	// Successful step: grow the loss scale on schedule and refresh the
	// 2-byte parameter copy the fused kernels read. Stage 3 skips the
	// refresh — its parameters are gathered (and re-halved) lazily group
	// by group at the next forward pass.
	if t.opts.FP16Compute {
		t.scaler.Update(false)
		t.Model.LossScale = float32(t.scaler.Scale)
		if t.stage != StageFull {
			t.Model.RefreshHalfParams(0, len(t.Model.Params))
		} else {
			t.halfStale = true
		}
	}

	tensor.Zero(t.accum)
	t.accumMicros = 0
}

// voteOverflow agrees group-wide on whether any rank's fp16 stores
// overflowed during the accumulation window. Overflow is data-dependent
// per rank (each rank backpropagates its own micro-batch slice), so even
// stage 0 must vote: a single-rank skip would fork the replicas. The
// N-float exchange rides the priority lane like gradient clipping does.
func (t *Trainer) voteOverflow() bool {
	partials := t.clipPartials
	var f float32
	if t.overflow {
		f = 1
	}
	partials[t.c.Rank()] = f
	t.priorityStream().AllGather(comm.F32Buf(partials), t.clipParts).Wait()
	t.overflow = false
	for _, v := range partials {
		if v != 0 {
			return true
		}
	}
	return false
}

// skipStep abandons an overflowed accumulation window: no clip, no
// optimizer step, no parameter exchange — every rank backs the loss scale
// off by the same factor and re-zeroes its accumulator, so the replicas
// stay bitwise identical through the skip. Stage 3 still drops unowned
// parameter shards to honor its residency contract.
func (t *Trainer) skipStep() {
	if t.stage == StageFull {
		t.dropUnowned()
	}
	t.scaler.Update(true)
	t.Model.LossScale = float32(t.scaler.Scale)
	tensor.Zero(t.accum)
	t.accumMicros = 0
}

// FP16Compute reports whether the half-precision compute path is active.
func (t *Trainer) FP16Compute() bool { return t.opts.FP16Compute }

// LossScale returns the current dynamic loss scale, or 0 when the fp16
// compute path is off.
func (t *Trainer) LossScale() float64 {
	if t.scaler == nil {
		return 0
	}
	return t.scaler.Scale
}

// OverflowSteps counts the optimizer steps skipped due to fp16 overflow
// since the trainer was built.
func (t *Trainer) OverflowSteps() int {
	if t.scaler == nil {
		return 0
	}
	return t.scaler.Skips()
}

// ComputeResidencyBytes reports the bytes the step computation keeps
// resident: the retained workspace plus the parameter copy the kernels
// read — the 2-byte ParamsH under FP16Compute (the fp32 master then
// counts as optimizer state, §3.1), the fp32 Params otherwise.
func (t *Trainer) ComputeResidencyBytes() int64 {
	if t.opts.FP16Compute {
		return t.Model.WorkspaceBytes() + t.Model.ParamsH.Bytes()
	}
	return t.Model.WorkspaceBytes() + int64(len(t.Model.Params))*tensor.BytesPerFloat32
}

// stepOptimizer applies one optimizer update, routing layer-wise
// optimizers (LAMB) through the collective trust-ratio path.
func (t *Trainer) stepOptimizer(params, grads []float32) {
	if l, ok := t.opt.(*optimizer.LAMB); ok {
		t.stepLAMB(l, params, grads)
		return
	}
	t.opt.Step(params, grads)
}

// stepLAMB applies a LAMB update whose per-tensor trust ratios are computed
// over FULL tensors at every stage: each rank contributes the partial
// Σw²/Σu² of its shard's overlap with every tensor, the partials cross the
// wire once (an all-gather of 2·#tensors floats per rank, skipped at stage
// 0 where everything is resident), and every rank folds them in partition
// order — the same arithmetic gradient clipping uses, which is what keeps
// LAMB bitwise identical across stages even though its blocks span shard
// boundaries.
func (t *Trainer) stepLAMB(l *optimizer.LAMB, params, grads []float32) {
	dom := t.optimizerDomain()
	segs := t.Model.Layout.Segments
	nseg := len(segs)
	n := t.c.Size()
	stride := 2 * nseg
	t.ensureLAMBScratch(len(params), stride*n, n)
	update := t.lambUpdate[:len(params)]
	l.PrepareUpdate(params, grads, update)

	// fill only writes the segments overlapping a partition; every other
	// slot must be zero for the partition-ordered norm folds.
	partials := t.lambPartials[:stride*n]
	tensor.Zero(partials)
	// clip returns the overlap of segment s with partition p, rebased to
	// the local buffer (which covers dom).
	clip := func(s model.Segment, p comm.Range) (lo, hi int) {
		lo, hi = s.Lo, s.Hi
		if lo < p.Lo {
			lo = p.Lo
		}
		if hi > p.Hi {
			hi = p.Hi
		}
		if lo >= hi {
			return 0, 0
		}
		return lo - dom.Lo, hi - dom.Lo
	}
	fill := func(rank int, p comm.Range) {
		base := rank * stride
		for s, seg := range segs {
			lo, hi := clip(seg, p)
			if lo == hi {
				continue
			}
			partials[base+2*s] = optimizer.PartialSquaredSum(params[lo:hi])
			partials[base+2*s+1] = optimizer.PartialSquaredSum(update[lo:hi])
		}
	}
	if t.stage == StageDDP {
		// Full buffers resident: every partition's partials are local, but
		// the partition grouping must match the partitioned stages'.
		for r, p := range t.parts {
			fill(r, p)
		}
	} else {
		// Like the clip partials, the 2·#tensors-float norm exchange is
		// latency bound and rides the priority lane.
		fill(t.c.Rank(), t.parts[t.c.Rank()])
		t.priorityStream().AllGather(comm.F32Buf(partials), t.lambParts).Wait()
	}

	wp := t.lambWP[:n]
	up := t.lambUP[:n]
	for s, seg := range segs {
		for r := 0; r < n; r++ {
			wp[r] = partials[r*stride+2*s]
			up[r] = partials[r*stride+2*s+1]
		}
		trust := optimizer.TrustRatio(optimizer.GlobalGradNorm(wp), optimizer.GlobalGradNorm(up))
		lo, hi := clip(seg, dom)
		if lo != hi {
			l.ApplyBlock(params, update, lo, hi, trust)
		}
	}
}

// ensureLAMBScratch sizes the LAMB update/partial buffers once (first
// boundary); subsequent steps reuse them.
func (t *Trainer) ensureLAMBScratch(updateLen, partialLen, n int) {
	if cap(t.lambUpdate) < updateLen {
		t.lambUpdate = make([]float32, updateLen)
	}
	if cap(t.lambPartials) < partialLen {
		t.lambPartials = make([]float32, partialLen)
		t.lambParts = comm.Partition(partialLen, n)
	}
	if cap(t.lambWP) < n {
		t.lambWP = make([]float32, n)
		t.lambUP = make([]float32, n)
	}
}

// AccumulatedMicros reports how many micro-batch gradients are currently
// folded into the accumulator (0 right after an Update).
func (t *Trainer) AccumulatedMicros() int { return t.accumMicros }

// GradAccumElems returns the element count of the persistent gradient
// accumulator: the §5.2 memory claim made measurable — Ψ/Nd at the
// partitioned stages regardless of how many micro-batches accumulate, Ψ
// only at stage 0 where every state is replicated anyway.
func (t *Trainer) GradAccumElems() int { return len(t.accum) }

// ensurePlan returns the cached gradient bucket plan, rebuilding it when
// BucketElems has changed since the last step. The plan holds the
// deterministic bucket order shared by the synchronous and overlapped
// paths — transformer blocks in backward order (block L-1 first), then the
// final layernorm, then the embeddings, each group split into
// BucketElems-sized windows in reverse — plus each bucket's ownership
// partition and the per-layer submission indices, so steady-state steps
// replay the schedule without rebuilding it.
func (t *Trainer) ensurePlan() *bucketPlan {
	if t.plan.built && t.plan.bucketElems == t.BucketElems {
		return &t.plan
	}
	p := bucketPlan{built: true, bucketElems: t.BucketElems, byLayer: make(map[int][]int)}
	add := func(layer int) {
		for _, b := range t.groupBuckets(t.layerGroup(layer)) {
			p.byLayer[layer] = append(p.byLayer[layer], len(p.ranges))
			p.ranges = append(p.ranges, b)
			p.parts = append(p.parts, intersect(t.parts, b.Lo, b.Hi))
		}
	}
	layers := t.Model.Cfg.Layers
	for l := layers - 1; l >= 0; l-- {
		add(l)
	}
	add(layers) // ln_f
	add(-1)     // embeddings
	t.plan = p
	return &t.plan
}

// commSchedule returns the gradient-bucket order of the current plan (for
// tests and instrumentation).
func (t *Trainer) commSchedule() []comm.Range {
	return t.ensurePlan().ranges
}

// layerGroup returns the flat-buffer segment for a block index, the final
// norm (index Layers) or the embeddings (index -1).
func (t *Trainer) layerGroup(layer int) model.Segment {
	for _, g := range t.groups {
		if g.Layer == layer {
			return g
		}
	}
	panic(fmt.Sprintf("zero: no layer group %d", layer))
}

// groupBuckets splits one layer group into bucket windows, last window
// first (mirroring backward-order bucket fills inside a layer).
func (t *Trainer) groupBuckets(g model.Segment) []comm.Range {
	bucket := t.BucketElems
	if bucket <= 0 || bucket >= g.Len() {
		return []comm.Range{{Lo: g.Lo, Hi: g.Hi}}
	}
	var out []comm.Range
	for hi := g.Hi; hi > g.Lo; hi -= bucket {
		lo := hi - bucket
		if lo < g.Lo {
			lo = g.Lo
		}
		out = append(out, comm.Range{Lo: lo, Hi: hi})
	}
	return out
}

// reduceBucketAt submits plan bucket i's collectives to the grad stream
// and returns the handle of the final op: a reduce-scatter across the
// global partition, completed into an all-reduce by a gradient all-gather
// at stage 0. The bucket's per-rank ownership comes from intersecting the
// global partition, so the elementwise reduction order — and therefore the
// bits — is independent of bucket framing; under a Topology both ops route
// hierarchically with the same ownership layout.
func (t *Trainer) reduceBucketAt(p *bucketPlan, i int) comm.Handle {
	buf := t.wireBuf(t.Model.Grads)
	st := t.gradStream()
	h := t.reduceScatter(st, buf, p.parts[i])
	if t.stage == StageDDP {
		h = t.allGather(st, buf, p.parts[i]) // FIFO after the reduce-scatter
	}
	return h
}

// submitLayerBuckets quantizes (FP16) and submits one layer group's buckets
// in plan order, collecting the handles for the end-of-backward wait.
func (t *Trainer) submitLayerBuckets(layer int) {
	p := t.ensurePlan()
	if t.opts.FP16 {
		g := t.layerGroup(layer)
		t.quantizeGrads(t.Model.Grads[g.Lo:g.Hi])
	}
	for _, i := range p.byLayer[layer] {
		t.gradHandles = append(t.gradHandles, t.reduceBucketAt(p, i))
	}
}

// backwardOverlapped runs Backward with the bucket schedule submitted to
// the grad stream as each layer's gradients finalize, then waits every
// bucket handle before returning — reduce-scatter of layer k rides under
// the compute of layers k-1..0 (§7.2's communication/computation overlap).
func (t *Trainer) backwardOverlapped() {
	t.gradHandles = t.gradHandles[:0]
	t.Model.BackwardHook = t.bwdHook
	t.Model.Backward()
	t.Model.BackwardHook = nil
	// The embedding gradients keep accumulating until Backward returns
	// (tied head at the start + embedding lookup at the end), so their
	// buckets — and the small ln_f group that shares this slot — go
	// last, exactly as in the plan order.
	t.submitLayerBuckets(t.Model.Cfg.Layers)
	t.submitLayerBuckets(-1)
	for _, h := range t.gradHandles {
		h.Wait()
	}
}

// quantizeFP16 rounds every value through binary16 in place, simulating
// fp16 storage of a buffer whose arithmetic happens in fp32.
func quantizeFP16(x []float32) {
	comm.F16Buf(x).Quantize()
}

// quantizeGrads rounds a gradient range through binary16 for the wire.
// Under FP16Compute the same rounding also feeds overflow detection
// (RoundHalfCheck produces bitwise-identical values to Quantize) — a
// loss-scaled weight gradient can exceed the fp16 range even when every
// activation store stayed finite.
func (t *Trainer) quantizeGrads(x []float32) {
	if t.opts.FP16Compute {
		if tensor.RoundHalfCheck(x) {
			t.overflow = true
		}
		return
	}
	quantizeFP16(x)
}

// ModelStateBytes returns this rank's resident model-state bytes under the
// §3.1 mixed-precision accounting for the configured stage.
func (t *Trainer) ModelStateBytes() int64 {
	return int64(ModelStateBytes(int64(t.Model.NumParams()), t.stage, t.c.Size()))
}

// OptimizerShardParams returns how many parameters this rank's optimizer
// updates (≈ Ψ/Nd; Ψ at stage 0).
func (t *Trainer) OptimizerShardParams() int { return t.opt.Len() }
