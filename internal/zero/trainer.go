package zero

import (
	"fmt"

	"repro/internal/comm"
	"repro/internal/model"
	"repro/internal/optimizer"
	"repro/internal/tensor"
)

// Options configures a ZeRO-DP trainer rank.
type Options struct {
	Stage Stage
	LR    float64
	Seed  int64
	// BucketElems is the reduce-scatter bucket size in elements (the CB
	// optimization applied to gradient communication): the flat gradient
	// buffer is reduced in fixed-size partition-aligned waves, mimicking
	// how ZeRO buckets gradients as they become available during backward
	// (§5.2). 0 reduces the whole buffer in one wave.
	BucketElems int
	// FP16 simulates mixed-precision training: parameters and gradients
	// are rounded through binary16 around forward/backward while each
	// rank's owned fp32 master shard drives the Adam update (§3.1).
	FP16 bool
	// ClipNorm caps the global gradient L2 norm before the optimizer step
	// (0 disables). The norm of the *partitioned* gradient is computed
	// with one extra N-element all-gather of per-shard partial sums — the
	// collective pattern DeepSpeed uses for ZeRO gradient clipping.
	ClipNorm float64
	// Checkpoint enables activation checkpointing in the wrapped model.
	Checkpoint bool
	// Store, with Checkpoint, routes activation checkpoints through a
	// CheckpointStore (Pa / Pa+cpu from ZeRO-R).
	Store model.CheckpointStore
}

// Trainer is one rank of a ZeRO-powered data-parallel job. The same type
// implements stage 1 (Pos), stage 2 (Pos+g) and stage 3 (Pos+g+p); the
// stage decides which states stay resident per rank and which collective
// schedule runs.
type Trainer struct {
	Model *model.Model
	c     *comm.Comm
	opts  Options

	parts  []comm.Range    // global Ψ/Nd partition; parts[rank] is owned
	opt    *optimizer.Adam // shard-sized optimizer (owned partition only)
	master []float32       // fp32 master copy of the owned shard (FP16 mode)
	groups []model.Segment // layer groups for stage-3 gather granularity

	// LastGradNorm is the global gradient norm observed by the most
	// recent Step when ClipNorm is enabled (pre-clipping).
	LastGradNorm float64
}

// New constructs a rank's trainer. Every rank must use identical cfg and
// Options so the replicas agree on layout and initialization.
func New(c *comm.Comm, cfg model.Config, opts Options) *Trainer {
	if opts.Stage < StageOS || opts.Stage > StageOSGP {
		panic(fmt.Sprintf("zero: trainer supports stages Pos..Pos+g+p, got %v (use internal/ddp for the baseline)", opts.Stage))
	}
	m := model.New(cfg, opts.Seed)
	m.Checkpoint = opts.Checkpoint
	m.Store = opts.Store
	n := m.NumParams()
	parts := comm.Partition(n, c.Size())
	own := parts[c.Rank()]
	t := &Trainer{
		Model:  m,
		c:      c,
		opts:   opts,
		parts:  parts,
		opt:    optimizer.NewAdam(own.Len(), opts.LR),
		groups: m.Layout.LayerSegments(cfg.Layers),
	}
	if opts.FP16 {
		t.master = append([]float32(nil), m.Params[own.Lo:own.Hi]...)
		quantizeFP16(m.Params) // forward always sees fp16-valued weights
	}
	if opts.Stage == StageOSGP {
		t.dropUnowned()
	}
	return t
}

// Owned returns this rank's partition of the flat parameter space.
func (t *Trainer) Owned() comm.Range { return t.parts[t.c.Rank()] }

// dropUnowned zeroes every parameter outside the owned partition — the
// stage-3 resident state is Ψ/Nd (§5.3). The full-size buffer remains as
// gather workspace; accounting distinguishes resident from transient.
func (t *Trainer) dropUnowned() {
	own := t.Owned()
	tensor.Zero(t.Model.Params[:own.Lo])
	tensor.Zero(t.Model.Params[own.Hi:])
}

// gatherParams re-materializes the full parameter buffer from the owned
// shards, layer group by layer group — the pipelined all-gather schedule of
// §7.2.2 ("the data parallel process responsible for that partition can
// broadcast the weights... spread across the entire forward propagation").
func (t *Trainer) gatherParams() {
	for _, g := range t.groups {
		groupParts := intersect(t.parts, g.Lo, g.Hi)
		t.c.AllGather(t.Model.Params[:], groupParts)
	}
}

// intersect clips the global partition to [lo,hi), producing a per-rank
// partition of that window (possibly with empty ranges).
func intersect(parts []comm.Range, lo, hi int) []comm.Range {
	out := make([]comm.Range, len(parts))
	for i, p := range parts {
		l, h := p.Lo, p.Hi
		if l < lo {
			l = lo
		}
		if h > hi {
			h = hi
		}
		if l > h {
			l = lo // normalize empty
			h = lo
		}
		out[i] = comm.Range{Lo: l, Hi: h}
	}
	return out
}

// Step runs one ZeRO-DP training step on this rank's shard of the global
// batch and returns the local loss.
func (t *Trainer) Step(ids, targets []int, globalBatch int) float64 {
	shardIDs, shardTargets, per := model.ShardBatch(ids, targets, globalBatch, t.c.Size(), t.c.Rank())
	own := t.Owned()

	// Stage 3: re-materialize parameters for the forward pass.
	if t.opts.Stage == StageOSGP {
		t.gatherParams()
	}

	t.Model.ZeroGrads()
	loss := t.Model.Loss(shardIDs, shardTargets, per)

	// Stage 3: parameters were "discarded once used" after forward; gather
	// them again for the backward pass (the second Ψ of §7.2.2).
	if t.opts.Stage == StageOSGP {
		t.dropUnowned()
		t.gatherParams()
	}
	t.Model.Backward()
	if t.opts.FP16 {
		quantizeFP16(t.Model.Grads)
	}

	// Reduce-scatter gradients in partition-aligned buckets; each rank
	// ends with the averaged gradients for its own partition.
	t.reduceScatterGrads()
	gradShard := t.Model.Grads[own.Lo:own.Hi]
	tensor.Scale(gradShard, 1/float32(t.c.Size()))

	// Stage ≥ 2: gradients outside the owned partition are released as
	// soon as their bucket is reduced (§5.2); zeroing models the release.
	if t.opts.Stage >= StageOSG {
		tensor.Zero(t.Model.Grads[:own.Lo])
		tensor.Zero(t.Model.Grads[own.Hi:])
	}

	// Global gradient clipping over the partitioned gradient: all-gather
	// the per-shard partial Σg², combine in partition order, scale the
	// owned shard.
	if t.opts.ClipNorm > 0 {
		partials := make([]float32, t.c.Size())
		partials[t.c.Rank()] = optimizer.PartialSquaredSum(gradShard)
		t.c.AllGather(partials, comm.Partition(len(partials), t.c.Size()))
		norm := optimizer.GlobalGradNorm(partials)
		t.LastGradNorm = norm
		tensor.Scale(gradShard, optimizer.ClipScale(norm, t.opts.ClipNorm))
	}

	// Optimizer step on the owned shard only (Pos, §5.1).
	if t.opts.FP16 {
		t.opt.Step(t.master, gradShard)
		for i := range t.master {
			t.Model.Params[own.Lo+i] = tensor.FromFloat32(t.master[i]).Float32()
		}
	} else {
		t.opt.Step(t.Model.Params[own.Lo:own.Hi], gradShard)
	}

	// Stages 1-2: all-gather the updated parameters so every rank has the
	// full set for the next step (the second Ψ of §7.2.1). Stage 3 skips
	// this: parameters are gathered lazily at the next forward pass.
	if t.opts.Stage != StageOSGP {
		t.c.AllGather(t.Model.Params, t.parts)
	} else {
		t.dropUnowned()
	}
	return loss
}

// reduceScatterGrads reduces the flat gradient buffer so each rank owns the
// summed gradients of its partition, in BucketElems-sized waves.
func (t *Trainer) reduceScatterGrads() {
	bucket := t.opts.BucketElems
	n := t.Model.NumParams()
	if bucket <= 0 || bucket >= n {
		t.c.ReduceScatter(t.Model.Grads, t.parts)
		return
	}
	// Wave w covers offset [w·bucket, (w+1)·bucket) of every rank's
	// partition. Waves run in reverse to mirror backward-order bucketing.
	maxLen := 0
	for _, p := range t.parts {
		if p.Len() > maxLen {
			maxLen = p.Len()
		}
	}
	waves := (maxLen + bucket - 1) / bucket
	for w := waves - 1; w >= 0; w-- {
		wparts := make([]comm.Range, len(t.parts))
		for i, p := range t.parts {
			lo := p.Lo + w*bucket
			hi := lo + bucket
			if lo > p.Hi {
				lo, hi = p.Hi, p.Hi
			} else if hi > p.Hi {
				hi = p.Hi
			}
			wparts[i] = comm.Range{Lo: lo, Hi: hi}
		}
		t.c.ReduceScatter(t.Model.Grads, wparts)
	}
}

// quantizeFP16 rounds every value through binary16 in place, simulating
// fp16 storage of a buffer whose arithmetic happens in fp32.
func quantizeFP16(x []float32) {
	for i, v := range x {
		x[i] = tensor.FromFloat32(v).Float32()
	}
}

// ModelStateBytes returns this rank's resident model-state bytes under the
// §3.1 mixed-precision accounting for the configured stage.
func (t *Trainer) ModelStateBytes() int64 {
	return int64(ModelStateBytes(int64(t.Model.NumParams()), t.opts.Stage, t.c.Size()))
}

// OptimizerShardParams returns how many parameters this rank's optimizer
// updates (≈ Ψ/Nd).
func (t *Trainer) OptimizerShardParams() int { return t.opt.Len() }
