package zero

import (
	"testing"

	"repro/internal/comm"
	"repro/internal/model"
	"repro/internal/optimizer"
	"repro/internal/tensor"
)

// accumRun trains `boundaries` optimizer steps, each accumulating k
// micro-batches sliced row-major from the global batch, through the
// three-phase Forward/Backward/Update lifecycle. It returns rank 0's
// per-micro losses (k per boundary) and every rank's final full parameter
// buffer (stage 3 gathers before reporting).
func accumRun(t *testing.T, cfg model.Config, n, boundaries, k int, opts Options,
	ids, targets []int, globalBatch int) ([]float64, [][]float32) {
	t.Helper()
	if globalBatch%k != 0 {
		t.Fatalf("global batch %d not divisible by k=%d", globalBatch, k)
	}
	micro := globalBatch / k
	seqLen := len(ids) / globalBatch
	mt := micro * seqLen
	losses := make([]float64, 0, boundaries*k)
	params := make([][]float32, n)
	w := comm.NewWorld(n)
	w.Run(func(c *comm.Comm) {
		tr := MustNew(c, cfg, opts)
		defer tr.Close()
		for b := 0; b < boundaries; b++ {
			for j := 0; j < k; j++ {
				l := tr.Forward(ids[j*mt:(j+1)*mt], targets[j*mt:(j+1)*mt], micro)
				tr.Backward()
				if c.Rank() == 0 {
					losses = append(losses, l)
				}
			}
			tr.Update()
		}
		if opts.Stage == StageFull {
			tr.gatherParams()
		}
		params[c.Rank()] = append([]float32(nil), tr.Model.Params...)
	})
	return losses, params
}

// The stage-equivalence contract extended to gradient accumulation: for a
// fixed accumulation depth k, every stage × {sync, overlap, prefetch} ×
// bucket size walks bitwise the same micro-loss trajectory and reaches
// bitwise the same parameters as the synchronous unbucketed stage-0
// reference. Partitioning and scheduling still change memory and
// wall-clock, never the optimization (§2.2.3) — now across micro-batch
// boundaries too.
func TestAccumStagesBitIdentical(t *testing.T) {
	cfg := testConfig()
	const n, boundaries, k, batch = 4, 3, 2, 8
	ids, targets := model.SyntheticBatch(31, batch, cfg.Seq, cfg.Vocab)

	base := Options{LR: testLR, Seed: testSeed}
	refLoss, refParams := accumRun(t, cfg, n, boundaries, k, base, ids, targets, batch)

	for _, stage := range AllStages {
		for _, overlap := range []bool{false, true} {
			for _, prefetch := range []bool{false, true} {
				for _, bucket := range []int{0, 193} {
					opts := base
					opts.Stage = stage
					opts.Overlap = overlap
					opts.Prefetch = prefetch
					opts.BucketElems = bucket
					loss, params := accumRun(t, cfg, n, boundaries, k, opts, ids, targets, batch)
					for i := range refLoss {
						if loss[i] != refLoss[i] {
							t.Errorf("%v overlap=%v prefetch=%v bucket=%d micro %d: loss %.17g != ref %.17g",
								stage, overlap, prefetch, bucket, i, loss[i], refLoss[i])
							break
						}
					}
					for r := 0; r < n; r++ {
						if d := tensor.MaxDiff(params[r], refParams[r]); d != 0 {
							t.Errorf("%v overlap=%v prefetch=%v bucket=%d rank %d: params diverged by %g",
								stage, overlap, prefetch, bucket, r, d)
						}
					}
				}
			}
		}
	}
}

// Accumulation composes with hierarchical topology routing: on the same
// node layout every stage agrees bitwise (the per-topology determinism
// contract of the process-group PR, extended across micro-batches).
func TestAccumTopologyStagesBitIdentical(t *testing.T) {
	cfg := testConfig()
	const n, boundaries, k, batch = 8, 2, 2, 16
	ids, targets := model.SyntheticBatch(41, batch, cfg.Seq, cfg.Vocab)
	for _, nodeSize := range []int{0, 2} {
		base := Options{LR: testLR, Seed: testSeed, Topology: Topology{NodeSize: nodeSize}}
		refLoss, refParams := accumRun(t, cfg, n, boundaries, k, base, ids, targets, batch)
		for _, stage := range []Stage{StageOSGrad, StageFull} {
			opts := base
			opts.Stage = stage
			opts.Overlap = true
			opts.Prefetch = true
			opts.BucketElems = 193
			loss, params := accumRun(t, cfg, n, boundaries, k, opts, ids, targets, batch)
			for i := range refLoss {
				if loss[i] != refLoss[i] {
					t.Errorf("nodeSize=%d %v micro %d: loss %.17g != ref %.17g",
						nodeSize, stage, i, loss[i], refLoss[i])
					break
				}
			}
			for r := 0; r < n; r++ {
				if d := tensor.MaxDiff(params[r], refParams[r]); d != 0 {
					t.Errorf("nodeSize=%d %v rank %d: params diverged by %g", nodeSize, stage, r, d)
				}
			}
		}
	}
}

// A single-micro-batch accumulation cycle is the legacy Step, bitwise: the
// three-phase refactor must not have moved a single operation.
func TestAccumK1MatchesLegacyStepBitwise(t *testing.T) {
	cfg := testConfig()
	const n, steps, batch = 4, 5, 8
	ids, targets := model.SyntheticBatch(31, batch, cfg.Seq, cfg.Vocab)
	for _, stage := range AllStages {
		opts := Options{Stage: stage, LR: testLR, Seed: testSeed, BucketElems: 193, Overlap: true}

		legacy := make([]float64, steps)
		legacyParams := make([][]float32, n)
		w := comm.NewWorld(n)
		w.Run(func(c *comm.Comm) {
			tr := MustNew(c, cfg, opts)
			defer tr.Close()
			for s := 0; s < steps; s++ {
				l := tr.Step(ids, targets, batch)
				if c.Rank() == 0 {
					legacy[s] = l
				}
			}
			legacyParams[c.Rank()] = append([]float32(nil), tr.Model.Params...)
		})

		phased, phasedParams := accumRun(t, cfg, n, steps, 1, opts, ids, targets, batch)
		for s := range legacy {
			if phased[s] != legacy[s] {
				t.Errorf("%v step %d: phased loss %.17g != legacy %.17g", stage, s, phased[s], legacy[s])
			}
		}
		for r := 0; r < n; r++ {
			if stage == StageFull {
				continue // legacy loop did not re-gather before reporting
			}
			if d := tensor.MaxDiff(phasedParams[r], legacyParams[r]); d != 0 {
				t.Errorf("%v rank %d: phased params diverged by %g", stage, r, d)
			}
		}
	}
}

// Accumulating k micro-batches of B/k rows equals one B-sized batch: the
// leaves of the gradient sum are identical (micro losses are means over
// 1/k of the rows, an exact power-of-two rescale for k ∈ {2,4}, undone
// exactly by the boundary 1/(N·k) average), so the two runs differ only by
// the grouping of the same per-row gradient sums — per-micro ring
// reductions folded serially versus one ring over whole-batch partials.
// Like the cross-topology contract, regrouping a float32 reduction tree is
// a rounding-level effect, so equality is checked to tight tolerance and
// the trajectories must descend in lockstep.
func TestAccumMatchesSingleBatch(t *testing.T) {
	cfg := testConfig()
	const n, boundaries, batch = 4, 6, 16
	ids, targets := model.SyntheticBatch(31, batch, cfg.Seq, cfg.Vocab)

	for _, stage := range []Stage{StageDDP, StageOSGrad, StageFull} {
		opts := Options{Stage: stage, LR: testLR, Seed: testSeed, BucketElems: 193, Overlap: true, Prefetch: true}
		_, single := accumRun(t, cfg, n, boundaries, 1, opts, ids, targets, batch)
		for _, k := range []int{2, 4} {
			microLoss, accum := accumRun(t, cfg, n, boundaries, k, opts, ids, targets, batch)
			if d := tensor.MaxDiff(accum[0], single[0]); d > 2e-4 {
				t.Errorf("%v k=%d: accumulated params differ from single batch by %g", stage, k, d)
			}
			// The mean micro loss of the final boundary must descend below
			// the first boundary's (the accumulated run actually trains).
			first, last := 0.0, 0.0
			for j := 0; j < k; j++ {
				first += microLoss[j]
				last += microLoss[(boundaries-1)*k+j]
			}
			if last >= first {
				t.Errorf("%v k=%d: accumulated loss did not fall: %v -> %v", stage, k, first/float64(k), last/float64(k))
			}
		}
	}
}

// The §5.2 memory property, measured: the gradient state a rank carries
// across micro-batch boundaries is exactly its Ψ/Nd partition at stages
// ≥ 1 (the full Ψ only at stage 0, where every state is replicated by
// definition) — independent of the accumulation depth. Mid-accumulation
// the accumulator must not grow, and Update must re-zero it.
func TestAccumulatorPartitionSizedAnyDepth(t *testing.T) {
	cfg := testConfig()
	const n, batch = 4, 32
	ids, targets := model.SyntheticBatch(31, batch, cfg.Seq, cfg.Vocab)
	psi := cfg.ParamCount()
	for _, stage := range AllStages {
		for _, k := range []int{1, 2, 8} {
			micro := batch / k
			mt := micro * cfg.Seq
			w := comm.NewWorld(n)
			w.Run(func(c *comm.Comm) {
				tr := MustNew(c, cfg, Options{Stage: stage, LR: testLR, Seed: testSeed})
				defer tr.Close()
				want := tr.Owned().Len()
				if stage == StageDDP {
					want = psi
				}
				for j := 0; j < k; j++ {
					tr.Forward(ids[j*mt:(j+1)*mt], targets[j*mt:(j+1)*mt], micro)
					tr.Backward()
					if got := tr.GradAccumElems(); got != want {
						t.Errorf("%v k=%d micro %d: accumulator %d elems, want %d", stage, k, j, got, want)
					}
					if got := tr.AccumulatedMicros(); got != j+1 {
						t.Errorf("%v k=%d: AccumulatedMicros = %d, want %d", stage, k, got, j+1)
					}
				}
				tr.Update()
				if tr.AccumulatedMicros() != 0 {
					t.Errorf("%v k=%d: accumulator not reset after Update", stage, k)
				}
			})
		}
	}
}

// The §5.2 communication identity of accumulation: per optimizer step with
// k micro-batches, the partitioned stages move (k+1)(N-1)Ψ elements in
// total — k reduce-scatters of the micro gradients plus ONE parameter
// all-gather at the boundary — versus replicated DDP's 2k(N-1)Ψ (a full
// all-reduce per micro-batch) and stage 3's 3k(N-1)Ψ (two parameter
// gather passes per micro-batch). Accumulation is where ZeRO's partitioned
// gradients beat DDP on the wire, not just in memory.
func TestAccumVolumeIdentity(t *testing.T) {
	cfg := testConfig()
	psi := int64(cfg.ParamCount())
	const n, batch = 4, 16
	ids, targets := model.SyntheticBatch(5, batch, cfg.Seq, cfg.Vocab)
	for _, k := range []int{1, 2, 4} {
		for _, tc := range []struct {
			stage Stage
			mult  int64 // total (N-1)Ψ multiples per boundary
		}{
			{StageDDP, 2 * int64(k)},
			{StageOS, int64(k) + 1},
			{StageOSGrad, int64(k) + 1},
			{StageFull, 3 * int64(k)},
		} {
			micro := batch / k
			mt := micro * cfg.Seq
			w := comm.NewWorld(n)
			w.Run(func(c *comm.Comm) {
				tr := MustNew(c, cfg, Options{Stage: tc.stage, LR: testLR, Seed: testSeed})
				defer tr.Close()
				for j := 0; j < k; j++ {
					tr.Forward(ids[j*mt:(j+1)*mt], targets[j*mt:(j+1)*mt], micro)
					tr.Backward()
				}
				tr.Update()
			})
			want := tc.mult * int64(n-1) * psi
			if got := w.TotalElemsSent(); got != want {
				t.Errorf("%v k=%d: total sent %d elems, want %d (= %d(N-1)Ψ)",
					tc.stage, k, got, want, tc.mult)
			}
		}
	}
}

// Accumulation with a non-Adam optimizer: the config-selected SGD and LAMB
// paths descend and keep the cross-stage bitwise contract.
func TestAccumOptimizerKindsStagesAgree(t *testing.T) {
	cfg := testConfig()
	const n, boundaries, k, batch = 2, 4, 2, 8
	ids, targets := model.SyntheticBatch(17, batch, cfg.Seq, cfg.Vocab)
	for _, kind := range []optimizer.Kind{optimizer.KindSGD, optimizer.KindLAMB} {
		base := Options{LR: 1e-2, Seed: testSeed, Optimizer: optimizer.Spec{Kind: kind}}
		refLoss, refParams := accumRun(t, cfg, n, boundaries, k, base, ids, targets, batch)
		for _, stage := range []Stage{StageOSGrad, StageFull} {
			opts := base
			opts.Stage = stage
			opts.Overlap = true
			loss, params := accumRun(t, cfg, n, boundaries, k, opts, ids, targets, batch)
			for i := range refLoss {
				if loss[i] != refLoss[i] {
					t.Errorf("%s %v micro %d: loss %.17g != stage-0 ref %.17g", kind, stage, i, loss[i], refLoss[i])
					break
				}
			}
			for r := 0; r < n; r++ {
				if d := tensor.MaxDiff(params[r], refParams[r]); d != 0 {
					t.Errorf("%s %v rank %d: params diverged by %g", kind, stage, r, d)
				}
			}
		}
		if refLoss[len(refLoss)-1] >= refLoss[0] {
			t.Errorf("%s: loss did not fall: %v -> %v", kind, refLoss[0], refLoss[len(refLoss)-1])
		}
	}
}

// Update without any accumulated Backward is a programming error.
func TestUpdateWithoutBackwardPanics(t *testing.T) {
	w := comm.NewWorld(1)
	w.Run(func(c *comm.Comm) {
		tr := MustNew(c, testConfig(), Options{Stage: StageOSGrad, LR: testLR})
		defer tr.Close()
		defer func() {
			if recover() == nil {
				t.Error("expected panic from Update without Backward")
			}
		}()
		tr.Update()
	})
}

// Depth-k prefetch windows are gather-only reordering: every depth is
// bitwise identical to the depth-1 pipeline and to the synchronous
// schedule, with accumulation in the loop.
func TestPrefetchDepthBitwiseInvariant(t *testing.T) {
	cfg := testConfig()
	const n, boundaries, k, batch = 4, 3, 2, 8
	ids, targets := model.SyntheticBatch(31, batch, cfg.Seq, cfg.Vocab)
	base := Options{Stage: StageFull, LR: testLR, Seed: testSeed, BucketElems: 193, Overlap: true}
	refLoss, refParams := accumRun(t, cfg, n, boundaries, k, base, ids, targets, batch)
	for _, depth := range []int{0, 1, 2, 4, 100} {
		opts := base
		opts.Prefetch = true
		opts.PrefetchDepth = depth
		loss, params := accumRun(t, cfg, n, boundaries, k, opts, ids, targets, batch)
		for i := range refLoss {
			if loss[i] != refLoss[i] {
				t.Errorf("depth=%d micro %d: loss %.17g != sync ref %.17g", depth, i, loss[i], refLoss[i])
				break
			}
		}
		for r := 0; r < n; r++ {
			if d := tensor.MaxDiff(params[r], refParams[r]); d != 0 {
				t.Errorf("depth=%d rank %d: params diverged by %g", depth, r, d)
			}
		}
	}
}

// Golden boundary-loss trajectory for the accumulated reference
// configuration (4 ranks, k=2, stage 2, overlap, bucket 193): pins the
// accumulation arithmetic against algorithm drift; the tolerance absorbs
// only cross-platform FMA contraction.
func TestAccumBoundaryLossGolden(t *testing.T) {
	golden := []float64{
		2.9386676980572517,
		2.9076893468481142,
		2.8840025542463610,
	}
	cfg := testConfig()
	const n, k, batch = 4, 2, 8
	ids, targets := model.SyntheticBatch(31, batch, cfg.Seq, cfg.Vocab)
	loss, _ := accumRun(t, cfg, n, len(golden), k, Options{
		Stage: StageOSGrad, LR: testLR, Seed: testSeed, Overlap: true, BucketElems: 193,
	}, ids, targets, batch)
	for b, want := range golden {
		got := (loss[b*k] + loss[b*k+1]) / 2
		if diff := got - want; diff > 1e-9*want || diff < -1e-9*want {
			t.Errorf("boundary %d: mean micro loss %.17g, want golden %.17g", b, got, want)
		}
	}
}
