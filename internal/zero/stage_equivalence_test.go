package zero

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/comm"
	"repro/internal/model"
)

// lossTrajectory trains `steps` steps at the given options on an n-rank
// world and returns rank 0's per-step local loss.
func lossTrajectory(cfg model.Config, n, steps, batch int, opts Options, ids, targets []int) []float64 {
	w := comm.NewWorld(n)
	out := make([]float64, steps)
	w.Run(func(c *comm.Comm) {
		tr := MustNew(c, cfg, opts)
		defer tr.Close()
		for s := 0; s < steps; s++ {
			l := tr.Step(ids, targets, batch)
			if c.Rank() == 0 {
				out[s] = l
			}
		}
	})
	return out
}

// The unified Stage API's contract: every stage, bucketed or not, with or
// without comm/compute overlap, walks a bit-identical loss trajectory —
// partitioning and scheduling change memory and wall-clock, never the
// optimization (§2.2.3). Compared as exact float64 equality against the
// synchronous unbucketed stage-0 reference.
func TestStageLossTrajectoriesBitIdentical(t *testing.T) {
	cfg := testConfig()
	const n, steps, batch = 4, 6, 4
	ids, targets := model.SyntheticBatch(31, batch, cfg.Seq, cfg.Vocab)

	base := Options{LR: testLR, Seed: testSeed}
	ref := lossTrajectory(cfg, n, steps, batch, base, ids, targets) // StageDDP, sync, unbucketed

	for _, stage := range AllStages {
		for _, overlap := range []bool{false, true} {
			for _, prefetch := range []bool{false, true} {
				for _, bucket := range []int{0, 193} {
					opts := base
					opts.Stage = stage
					opts.Overlap = overlap
					opts.Prefetch = prefetch
					opts.BucketElems = bucket
					got := lossTrajectory(cfg, n, steps, batch, opts, ids, targets)
					for s := range ref {
						if got[s] != ref[s] {
							t.Errorf("%v overlap=%v prefetch=%v bucket=%d step %d: loss %.17g != reference %.17g",
								stage, overlap, prefetch, bucket, s, got[s], ref[s])
							break
						}
					}
				}
			}
		}
	}
}

// Golden trajectory for the reference configuration (4 ranks, 6 steps,
// seed 7, lr 1e-3). Every stage must reproduce these values; the tolerance
// absorbs only cross-platform FMA contraction, not algorithm drift.
func TestStageLossTrajectoryGolden(t *testing.T) {
	golden := []float64{
		2.9445802206352325,
		2.8941595407783911,
		2.8542632414986735,
		2.8249211907196261,
		2.8020191789647293,
		2.7825545866287298,
	}
	cfg := testConfig()
	const n, batch = 4, 4
	ids, targets := model.SyntheticBatch(31, batch, cfg.Seq, cfg.Vocab)
	for _, prefetch := range []bool{false, true} {
		got := lossTrajectory(cfg, n, len(golden), batch, Options{
			Stage: StageFull, LR: testLR, Seed: testSeed,
			Overlap: true, Prefetch: prefetch, BucketElems: 193,
		}, ids, targets)
		for s, want := range golden {
			if math.Abs(got[s]-want) > 1e-9*math.Abs(want) {
				t.Errorf("prefetch=%v step %d: loss %.17g, want golden %.17g", prefetch, s, got[s], want)
			}
		}
		// Sanity: the trajectory actually descends.
		if got[len(got)-1] >= got[0] {
			t.Errorf("prefetch=%v: loss did not fall: %v -> %v", prefetch, got[0], got[len(got)-1])
		}
	}
}

// ParseStage round-trips every canonical spelling and rejects junk.
func TestParseStage(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Stage
	}{
		{"0", StageDDP}, {"ddp", StageDDP}, {"DP", StageDDP},
		{"1", StageOS}, {"pos", StageOS}, {"os", StageOS},
		{"2", StageOSGrad}, {"os+g", StageOSGrad}, {"Pos+g", StageOSGrad},
		{"3", StageFull}, {"full", StageFull}, {"pos+g+p", StageFull},
	} {
		got, err := ParseStage(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParseStage(%q) = %v, %v; want %v", tc.in, got, err, tc.want)
		}
	}
	for _, bad := range []string{"", "4", "-1", "zero", "stage2"} {
		if _, err := ParseStage(bad); err == nil {
			t.Errorf("ParseStage(%q) should fail", bad)
		}
	}
	for i, s := range AllStages {
		if int(s) != i || !s.Valid() {
			t.Errorf("AllStages[%d] = %v, want stage %d", i, s, i)
		}
	}
	if StageDDP.Valid() != true || Stage(4).Valid() || Stage(-1).Valid() {
		t.Error("Valid() boundaries wrong")
	}
	// Stage names render the paper's vocabulary.
	if fmt.Sprint(StageFull) != "Pos+g+p" || fmt.Sprint(StageDDP) != "DP" {
		t.Errorf("stage names wrong: %v %v", StageFull, StageDDP)
	}
}
