package zero

import (
	"testing"

	"repro/internal/comm"
	"repro/internal/model"
	"repro/internal/tensor"
)

// runStage3 trains stage 3 for `steps` steps and returns rank 0's gathered
// parameters plus the world (for traffic inspection).
func runStage3(t *testing.T, cfg model.Config, n, steps, batch int, opts Options,
	ids, targets []int) ([]float32, *comm.World) {
	t.Helper()
	opts.Stage = StageFull
	w := comm.NewWorld(n)
	out := make([][]float32, n)
	w.Run(func(c *comm.Comm) {
		tr := MustNew(c, cfg, opts)
		defer tr.Close()
		for s := 0; s < steps; s++ {
			tr.Step(ids, targets, batch)
		}
		tr.gatherParams()
		out[c.Rank()] = append([]float32(nil), tr.Model.Params...)
	})
	for r := 1; r < n; r++ {
		if d := tensor.MaxDiff(out[r], out[0]); d != 0 {
			t.Fatalf("ranks 0 and %d disagree by %g after gather", r, d)
		}
	}
	return out[0], w
}

// The prefetch satellite's core contract: stage-3 parameter gathers
// pipelined on the prefetch stream are bitwise identical to the synchronous
// gather-everything-up-front schedule, across world sizes and bucket sizes,
// with and without gradient overlap riding the grad stream at the same
// time. The gathers move the same elements either way — only *when* they
// run changes.
func TestStage3PrefetchBitIdentical(t *testing.T) {
	cfg := testConfig()
	const steps = 3
	for _, n := range []int{1, 2, 4} {
		batch := 2 * n
		ids, targets := model.SyntheticBatch(41, batch, cfg.Seq, cfg.Vocab)
		for _, bucket := range []int{0, 193, 4096} {
			base := Options{LR: testLR, Seed: testSeed, BucketElems: bucket}
			ref, refW := runStage3(t, cfg, n, steps, batch, base, ids, targets)
			for _, overlap := range []bool{false, true} {
				opts := base
				opts.Prefetch = true
				opts.Overlap = overlap
				got, w := runStage3(t, cfg, n, steps, batch, opts, ids, targets)
				if d := tensor.MaxDiff(got, ref); d != 0 {
					t.Errorf("n=%d bucket=%d overlap=%v: prefetch diverged from sync gathers by %g",
						n, bucket, overlap, d)
				}
				if got, want := w.TotalElemsSent(), refW.TotalElemsSent(); got != want {
					t.Errorf("n=%d bucket=%d overlap=%v: prefetch moved %d elems, sync %d (same 3Ψ schedule expected)",
						n, bucket, overlap, got, want)
				}
				if n > 1 {
					pf := w.Stats(0).PerStream[StreamPrefetch]
					if pf == 0 {
						t.Errorf("n=%d bucket=%d overlap=%v: no traffic on the prefetch stream", n, bucket, overlap)
					}
				}
			}
		}
	}
}

// replicatedBatch builds a global batch whose per-rank shards are all the
// same rows, so every rank computes identical activations — the situation
// of an MP group (which replicates activations by construction) modeled on
// the DP world, making a PartitionedStore valid under the trainer.
func replicatedBatch(seed int64, n, perRank, seqLen, vocab int) (ids, targets []int) {
	baseIDs, baseTargets := model.SyntheticBatch(seed, perRank, seqLen, vocab)
	for r := 0; r < n; r++ {
		ids = append(ids, baseIDs...)
		targets = append(targets, baseTargets...)
	}
	return ids, targets
}

// The old API forced Pa and gradient overlap to be mutually exclusive (one
// untyped lane per rank); streams remove the exclusion. This is the
// all-three-streams test: stage 3 with gradient overlap (grad stream),
// parameter prefetch (prefetch stream) and a PartitionedStore (checkpoint
// stream) running concurrently must be race-clean (run under -race) and
// bitwise identical to the fully synchronous inline-checkpoint schedule.
func TestPaComposesWithOverlapAndPrefetch(t *testing.T) {
	cfg := testConfig()
	const n, perRank, steps = 4, 2, 4
	batch := n * perRank
	ids, targets := replicatedBatch(53, n, perRank, cfg.Seq, cfg.Vocab)

	run := func(pa, overlap, prefetch bool) ([]float32, *comm.World) {
		w := comm.NewWorld(n)
		out := make([][]float32, n)
		w.Run(func(c *comm.Comm) {
			sched := comm.NewScheduler(c)
			defer sched.Close()
			var store model.CheckpointStore = NewInlineStore()
			if pa {
				store = NewPartitionedStore(sched.Stream(StreamCheckpoint), false)
			}
			tr := MustNew(c, cfg, Options{
				Stage: StageFull, LR: testLR, Seed: testSeed, BucketElems: 193,
				Checkpoint: true, Store: store,
				Overlap: overlap, Prefetch: prefetch,
				Scheduler: sched,
			})
			for s := 0; s < steps; s++ {
				tr.Step(ids, targets, batch)
			}
			tr.gatherParams()
			out[c.Rank()] = append([]float32(nil), tr.Model.Params...)
		})
		return out[0], w
	}

	ref, _ := run(false, false, false)
	got, w := run(true, true, true)
	if d := tensor.MaxDiff(got, ref); d != 0 {
		t.Errorf("Pa + overlap + prefetch diverged from inline sync schedule by %g", d)
	}
	// All three ordering domains must actually have carried traffic.
	st := w.Stats(0)
	for _, stream := range []string{StreamGrad, StreamPrefetch, StreamCheckpoint} {
		if st.PerStream[stream] == 0 {
			t.Errorf("stream %q carried no traffic; the three-domain schedule did not run", stream)
		}
	}
}

// The old mutual-exclusion check ("Overlap ignored while a Store is
// attached") is gone: with any checkpoint store attached, Overlap must
// actually overlap — grad-stream traffic present, trajectory unchanged.
func TestOverlapRunsWithCheckpointStore(t *testing.T) {
	cfg := testConfig()
	const n, steps, batch = 2, 3, 4
	ids, targets := model.SyntheticBatch(61, batch, cfg.Seq, cfg.Vocab)

	run := func(overlap bool) ([]float64, *comm.World) {
		w := comm.NewWorld(n)
		out := make([]float64, steps)
		w.Run(func(c *comm.Comm) {
			tr := MustNew(c, cfg, Options{
				Stage: StageOSGrad, LR: testLR, Seed: testSeed, BucketElems: 100,
				Checkpoint: true, Store: NewInlineStore(), Overlap: overlap,
			})
			defer tr.Close()
			for s := 0; s < steps; s++ {
				l := tr.Step(ids, targets, batch)
				if c.Rank() == 0 {
					out[s] = l
				}
			}
		})
		return out, w
	}
	syncLoss, _ := run(false)
	overLoss, w := run(true)
	for s := range syncLoss {
		if syncLoss[s] != overLoss[s] {
			t.Errorf("step %d: overlap-with-store loss %.17g != sync %.17g", s, overLoss[s], syncLoss[s])
		}
	}
	if w.Stats(0).PerStream[StreamGrad] == 0 {
		t.Error("no grad-stream traffic: overlap was silently disabled by the store")
	}
}

// FP16 wire accounting is native: a mixed-precision step's measured bytes
// are exactly 2 per element, an fp32 step's exactly 4 — reported by Stats,
// not reconstructed from elems × convention.
func TestNativeByteAccountingPerStep(t *testing.T) {
	cfg := testConfig()
	const n, batch = 4, 4
	ids, targets := model.SyntheticBatch(11, batch, cfg.Seq, cfg.Vocab)
	for _, fp16 := range []bool{false, true} {
		w := comm.NewWorld(n)
		w.Run(func(c *comm.Comm) {
			tr := MustNew(c, cfg, Options{Stage: StageOSGrad, LR: testLR, Seed: testSeed, FP16: fp16})
			defer tr.Close()
			tr.Step(ids, targets, batch)
		})
		width := int64(4)
		if fp16 {
			width = 2
		}
		for r := 0; r < n; r++ {
			st := w.Stats(r)
			if st.BytesSent != st.ElemsSent*width {
				t.Errorf("fp16=%v rank %d: %d bytes for %d elems, want width %d",
					fp16, r, st.BytesSent, st.ElemsSent, width)
			}
		}
	}
}

// QueueDepth must apply per stream even under a caller-owned scheduler
// (whose own default the trainer cannot set).
func TestQueueDepthAppliesToSharedScheduler(t *testing.T) {
	w := comm.NewWorld(1)
	w.Run(func(c *comm.Comm) {
		sched := comm.NewScheduler(c)
		defer sched.Close()
		tr := MustNew(c, testConfig(), Options{
			Stage: StageFull, LR: testLR, Seed: testSeed,
			QueueDepth: 2, Scheduler: sched,
		})
		if d := tr.gradStream().Depth(); d != 2 {
			t.Errorf("grad stream depth = %d, want 2 via shared scheduler", d)
		}
		if d := tr.prefetchStream().Depth(); d != 2 {
			t.Errorf("prefetch stream depth = %d, want 2 via shared scheduler", d)
		}
	})
}

// The submission-queue depth plumbs through Options.QueueDepth: a depth-1
// queue still trains bitwise identically (backpressure, not reordering).
func TestQueueDepthOptionTrainsIdentically(t *testing.T) {
	cfg := testConfig()
	const n, steps, batch = 2, 3, 4
	ids, targets := model.SyntheticBatch(71, batch, cfg.Seq, cfg.Vocab)
	run := func(depth int) []float64 {
		w := comm.NewWorld(n)
		out := make([]float64, steps)
		w.Run(func(c *comm.Comm) {
			tr := MustNew(c, cfg, Options{
				Stage: StageFull, LR: testLR, Seed: testSeed,
				BucketElems: 64, Overlap: true, Prefetch: true, QueueDepth: depth,
			})
			defer tr.Close()
			for s := 0; s < steps; s++ {
				l := tr.Step(ids, targets, batch)
				if c.Rank() == 0 {
					out[s] = l
				}
			}
		})
		return out
	}
	deep := run(0) // default depth
	tiny := run(1)
	for s := range deep {
		if deep[s] != tiny[s] {
			t.Errorf("step %d: depth-1 loss %.17g != default-depth %.17g", s, tiny[s], deep[s])
		}
	}
}
