package zero

import (
	"testing"

	"repro/internal/comm"
	"repro/internal/model"
	"repro/internal/tensor"
)

// Gradient clipping across the *partitioned* gradient must agree bitwise
// with clipping the replicated gradient at stage 0 (DDP): both paths
// compute the global norm by the same partition-ordered arithmetic.
func TestClippedStagesMatchClippedDDPBitwise(t *testing.T) {
	cfg := testConfig()
	const n, batch, steps = 4, 4, 4
	const clip = 0.25 // low enough to actually clip every step
	ids, targets := model.SyntheticBatch(3, batch, cfg.Seq, cfg.Vocab)

	w := comm.NewWorld(n)
	ddpParams := make([][]float32, n)
	ddpNorms := make([]float64, n)
	w.Run(func(c *comm.Comm) {
		tr := MustNew(c, cfg, Options{Stage: StageDDP, LR: testLR, Seed: testSeed, ClipNorm: clip})
		for s := 0; s < steps; s++ {
			tr.Step(ids, targets, batch)
		}
		ddpParams[c.Rank()] = tr.Model.Params
		ddpNorms[c.Rank()] = tr.LastGradNorm
	})

	for _, stage := range []Stage{StageOS, StageOSG, StageOSGP} {
		w2 := comm.NewWorld(n)
		params := make([][]float32, n)
		norms := make([]float64, n)
		w2.Run(func(c *comm.Comm) {
			tr := MustNew(c, cfg, Options{Stage: stage, LR: testLR, Seed: testSeed, ClipNorm: clip})
			for s := 0; s < steps; s++ {
				tr.Step(ids, targets, batch)
			}
			if stage == StageOSGP {
				tr.gatherParams()
			}
			params[c.Rank()] = tr.Model.Params
			norms[c.Rank()] = tr.LastGradNorm
		})
		for r := 0; r < n; r++ {
			if d := tensor.MaxDiff(params[r], ddpParams[0]); d != 0 {
				t.Errorf("%v rank %d: clipped trajectory differs from DDP by %g", stage, r, d)
			}
			if norms[r] != ddpNorms[0] {
				t.Errorf("%v rank %d: grad norm %v != DDP %v", stage, r, norms[r], ddpNorms[0])
			}
		}
	}
}

// Clipping must actually bound the applied update: with an aggressive clip
// the parameter step shrinks versus unclipped training.
func TestClippingBoundsTheUpdate(t *testing.T) {
	cfg := testConfig()
	const batch = 4
	ids, targets := model.SyntheticBatch(9, batch, cfg.Seq, cfg.Vocab)

	run := func(clip float64) ([]float32, float64) {
		w := comm.NewWorld(2)
		var out []float32
		var norm float64
		w.Run(func(c *comm.Comm) {
			tr := MustNew(c, cfg, Options{Stage: StageOSG, LR: testLR, Seed: 1, ClipNorm: clip})
			tr.Step(ids, targets, batch)
			if c.Rank() == 0 {
				out = tr.Model.Params
				norm = tr.LastGradNorm
			}
		})
		return out, norm
	}
	init := model.New(cfg, 1).Params
	unclipped, _ := run(0)
	clipped, norm := run(1e-4)
	if norm == 0 {
		t.Fatal("grad norm not recorded")
	}
	dUnclipped := tensor.MaxDiff(init, unclipped)
	dClipped := tensor.MaxDiff(init, clipped)
	// Adam normalizes per-element, so the effect is damped but must exist.
	if dClipped >= dUnclipped {
		t.Errorf("aggressive clip did not shrink the update: %g vs %g", dClipped, dUnclipped)
	}
}
