package zero

import (
	"fmt"

	"repro/internal/comm"
)

// ZeRO-R: residual-memory optimizations (§6).
//
// Pa — partitioned activation checkpointing — exploits the fact that
// Megatron-style model parallelism replicates activations across the MP
// group: after a block's forward pass, each MP rank keeps only a 1/Nm slice
// of the checkpoint, and an all-gather re-materializes it right before the
// block's recomputation during backward (§6.1). Pa+cpu additionally moves
// the slice to host memory, making the device-resident checkpoint footprint
// ~zero at the cost of PCIe traffic (§8).
//
// InlineStore is the no-op reference store (plain activation
// checkpointing); PartitionedStore implements Pa and Pa+cpu over a comm
// group in which activations are replicated (the MP group).
//
// PartitionedStore runs on its own comm.Stream — by convention named
// StreamCheckpoint — so its all-gathers form an ordering domain separate
// from gradient reduction and parameter prefetch: Pa composes with the
// overlapped backward schedule instead of disabling it (the pre-stream
// API forced mutual exclusion because a second collective user on the
// same communicator would scramble ring pairing).

// InlineStore keeps checkpoints on-device, unpartitioned — baseline
// activation checkpointing. It also serves as the memory-accounting
// reference for Pa.
type InlineStore struct {
	ckpts map[int][]float32
	bytes int64
}

// NewInlineStore returns an empty inline checkpoint store.
func NewInlineStore() *InlineStore {
	return &InlineStore{ckpts: make(map[int][]float32)}
}

// Put stores a copy of the checkpoint, reusing the previous step's buffer
// when the shape is unchanged (the steady-state case).
func (s *InlineStore) Put(layer int, x []float32) {
	old, ok := s.ckpts[layer]
	if ok && len(old) == len(x) {
		copy(old, x)
		return
	}
	if ok {
		s.bytes -= int64(len(old)) * 2
	}
	s.ckpts[layer] = append([]float32(nil), x...)
	s.bytes += int64(len(x)) * 2
}

// Get returns the stored checkpoint.
func (s *InlineStore) Get(layer int) []float32 {
	x, ok := s.ckpts[layer]
	if !ok {
		panic(fmt.Sprintf("zero: no checkpoint for layer %d", layer))
	}
	return x
}

// DeviceBytes returns the resident device memory (fp16 accounting).
func (s *InlineStore) DeviceBytes() int64 { return s.bytes }

// PartitionedStore implements Pa and Pa+cpu. The stream's world must be one
// in which every rank Puts identical checkpoint values (in the paper: the
// MP group, whose activations are replicated by construction). Each rank
// retains only its partition; Get all-gathers the full checkpoint back on
// the store's stream, synchronizing per-op with the returned Handle.
type PartitionedStore struct {
	st      *comm.Stream
	offload bool // Pa+cpu: shards live in host memory

	shards map[int][]float32
	sizes  map[int]int
	parts  map[int][]comm.Range
	full   map[int][]float32 // per-layer gather buffers, reused across steps

	deviceBytes int64
	hostBytes   int64
	pcieBytes   int64 // cumulative host<->device traffic
}

// NewPartitionedStore creates a Pa store whose gathers run on st — its own
// ordering domain, conventionally sched.Stream(StreamCheckpoint);
// offloadCPU selects Pa+cpu. Checkpoints travel as fp16 on the wire (the
// §3.1 activation storage format), so Stats counts 2 bytes per element.
func NewPartitionedStore(st *comm.Stream, offloadCPU bool) *PartitionedStore {
	return &PartitionedStore{
		st:      st,
		offload: offloadCPU,
		shards:  make(map[int][]float32),
		sizes:   make(map[int]int),
		parts:   make(map[int][]comm.Range),
		full:    make(map[int][]float32),
	}
}

// Put partitions the checkpoint across the group and keeps this rank's
// slice (on host under Pa+cpu). On the steady-state path (same layer, same
// shape as the previous step) the shard buffer and partition are reused.
func (s *PartitionedStore) Put(layer int, x []float32) {
	parts := s.parts[layer]
	if s.sizes[layer] != len(x) || parts == nil {
		parts = comm.Partition(len(x), s.st.Size())
	}
	own := parts[s.st.Rank()]
	old, ok := s.shards[layer]
	if ok && len(old) == own.Len() && s.sizes[layer] == len(x) {
		copy(old, x[own.Lo:own.Hi])
		s.pcieAccount(int64(len(old)) * 2)
		return
	}
	shard := append([]float32(nil), x[own.Lo:own.Hi]...)
	if ok {
		if s.offload {
			s.hostBytes -= int64(len(old)) * 2
		} else {
			s.deviceBytes -= int64(len(old)) * 2
		}
	}
	s.shards[layer] = shard
	s.sizes[layer] = len(x)
	s.parts[layer] = parts
	bytes := int64(len(shard)) * 2
	if s.offload {
		s.hostBytes += bytes
	} else {
		s.deviceBytes += bytes
	}
	s.pcieAccount(bytes)
}

// pcieAccount records the device → host copy of one Put under Pa+cpu.
func (s *PartitionedStore) pcieAccount(bytes int64) {
	if s.offload {
		s.pcieBytes += bytes
	}
}

// Get re-materializes the full checkpoint with an all-gather on the
// checkpoint stream (plus a host→device copy first under Pa+cpu). The
// per-op Handle is waited here — Get is synchronous to its caller, but its
// wire traffic interleaves freely with whatever the grad and prefetch
// streams have in flight.
func (s *PartitionedStore) Get(layer int) []float32 {
	shard, ok := s.shards[layer]
	if !ok {
		panic(fmt.Sprintf("zero: no checkpoint shard for layer %d", layer))
	}
	if s.offload {
		s.pcieBytes += int64(len(shard)) * 2 // host → device before gather
	}
	full := s.full[layer]
	if len(full) != s.sizes[layer] {
		full = make([]float32, s.sizes[layer])
		s.full[layer] = full
	}
	parts := s.parts[layer]
	own := parts[s.st.Rank()]
	copy(full[own.Lo:own.Hi], shard)
	s.st.AllGather(comm.F16Buf(full), parts).Wait()
	return full
}

// DeviceBytes returns resident device checkpoint memory: the full footprint
// divided by the MP degree under Pa, ~0 under Pa+cpu (§6.1).
func (s *PartitionedStore) DeviceBytes() int64 { return s.deviceBytes }

// HostBytes returns checkpoint bytes resident in host memory (Pa+cpu).
func (s *PartitionedStore) HostBytes() int64 { return s.hostBytes }

// PCIeBytes returns cumulative host-device transfer volume; per step and
// checkpoint it is 2× the shard size, the "2x added data movement" of §8.
func (s *PartitionedStore) PCIeBytes() int64 { return s.pcieBytes }
