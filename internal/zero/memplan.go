// Package zero implements the paper's contribution: the Zero Redundancy
// Optimizer.
//
//   - The memory planner (this file): closed-form per-device model-state
//     consumption for each ZeRO-DP stage — the equations behind Figure 1,
//     Table 1 and Table 2.
//   - The ZeRO-DP trainer (trainer.go): working data-parallel training
//     engines for stage 1 (Pos), stage 2 (Pos+g) and stage 3 (Pos+g+p)
//     over the real collectives in internal/comm, numerically equivalent
//     to baseline training.
//   - ZeRO-R (zeror.go): partitioned activation checkpointing (Pa), CPU
//     offload (Pa+cpu), and constant-size communication buffers (CB);
//     memory defragmentation (MD) lives in internal/device.
package zero

import (
	"fmt"

	"repro/internal/optimizer"
	"repro/internal/tensor"
)

// Stage selects how much of the model state ZeRO-DP partitions.
type Stage int

const (
	// StageDP is baseline data parallelism: everything replicated.
	StageDP Stage = iota
	// StageOS partitions optimizer states (Pos): 4Ψ + KΨ/Nd.
	StageOS
	// StageOSG adds gradient partitioning (Pos+g): 2Ψ + (2+K)Ψ/Nd.
	StageOSG
	// StageOSGP adds parameter partitioning (Pos+g+p): (2+2+K)Ψ/Nd.
	StageOSGP
)

// String returns the paper's name for the stage.
func (s Stage) String() string {
	switch s {
	case StageDP:
		return "DP"
	case StageOS:
		return "Pos"
	case StageOSG:
		return "Pos+g"
	case StageOSGP:
		return "Pos+g+p"
	default:
		return fmt.Sprintf("Stage(%d)", int(s))
	}
}

// Bytes-per-parameter constants of mixed-precision Adam training (§3.1):
// 2Ψ fp16 parameters, 2Ψ fp16 gradients, KΨ optimizer state (fp32 master +
// momentum + variance, K = 12).
const (
	paramBytes = tensor.BytesPerHalf
	gradBytes  = tensor.BytesPerHalf
	optimK     = optimizer.AdamK
)

// GB is the paper's gigabyte (10^9 bytes; Table 1's "7.5B model at DP=1 is
// 120 GB" requires the decimal unit: 16 × 7.5e9 = 1.2e11).
const GB = 1e9

// ModelStateBytes returns the per-device model-state memory in bytes for a
// Ψ-parameter model trained with mixed-precision Adam at the given ZeRO-DP
// stage and DP degree (Figure 1's formulas).
func ModelStateBytes(psi int64, stage Stage, nd int) float64 {
	if psi < 0 || nd < 1 {
		panic("zero: invalid ModelStateBytes arguments")
	}
	p := float64(psi)
	n := float64(nd)
	switch stage {
	case StageDP:
		return (paramBytes + gradBytes + optimK) * p
	case StageOS:
		return (paramBytes+gradBytes)*p + optimK*p/n
	case StageOSG:
		return paramBytes*p + (gradBytes+optimK)*p/n
	case StageOSGP:
		return (paramBytes + gradBytes + optimK) * p / n
	default:
		panic(fmt.Sprintf("zero: unknown stage %d", stage))
	}
}

// ModelStateGB is ModelStateBytes in the paper's decimal gigabytes.
func ModelStateGB(psi int64, stage Stage, nd int) float64 {
	return ModelStateBytes(psi, stage, nd) / GB
}

// MemoryReduction returns the memory reduction factor versus baseline DP
// (4x for Pos at large Nd, 8x for Pos+g, Nd for Pos+g+p).
func MemoryReduction(stage Stage, nd int) float64 {
	const psi = 1 << 30
	return ModelStateBytes(psi, StageDP, nd) / ModelStateBytes(psi, stage, nd)
}

// MaxTheoreticalParams returns the largest Ψ whose model states fit in
// budget bytes per device at the given stage, DP degree and MP degree —
// the left half of Table 2 (budget 32 GB, Nd = 64, MP ∈ {1..16}).
func MaxTheoreticalParams(budget float64, stage Stage, nd, mp int) int64 {
	if mp < 1 {
		panic("zero: MP degree must be positive")
	}
	perParam := ModelStateBytes(1e9, stage, nd) / 1e9 // bytes per parameter
	return int64(float64(mp) * budget / perParam)
}

// ResidualConfig controls the residual-memory model used for "measured"
// model sizes (the right half of Table 2 and Figure 6): activations,
// temporary buffers, and allocator fragmentation (§3.2).
type ResidualConfig struct {
	Batch int  // per-GPU batch size
	Seq   int  // sequence length
	MP    int  // model-parallel degree (activations divide by it)
	Pa    bool // partitioned activation checkpoints (further /MP)
	PaCPU bool // checkpoints offloaded to host: device cost ≈ 0
	CB    bool // constant-size fused buffers instead of 4Ψ fp32
	MD    bool // defragmentation: less fragmentation slack
}

// Residual buffer constants: a fused fp32 buffer is 4 bytes/param without
// CB (§3.2: "for a model with 1.5B parameters, a flattened fp32 buffer
// would require 6GB"); with CB it is a fixed high-performance size. The
// fragmentation slack fractions reflect §3.2 ("30% of memory still
// available" in extreme cases) versus MD.
const (
	constantBufferBytes = 256e6
	fragSlackBaseline   = 0.15
	fragSlackMD         = 0.03
	workspaceBytes      = 800e6 // cuDNN-style workspaces, kernels, CUDA context
)

// ResidualBytes estimates the per-device residual-state memory for a model
// shape under the given configuration.
func ResidualBytes(shape ShapeInfo, rc ResidualConfig) float64 {
	mp := rc.MP
	if mp < 1 {
		mp = 1
	}
	// Activation checkpoints: one per layer, B×s×h fp16 each, divided
	// across MP (Megatron splits activations within a block but
	// checkpoints the replicated block input — Pa removes that
	// replication).
	ckpt := 2 * float64(rc.Batch) * float64(rc.Seq) * float64(shape.Hidden) * float64(shape.Layers)
	if rc.Pa {
		ckpt /= float64(mp)
	}
	if rc.PaCPU {
		ckpt = 0
	}
	// Working activations of the deepest live block during recompute.
	working := 12 * float64(rc.Batch) * float64(rc.Seq) * float64(shape.Hidden) * 2 / float64(mp)
	// Temporary fused buffers.
	buffers := 4 * float64(shape.Params) / float64(mp)
	if rc.CB {
		buffers = constantBufferBytes
	}
	return ckpt + working + buffers + workspaceBytes
}

// ShapeInfo carries the architecture facts the residual model needs.
type ShapeInfo struct {
	Params int64
	Layers int
	Hidden int
}

// ShapeForParams picks a representative (layers, hidden) pair for a target
// parameter count, following the hidden-size ladder of Table 4.
func ShapeForParams(psi int64) ShapeInfo {
	var hidden int
	switch {
	case psi < 2e9:
		hidden = 1920
	case psi < 4e9:
		hidden = 2304
	case psi < 9e9:
		hidden = 3072
	case psi < 15e9:
		hidden = 4096
	case psi < 50e9:
		hidden = 6144
	default:
		hidden = 8192
	}
	perLayer := int64(12*hidden*hidden + 13*hidden)
	emb := int64(50257+1024) * int64(hidden)
	layers := int((psi - emb) / perLayer)
	if layers < 1 {
		layers = 1
	}
	return ShapeInfo{Params: emb + int64(layers)*perLayer, Layers: layers, Hidden: hidden}
}

// MaxMeasuredParams returns the largest Ψ that fits in budget bytes per
// device once residual states and fragmentation slack are charged — the
// right half of Table 2 and the Figure 6 bars. frag slack reserves a
// fraction of the budget (lost to fragmentation without MD).
func MaxMeasuredParams(budget float64, stage Stage, nd int, rc ResidualConfig) int64 {
	slack := fragSlackBaseline
	if rc.MD {
		slack = fragSlackMD
	}
	usable := budget * (1 - slack)
	mp := rc.MP
	if mp < 1 {
		mp = 1
	}
	fits := func(psi int64) bool {
		shape := ShapeForParams(psi)
		states := ModelStateBytes(shape.Params, stage, nd) / float64(mp)
		return states+ResidualBytes(shape, rc) <= usable
	}
	// Binary search over Ψ.
	lo, hi := int64(1e8), int64(4e12)
	if !fits(lo) {
		return 0
	}
	for hi-lo > 1e7 {
		mid := (lo + hi) / 2
		if fits(mid) {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}
