package zero

import (
	"math"
	"testing"
	"testing/quick"
)

func approx(got, want, relTol float64) bool {
	if want == 0 {
		return got == 0
	}
	return math.Abs(got-want)/math.Abs(want) <= relTol
}

// Figure 1's worked example: Ψ=7.5B, Nd=64, K=12 → 120 GB baseline,
// 31.4 GB with Pos, 16.6 GB with Pos+g, 1.9 GB with Pos+g+p.
func TestFigure1Example(t *testing.T) {
	const psi, nd = 7_500_000_000, 64
	cases := []struct {
		stage Stage
		want  float64
	}{
		{StageDP, 120},
		{StageOS, 31.4},
		{StageOSG, 16.6},
		{StageOSGP, 1.88},
	}
	for _, c := range cases {
		got := ModelStateGB(psi, c.stage, nd)
		if !approx(got, c.want, 0.01) {
			t.Errorf("%v: %.2f GB, want %.2f GB", c.stage, got, c.want)
		}
	}
}

// Table 1, all 54 cells: per-device GB for 7.5B / 128B / 1T across DP
// degrees and stages.
func TestTable1AllCells(t *testing.T) {
	models := []int64{7_500_000_000, 128_000_000_000, 1_000_000_000_000}
	dps := []int{1, 4, 16, 64, 256, 1024}
	want := map[int64]map[int][3]float64{
		models[0]: {
			1: {120, 120, 120}, 4: {52.5, 41.3, 30}, 16: {35.6, 21.6, 7.5},
			64: {31.4, 16.6, 1.88}, 256: {30.4, 15.4, 0.47}, 1024: {30.1, 15.1, 0.12},
		},
		models[1]: {
			1: {2048, 2048, 2048}, 4: {896, 704, 512}, 16: {608, 368, 128},
			64: {536, 284, 32}, 256: {518, 263, 8}, 1024: {513, 257, 2},
		},
		models[2]: {
			1: {16000, 16000, 16000}, 4: {7000, 5500, 4000}, 16: {4750, 2875, 1000},
			64: {4187, 2218, 250}, 256: {4046, 2054, 62.5}, 1024: {4011, 2013, 15.6},
		},
	}
	stages := []Stage{StageOS, StageOSG, StageOSGP}
	for _, psi := range models {
		for _, nd := range dps {
			for si, st := range stages {
				got := ModelStateGB(psi, st, nd)
				// 1% relative, or 0.01 GB absolute for the sub-GB cells
				// the paper rounds to two decimals.
				if !approx(got, want[psi][nd][si], 0.01) && math.Abs(got-want[psi][nd][si]) > 0.01 {
					t.Errorf("Ψ=%d Nd=%d %v: got %.2f GB, want %.2f GB",
						psi, nd, st, got, want[psi][nd][si])
				}
			}
		}
	}
}

// Table 2, left half: max theoretical model size on a 32 GB budget with
// Nd=64, scaling linearly with MP.
func TestTable2Theoretical(t *testing.T) {
	const budget = 32 * GB
	rows := []struct {
		mp                         int
		baseline, pos, posg, posgp float64 // billions
	}{
		{1, 2, 7.6, 14.4, 128},
		{2, 4, 15.2, 28.8, 256},
		{4, 8, 30.4, 57.6, 512},
		{8, 16, 60.8, 115.2, 1024},
		{16, 32, 121.6, 230.4, 2048},
	}
	for _, r := range rows {
		checks := []struct {
			stage Stage
			want  float64
		}{
			{StageDP, r.baseline}, {StageOS, r.pos}, {StageOSG, r.posg}, {StageOSGP, r.posgp},
		}
		for _, c := range checks {
			got := float64(MaxTheoreticalParams(budget, c.stage, 64, r.mp)) / 1e9
			if !approx(got, c.want, 0.01) {
				t.Errorf("MP=%d %v: %.1fB, want %.1fB", r.mp, c.stage, got, c.want)
			}
		}
	}
	// The headline: Pos+g+p at Nd=1024 fits >1T parameters (§5.4).
	if got := MaxTheoreticalParams(budget, StageOSGP, 1024, 1); got < 2_000_000_000_000 {
		t.Errorf("Pos+g+p @ Nd=1024: %.2fT, want ≥2T (32GB×1024/16B)", float64(got)/1e12)
	}
}

// Memory reduction factors: 4x (Pos), 8x (Pos+g), Nd (Pos+g+p) at large Nd.
func TestMemoryReductionFactors(t *testing.T) {
	if r := MemoryReduction(StageOS, 1024); !approx(r, 4, 0.01) {
		t.Errorf("Pos reduction %v, want ≈4", r)
	}
	if r := MemoryReduction(StageOSG, 1024); !approx(r, 8, 0.01) {
		t.Errorf("Pos+g reduction %v, want ≈8", r)
	}
	if r := MemoryReduction(StageOSGP, 64); !approx(r, 64, 1e-9) {
		t.Errorf("Pos+g+p reduction %v, want exactly Nd=64", r)
	}
}

// Monotonicity properties of the planner.
func TestMemPlanProperties(t *testing.T) {
	f := func(psiRaw uint32, ndRaw uint16) bool {
		psi := int64(psiRaw)%int64(1e12) + 1e6
		nd := int(ndRaw)%1024 + 1
		prev := math.Inf(1)
		// Each deeper stage consumes no more memory.
		for _, st := range []Stage{StageDP, StageOS, StageOSG, StageOSGP} {
			cur := ModelStateBytes(psi, st, nd)
			if cur > prev+1e-6 {
				return false
			}
			prev = cur
		}
		// Larger Nd never increases partitioned-stage memory.
		if nd > 1 {
			for _, st := range []Stage{StageOS, StageOSG, StageOSGP} {
				if ModelStateBytes(psi, st, nd) > ModelStateBytes(psi, st, nd-1)+1e-6 {
					return false
				}
			}
		}
		// Baseline is exactly 16 bytes/param.
		return ModelStateBytes(psi, StageDP, nd) == 16*float64(psi)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Measured sizes (with residual states charged) must fall below theoretical
// and preserve the Table 2 ordering; the Pos measured value lands in the
// paper's measured band (6.2B at MP=1 vs 7.6B theoretical).
func TestMaxMeasuredParams(t *testing.T) {
	const budget = 32 * GB
	rc := ResidualConfig{Batch: 8, Seq: 1024, MP: 1, CB: true, MD: true}
	meas := MaxMeasuredParams(budget, StageOS, 64, rc)
	theo := MaxTheoreticalParams(budget, StageOS, 64, 1)
	if meas >= theo {
		t.Errorf("measured %.2fB must be below theoretical %.2fB", float64(meas)/1e9, float64(theo)/1e9)
	}
	if got := float64(meas) / 1e9; got < 5 || got > 7.6 {
		t.Errorf("Pos measured %.2fB, paper measured 6.2B (want 5-7.6B)", got)
	}
	// Baseline without ZeRO-R: fused buffers + fragmentation push the
	// measured size toward the paper's 1.3B (vs 2B theoretical).
	baseRC := ResidualConfig{Batch: 8, Seq: 1024, MP: 1}
	baseMeas := MaxMeasuredParams(budget, StageDP, 64, baseRC)
	if got := float64(baseMeas) / 1e9; got < 0.9 || got > 1.7 {
		t.Errorf("baseline measured %.2fB, paper measured 1.3B (want 0.9-1.7B)", got)
	}
}

func TestShapeForParams(t *testing.T) {
	for _, psi := range []int64{1_500_000_000, 8_000_000_000, 60_000_000_000, 170_000_000_000} {
		s := ShapeForParams(psi)
		if !approx(float64(s.Params), float64(psi), 0.05) {
			t.Errorf("ShapeForParams(%d) built %d params (%.1f%% off)",
				psi, s.Params, 100*math.Abs(float64(s.Params-psi))/float64(psi))
		}
		if s.Layers < 1 || s.Hidden < 1024 {
			t.Errorf("degenerate shape %+v", s)
		}
	}
}

// Residual knobs must act in the right direction.
func TestResidualBytesKnobs(t *testing.T) {
	shape := ShapeForParams(40e9)
	base := ResidualConfig{Batch: 16, Seq: 1024, MP: 16}
	pa := base
	pa.Pa = true
	cpu := pa
	cpu.PaCPU = true
	cb := base
	cb.CB = true
	rb := ResidualBytes(shape, base)
	if ResidualBytes(shape, pa) >= rb {
		t.Error("Pa must reduce residual memory")
	}
	if ResidualBytes(shape, cpu) >= ResidualBytes(shape, pa) {
		t.Error("Pa+cpu must reduce residual memory below Pa")
	}
	if ResidualBytes(shape, cb) >= rb {
		t.Error("CB must reduce residual memory (constant vs 4Ψ buffers)")
	}
}

func TestStageString(t *testing.T) {
	names := map[Stage]string{StageDP: "DP", StageOS: "Pos", StageOSG: "Pos+g", StageOSGP: "Pos+g+p"}
	for st, want := range names {
		if st.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(st), st.String(), want)
		}
	}
}
