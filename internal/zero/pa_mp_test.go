package zero

import (
	"testing"

	"repro/internal/comm"
	"repro/internal/model"
	"repro/internal/mp"
	"repro/internal/tensor"
)

// These tests close the loop on §8 with the real Megatron-parallel model:
// under activation checkpointing a transformer block's measured MP traffic
// is exactly the 12·B·s·h of the paper's analysis (2 forward + 2 recompute
// + 2 backward all-reduces), and ZeRO-R's Pa — partitioning the block
// inputs across the MP group, which genuinely replicates them — adds
// exactly one all-gather per block, i.e. 1/12 of that.

const (
	paVocab  = 17
	paSeq    = 8
	paLayers = 2
	paHidden = 16
	paHeads  = 4
	paBatch  = 2
)

// stepGPT runs one forward+backward of the parallel GPT on an n-rank MP
// group and returns the world for traffic inspection plus rank 0's grads.
func stepGPT(n int, checkpoint, pa bool) (*comm.World, [][]float32, float64) {
	ids, targets := model.SyntheticBatch(71, paBatch, paSeq, paVocab)
	w := comm.NewWorld(n)
	grads := make([][][]float32, n)
	losses := make([]float64, n)
	w.Run(func(c *comm.Comm) {
		m := mp.NewGPT(c, paLayers, paHidden, paHeads, paVocab, paSeq, 23)
		m.Checkpoint = checkpoint
		if pa {
			st, closeSched := checkpointStream(c)
			defer closeSched()
			m.Store = NewPartitionedStore(st, false)
		}
		m.ZeroGrads()
		losses[c.Rank()] = m.Loss(ids, targets, paBatch)
		m.Backward()
		var cp [][]float32
		for _, g := range m.ReplicatedGrads() {
			cp = append(cp, append([]float32(nil), g...))
		}
		cp = append(cp, append([]float32(nil), m.ShardGrads()[0]...))
		grads[c.Rank()] = cp
	})
	return w, grads[0], losses[0]
}

// Checkpointed training of the parallel GPT is numerically identical to
// vanilla (it recomputes the same floats), with or without Pa.
func TestGPTCheckpointAndPaAreNumericallyNeutral(t *testing.T) {
	_, vanilla, lossV := stepGPT(4, false, false)
	_, ckpt, lossC := stepGPT(4, true, false)
	_, paGrads, lossP := stepGPT(4, true, true)
	if lossV != lossC || lossV != lossP {
		t.Fatalf("losses differ: vanilla %v ckpt %v pa %v", lossV, lossC, lossP)
	}
	for i := range vanilla {
		if d := tensor.MaxDiff(vanilla[i], ckpt[i]); d != 0 {
			t.Errorf("grad group %d: checkpointing changed gradients by %g", i, d)
		}
		if d := tensor.MaxDiff(vanilla[i], paGrads[i]); d != 0 {
			t.Errorf("grad group %d: Pa changed gradients by %g", i, d)
		}
	}
}

// §8's block traffic identity, measured: without checkpointing a block
// costs 4 all-reduces (8·M·h ring elements per rank); with recompute it is
// 6 (12·M·h — the paper's 12 × batch × seq × hidden); Pa adds exactly one
// all-gather of M·h per block on top, a 1/12 overhead.
func TestSection8TrafficIdentitiesMeasured(t *testing.T) {
	const n = 4
	m := paBatch * paSeq
	ring := func(elems int) int64 { return int64(elems) * (n - 1) / n }
	perBlockVanilla := 4 * 2 * ring(m*paHidden)
	perBlockCkpt := 6 * 2 * ring(m*paHidden)
	paExtra := ring(m * paHidden)

	wV, _, _ := stepGPT(n, false, false)
	wC, _, _ := stepGPT(n, true, false)
	wP, _, _ := stepGPT(n, true, true)

	vanilla := wV.Stats(0).ElemsSent
	ckpt := wC.Stats(0).ElemsSent
	pa := wP.Stats(0).ElemsSent

	if got, want := ckpt-vanilla, int64(paLayers)*(perBlockCkpt-perBlockVanilla); got != want {
		t.Errorf("recompute traffic = %d elems, want %d (2 extra all-reduces per block)", got, want)
	}
	if got, want := pa-ckpt, int64(paLayers)*paExtra; got != want {
		t.Errorf("Pa overhead = %d elems, want %d (one all-gather per block)", got, want)
	}
	// The headline ratio: Pa overhead / checkpointed MP block traffic = 1/12.
	ratio := float64(pa-ckpt) / float64(int64(paLayers)*perBlockCkpt)
	if ratio <= 0 || ratio > 0.1 {
		t.Errorf("Pa/MP traffic ratio %.4f, want ≤ 0.1 (§8: 'less than one tenth')", ratio)
	}
}

// Pa's memory claim in its real setting: each MP rank retains only 1/Nm of
// every checkpoint.
func TestPaShrinksCheckpointResidency(t *testing.T) {
	const n = 4
	ids, targets := model.SyntheticBatch(73, paBatch, paSeq, paVocab)
	w := comm.NewWorld(n)
	w.Run(func(c *comm.Comm) {
		st, closeSched := checkpointStream(c)
		defer closeSched()
		store := NewPartitionedStore(st, false)
		m := mp.NewGPT(c, paLayers, paHidden, paHeads, paVocab, paSeq, 23)
		m.Checkpoint = true
		m.Store = store
		m.ZeroGrads()
		m.Loss(ids, targets, paBatch)
		fullBytes := int64(paLayers * paBatch * paSeq * paHidden * 2)
		if got := store.DeviceBytes(); got != fullBytes/n {
			t.Errorf("rank %d: resident checkpoint bytes %d, want %d (1/%d of %d)",
				c.Rank(), got, fullBytes/n, n, fullBytes)
		}
		m.Backward()
	})
}
