package zero

import (
	"testing"

	"repro/internal/comm"
	"repro/internal/model"
	"repro/internal/optimizer"
)

// The gradient-clip partial exchange rides the priority lane, not the grad
// stream: its N floats must never queue behind megabyte gradient buckets.
func TestClipPartialsRideThePriorityStream(t *testing.T) {
	const ranks, batch, steps = 4, 4, 3
	cfg := model.Config{Layers: 2, Hidden: 32, Heads: 2, Vocab: 32, Seq: 16}
	ids, targets := model.SyntheticBatch(1, batch, cfg.Seq, cfg.Vocab)
	w := comm.NewWorld(ranks)
	w.Run(func(c *comm.Comm) {
		tr := MustNew(c, cfg, Options{
			Stage: StageOSGrad, LR: 1e-3, Seed: 1,
			BucketElems: 256, Overlap: true, ClipNorm: 1,
		})
		defer tr.Close()
		for i := 0; i < steps; i++ {
			tr.Step(ids, targets, batch)
		}
		if tr.LastGradNorm <= 0 {
			t.Errorf("rank %d: clipping did not run (norm %v)", c.Rank(), tr.LastGradNorm)
		}
	})
	st := w.Stats(0)
	// Each boundary all-gathers N floats over N ranks: N-1 elems sent per
	// rank per step — and nothing else rides the lane at this config.
	if want := int64(steps * (ranks - 1)); st.PerStream[StreamPriority] != want {
		t.Errorf("priority-stream elems = %d, want %d", st.PerStream[StreamPriority], want)
	}
	if st.PerStream[StreamGrad] == 0 {
		t.Error("grad stream idle — bucket traffic missing")
	}
}

// LAMB's 2·#tensors trust-ratio norm exchange uses the same lane.
func TestLAMBNormsRideThePriorityStream(t *testing.T) {
	const ranks, batch = 4, 4
	cfg := model.Config{Layers: 2, Hidden: 32, Heads: 2, Vocab: 32, Seq: 16}
	ids, targets := model.SyntheticBatch(1, batch, cfg.Seq, cfg.Vocab)
	w := comm.NewWorld(ranks)
	w.Run(func(c *comm.Comm) {
		tr := MustNew(c, cfg, Options{
			Stage: StageOS, LR: 1e-3, Seed: 1,
			Optimizer: optimizer.Spec{Kind: optimizer.KindLAMB, LR: 1e-3},
		})
		defer tr.Close()
		tr.Step(ids, targets, batch)
	})
	if got := w.Stats(0).PerStream[StreamPriority]; got == 0 {
		t.Error("LAMB norm partials did not use the priority stream")
	}
}

// The point of the lane, under -race: small latency-bound gathers complete
// while bucket-sized reduce-scatters are still in flight on the grad
// stream. Every rank leaves a deep pipeline of big ops unwaited, runs the
// clip-style gather on the priority stream, and only then drains the grad
// stream — with a single shared FIFO this schedule would serialize the
// small op behind ~all the big ones; with the lane it pairs independently.
func TestPrioritySmallOpsBypassBucketTraffic(t *testing.T) {
	const ranks, big, rounds = 4, 1 << 15, 8
	w := comm.NewWorld(ranks)
	results := make([][]float32, ranks)
	w.Run(func(c *comm.Comm) {
		s := comm.NewScheduler(c)
		defer s.Close()
		grad := s.Stream(StreamGrad)
		prio := s.Stream(StreamPriority)
		bigBuf := make([]float32, big)
		for i := range bigBuf {
			bigBuf[i] = 1
		}
		bigParts := comm.Partition(big, ranks)
		for r := 0; r < rounds; r++ {
			grad.ReduceScatter(comm.F32Buf(bigBuf), bigParts) // unwaited: stays in flight
		}
		// The "clip partial": one float per rank, gathered while the grad
		// stream is saturated.
		partials := make([]float32, ranks)
		partials[c.Rank()] = float32(c.Rank() + 1)
		prio.AllGather(comm.F32Buf(partials), comm.Partition(ranks, ranks)).Wait()
		results[c.Rank()] = partials
		grad.Flush()
	})
	for r := 0; r < ranks; r++ {
		for i, v := range results[r] {
			if v != float32(i+1) {
				t.Fatalf("rank %d: priority gather slot %d = %v, want %v", r, i, v, float32(i+1))
			}
		}
	}
	st := w.Stats(0)
	if st.PerStream[StreamPriority] == 0 || st.PerStream[StreamGrad] == 0 {
		t.Fatal("expected concurrent traffic on both the grad and priority streams")
	}
}
