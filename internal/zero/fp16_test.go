package zero

import (
	"math"
	"testing"

	"repro/internal/comm"
	"repro/internal/losscurve"
	"repro/internal/model"
	"repro/internal/tensor"
)

// FP16Compute trajectory golden: over 10 steps the half-compute path must
// track the f32 reference within tolerance (fp16 rounding noise, not
// algorithm drift) and actually descend, at every stage with and without
// overlap/prefetch. The tolerance pins the trajectory against regressions
// in the fused kernels or the staging discipline.
func TestFP16ComputeTrajectoryTracksF32(t *testing.T) {
	cfg := testConfig()
	const n, steps, batch = 4, 10, 4
	ids, targets := model.SyntheticBatch(31, batch, cfg.Seq, cfg.Vocab)

	ref := lossTrajectory(cfg, n, steps, batch, Options{LR: testLR, Seed: testSeed}, ids, targets)

	var first []float64
	for _, stage := range AllStages {
		for _, overlap := range []bool{false, true} {
			for _, prefetch := range []bool{false, true} {
				if prefetch && !overlap {
					continue // prefetch rides the overlapped schedule
				}
				got := lossTrajectory(cfg, n, steps, batch, Options{
					Stage: stage, LR: testLR, Seed: testSeed,
					Overlap: overlap, Prefetch: prefetch,
					FP16Compute: true,
				}, ids, targets)
				for s := range ref {
					if math.Abs(got[s]-ref[s]) > 0.05*math.Abs(ref[s]) {
						t.Errorf("%v overlap=%v prefetch=%v step %d: fp16 loss %.6f drifts from f32 %.6f",
							stage, overlap, prefetch, s, got[s], ref[s])
						break
					}
				}
				if slope := losscurve.FitSlope(got); slope >= 0 {
					t.Errorf("%v overlap=%v prefetch=%v: fp16 trajectory does not descend (slope %.3g)",
						stage, overlap, prefetch, slope)
				}
				// Partitioning and scheduling must not perturb the fp16
				// path either: all variants walk identical trajectories.
				if first == nil {
					first = got
					continue
				}
				for s := range first {
					if got[s] != first[s] {
						t.Errorf("%v overlap=%v prefetch=%v step %d: fp16 loss %.17g != variant reference %.17g",
							stage, overlap, prefetch, s, got[s], first[s])
						break
					}
				}
			}
		}
	}
}

// A loss scale far beyond fp16 range must overflow on the very first step:
// every rank skips the optimizer step together (parameters bitwise
// unchanged), the scale backs off by the same factor everywhere, and the
// skip is counted.
func TestFP16OverflowSkipIsConsistent(t *testing.T) {
	cfg := testConfig()
	const n, batch = 4, 4
	ids, targets := model.SyntheticBatch(17, batch, cfg.Seq, cfg.Vocab)

	for _, stage := range AllStages {
		scales := make([]float64, n)
		skips := make([]int, n)
		unchanged := make([]bool, n)
		w := comm.NewWorld(n)
		w.Run(func(c *comm.Comm) {
			tr := MustNew(c, cfg, Options{
				Stage: stage, LR: testLR, Seed: testSeed,
				FP16Compute: true, InitialLossScale: 1e30,
			})
			defer tr.Close()
			before := append([]float32(nil), tr.Model.Params...)
			tr.Step(ids, targets, batch)
			r := c.Rank()
			scales[r] = tr.LossScale()
			skips[r] = tr.OverflowSteps()
			unchanged[r] = tensor.MaxDiff(before, tr.Model.Params) == 0
			if tr.AccumulatedMicros() != 0 {
				t.Errorf("%v rank %d: skip left %d accumulated micros", stage, r, tr.AccumulatedMicros())
			}
		})
		for r := 0; r < n; r++ {
			if skips[r] != 1 {
				t.Errorf("%v rank %d: OverflowSteps = %d, want 1", stage, r, skips[r])
			}
			if scales[r] != 0.5e30 {
				t.Errorf("%v rank %d: loss scale %.3g, want backed off to 5e29", stage, r, scales[r])
			}
			if stage != StageFull && !unchanged[r] {
				t.Errorf("%v rank %d: skipped step mutated parameters", stage, r)
			}
		}
	}
}

// Dynamic backoff recovers on its own: start at an absurd scale, skip until
// the scale is representable, then train normally. All ranks must agree on
// the final scale and skip count, and the post-recovery steps must descend.
func TestFP16LossScaleBackoffRecovers(t *testing.T) {
	cfg := testConfig()
	const n, steps, batch = 2, 40, 4
	ids, targets := model.SyntheticBatch(23, batch, cfg.Seq, cfg.Vocab)

	losses := make([][]float64, n)
	scales := make([]float64, n)
	skips := make([]int, n)
	w := comm.NewWorld(n)
	w.Run(func(c *comm.Comm) {
		tr := MustNew(c, cfg, Options{
			Stage: StageOSGrad, LR: testLR, Seed: testSeed, Overlap: true,
			FP16Compute: true, InitialLossScale: float64(uint64(1) << 30),
		})
		defer tr.Close()
		out := make([]float64, steps)
		for s := 0; s < steps; s++ {
			out[s] = tr.Step(ids, targets, batch)
		}
		r := c.Rank()
		losses[r] = out
		scales[r] = tr.LossScale()
		skips[r] = tr.OverflowSteps()
	})
	for r := 0; r < n; r++ {
		if scales[r] != scales[0] || skips[r] != skips[0] {
			t.Fatalf("rank %d diverged: scale %g skips %d vs rank 0 scale %g skips %d",
				r, scales[r], skips[r], scales[0], skips[0])
		}
	}
	if skips[0] == 0 {
		t.Fatal("initial scale 2^30 never overflowed fp16")
	}
	if skips[0] >= steps/2 {
		t.Fatalf("backoff did not converge: %d of %d steps skipped", skips[0], steps)
	}
	if scales[0] >= float64(uint64(1)<<30) {
		t.Errorf("loss scale did not back off: %g", scales[0])
	}
	last := losses[0][steps-1]
	if last >= losses[0][0] {
		t.Errorf("loss did not fall after recovery: %.4f -> %.4f", losses[0][0], last)
	}
}

// FP16Compute is incompatible with activation checkpointing (the half path
// stores activations, it does not recompute them) and must be rejected at
// construction, before any collective is in flight.
func TestFP16ComputeRejectsCheckpoint(t *testing.T) {
	w := comm.NewWorld(1)
	w.Run(func(c *comm.Comm) {
		_, err := New(c, testConfig(), Options{
			LR: testLR, Seed: testSeed, FP16Compute: true, Checkpoint: true,
		})
		if err == nil {
			t.Error("New accepted FP16Compute together with Checkpoint")
		}
	})
}

// Trainer-level residency gate: with FP16Compute on, the step workspace
// plus the parameter copy the kernels read must come in under 60% of the
// f32 trainer's, at a bench-representative shape.
func TestFP16ComputeResidencyUnder60Percent(t *testing.T) {
	cfg := model.Config{Layers: 4, Hidden: 128, Heads: 4, Vocab: 512, Seq: 32}
	const batch = 2
	ids, targets := model.SyntheticBatch(3, batch, cfg.Seq, cfg.Vocab)

	residency := func(fp16 bool) int64 {
		var bytes int64
		w := comm.NewWorld(1)
		w.Run(func(c *comm.Comm) {
			tr := MustNew(c, cfg, Options{LR: testLR, Seed: testSeed, FP16Compute: fp16})
			defer tr.Close()
			tr.Step(ids, targets, batch)
			bytes = tr.ComputeResidencyBytes()
		})
		return bytes
	}
	f32Bytes := residency(false)
	fp16Bytes := residency(true)
	if fp16Bytes >= f32Bytes*3/5 {
		t.Errorf("fp16 compute residency %d B is not under 60%% of f32's %d B (%.1f%%)",
			fp16Bytes, f32Bytes, 100*float64(fp16Bytes)/float64(f32Bytes))
	}
}
