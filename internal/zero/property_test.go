package zero

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/comm"
	"repro/internal/model"
	"repro/internal/tensor"
)

// randomCase is a randomly drawn (architecture, world, stage, overlap)
// combination for the cross-stage equivalence property.
type randomCase struct {
	cfg     model.Config
	n       int
	stage   Stage
	batch   int
	overlap bool
	bucket  int
}

func genCase(r *rand.Rand) randomCase {
	heads := []int{1, 2, 4}[r.Intn(3)]
	hidden := heads * (2 + r.Intn(3)) * 2 // divisible by heads, 4..24ish
	n := 1 + r.Intn(4)
	return randomCase{
		cfg: model.Config{
			Layers: 1 + r.Intn(3),
			Hidden: hidden,
			Heads:  heads,
			Vocab:  5 + r.Intn(30),
			Seq:    4 + r.Intn(6),
		},
		n:       n,
		stage:   AllStages[r.Intn(len(AllStages))],
		batch:   n * (1 + r.Intn(2)), // divisible by world size
		overlap: r.Intn(2) == 1,
		bucket:  []int{0, 64, 257}[r.Intn(3)],
	}
}

// Property: for ANY architecture, world size, stage, bucket size and
// overlap setting, two steps of training produce bitwise the same
// parameters as the synchronous unbucketed stage-0 (DDP) baseline. This is
// the paper's central equivalence claim quantified over the configuration
// space rather than at hand-picked points.
func TestPropertyAnyConfigStageEqualsDDP(t *testing.T) {
	if testing.Short() {
		t.Skip("property test is slow")
	}
	check := func(tc randomCase) bool {
		ids, targets := model.SyntheticBatch(99, tc.batch, tc.cfg.Seq, tc.cfg.Vocab)
		const steps = 2

		w := comm.NewWorld(tc.n)
		ddpOut := make([][]float32, tc.n)
		w.Run(func(c *comm.Comm) {
			tr := MustNew(c, tc.cfg, Options{Stage: StageDDP, LR: 1e-3, Seed: 1})
			for s := 0; s < steps; s++ {
				tr.Step(ids, targets, tc.batch)
			}
			ddpOut[c.Rank()] = tr.Model.Params
		})

		w2 := comm.NewWorld(tc.n)
		zeroOut := make([][]float32, tc.n)
		w2.Run(func(c *comm.Comm) {
			tr := MustNew(c, tc.cfg, Options{
				Stage: tc.stage, LR: 1e-3, Seed: 1,
				BucketElems: tc.bucket, Overlap: tc.overlap,
			})
			defer tr.Close()
			for s := 0; s < steps; s++ {
				tr.Step(ids, targets, tc.batch)
			}
			if tc.stage == StageOSGP {
				tr.gatherParams()
			}
			zeroOut[c.Rank()] = tr.Model.Params
		})
		for r := 0; r < tc.n; r++ {
			if tensor.MaxDiff(zeroOut[r], ddpOut[r]) != 0 {
				t.Logf("mismatch for %+v", tc)
				return false
			}
		}
		return true
	}
	cfgQuick := &quick.Config{
		MaxCount: 12,
		Values: func(args []reflect.Value, r *rand.Rand) {
			args[0] = reflect.ValueOf(genCase(r))
		},
	}
	if err := quick.Check(check, cfgQuick); err != nil {
		t.Error(err)
	}
}

// Property: the communication-volume identity holds for any world size —
// total elements sent per step is exactly mult·(N-1)·Ψ.
func TestPropertyVolumeIdentityAnyWorld(t *testing.T) {
	if testing.Short() {
		t.Skip("property test is slow")
	}
	cfg := model.Config{Layers: 1, Hidden: 8, Heads: 2, Vocab: 7, Seq: 4}
	psi := int64(cfg.ParamCount())
	for n := 1; n <= 6; n++ {
		ids, targets := model.SyntheticBatch(5, n, cfg.Seq, cfg.Vocab)
		for _, tc := range []struct {
			stage Stage
			mult  int64
		}{{StageDDP, 2}, {StageOS, 2}, {StageOSG, 2}, {StageOSGP, 3}} {
			w := comm.NewWorld(n)
			w.Run(func(c *comm.Comm) {
				tr := MustNew(c, cfg, Options{Stage: tc.stage, LR: 1e-3, Seed: 1})
				tr.Step(ids, targets, n)
			})
			want := tc.mult * int64(n-1) * psi
			if got := w.TotalElemsSent(); got != want {
				t.Errorf("n=%d %v: %d elems, want %d", n, tc.stage, got, want)
			}
		}
	}
}
