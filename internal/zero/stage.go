package zero

import (
	"fmt"
	"strings"
)

// Canonical stage names for the unified trainer API. The memory planner's
// historical names (StageDP, StageOS, StageOSG, StageOSGP, declared in
// memplan.go) remain valid aliases; these are the names the trainer, the
// command-line tools and the stage-sweep experiments use.
const (
	// StageDDP is baseline data parallelism run through the unified code
	// path: everything replicated, gradients averaged collectively.
	StageDDP = StageDP
	// StageOSGrad is Pos+g: optimizer state and gradient partitioning.
	StageOSGrad = StageOSG
	// StageFull is Pos+g+p: optimizer state, gradient and parameter
	// partitioning.
	StageFull = StageOSGP
)

// AllStages lists every stage the unified trainer accepts, in order of
// increasing partitioning.
var AllStages = []Stage{StageDDP, StageOS, StageOSGrad, StageFull}

// Valid reports whether s names a real ZeRO-DP stage.
func (s Stage) Valid() bool { return s >= StageDDP && s <= StageFull }

// ParseStage converts a user-facing stage spelling — a digit 0-3 or a paper
// name (ddp, dp, os, pos, os+g, pos+g, full, pos+g+p) — into a Stage.
func ParseStage(s string) (Stage, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "0", "ddp", "dp":
		return StageDDP, nil
	case "1", "os", "pos":
		return StageOS, nil
	case "2", "osg", "os+g", "pos+g":
		return StageOSGrad, nil
	case "3", "full", "osgp", "os+g+p", "pos+g+p":
		return StageFull, nil
	}
	return 0, fmt.Errorf("zero: unknown stage %q (want 0-3, ddp, os, os+g or full)", s)
}
