package zero

import (
	"testing"

	"repro/internal/comm"
	"repro/internal/model"
	"repro/internal/tensor"
)

// Save/Load round trip: train k steps, checkpoint, restore into a fresh
// world, train j more steps — the trajectory must equal an uninterrupted
// k+j-step run bitwise. This exercises the collective consolidation of the
// partitioned optimizer state (no single rank holds it all).
func TestSaveLoadResumesBitwise(t *testing.T) {
	cfg := testConfig()
	const n, batch, k, j = 4, 4, 3, 4
	ids, targets := model.SyntheticBatch(3, batch, cfg.Seq, cfg.Vocab)

	for _, stage := range []Stage{StageOS, StageOSG, StageOSGP} {
		opts := Options{Stage: stage, LR: testLR, Seed: testSeed}

		// Uninterrupted reference.
		ref := runZeRO(t, cfg, stage, n, k+j, opts, ids, targets, batch)

		// Train k steps, save on rank 0.
		var blob []byte
		w1 := comm.NewWorld(n)
		w1.Run(func(c *comm.Comm) {
			tr := MustNew(c, cfg, opts)
			for s := 0; s < k; s++ {
				tr.Step(ids, targets, batch)
			}
			snap := tr.Save()
			if c.Rank() == 0 {
				var err error
				blob, err = snap.Encode()
				if err != nil {
					t.Error(err)
				}
			}
		})

		// Fresh world with a different seed (weights will be overwritten),
		// broadcast the decoded snapshot, load, resume.
		w2 := comm.NewWorld(n)
		results := make([][]float32, n)
		w2.Run(func(c *comm.Comm) {
			tr := MustNew(c, cfg, Options{Stage: stage, LR: testLR, Seed: 999})
			var snap *Snapshot
			if c.Rank() == 0 {
				var err error
				snap, err = DecodeSnapshot(blob)
				if err != nil {
					t.Error(err)
					return
				}
			}
			snap = BroadcastSnapshot(c, snap)
			if err := tr.Load(snap); err != nil {
				t.Error(err)
				return
			}
			for s := 0; s < j; s++ {
				tr.Step(ids, targets, batch)
			}
			if stage == StageOSGP {
				tr.gatherParams()
			}
			results[c.Rank()] = append([]float32(nil), tr.Model.Params...)
		})
		for r := 0; r < n; r++ {
			if d := tensor.MaxDiff(results[r], ref[r]); d != 0 {
				t.Errorf("%v rank %d: resumed trajectory diverged by %g", stage, r, d)
			}
		}
	}
}

// Elastic restore: a checkpoint written by a 4-rank world restores into a
// 2-rank world and matches the 2-rank uninterrupted trajectory (state is
// stored unpartitioned, so repartitioning is automatic).
func TestElasticRestoreAcrossWorldSizes(t *testing.T) {
	cfg := testConfig()
	const batch, k, j = 4, 3, 3
	ids, targets := model.SyntheticBatch(5, batch, cfg.Seq, cfg.Vocab)
	opts := Options{Stage: StageOSG, LR: testLR, Seed: testSeed}

	// Save from a 4-rank world.
	var blob []byte
	w4 := comm.NewWorld(4)
	w4.Run(func(c *comm.Comm) {
		tr := MustNew(c, cfg, opts)
		for s := 0; s < k; s++ {
			tr.Step(ids, targets, batch)
		}
		if snap := tr.Save(); snap != nil {
			blob, _ = snap.Encode()
		}
	})

	// Reference: what a 2-rank world reaches after k+j steps from scratch.
	// (The k-step prefix differs only by reduction grouping, so compare
	// with tolerance rather than bitwise.)
	ref := runZeRO(t, cfg, StageOSG, 2, k+j, opts, ids, targets, batch)

	w2 := comm.NewWorld(2)
	results := make([][]float32, 2)
	w2.Run(func(c *comm.Comm) {
		tr := MustNew(c, cfg, Options{Stage: StageOSG, LR: testLR, Seed: 123})
		var snap *Snapshot
		if c.Rank() == 0 {
			snap, _ = DecodeSnapshot(blob)
		}
		snap = BroadcastSnapshot(c, snap)
		if err := tr.Load(snap); err != nil {
			t.Error(err)
			return
		}
		for s := 0; s < j; s++ {
			tr.Step(ids, targets, batch)
		}
		results[c.Rank()] = append([]float32(nil), tr.Model.Params...)
	})
	for r := 0; r < 2; r++ {
		if d := tensor.MaxDiff(results[r], ref[r]); d > 1e-3 {
			t.Errorf("rank %d: elastic restore diverged by %g", r, d)
		}
	}
}

// FP16 mode checkpoints the fp32 master shards, not the rounded working
// copy.
func TestSaveLoadFP16PreservesMasters(t *testing.T) {
	cfg := testConfig()
	const n, batch = 2, 4
	ids, targets := model.SyntheticBatch(7, batch, cfg.Seq, cfg.Vocab)
	opts := Options{Stage: StageOSG, LR: testLR, Seed: testSeed, FP16: true}

	ref := runZeRO(t, cfg, StageOSG, n, 5, opts, ids, targets, batch)

	var blob []byte
	w1 := comm.NewWorld(n)
	w1.Run(func(c *comm.Comm) {
		tr := MustNew(c, cfg, opts)
		for s := 0; s < 2; s++ {
			tr.Step(ids, targets, batch)
		}
		if snap := tr.Save(); snap != nil {
			blob, _ = snap.Encode()
		}
	})
	w2 := comm.NewWorld(n)
	results := make([][]float32, n)
	w2.Run(func(c *comm.Comm) {
		tr := MustNew(c, cfg, Options{Stage: StageOSG, LR: testLR, Seed: 55, FP16: true})
		var snap *Snapshot
		if c.Rank() == 0 {
			snap, _ = DecodeSnapshot(blob)
		}
		snap = BroadcastSnapshot(c, snap)
		if err := tr.Load(snap); err != nil {
			t.Error(err)
			return
		}
		for s := 0; s < 3; s++ {
			tr.Step(ids, targets, batch)
		}
		results[c.Rank()] = append([]float32(nil), tr.Model.Params...)
	})
	for r := 0; r < n; r++ {
		if d := tensor.MaxDiff(results[r], ref[r]); d != 0 {
			t.Errorf("rank %d: fp16 resume diverged by %g (master precision lost?)", r, d)
		}
	}
}

func TestLoadValidation(t *testing.T) {
	w := comm.NewWorld(1)
	w.Run(func(c *comm.Comm) {
		tr := MustNew(c, testConfig(), Options{Stage: StageOSG, LR: testLR})
		if err := tr.Load(nil); err == nil {
			t.Error("expected error for nil snapshot")
		}
		if err := tr.Load(&Snapshot{NumParams: 1}); err == nil {
			t.Error("expected error for size mismatch")
		}
	})
}

func TestSnapshotEncodeDecode(t *testing.T) {
	s := &Snapshot{
		Stage: StageOSG, WorldSize: 4, NumParams: 3, OptSteps: 7,
		Params: []float32{1, 2, 3},
		Opt:    [][]float32{{4, 5, 6}, {7, 8, 9}},
	}
	blob, err := s.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeSnapshot(blob)
	if err != nil {
		t.Fatal(err)
	}
	if got.OptSteps != 7 || got.Params[2] != 3 || got.Opt[1][0] != 7 {
		t.Errorf("round trip mangled snapshot: %+v", got)
	}
	if _, err := DecodeSnapshot([]byte("garbage")); err == nil {
		t.Error("expected decode error")
	}
}

// Checkpoints written by the legacy Adam-only snapshot format (AdamM/AdamV
// fields) still load: DecodeSnapshot migrates them into Opt.
func TestDecodeSnapshotLegacyAdamFields(t *testing.T) {
	legacy := &Snapshot{
		Stage: StageOSG, WorldSize: 2, NumParams: 3, OptSteps: 4,
		Params: []float32{1, 2, 3},
		AdamM:  []float32{4, 5, 6}, AdamV: []float32{7, 8, 9},
	}
	blob, err := legacy.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeSnapshot(blob)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Opt) != 2 || got.Opt[0][0] != 4 || got.Opt[1][2] != 9 {
		t.Errorf("legacy fields not migrated into Opt: %+v", got)
	}
	if got.AdamM != nil || got.AdamV != nil {
		t.Error("legacy fields should be cleared after migration")
	}
	w := comm.NewWorld(2)
	w.Run(func(c *comm.Comm) {
		tr := MustNew(c, testConfig(), Options{Stage: StageOSG, LR: testLR})
		defer tr.Close()
		if err := tr.Load(got); err == nil {
			t.Error("expected size-mismatch error, not an optimizer-count one")
		}
	})
}

// Corrupt and truncated snapshot blobs must surface a decode error, never
// a panic or a silently wrong snapshot — the serve checkpoint endpoint
// hands these bytes to arbitrary clients that will feed them back to Load.
func TestDecodeSnapshotCorruptInput(t *testing.T) {
	good := &Snapshot{
		Stage: StageOSG, WorldSize: 2, NumParams: 4, OptSteps: 7,
		Params: []float32{1, 2, 3, 4},
		Opt:    [][]float32{{5, 6, 7, 8}, {9, 10, 11, 12}},
	}
	blob, err := good.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeSnapshot(blob); err != nil {
		t.Fatalf("control: pristine blob failed to decode: %v", err)
	}

	t.Run("truncated", func(t *testing.T) {
		// Every proper prefix must fail — gob carries lengths, so a cut at
		// any byte is detectable.
		for _, frac := range []int{0, 1, len(blob) / 4, len(blob) / 2, len(blob) - 1} {
			if _, err := DecodeSnapshot(blob[:frac]); err == nil {
				t.Errorf("truncation to %d/%d bytes decoded without error", frac, len(blob))
			}
		}
	})

	t.Run("corrupt header", func(t *testing.T) {
		bad := append([]byte(nil), blob...)
		bad[0] ^= 0xff
		if _, err := DecodeSnapshot(bad); err == nil {
			t.Error("corrupted type header decoded without error")
		}
	})

	t.Run("garbage", func(t *testing.T) {
		if _, err := DecodeSnapshot([]byte("not a gob stream at all")); err == nil {
			t.Error("garbage bytes decoded without error")
		}
	})

	t.Run("trailing garbage rejected", func(t *testing.T) {
		// gob streams are self-delimiting and would silently ignore bytes
		// past the value; the integrity trailer makes padding loud instead.
		withTail := append(append([]byte(nil), blob...), 0xde, 0xad)
		if _, err := DecodeSnapshot(withTail); err == nil {
			t.Error("padded blob decoded without error (integrity trailer not enforced)")
		}
	})

	t.Run("corrupt payload under intact length", func(t *testing.T) {
		// A bit flip in the middle that gob happens to parse is caught by
		// the checksum.
		bad := append([]byte(nil), blob...)
		bad[len(bad)/2] ^= 0x01
		if _, err := DecodeSnapshot(bad); err == nil {
			t.Error("payload corruption decoded without error")
		}
	})

	t.Run("unsealed legacy blob rejected", func(t *testing.T) {
		// Blobs written before the trailer (raw gob) no longer load: the
		// integrity guarantee is strict, not best-effort.
		raw, err := OpenFrame(blob)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := DecodeSnapshot(raw); err == nil {
			t.Error("raw gob blob without trailer decoded without error")
		}
	})
}
