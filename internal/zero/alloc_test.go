package zero

import (
	"fmt"
	"runtime"
	"testing"

	"repro/internal/comm"
	"repro/internal/model"
	"repro/internal/optimizer"
)

// The zero-allocation steady-state contract: after warm-up, a training step
// performs no heap allocation on any rank — the collective wire copies ride
// the world's pooled buffers, the trainer replays its cached bucket plan,
// and the model reuses its activation/gradient workspace. These tests pin
// it with a direct Mallocs count around a measured window of steps.
//
// GOMAXPROCS is left alone: the matmul kernels fan out over the tensor
// package's persistent worker pool, which dispatches without allocating,
// so the zero-allocation contract holds with parallel kernels engaged.

// allocCfg is small so the sweep stays fast; every code path (buckets,
// overlap, prefetch, hierarchy) still executes.
var allocCfg = model.Config{Layers: 2, Hidden: 32, Heads: 2, Vocab: 32, Seq: 16}

// maxSteadyAllocsPerStep bounds the measured whole-world allocations per
// steady-state step. The budget is 0 in a deterministic schedule; a tiny
// slack absorbs arena free-list high-water drift across goroutine
// interleavings (a Get can race a Put and allocate once).
const maxSteadyAllocsPerStep = 8

// measureStepAllocs runs warm-up steps, then measures process-wide heap
// allocations across K steps executed by every rank of the world.
func measureStepAllocs(t *testing.T, ranks int, opts Options) float64 {
	t.Helper()
	const warm, K = 3, 6
	const batch = 4
	ids, targets := model.SyntheticBatch(1, batch, allocCfg.Seq, allocCfg.Vocab)
	w := comm.NewWorld(ranks)
	var perStep float64
	w.Run(func(c *comm.Comm) {
		tr := MustNew(c, allocCfg, opts)
		defer tr.Close()
		for i := 0; i < warm; i++ {
			tr.Step(ids, targets, batch)
		}
		// All ranks quiesce; rank 0 snapshots the allocator between the
		// barriers, while the other ranks are parked inside the second
		// barrier (no step work, no allocation).
		c.Barrier()
		var m0, m1 runtime.MemStats
		if c.Rank() == 0 {
			runtime.ReadMemStats(&m0)
		}
		c.Barrier()
		for i := 0; i < K; i++ {
			tr.Step(ids, targets, batch)
		}
		c.Barrier()
		if c.Rank() == 0 {
			runtime.ReadMemStats(&m1)
			perStep = float64(m1.Mallocs-m0.Mallocs) / K
		}
		c.Barrier()
	})
	return perStep
}

func TestSteadyStateStepAllocations(t *testing.T) {
	for _, stage := range AllStages {
		for _, mode := range []struct {
			name              string
			overlap, prefetch bool
		}{
			{"sync", false, false},
			{"overlap", true, false},
			{"prefetch", false, true},
		} {
			if mode.prefetch && stage != StageFull {
				continue // prefetch is a stage-3 schedule
			}
			name := fmt.Sprintf("stage=%d/%s", int(stage), mode.name)
			t.Run(name, func(t *testing.T) {
				got := measureStepAllocs(t, 4, Options{
					Stage: stage, LR: 1e-3, Seed: 1,
					BucketElems: 512, Overlap: mode.overlap, Prefetch: mode.prefetch,
				})
				if got > maxSteadyAllocsPerStep {
					t.Errorf("steady-state step allocates %.1f objects (budget %d)", got, maxSteadyAllocsPerStep)
				}
			})
		}
	}
}

// FP16, clipping (priority lane), hierarchy and accumulation compose into
// the same zero-allocation steady state.
func TestSteadyStateStepAllocationsComposed(t *testing.T) {
	for _, tc := range []struct {
		name string
		opts Options
	}{
		{"fp16+clip+overlap", Options{Stage: StageOSGrad, LR: 1e-3, Seed: 1,
			BucketElems: 512, Overlap: true, FP16: true, ClipNorm: 1}},
		{"hier+overlap", Options{Stage: StageOSGrad, LR: 1e-3, Seed: 1,
			BucketElems: 512, Overlap: true, Topology: Topology{NodeSize: 2}}},
		{"lamb", Options{Stage: StageOS, LR: 1e-3, Seed: 1,
			Optimizer: optimizer.Spec{Kind: optimizer.KindLAMB, LR: 1e-3}}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			got := measureStepAllocs(t, 4, tc.opts)
			if got > maxSteadyAllocsPerStep {
				t.Errorf("steady-state step allocates %.1f objects (budget %d)", got, maxSteadyAllocsPerStep)
			}
		})
	}
}

// Pool hygiene: Close releases the model workspace, and a second trainer in
// the same process re-uses the world's wire pool instead of re-growing it.
func TestTrainerTeardownReleasesWorkspace(t *testing.T) {
	const ranks, batch, steps = 2, 4, 4
	ids, targets := model.SyntheticBatch(1, batch, allocCfg.Seq, allocCfg.Vocab)
	w := comm.NewWorld(ranks)
	opts := Options{Stage: StageOSGrad, LR: 1e-3, Seed: 1, BucketElems: 512, Overlap: true}

	runTrainer := func() {
		w.Run(func(c *comm.Comm) {
			tr := MustNew(c, allocCfg, opts)
			for i := 0; i < steps; i++ {
				tr.Step(ids, targets, batch)
			}
			if got := tr.Model.WorkspaceBytes(); got == 0 {
				t.Errorf("rank %d: workspace empty after %d steps (expected a warmed workspace)", c.Rank(), steps)
			}
			tr.Close()
			if got := tr.Model.WorkspaceBytes(); got != 0 {
				t.Errorf("rank %d: workspace retains %d bytes after Close, want 0", c.Rank(), got)
			}
		})
	}

	runTrainer()
	gets1, misses1 := w.WirePool().Stats()
	resident1 := w.WirePool().Resident()
	if gets1 == 0 || resident1 == 0 {
		t.Fatalf("wire pool unused after first trainer (gets=%d resident=%d)", gets1, resident1)
	}

	runTrainer()
	gets2, misses2 := w.WirePool().Stats()
	resident2 := w.WirePool().Resident()
	newGets, newMisses := gets2-gets1, misses2-misses1
	// The second trainer's traffic pattern matches the first, so its wire
	// buffers come from the warmed pool: essentially no new allocations…
	if newGets == 0 {
		t.Fatal("second trainer sent no pooled traffic")
	}
	if newMisses > newGets/20 {
		t.Errorf("second trainer missed the wire pool %d/%d times — pool not reused across trainers", newMisses, newGets)
	}
	// …and the pooled footprint does not stack one trainer's working set on
	// top of the other's.
	if resident2 > resident1+resident1/2 {
		t.Errorf("wire pool resident grew %d → %d bytes across sequential trainers (double-residency)", resident1, resident2)
	}

	// Explicit release hands the pool back to the GC.
	w.WirePool().Release()
	if got := w.WirePool().Resident(); got != 0 {
		t.Errorf("wire pool retains %d bytes after Release", got)
	}
}
