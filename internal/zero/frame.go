package zero

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// Snapshot blobs end in a fixed 16-byte integrity trailer:
//
//	[payload][length uint64 LE][crc32(payload) uint32 LE][magic "ZCK1"]
//
// gob silently tolerates trailing bytes and cannot detect truncation that
// happens to end on a value boundary; the trailer makes both loud. The
// framing is payload-agnostic — zero.Snapshot (gob) and elastic.Checkpoint
// (binary) both seal with it.

// frameMagic terminates every sealed blob.
var frameMagic = [4]byte{'Z', 'C', 'K', '1'}

// frameTrailerLen is the byte length SealFrame appends.
const frameTrailerLen = 16

// SealFrame appends the integrity trailer to payload (in place if capacity
// allows) and returns the sealed blob.
func SealFrame(payload []byte) []byte {
	n := len(payload)
	out := append(payload, make([]byte, frameTrailerLen)...)
	tr := out[n:]
	binary.LittleEndian.PutUint64(tr[0:8], uint64(n))
	binary.LittleEndian.PutUint32(tr[8:12], crc32.ChecksumIEEE(payload))
	copy(tr[12:16], frameMagic[:])
	return out
}

// OpenFrame verifies and strips the integrity trailer, returning the
// payload. It fails on missing magic, truncation, padding (any length
// mismatch) and checksum mismatch.
func OpenFrame(data []byte) ([]byte, error) {
	if len(data) < frameTrailerLen {
		return nil, fmt.Errorf("zero: blob too short for integrity trailer (%d bytes)", len(data))
	}
	tr := data[len(data)-frameTrailerLen:]
	if [4]byte(tr[12:16]) != frameMagic {
		return nil, fmt.Errorf("zero: integrity trailer missing (truncated, padded, or not a sealed snapshot)")
	}
	n := binary.LittleEndian.Uint64(tr[0:8])
	if n != uint64(len(data)-frameTrailerLen) {
		return nil, fmt.Errorf("zero: snapshot length mismatch: trailer says %d payload bytes, blob has %d", n, len(data)-frameTrailerLen)
	}
	payload := data[:n]
	want := binary.LittleEndian.Uint32(tr[8:12])
	if got := crc32.ChecksumIEEE(payload); got != want {
		return nil, fmt.Errorf("zero: snapshot checksum mismatch: %08x != %08x (corrupt payload)", got, want)
	}
	return payload, nil
}
