package zero

import (
	"errors"

	"testing"

	"repro/internal/comm"
	"repro/internal/model"
	"repro/internal/optimizer"
	"repro/internal/tensor"
)

func testConfig() model.Config {
	return model.Config{Layers: 2, Hidden: 16, Heads: 2, Vocab: 19, Seq: 8}
}

const (
	testSeed = 7
	testLR   = 1e-3
)

// runZeRO trains `steps` steps at the given stage/world size and returns
// every rank's final full parameter buffer (stage 3 gathers before
// reporting).
func runZeRO(t *testing.T, cfg model.Config, stage Stage, n, steps int, opts Options,
	ids, targets []int, batch int) [][]float32 {
	t.Helper()
	opts.Stage = stage
	w := comm.NewWorld(n)
	out := make([][]float32, n)
	w.Run(func(c *comm.Comm) {
		tr := MustNew(c, cfg, opts)
		for s := 0; s < steps; s++ {
			tr.Step(ids, targets, batch)
		}
		if stage == StageOSGP {
			tr.gatherParams() // re-materialize for comparison
		}
		out[c.Rank()] = append([]float32(nil), tr.Model.Params...)
	})
	return out
}

// runDDP is the baseline trajectory on the same world: the unified trainer
// at stage 0 (replicated DDP), unbucketed.
func runDDP(cfg model.Config, n, steps int, ids, targets []int, batch int) []float32 {
	w := comm.NewWorld(n)
	out := make([][]float32, n)
	w.Run(func(c *comm.Comm) {
		tr := MustNew(c, cfg, Options{Stage: StageDDP, LR: testLR, Seed: testSeed})
		for s := 0; s < steps; s++ {
			tr.Step(ids, targets, batch)
		}
		out[c.Rank()] = append([]float32(nil), tr.Model.Params...)
	})
	return out[0]
}

// The core ZeRO claim (§2.2.3, §5): partitioning model states "does not
// change the model optimization method", so every stage must reproduce the
// baseline DDP (stage 0) trajectory *bitwise* — the collectives use the
// same ring schedule and Adam is elementwise.
func TestStagesMatchDDPBitwise(t *testing.T) {
	cfg := testConfig()
	const steps, batch = 5, 4
	ids, targets := model.SyntheticBatch(3, batch, cfg.Seq, cfg.Vocab)
	for _, n := range []int{1, 2, 4} {
		want := runDDP(cfg, n, steps, ids, targets, batch)
		for _, stage := range []Stage{StageOS, StageOSG, StageOSGP} {
			got := runZeRO(t, cfg, stage, n, steps,
				Options{LR: testLR, Seed: testSeed}, ids, targets, batch)
			for r := 0; r < n; r++ {
				if d := tensor.MaxDiff(got[r], want); d != 0 {
					t.Errorf("n=%d %v rank %d: diverged from DDP by %g", n, stage, r, d)
				}
			}
		}
	}
}

// Against single-process full-batch training the stages match within fp32
// reduction rounding.
func TestStagesMatchSingleProcess(t *testing.T) {
	cfg := testConfig()
	const steps, batch = 5, 4
	ids, targets := model.SyntheticBatch(3, batch, cfg.Seq, cfg.Vocab)
	ref := model.New(cfg, testSeed)
	opt := optimizer.NewAdam(cfg.ParamCount(), testLR)
	for s := 0; s < steps; s++ {
		ref.ZeroGrads()
		ref.Loss(ids, targets, batch)
		ref.Backward()
		opt.Step(ref.Params, ref.Grads)
	}
	for _, stage := range AllStages {
		got := runZeRO(t, cfg, stage, 4, steps,
			Options{LR: testLR, Seed: testSeed}, ids, targets, batch)
		if d := tensor.MaxDiff(got[0], ref.Params); d > 2e-4 {
			t.Errorf("%v vs single process: max diff %g", stage, d)
		}
	}
}

// Gradient bucketing (the CB optimization applied to the reduce-scatter)
// must not change the numbers: same ring partition per wave, same sums.
func TestBucketedReduceScatterBitwise(t *testing.T) {
	cfg := testConfig()
	const batch = 4
	ids, targets := model.SyntheticBatch(13, batch, cfg.Seq, cfg.Vocab)
	unfused := runZeRO(t, cfg, StageOSG, 4, 3, Options{LR: testLR, Seed: testSeed}, ids, targets, batch)
	bucketed := runZeRO(t, cfg, StageOSG, 4, 3,
		Options{LR: testLR, Seed: testSeed, BucketElems: 257}, ids, targets, batch)
	if d := tensor.MaxDiff(unfused[0], bucketed[0]); d != 0 {
		t.Errorf("bucketing changed the trajectory by %g", d)
	}
}

// §7 communication-volume identities, measured on the wire. Total elements
// sent across all ranks per step:
//
//	DDP / Pos / Pos+g:  2(N-1)Ψ   (all-reduce, or RS + param all-gather)
//	Pos+g+p:            3(N-1)Ψ   (two gather passes + RS, no param AG)
func TestCommunicationVolumeIdentities(t *testing.T) {
	cfg := testConfig()
	psi := int64(cfg.ParamCount())
	const batch = 4
	ids, targets := model.SyntheticBatch(5, batch, cfg.Seq, cfg.Vocab)
	for _, n := range []int{2, 4} {
		for _, tc := range []struct {
			stage Stage
			mult  int64
		}{
			{StageDDP, 2}, {StageOS, 2}, {StageOSG, 2}, {StageOSGP, 3},
		} {
			w := comm.NewWorld(n)
			w.Run(func(c *comm.Comm) {
				// Trainer construction performs no communication, so the
				// counters hold exactly one step's traffic.
				tr := MustNew(c, cfg, Options{Stage: tc.stage, LR: testLR, Seed: testSeed})
				tr.Step(ids, targets, batch)
			})
			want := tc.mult * int64(n-1) * psi
			if got := w.TotalElemsSent(); got != want {
				t.Errorf("n=%d %v: total sent %d elems, want %d (= %dΨ(N-1))",
					n, tc.stage, got, want, tc.mult)
			}
		}
	}
}

// Stage 3 resident state: outside its partition a rank's parameters are
// zeroed between steps (Ψ/Nd resident, §5.3), and the optimizer shard is
// Ψ/Nd.
func TestStage3ResidencyAndShards(t *testing.T) {
	cfg := testConfig()
	const n, batch = 4, 4
	ids, targets := model.SyntheticBatch(5, batch, cfg.Seq, cfg.Vocab)
	w := comm.NewWorld(n)
	w.Run(func(c *comm.Comm) {
		tr := MustNew(c, cfg, Options{Stage: StageOSGP, LR: testLR, Seed: testSeed})
		tr.Step(ids, targets, batch)
		own := tr.Owned()
		for i, v := range tr.Model.Params {
			if (i < own.Lo || i >= own.Hi) && v != 0 {
				t.Errorf("rank %d: non-owned param %d resident after step", c.Rank(), i)
				return
			}
		}
		psi := tr.Model.NumParams()
		if got := tr.OptimizerShardParams(); got != own.Len() || got > psi/n+1 {
			t.Errorf("rank %d: optimizer shard %d params, want ≈Ψ/N = %d", c.Rank(), got, psi/n)
		}
	})
}

// FP16 mode: all three stages execute the identical sequence of rounded
// operations, so they agree bitwise with each other, and training still
// learns.
func TestFP16StagesAgreeAndLearn(t *testing.T) {
	cfg := model.Config{Layers: 2, Hidden: 32, Heads: 4, Vocab: 13, Seq: 12}
	const n, batch, steps = 2, 4, 15
	ids, targets := model.SyntheticBatch(17, batch, cfg.Seq, cfg.Vocab)
	opts := Options{LR: 5e-3, Seed: 23, FP16: true}

	s1 := runZeRO(t, cfg, StageOS, n, steps, opts, ids, targets, batch)
	s2 := runZeRO(t, cfg, StageOSG, n, steps, opts, ids, targets, batch)
	s3 := runZeRO(t, cfg, StageOSGP, n, steps, opts, ids, targets, batch)
	if d := tensor.MaxDiff(s1[0], s2[0]); d != 0 {
		t.Errorf("fp16 Pos vs Pos+g differ by %g", d)
	}
	if d := tensor.MaxDiff(s1[0], s3[0]); d != 0 {
		t.Errorf("fp16 Pos vs Pos+g+p differ by %g", d)
	}

	// Learning check.
	w := comm.NewWorld(n)
	losses := make([]float64, n)
	firsts := make([]float64, n)
	w.Run(func(c *comm.Comm) {
		tr := MustNew(c, cfg, Options{Stage: StageOSG, LR: 5e-3, Seed: 23, FP16: true})
		for s := 0; s < steps; s++ {
			l := tr.Step(ids, targets, batch)
			if s == 0 {
				firsts[c.Rank()] = l
			}
			losses[c.Rank()] = l
		}
	})
	for r := range losses {
		if losses[r] >= firsts[r]-0.1 {
			t.Errorf("rank %d: fp16 training did not learn (%.4f -> %.4f)", r, firsts[r], losses[r])
		}
	}
}

// Activation checkpointing inside the ZeRO trainer must not change the
// trajectory.
func TestZeROWithCheckpointingBitwise(t *testing.T) {
	cfg := testConfig()
	const batch = 4
	ids, targets := model.SyntheticBatch(29, batch, cfg.Seq, cfg.Vocab)
	plain := runZeRO(t, cfg, StageOSG, 2, 3, Options{LR: testLR, Seed: testSeed}, ids, targets, batch)
	ckpt := runZeRO(t, cfg, StageOSG, 2, 3,
		Options{LR: testLR, Seed: testSeed, Checkpoint: true}, ids, targets, batch)
	if d := tensor.MaxDiff(plain[0], ckpt[0]); d != 0 {
		t.Errorf("checkpointing changed the trajectory by %g", d)
	}
}

// Invalid configurations surface as errors from New — before any
// collective is in flight — rather than panics mid-step.
func TestTrainerRejectsInvalidConfigs(t *testing.T) {
	for _, bad := range []Stage{-1, 4} {
		w := comm.NewWorld(1)
		w.Run(func(c *comm.Comm) {
			if _, err := New(c, testConfig(), Options{Stage: bad, LR: testLR}); err == nil {
				t.Errorf("expected error for stage %d", bad)
			}
		})
	}
	w := comm.NewWorld(4)
	w.Run(func(c *comm.Comm) {
		for _, bad := range []int{3, -2, 5} {
			_, err := New(c, testConfig(), Options{
				Stage: StageOSGrad, LR: testLR, Topology: Topology{NodeSize: bad},
			})
			if !errors.Is(err, comm.ErrTopology) {
				t.Errorf("NodeSize %d: err = %v, want comm.ErrTopology", bad, err)
			}
		}
		// Degenerate-but-valid layouts collapse to flat routing.
		for _, flat := range []int{0, 1, 4} {
			tr, err := New(c, testConfig(), Options{
				Stage: StageOSGrad, LR: testLR, Topology: Topology{NodeSize: flat},
			})
			if err != nil || tr.NodeSize() != 0 {
				t.Errorf("NodeSize %d: err=%v effective=%d, want flat", flat, err, tr.NodeSize())
			}
		}
		tr := MustNew(c, testConfig(), Options{
			Stage: StageOSGrad, LR: testLR, Topology: Topology{NodeSize: 2},
		})
		if tr.NodeSize() != 2 {
			t.Errorf("NodeSize 2: effective %d", tr.NodeSize())
		}
	})
}

// ModelStateBytes must follow the planner equation for the trainer's own
// stage and world size.
func TestTrainerModelStateAccounting(t *testing.T) {
	cfg := testConfig()
	w := comm.NewWorld(4)
	w.Run(func(c *comm.Comm) {
		tr := MustNew(c, cfg, Options{Stage: StageOSG, LR: testLR, Seed: 1})
		want := int64(ModelStateBytes(int64(cfg.ParamCount()), StageOSG, 4))
		if got := tr.ModelStateBytes(); got != want {
			t.Errorf("ModelStateBytes = %d, want %d", got, want)
		}
	})
}
