// Package arena provides size-classed, reusable float32 scratch buffers —
// the allocation discipline behind the repo's zero-allocation steady state.
//
// ZeRO's whole argument (§3, §5) is that the memory you do not allocate is
// what buys scale; the same discipline applies to the simulator's hot loop.
// Every per-step transient — collective wire copies, reduce/gather scratch,
// staging buffers — draws from an Arena instead of `make`, so after a
// warm-up step the steady-state training loop performs no heap allocation
// and pays no GC tax. Unlike sync.Pool, an Arena never gives buffers back
// to the garbage collector behind the caller's back: allocation counts are
// deterministic, which is what lets the benchmark suite gate allocs/op as a
// hard regression signal.
//
// Ownership rules:
//
//   - Get(n) returns a buffer of length n whose contents are UNDEFINED
//     (reused buffers carry stale values). Callers must fully overwrite it
//     (or explicitly zero it first when the algorithm accumulates).
//   - Put returns a buffer to the arena; the caller must not touch it
//     afterwards. Put is optional — a buffer that escapes (e.g. handed to
//     user code) is simply garbage-collected like any other slice.
//   - Release drops every pooled buffer, returning the memory to the GC —
//     the teardown hook that keeps sequential trainers in one process from
//     double-residenting their workspaces.
//
// An Arena is safe for concurrent use: one instance serves all ranks of an
// in-process world.
package arena

import (
	"math/bits"
	"sync"
)

// numClasses covers buffer capacities up to 2^(numClasses-1) elements.
const numClasses = 40

// Arena is a size-classed free list of float32 buffers. The zero value is
// ready to use.
type Arena struct {
	mu      sync.Mutex
	classes [numClasses][][]float32

	resident int64 // bytes currently pooled (free, reusable)
	gets     int64 // total Get calls
	misses   int64 // Get calls that had to allocate
}

// New returns an empty arena.
func New() *Arena { return &Arena{} }

// class returns the size-class index for n elements: buffers are rounded up
// to the next power of two so a handful of lists serve every request size.
func class(n int) int {
	if n <= 1 {
		return 0
	}
	return bits.Len(uint(n - 1))
}

// Get returns a buffer of length n (capacity rounded up to the size class).
// Contents are undefined; see the package comment for ownership rules.
// Get(0) returns nil.
func (a *Arena) Get(n int) []float32 {
	if n <= 0 {
		return nil
	}
	cls := class(n)
	a.mu.Lock()
	a.gets++
	list := a.classes[cls]
	if len(list) > 0 {
		b := list[len(list)-1]
		a.classes[cls] = list[:len(list)-1]
		a.resident -= int64(cap(b)) * 4
		a.mu.Unlock()
		return b[:n]
	}
	a.misses++
	a.mu.Unlock()
	return make([]float32, n, 1<<cls)
}

// Put returns a buffer to the arena for reuse. Buffers whose capacity is not
// a size-class width (i.e. that did not come from Get) are dropped rather
// than pooled, so a stray Put cannot poison a class with short buffers.
// Put(nil) and Put of empty buffers are no-ops.
func (a *Arena) Put(b []float32) {
	c := cap(b)
	if c == 0 || c&(c-1) != 0 {
		return
	}
	cls := bits.Len(uint(c)) - 1
	a.mu.Lock()
	a.classes[cls] = append(a.classes[cls], b[:0])
	a.resident += int64(c) * 4
	a.mu.Unlock()
}

// Release drops every pooled buffer, handing the memory back to the GC.
func (a *Arena) Release() {
	a.mu.Lock()
	for i := range a.classes {
		a.classes[i] = nil
	}
	a.resident = 0
	a.mu.Unlock()
}

// Resident returns the bytes currently pooled (free buffers held for reuse).
func (a *Arena) Resident() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.resident
}

// Stats returns cumulative Get calls and the subset that had to allocate.
// A warmed steady state shows gets rising with misses flat — the measurable
// form of "the hot loop no longer allocates".
func (a *Arena) Stats() (gets, misses int64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.gets, a.misses
}

// Ints is the []int counterpart of Arena: size-classed free lists of token
// buffers. The data pipeline (internal/data) draws every per-document token
// slice and batch buffer from an Ints pool so steady-state micro-batch
// production allocates nothing — the same discipline, and the same
// deterministic-allocation contract, as the float32 wire pools. The zero
// value is ready to use; the ownership rules of the package comment apply
// unchanged (Get contents are undefined, Put transfers ownership back).
type Ints struct {
	mu      sync.Mutex
	classes [numClasses][][]int

	resident int64
	gets     int64
	misses   int64
}

// NewInts returns an empty int-buffer arena.
func NewInts() *Ints { return &Ints{} }

// Get returns an int buffer of length n (capacity rounded up to the size
// class). Contents are undefined. Get(0) returns nil.
func (a *Ints) Get(n int) []int {
	if n <= 0 {
		return nil
	}
	cls := class(n)
	a.mu.Lock()
	a.gets++
	list := a.classes[cls]
	if len(list) > 0 {
		b := list[len(list)-1]
		a.classes[cls] = list[:len(list)-1]
		a.resident -= int64(cap(b)) * 8
		a.mu.Unlock()
		return b[:n]
	}
	a.misses++
	a.mu.Unlock()
	return make([]int, n, 1<<cls)
}

// Put returns a buffer to the pool; buffers whose capacity is not a
// size-class width are dropped, mirroring Arena.Put.
func (a *Ints) Put(b []int) {
	c := cap(b)
	if c == 0 || c&(c-1) != 0 {
		return
	}
	cls := bits.Len(uint(c)) - 1
	a.mu.Lock()
	a.classes[cls] = append(a.classes[cls], b[:0])
	a.resident += int64(c) * 8
	a.mu.Unlock()
}

// Release drops every pooled buffer, handing the memory back to the GC.
func (a *Ints) Release() {
	a.mu.Lock()
	for i := range a.classes {
		a.classes[i] = nil
	}
	a.resident = 0
	a.mu.Unlock()
}

// Resident returns the bytes currently pooled.
func (a *Ints) Resident() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.resident
}

// Stats returns cumulative Get calls and the subset that had to allocate.
func (a *Ints) Stats() (gets, misses int64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.gets, a.misses
}
