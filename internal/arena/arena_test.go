package arena

import (
	"sync"
	"testing"
)

func TestGetPutReuse(t *testing.T) {
	a := New()
	b := a.Get(1000)
	if len(b) != 1000 || cap(b) != 1024 {
		t.Fatalf("Get(1000): len=%d cap=%d, want 1000/1024", len(b), cap(b))
	}
	for i := range b {
		b[i] = float32(i)
	}
	a.Put(b)
	if got := a.Resident(); got != 1024*4 {
		t.Fatalf("Resident after Put = %d, want %d", got, 1024*4)
	}
	c := a.Get(700) // same class → must reuse the pooled buffer
	if cap(c) != 1024 {
		t.Fatalf("reused cap = %d, want 1024", cap(c))
	}
	if gets, misses := a.Stats(); gets != 2 || misses != 1 {
		t.Fatalf("Stats = (%d,%d), want (2,1)", gets, misses)
	}
	if got := a.Resident(); got != 0 {
		t.Fatalf("Resident after reuse = %d, want 0", got)
	}
}

func TestGetZeroAndNilPut(t *testing.T) {
	a := New()
	if b := a.Get(0); b != nil {
		t.Fatalf("Get(0) = %v, want nil", b)
	}
	a.Put(nil)                   // no-op
	a.Put(make([]float32, 0, 3)) // non-power-of-two cap: dropped, not pooled
	if got := a.Resident(); got != 0 {
		t.Fatalf("Resident = %d after no-op Puts, want 0", got)
	}
}

func TestRelease(t *testing.T) {
	a := New()
	for i := 0; i < 8; i++ {
		a.Put(a.Get(512))
	}
	if a.Resident() == 0 {
		t.Fatal("expected pooled bytes before Release")
	}
	a.Release()
	if got := a.Resident(); got != 0 {
		t.Fatalf("Resident after Release = %d, want 0", got)
	}
}

// Steady state: once the pool is warm, Get/Put cycles never miss.
func TestSteadyStateNoMisses(t *testing.T) {
	a := New()
	sizes := []int{3, 64, 1000, 4096, 100000}
	for _, n := range sizes { // warm-up
		a.Put(a.Get(n))
	}
	_, missesWarm := a.Stats()
	for i := 0; i < 100; i++ {
		for _, n := range sizes {
			a.Put(a.Get(n))
		}
	}
	if _, misses := a.Stats(); misses != missesWarm {
		t.Fatalf("steady state missed %d times", misses-missesWarm)
	}
}

// The int pool mirrors the float32 arena's contract: size-classed reuse,
// stray-Put rejection, Release, and a miss-free warm steady state.
func TestIntsGetPutReuse(t *testing.T) {
	a := NewInts()
	b := a.Get(1000)
	if len(b) != 1000 || cap(b) != 1024 {
		t.Fatalf("Get(1000): len=%d cap=%d, want 1000/1024", len(b), cap(b))
	}
	a.Put(b)
	if got := a.Resident(); got != 1024*8 {
		t.Fatalf("Resident after Put = %d, want %d", got, 1024*8)
	}
	c := a.Get(700)
	if cap(c) != 1024 {
		t.Fatalf("reused cap = %d, want 1024", cap(c))
	}
	if gets, misses := a.Stats(); gets != 2 || misses != 1 {
		t.Fatalf("Stats = (%d,%d), want (2,1)", gets, misses)
	}
	if b := a.Get(0); b != nil {
		t.Fatalf("Get(0) = %v, want nil", b)
	}
	a.Put(nil)
	a.Put(make([]int, 0, 3)) // non-power-of-two cap: dropped
	a.Release()
	if got := a.Resident(); got != 0 {
		t.Fatalf("Resident after Release = %d, want 0", got)
	}
}

func TestIntsSteadyStateNoMisses(t *testing.T) {
	a := NewInts()
	sizes := []int{3, 64, 1000, 4096, 100000}
	for _, n := range sizes {
		a.Put(a.Get(n))
	}
	_, missesWarm := a.Stats()
	for i := 0; i < 100; i++ {
		for _, n := range sizes {
			a.Put(a.Get(n))
		}
	}
	if _, misses := a.Stats(); misses != missesWarm {
		t.Fatalf("steady state missed %d times", misses-missesWarm)
	}
}

// The arena serves every rank goroutine of a world concurrently.
func TestConcurrentAccess(t *testing.T) {
	a := New()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				b := a.Get(256)
				b[0] = 1
				a.Put(b)
			}
		}()
	}
	wg.Wait()
}
