// Package losscurve models validation-perplexity trajectories of GPT-family
// language models with a parameter-count + iteration scaling law. It stands
// in for the paper's Figure 5 (Turing-NLG 17B vs Megatron-LM 8.3B over 300K
// iterations): the figure's claim — the ZeRO-enabled 17B model reaches a
// lower perplexity than the previous 8.3B SOTA, ending near the record
// WebText-103 perplexity of 10.21 — is a consequence of the
// larger-models-reach-lower-loss scaling law, which this package encodes.
// The substitution is documented in DESIGN.md: we have neither the corpus
// nor 400 GPUs, but the ordering and asymptote structure are what the
// figure communicates.
package losscurve

import "math"

// Scaling-law calibration. Loss (nats/token) of an infinitely-trained
// N-parameter model: lossFloor + paramCoeff·N^(-paramExp), calibrated so
// 17B ≈ 2.32 nats (perplexity 10.2, Turing-NLG's record) and 8.3B ≈ 2.5
// nats (perplexity ≈ 12, Megatron-LM's result).
const (
	lossFloor  = 1.6
	paramExp   = 0.3
	paramCoeff = 845.0

	// Iteration decay: + iterCoeff·(1 + iter/iterScale)^(-iterExp).
	iterCoeff = 2.6
	iterExp   = 0.8
	iterScale = 2000.0
)

// Curve is the loss trajectory of one model size.
type Curve struct {
	Params int64 // parameter count
}

// AsymptoticLoss returns the converged validation loss in nats/token.
func (c Curve) AsymptoticLoss() float64 {
	return lossFloor + paramCoeff*math.Pow(float64(c.Params), -paramExp)
}

// Loss returns the validation loss after the given training iteration.
func (c Curve) Loss(iter int) float64 {
	if iter < 0 {
		panic("losscurve: negative iteration")
	}
	return c.AsymptoticLoss() + iterCoeff*math.Pow(1+float64(iter)/iterScale, -iterExp)
}

// Perplexity returns exp(Loss) at the given iteration — the metric of
// Figure 5's y-axis.
func (c Curve) Perplexity(iter int) float64 {
	return math.Exp(c.Loss(iter))
}

// Point is one sample of a perplexity trajectory.
type Point struct {
	Iter       int
	Perplexity float64
}

// Series samples the trajectory at `points` evenly spaced iterations up to
// maxIter inclusive.
func (c Curve) Series(maxIter, points int) []Point {
	if points < 2 {
		panic("losscurve: need at least two points")
	}
	out := make([]Point, points)
	for i := range out {
		it := i * maxIter / (points - 1)
		out[i] = Point{Iter: it, Perplexity: c.Perplexity(it)}
	}
	return out
}

// FitSlope returns the least-squares slope of a measured loss trajectory
// (loss units per step). Stochastic curves wobble step to step, so "the
// loss decreases" is asserted on the fitted trend rather than on adjacent
// samples; a healthy run has a clearly negative slope. Fewer than two
// points have no trend and return 0.
func FitSlope(losses []float64) float64 {
	n := float64(len(losses))
	if n < 2 {
		return 0
	}
	var sumX, sumY, sumXY, sumXX float64
	for i, y := range losses {
		x := float64(i)
		sumX += x
		sumY += y
		sumXY += x * y
		sumXX += x * x
	}
	denom := n*sumXX - sumX*sumX
	if denom == 0 {
		return 0
	}
	return (n*sumXY - sumX*sumY) / denom
}
