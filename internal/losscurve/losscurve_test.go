package losscurve

import (
	"testing"
	"testing/quick"
)

const (
	turingNLG = 17_000_000_000
	megatron  = 8_300_000_000
)

// Figure 5's headline: the 17B model's final perplexity lands at the
// record ~10.21 and below the 8.3B baseline at every iteration.
func TestTuringNLGBeatsMegatronEverywhere(t *testing.T) {
	big := Curve{Params: turingNLG}
	small := Curve{Params: megatron}
	for iter := 0; iter <= 300_000; iter += 10_000 {
		if big.Perplexity(iter) >= small.Perplexity(iter) {
			t.Fatalf("iter %d: 17B ppl %.2f not below 8.3B ppl %.2f",
				iter, big.Perplexity(iter), small.Perplexity(iter))
		}
	}
	final := big.Perplexity(300_000)
	if final < 9.5 || final > 11.5 {
		t.Errorf("17B final perplexity %.2f, want ≈10.21", final)
	}
	baseFinal := small.Perplexity(300_000)
	if baseFinal < 11 || baseFinal > 14 {
		t.Errorf("8.3B final perplexity %.2f, want ≈12-13", baseFinal)
	}
}

// Properties: perplexity decreases monotonically in iterations and in model
// size, and never crosses the floor.
func TestCurveProperties(t *testing.T) {
	f := func(pRaw uint32, i1, i2 uint16) bool {
		params := int64(pRaw)%int64(90e9) + int64(100e6)
		c := Curve{Params: params}
		a, b := int(i1), int(i2)
		if a > b {
			a, b = b, a
		}
		if b > a && c.Loss(b) > c.Loss(a) {
			return false
		}
		bigger := Curve{Params: params * 2}
		if bigger.Loss(a) >= c.Loss(a) {
			return false
		}
		return c.Loss(a) > lossFloor
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestSeriesShape(t *testing.T) {
	s := Curve{Params: turingNLG}.Series(300_000, 31)
	if len(s) != 31 || s[0].Iter != 0 || s[30].Iter != 300_000 {
		t.Fatalf("series endpoints wrong: %+v ... %+v", s[0], s[30])
	}
	for i := 1; i < len(s); i++ {
		if s[i].Perplexity >= s[i-1].Perplexity {
			t.Fatalf("series not strictly decreasing at %d", i)
		}
	}
}

// FitSlope recovers exact trends, tolerates noise-free flats, and signs
// measured-style noisy descents correctly.
func TestFitSlope(t *testing.T) {
	if got := FitSlope([]float64{5, 4, 3, 2, 1}); got != -1 {
		t.Errorf("exact line slope = %g, want -1", got)
	}
	if got := FitSlope([]float64{2, 2, 2, 2}); got != 0 {
		t.Errorf("flat slope = %g, want 0", got)
	}
	if got := FitSlope(nil); got != 0 {
		t.Errorf("empty slope = %g, want 0", got)
	}
	if got := FitSlope([]float64{7}); got != 0 {
		t.Errorf("single-point slope = %g, want 0", got)
	}
	// A descending trajectory with step-to-step wobble still fits negative.
	noisy := []float64{6.0, 5.6, 5.7, 5.1, 5.2, 4.8, 4.9, 4.4}
	if got := FitSlope(noisy); got >= 0 {
		t.Errorf("noisy descent slope = %g, want < 0", got)
	}
	// And the synthetic model curve itself fits negative.
	c := Curve{Params: 1e9}
	var tr []float64
	for i := 0; i < 50; i++ {
		tr = append(tr, c.Loss(i*100))
	}
	if got := FitSlope(tr); got >= 0 {
		t.Errorf("model curve slope = %g, want < 0", got)
	}
}

func TestValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on negative iteration")
		}
	}()
	Curve{Params: 1e9}.Loss(-1)
}
