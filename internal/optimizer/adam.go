// Package optimizer implements the training optimizers the paper's memory
// analysis is built around: Adam with fp32 state (the K=12 memory
// multiplier of §3.1), momentum SGD, and the mixed-precision machinery
// (fp32 master weights, dynamic loss scaling) whose state ZeRO partitions.
package optimizer

import (
	"math"

	"repro/internal/comm"
	"repro/internal/tensor"
)

// AdamK is the mixed-precision Adam memory multiplier: per parameter, the
// optimizer holds an fp32 master copy (4 bytes), fp32 momentum (4) and fp32
// variance (4) — K = 12 bytes on top of the 2-byte fp16 parameter and
// 2-byte fp16 gradient (§3.1).
const AdamK = 12

// Adam is the Adam optimizer over a flat parameter slice (or any shard of
// one — ZeRO ranks instantiate Adam over just their partition, which is
// exactly how Pos shrinks optimizer memory by Nd).
type Adam struct {
	LR          float64
	Beta1       float64
	Beta2       float64
	Eps         float64
	WeightDecay float64

	m, v []float32 // first/second moment estimates
	t    int       // step count for bias correction
}

// NewAdam creates an Adam instance managing n parameters with the standard
// hyperparameters (β1=0.9, β2=0.999, ε=1e-8).
func NewAdam(n int, lr float64) *Adam {
	return &Adam{
		LR:    lr,
		Beta1: 0.9,
		Beta2: 0.999,
		Eps:   1e-8,
		m:     make([]float32, n),
		v:     make([]float32, n),
	}
}

// Len returns the number of parameters this instance manages.
func (a *Adam) Len() int { return len(a.m) }

// StateBytes returns the optimizer-state footprint in bytes (fp32 momentum
// + variance; the fp32 master copy is accounted by the caller).
func (a *Adam) StateBytes() int64 { return int64(len(a.m)) * 2 * tensor.BytesPerFloat32 }

// Step applies one Adam update to params given grads. Both slices must have
// length Len(). The update is elementwise and deterministic, so a
// partitioned step over shards composes to exactly the full-buffer step —
// the invariant ZeRO-DP relies on.
func (a *Adam) Step(params, grads []float32) {
	if len(params) != len(a.m) || len(grads) != len(a.m) {
		panic("optimizer: Adam.Step length mismatch")
	}
	a.t++
	bc1 := 1 - math.Pow(a.Beta1, float64(a.t))
	bc2 := 1 - math.Pow(a.Beta2, float64(a.t))
	b1 := float32(a.Beta1)
	b2 := float32(a.Beta2)
	for i, g := range grads {
		if a.WeightDecay != 0 {
			g += float32(a.WeightDecay) * params[i]
		}
		a.m[i] = b1*a.m[i] + (1-b1)*g
		a.v[i] = b2*a.v[i] + (1-b2)*g*g
		mhat := float64(a.m[i]) / bc1
		vhat := float64(a.v[i]) / bc2
		params[i] -= float32(a.LR * mhat / (math.Sqrt(vhat) + a.Eps))
	}
}

// Steps returns the number of updates applied so far.
func (a *Adam) Steps() int { return a.t }

// State exposes the live momentum and variance buffers, in that order.
// Checkpointing gathers these across ZeRO shards; mutate only when
// restoring.
func (a *Adam) State() [][]float32 { return [][]float32{a.m, a.v} }

// Restore overwrites the optimizer state (momentum, variance, step count),
// e.g. when resuming from a checkpoint. The shape must match State()'s.
func (a *Adam) Restore(state [][]float32, steps int) {
	if len(state) != 2 || len(state[0]) != len(a.m) || len(state[1]) != len(a.v) {
		panic("optimizer: Adam.Restore shape mismatch")
	}
	copy(a.m, state[0])
	copy(a.v, state[1])
	a.t = steps
}

// GlobalGradNorm computes the L2 norm of a gradient vector from
// partition-wise partial sums accumulated in a fixed order. Both the
// replicated (DDP) and partitioned (ZeRO) engines compute the norm through
// this exact arithmetic — float64 accumulation per partition, float32
// partials summed in partition order — so gradient clipping stays bitwise
// identical across them.
func GlobalGradNorm(partials []float32) float64 {
	var total float32
	for _, p := range partials {
		total += p
	}
	return math.Sqrt(float64(total))
}

// PartialSquaredSum returns the float32 partial Σg² of one partition.
func PartialSquaredSum(g []float32) float32 {
	var s float64
	for _, v := range g {
		s += float64(v) * float64(v)
	}
	return float32(s)
}

// PartitionSquaredSums computes every partition's partial Σg² from a full
// gradient buffer — the replicated (stage 0) counterpart of each
// partitioned rank contributing PartialSquaredSum over its own shard and
// all-gathering the rest. Both paths feed GlobalGradNorm the identical
// partition-ordered partials, which is what keeps gradient clipping
// bitwise-equal across every ZeRO stage.
func PartitionSquaredSums(g []float32, parts []comm.Range) []float32 {
	partials := make([]float32, len(parts))
	PartitionSquaredSumsInto(partials, g, parts)
	return partials
}

// PartitionSquaredSumsInto is PartitionSquaredSums into a caller-owned
// buffer (len(parts) long) — the allocation-free form the trainer's
// steady-state clipping path uses.
func PartitionSquaredSumsInto(dst []float32, g []float32, parts []comm.Range) {
	if len(dst) != len(parts) {
		panic("optimizer: PartitionSquaredSumsInto length mismatch")
	}
	for i, p := range parts {
		dst[i] = PartialSquaredSum(g[p.Lo:p.Hi])
	}
}

// ClipScale returns the multiplier that caps the gradient norm at maxNorm
// (1 when already within bounds).
func ClipScale(norm, maxNorm float64) float32 {
	if maxNorm <= 0 || norm <= maxNorm || norm == 0 {
		return 1
	}
	return float32(maxNorm / norm)
}

// SGD is momentum SGD, the low-memory baseline the paper contrasts with
// adaptive optimizers (§2.3).
type SGD struct {
	LR       float64
	Momentum float64
	buf      []float32
	t        int
}

// NewSGD creates a momentum-SGD instance managing n parameters.
func NewSGD(n int, lr, momentum float64) *SGD {
	return &SGD{LR: lr, Momentum: momentum, buf: make([]float32, n)}
}

// Len returns the number of parameters this instance manages.
func (s *SGD) Len() int { return len(s.buf) }

// Step applies one SGD update.
func (s *SGD) Step(params, grads []float32) {
	if len(params) != len(s.buf) || len(grads) != len(s.buf) {
		panic("optimizer: SGD.Step length mismatch")
	}
	s.t++
	mu := float32(s.Momentum)
	lr := float32(s.LR)
	for i, g := range grads {
		s.buf[i] = mu*s.buf[i] + g
		params[i] -= lr * s.buf[i]
	}
}

// Steps returns the number of updates applied so far.
func (s *SGD) Steps() int { return s.t }

// StateBytes returns the SGD state footprint (one fp32 buffer).
func (s *SGD) StateBytes() int64 { return int64(len(s.buf)) * tensor.BytesPerFloat32 }

// State exposes the live momentum buffer.
func (s *SGD) State() [][]float32 { return [][]float32{s.buf} }

// Restore overwrites the momentum buffer and step count.
func (s *SGD) Restore(state [][]float32, steps int) {
	if len(state) != 1 || len(state[0]) != len(s.buf) {
		panic("optimizer: SGD.Restore shape mismatch")
	}
	copy(s.buf, state[0])
	s.t = steps
}
