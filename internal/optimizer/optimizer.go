package optimizer

import (
	"fmt"
	"strings"
)

// Optimizer is the trainer-facing contract every training optimizer
// implements. ZeRO instantiates one Optimizer per rank over that rank's
// partition of the flat parameter space (the full buffer at stage 0); the
// update must be deterministic and shard-composable — a partitioned step
// over disjoint shards equals the full-buffer step bitwise, the invariant
// §5.1 relies on. Adam, momentum SGD and LAMB all satisfy it: Adam and SGD
// are elementwise, and LAMB's trust-ratio blocks are clipped to tensor
// boundaries so no block ever spans two shards' worth of differing state.
type Optimizer interface {
	// Step applies one update to params given grads; both slices must have
	// length Len().
	Step(params, grads []float32)
	// Len returns the number of parameters this instance manages.
	Len() int
	// Steps returns the number of updates applied so far.
	Steps() int
	// StateBytes returns the optimizer-state footprint in bytes (the KΨ/Nd
	// term of the §3.1 accounting, minus the fp32 master copy which the
	// caller accounts).
	StateBytes() int64
	// State exposes the live state tensors in a fixed per-kind order, each
	// of length Len(). Checkpointing gathers these across ZeRO shards;
	// mutate only when restoring.
	State() [][]float32
	// Restore overwrites the optimizer state and step count, e.g. when
	// resuming from a checkpoint. The slice count and lengths must match
	// State()'s shape.
	Restore(state [][]float32, steps int)
}

// Kind names a config-selectable optimizer family.
type Kind string

const (
	// KindAdam is mixed-precision Adam, the K=12 optimizer of §3.1.
	KindAdam Kind = "adam"
	// KindSGD is momentum SGD, the low-memory baseline of §2.3.
	KindSGD Kind = "sgd"
	// KindLAMB is the layer-wise adaptive large-batch optimizer ([22],
	// §2.3's "more complex and memory hungry" family ZeRO makes practical).
	KindLAMB Kind = "lamb"
)

// ParseKind converts a user-facing optimizer name into a Kind; the empty
// string defaults to Adam (the paper's optimizer).
func ParseKind(s string) (Kind, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "adam":
		return KindAdam, nil
	case "sgd", "momentum":
		return KindSGD, nil
	case "lamb":
		return KindLAMB, nil
	}
	return "", fmt.Errorf("optimizer: unknown kind %q (want adam, sgd or lamb)", s)
}

// Spec is a declarative optimizer selection: the one struct engine configs
// compile down to, so every entry point constructs optimizers through the
// same switch instead of hand-picking constructors.
type Spec struct {
	Kind        Kind
	LR          float64
	Momentum    float64 // SGD only (0.9 when zero)
	WeightDecay float64 // Adam/LAMB decoupled decay
}

// New constructs the optimizer sp describes over n parameters. An empty
// Kind means Adam.
func New(sp Spec, n int) (Optimizer, error) {
	kind, err := ParseKind(string(sp.Kind))
	if err != nil {
		return nil, err
	}
	switch kind {
	case KindAdam:
		a := NewAdam(n, sp.LR)
		a.WeightDecay = sp.WeightDecay
		return a, nil
	case KindSGD:
		mu := sp.Momentum
		if mu == 0 {
			mu = 0.9
		}
		return NewSGD(n, sp.LR, mu), nil
	case KindLAMB:
		l := NewLAMB(n, sp.LR)
		l.WeightDecay = sp.WeightDecay
		return l, nil
	}
	return nil, fmt.Errorf("optimizer: unknown kind %q", kind)
}
