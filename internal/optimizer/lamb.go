package optimizer

import (
	"math"

	"repro/internal/tensor"
)

// LAMB is the layer-wise adaptive large-batch optimizer (You et al., cited
// by the paper as [22]). It keeps the same 2×fp32 state as Adam but adds a
// per-block trust ratio ‖w‖/‖update‖, making very large global batches
// trainable — exactly the "more complex and memory hungry optimizers" §2.3
// says ZeRO makes practical, since its state partitions the same way
// Adam's does.
type LAMB struct {
	LR          float64
	Beta1       float64
	Beta2       float64
	Eps         float64
	WeightDecay float64

	m, v []float32
	t    int
}

// NewLAMB creates a LAMB instance managing n parameters.
func NewLAMB(n int, lr float64) *LAMB {
	return &LAMB{
		LR:    lr,
		Beta1: 0.9,
		Beta2: 0.999,
		Eps:   1e-6,
		m:     make([]float32, n),
		v:     make([]float32, n),
	}
}

// Len returns the number of parameters this instance manages.
func (l *LAMB) Len() int { return len(l.m) }

// StateBytes returns the optimizer-state footprint (identical to Adam's).
func (l *LAMB) StateBytes() int64 { return int64(len(l.m)) * 2 * tensor.BytesPerFloat32 }

// Step applies one LAMB update, treating the whole managed slice as one
// trust-ratio block. ZeRO shards call StepBlocks with per-tensor segments
// to keep layer-wise semantics.
func (l *LAMB) Step(params, grads []float32) {
	l.StepBlocks(params, grads, []int{0, len(params)})
}

// StepBlocks applies one LAMB update with trust ratios computed per block;
// bounds is a sorted offset list (len = #blocks+1) delimiting the blocks
// (typically tensor boundaries from model.Layout clipped to the shard).
func (l *LAMB) StepBlocks(params, grads []float32, bounds []int) {
	if len(bounds) < 2 || bounds[0] != 0 || bounds[len(bounds)-1] != len(params) {
		panic("optimizer: LAMB.StepBlocks bounds must cover the slice")
	}
	update := make([]float32, len(params))
	l.PrepareUpdate(params, grads, update)
	for bi := 0; bi+1 < len(bounds); bi++ {
		lo, hi := bounds[bi], bounds[bi+1]
		if lo == hi {
			continue
		}
		wNorm := tensor.Norm2(params[lo:hi])
		uNorm := tensor.Norm2(update[lo:hi])
		l.ApplyBlock(params, update, lo, hi, TrustRatio(wNorm, uNorm))
	}
}

// PrepareUpdate advances the moment estimates and writes the raw
// pre-trust-ratio update (Adam direction plus decoupled weight decay) into
// update. It is the elementwise, shard-composable half of a LAMB step; the
// caller chooses how block norms are aggregated before ApplyBlock — the
// hook ZeRO trainers use to compute trust ratios over FULL tensors from
// partition-ordered partial norms, keeping the update identical at every
// partitioning stage.
func (l *LAMB) PrepareUpdate(params, grads, update []float32) {
	if len(params) != len(l.m) || len(grads) != len(l.m) || len(update) != len(l.m) {
		panic("optimizer: LAMB.PrepareUpdate length mismatch")
	}
	l.t++
	bc1 := 1 - math.Pow(l.Beta1, float64(l.t))
	bc2 := 1 - math.Pow(l.Beta2, float64(l.t))
	b1 := float32(l.Beta1)
	b2 := float32(l.Beta2)
	for i, g := range grads {
		l.m[i] = b1*l.m[i] + (1-b1)*g
		l.v[i] = b2*l.v[i] + (1-b2)*g*g
		mhat := float64(l.m[i]) / bc1
		vhat := float64(l.v[i]) / bc2
		u := mhat/(math.Sqrt(vhat)+l.Eps) + l.WeightDecay*float64(params[i])
		update[i] = float32(u)
	}
}

// ApplyBlock applies params[lo:hi] -= lr·trust·update[lo:hi].
func (l *LAMB) ApplyBlock(params, update []float32, lo, hi int, trust float64) {
	scale := float32(l.LR * trust)
	for i := lo; i < hi; i++ {
		params[i] -= scale * update[i]
	}
}

// TrustRatio is LAMB's ‖w‖/‖update‖ with the degenerate cases (fresh or
// empty tensors) pinned to 1.
func TrustRatio(wNorm, uNorm float64) float64 {
	if wNorm > 0 && uNorm > 0 {
		return wNorm / uNorm
	}
	return 1
}

// Steps returns the number of updates applied so far.
func (l *LAMB) Steps() int { return l.t }

// State exposes the live momentum and variance buffers, in that order.
func (l *LAMB) State() [][]float32 { return [][]float32{l.m, l.v} }

// Restore overwrites the optimizer state and step count.
func (l *LAMB) Restore(state [][]float32, steps int) {
	if len(state) != 2 || len(state[0]) != len(l.m) || len(state[1]) != len(l.v) {
		panic("optimizer: LAMB.Restore shape mismatch")
	}
	copy(l.m, state[0])
	copy(l.v, state[1])
	l.t = steps
}
