package optimizer

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

func TestLAMBConvergesOnQuadratic(t *testing.T) {
	n := 8
	target := make([]float32, n)
	for i := range target {
		target[i] = float32(i)*0.5 - 2
	}
	x := make([]float32, n)
	tensor.Fill(x, 1) // non-zero start so trust ratios are defined
	l := NewLAMB(n, 0.02)
	g := make([]float32, n)
	for step := 0; step < 6000; step++ {
		for i := range g {
			g[i] = 2 * (x[i] - target[i])
		}
		if step == 3000 {
			l.LR = 0.002 // decay: the trust ratio keeps steps ∝ ‖w‖, so anneal to land
		}
		l.Step(x, g)
	}
	if d := tensor.MaxDiff(x, target); d > 5e-2 {
		t.Errorf("LAMB did not converge: max |x-c| = %g", d)
	}
}

// The trust ratio scales the update by ‖w‖/‖u‖: doubling the weights (same
// gradient direction) must double the applied step.
func TestLAMBTrustRatioScalesWithWeightNorm(t *testing.T) {
	grad := []float32{1, 1, 1, 1}

	small := NewLAMB(4, 0.1)
	ws := []float32{1, 1, 1, 1}
	wsBefore := append([]float32(nil), ws...)
	small.Step(ws, grad)

	big := NewLAMB(4, 0.1)
	wb := []float32{2, 2, 2, 2}
	wbBefore := append([]float32(nil), wb...)
	big.Step(wb, grad)

	ds := float64(wsBefore[0] - ws[0])
	db := float64(wbBefore[0] - wb[0])
	if math.Abs(db/ds-2) > 1e-3 {
		t.Errorf("trust ratio: big/small step ratio %v, want 2", db/ds)
	}
}

// Per-block trust ratios: partitioned LAMB over tensor-aligned blocks must
// equal full LAMB with the same block boundaries (the ZeRO sharding
// invariant for LAMB).
func TestPartitionedLAMBEqualsFullLAMB(t *testing.T) {
	const n, steps = 64, 10
	bounds := []int{0, 16, 48, 64} // three "tensors"
	r := rand.New(rand.NewSource(2))
	full := make([]float32, n)
	for i := range full {
		full[i] = float32(r.NormFloat64()) + 2
	}
	sharded := append([]float32(nil), full...)

	fullOpt := NewLAMB(n, 0.01)
	// Shards split at a block boundary (16): LAMB shards must align with
	// tensor blocks for the trust ratio to partition cleanly.
	shardA := NewLAMB(16, 0.01)
	shardB := NewLAMB(48, 0.01)

	grads := make([]float32, n)
	for s := 0; s < steps; s++ {
		for i := range grads {
			grads[i] = float32(r.NormFloat64())
		}
		fullOpt.StepBlocks(full, grads, bounds)
		shardA.StepBlocks(sharded[:16], grads[:16], []int{0, 16})
		shardB.StepBlocks(sharded[16:], grads[16:], []int{0, 32, 48})
	}
	for i := range full {
		if full[i] != sharded[i] {
			t.Fatalf("partitioned LAMB diverged at %d: %v vs %v", i, full[i], sharded[i])
		}
	}
}

func TestLAMBStateAccounting(t *testing.T) {
	l := NewLAMB(100, 0.1)
	if l.StateBytes() != 800 {
		t.Errorf("StateBytes = %d, want 800 (same 2x fp32 as Adam)", l.StateBytes())
	}
	if l.Len() != 100 {
		t.Errorf("Len = %d", l.Len())
	}
}

func TestLAMBValidation(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	mustPanic("length", func() { NewLAMB(2, 0.1).Step(make([]float32, 3), make([]float32, 3)) })
	mustPanic("bounds", func() {
		NewLAMB(4, 0.1).StepBlocks(make([]float32, 4), make([]float32, 4), []int{0, 2})
	})
}
