package optimizer

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/comm"
	"repro/internal/tensor"
)

// TestAdamFirstStepHandComputed checks the very first update against the
// closed form: with zero state, m̂ = g, v̂ = g², so Δ = lr·g/(|g|+ε) ≈
// lr·sign(g).
func TestAdamFirstStepHandComputed(t *testing.T) {
	a := NewAdam(3, 0.1)
	params := []float32{1, 2, -3}
	grads := []float32{0.5, -2, 0.001}
	want := make([]float32, 3)
	for i := range want {
		g := float64(grads[i])
		want[i] = params[i] - float32(0.1*g/(math.Sqrt(g*g)+1e-8))
	}
	a.Step(params, grads)
	for i := range want {
		if math.Abs(float64(params[i]-want[i])) > 1e-6 {
			t.Errorf("param[%d] = %v, want %v", i, params[i], want[i])
		}
	}
	if a.Steps() != 1 {
		t.Errorf("Steps() = %d", a.Steps())
	}
}

// TestAdamConvergesOnQuadratic minimizes f(x) = Σ(x-c)² and expects x → c.
func TestAdamConvergesOnQuadratic(t *testing.T) {
	n := 8
	target := make([]float32, n)
	for i := range target {
		target[i] = float32(i) - 3.5
	}
	x := make([]float32, n)
	a := NewAdam(n, 0.05)
	g := make([]float32, n)
	for step := 0; step < 2000; step++ {
		for i := range g {
			g[i] = 2 * (x[i] - target[i])
		}
		a.Step(x, g)
	}
	if d := tensor.MaxDiff(x, target); d > 1e-2 {
		t.Errorf("Adam did not converge: max |x-c| = %g", d)
	}
}

// TestPartitionedAdamEqualsFullAdam is the key ZeRO invariant (§5.1): N
// Adam instances, each owning a disjoint shard, must produce bitwise the
// same trajectory as one Adam over the whole buffer.
func TestPartitionedAdamEqualsFullAdam(t *testing.T) {
	const n, parts, steps = 103, 4, 25
	r := rand.New(rand.NewSource(1))

	full := make([]float32, n)
	for i := range full {
		full[i] = float32(r.NormFloat64())
	}
	sharded := append([]float32(nil), full...)

	fullOpt := NewAdam(n, 0.01)
	bounds := make([]int, parts+1)
	for p := 1; p <= parts; p++ {
		bounds[p] = p * n / parts
	}
	shardOpts := make([]*Adam, parts)
	for p := range shardOpts {
		shardOpts[p] = NewAdam(bounds[p+1]-bounds[p], 0.01)
	}

	grads := make([]float32, n)
	for s := 0; s < steps; s++ {
		for i := range grads {
			grads[i] = float32(r.NormFloat64())
		}
		fullOpt.Step(full, grads)
		for p := 0; p < parts; p++ {
			shardOpts[p].Step(sharded[bounds[p]:bounds[p+1]], grads[bounds[p]:bounds[p+1]])
		}
	}
	for i := range full {
		if full[i] != sharded[i] {
			t.Fatalf("partitioned Adam diverged at %d: %v vs %v", i, full[i], sharded[i])
		}
	}
}

func TestAdamWeightDecay(t *testing.T) {
	a := NewAdam(1, 0.1)
	a.WeightDecay = 0.1
	params := []float32{10}
	// Zero gradient: only decay drives the update, pulling toward zero.
	for i := 0; i < 50; i++ {
		a.Step(params, []float32{0})
	}
	if params[0] >= 10 || params[0] < 0 {
		t.Errorf("weight decay should shrink the parameter: %v", params[0])
	}
}

func TestSGDMomentum(t *testing.T) {
	s := NewSGD(1, 0.1, 0.9)
	params := []float32{0}
	s.Step(params, []float32{1})
	if params[0] != -0.1 {
		t.Errorf("first step %v, want -0.1", params[0])
	}
	s.Step(params, []float32{1})
	// buf = 0.9*1 + 1 = 1.9 → Δ = 0.19.
	if math.Abs(float64(params[0])+0.29) > 1e-6 {
		t.Errorf("second step %v, want -0.29", params[0])
	}
}

func TestStepLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewAdam(2, 0.1).Step(make([]float32, 3), make([]float32, 3))
}

func TestLossScalerDynamics(t *testing.T) {
	s := NewLossScaler()
	s.GrowthInterval = 3
	start := s.Scale
	// Overflow halves the scale and requests a skip.
	if !s.Update(true) {
		t.Error("overflow must skip")
	}
	if s.Scale != start/2 {
		t.Errorf("scale after backoff %v, want %v", s.Scale, start/2)
	}
	// Three clean steps double it.
	for i := 0; i < 3; i++ {
		if s.Update(false) {
			t.Error("clean step must not skip")
		}
	}
	if s.Scale != start {
		t.Errorf("scale after growth %v, want %v", s.Scale, start)
	}
	if s.Skips() != 1 {
		t.Errorf("Skips() = %d", s.Skips())
	}
}

func TestLossScalerFloorsAtOne(t *testing.T) {
	s := NewLossScaler()
	for i := 0; i < 64; i++ {
		s.Update(true)
	}
	if s.Scale < 1 {
		t.Errorf("scale fell below 1: %v", s.Scale)
	}
}

func TestMixedPrecisionStepAndSkip(t *testing.T) {
	mp := NewMixedPrecision(4, 0.1)
	mp.SetMaster([]float32{1, 2, 3, 4})
	scale := float32(mp.Scaler.Scale)

	// A clean scaled gradient applies and refreshes the fp16 mirror.
	grads := []float32{scale * 0.1, scale * -0.2, 0, scale * 0.3}
	if !mp.Step(grads) {
		t.Fatal("clean step was skipped")
	}
	if mp.Master[0] >= 1 {
		t.Error("master weight did not move")
	}
	for i, h := range mp.Half {
		if got, want := h.Float32(), mp.Master[i]; math.Abs(float64(got-want)) > 1e-2 {
			t.Errorf("fp16 mirror[%d] = %v, master %v", i, got, want)
		}
	}

	// An Inf gradient skips the step and leaves weights untouched.
	before := append([]float32(nil), mp.Master...)
	bad := []float32{float32(math.Inf(1)), 0, 0, 0}
	if mp.Step(bad) {
		t.Error("overflow step was applied")
	}
	if d := tensor.MaxDiff(before, mp.Master); d != 0 {
		t.Errorf("weights changed on skipped step: %g", d)
	}
	if mp.Scaler.Skips() != 1 {
		t.Errorf("Skips = %d", mp.Scaler.Skips())
	}
}

// The §3.1 accounting: a shard of n parameters holds (2+2+K)·n bytes of
// model state, K=12 for mixed-precision Adam.
func TestModelStateBytesAccounting(t *testing.T) {
	const n = 1000
	mp := NewMixedPrecision(n, 0.1)
	if got, want := mp.ModelStateBytes(), int64(n*16); got != want {
		t.Errorf("ModelStateBytes = %d, want %d (16 bytes/param)", got, want)
	}
	if got, want := mp.Opt.StateBytes(), int64(n*8); got != want {
		t.Errorf("Adam StateBytes = %d, want %d", got, want)
	}
	if AdamK != 12 {
		t.Errorf("AdamK = %d, the paper's K is 12", AdamK)
	}
}

// The replicated (stage 0) and partitioned norm paths must produce the
// identical partial vector: PartitionSquaredSums over the full buffer
// equals per-shard PartialSquaredSum in partition order.
func TestPartitionSquaredSumsMatchesShardPartials(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	g := make([]float32, 1003)
	for i := range g {
		g[i] = float32(r.NormFloat64())
	}
	parts := comm.Partition(len(g), 4)
	full := PartitionSquaredSums(g, parts)
	for i, p := range parts {
		if shard := PartialSquaredSum(g[p.Lo:p.Hi]); shard != full[i] {
			t.Errorf("partition %d: %v != %v", i, full[i], shard)
		}
	}
	if GlobalGradNorm(full) <= 0 {
		t.Error("norm should be positive")
	}
}
