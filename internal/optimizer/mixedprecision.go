package optimizer

import (
	"repro/internal/tensor"
)

// LossScaler implements dynamic loss scaling for fp16 training: the loss is
// multiplied by Scale before backward so small gradients survive fp16
// underflow; gradients are unscaled before the optimizer step; on overflow
// (Inf/NaN gradients) the step is skipped and the scale backed off, and
// after GrowthInterval clean steps the scale doubles.
type LossScaler struct {
	Scale          float64
	GrowthFactor   float64
	BackoffFactor  float64
	GrowthInterval int

	goodSteps int
	skips     int
}

// NewLossScaler returns a scaler with the conventional defaults
// (initial 2^16, ×2 growth every 1000 clean steps, ×0.5 backoff).
func NewLossScaler() *LossScaler {
	return &LossScaler{Scale: 65536, GrowthFactor: 2, BackoffFactor: 0.5, GrowthInterval: 1000}
}

// Update records the overflow status of a step and adjusts the scale.
// It returns true when the step must be skipped.
func (s *LossScaler) Update(overflow bool) (skip bool) {
	if overflow {
		s.Scale *= s.BackoffFactor
		if s.Scale < 1 {
			s.Scale = 1
		}
		s.goodSteps = 0
		s.skips++
		return true
	}
	s.goodSteps++
	if s.goodSteps >= s.GrowthInterval {
		s.Scale *= s.GrowthFactor
		s.goodSteps = 0
	}
	return false
}

// Skips returns the number of overflow-skipped steps so far.
func (s *LossScaler) Skips() int { return s.skips }

// MixedPrecision couples an fp32 master parameter shard with its fp16
// mirror, reproducing the §3.1 memory layout: 2Ψ fp16 parameters + 2Ψ fp16
// gradients live on every rank (or shard), while the 4Ψ master + 8Ψ Adam
// state are what ZeRO partitions.
type MixedPrecision struct {
	Master []float32         // fp32 master weights (authoritative)
	Half   tensor.HalfBuffer // fp16 working copy used by forward/backward
	Opt    *Adam
	Scaler *LossScaler

	unscaled []float32 // per-step unscale scratch, reused across steps
}

// NewMixedPrecision wraps n parameters.
func NewMixedPrecision(n int, lr float64) *MixedPrecision {
	return &MixedPrecision{
		Master: make([]float32, n),
		Half:   tensor.NewHalfBuffer(n),
		Opt:    NewAdam(n, lr),
		Scaler: NewLossScaler(),
	}
}

// SetMaster initializes the master weights and refreshes the fp16 mirror.
func (mp *MixedPrecision) SetMaster(w []float32) {
	tensor.Copy(mp.Master, w)
	mp.Half.FromFloats(mp.Master)
}

// Step unscales grads (which were produced from a loss multiplied by
// Scaler.Scale), checks for overflow, and either applies Adam to the master
// weights and refreshes the fp16 mirror, or skips the step. Returns whether
// the step was applied.
func (mp *MixedPrecision) Step(scaledGrads []float32) bool {
	inv := float32(1 / mp.Scaler.Scale)
	if cap(mp.unscaled) < len(scaledGrads) {
		mp.unscaled = make([]float32, len(scaledGrads))
	}
	unscaled := mp.unscaled[:len(scaledGrads)]
	for i, g := range scaledGrads {
		unscaled[i] = g * inv
	}
	overflow := tensor.HasNaNOrInf(unscaled)
	if mp.Scaler.Update(overflow) {
		return false
	}
	mp.Opt.Step(mp.Master, unscaled)
	mp.Half.FromFloats(mp.Master)
	return true
}

// ModelStateBytes returns this shard's model-state footprint: fp16 params +
// fp16 grads + K·fp32 state, i.e. (2+2+K) bytes per parameter — the 16Ψ of
// §3.1 when unpartitioned.
func (mp *MixedPrecision) ModelStateBytes() int64 {
	n := int64(len(mp.Master))
	return n*(tensor.BytesPerHalf+tensor.BytesPerHalf) + n*AdamK
}
