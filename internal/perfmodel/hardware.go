// Package perfmodel is the analytic performance model standing in for the
// paper's 400×V100 testbed (25 DGX-2 nodes, 800 Gbps inter-node).
//
// The model estimates per-step time as compute + exposed communication for a
// given (model shape, MP degree, DP degree, micro-batch, ZeRO configuration)
// and reports TFlops/GPU, the metric of Figures 2, 3, 4 and 8. Absolute
// numbers depend on calibration constants documented below, but the figure
// *shapes* the paper reports fall out of first-order hardware ratios the
// model encodes:
//
//   - Megatron MP collapses once the MP group crosses a node boundary
//     (NVSwitch 300 GB/s/link → InfiniBand 12.5 GB/s/link, §10.2);
//   - ZeRO-DP's communication stays on the slow inter-node links but is
//     amortized over the whole step and grows with Ψ, not with MP volume;
//   - larger per-GPU batches raise arithmetic intensity and therefore
//     efficiency — the superlinearity driver of Figure 3 (§10.3).
package perfmodel

// Hardware describes one cluster profile. All bandwidths are effective
// per-GPU collective bandwidths in bytes/second.
type Hardware struct {
	// PeakFlopsPerGPU is the fp16 tensor-core peak (V100: 125 TFlops).
	PeakFlopsPerGPU float64
	// GPUMemory is the per-device memory in bytes (V100: 32 GB).
	GPUMemory int64
	// GPUsPerNode is the node width (DGX-2: 16).
	GPUsPerNode int
	// IntraNodeBW is the per-GPU collective bandwidth inside a node
	// (NVSwitch; the paper quotes 300 GB/s per link, ~150 GB/s effective
	// for ring collectives).
	IntraNodeBW float64
	// InterNodeBWPerGPU is each GPU's share of the node uplink
	// (800 Gbps = 100 GB/s per node / 16 GPUs = 6.25 GB/s).
	InterNodeBWPerGPU float64
	// PCIeBW is the host-device bandwidth used by Pa+cpu offload.
	PCIeBW float64
	// MaxEfficiency is the fraction of peak a perfectly-shaped kernel
	// stream achieves end to end (kernel launch overheads, non-GEMM ops).
	MaxEfficiency float64
}

// DGX2 returns the paper's testbed profile: 25 DGX-2 nodes of 16 V100-32GB,
// 800 Gbps inter-node.
func DGX2() Hardware {
	return Hardware{
		PeakFlopsPerGPU:   125e12,
		GPUMemory:         32 << 30,
		GPUsPerNode:       16,
		IntraNodeBW:       150e9,
		InterNodeBWPerGPU: 6.25e9,
		PCIeBW:            12e9,
		MaxEfficiency:     0.52,
	}
}

// Calibration constants for the efficiency model. granHalf is the
// column-parallel output width (4h/MP) at which GEMM efficiency reaches half
// of its ceiling; tokensHalf is the per-replica token count with the same
// role for batch-driven arithmetic intensity.
const (
	granHalf   = 780.0
	tokensHalf = 4000.0
)

// Efficiency returns the fraction of peak flops achieved for GEMMs of a
// transformer with hidden size h split MP ways, at batch·seq tokens per
// replica. Both factors saturate: big weight shards and big batches
// approach MaxEfficiency, tiny shards (high MP) and tiny batches starve the
// device — the granularity insight of §4.1(a).
func (hw Hardware) Efficiency(hidden, mp, batch, seq int) float64 {
	shard := 4 * float64(hidden) / float64(mp)
	gran := shard / (shard + granHalf)
	tokens := float64(batch) * float64(seq)
	util := tokens / (tokens + tokensHalf)
	return hw.MaxEfficiency * gran * util
}

// MPBandwidth returns the effective per-GPU bandwidth for a model-parallel
// group of the given degree: NVSwitch while the group fits in one node, the
// inter-node share once it spans nodes.
func (hw Hardware) MPBandwidth(mp int) float64 {
	if mp <= hw.GPUsPerNode {
		return hw.IntraNodeBW
	}
	return hw.InterNodeBWPerGPU
}

// DPBandwidth returns the effective per-GPU bandwidth for the data-parallel
// group. Cross-node DP collectives are hierarchical (NCCL-style): an
// intra-node reduce-scatter concentrates each GPU's share, then only Ψ/16
// per GPU crosses the node uplink. The effective bandwidth is the harmonic
// combination of the intra-node stage and the full node uplink,
// 1/(1/intra + 1/(interPerGPU·gpusPerNode)) ≈ 60 GB/s on the DGX-2 profile
// — which is why DP communication, unlike flat MP all-reduces, survives the
// node boundary (insight §4.1a). It is the large-(S,M) limit of
// HierarchicalDPBandwidth; the runtime's measured intra/inter split
// validates both (see SplitDPBandwidth and the perfmodel tests).
func (hw Hardware) DPBandwidth(mp, dp int) float64 {
	if mp*dp <= hw.GPUsPerNode {
		return hw.IntraNodeBW
	}
	nodeUplink := hw.InterNodeBWPerGPU * float64(hw.GPUsPerNode)
	return 1 / (1/hw.IntraNodeBW + 1/nodeUplink)
}

// HierarchicalSplit predicts the per-rank traffic split of one two-level
// collective pass (a hierarchical reduce-scatter or all-gather; an
// all-reduce is two passes) over psi elements on M nodes of S ranks:
//
//	intra = Ψ·(S-1)/S          inter = (Ψ/S)·(M-1)/M
//
// These are exactly the element counts internal/comm records under the
// "hier-intra"/"hier-inter" PerGroup keys — the experiments compare this
// prediction against the wire measurement.
func HierarchicalSplit(psi int64, nodeSize, nodes int) (intra, inter float64) {
	s, m := float64(nodeSize), float64(nodes)
	intra = float64(psi) * (s - 1) / s
	inter = float64(psi) / s * (m - 1) / m
	return intra, inter
}

// SplitDPBandwidth converts a *measured* per-rank (intra, inter) traffic
// split — e.g. the PerGroup byte counters of a real run — into the
// effective collective bandwidth it implies on this hardware profile:
// total volume over the serialized time of the intra phase (NVSwitch) and
// the inter phase (this GPU's uplink share).
func (hw Hardware) SplitDPBandwidth(intra, inter float64) float64 {
	if intra+inter == 0 {
		return hw.IntraNodeBW
	}
	return (intra + inter) / (intra/hw.IntraNodeBW + inter/hw.InterNodeBWPerGPU)
}

// HierarchicalDPBandwidth is the exact-form effective DP bandwidth for M
// nodes of S ranks: SplitDPBandwidth applied to the predicted two-level
// split. As S and M grow it converges to DPBandwidth's harmonic limit
// (intra share → 1, inter share → 1/S with S·interPerGPU = the node
// uplink).
func (hw Hardware) HierarchicalDPBandwidth(nodeSize, nodes int) float64 {
	if nodeSize*nodes <= 1 {
		return hw.IntraNodeBW
	}
	intra, inter := HierarchicalSplit(1<<30, nodeSize, nodes)
	return hw.SplitDPBandwidth(intra, inter)
}
