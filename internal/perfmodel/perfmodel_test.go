package perfmodel

import (
	"math"
	"testing"
)

func TestParamsCounts(t *testing.T) {
	// Parameter counts for the paper's configurations (Table 4 / Table 5)
	// must land on the advertised model sizes.
	cases := []struct {
		name   string
		shape  Shape
		wantB  float64 // billions
		within float64 // relative tolerance
	}{
		{"GPT-2 1.5B", GPT2Like(48, 1600, 16), 1.5, 0.07},
		{"8B", GPT2Like(72, 3072, 24), 8, 0.07},
		{"40B", GPT2Like(88, 6144, 32), 40, 0.07},
		{"60B", GPT2Like(75, 8192, 32), 60, 0.07},
		{"100B", GPT2Like(125, 8192, 64), 100, 0.07},
		{"170B", GPT2Like(212, 8192, 64), 170, 0.07},
		{"13B", GPT2Like(62, 4096, 32), 13, 0.07},
	}
	for _, c := range cases {
		got := float64(c.shape.Params()) / 1e9
		if math.Abs(got-c.wantB)/c.wantB > c.within {
			t.Errorf("%s: params %.2fB, want %.1fB ±%.0f%%", c.name, got, c.wantB, c.within*100)
		}
	}
}

func TestFlopsMonotonicInBatchAndSize(t *testing.T) {
	s := GPT2Like(48, 1600, 16)
	if s.FlopsPerStep(2) <= s.FlopsPerStep(1) {
		t.Error("flops must grow with batch")
	}
	big := GPT2Like(125, 8192, 64)
	if big.FlopsPerStep(1) <= s.FlopsPerStep(1) {
		t.Error("flops must grow with model size")
	}
	// Linearity in batch.
	if r := s.FlopsPerStep(8) / s.FlopsPerStep(4); math.Abs(r-2) > 1e-9 {
		t.Errorf("flops should be linear in batch, ratio %v", r)
	}
}

func TestEfficiencyShape(t *testing.T) {
	hw := DGX2()
	// Larger batch → higher efficiency (Figure 3's driver).
	if hw.Efficiency(8192, 16, 64, 1024) <= hw.Efficiency(8192, 16, 4, 1024) {
		t.Error("efficiency must grow with batch")
	}
	// Higher MP → lower efficiency (granularity insight §4.1a).
	if hw.Efficiency(8192, 128, 16, 1024) >= hw.Efficiency(8192, 16, 16, 1024) {
		t.Error("efficiency must fall with MP degree")
	}
	// Never exceeds ceiling.
	if e := hw.Efficiency(1<<20, 1, 1<<20, 1024); e >= hw.MaxEfficiency {
		t.Errorf("efficiency %v must stay below ceiling %v", e, hw.MaxEfficiency)
	}
}

func TestBandwidthCliff(t *testing.T) {
	hw := DGX2()
	if hw.MPBandwidth(16) != hw.IntraNodeBW {
		t.Error("MP=16 fits a DGX-2 node, should see NVSwitch bandwidth")
	}
	if hw.MPBandwidth(32) != hw.InterNodeBWPerGPU {
		t.Error("MP=32 spans nodes, should see InfiniBand share")
	}
	if hw.MPBandwidth(16) <= 10*hw.MPBandwidth(32) {
		t.Error("the intra/inter cliff should be at least 10x (300 vs 12.5 GB/s per link)")
	}
}

// The paper's headline: ZeRO-100B sustains ~15 Pflops aggregate (~38
// TFlops/GPU, >30% of peak) on 400 GPUs for the 100B model (Table 5 row:
// MP=16, batch 32).
func TestHundredBillionHeadline(t *testing.T) {
	hw := DGX2()
	cfg := Config{
		Shape:      GPT2Like(125, 8192, 64),
		MP:         16,
		DP:         25,
		MicroBatch: 32,
		ZeRO:       ZeROConfig{Stage: 2, Pa: true},
	}
	b := Estimate(hw, cfg)
	if b.TFlopsPerGPU < 30 || b.TFlopsPerGPU > 55 {
		t.Errorf("100B ZeRO throughput %.1f TFlops/GPU, want ~38 (30%% of peak)", b.TFlopsPerGPU)
	}
	if agg := AggregatePetaflops(hw, cfg); agg < 12 || agg > 22 {
		t.Errorf("aggregate %.1f Pflops, want ~15", agg)
	}
}

// Megatron baseline collapse: the same 40B-class model run with MP across
// two nodes achieves <5% of hardware peak (§1: "about 5Tflops per V100").
func TestBaselineCrossNodeCollapse(t *testing.T) {
	hw := DGX2()
	inNode := Estimate(hw, Config{
		Shape: GPT2Like(88, 6144, 32), MP: 16, DP: 4, MicroBatch: 8,
	})
	crossNode := Estimate(hw, Config{
		Shape: GPT2Like(88, 6144, 32), MP: 32, DP: 2, MicroBatch: 8,
	})
	if crossNode.TFlopsPerGPU > 0.07*hw.PeakFlopsPerGPU/1e12 {
		t.Errorf("cross-node MP = %.1f TFlops/GPU, want <5%% of peak", crossNode.TFlopsPerGPU)
	}
	if inNode.TFlopsPerGPU < 3*crossNode.TFlopsPerGPU {
		t.Errorf("in-node (%.1f) should be >>3x cross-node (%.1f)",
			inNode.TFlopsPerGPU, crossNode.TFlopsPerGPU)
	}
}

// Superlinearity precondition: per-GPU throughput at the larger batch the
// added memory affords must beat the small-batch value (Figure 3).
func TestPerGPUThroughputGrowsWithBatch(t *testing.T) {
	hw := DGX2()
	shape := GPT2Like(75, 8192, 32) // 60B
	small := Estimate(hw, Config{Shape: shape, MP: 16, DP: 4, MicroBatch: 16, ZeRO: ZeROConfig{Stage: 2}})
	large := Estimate(hw, Config{Shape: shape, MP: 16, DP: 25, MicroBatch: 64, ZeRO: ZeROConfig{Stage: 2}})
	if large.TFlopsPerGPU <= small.TFlopsPerGPU*1.10 {
		t.Errorf("per-GPU throughput should grow markedly with batch: %.1f -> %.1f",
			small.TFlopsPerGPU, large.TFlopsPerGPU)
	}
}

// Stage 3 costs 1.5x the DP volume of stage 2 (§7.2.2).
func TestStage3VolumeRatio(t *testing.T) {
	hw := DGX2()
	shape := GPT2Like(62, 4096, 32)
	base := Config{Shape: shape, MP: 1, DP: 64, MicroBatch: 4, ZeRO: ZeROConfig{Stage: 2}}
	s3 := base
	s3.ZeRO.Stage = 3
	b2 := Estimate(hw, base)
	b3 := Estimate(hw, s3)
	if r := b3.DPCommSec / b2.DPCommSec; math.Abs(r-1.5) > 1e-9 {
		t.Errorf("stage3/stage2 DP time ratio %v, want exactly 1.5", r)
	}
}

// Pa adds less than 10% to MP communication (§8).
func TestPaOverheadUnderTenPercent(t *testing.T) {
	hw := DGX2()
	shape := GPT2Like(125, 8192, 64)
	base := Config{Shape: shape, MP: 16, DP: 25, MicroBatch: 32, ZeRO: ZeROConfig{Stage: 2}}
	withPa := base
	withPa.ZeRO.Pa = true
	b0 := Estimate(hw, base)
	b1 := Estimate(hw, withPa)
	overhead := (b1.MPCommSec - b0.MPCommSec) / b0.MPCommSec
	if overhead <= 0 || overhead > 0.10 {
		t.Errorf("Pa MP-comm overhead %.1f%%, want (0, 10%%]", overhead*100)
	}
}

// Pa+cpu adds exposed PCIe time at small batch but the step must remain
// finite and the offload cost bounded.
func TestPaCPUCost(t *testing.T) {
	hw := DGX2()
	shape := GPT2Like(75, 8192, 32)
	cfg := Config{Shape: shape, MP: 16, DP: 8, MicroBatch: 2,
		ZeRO: ZeROConfig{Stage: 2, Pa: true, PaCPU: true}}
	b := Estimate(hw, cfg)
	noOff := cfg
	noOff.ZeRO.PaCPU = false
	b0 := Estimate(hw, noOff)
	if b.StepSec <= b0.StepSec {
		t.Error("Pa+cpu should cost some step time (DMA drag + exposed PCIe)")
	}
	if b.OffloadSec > b.StepSec {
		t.Error("offload time exceeds the step it is part of")
	}
}

func TestConfigAccessors(t *testing.T) {
	cfg := Config{MP: 16, DP: 25, MicroBatch: 32}
	if cfg.GPUs() != 400 {
		t.Errorf("GPUs() = %d, want 400", cfg.GPUs())
	}
	if cfg.TotalBatch() != 800 {
		t.Errorf("TotalBatch() = %d, want 800", cfg.TotalBatch())
	}
}

func TestEstimatePanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Estimate(DGX2(), Config{Shape: GPT2Like(2, 64, 2), MP: 0, DP: 1, MicroBatch: 1})
}
