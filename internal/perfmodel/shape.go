package perfmodel

// Shape is a GPT-2-like transformer architecture, the workload family of
// the paper's entire evaluation (§10.1: "models presented in this section
// are GPT-2 like transformer based models").
type Shape struct {
	Layers int
	Hidden int
	Heads  int
	Vocab  int
	Seq    int
}

// DefaultVocab and DefaultSeq are the GPT-2 values used throughout the
// paper's experiments (sequence length 1K, §3.2).
const (
	DefaultVocab = 50257
	DefaultSeq   = 1024
)

// GPT2Like builds a Shape with the paper's default vocabulary and sequence
// length.
func GPT2Like(layers, hidden, heads int) Shape {
	return Shape{Layers: layers, Hidden: hidden, Heads: heads, Vocab: DefaultVocab, Seq: DefaultSeq}
}

// Params returns the parameter count Ψ: 12h²+13h per transformer layer
// plus token and position embeddings and the final layernorm.
func (s Shape) Params() int64 {
	h := int64(s.Hidden)
	perLayer := 12*h*h + 13*h
	emb := int64(s.Vocab)*h + int64(s.Seq)*h
	return int64(s.Layers)*perLayer + emb + 2*h
}

// FlopsPerStep returns the training flops for one step of one model replica
// at the given micro-batch, using the standard transformer accounting with
// activation recomputation included (the 4/3 recompute factor is folded into
// the constant): F = 96·B·s·l·h²·(1 + s/(6h) + V/(16·l·h)).
func (s Shape) FlopsPerStep(batch int) float64 {
	b := float64(batch)
	sl := float64(s.Seq)
	l := float64(s.Layers)
	h := float64(s.Hidden)
	v := float64(s.Vocab)
	return 96 * b * sl * l * h * h * (1 + sl/(6*h) + v/(16*l*h))
}

// ActivationElemsPerSample is the total activation footprint of one sample
// in elements, per the paper's footnote 3: ≈ 12 × hidden × seq × layers.
func (s Shape) ActivationElemsPerSample() int64 {
	return 12 * int64(s.Hidden) * int64(s.Seq) * int64(s.Layers)
}

// CheckpointElemsPerSample is the activation-checkpoint footprint of one
// sample in elements when checkpointing one activation per transformer
// layer (§6.1): hidden × seq × layers.
func (s Shape) CheckpointElemsPerSample() int64 {
	return int64(s.Hidden) * int64(s.Seq) * int64(s.Layers)
}
