package perfmodel

import "fmt"

// ZeROConfig selects which ZeRO optimizations are active for a run, mapping
// onto the paper's Table 3 configurations.
type ZeROConfig struct {
	Stage int  // 0 = baseline replicated DP, 1 = Pos, 2 = Pos+g, 3 = Pos+g+p
	Pa    bool // partitioned activation checkpointing (needs MP > 1)
	PaCPU bool // offload partitioned checkpoints to CPU
	// SyncComm disables the bucketed communication/computation overlap:
	// every DP collective runs at a step boundary and is fully exposed —
	// the pre-overlap synchronous schedule, kept as the comparison point
	// for the grad-stream bucket schedule.
	SyncComm bool
	// Prefetch pipelines stage 3's parameter all-gathers on the prefetch
	// stream under forward/backward compute (§7.2.2's "spread across the
	// entire forward propagation"). Without it the gather volume — the
	// third Ψ that distinguishes Pos+g+p — is fully exposed, which is the
	// synchronous gather schedule the stream API replaced. No effect at
	// stages 0-2 (no parameter gathers) or under SyncComm.
	Prefetch bool
	// PrefetchDepth is the pipelining window in layer groups (0/1 = the
	// classic one-group-ahead schedule). Deeper windows keep more gathers
	// in flight, hiding more of the gather stream behind compute with
	// geometrically diminishing returns — the modeled window approaches
	// the gradient buckets' dpOverlapWindow ceiling as depth grows.
	PrefetchDepth int
	// GatherWindow, when > 0, overrides the modeled prefetch overlap
	// window with a measured compute fraction in (0,1] — read it off a
	// depth sweep of BenchmarkPrefetchStep/BenchmarkAccumStep instead of
	// assuming the closed form.
	GatherWindow float64
}

// PrefetchWindow returns the compute fraction available to hide stage-3
// parameter gathers for this config: the measured GatherWindow when set,
// otherwise the depth model — gatherOverlapWindow at depth 1, approaching
// dpOverlapWindow as the window deepens (each extra group in flight halves
// the remaining exposed fraction).
func (z ZeROConfig) PrefetchWindow() float64 {
	if z.GatherWindow > 0 {
		return z.GatherWindow
	}
	d := z.PrefetchDepth
	if d <= 1 {
		return gatherOverlapWindow
	}
	scale := 1.0
	for i := 1; i < d && i < 16; i++ {
		scale /= 2
	}
	return dpOverlapWindow - (dpOverlapWindow-gatherOverlapWindow)*scale
}

// StageVolumeFactor returns the §7.2 per-step DP communication volume in
// units of Ψ: 2Ψ for stages 0-2 (all-reduce, or reduce-scatter + parameter
// all-gather), 3Ψ for stage 3's extra parameter gather.
func StageVolumeFactor(stage int) float64 {
	if stage == 3 {
		return 3
	}
	return 2
}

// Config is one training run: a model shape and its parallelization.
type Config struct {
	Shape      Shape
	MP         int // model-parallel degree (Megatron-style, within the replica)
	DP         int // data-parallel degree
	MicroBatch int // per-replica batch size ("Batch size" column of Tables 5-10)
	ZeRO       ZeROConfig
}

// GPUs returns the total device count of the run.
func (c Config) GPUs() int { return c.MP * c.DP }

// TotalBatch returns the global batch size.
func (c Config) TotalBatch() int { return c.DP * c.MicroBatch }

// Breakdown is the estimated per-step time decomposition, in seconds, plus
// the derived throughput.
type Breakdown struct {
	ComputeSec   float64 // GEMM + elementwise work at modeled efficiency
	MPCommSec    float64 // Megatron all-reduces (+ Pa all-gathers), on the critical path
	DPCommSec    float64 // total gradient/parameter collective time (before overlap)
	GatherSec    float64 // stage-3 parameter all-gather share of DPCommSec (the third Ψ)
	ExposedDPSec float64 // DP communication not hidden behind compute (incl. exposed gathers)
	// ExposedGatherSec is the parameter-gather time left on the critical
	// path: all of GatherSec without Prefetch (synchronous gathers), the
	// post-overlap remainder with it. Always ≤ ExposedDPSec.
	ExposedGatherSec float64
	OffloadSec       float64 // exposed Pa+cpu PCIe time
	StepSec          float64 // ComputeSec + MPCommSec + ExposedDPSec + OffloadSec
	FlopsPerGPU      float64
	TFlopsPerGPU     float64
}

// Overlap windows: fraction of compute time available to hide DP collectives
// (gradient buckets overlap with backward, stage-3 all-gathers with
// forward/backward) and Pa+cpu transfers (hidden behind the large arithmetic
// intensity per §4.2.1(b), but not fully at small batch).
const (
	dpOverlapWindow = 0.5
	// gatherOverlapWindow is the compute fraction available to hide the
	// stage-3 parameter gathers when Prefetch pipelines them: smaller than
	// the gradient window because the forward gathers have only forward
	// compute to hide under and the first layer group is always exposed.
	gatherOverlapWindow  = 0.3
	offloadOverlapWindow = 0.25
	// paCPUComputeDrag models host-DMA contention and synchronization
	// overhead of CPU offload as a fractional compute slowdown. The paper
	// observes C5 (Pa+cpu) losing throughput versus C4 even when the PCIe
	// bytes themselves are hidden by arithmetic intensity (Figure 8, 60B).
	paCPUComputeDrag = 0.10
)

// fp16Bytes is the wire width of gradients, parameters and activations.
const fp16Bytes = 2

// Estimate models one training step of cfg on hw.
func Estimate(hw Hardware, cfg Config) Breakdown {
	if cfg.MP < 1 || cfg.DP < 1 || cfg.MicroBatch < 1 {
		panic(fmt.Sprintf("perfmodel: invalid config %+v", cfg))
	}
	var b Breakdown

	// Compute.
	b.FlopsPerGPU = cfg.Shape.FlopsPerStep(cfg.MicroBatch) / float64(cfg.MP)
	eff := hw.Efficiency(cfg.Shape.Hidden, cfg.MP, cfg.MicroBatch, cfg.Shape.Seq)
	b.ComputeSec = b.FlopsPerGPU / (hw.PeakFlopsPerGPU * eff)

	// Megatron MP traffic: 12·B·s·h elements per transformer block (§8),
	// all on the critical path between dependent layers.
	if cfg.MP > 1 {
		perBlockElems := 12 * float64(cfg.MicroBatch) * float64(cfg.Shape.Seq) * float64(cfg.Shape.Hidden)
		mpBytes := perBlockElems * float64(cfg.Shape.Layers) * fp16Bytes
		if cfg.ZeRO.Pa {
			// One extra all-gather per block of the partitioned checkpoint:
			// B·s·h elements, i.e. <10% of the 12·B·s·h baseline (§8).
			mpBytes += float64(cfg.MicroBatch) * float64(cfg.Shape.Seq) * float64(cfg.Shape.Hidden) *
				float64(cfg.Shape.Layers) * fp16Bytes
		}
		b.MPCommSec = mpBytes / hw.MPBandwidth(cfg.MP)
	}

	// DP traffic per §7.2: 2Ψ elements per step of gradient-class volume
	// for every stage (all-reduce, or reduce-scatter + parameter
	// all-gather), plus stage 3's extra Ψ of parameter gathers. Ring
	// collectives move volume·(N-1)/N per rank. Ψ here is the per-MP-slice
	// share. The two shares ride different ordering domains (grad vs
	// prefetch stream) and hide behind different compute windows.
	if cfg.DP > 1 {
		psiShard := float64(cfg.Shape.Params()) / float64(cfg.MP)
		ringFrac := float64(cfg.DP-1) / float64(cfg.DP)
		bw := hw.DPBandwidth(cfg.MP, cfg.DP)
		gradSec := 2 * psiShard * ringFrac * fp16Bytes / bw
		if cfg.ZeRO.Stage == 3 {
			b.GatherSec = psiShard * ringFrac * fp16Bytes / bw
		}
		b.DPCommSec = gradSec + b.GatherSec
		overlap := dpOverlapWindow
		if cfg.ZeRO.SyncComm {
			overlap = 0 // synchronous schedule: every byte is exposed
		}
		exposedGrad := gradSec - overlap*b.ComputeSec
		if exposedGrad < 0 {
			exposedGrad = 0
		}
		b.ExposedGatherSec = b.GatherSec
		if cfg.ZeRO.Prefetch && !cfg.ZeRO.SyncComm {
			b.ExposedGatherSec = b.GatherSec - cfg.ZeRO.PrefetchWindow()*b.ComputeSec
			if b.ExposedGatherSec < 0 {
				b.ExposedGatherSec = 0
			}
		}
		b.ExposedDPSec = exposedGrad + b.ExposedGatherSec
	}

	// Pa+cpu: each checkpoint crosses PCIe twice (out after forward, back
	// before recomputation), "2x added data movement ... compared to Pa"
	// (§8).
	if cfg.ZeRO.PaCPU {
		ckptBytes := float64(cfg.Shape.CheckpointElemsPerSample()) * float64(cfg.MicroBatch) * fp16Bytes
		if cfg.MP > 1 {
			ckptBytes /= float64(cfg.MP) // checkpoints are partitioned before offload
		}
		t := 2 * ckptBytes / hw.PCIeBW
		exposed := t - offloadOverlapWindow*b.ComputeSec
		if exposed < 0 {
			exposed = 0
		}
		b.OffloadSec = exposed + paCPUComputeDrag*b.ComputeSec
	}

	b.StepSec = b.ComputeSec + b.MPCommSec + b.ExposedDPSec + b.OffloadSec
	b.TFlopsPerGPU = b.FlopsPerGPU / b.StepSec / 1e12
	return b
}

// AggregatePetaflops returns the cluster-wide sustained throughput of a run
// in petaflops (the paper's "15 Petaflops" headline for 100B on 400 GPUs).
func AggregatePetaflops(hw Hardware, cfg Config) float64 {
	b := Estimate(hw, cfg)
	return b.TFlopsPerGPU * float64(cfg.GPUs()) / 1e3
}
