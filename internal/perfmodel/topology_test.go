package perfmodel

import (
	"math"
	"testing"

	"repro/internal/comm"
)

// The DPBandwidth model is validated against the *measured* intra/inter
// split of the runtime's hierarchical all-reduce: run the real two-level
// collective on an in-process world, read the PerGroup wire counters, and
// check that (a) the predicted split matches the measurement exactly and
// (b) the effective bandwidth implied by the measured split equals the
// closed-form HierarchicalDPBandwidth.
func TestDPBandwidthAgainstMeasuredSplit(t *testing.T) {
	const psi = 1 << 12
	const nodeSize, nodes = 4, 2
	const n = nodeSize * nodes
	w := comm.NewWorld(n)
	w.Run(func(c *comm.Comm) {
		if err := c.AllReduceHierarchical(comm.F16Buf(make([]float32, psi)), nodeSize); err != nil {
			t.Error(err)
		}
	})
	st := w.Stats(0)
	measIntra := float64(st.PerGroup["hier-intra"].Elems)
	measInter := float64(st.PerGroup["hier-inter"].Elems)

	predIntra, predInter := HierarchicalSplit(psi, nodeSize, nodes)
	// An all-reduce is two passes (reduce-scatter + all-gather).
	if 2*predIntra != measIntra || 2*predInter != measInter {
		t.Fatalf("predicted split (2×%v, 2×%v) != measured (%v, %v)",
			predIntra, predInter, measIntra, measInter)
	}

	hw := DGX2()
	fromMeasured := hw.SplitDPBandwidth(measIntra, measInter)
	closedForm := hw.HierarchicalDPBandwidth(nodeSize, nodes)
	if rel := math.Abs(fromMeasured-closedForm) / closedForm; rel > 1e-9 {
		t.Errorf("bandwidth from measured split %.3g != closed form %.3g (rel %g)",
			fromMeasured, closedForm, rel)
	}
}

// At the paper's scale (16-GPU nodes, 25 nodes) the exact two-level form
// converges to DPBandwidth's harmonic approximation — the number the step
// model uses — to within a few percent; at small node counts the exact
// form is meaningfully faster (less of the buffer crosses nodes), which is
// why the experiments report the exact prediction next to the measurement.
func TestHierarchicalDPBandwidthConvergesToHarmonic(t *testing.T) {
	hw := DGX2()
	exact := hw.HierarchicalDPBandwidth(16, 25)
	harmonic := hw.DPBandwidth(1, 400)
	if rel := math.Abs(exact-harmonic) / harmonic; rel > 0.12 {
		t.Errorf("exact %v vs harmonic %v: rel %g, want <12%% at DGX-2 scale", exact, harmonic, rel)
	}
	if exact <= harmonic {
		t.Errorf("exact form %v should exceed the harmonic lower bound %v", exact, harmonic)
	}
	// Degenerate layouts collapse to NVSwitch bandwidth.
	if hw.HierarchicalDPBandwidth(1, 1) != hw.IntraNodeBW {
		t.Error("single-GPU layout must return intra-node bandwidth")
	}
}
