package perfmodel

import (
	"math"
	"testing"

	"repro/internal/comm"
)

// The DPBandwidth model is validated against the *measured* intra/inter
// split of the runtime's hierarchical all-reduce: run the real two-level
// collective on an in-process world, read the PerGroup wire counters, and
// check that (a) the predicted split matches the measurement exactly and
// (b) the effective bandwidth implied by the measured split equals the
// closed-form HierarchicalDPBandwidth.
func TestDPBandwidthAgainstMeasuredSplit(t *testing.T) {
	const psi = 1 << 12
	const nodeSize, nodes = 4, 2
	const n = nodeSize * nodes
	w := comm.NewWorld(n)
	w.Run(func(c *comm.Comm) {
		if err := c.AllReduceHierarchical(comm.F16Buf(make([]float32, psi)), nodeSize); err != nil {
			t.Error(err)
		}
	})
	st := w.Stats(0)
	measIntra := float64(st.PerGroup["hier-intra"].Elems)
	measInter := float64(st.PerGroup["hier-inter"].Elems)

	predIntra, predInter := HierarchicalSplit(psi, nodeSize, nodes)
	// An all-reduce is two passes (reduce-scatter + all-gather).
	if 2*predIntra != measIntra || 2*predInter != measInter {
		t.Fatalf("predicted split (2×%v, 2×%v) != measured (%v, %v)",
			predIntra, predInter, measIntra, measInter)
	}

	hw := DGX2()
	fromMeasured := hw.SplitDPBandwidth(measIntra, measInter)
	closedForm := hw.HierarchicalDPBandwidth(nodeSize, nodes)
	if rel := math.Abs(fromMeasured-closedForm) / closedForm; rel > 1e-9 {
		t.Errorf("bandwidth from measured split %.3g != closed form %.3g (rel %g)",
			fromMeasured, closedForm, rel)
	}
}

// At the paper's scale (16-GPU nodes, 25 nodes) the exact two-level form
// converges to DPBandwidth's harmonic approximation — the number the step
// model uses — to within a few percent; at small node counts the exact
// form is meaningfully faster (less of the buffer crosses nodes), which is
// why the experiments report the exact prediction next to the measurement.
func TestHierarchicalDPBandwidthConvergesToHarmonic(t *testing.T) {
	hw := DGX2()
	exact := hw.HierarchicalDPBandwidth(16, 25)
	harmonic := hw.DPBandwidth(1, 400)
	if rel := math.Abs(exact-harmonic) / harmonic; rel > 0.12 {
		t.Errorf("exact %v vs harmonic %v: rel %g, want <12%% at DGX-2 scale", exact, harmonic, rel)
	}
	if exact <= harmonic {
		t.Errorf("exact form %v should exceed the harmonic lower bound %v", exact, harmonic)
	}
	// Degenerate layouts collapse to NVSwitch bandwidth.
	if hw.HierarchicalDPBandwidth(1, 1) != hw.IntraNodeBW {
		t.Error("single-GPU layout must return intra-node bandwidth")
	}
}

// The depth-k prefetch window model: depth ≤ 1 is the classic assumed
// window (golden compatibility), deeper windows increase monotonically
// toward the gradient-overlap ceiling, and a measured GatherWindow
// overrides the model entirely.
func TestPrefetchWindowDepthModel(t *testing.T) {
	base := ZeROConfig{Stage: 3, Prefetch: true}
	if w := base.PrefetchWindow(); w != gatherOverlapWindow {
		t.Errorf("depth 0 window %v, want the assumed %v", w, gatherOverlapWindow)
	}
	prev := base.PrefetchWindow()
	for d := 2; d <= 8; d *= 2 {
		z := base
		z.PrefetchDepth = d
		w := z.PrefetchWindow()
		if w <= prev || w >= dpOverlapWindow {
			t.Errorf("depth %d window %v: want monotonically rising below %v (prev %v)",
				d, w, dpOverlapWindow, prev)
		}
		prev = w
	}
	meas := ZeROConfig{Stage: 3, Prefetch: true, PrefetchDepth: 4, GatherWindow: 0.42}
	if w := meas.PrefetchWindow(); w != 0.42 {
		t.Errorf("measured override window %v, want 0.42", w)
	}
	// A deeper window must shrink the exposed gather time in Estimate. Use
	// a bandwidth-starved cluster so the gathers cannot fully hide at
	// depth 1 (on DGX-2 they do, which is the §7.2.2 design point).
	slow := DGX2()
	slow.IntraNodeBW = 2e9
	slow.InterNodeBWPerGPU = 0.5e9
	mk := func(depth int) Breakdown {
		return Estimate(slow, Config{
			Shape: GPT2Like(48, 1600, 16), MP: 1, DP: 64, MicroBatch: 1,
			ZeRO: ZeROConfig{Stage: 3, Prefetch: true, PrefetchDepth: depth},
		})
	}
	d1, d4 := mk(1), mk(4)
	if d1.ExposedGatherSec <= 0 || d4.ExposedGatherSec >= d1.ExposedGatherSec {
		t.Errorf("depth 4 exposed gather %v not below depth 1's %v (want both positive, deeper smaller)",
			d4.ExposedGatherSec, d1.ExposedGatherSec)
	}
}
