package perfmodel

import (
	"math"
	"testing"
)

// The hierarchical DP bandwidth is the harmonic combination of NVSwitch and
// the node uplink: 1/(1/150 + 1/100) GB/s = 60 GB/s on the DGX-2 profile.
func TestDPBandwidthHierarchicalValue(t *testing.T) {
	hw := DGX2()
	got := hw.DPBandwidth(16, 25)
	want := 1 / (1/hw.IntraNodeBW + 1/(hw.InterNodeBWPerGPU*float64(hw.GPUsPerNode)))
	if math.Abs(got-want) > 1 {
		t.Errorf("DPBandwidth = %v, want %v", got, want)
	}
	if math.Abs(got-60e9) > 1e9 {
		t.Errorf("DPBandwidth = %.1f GB/s, want ≈60", got/1e9)
	}
	// In-node DP sees NVSwitch.
	if hw.DPBandwidth(2, 4) != hw.IntraNodeBW {
		t.Error("small jobs should stay on NVSwitch")
	}
}

func TestActivationAccountingFootnote3(t *testing.T) {
	// Footnote 3: total activations ≈ 12 × hidden × batch × seq × layers.
	// For the 1.5B GPT-2 (48 layers, h=1600, seq 1K, batch 32) that is
	// ~60 GB in fp16 — the paper's §3.2 number.
	s := GPT2Like(48, 1600, 16)
	perSample := s.ActivationElemsPerSample()
	totalGB := float64(perSample) * 32 * 2 / 1e9
	if totalGB < 55 || totalGB > 70 {
		t.Errorf("1.5B batch-32 activations = %.1f GB, paper says ~60 GB", totalGB)
	}
	// Checkpointing cuts it to the per-layer inputs: ~1/12.
	ckpt := s.CheckpointElemsPerSample()
	if r := float64(perSample) / float64(ckpt); math.Abs(r-12) > 1e-9 {
		t.Errorf("activation/checkpoint ratio %v, want 12", r)
	}
}

// Estimate is monotone in the obvious directions: more batch → more
// absolute step time but never lower throughput at fixed shape/parallelism
// (within the saturating-efficiency model).
func TestEstimateMonotonicity(t *testing.T) {
	hw := DGX2()
	shape := GPT2Like(75, 8192, 32)
	prevStep := 0.0
	prevTF := 0.0
	for _, b := range []int{1, 2, 4, 8, 16, 32, 64} {
		e := Estimate(hw, Config{Shape: shape, MP: 16, DP: 8, MicroBatch: b,
			ZeRO: ZeROConfig{Stage: 2}})
		if e.StepSec <= prevStep {
			t.Errorf("step time must grow with batch: b=%d %v <= %v", b, e.StepSec, prevStep)
		}
		if e.TFlopsPerGPU < prevTF {
			t.Errorf("throughput must not fall with batch: b=%d %v < %v", b, e.TFlopsPerGPU, prevTF)
		}
		prevStep, prevTF = e.StepSec, e.TFlopsPerGPU
	}
}

// Stage-3 parameter-gather accounting: GatherSec is exactly the third Ψ
// (half the gradient share), Prefetch hides part of it, and the knob does
// nothing at stage 2 or under SyncComm.
func TestPrefetchHidesGatherTime(t *testing.T) {
	hw := DGX2()
	shape := GPT2Like(62, 4096, 32)
	base := Config{Shape: shape, MP: 1, DP: 64, MicroBatch: 4, ZeRO: ZeROConfig{Stage: 3}}

	syncGather := Estimate(hw, base)
	if syncGather.GatherSec <= 0 {
		t.Fatal("stage 3 must report parameter-gather time")
	}
	if r := syncGather.GatherSec / (syncGather.DPCommSec - syncGather.GatherSec); math.Abs(r-0.5) > 1e-9 {
		t.Errorf("gather/grad time ratio %v, want 0.5 (Ψ vs 2Ψ)", r)
	}
	if syncGather.ExposedGatherSec != syncGather.GatherSec {
		t.Error("without Prefetch the whole gather must be exposed (synchronous schedule)")
	}

	pre := base
	pre.ZeRO.Prefetch = true
	withPrefetch := Estimate(hw, pre)
	if withPrefetch.ExposedGatherSec >= syncGather.ExposedGatherSec {
		t.Errorf("Prefetch must reduce exposed gather time: %v >= %v",
			withPrefetch.ExposedGatherSec, syncGather.ExposedGatherSec)
	}
	if withPrefetch.StepSec >= syncGather.StepSec {
		t.Errorf("Prefetch must reduce step time: %v >= %v", withPrefetch.StepSec, syncGather.StepSec)
	}
	if withPrefetch.DPCommSec != syncGather.DPCommSec {
		t.Error("Prefetch moves the same volume; only exposure changes")
	}

	s2 := base
	s2.ZeRO.Stage = 2
	s2pre := s2
	s2pre.ZeRO.Prefetch = true
	if Estimate(hw, s2).StepSec != Estimate(hw, s2pre).StepSec {
		t.Error("Prefetch must be a no-op at stage 2 (no parameter gathers)")
	}
	if Estimate(hw, s2).GatherSec != 0 {
		t.Error("stages 0-2 have no gather share")
	}

	allSync := pre
	allSync.ZeRO.SyncComm = true
	if e := Estimate(hw, allSync); e.ExposedGatherSec != e.GatherSec {
		t.Error("SyncComm must expose the gathers even with Prefetch set")
	}
}

// The breakdown must be internally consistent.
func TestBreakdownConsistency(t *testing.T) {
	hw := DGX2()
	e := Estimate(hw, Config{Shape: GPT2Like(125, 8192, 64), MP: 16, DP: 25,
		MicroBatch: 32, ZeRO: ZeROConfig{Stage: 2, Pa: true, PaCPU: true}})
	sum := e.ComputeSec + e.MPCommSec + e.ExposedDPSec + e.OffloadSec
	if math.Abs(sum-e.StepSec) > 1e-9 {
		t.Errorf("StepSec %v != sum of parts %v", e.StepSec, sum)
	}
	if e.ExposedDPSec > e.DPCommSec {
		t.Error("exposed DP time cannot exceed total DP time")
	}
	if e.ExposedGatherSec > e.ExposedDPSec || e.GatherSec > e.DPCommSec {
		t.Error("gather shares cannot exceed their DP totals")
	}
	if e.TFlopsPerGPU <= 0 || e.FlopsPerGPU <= 0 {
		t.Error("non-positive throughput")
	}
}
