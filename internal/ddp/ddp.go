// Package ddp is the paper's baseline: classic data-parallel training in
// the style of PyTorch DistributedDataParallel. Every rank replicates the
// full model states — parameters, gradients, and the complete fp32 Adam
// state — and averages gradients collectively after backward. Its
// per-device model-state footprint is the (2+2+K)Ψ of §3.1, which is why
// "basic data parallelism ... runs out of memory for models with more than
// 1.4B parameters" (§1) on a 32 GB device.
//
// Since the unified Stage API, DDP is no longer a separate engine: this
// package is a thin constructor over zero.Trainer at zero.StageDDP, the
// degenerate stage-0 case of the one code path. The gradient all-reduce is
// the same bucketed reduce-scatter every ZeRO stage runs, completed by a
// gradient all-gather; set Overlap to ride the buckets on the grad stream
// under backward compute.
package ddp

import (
	"repro/internal/comm"
	"repro/internal/model"
	"repro/internal/zero"
)

// DefaultBucketElems is the all-reduce fusion bucket size in elements,
// mirroring DDP's 25MB-ish gradient buckets.
const DefaultBucketElems = 1 << 22

// Trainer is one rank's replicated-state data-parallel trainer: a
// zero.Trainer pinned to StageDDP. BucketElems, ClipNorm, Overlap and
// LastGradNorm are promoted from the embedded trainer and may be tuned
// between steps.
type Trainer struct {
	*zero.Trainer
}

// New builds a rank's trainer. All ranks must pass the same cfg and seed so
// replicas start identical (DDP broadcasts initial weights; identical
// seeding is our equivalent).
func New(c *comm.Comm, cfg model.Config, seed int64, lr float64) *Trainer {
	return &Trainer{zero.MustNew(c, cfg, zero.Options{
		Stage:       zero.StageDDP,
		LR:          lr,
		Seed:        seed,
		BucketElems: DefaultBucketElems,
	})}
}

// NewHierarchical is New for a cluster laid out as nodes of nodeSize ranks:
// the gradient all-reduce buckets route through the two-level intra/inter-
// node algorithm, so only ~1/nodeSize of the gradient volume crosses the
// node uplink. The world size must be a multiple of nodeSize.
func NewHierarchical(c *comm.Comm, cfg model.Config, seed int64, lr float64, nodeSize int) (*Trainer, error) {
	tr, err := zero.New(c, cfg, zero.Options{
		Stage:       zero.StageDDP,
		LR:          lr,
		Seed:        seed,
		BucketElems: DefaultBucketElems,
		Topology:    zero.Topology{NodeSize: nodeSize},
	})
	if err != nil {
		return nil, err
	}
	return &Trainer{tr}, nil
}
