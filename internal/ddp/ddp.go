// Package ddp is the paper's baseline: classic data-parallel training in
// the style of PyTorch DistributedDataParallel. Every rank replicates the
// full model states — fp16 parameters, fp16 gradients, and the complete
// fp32 Adam state — and averages gradients with a bucketed ring all-reduce
// after backward. Its per-device model-state footprint is the (2+2+K)Ψ of
// §3.1, which is why "basic data parallelism ... runs out of memory for
// models with more than 1.4B parameters" (§1) on a 32 GB device.
package ddp

import (
	"repro/internal/comm"
	"repro/internal/model"
	"repro/internal/optimizer"
	"repro/internal/tensor"
)

// DefaultBucketElems is the all-reduce fusion bucket size in elements,
// mirroring DDP's 25MB-ish gradient buckets.
const DefaultBucketElems = 1 << 22

// Trainer is one rank's replicated-state data-parallel trainer.
type Trainer struct {
	Model *model.Model
	Opt   *optimizer.Adam

	// BucketElems is the gradient fusion bucket size; 0 means a single
	// unfused all-reduce.
	BucketElems int

	// ClipNorm caps the global gradient L2 norm before the optimizer step
	// (0 disables). The norm is computed by the same partition-ordered
	// arithmetic the ZeRO trainer uses, so clipped DDP and clipped ZeRO
	// stay bitwise identical.
	ClipNorm float64

	// LastGradNorm is the global gradient norm observed by the most
	// recent Step when ClipNorm is enabled (pre-clipping).
	LastGradNorm float64

	comm *comm.Comm
}

// New builds a rank's trainer. All ranks must pass the same cfg and seed so
// replicas start identical (DDP broadcasts initial weights; identical
// seeding is our equivalent).
func New(c *comm.Comm, cfg model.Config, seed int64, lr float64) *Trainer {
	return &Trainer{
		Model:       model.New(cfg, seed),
		Opt:         optimizer.NewAdam(cfg.ParamCount(), lr),
		BucketElems: DefaultBucketElems,
		comm:        c,
	}
}

// Step runs one training step on this rank's shard of the global batch and
// returns the local loss. ids/targets are the *global* batch (batch rows ×
// seq); sharding happens inside so every rank sees the same call.
func (t *Trainer) Step(ids, targets []int, globalBatch int) float64 {
	shardIDs, shardTargets, per := model.ShardBatch(ids, targets, globalBatch, t.comm.Size(), t.comm.Rank())
	t.Model.ZeroGrads()
	loss := t.Model.Loss(shardIDs, shardTargets, per)
	t.Model.Backward()
	t.averageGradients()
	if t.ClipNorm > 0 {
		parts := comm.Partition(len(t.Model.Grads), t.comm.Size())
		partials := make([]float32, t.comm.Size())
		for i, p := range parts {
			partials[i] = optimizer.PartialSquaredSum(t.Model.Grads[p.Lo:p.Hi])
		}
		norm := optimizer.GlobalGradNorm(partials)
		t.LastGradNorm = norm
		tensor.Scale(t.Model.Grads, optimizer.ClipScale(norm, t.ClipNorm))
	}
	t.Opt.Step(t.Model.Params, t.Model.Grads)
	return loss
}

// averageGradients all-reduces the flat gradient buffer in fusion buckets.
func (t *Trainer) averageGradients() {
	g := t.Model.Grads
	bucket := t.BucketElems
	if bucket <= 0 || bucket >= len(g) {
		t.comm.AllReduceAvg(g)
		return
	}
	for lo := 0; lo < len(g); lo += bucket {
		hi := lo + bucket
		if hi > len(g) {
			hi = len(g)
		}
		t.comm.AllReduceAvg(g[lo:hi])
	}
}

// ModelStateBytes returns this rank's model-state footprint in bytes under
// mixed-precision accounting: (2+2+K)Ψ with everything replicated.
func (t *Trainer) ModelStateBytes() int64 {
	psi := int64(t.Model.NumParams())
	return psi * (tensor.BytesPerHalf + tensor.BytesPerHalf + optimizer.AdamK)
}
