package ddp

import (
	"sync"
	"testing"

	"repro/internal/comm"
	"repro/internal/model"
	"repro/internal/optimizer"
	"repro/internal/tensor"
)

func testConfig() model.Config {
	return model.Config{Layers: 2, Hidden: 16, Heads: 2, Vocab: 19, Seq: 8}
}

// singleProcessReference trains the same model on the full batch in one
// process with loss averaged the same way DDP's per-rank mean + all-reduce
// average composes (equal shards → same mean).
func singleProcessReference(cfg model.Config, seed int64, lr float64, ids, targets []int, batch, steps int) []float32 {
	m := model.New(cfg, seed)
	opt := optimizer.NewAdam(cfg.ParamCount(), lr)
	for s := 0; s < steps; s++ {
		m.ZeroGrads()
		m.Loss(ids, targets, batch)
		m.Backward()
		opt.Step(m.Params, m.Grads)
	}
	return m.Params
}

// DDP across N ranks must reproduce single-process full-batch training up
// to float32 reduction rounding — the correctness contract data parallelism
// promises (§2.1) and the reference point for every ZeRO stage.
func TestDDPMatchesSingleProcess(t *testing.T) {
	cfg := testConfig()
	const batch, steps, lr = 4, 5, 1e-3
	ids, targets := model.SyntheticBatch(3, batch, cfg.Seq, cfg.Vocab)
	want := singleProcessReference(cfg, 7, lr, ids, targets, batch, steps)

	for _, n := range []int{1, 2, 4} {
		w := comm.NewWorld(n)
		results := make([][]float32, n)
		w.Run(func(c *comm.Comm) {
			tr := New(c, cfg, 7, lr)
			for s := 0; s < steps; s++ {
				tr.Step(ids, targets, batch)
			}
			results[c.Rank()] = tr.Model.Params
		})
		for r := 0; r < n; r++ {
			if d := tensor.MaxDiff(results[r], want); d > 2e-4 {
				t.Errorf("n=%d rank %d: params differ from single-process by %g", n, r, d)
			}
		}
		// All replicas must agree bitwise (they saw identical reduced grads).
		for r := 1; r < n; r++ {
			if d := tensor.MaxDiff(results[r], results[0]); d != 0 {
				t.Errorf("n=%d: replicas %d and 0 diverged by %g", n, r, d)
			}
		}
	}
}

// Bucketed and unfused all-reduce must be numerically identical: bucketing
// only changes message framing.
func TestBucketingDoesNotChangeResult(t *testing.T) {
	cfg := testConfig()
	ids, targets := model.SyntheticBatch(5, 4, cfg.Seq, cfg.Vocab)

	run := func(bucket int) []float32 {
		w := comm.NewWorld(2)
		var out []float32
		var mu sync.Mutex
		w.Run(func(c *comm.Comm) {
			tr := New(c, cfg, 11, 1e-3)
			tr.BucketElems = bucket
			for s := 0; s < 3; s++ {
				tr.Step(ids, targets, 4)
			}
			if c.Rank() == 0 {
				mu.Lock()
				out = tr.Model.Params
				mu.Unlock()
			}
		})
		return out
	}
	unfused := run(0)
	bucketed := run(100) // tiny buckets, many waves
	if d := tensor.MaxDiff(unfused, bucketed); d != 0 {
		t.Errorf("bucketed all-reduce changed the result by %g", d)
	}
}

// DDP communication volume: 2Ψ(N-1)/N elements per rank per step (§7.1).
func TestDDPCommunicationVolume(t *testing.T) {
	cfg := testConfig()
	psi := int64(cfg.ParamCount())
	ids, targets := model.SyntheticBatch(9, 4, cfg.Seq, cfg.Vocab)
	const n = 4
	w := comm.NewWorld(n)
	w.Run(func(c *comm.Comm) {
		tr := New(c, cfg, 1, 1e-3)
		tr.BucketElems = 0
		tr.Step(ids, targets, 4)
	})
	want := 2 * psi * (n - 1) / n
	for r := 0; r < n; r++ {
		got := w.Stats(r).ElemsSent
		// Partition remainders cost at most a few elements per phase.
		if got < want || got > want+2*int64(n) {
			t.Errorf("rank %d sent %d elems, want %d (= 2Ψ(N-1)/N)", r, got, want)
		}
	}
}

// Replicated model-state accounting: 16 bytes per parameter (§3.1's 16Ψ).
func TestDDPModelStateBytes(t *testing.T) {
	cfg := testConfig()
	w := comm.NewWorld(1)
	w.Run(func(c *comm.Comm) {
		tr := New(c, cfg, 1, 1e-3)
		want := int64(cfg.ParamCount()) * 16
		if got := tr.ModelStateBytes(); got != want {
			t.Errorf("ModelStateBytes = %d, want %d", got, want)
		}
	})
}

// Loss must fall under DDP training just as in single-process mode.
func TestDDPLearns(t *testing.T) {
	cfg := model.Config{Layers: 2, Hidden: 32, Heads: 4, Vocab: 13, Seq: 12}
	ids, targets := model.SyntheticBatch(17, 4, cfg.Seq, cfg.Vocab)
	w := comm.NewWorld(2)
	losses := make([]float64, 2)
	w.Run(func(c *comm.Comm) {
		tr := New(c, cfg, 23, 5e-3)
		var last float64
		for s := 0; s < 25; s++ {
			last = tr.Step(ids, targets, 4)
		}
		losses[c.Rank()] = last
	})
	first := 0.0
	{
		m := model.New(cfg, 23)
		sIDs, sTg, per := model.ShardBatch(ids, targets, 4, 2, 0)
		first = m.Loss(sIDs, sTg, per)
	}
	for r, l := range losses {
		if l >= first-0.2 {
			t.Errorf("rank %d: loss did not fall (%.4f -> %.4f)", r, first, l)
		}
	}
}

// Hierarchical DDP: the stage-0 trainer on a node topology must still
// match single-process training (the two-level reduction reassociates
// floats but computes the same sums), keep every replica bitwise in
// agreement, and actually cut the inter-node share of the all-reduce by
// the node width.
func TestDDPHierarchicalTopology(t *testing.T) {
	cfg := testConfig()
	const n, nodeSize, batch, steps, lr = 4, 2, 4, 5, 1e-3
	ids, targets := model.SyntheticBatch(3, batch, cfg.Seq, cfg.Vocab)
	want := singleProcessReference(cfg, 7, lr, ids, targets, batch, steps)

	w := comm.NewWorld(n)
	results := make([][]float32, n)
	w.Run(func(c *comm.Comm) {
		tr, err := NewHierarchical(c, cfg, 7, lr, nodeSize)
		if err != nil {
			t.Error(err)
			return
		}
		tr.BucketElems = 0
		for s := 0; s < steps; s++ {
			tr.Step(ids, targets, batch)
		}
		results[c.Rank()] = tr.Model.Params
	})
	for r := 0; r < n; r++ {
		if d := tensor.MaxDiff(results[r], want); d > 2e-4 {
			t.Errorf("rank %d: params differ from single-process by %g", r, d)
		}
	}
	for r := 1; r < n; r++ {
		if d := tensor.MaxDiff(results[r], results[0]); d != 0 {
			t.Errorf("replicas %d and 0 diverged by %g", r, d)
		}
	}
	// Per-rank inter-node volume: 2·(Ψ/S)·(M-1)/M elems per step.
	st := w.Stats(0)
	inter := st.PerGroup["hier-inter"].Elems
	psi := int64(cfg.ParamCount())
	wantInter := int64(steps) * 2 * (psi / nodeSize) * int64(n/nodeSize-1) / int64(n/nodeSize)
	// Partition rounding can shift a rank's share by a few elements.
	if diff := inter - wantInter; diff < -int64(steps*n) || diff > int64(steps*n) {
		t.Errorf("inter-node elems %d, want ≈%d", inter, wantInter)
	}
	if st.PerGroup["hier-intra"].Elems == 0 {
		t.Error("no intra-node traffic recorded")
	}

	// Invalid node widths surface as topology errors from the constructor.
	w2 := comm.NewWorld(4)
	w2.Run(func(c *comm.Comm) {
		if c.Rank() != 0 {
			return
		}
		if _, err := NewHierarchical(c, cfg, 7, lr, 3); err == nil {
			t.Error("indivisible nodeSize must fail NewHierarchical")
		}
	})
}
