package mp

import (
	"repro/internal/tensor"
)

// ParallelMLP is the Megatron transformer MLP: a column-parallel h→4h
// layer, GELU, then a row-parallel 4h→h layer, with the GELU computed
// entirely locally because the column shard of layer 1 aligns with the row
// shard of layer 2 — the construction that lets Megatron run the whole MLP
// with a single forward all-reduce ("g") and a single backward all-reduce
// ("f").
type ParallelMLP struct {
	FC1 *ColumnLinear
	FC2 *RowLinear

	h1 []float32 // pre-GELU local activations
	g  []float32 // GELU output
	m  int
}

// NewParallelMLP builds the MP group's shard of an h→4h→h MLP.
func NewParallelMLP(c Reducer, hidden int, seed int64) *ParallelMLP {
	return &ParallelMLP{
		FC1: NewColumnLinear(c, hidden, 4*hidden, seed),
		FC2: NewRowLinear(c, 4*hidden, hidden, seed+1),
	}
}

// Forward runs the parallel MLP on the replicated input x[M×h] and returns
// the replicated output [M×h].
func (p *ParallelMLP) Forward(x []float32, m int) []float32 {
	p.m = m
	p.h1 = p.FC1.Forward(x, m)
	p.g = make([]float32, len(p.h1))
	tensor.GELU(p.g, p.h1)
	return p.FC2.Forward(p.g, m)
}

// Backward consumes the replicated dy[M×h] and returns the replicated
// dx[M×h], accumulating weight gradients in both shards.
func (p *ParallelMLP) Backward(dy []float32) []float32 {
	dg := p.FC2.Backward(dy)
	dh1 := make([]float32, len(dg))
	tensor.GELUBackward(dh1, dg, p.h1)
	return p.FC1.Backward(dh1)
}

// BlockAllReduceElems returns the §8 communication accounting for one
// Megatron transformer block trained with activation recomputation: six
// all-reduces (two forward, two recompute, two backward) of batch×seq×hidden
// elements each, at 2×message-size volume per all-reduce — a total of
// 12 × batch × seq × hidden elements on the wire per block.
func BlockAllReduceElems(batch, seq, hidden int) int64 {
	return 12 * int64(batch) * int64(seq) * int64(hidden)
}

// PaOverheadElems returns the additional traffic ZeRO-R's Pa adds per
// block: one all-gather of the block's input checkpoint, volume equal to
// the message size (§8) — batch×seq×hidden elements, i.e. 1/12 of
// BlockAllReduceElems.
func PaOverheadElems(batch, seq, hidden int) int64 {
	return int64(batch) * int64(seq) * int64(hidden)
}
