package mp

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/comm"
	"repro/internal/tensor"
)

// serialMLP is the unsharded reference: y = GELU(x·W1+b1)·W2+b2 built from
// the same deterministic full weights the parallel layers slice.
type serialMLP struct {
	w1, b1, w2, b2 []float32
	hidden         int
	h1, g          []float32
	x              []float32
	m              int
}

func newSerialMLP(hidden int, seed int64) *serialMLP {
	return &serialMLP{
		hidden: hidden,
		w1:     fullWeight(hidden, 4*hidden, seed),
		b1:     make([]float32, 4*hidden),
		w2:     fullWeight(4*hidden, hidden, seed+1),
		b2:     make([]float32, hidden),
	}
}

func (s *serialMLP) forward(x []float32, m int) []float32 {
	s.x = append([]float32(nil), x...)
	s.m = m
	ffn := 4 * s.hidden
	s.h1 = make([]float32, m*ffn)
	tensor.MatMul(s.h1, x, s.w1, m, s.hidden, ffn)
	s.g = make([]float32, m*ffn)
	tensor.GELU(s.g, s.h1)
	y := make([]float32, m*s.hidden)
	tensor.MatMul(y, s.g, s.w2, m, ffn, s.hidden)
	return y
}

func (s *serialMLP) backward(dy []float32) (dx, dW1, dW2 []float32) {
	ffn := 4 * s.hidden
	dW2 = make([]float32, ffn*s.hidden)
	tensor.MatMulATAdd(dW2, s.g, dy, s.m, ffn, s.hidden)
	dg := make([]float32, s.m*ffn)
	tensor.MatMulBT(dg, dy, s.w2, s.m, s.hidden, ffn)
	dh1 := make([]float32, s.m*ffn)
	tensor.GELUBackward(dh1, dg, s.h1)
	dW1 = make([]float32, s.hidden*ffn)
	tensor.MatMulATAdd(dW1, s.x, dh1, s.m, s.hidden, ffn)
	dx = make([]float32, s.m*s.hidden)
	tensor.MatMulBT(dx, dh1, s.w1, s.m, ffn, s.hidden)
	return dx, dW1, dW2
}

func randInput(m, h int, seed int64) []float32 {
	r := rand.New(rand.NewSource(seed))
	x := make([]float32, m*h)
	for i := range x {
		x[i] = float32(r.NormFloat64())
	}
	return x
}

// The parallel MLP must compute the same function as the serial reference
// for every MP degree, including degrees that do not divide 4h evenly.
func TestParallelMLPMatchesSerial(t *testing.T) {
	const hidden, m = 12, 6
	x := randInput(m, hidden, 1)
	dy := randInput(m, hidden, 2)

	ref := newSerialMLP(hidden, 77)
	wantY := ref.forward(x, m)
	wantDx, wantDW1, wantDW2 := ref.backward(dy)

	for _, n := range []int{1, 2, 3, 4} {
		w := comm.NewWorld(n)
		var mu sync.Mutex
		dw1 := make([]float32, hidden*4*hidden)
		dw2 := make([]float32, 4*hidden*hidden)
		w.Run(func(c *comm.Comm) {
			mlp := NewParallelMLP(c, hidden, 77)
			y := mlp.Forward(x, m)
			if d := tensor.MaxDiff(y, wantY); d > 1e-4 {
				mu.Lock()
				t.Errorf("n=%d rank %d: forward differs by %g", n, c.Rank(), d)
				mu.Unlock()
			}
			dx := mlp.Backward(dy)
			if d := tensor.MaxDiff(dx, wantDx); d > 1e-4 {
				mu.Lock()
				t.Errorf("n=%d rank %d: dx differs by %g", n, c.Rank(), d)
				mu.Unlock()
			}
			// Assemble the sharded weight grads into full matrices.
			mu.Lock()
			cols := mlp.FC1.cols
			for i := 0; i < hidden; i++ {
				copy(dw1[i*4*hidden+cols.Lo:i*4*hidden+cols.Hi], mlp.FC1.DW[i*cols.Len():(i+1)*cols.Len()])
			}
			rows := mlp.FC2.rows
			copy(dw2[rows.Lo*hidden:rows.Hi*hidden], mlp.FC2.DW)
			mu.Unlock()
		})
		if d := tensor.MaxDiff(dw1, wantDW1); d > 1e-4 {
			t.Errorf("n=%d: assembled dW1 differs by %g", n, d)
		}
		if d := tensor.MaxDiff(dw2, wantDW2); d > 1e-4 {
			t.Errorf("n=%d: assembled dW2 differs by %g", n, d)
		}
	}
}

// Each rank stores only its shard: 1/Nm of each weight matrix (±1 row/col).
func TestWeightSharding(t *testing.T) {
	const hidden = 16
	for _, n := range []int{2, 4} {
		w := comm.NewWorld(n)
		var mu sync.Mutex
		w.Run(func(c *comm.Comm) {
			mlp := NewParallelMLP(c, hidden, 3)
			full := hidden * 4 * hidden
			mu.Lock()
			defer mu.Unlock()
			if got := len(mlp.FC1.W); got > full/n+hidden {
				t.Errorf("n=%d rank %d: FC1 shard %d elems, want ≈%d", n, c.Rank(), got, full/n)
			}
			if got := len(mlp.FC2.W); got > full/n+hidden {
				t.Errorf("n=%d rank %d: FC2 shard %d elems, want ≈%d", n, c.Rank(), got, full/n)
			}
		})
	}
}

// MP communication pattern: one all-reduce forward (g) + one backward (f),
// each of M×h elements → per-rank volume 2·2·M·h·(N-1)/N per MLP
// fwd+bwd pair.
func TestMPCommVolume(t *testing.T) {
	const hidden, m, n = 8, 4, 4
	x := randInput(m, hidden, 9)
	dy := randInput(m, hidden, 10)
	w := comm.NewWorld(n)
	w.Run(func(c *comm.Comm) {
		mlp := NewParallelMLP(c, hidden, 5)
		mlp.Forward(x, m)
		mlp.Backward(dy)
	})
	want := int64(2 * 2 * m * hidden * (n - 1) / n)
	for r := 0; r < n; r++ {
		if got := w.Stats(r).ElemsSent; got != want {
			t.Errorf("rank %d sent %d elems, want %d", r, got, want)
		}
	}
}

// §8's headline inequality: Pa's extra all-gather traffic is under one
// tenth of the Megatron block traffic, for any shape.
func TestPaOverheadRatio(t *testing.T) {
	for _, shape := range [][3]int{{16, 1024, 8192}, {2, 512, 1024}, {64, 2048, 16384}} {
		mpVol := BlockAllReduceElems(shape[0], shape[1], shape[2])
		paVol := PaOverheadElems(shape[0], shape[1], shape[2])
		if ratio := float64(paVol) / float64(mpVol); ratio > 0.1 {
			t.Errorf("shape %v: Pa overhead ratio %.3f, want ≤ 0.1", shape, ratio)
		}
	}
}
