// Package mp implements Megatron-LM-style tensor model parallelism — the
// paper's baseline system (§10.1) and the substrate ZeRO-R's Pa integrates
// with. A linear layer is split across the MP group either by output
// columns (ColumnLinear) or input rows (RowLinear); the conjugate
// "f"/"g" operators place one all-reduce in the forward pass (g, after a
// row-parallel layer) and one in the backward pass (f, before a
// column-parallel layer). A transformer block composes two such pairs —
// attention and MLP — giving the 2-all-reduces-forward,
// 2-backward, 2-recompute pattern whose volume §8 counts as
// 12 × batch × seq × hidden per block.
package mp

import (
	"math/rand"

	"repro/internal/comm"
	"repro/internal/tensor"
)

// Reducer is the communication surface the parallel layers need: an
// all-reduce over the model-parallel group. Any *comm.Comm implements it —
// the whole world as one MP group, or a sub-communicator carved out by
// Comm.Split/MPGroup (an MP slice of a 2D MP x DP layout).
type Reducer interface {
	AllReduce(x []float32)
	Rank() int
	Size() int
}

// ColumnLinear is a linear layer with its weight matrix split by output
// columns across the MP group: rank r holds W[:, cols_r]. The forward pass
// needs the full input (replicated); the backward pass all-reduces the
// input gradient (the "f" operator).
type ColumnLinear struct {
	c        Reducer
	in       int
	outTotal int
	cols     comm.Range // owned output columns

	W  []float32 // [in × ownCols]
	B  []float32 // [ownCols]
	DW []float32
	DB []float32

	x []float32 // saved input for backward
	m int
}

// NewColumnLinear builds rank c.Rank()'s shard of an in×out layer. The full
// weight matrix is generated deterministically from seed on every rank and
// sliced, so an MP group reconstructs exactly the same layer a serial
// process would build.
func NewColumnLinear(c Reducer, in, out int, seed int64) *ColumnLinear {
	parts := comm.Partition(out, c.Size())
	cols := parts[c.Rank()]
	l := &ColumnLinear{
		c: c, in: in, outTotal: out, cols: cols,
		W:  make([]float32, in*cols.Len()),
		B:  make([]float32, cols.Len()),
		DW: make([]float32, in*cols.Len()),
		DB: make([]float32, cols.Len()),
	}
	full := fullWeight(in, out, seed)
	for i := 0; i < in; i++ {
		copy(l.W[i*cols.Len():(i+1)*cols.Len()], full[i*out+cols.Lo:i*out+cols.Hi])
	}
	return l
}

// OutLocal returns the owned output width.
func (l *ColumnLinear) OutLocal() int { return l.cols.Len() }

// Forward computes y_local[M × ownCols] = x·W_r + b_r. x must be the full
// (replicated) input.
func (l *ColumnLinear) Forward(x []float32, m int) []float32 {
	l.x = append(l.x[:0], x...)
	l.m = m
	y := make([]float32, m*l.cols.Len())
	tensor.MatMul(y, x, l.W, m, l.in, l.cols.Len())
	tensor.AddBiasRows(y, l.B, m, l.cols.Len())
	return y
}

// Backward consumes dy_local and returns the full input gradient,
// all-reduced across the group (each rank contributes the part flowing
// through its columns — the "f" operator's backward all-reduce).
func (l *ColumnLinear) Backward(dy []float32) []float32 {
	oc := l.cols.Len()
	tensor.MatMulATAdd(l.DW, l.x, dy, l.m, l.in, oc)
	tensor.BiasGradRows(l.DB, dy, l.m, oc)
	dx := make([]float32, l.m*l.in)
	tensor.MatMulBT(dx, dy, l.W, l.m, oc, l.in)
	l.c.AllReduce(dx)
	return dx
}

// RowLinear is a linear layer split by input rows: rank r holds W[rows_r, :]
// and consumes only its local slice of the input. The forward pass
// all-reduces the partial outputs (the "g" operator); the backward pass is
// communication-free.
type RowLinear struct {
	c    Reducer
	inT  int
	out  int
	rows comm.Range

	W  []float32 // [ownRows × out]
	B  []float32 // [out] (replicated; added once after the all-reduce)
	DW []float32
	DB []float32

	x []float32
	m int
}

// NewRowLinear builds rank c.Rank()'s shard of an in×out row-parallel
// layer from the same deterministic full matrix as a serial build.
func NewRowLinear(c Reducer, in, out int, seed int64) *RowLinear {
	parts := comm.Partition(in, c.Size())
	rows := parts[c.Rank()]
	l := &RowLinear{
		c: c, inT: in, out: out, rows: rows,
		W:  make([]float32, rows.Len()*out),
		B:  make([]float32, out),
		DW: make([]float32, rows.Len()*out),
		DB: make([]float32, out),
	}
	full := fullWeight(in, out, seed)
	copy(l.W, full[rows.Lo*out:rows.Hi*out])
	return l
}

// InLocal returns the owned input width.
func (l *RowLinear) InLocal() int { return l.rows.Len() }

// Forward computes the full output: y = all-reduce_r(x_r·W_r) + b. xLocal
// is this rank's [M × ownRows] input slice.
func (l *RowLinear) Forward(xLocal []float32, m int) []float32 {
	l.x = append(l.x[:0], xLocal...)
	l.m = m
	y := make([]float32, m*l.out)
	tensor.MatMul(y, xLocal, l.W, m, l.rows.Len(), l.out)
	l.c.AllReduce(y) // the "g" operator
	tensor.AddBiasRows(y, l.B, m, l.out)
	return y
}

// Backward consumes the full dy and returns the local input-slice gradient;
// no communication (g's backward is the identity).
func (l *RowLinear) Backward(dy []float32) []float32 {
	tensor.MatMulATAdd(l.DW, l.x, dy, l.m, l.rows.Len(), l.out)
	tensor.BiasGradRows(l.DB, dy, l.m, l.out)
	dx := make([]float32, l.m*l.rows.Len())
	tensor.MatMulBT(dx, dy, l.W, l.m, l.out, l.rows.Len())
	return dx
}

// fullWeight deterministically generates the unsharded in×out matrix.
func fullWeight(in, out int, seed int64) []float32 {
	r := rand.New(rand.NewSource(seed))
	w := make([]float32, in*out)
	for i := range w {
		w[i] = float32(r.NormFloat64()) * 0.05
	}
	return w
}
