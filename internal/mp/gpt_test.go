package mp

import (
	"math"
	"sync"
	"testing"

	"repro/internal/comm"
	"repro/internal/model"
	"repro/internal/tensor"
)

const gptVocab, gptSeq = 19, 8

func runGPT(n, layers, hidden, heads int, seed int64, ids, targets []int,
	batch, steps int, lr float32) (loss []float64, tokEmb []float32) {
	w := comm.NewWorld(n)
	losses := make([]float64, n)
	var mu sync.Mutex
	w.Run(func(c *comm.Comm) {
		m := NewGPT(c, layers, hidden, heads, gptVocab, gptSeq, seed)
		var l float64
		for s := 0; s < steps; s++ {
			m.ZeroGrads()
			l = m.Loss(ids, targets, batch)
			m.Backward()
			m.SGDStep(lr)
		}
		mu.Lock()
		losses[c.Rank()] = l
		if c.Rank() == 0 {
			tokEmb = append([]float32(nil), m.TokEmb...)
		}
		mu.Unlock()
	})
	return losses, tokEmb
}

// MP-degree invariance for the full model: loss and the replicated
// parameter trajectory are independent of how many ranks the blocks are
// sharded over (MP=1 is the serial reference).
func TestGPTDegreeInvariance(t *testing.T) {
	const layers, hidden, heads, batch, steps = 2, 16, 4, 2, 3
	ids, targets := model.SyntheticBatch(41, batch, gptSeq, gptVocab)

	refLoss, refEmb := runGPT(1, layers, hidden, heads, 9, ids, targets, batch, steps, 0.01)
	for _, n := range []int{2, 4} {
		loss, emb := runGPT(n, layers, hidden, heads, 9, ids, targets, batch, steps, 0.01)
		for r := 0; r < n; r++ {
			if math.Abs(loss[r]-refLoss[0]) > 1e-4 {
				t.Errorf("n=%d rank %d: loss %v != serial %v", n, r, loss[r], refLoss[0])
			}
		}
		if d := tensor.MaxDiff(emb, refEmb); d > 1e-3 {
			t.Errorf("n=%d: trained embeddings differ from serial by %g", n, d)
		}
	}
}

// Replicated gradients (embeddings, layernorms) must come out bitwise
// identical on every MP rank without any synchronization: the "g"
// all-reduces keep the sub-layer outputs replicated, so the backward flows
// are identical.
func TestGPTReplicatedGradsAgreeAcrossRanks(t *testing.T) {
	const n, layers, hidden, heads, batch = 4, 2, 16, 4, 2
	ids, targets := model.SyntheticBatch(43, batch, gptSeq, gptVocab)
	w := comm.NewWorld(n)
	grads := make([][][]float32, n)
	w.Run(func(c *comm.Comm) {
		m := NewGPT(c, layers, hidden, heads, gptVocab, gptSeq, 7)
		m.ZeroGrads()
		m.Loss(ids, targets, batch)
		m.Backward()
		var cp [][]float32
		for _, g := range m.ReplicatedGrads() {
			cp = append(cp, append([]float32(nil), g...))
		}
		grads[c.Rank()] = cp
	})
	for r := 1; r < n; r++ {
		for i := range grads[0] {
			if d := tensor.MaxDiff(grads[r][i], grads[0][i]); d != 0 {
				t.Fatalf("replicated grad %d differs between ranks 0 and %d by %g", i, r, d)
			}
		}
	}
}

// Full-model gradient check at MP=2: finite differences through the
// sharded and replicated parameters.
func TestGPTGradientCheck(t *testing.T) {
	const n, layers, hidden, heads, batch = 2, 1, 8, 2, 1
	ids, targets := model.SyntheticBatch(47, batch, gptSeq, gptVocab)
	w := comm.NewWorld(n)
	w.Run(func(c *comm.Comm) {
		m := NewGPT(c, layers, hidden, heads, gptVocab, gptSeq, 13)
		m.ZeroGrads()
		m.Loss(ids, targets, batch)
		m.Backward()
		params, grads := m.paramGrads()
		const eps = 1e-3
		for pi := range params {
			i := len(params[pi]) / 2
			analytic := float64(grads[pi][i])
			orig := params[pi][i]
			params[pi][i] = orig + eps
			lp := m.Loss(ids, targets, batch)
			params[pi][i] = orig - eps
			lm := m.Loss(ids, targets, batch)
			params[pi][i] = orig
			numeric := (lp - lm) / (2 * eps)
			// NOTE: Loss is collective — all ranks perturb their own copy,
			// which for sharded tensors perturbs different logical
			// parameters. Restrict the check to replicated tensors (the
			// first 4 + per-block layernorms at indices 4..7 per block).
			isReplicated := pi < 4 || (pi >= 4 && (pi-4)%12 < 4)
			if !isReplicated {
				continue
			}
			if math.Abs(analytic-numeric) > 2e-2*math.Max(1, math.Abs(numeric)) {
				t.Errorf("param group %d grad[%d]: analytic %v numeric %v", pi, i, analytic, numeric)
			}
		}
	})
}

// The flagship integration: ZeRO-style data parallelism ACROSS nodes with
// Megatron MP INSIDE — a 2 MP × 2 DP grid training the full GPT, verified
// against the same model at MP=2, DP=1 on the full batch.
func TestGPT2DTrainingMatchesSingleReplica(t *testing.T) {
	const (
		mpSize = 2
		layers = 2
		hidden = 16
		heads  = 4
		batch  = 4
		steps  = 3
		lr     = 0.01
	)
	ids, targets := model.SyntheticBatch(53, batch, gptSeq, gptVocab)

	// Reference: one replica (MP=2), full batch.
	refW := comm.NewWorld(mpSize)
	var refEmb []float32
	refW.Run(func(c *comm.Comm) {
		m := NewGPT(c, layers, hidden, heads, gptVocab, gptSeq, 17)
		for s := 0; s < steps; s++ {
			m.ZeroGrads()
			m.Loss(ids, targets, batch)
			m.Backward()
			m.SGDStep(lr)
		}
		if c.Rank() == 0 {
			refEmb = append([]float32(nil), m.TokEmb...)
		}
	})

	// 2×2 grid: each replica trains on half the batch; gradients averaged
	// across the DP groups before the step.
	w := comm.NewWorld(mpSize * 2)
	var gridEmb []float32
	var mu sync.Mutex
	w.Run(func(c *comm.Comm) {
		mpGroup := mustGroup(c.MPGroup(mpSize))
		dpGroup := mustGroup(c.DPGroup(mpSize))
		replica := c.Rank() / mpSize
		m := NewGPT(mpGroup, layers, hidden, heads, gptVocab, gptSeq, 17)

		sIDs, sTg, per := model.ShardBatch(ids, targets, batch, 2, replica)
		for s := 0; s < steps; s++ {
			m.ZeroGrads()
			m.Loss(sIDs, sTg, per)
			m.Backward()
			for _, g := range m.ShardGrads() {
				dpGroup.AllReduceAvg(g)
			}
			for _, g := range m.ReplicatedGrads() {
				dpGroup.AllReduceAvg(g)
			}
			m.SGDStep(lr)
		}
		if c.Rank() == 0 {
			mu.Lock()
			gridEmb = append([]float32(nil), m.TokEmb...)
			mu.Unlock()
		}
	})

	if d := tensor.MaxDiff(gridEmb, refEmb); d > 2e-4 {
		t.Errorf("2D-trained embeddings differ from single-replica full batch by %g", d)
	}
}

// The full model learns under MP: loss falls over training.
func TestGPTLearns(t *testing.T) {
	const layers, hidden, heads, batch = 2, 32, 4, 4
	ids, targets := model.SyntheticBatch(61, batch, gptSeq, gptVocab)
	w := comm.NewWorld(2)
	var first, last float64
	w.Run(func(c *comm.Comm) {
		m := NewGPT(c, layers, hidden, heads, gptVocab, gptSeq, 5)
		for s := 0; s < 25; s++ {
			m.ZeroGrads()
			l := m.Loss(ids, targets, batch)
			m.Backward()
			m.SGDStep(0.05)
			if c.Rank() == 0 {
				if s == 0 {
					first = l
				}
				last = l
			}
		}
	})
	if last >= first-0.3 {
		t.Errorf("GPT under MP did not learn: %.4f -> %.4f", first, last)
	}
}

func TestGPTNumParams(t *testing.T) {
	w := comm.NewWorld(1)
	w.Run(func(c *comm.Comm) {
		m := NewGPT(c, 2, 16, 2, gptVocab, gptSeq, 1)
		want := model.Config{Layers: 2, Hidden: 16, Heads: 2, Vocab: gptVocab, Seq: gptSeq}.ParamCount()
		if m.NumParams() != want {
			t.Errorf("NumParams = %d, want %d (must agree with internal/model)", m.NumParams(), want)
		}
	})
}
