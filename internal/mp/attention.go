package mp

import (
	"math"

	"repro/internal/comm"
	"repro/internal/tensor"
)

// ParallelAttention is Megatron's head-parallel self-attention: the QKV
// projection is column-split so each MP rank owns a contiguous subset of
// attention heads and computes their attention entirely locally; the output
// projection is row-split, finishing with the "g" all-reduce. Together with
// ParallelMLP this gives the full Megatron transformer block: one forward
// and one backward all-reduce per sub-layer.
type ParallelAttention struct {
	g          Reducer
	hidden     int
	headsTotal int
	dh         int
	heads      comm.Range // owned head indices

	WQKV  []float32 // [hidden × 3·ow], local column layout [Q|K|V]
	BQKV  []float32 // [3·ow]
	WProj []float32 // [ow × hidden] (row shard)
	BProj []float32 // [hidden] (replicated)

	DWQKV  []float32
	DBQKV  []float32
	DWProj []float32
	DBProj []float32

	// saved forward state
	x     []float32
	qkv   []float32
	probs []float32
	ctx   []float32
	batch int
	seq   int
}

// NewParallelAttention builds this rank's head shard. heads must be
// divisible by the group size; hidden by heads. Full weight matrices are
// generated deterministically from seed and sliced, so any group size
// computes the same attention function.
func NewParallelAttention(g Reducer, hidden, heads int, seed int64) *ParallelAttention {
	if heads%g.Size() != 0 {
		panic("mp: heads must be divisible by the MP degree")
	}
	if hidden%heads != 0 {
		panic("mp: hidden must be divisible by heads")
	}
	dh := hidden / heads
	parts := comm.Partition(heads, g.Size())
	own := parts[g.Rank()]
	ow := own.Len() * dh

	a := &ParallelAttention{
		g: g, hidden: hidden, headsTotal: heads, dh: dh, heads: own,
		WQKV: make([]float32, hidden*3*ow), BQKV: make([]float32, 3*ow),
		WProj: make([]float32, ow*hidden), BProj: make([]float32, hidden),
		DWQKV: make([]float32, hidden*3*ow), DBQKV: make([]float32, 3*ow),
		DWProj: make([]float32, ow*hidden), DBProj: make([]float32, hidden),
	}
	// Slice the full [hidden × 3·hidden] QKV matrix: the owned columns are
	// [Q: own.Lo·dh..own.Hi·dh], shifted by hidden for K and 2·hidden for V.
	fullQKV := fullWeight(hidden, 3*hidden, seed)
	for i := 0; i < hidden; i++ {
		for s := 0; s < 3; s++ { // Q, K, V sections
			src := fullQKV[i*3*hidden+s*hidden+own.Lo*dh : i*3*hidden+s*hidden+own.Hi*dh]
			copy(a.WQKV[i*3*ow+s*ow:i*3*ow+(s+1)*ow], src)
		}
	}
	// Row shard of the full [hidden × hidden] projection.
	fullProj := fullWeight(hidden, hidden, seed+1)
	copy(a.WProj, fullProj[own.Lo*dh*hidden:own.Hi*dh*hidden])
	return a
}

// ownWidth returns ow = ownHeads·dh.
func (a *ParallelAttention) ownWidth() int { return a.heads.Len() * a.dh }

// Forward computes causal multi-head self-attention over the replicated
// input x[(batch·seq) × hidden] and returns the replicated output.
func (a *ParallelAttention) Forward(x []float32, batch, seq int) []float32 {
	m := batch * seq
	ow := a.ownWidth()
	a.x = append(a.x[:0], x...)
	a.batch, a.seq = batch, seq

	a.qkv = make([]float32, m*3*ow)
	tensor.MatMul(a.qkv, x, a.WQKV, m, a.hidden, 3*ow)
	tensor.AddBiasRows(a.qkv, a.BQKV, m, 3*ow)

	nOwn := a.heads.Len()
	a.probs = make([]float32, batch*nOwn*seq*seq)
	a.ctx = make([]float32, m*ow)
	scale := float32(1 / math.Sqrt(float64(a.dh)))
	qh := make([]float32, seq*a.dh)
	kh := make([]float32, seq*a.dh)
	vh := make([]float32, seq*a.dh)
	ctxh := make([]float32, seq*a.dh)
	for b := 0; b < batch; b++ {
		for hd := 0; hd < nOwn; hd++ {
			a.gatherHead(a.qkv, qh, kh, vh, b, hd, seq)
			probs := a.probs[(b*nOwn+hd)*seq*seq : (b*nOwn+hd+1)*seq*seq]
			tensor.MatMulBT(probs, qh, kh, seq, a.dh, seq)
			for t := 0; t < seq; t++ {
				row := probs[t*seq : (t+1)*seq]
				for u := range row {
					if u > t {
						row[u] = -1e9
					} else {
						row[u] *= scale
					}
				}
			}
			tensor.SoftmaxRows(probs, probs, seq, seq)
			tensor.MatMul(ctxh, probs, vh, seq, seq, a.dh)
			for t := 0; t < seq; t++ {
				copy(a.ctx[(b*seq+t)*ow+hd*a.dh:(b*seq+t)*ow+(hd+1)*a.dh], ctxh[t*a.dh:(t+1)*a.dh])
			}
		}
	}

	y := make([]float32, m*a.hidden)
	tensor.MatMul(y, a.ctx, a.WProj, m, ow, a.hidden)
	a.g.AllReduce(y) // "g": sum the head-shard contributions
	tensor.AddBiasRows(y, a.BProj, m, a.hidden)
	return y
}

// gatherHead copies one (sample, local head) of the packed local QKV into
// contiguous [seq × dh] scratch.
func (a *ParallelAttention) gatherHead(qkv, qh, kh, vh []float32, b, hd, seq int) {
	ow := a.ownWidth()
	for t := 0; t < seq; t++ {
		base := (b*seq + t) * 3 * ow
		copy(qh[t*a.dh:(t+1)*a.dh], qkv[base+hd*a.dh:base+(hd+1)*a.dh])
		copy(kh[t*a.dh:(t+1)*a.dh], qkv[base+ow+hd*a.dh:base+ow+(hd+1)*a.dh])
		copy(vh[t*a.dh:(t+1)*a.dh], qkv[base+2*ow+hd*a.dh:base+2*ow+(hd+1)*a.dh])
	}
}

// Backward consumes the replicated dy and returns the replicated dx (the
// "f" all-reduce), accumulating the shard's weight gradients.
func (a *ParallelAttention) Backward(dy []float32) []float32 {
	m := a.batch * a.seq
	ow := a.ownWidth()
	seq := a.seq

	tensor.BiasGradRows(a.DBProj, dy, m, a.hidden)
	dCtx := make([]float32, m*ow)
	tensor.MatMulBT(dCtx, dy, a.WProj, m, a.hidden, ow)
	tensor.MatMulATAdd(a.DWProj, a.ctx, dy, m, ow, a.hidden)

	nOwn := a.heads.Len()
	dQKV := make([]float32, m*3*ow)
	scale := float32(1 / math.Sqrt(float64(a.dh)))
	qh := make([]float32, seq*a.dh)
	kh := make([]float32, seq*a.dh)
	vh := make([]float32, seq*a.dh)
	dctxh := make([]float32, seq*a.dh)
	dP := make([]float32, seq*seq)
	dS := make([]float32, seq*seq)
	dqh := make([]float32, seq*a.dh)
	dkh := make([]float32, seq*a.dh)
	dvh := make([]float32, seq*a.dh)
	for b := 0; b < a.batch; b++ {
		for hd := 0; hd < nOwn; hd++ {
			a.gatherHead(a.qkv, qh, kh, vh, b, hd, seq)
			probs := a.probs[(b*nOwn+hd)*seq*seq : (b*nOwn+hd+1)*seq*seq]
			for t := 0; t < seq; t++ {
				copy(dctxh[t*a.dh:(t+1)*a.dh], dCtx[(b*seq+t)*ow+hd*a.dh:(b*seq+t)*ow+(hd+1)*a.dh])
			}
			tensor.MatMulBT(dP, dctxh, vh, seq, a.dh, seq)
			tensor.MatMulAT(dvh, probs, dctxh, seq, seq, a.dh)
			tensor.Zero(dS)
			tensor.SoftmaxRowsBackward(dS, dP, probs, seq, seq)
			tensor.Scale(dS, scale)
			tensor.MatMul(dqh, dS, kh, seq, seq, a.dh)
			tensor.MatMulAT(dkh, dS, qh, seq, seq, a.dh)
			for t := 0; t < seq; t++ {
				base := (b*seq + t) * 3 * ow
				copy(dQKV[base+hd*a.dh:base+(hd+1)*a.dh], dqh[t*a.dh:(t+1)*a.dh])
				copy(dQKV[base+ow+hd*a.dh:base+ow+(hd+1)*a.dh], dkh[t*a.dh:(t+1)*a.dh])
				copy(dQKV[base+2*ow+hd*a.dh:base+2*ow+(hd+1)*a.dh], dvh[t*a.dh:(t+1)*a.dh])
			}
		}
	}

	tensor.MatMulATAdd(a.DWQKV, a.x, dQKV, m, a.hidden, 3*ow)
	tensor.BiasGradRows(a.DBQKV, dQKV, m, 3*ow)
	dx := make([]float32, m*a.hidden)
	tensor.MatMulBT(dx, dQKV, a.WQKV, m, 3*ow, a.hidden)
	a.g.AllReduce(dx) // "f": combine head-shard input gradients
	return dx
}
