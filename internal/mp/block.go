package mp

import "repro/internal/tensor"

// ParallelBlock is the complete Megatron transformer block: layernorm →
// head-parallel attention → residual → layernorm → tensor-parallel MLP →
// residual. Layernorm parameters are replicated across the MP group (as in
// Megatron); their gradients come out identical on every rank because the
// sub-layer outputs are replicated by the "g" all-reduces.
type ParallelBlock struct {
	Attn *ParallelAttention
	MLP  *ParallelMLP

	Gamma1, Beta1   []float32
	Gamma2, Beta2   []float32
	DGamma1, DBeta1 []float32
	DGamma2, DBeta2 []float32

	hidden int

	// saved forward state
	x, xhat1, invStd1  []float32
	x2, xhat2, invStd2 []float32
	m                  int
}

// NewParallelBlock builds this rank's shard of a transformer block.
func NewParallelBlock(g Reducer, hidden, heads int, seed int64) *ParallelBlock {
	b := &ParallelBlock{
		Attn:   NewParallelAttention(g, hidden, heads, seed),
		MLP:    NewParallelMLP(g, hidden, seed+10),
		Gamma1: make([]float32, hidden), Beta1: make([]float32, hidden),
		Gamma2: make([]float32, hidden), Beta2: make([]float32, hidden),
		DGamma1: make([]float32, hidden), DBeta1: make([]float32, hidden),
		DGamma2: make([]float32, hidden), DBeta2: make([]float32, hidden),
		hidden: hidden,
	}
	tensor.Fill(b.Gamma1, 1)
	tensor.Fill(b.Gamma2, 1)
	return b
}

const blockLNEps = 1e-5

// Forward computes the block over the replicated x[(batch·seq) × hidden].
func (b *ParallelBlock) Forward(x []float32, batch, seq int) []float32 {
	m := batch * seq
	b.m = m
	b.x = append(b.x[:0], x...)

	a := make([]float32, m*b.hidden)
	b.xhat1 = make([]float32, m*b.hidden)
	b.invStd1 = make([]float32, m)
	tensor.LayerNorm(a, b.xhat1, b.invStd1, x, b.Gamma1, b.Beta1, m, b.hidden, blockLNEps)

	attnOut := b.Attn.Forward(a, batch, seq)
	b.x2 = make([]float32, m*b.hidden)
	copy(b.x2, x)
	tensor.Add(b.x2, attnOut)

	mlin := make([]float32, m*b.hidden)
	b.xhat2 = make([]float32, m*b.hidden)
	b.invStd2 = make([]float32, m)
	tensor.LayerNorm(mlin, b.xhat2, b.invStd2, b.x2, b.Gamma2, b.Beta2, m, b.hidden, blockLNEps)

	out := b.MLP.Forward(mlin, m)
	tensor.Add(out, b.x2)
	return out
}

// Backward consumes the replicated dOut and returns the replicated dx,
// accumulating gradients in the shards and the replicated layernorms.
func (b *ParallelBlock) Backward(dOut []float32) []float32 {
	m := b.m
	dX2 := make([]float32, m*b.hidden)
	copy(dX2, dOut)

	dMlin := b.MLP.Backward(dOut)
	tensor.LayerNormBackward(dX2, b.DGamma2, b.DBeta2, dMlin, b.xhat2, b.invStd2, b.Gamma2, m, b.hidden)

	dA := b.Attn.Backward(dX2)
	dX := make([]float32, m*b.hidden)
	copy(dX, dX2)
	tensor.LayerNormBackward(dX, b.DGamma1, b.DBeta1, dA, b.xhat1, b.invStd1, b.Gamma1, m, b.hidden)
	return dX
}
