package mp

import (
	"math/rand"

	"repro/internal/tensor"
)

// CheckpointStore abstracts where activation checkpoints live between the
// forward and backward passes (mirrors model.CheckpointStore so ZeRO-R's
// stores plug into both model families).
type CheckpointStore interface {
	Put(layer int, x []float32)
	Get(layer int) []float32
}

// GPT is a complete Megatron-parallel GPT-2-like language model: replicated
// token/position embeddings and final layernorm around a stack of
// ParallelBlocks whose attention heads and MLP shards are split across the
// MP group. With the tied output head this is the model family of the
// paper's evaluation, runnable at any MP degree — the "Megatron-LM"
// baseline of §10.1 as an executable artifact, and the model a combined
// ZeRO-DP × MP deployment trains (MP group inside the node, DP across).
type GPT struct {
	g      Reducer
	Layers int
	Hidden int
	Heads  int
	Vocab  int
	Seq    int

	// Replicated parameters (identical on all MP ranks, as in Megatron).
	TokEmb, PosEmb   []float32
	GammaF, BetaF    []float32
	DTokEmb, DPosEmb []float32
	DGammaF, DBetaF  []float32

	Blocks []*ParallelBlock

	// Checkpoint enables activation checkpointing: the forward pass keeps
	// only each block's input and the backward pass re-runs the block
	// forward — re-performing its two MP all-reduces, which is exactly the
	// recompute traffic §8 counts ("two all-reduce for forward
	// re-computation"). With checkpointing on, a block's measured MP
	// traffic is the full 12·B·s·h of the paper's analysis.
	Checkpoint bool
	// Store routes checkpoints elsewhere when non-nil — ZeRO-R's Pa uses a
	// store that partitions them across this same MP group (whose block
	// inputs are replicated by construction, the precise §6.1 setting).
	Store CheckpointStore

	ckpts [][]float32 // inline checkpoint storage when Store is nil

	// saved forward state
	ids, targets  []int
	batch, seqLen int
	x0            []float32
	xhatF         []float32
	invStdF       []float32
	xf            []float32
	probs         []float32
}

// NewGPT builds this rank's shard of the model. All MP ranks must pass the
// same configuration and seed.
func NewGPT(g Reducer, layers, hidden, heads, vocab, seq int, seed int64) *GPT {
	m := &GPT{
		g: g, Layers: layers, Hidden: hidden, Heads: heads, Vocab: vocab, Seq: seq,
		TokEmb: make([]float32, vocab*hidden), PosEmb: make([]float32, seq*hidden),
		GammaF: make([]float32, hidden), BetaF: make([]float32, hidden),
		DTokEmb: make([]float32, vocab*hidden), DPosEmb: make([]float32, seq*hidden),
		DGammaF: make([]float32, hidden), DBetaF: make([]float32, hidden),
	}
	r := rand.New(rand.NewSource(seed))
	for i := range m.TokEmb {
		m.TokEmb[i] = float32(r.NormFloat64()) * 0.02
	}
	for i := range m.PosEmb {
		m.PosEmb[i] = float32(r.NormFloat64()) * 0.02
	}
	tensor.Fill(m.GammaF, 1)
	m.Blocks = make([]*ParallelBlock, layers)
	for i := range m.Blocks {
		m.Blocks[i] = NewParallelBlock(g, hidden, heads, seed+int64(100*(i+1)))
	}
	return m
}

// ZeroGrads clears every gradient buffer (replicated and sharded).
func (m *GPT) ZeroGrads() {
	tensor.Zero(m.DTokEmb)
	tensor.Zero(m.DPosEmb)
	tensor.Zero(m.DGammaF)
	tensor.Zero(m.DBetaF)
	for _, b := range m.Blocks {
		tensor.Zero(b.Attn.DWQKV)
		tensor.Zero(b.Attn.DBQKV)
		tensor.Zero(b.Attn.DWProj)
		tensor.Zero(b.Attn.DBProj)
		tensor.Zero(b.MLP.FC1.DW)
		tensor.Zero(b.MLP.FC1.DB)
		tensor.Zero(b.MLP.FC2.DW)
		tensor.Zero(b.MLP.FC2.DB)
		tensor.Zero(b.DGamma1)
		tensor.Zero(b.DBeta1)
		tensor.Zero(b.DGamma2)
		tensor.Zero(b.DBeta2)
	}
}

// Loss runs the forward pass and returns the mean next-token cross-entropy.
// ids/targets are batch×seqLen, row-major.
func (m *GPT) Loss(ids, targets []int, batch int) float64 {
	if len(ids) == 0 || len(ids)%batch != 0 || len(ids) != len(targets) {
		panic("mp: ids/targets must be batch x seqLen")
	}
	seqLen := len(ids) / batch
	if seqLen > m.Seq {
		panic("mp: sequence longer than configured maximum")
	}
	h := m.Hidden
	rows := batch * seqLen
	m.ids = append(m.ids[:0], ids...)
	m.targets = append(m.targets[:0], targets...)
	m.batch, m.seqLen = batch, seqLen

	m.x0 = make([]float32, rows*h)
	for b := 0; b < batch; b++ {
		for t := 0; t < seqLen; t++ {
			id := ids[b*seqLen+t]
			if id < 0 || id >= m.Vocab {
				panic("mp: token id out of range")
			}
			row := m.x0[(b*seqLen+t)*h : (b*seqLen+t+1)*h]
			copy(row, m.TokEmb[id*h:(id+1)*h])
			tensor.Add(row, m.PosEmb[t*h:(t+1)*h])
		}
	}

	x := m.x0
	if m.Checkpoint {
		m.ckpts = make([][]float32, m.Layers)
	}
	for i, blk := range m.Blocks {
		if m.Checkpoint {
			if m.Store != nil {
				m.Store.Put(i, x)
			} else {
				m.ckpts[i] = append([]float32(nil), x...)
			}
		}
		x = blk.Forward(x, batch, seqLen)
	}

	m.xhatF = make([]float32, rows*h)
	m.invStdF = make([]float32, rows)
	m.xf = make([]float32, rows*h)
	tensor.LayerNorm(m.xf, m.xhatF, m.invStdF, x, m.GammaF, m.BetaF, rows, h, blockLNEps)

	logits := make([]float32, rows*m.Vocab)
	tensor.MatMulBT(logits, m.xf, m.TokEmb, rows, h, m.Vocab)
	m.probs = make([]float32, rows*m.Vocab)
	return tensor.CrossEntropy(m.probs, logits, targets, rows, m.Vocab)
}

// Backward accumulates gradients for the last Loss call. Sharded block
// gradients land in the shards; replicated gradients (embeddings, final
// norm, layernorms) come out identical on every MP rank.
func (m *GPT) Backward() {
	h := m.Hidden
	rows := m.batch * m.seqLen

	dLogits := make([]float32, rows*m.Vocab)
	tensor.CrossEntropyBackward(dLogits, m.probs, m.targets, rows, m.Vocab)
	dXf := make([]float32, rows*h)
	tensor.MatMul(dXf, dLogits, m.TokEmb, rows, m.Vocab, h)
	tensor.MatMulATAdd(m.DTokEmb, dLogits, m.xf, rows, m.Vocab, h)

	dX := make([]float32, rows*h)
	tensor.LayerNormBackward(dX, m.DGammaF, m.DBetaF, dXf, m.xhatF, m.invStdF, m.GammaF, rows, h)

	for i := m.Layers - 1; i >= 0; i-- {
		if m.Checkpoint {
			// Re-materialize the checkpoint (all-gather under Pa) and
			// recompute the block's internals, re-running its forward
			// all-reduces.
			x := m.ckpts[i]
			if m.Store != nil {
				x = m.Store.Get(i)
			}
			m.Blocks[i].Forward(x, m.batch, m.seqLen)
		}
		dX = m.Blocks[i].Backward(dX)
	}

	for b := 0; b < m.batch; b++ {
		for t := 0; t < m.seqLen; t++ {
			id := m.ids[b*m.seqLen+t]
			row := dX[(b*m.seqLen+t)*h : (b*m.seqLen+t+1)*h]
			tensor.Add(m.DTokEmb[id*h:(id+1)*h], row)
			tensor.Add(m.DPosEmb[t*h:(t+1)*h], row)
		}
	}
}

// paramGrads returns (param, grad) slice pairs: replicated first, then this
// rank's shards. SGDStep and the 2D trainers walk this list.
func (m *GPT) paramGrads() (params, grads [][]float32) {
	params = [][]float32{m.TokEmb, m.PosEmb, m.GammaF, m.BetaF}
	grads = [][]float32{m.DTokEmb, m.DPosEmb, m.DGammaF, m.DBetaF}
	for _, b := range m.Blocks {
		params = append(params, b.Gamma1, b.Beta1, b.Gamma2, b.Beta2,
			b.Attn.WQKV, b.Attn.BQKV, b.Attn.WProj, b.Attn.BProj,
			b.MLP.FC1.W, b.MLP.FC1.B, b.MLP.FC2.W, b.MLP.FC2.B)
		grads = append(grads, b.DGamma1, b.DBeta1, b.DGamma2, b.DBeta2,
			b.Attn.DWQKV, b.Attn.DBQKV, b.Attn.DWProj, b.Attn.DBProj,
			b.MLP.FC1.DW, b.MLP.FC1.DB, b.MLP.FC2.DW, b.MLP.FC2.DB)
	}
	return params, grads
}

// SGDStep applies plain SGD to every parameter this rank owns.
func (m *GPT) SGDStep(lr float32) {
	params, grads := m.paramGrads()
	for i := range params {
		tensor.AXPY(-lr, grads[i], params[i])
	}
}

// ShardGrads returns this rank's sharded gradient buffers (the ones a DP
// group must average; replicated gradients are already identical across MP
// ranks but still need DP averaging — ReplicatedGrads lists those).
func (m *GPT) ShardGrads() [][]float32 {
	var out [][]float32
	for _, b := range m.Blocks {
		out = append(out, b.Attn.DWQKV, b.Attn.DBQKV, b.Attn.DWProj, b.Attn.DBProj,
			b.MLP.FC1.DW, b.MLP.FC1.DB, b.MLP.FC2.DW, b.MLP.FC2.DB)
	}
	return out
}

// ReplicatedGrads returns the gradients of MP-replicated parameters.
func (m *GPT) ReplicatedGrads() [][]float32 {
	out := [][]float32{m.DTokEmb, m.DPosEmb, m.DGammaF, m.DBetaF}
	for _, b := range m.Blocks {
		out = append(out, b.DGamma1, b.DBeta1, b.DGamma2, b.DBeta2)
	}
	return out
}

// NumParams returns the total logical parameter count (unsharded).
func (m *GPT) NumParams() int {
	h := m.Hidden
	return m.Vocab*h + m.Seq*h + 2*h + m.Layers*(12*h*h+13*h)
}
