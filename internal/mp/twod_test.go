package mp

import (
	"errors"
	"sync"
	"testing"

	"repro/internal/comm"
	"repro/internal/tensor"
)

// mustGroup unwraps a group-construction result inside a rank goroutine;
// construction only fails on inconsistent topologies, which the tests
// exercise separately through the error path.
func mustGroup(g *comm.Comm, err error) *comm.Comm {
	if err != nil {
		panic(err)
	}
	return g
}

// The paper's deployment topology (§10.1): Megatron MP inside each node,
// data parallelism across nodes. This test runs a 4-rank world as a 2×2
// grid — MP groups {0,1} and {2,3}, DP groups {0,2} and {1,3} — with each
// replica computing a ParallelBlock over its half of the global batch and
// the weight gradients summed across the DP groups, then checks the result
// against a serial (MP=1) run over the full batch.
func TestTwoDimensionalMPxDP(t *testing.T) {
	const (
		mpSize = 2
		dpSize = 2
		world  = mpSize * dpSize
		hidden = 16
		heads  = 4
		seq    = 6
		perDP  = 2 // batch rows per replica
		batch  = perDP * dpSize
	)
	m := batch * seq
	x := randInput(m, hidden, 51)
	dy := randInput(m, hidden, 52)

	// Serial reference over the full batch.
	var refY, refDW1 []float32
	refW := comm.NewWorld(1)
	refW.Run(func(c *comm.Comm) {
		blk := NewParallelBlock(c, hidden, heads, 66)
		refY = blk.Forward(x, batch, seq)
		blk.Backward(dy)
		refDW1 = append([]float32(nil), blk.MLP.FC1.DW...)
	})

	// 2×2 grid.
	w := comm.NewWorld(world)
	outputs := make([][]float32, world)
	dw1 := make([][]float32, world)
	mpRanks := make([]int, world)
	var mu sync.Mutex
	w.Run(func(c *comm.Comm) {
		mpGroup := mustGroup(c.MPGroup(mpSize))
		dpGroup := mustGroup(c.DPGroup(mpSize))
		replica := c.Rank() / mpSize

		blk := NewParallelBlock(mpGroup, hidden, heads, 66)

		// This replica's slice of the global batch.
		lo := replica * perDP * seq * hidden
		hi := (replica + 1) * perDP * seq * hidden
		y := blk.Forward(x[lo:hi], perDP, seq)
		blk.Backward(dy[lo:hi])

		// DP gradient sync: sum the matching weight shards across replicas
		// (full-batch gradient = sum of per-replica sums).
		for _, g := range [][]float32{
			blk.Attn.DWQKV, blk.Attn.DWProj, blk.MLP.FC1.DW, blk.MLP.FC2.DW,
			blk.DGamma1, blk.DBeta1, blk.DGamma2, blk.DBeta2,
		} {
			dpGroup.AllReduce(g)
		}

		mu.Lock()
		outputs[c.Rank()] = y
		dw1[c.Rank()] = append([]float32(nil), blk.MLP.FC1.DW...)
		mpRanks[c.Rank()] = mpGroup.Rank()
		mu.Unlock()
	})

	// Forward: each replica's output must equal the serial output rows.
	for r := 0; r < world; r++ {
		replica := r / mpSize
		lo := replica * perDP * seq * hidden
		hi := (replica + 1) * perDP * seq * hidden
		if d := tensor.MaxDiff(outputs[r], refY[lo:hi]); d > 1e-4 {
			t.Errorf("rank %d: replica output differs from serial rows by %g", r, d)
		}
	}

	// Backward: the DP-summed FC1 shard on each rank must equal the
	// corresponding column slice of the serial full-batch gradient.
	ffn := 4 * hidden
	parts := comm.Partition(ffn, mpSize)
	for r := 0; r < world; r++ {
		cols := parts[mpRanks[r]]
		want := make([]float32, hidden*cols.Len())
		for i := 0; i < hidden; i++ {
			copy(want[i*cols.Len():(i+1)*cols.Len()], refDW1[i*ffn+cols.Lo:i*ffn+cols.Hi])
		}
		if d := tensor.MaxDiff(dw1[r], want); d > 1e-3 {
			t.Errorf("rank %d: DP-summed FC1 gradient shard differs from serial by %g", r, d)
		}
	}

	// Both ranks of a DP group hold identical synced shards.
	for local := 0; local < mpSize; local++ {
		if d := tensor.MaxDiff(dw1[local], dw1[local+mpSize]); d != 0 {
			t.Errorf("DP group %d: replicas disagree on the synced gradient by %g", local, d)
		}
	}
}

// Group communicators: MP groups are consecutive, DP groups strided, and a
// group all-reduce only touches its members.
func TestGroupTopology(t *testing.T) {
	const world, mpSize = 6, 3
	w := comm.NewWorld(world)
	sums := make([]float32, world)
	w.Run(func(c *comm.Comm) {
		mpGroup := mustGroup(c.MPGroup(mpSize))
		dpGroup := mustGroup(c.DPGroup(mpSize))
		if mpGroup.Size() != mpSize || dpGroup.Size() != world/mpSize {
			t.Errorf("rank %d: group sizes %d/%d", c.Rank(), mpGroup.Size(), dpGroup.Size())
		}
		// Sum rank ids across the MP group: consecutive blocks.
		x := []float32{float32(c.Rank())}
		mpGroup.AllReduce(x)
		sums[c.Rank()] = x[0]
	})
	// Ranks 0,1,2 sum to 3; ranks 3,4,5 sum to 12.
	for r := 0; r < world; r++ {
		want := float32(3)
		if r >= mpSize {
			want = 12
		}
		if sums[r] != want {
			t.Errorf("rank %d: MP-group sum %v, want %v", r, sums[r], want)
		}
	}
}

func TestGroupBroadcastAndReduceScatter(t *testing.T) {
	const world = 4
	w := comm.NewWorld(world)
	w.Run(func(c *comm.Comm) {
		g := mustGroup(c.Subgroup([]int{0, 1, 2, 3}))
		// Broadcast from group root 2.
		x := make([]float32, 5)
		if g.Rank() == 2 {
			for i := range x {
				x[i] = float32(i) + 10
			}
		}
		g.Broadcast(x, 2)
		if x[4] != 14 {
			t.Errorf("rank %d: broadcast got %v", c.Rank(), x)
		}
		// Reduce-scatter + all-gather = all-reduce.
		y := make([]float32, 9)
		for i := range y {
			y[i] = float32(c.Rank() + 1)
		}
		parts := comm.Partition(len(y), g.Size())
		g.ReduceScatter(y, parts)
		g.AllGather(y, parts)
		for i, v := range y {
			if v != 10 { // 1+2+3+4
				t.Errorf("rank %d: y[%d] = %v, want 10", c.Rank(), i, v)
			}
		}
	})
}

// Group construction surfaces structured errors (no panics): invalid member
// lists are comm.ErrGroup, indivisible MP widths are comm.ErrTopology.
func TestGroupValidation(t *testing.T) {
	w := comm.NewWorld(4)
	w.Run(func(c *comm.Comm) {
		if c.Rank() != 0 {
			return
		}
		for name, members := range map[string][]int{
			"not a member": {1, 2},
			"duplicate":    {0, 0},
			"out of range": {0, 9},
		} {
			if _, err := c.Subgroup(members); !errors.Is(err, comm.ErrGroup) {
				t.Errorf("%s: err = %v, want comm.ErrGroup", name, err)
			}
		}
		if _, err := c.MPGroup(3); !errors.Is(err, comm.ErrTopology) {
			t.Error("indivisible mpSize must be comm.ErrTopology")
		}
	})
}
