package mp

import (
	"math"
	"sync"
	"testing"

	"repro/internal/comm"
	"repro/internal/tensor"
)

// runBlockOnWorld runs one forward+backward of a ParallelBlock on an
// n-rank MP group over replicated input, returning rank 0's output, dx,
// and the replicated layernorm gradients.
func runBlockOnWorld(n, hidden, heads, batch, seq int, seed int64, x, dy []float32) (y, dx, dG1 []float32) {
	w := comm.NewWorld(n)
	var mu sync.Mutex
	w.Run(func(c *comm.Comm) {
		blk := NewParallelBlock(c, hidden, heads, seed)
		out := blk.Forward(x, batch, seq)
		din := blk.Backward(dy)
		if c.Rank() == 0 {
			mu.Lock()
			y = out
			dx = din
			dG1 = append([]float32(nil), blk.DGamma1...)
			mu.Unlock()
		}
	})
	return y, dx, dG1
}

// The MP degree must be invisible: running the identical block on 1, 2 and
// 4 ranks computes the same function and the same gradients (the MP=1 run
// is the serial reference).
func TestParallelBlockDegreeInvariance(t *testing.T) {
	const hidden, heads, batch, seq = 16, 4, 2, 6
	m := batch * seq
	x := randInput(m, hidden, 21)
	dy := randInput(m, hidden, 22)

	refY, refDx, refDG1 := runBlockOnWorld(1, hidden, heads, batch, seq, 33, x, dy)
	for _, n := range []int{2, 4} {
		y, dx, dG1 := runBlockOnWorld(n, hidden, heads, batch, seq, 33, x, dy)
		if d := tensor.MaxDiff(y, refY); d > 1e-4 {
			t.Errorf("n=%d: forward differs from serial by %g", n, d)
		}
		if d := tensor.MaxDiff(dx, refDx); d > 1e-4 {
			t.Errorf("n=%d: dx differs from serial by %g", n, d)
		}
		if d := tensor.MaxDiff(dG1, refDG1); d > 1e-4 {
			t.Errorf("n=%d: layernorm grads differ from serial by %g", n, d)
		}
	}
}

// Gradient check of the serial (MP=1) block: validates the attention
// backward math against finite differences through a scalar functional.
func TestParallelBlockGradientCheck(t *testing.T) {
	const hidden, heads, batch, seq = 8, 2, 1, 4
	m := batch * seq
	x := randInput(m, hidden, 31)
	wvec := randInput(m, hidden, 32)

	w := comm.NewWorld(1)
	w.Run(func(c *comm.Comm) {
		blk := NewParallelBlock(c, hidden, heads, 44)
		loss := func() float64 {
			y := blk.Forward(x, batch, seq)
			return tensor.Dot(y, wvec)
		}
		_ = loss()
		dx := blk.Backward(wvec)

		const eps = 1e-3
		for _, i := range []int{0, m * hidden / 2, m*hidden - 1} {
			orig := x[i]
			x[i] = orig + eps
			lp := loss()
			x[i] = orig - eps
			lm := loss()
			x[i] = orig
			numeric := (lp - lm) / (2 * eps)
			if diff := math.Abs(float64(dx[i]) - numeric); diff > 2e-2 {
				t.Errorf("dx[%d]: analytic %v numeric %v", i, dx[i], numeric)
			}
		}
		// A weight probe in each shard type.
		probes := []struct {
			name string
			w, g []float32
		}{
			{"attn.wqkv", blk.Attn.WQKV, blk.Attn.DWQKV},
			{"attn.wproj", blk.Attn.WProj, blk.Attn.DWProj},
			{"ln1.gamma", blk.Gamma1, blk.DGamma1},
			{"mlp.fc1", blk.MLP.FC1.W, blk.MLP.FC1.DW},
		}
		for _, p := range probes {
			i := len(p.w) / 2
			orig := p.w[i]
			p.w[i] = orig + eps
			lp := loss()
			p.w[i] = orig - eps
			lm := loss()
			p.w[i] = orig
			numeric := (lp - lm) / (2 * eps)
			if diff := math.Abs(float64(p.g[i]) - numeric); diff > 3e-2 {
				t.Errorf("%s grad[%d]: analytic %v numeric %v", p.name, i, p.g[i], numeric)
			}
		}
	})
}

// Head sharding: each rank stores ~1/Nm of the attention weights.
func TestAttentionWeightSharding(t *testing.T) {
	const hidden, heads = 32, 8
	for _, n := range []int{2, 4} {
		w := comm.NewWorld(n)
		var mu sync.Mutex
		w.Run(func(c *comm.Comm) {
			a := NewParallelAttention(c, hidden, heads, 1)
			mu.Lock()
			defer mu.Unlock()
			if got, want := len(a.WQKV), hidden*3*hidden/n; got != want {
				t.Errorf("n=%d rank %d: WQKV shard %d, want %d", n, c.Rank(), got, want)
			}
			if got, want := len(a.WProj), hidden*hidden/n; got != want {
				t.Errorf("n=%d rank %d: WProj shard %d, want %d", n, c.Rank(), got, want)
			}
		})
	}
}

// The block performs exactly 2 forward + 2 backward all-reduces of
// batch·seq·hidden elements — the §8 accounting (without recompute).
func TestBlockAllReduceCount(t *testing.T) {
	const n, hidden, heads, batch, seq = 4, 16, 4, 2, 8
	m := batch * seq
	x := randInput(m, hidden, 3)
	dy := randInput(m, hidden, 4)
	w := comm.NewWorld(n)
	w.Run(func(c *comm.Comm) {
		blk := NewParallelBlock(c, hidden, heads, 5)
		blk.Forward(x, batch, seq)
		blk.Backward(dy)
	})
	// 4 all-reduces × 2·M·h·(N-1)/N per rank.
	want := int64(4 * 2 * m * hidden * (n - 1) / n)
	for r := 0; r < n; r++ {
		if got := w.Stats(r).ElemsSent; got != want {
			t.Errorf("rank %d sent %d elems, want %d (4 all-reduces of M·h)", r, got, want)
		}
	}
}

func TestAttentionValidation(t *testing.T) {
	w := comm.NewWorld(2)
	w.Run(func(c *comm.Comm) {
		defer func() {
			if recover() == nil {
				t.Error("expected panic: heads not divisible by MP degree")
			}
		}()
		NewParallelAttention(c, 16, 3, 1)
	})
}
