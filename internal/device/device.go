// Package device simulates a GPU's device memory: a capacity-bounded flat
// address space managed by a caching allocator modeled on the PyTorch CUDA
// allocator the paper trained against.
//
// The simulation reproduces the two failure modes ZeRO-R's memory
// defragmentation (MD) targets (§6.3):
//
//  1. OOM from fragmentation: an allocation fails when no *contiguous*
//     region is large enough, even though total free memory exceeds the
//     request ("over 30% of memory still available in some extreme cases").
//  2. Allocator cache growth: freed blocks are cached rather than returned,
//     so "max cache allocated" (Figure 7) exceeds live memory.
//
// The allocator keeps an address-ordered segment list with three states
// (used, cached, free). Alloc prefers a best-fit cached block (a cache hit,
// like PyTorch reusing a cudaMalloc'd segment), then carves from virgin
// address space; on failure it flushes the cache (cudaEmptyCache) and
// retries before reporting OOM.
package device

import (
	"errors"
	"fmt"
	"sort"
)

// ErrOOM is returned when an allocation cannot be satisfied even after
// flushing the allocator cache.
var ErrOOM = errors.New("device: out of memory")

// OOMError carries the diagnosis of a failed allocation: whether it was a
// true capacity exhaustion or a fragmentation failure (enough free bytes,
// no contiguous run).
type OOMError struct {
	Request     int64
	FreeTotal   int64 // free + cached bytes at failure time
	LargestFree int64 // largest contiguous free-or-cached run
	Fragmented  bool  // true when FreeTotal >= Request but LargestFree < Request
}

func (e *OOMError) Error() string {
	kind := "capacity"
	if e.Fragmented {
		kind = "fragmentation"
	}
	return fmt.Sprintf("device: out of memory (%s): request %d, free %d, largest contiguous %d",
		kind, e.Request, e.FreeTotal, e.LargestFree)
}

// Unwrap lets errors.Is(err, ErrOOM) match OOMError values.
func (e *OOMError) Unwrap() error { return ErrOOM }

type segState uint8

const (
	segFree segState = iota
	segCached
	segUsed
)

type segment struct {
	addr  int64
	size  int64
	state segState
}

// Block is a live allocation on the device.
type Block struct {
	Addr int64
	Size int64
}

// Stats is a snapshot of allocator state, in bytes.
type Stats struct {
	Capacity     int64
	InUse        int64 // live allocations
	Cached       int64 // freed blocks retained by the allocator
	Free         int64 // virgin / released address space
	PeakInUse    int64 // high-water mark of InUse
	PeakReserved int64 // high-water mark of InUse+Cached: PyTorch "max cache allocated"
	AllocCount   int64
	CacheHits    int64
	DefragCopies int64 // blocks routed through a contiguous region (MD)
}

// Device is one simulated GPU's memory.
type Device struct {
	capacity int64
	segs     []segment // address-ordered, covers [0, capacity)
	stats    Stats
}

// New creates a device with the given memory capacity in bytes.
func New(capacity int64) *Device {
	if capacity <= 0 {
		panic("device: capacity must be positive")
	}
	return &Device{
		capacity: capacity,
		segs:     []segment{{addr: 0, size: capacity, state: segFree}},
		stats:    Stats{Capacity: capacity},
	}
}

// Capacity returns the device memory size in bytes.
func (d *Device) Capacity() int64 { return d.capacity }

// Stats returns a snapshot of the allocator counters.
func (d *Device) Stats() Stats {
	s := d.stats
	s.InUse, s.Cached, s.Free = d.tally()
	return s
}

func (d *Device) tally() (used, cached, free int64) {
	for _, s := range d.segs {
		switch s.state {
		case segUsed:
			used += s.size
		case segCached:
			cached += s.size
		case segFree:
			free += s.size
		}
	}
	return
}

// LargestContiguous returns the size of the largest contiguous run of
// free-or-cached memory — the biggest single allocation that could succeed
// after a cache flush.
func (d *Device) LargestContiguous() int64 {
	var best, run int64
	for _, s := range d.segs {
		if s.state == segUsed {
			if run > best {
				best = run
			}
			run = 0
			continue
		}
		run += s.size
	}
	if run > best {
		best = run
	}
	return best
}

// Alloc reserves size bytes and returns the block, or an *OOMError.
func (d *Device) Alloc(size int64) (Block, error) {
	if size <= 0 {
		panic("device: Alloc size must be positive")
	}
	d.stats.AllocCount++
	// 1. Best-fit cached block (cache hit).
	if i := d.bestFit(segCached, size); i >= 0 {
		d.stats.CacheHits++
		return d.claim(i, size), nil
	}
	// 2. First-fit virgin space.
	if i := d.firstFit(segFree, size); i >= 0 {
		return d.claim(i, size), nil
	}
	// 3. Flush cache (cudaEmptyCache) and retry, like PyTorch on OOM.
	d.EmptyCache()
	if i := d.firstFit(segFree, size); i >= 0 {
		return d.claim(i, size), nil
	}
	_, cached, free := d.tally()
	freeTotal := cached + free
	return Block{}, &OOMError{
		Request:     size,
		FreeTotal:   freeTotal,
		LargestFree: d.LargestContiguous(),
		Fragmented:  freeTotal >= size,
	}
}

// Free releases a block into the allocator cache (it stays reserved, as on
// a real GPU, until EmptyCache or an OOM-triggered flush).
func (d *Device) Free(b Block) {
	i := d.findUsed(b)
	d.segs[i].state = segCached
	d.coalesce(i, segCached)
}

// Release returns a block directly to virgin free space, bypassing the
// cache. Used by the MD contiguous regions, whose lifetime is managed
// explicitly.
func (d *Device) Release(b Block) {
	i := d.findUsed(b)
	d.segs[i].state = segFree
	d.coalesce(i, segFree)
}

// EmptyCache converts all cached segments to free and coalesces.
func (d *Device) EmptyCache() {
	for i := range d.segs {
		if d.segs[i].state == segCached {
			d.segs[i].state = segFree
		}
	}
	d.coalesceAll()
}

func (d *Device) findUsed(b Block) int {
	i := sort.Search(len(d.segs), func(i int) bool { return d.segs[i].addr >= b.Addr })
	if i == len(d.segs) || d.segs[i].addr != b.Addr || d.segs[i].state != segUsed || d.segs[i].size != b.Size {
		panic(fmt.Sprintf("device: Free of unknown block {addr:%d size:%d}", b.Addr, b.Size))
	}
	return i
}

// bestFit returns the index of the smallest segment in the given state with
// size >= want, or -1.
func (d *Device) bestFit(st segState, want int64) int {
	best, bestSize := -1, int64(-1)
	for i, s := range d.segs {
		if s.state == st && s.size >= want && (best == -1 || s.size < bestSize) {
			best, bestSize = i, s.size
		}
	}
	return best
}

// firstFit returns the lowest-address segment in the given state with
// size >= want, or -1.
func (d *Device) firstFit(st segState, want int64) int {
	for i, s := range d.segs {
		if s.state == st && s.size >= want {
			return i
		}
	}
	return -1
}

// claim converts segment i (free or cached) into a used block of exactly
// size bytes, splitting off any remainder in the segment's previous state.
func (d *Device) claim(i int, size int64) Block {
	s := d.segs[i]
	if s.size > size {
		rest := segment{addr: s.addr + size, size: s.size - size, state: s.state}
		d.segs[i].size = size
		d.segs = append(d.segs, segment{})
		copy(d.segs[i+2:], d.segs[i+1:])
		d.segs[i+1] = rest
	}
	d.segs[i].state = segUsed
	d.updatePeaks()
	return Block{Addr: s.addr, Size: size}
}

func (d *Device) updatePeaks() {
	used, cached, _ := d.tally()
	if used > d.stats.PeakInUse {
		d.stats.PeakInUse = used
	}
	if used+cached > d.stats.PeakReserved {
		d.stats.PeakReserved = used + cached
	}
}

// coalesce merges segment i with address-adjacent neighbors in the same
// state.
func (d *Device) coalesce(i int, st segState) {
	// Merge with successor first so index i stays valid.
	if i+1 < len(d.segs) && d.segs[i+1].state == st {
		d.segs[i].size += d.segs[i+1].size
		d.segs = append(d.segs[:i+1], d.segs[i+2:]...)
	}
	if i > 0 && d.segs[i-1].state == st {
		d.segs[i-1].size += d.segs[i].size
		d.segs = append(d.segs[:i], d.segs[i+1:]...)
	}
}

func (d *Device) coalesceAll() {
	out := d.segs[:0]
	for _, s := range d.segs {
		if n := len(out); n > 0 && out[n-1].state == s.state && s.state != segUsed {
			out[n-1].size += s.size
			continue
		}
		out = append(out, s)
	}
	d.segs = out
}

// ResetPeaks clears the high-water marks (PyTorch
// reset_max_memory_allocated/cached), so per-iteration peaks can be measured.
func (d *Device) ResetPeaks() {
	used, cached, _ := d.tally()
	d.stats.PeakInUse = used
	d.stats.PeakReserved = used + cached
}

// checkInvariants verifies the segment list covers [0, capacity) with no
// gaps or overlaps. Exposed for tests via Validate.
func (d *Device) checkInvariants() error {
	var addr int64
	for _, s := range d.segs {
		if s.addr != addr {
			return fmt.Errorf("device: segment gap/overlap at %d (expected %d)", s.addr, addr)
		}
		if s.size <= 0 {
			return fmt.Errorf("device: empty segment at %d", s.addr)
		}
		addr += s.size
	}
	if addr != d.capacity {
		return fmt.Errorf("device: segments cover %d of %d bytes", addr, d.capacity)
	}
	return nil
}

// Validate returns an error if the allocator's internal invariants are
// violated.
func (d *Device) Validate() error { return d.checkInvariants() }
