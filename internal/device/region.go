package device

import "fmt"

// Region is a pre-allocated contiguous chunk of device memory managed as a
// bump allocator. It implements ZeRO-R's memory defragmentation (MD, §6.3):
// long-lived tensors (activation checkpoints during forward, parameter
// gradients during backward) are copied into pre-allocated contiguous
// buffers instead of interleaving with short-lived tensors in the general
// heap, so the general heap never fragments around them.
type Region struct {
	dev   *Device
	block Block
	used  int64
	peak  int64
}

// NewRegion carves a contiguous region of the given size out of the device.
// Allocate MD regions before training begins, while the address space is
// still unfragmented.
func (d *Device) NewRegion(size int64) (*Region, error) {
	b, err := d.Alloc(size)
	if err != nil {
		return nil, fmt.Errorf("device: MD region of %d bytes: %w", size, err)
	}
	return &Region{dev: d, block: b}, nil
}

// Alloc bump-allocates size bytes inside the region. Unlike Device.Alloc,
// this can never fragment: the region is one block and reset wholesale.
func (r *Region) Alloc(size int64) (Block, error) {
	if size <= 0 {
		panic("device: Region.Alloc size must be positive")
	}
	if r.used+size > r.block.Size {
		return Block{}, &OOMError{
			Request:     size,
			FreeTotal:   r.block.Size - r.used,
			LargestFree: r.block.Size - r.used,
		}
	}
	b := Block{Addr: r.block.Addr + r.used, Size: size}
	r.used += size
	if r.used > r.peak {
		r.peak = r.used
	}
	r.dev.stats.DefragCopies++
	return b, nil
}

// Reset discards all bump allocations (the per-iteration lifetime of
// checkpoints and gradients).
func (r *Region) Reset() { r.used = 0 }

// Used returns the bytes currently bump-allocated.
func (r *Region) Used() int64 { return r.used }

// Peak returns the high-water mark of bump allocation.
func (r *Region) Peak() int64 { return r.peak }

// Size returns the region's total capacity.
func (r *Region) Size() int64 { return r.block.Size }

// Close returns the region's memory to the device free space.
func (r *Region) Close() {
	r.dev.Release(r.block)
	r.block = Block{}
	r.used = 0
}
