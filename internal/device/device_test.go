package device

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAllocFreeBasics(t *testing.T) {
	d := New(1000)
	b1, err := d.Alloc(400)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := d.Alloc(600)
	if err != nil {
		t.Fatal(err)
	}
	if b1.Addr == b2.Addr {
		t.Error("overlapping allocations")
	}
	st := d.Stats()
	if st.InUse != 1000 || st.Free != 0 {
		t.Errorf("stats after full alloc: %+v", st)
	}
	if _, err := d.Alloc(1); !errors.Is(err, ErrOOM) {
		t.Errorf("expected OOM, got %v", err)
	}
	d.Free(b1)
	d.Free(b2)
	st = d.Stats()
	if st.InUse != 0 || st.Cached != 1000 {
		t.Errorf("stats after free: %+v", st)
	}
	if err := d.Validate(); err != nil {
		t.Error(err)
	}
}

func TestCacheReuse(t *testing.T) {
	d := New(1000)
	b, _ := d.Alloc(256)
	d.Free(b)
	b2, err := d.Alloc(256)
	if err != nil {
		t.Fatal(err)
	}
	if b2.Addr != b.Addr {
		t.Errorf("expected cache reuse at addr %d, got %d", b.Addr, b2.Addr)
	}
	if d.Stats().CacheHits != 1 {
		t.Errorf("CacheHits = %d, want 1", d.Stats().CacheHits)
	}
}

func TestBestFitPrefersSmallestCachedBlock(t *testing.T) {
	d := New(10000)
	big, _ := d.Alloc(5000)
	sep, _ := d.Alloc(50) // live separator so the cached blocks cannot coalesce
	small, _ := d.Alloc(1000)
	d.Free(big)
	d.Free(small)
	defer d.Free(sep)
	got, err := d.Alloc(900)
	if err != nil {
		t.Fatal(err)
	}
	if got.Addr != small.Addr {
		t.Errorf("best fit should reuse the 1000-byte block at %d, got addr %d", small.Addr, got.Addr)
	}
}

// The central fragmentation scenario from §3.2: interleaved long/short-lived
// allocations leave plenty of total free memory but no contiguous run, so a
// large request OOMs with Fragmented=true.
func TestFragmentationOOM(t *testing.T) {
	d := New(1000)
	var longLived, shortLived []Block
	for i := 0; i < 5; i++ {
		s, err := d.Alloc(100) // short-lived (e.g. discarded activation)
		if err != nil {
			t.Fatal(err)
		}
		l, err := d.Alloc(100) // long-lived (e.g. checkpoint)
		if err != nil {
			t.Fatal(err)
		}
		shortLived = append(shortLived, s)
		longLived = append(longLived, l)
	}
	for _, b := range shortLived {
		d.Free(b)
	}
	// 500 bytes are free but in 100-byte islands between live checkpoints.
	_, err := d.Alloc(300)
	var oom *OOMError
	if !errors.As(err, &oom) {
		t.Fatalf("expected OOMError, got %v", err)
	}
	if !oom.Fragmented {
		t.Errorf("expected fragmentation OOM: %+v", oom)
	}
	if oom.FreeTotal != 500 || oom.LargestFree != 100 {
		t.Errorf("OOM diagnosis: %+v", oom)
	}
	for _, b := range longLived {
		d.Free(b)
	}
	if err := d.Validate(); err != nil {
		t.Error(err)
	}
}

// MD fix for the same scenario: checkpoints go to a pre-allocated contiguous
// region, so the general heap stays unfragmented and the 300-byte request
// succeeds.
func TestDefragRegionPreventsFragmentationOOM(t *testing.T) {
	d := New(1000)
	region, err := d.NewRegion(500) // checkpoints live here
	if err != nil {
		t.Fatal(err)
	}
	var shortLived []Block
	for i := 0; i < 5; i++ {
		s, err := d.Alloc(100)
		if err != nil {
			t.Fatal(err)
		}
		shortLived = append(shortLived, s)
		if _, err := region.Alloc(100); err != nil {
			t.Fatal(err)
		}
	}
	for _, b := range shortLived {
		d.Free(b)
	}
	if _, err := d.Alloc(300); err != nil {
		t.Fatalf("MD should prevent fragmentation OOM, got %v", err)
	}
	if region.Peak() != 500 {
		t.Errorf("region peak = %d, want 500", region.Peak())
	}
	region.Reset()
	if region.Used() != 0 {
		t.Error("Reset did not clear region")
	}
	region.Close()
	if err := d.Validate(); err != nil {
		t.Error(err)
	}
}

func TestEmptyCacheCoalesces(t *testing.T) {
	d := New(1000)
	var blocks []Block
	for i := 0; i < 10; i++ {
		b, _ := d.Alloc(100)
		blocks = append(blocks, b)
	}
	for _, b := range blocks {
		d.Free(b)
	}
	d.EmptyCache()
	if got := d.LargestContiguous(); got != 1000 {
		t.Errorf("LargestContiguous after EmptyCache = %d, want 1000", got)
	}
	st := d.Stats()
	if st.Free != 1000 || st.Cached != 0 {
		t.Errorf("stats after EmptyCache: %+v", st)
	}
}

func TestOOMFlushesCacheAndRetries(t *testing.T) {
	d := New(1000)
	a, _ := d.Alloc(500)
	b, _ := d.Alloc(500)
	d.Free(a)
	d.Free(b)
	// Cached as two 500-byte blocks; a 900-byte request needs the flush path.
	if _, err := d.Alloc(900); err != nil {
		t.Fatalf("expected cache flush to satisfy request, got %v", err)
	}
}

func TestPeakTracking(t *testing.T) {
	d := New(1000)
	a, _ := d.Alloc(700)
	d.Free(a)
	b, _ := d.Alloc(200)
	st := d.Stats()
	if st.PeakInUse != 700 {
		t.Errorf("PeakInUse = %d, want 700", st.PeakInUse)
	}
	// 700 cached after free; 200 of it reused → reserved is still 700.
	if st.PeakReserved != 700 {
		t.Errorf("PeakReserved = %d, want 700", st.PeakReserved)
	}
	d.Free(b)
	d.ResetPeaks()
	st = d.Stats()
	if st.PeakInUse != 0 || st.PeakReserved != 700 {
		t.Errorf("after ResetPeaks: %+v", st)
	}
}

func TestAllocationsNeverOverlap(t *testing.T) {
	// Property: across a random alloc/free workload, live blocks never
	// overlap and invariants hold.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := New(1 << 16)
		live := map[int64]Block{}
		for step := 0; step < 300; step++ {
			if len(live) > 0 && r.Intn(2) == 0 {
				for addr, b := range live {
					d.Free(b)
					delete(live, addr)
					break
				}
				continue
			}
			size := int64(r.Intn(2000) + 1)
			b, err := d.Alloc(size)
			if err != nil {
				continue
			}
			for _, other := range live {
				if b.Addr < other.Addr+other.Size && other.Addr < b.Addr+b.Size {
					return false
				}
			}
			live[b.Addr] = b
		}
		return d.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestFreeUnknownBlockPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on unknown Free")
		}
	}()
	d := New(100)
	d.Free(Block{Addr: 10, Size: 10})
}

func TestRegionExhaustion(t *testing.T) {
	d := New(1000)
	r, err := d.NewRegion(100)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Alloc(60); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Alloc(60); !errors.Is(err, ErrOOM) {
		t.Errorf("expected region OOM, got %v", err)
	}
	r.Reset()
	if _, err := r.Alloc(100); err != nil {
		t.Errorf("after Reset full-size alloc should fit: %v", err)
	}
}
