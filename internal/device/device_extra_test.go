package device

import (
	"errors"
	"testing"
	"testing/quick"
)

// Property: LargestContiguous never exceeds total free+cached, and a
// request of exactly LargestContiguous succeeds (possibly after the
// internal cache flush) while LargestContiguous+1 fails.
func TestLargestContiguousIsTight(t *testing.T) {
	f := func(seed int64) bool {
		d := New(1 << 12)
		// Deterministic pseudo-random workload from the seed.
		s := uint64(seed)
		next := func(n int64) int64 {
			s = s*6364136223846793005 + 1442695040888963407
			v := int64(s>>33) % n
			if v < 0 {
				v = -v
			}
			return v + 1
		}
		var live []Block
		for i := 0; i < 40; i++ {
			if len(live) > 0 && next(3) == 1 {
				d.Free(live[len(live)-1])
				live = live[:len(live)-1]
				continue
			}
			if b, err := d.Alloc(next(512)); err == nil {
				live = append(live, b)
			}
		}
		lc := d.LargestContiguous()
		st := d.Stats()
		if lc > st.Cached+st.Free {
			return false
		}
		if lc == 0 {
			return true
		}
		if _, err := d.Alloc(lc); err != nil {
			return false
		}
		return d.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestAllocLargerThanCapacity(t *testing.T) {
	d := New(100)
	_, err := d.Alloc(101)
	var oom *OOMError
	if !errors.As(err, &oom) {
		t.Fatalf("expected OOMError, got %v", err)
	}
	if oom.Fragmented {
		t.Error("capacity exhaustion misdiagnosed as fragmentation")
	}
	if oom.Error() == "" {
		t.Error("empty error string")
	}
}

func TestReleaseBypassesCache(t *testing.T) {
	d := New(1000)
	b, _ := d.Alloc(400)
	d.Release(b)
	st := d.Stats()
	if st.Cached != 0 || st.Free != 1000 {
		t.Errorf("Release should return straight to free: %+v", st)
	}
}

func TestDefragCopiesCounter(t *testing.T) {
	d := New(1000)
	r, _ := d.NewRegion(500)
	r.Alloc(100)
	r.Alloc(100)
	if got := d.Stats().DefragCopies; got != 2 {
		t.Errorf("DefragCopies = %d, want 2", got)
	}
}

func TestRegionCloseRestoresSpace(t *testing.T) {
	d := New(1000)
	r, _ := d.NewRegion(800)
	r.Alloc(100)
	r.Close()
	if _, err := d.Alloc(1000); err != nil {
		t.Errorf("full-capacity alloc after Close failed: %v", err)
	}
}

func TestAllocZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	New(10).Alloc(0)
}

func TestCacheHitAfterPartialReuse(t *testing.T) {
	d := New(1000)
	b, _ := d.Alloc(400)
	d.Free(b)
	// Smaller request splits the cached block; remainder stays cached.
	b2, err := d.Alloc(150)
	if err != nil {
		t.Fatal(err)
	}
	st := d.Stats()
	if st.Cached != 250 {
		t.Errorf("cached remainder = %d, want 250", st.Cached)
	}
	d.Free(b2)
	if err := d.Validate(); err != nil {
		t.Error(err)
	}
}
