package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"strconv"
	"strings"

	"repro/internal/engine"
)

// maxSpecBytes bounds a job-submission body (a config is a few KB; the
// cap just keeps a misdirected upload from buffering unbounded).
const maxSpecBytes = 1 << 20

// Server is the control plane's HTTP front end: routing, the standard
// service middleware (panic recovery, request logging, bearer-token auth)
// and the JSON/NDJSON/SSE encodings over one Scheduler.
//
//	GET    /healthz                   liveness (no auth)
//	POST   /v1/jobs                   submit a Spec, 201 + Status
//	GET    /v1/jobs                   list all jobs
//	GET    /v1/jobs/{id}              one job's Status
//	GET    /v1/jobs/{id}/metrics      stream per-step Records (NDJSON/SSE)
//	DELETE /v1/jobs/{id}              cancel (checkpoint-and-stop if running)
//	GET    /v1/jobs/{id}/checkpoint   the final zero.Snapshot, gob-encoded
type Server struct {
	cfg     Config
	sched   *Scheduler
	handler http.Handler
	logger  *log.Logger
}

// New builds a server (and its scheduler) from cfg. logger may be nil for
// silent operation (tests).
func New(cfg Config, logger *log.Logger) (*Server, error) {
	norm, err := cfg.Normalized()
	if err != nil {
		return nil, err
	}
	sched, err := NewScheduler(norm)
	if err != nil {
		return nil, err
	}
	s := &Server{cfg: norm, sched: sched, logger: logger}

	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/jobs/{id}/metrics", s.handleMetrics)
	mux.HandleFunc("GET /v1/jobs/{id}/checkpoint", s.handleCheckpoint)
	s.handler = withRecovery(withLogging(withAuth(mux, norm.Token), logger), logger)
	return s, nil
}

// Handler returns the middleware-wrapped root handler.
func (s *Server) Handler() http.Handler { return s.handler }

// Scheduler exposes the job scheduler (CLI drain, tests).
func (s *Server) Scheduler() *Scheduler { return s.sched }

// Config returns the normalized server configuration.
func (s *Server) Config() Config { return s.cfg }

// Drain gracefully stops the scheduler: see Scheduler.Drain.
func (s *Server) Drain(ctx context.Context) error { return s.sched.Drain(ctx) }

// statusFor maps an error to its HTTP status: invalid configs and specs
// are the client's fault (400), backpressure is 429, draining 503,
// unknown ids 404, state conflicts 409.
func statusFor(err error) int {
	switch {
	case errors.Is(err, ErrUnknownJob):
		return http.StatusNotFound
	case errors.Is(err, ErrQueueFull):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrDraining):
		return http.StatusServiceUnavailable
	case errors.Is(err, ErrJobTerminal), errors.Is(err, ErrNoCheckpoint):
		return http.StatusConflict
	case errors.Is(err, ErrSpec), errors.Is(err, ErrConfig),
		errors.Is(err, engine.ErrJSON), errors.Is(err, engine.ErrModel),
		errors.Is(err, engine.ErrWorld), errors.Is(err, engine.ErrStage),
		errors.Is(err, engine.ErrOptimizer), errors.Is(err, engine.ErrBatch),
		errors.Is(err, engine.ErrTopology), errors.Is(err, engine.ErrSchedule),
		errors.Is(err, engine.ErrData):
		return http.StatusBadRequest
	default:
		return http.StatusInternalServerError
	}
}

// writeJSON encodes v with the given status.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // client gone; nothing to do
}

// writeError maps err to its status and a one-field JSON body.
func writeError(w http.ResponseWriter, err error) {
	writeJSON(w, statusFor(err), map[string]string{"error": err.Error()})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"ok": true, "draining": s.sched.Draining()})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := readAll(r, maxSpecBytes)
	if err != nil {
		writeError(w, fmt.Errorf("%w: %v", ErrSpec, err))
		return
	}
	spec, err := ParseSpec(body)
	if err != nil {
		writeError(w, err)
		return
	}
	j, err := s.sched.Submit(spec)
	if err != nil {
		writeError(w, err)
		return
	}
	w.Header().Set("Location", "/v1/jobs/"+j.ID())
	writeJSON(w, http.StatusCreated, j.Status())
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	jobs := s.sched.List()
	out := make([]Status, len(jobs))
	for i, j := range jobs {
		out[i] = j.Status()
	}
	writeJSON(w, http.StatusOK, map[string]any{"jobs": out})
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j, err := s.sched.Get(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, j.Status())
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if err := s.sched.Cancel(id); err != nil {
		writeError(w, err)
		return
	}
	j, _ := s.sched.Get(id)
	writeJSON(w, http.StatusAccepted, j.Status())
}

// handleMetrics streams the job's per-step records from the ring: every
// buffered record from the requested cursor (?from=N, default oldest
// retained), then live follow until the job goes terminal or the client
// disconnects. NDJSON by default; `Accept: text/event-stream` switches to
// SSE framing.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	j, err := s.sched.Get(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	var cursor int64
	if from := r.URL.Query().Get("from"); from != "" {
		if cursor, err = strconv.ParseInt(from, 10, 64); err != nil || cursor < 0 {
			writeError(w, fmt.Errorf("%w: from=%q (want a step sequence ≥ 0)", ErrSpec, from))
			return
		}
	}
	sse := strings.Contains(r.Header.Get("Accept"), "text/event-stream")
	if sse {
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-cache")
	} else {
		w.Header().Set("Content-Type", "application/x-ndjson")
	}
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)

	// A disconnected client must unblock the ring wait.
	ring := j.Ring()
	stop := context.AfterFunc(r.Context(), ring.Wake)
	defer stop()
	gone := func() bool { return r.Context().Err() != nil }

	enc := json.NewEncoder(w)
	for {
		rec, next, ok := ring.Next(cursor, gone)
		if !ok {
			return // job terminal and drained, or client gone
		}
		cursor = next
		if sse {
			if _, err := io.WriteString(w, "data: "); err != nil {
				return
			}
		}
		if err := enc.Encode(rec); err != nil {
			return
		}
		if sse {
			if _, err := io.WriteString(w, "\n"); err != nil {
				return
			}
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
}

// handleCheckpoint serves the consolidated final snapshot once the job is
// terminal. 409 while the job is still queued/running, or when it ended
// without state (failed, or cancelled before its world came up).
func (s *Server) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	j, err := s.sched.Get(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	if !j.State().Terminal() {
		writeError(w, fmt.Errorf("%w: job %s is %s (cancel it or wait)", ErrNoCheckpoint, j.ID(), j.State()))
		return
	}
	blob := j.Checkpoint()
	if blob == nil {
		writeError(w, fmt.Errorf("%w: job %s ended %s without consolidated state", ErrNoCheckpoint, j.ID(), j.State()))
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.Itoa(len(blob)))
	w.Header().Set("X-Zeroserve-Job-State", string(j.State()))
	w.Write(blob) //nolint:errcheck // client gone; nothing to do
}

// readAll slurps a bounded request body.
func readAll(r *http.Request, limit int64) ([]byte, error) {
	defer r.Body.Close()
	return io.ReadAll(io.LimitReader(r.Body, limit))
}
