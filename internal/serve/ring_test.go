package serve

import (
	"sync"
	"testing"
	"time"
)

func rec(step int) Record { return Record{Step: step, Loss: float64(step)} }

// Appends within capacity replay in order from cursor 0.
func TestRingReplayInOrder(t *testing.T) {
	r := NewRing(4)
	for s := 1; s <= 3; s++ {
		r.Append(rec(s))
	}
	r.Close()
	var cursor int64
	for s := 1; s <= 3; s++ {
		got, next, ok := r.Next(cursor, nil)
		if !ok || got.Step != s {
			t.Fatalf("Next(%d) = (%+v, %v), want step %d", cursor, got, ok, s)
		}
		cursor = next
	}
	if _, _, ok := r.Next(cursor, nil); ok {
		t.Error("closed, drained ring should report !ok")
	}
}

// Overflow evicts the oldest records; a stale cursor clamps forward to the
// oldest retained record instead of re-reading evicted slots.
func TestRingEvictionClampsCursor(t *testing.T) {
	r := NewRing(4)
	for s := 1; s <= 10; s++ {
		r.Append(rec(s))
	}
	got, next, ok := r.Next(0, nil) // steps 1..6 are gone
	if !ok || got.Step != 7 {
		t.Fatalf("Next(0) = (%+v, %v), want clamped to step 7", got, ok)
	}
	if next != 7 {
		t.Errorf("next cursor = %d, want 7", next)
	}
	if r.Total() != 10 {
		t.Errorf("Total = %d, want 10", r.Total())
	}
}

// A reader at the head blocks until the next Append, and Close releases
// blocked readers with !ok.
func TestRingFollowAndClose(t *testing.T) {
	r := NewRing(4)
	r.Append(rec(1))

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		got, next, ok := r.Next(1, nil) // head: blocks until step 2 arrives
		if !ok || got.Step != 2 {
			t.Errorf("follow read = (%+v, %v), want step 2", got, ok)
		}
		if _, _, ok := r.Next(next, nil); ok {
			t.Error("read after Close should report !ok")
		}
	}()
	time.Sleep(10 * time.Millisecond)
	r.Append(rec(2))
	time.Sleep(10 * time.Millisecond)
	r.Close()
	wg.Wait()

	if !r.Closed() {
		t.Error("Closed() = false after Close")
	}
	r.Append(rec(3)) // no-op
	if r.Total() != 2 {
		t.Errorf("Append after Close changed Total to %d", r.Total())
	}
}

// The giveUp hook aborts a blocked reader when woken — the client-gone
// path: context.AfterFunc calls Wake, the reader re-checks and returns.
func TestRingGiveUpOnWake(t *testing.T) {
	r := NewRing(4)
	var mu sync.Mutex
	gone := false
	giveUp := func() bool {
		mu.Lock()
		defer mu.Unlock()
		return gone
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		if _, _, ok := r.Next(0, giveUp); ok {
			t.Error("gave-up reader should report !ok")
		}
	}()
	time.Sleep(10 * time.Millisecond)
	mu.Lock()
	gone = true
	mu.Unlock()
	r.Wake()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Wake did not release the blocked reader")
	}
}
