package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"repro/internal/engine"
)

// State is a job's position in the queued→running→terminal state machine.
type State string

// The five job states. Transitions: queued→running, queued→cancelled,
// running→{succeeded,failed,cancelled}. Terminal states never change.
const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateSucceeded State = "succeeded"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateSucceeded || s == StateFailed || s == StateCancelled
}

// Spec is a job submission: how many optimizer steps to run, and the full
// training configuration. The config goes through the exact
// engine.Config.Validate gate the CLIs use; relative data paths are
// rejected because an HTTP submission has no config directory (set
// absolute paths server-side).
type Spec struct {
	// Steps is the optimizer-step budget (0 = DefaultJobSteps).
	Steps int `json:"steps,omitempty"`
	// Config is the training job, ds_config-style.
	Config engine.Config `json:"config"`

	// SnapshotEvery takes an asynchronous elastic snapshot every so many
	// optimizer steps (0 = none, unless MaxRestarts forces a cadence of 1).
	// Snapshots ride the checkpoint stream and are what the supervisor
	// restarts from.
	SnapshotEvery int `json:"snapshot_every,omitempty"`
	// MaxRestarts is the supervisor's restart budget: how many times a job
	// whose world lost a rank is restarted from its last boundary snapshot
	// before it is declared failed (0 = a rank death fails the job).
	MaxRestarts int `json:"max_restarts,omitempty"`
	// RestartRanks, when non-zero, is the world size restarted attempts run
	// at — the elastic shrink/grow path: the snapshot is resharded N→M
	// before the new world loads it. Must satisfy the same batch-geometry
	// divisibility as Config.Ranks.
	RestartRanks int `json:"restart_ranks,omitempty"`
	// Fault, when set, deterministically kills one rank of the FIRST
	// attempt at a given optimizer step — the built-in failure-injection
	// harness for exercising the recovery path end to end.
	Fault *FaultSpec `json:"fault,omitempty"`
}

// FaultSpec names the deterministic kill: Rank dies right after optimizer
// step Step fires (before the step's snapshot is taken, so recovery resumes
// from the previous snapshot boundary).
type FaultSpec struct {
	Rank int `json:"rank"`
	Step int `json:"step"`
}

// ParseSpec decodes a job submission strictly: unknown fields anywhere in
// the document (including inside the engine config) are ErrSpec.
func ParseSpec(data []byte) (Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("%w: %v", ErrSpec, err)
	}
	if dec.More() {
		return Spec{}, fmt.Errorf("%w: trailing data after the spec object", ErrSpec)
	}
	return s, nil
}

// Job is one admitted training run: the normalized spec, its isolated
// metric ring, and the mutable state the scheduler and handlers share.
type Job struct {
	id     string
	spec   Spec // config normalized at admission
	ring   *Ring
	ctx    context.Context // cancelled by DELETE, drain, or terminal cleanup
	cancel context.CancelFunc

	mu         sync.Mutex
	state      State
	err        string
	stepsDone  int
	lastLoss   float64
	restarts   int // supervisor restarts consumed after rank deaths
	ranks      int // current world size (shrinks on elastic restart)
	submitted  time.Time
	started    time.Time
	finished   time.Time
	checkpoint []byte // encoded zero.Snapshot, when consolidated
}

// newJob builds a queued job around a normalized spec.
func newJob(id string, spec Spec, ringCap int) *Job {
	ctx, cancel := context.WithCancel(context.Background())
	return &Job{
		id:        id,
		spec:      spec,
		ring:      NewRing(ringCap),
		ctx:       ctx,
		cancel:    cancel,
		state:     StateQueued,
		ranks:     spec.Config.Ranks,
		submitted: time.Now(),
	}
}

// ID returns the job's server-assigned identifier.
func (j *Job) ID() string { return j.id }

// Spec returns the job's normalized submission.
func (j *Job) Spec() Spec { return j.spec }

// Ring returns the job's metric ring.
func (j *Job) Ring() *Ring { return j.ring }

// State returns the job's current state.
func (j *Job) State() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Checkpoint returns the encoded final snapshot, or nil if none was
// consolidated (job still running, failed, or cancelled before starting).
func (j *Job) Checkpoint() []byte {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.checkpoint
}

// transition moves from→to atomically and reports whether it applied;
// a job in any other state is left untouched.
func (j *Job) transition(from, to State) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != from {
		return false
	}
	j.state = to
	if to == StateRunning {
		j.started = time.Now()
	}
	return true
}

// finish moves the job to a terminal state (unless it already is in one),
// records the failure cause, stamps the finish time, releases the cancel
// context and closes the metric ring so streaming readers drain and EOF.
func (j *Job) finish(state State, err error) {
	j.mu.Lock()
	if !j.state.Terminal() {
		j.state = state
		if err != nil {
			j.err = err.Error()
		}
		j.finished = time.Now()
	}
	j.mu.Unlock()
	j.cancel()
	j.ring.Close()
}

// noteStep records boundary progress (called from the rank-0 observer).
func (j *Job) noteStep(step int, loss float64) {
	j.mu.Lock()
	j.stepsDone = step
	j.lastLoss = loss
	j.mu.Unlock()
}

// noteRestart records one consumed supervisor restart and the world size
// the next attempt runs at.
func (j *Job) noteRestart(ranks int) {
	j.mu.Lock()
	j.restarts++
	j.ranks = ranks
	j.mu.Unlock()
}

// Restarts returns how many supervisor restarts the job has consumed.
func (j *Job) Restarts() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.restarts
}

// setCheckpoint stores the consolidated snapshot blob.
func (j *Job) setCheckpoint(blob []byte) {
	j.mu.Lock()
	j.checkpoint = blob
	j.mu.Unlock()
}

// Status is the JSON view of a job served by GET /v1/jobs[/{id}].
type Status struct {
	ID    string `json:"id"`
	State State  `json:"state"`
	// Steps is the requested optimizer-step budget; StepsDone how many
	// boundaries have fired so far.
	Steps     int     `json:"steps"`
	StepsDone int     `json:"steps_done"`
	LastLoss  float64 `json:"last_loss,omitempty"`
	// Ranks and Stage echo the world geometry for list readability; Ranks
	// is the CURRENT world size, which shrinks when an elastic restart
	// moved the job to Spec.RestartRanks.
	Ranks int    `json:"ranks"`
	Stage string `json:"stage"`
	// Restarts counts supervisor restarts consumed after rank deaths.
	Restarts int    `json:"restarts,omitempty"`
	Error    string `json:"error,omitempty"`
	// Checkpoint reports whether GET /v1/jobs/{id}/checkpoint will serve
	// a consolidated snapshot.
	Checkpoint  bool      `json:"checkpoint"`
	SubmittedAt time.Time `json:"submitted_at"`
	StartedAt   time.Time `json:"started_at,omitzero"`
	FinishedAt  time.Time `json:"finished_at,omitzero"`
}

// Status snapshots the job for its JSON view.
func (j *Job) Status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	stage, _ := j.spec.Config.Stage.Parse()
	return Status{
		ID:          j.id,
		State:       j.state,
		Steps:       j.spec.Steps,
		StepsDone:   j.stepsDone,
		LastLoss:    j.lastLoss,
		Ranks:       j.ranks,
		Stage:       stage.String(),
		Restarts:    j.restarts,
		Error:       j.err,
		Checkpoint:  j.checkpoint != nil,
		SubmittedAt: j.submitted,
		StartedAt:   j.started,
		FinishedAt:  j.finished,
	}
}
