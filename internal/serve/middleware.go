package serve

import (
	"crypto/subtle"
	"log"
	"net/http"
	"strings"
	"time"
)

// withAuth enforces `Authorization: Bearer <token>` on every endpoint
// except /healthz (liveness probes don't carry credentials). An empty
// token disables auth. Comparison is constant-time.
func withAuth(next http.Handler, token string) http.Handler {
	if token == "" {
		return next
	}
	want := []byte(token)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" {
			next.ServeHTTP(w, r)
			return
		}
		got, ok := strings.CutPrefix(r.Header.Get("Authorization"), "Bearer ")
		if !ok || subtle.ConstantTimeCompare([]byte(got), want) != 1 {
			w.Header().Set("WWW-Authenticate", `Bearer realm="zeroserve"`)
			writeJSON(w, http.StatusUnauthorized, map[string]string{"error": "missing or invalid bearer token"})
			return
		}
		next.ServeHTTP(w, r)
	})
}

// statusWriter captures the response status for the request log while
// passing Flush through — the metrics stream needs the Flusher.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (sw *statusWriter) WriteHeader(code int) {
	if sw.status == 0 {
		sw.status = code
	}
	sw.ResponseWriter.WriteHeader(code)
}

func (sw *statusWriter) Write(b []byte) (int, error) {
	if sw.status == 0 {
		sw.status = http.StatusOK
	}
	return sw.ResponseWriter.Write(b)
}

func (sw *statusWriter) Flush() {
	if f, ok := sw.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// withLogging emits one line per request: method, path, status, duration.
// A nil logger disables it.
func withLogging(next http.Handler, logger *log.Logger) http.Handler {
	if logger == nil {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		next.ServeHTTP(sw, r)
		if sw.status == 0 {
			sw.status = http.StatusOK
		}
		logger.Printf("%s %s %d %s", r.Method, r.URL.Path, sw.status, time.Since(start).Round(time.Microsecond))
	})
}

// withRecovery converts a handler panic into a 500 (when the response has
// not started) and a log line, keeping one bad request from taking down
// every job in the process. http.ErrAbortHandler passes through — it is
// the standard "client gone mid-stream" signal.
func withRecovery(next http.Handler, logger *log.Logger) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w}
		defer func() {
			rec := recover()
			if rec == nil || rec == http.ErrAbortHandler {
				if rec != nil {
					panic(rec)
				}
				return
			}
			if logger != nil {
				logger.Printf("panic serving %s %s: %v", r.Method, r.URL.Path, rec)
			}
			if sw.status == 0 {
				writeJSON(sw, http.StatusInternalServerError, map[string]string{"error": "internal server error"})
			}
		}()
		next.ServeHTTP(sw, r)
	})
}
