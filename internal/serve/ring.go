package serve

import "sync"

// Record is one per-step metric sample: everything the training loop knows
// at an accumulation boundary, plus the wire- and allocation-side view of
// the same step. Wire counters are rank 0's cumulative comm.World.Stats —
// per-stream traffic included — so a reader can difference consecutive
// records for per-step volume.
type Record struct {
	// Step is the 1-based optimizer step that fired.
	Step int `json:"step"`
	// Loss is the boundary's mean local loss on rank 0.
	Loss float64 `json:"loss"`
	// GradNorm is the pre-clipping global gradient norm (0 when grad_clip
	// is off).
	GradNorm float64 `json:"grad_norm,omitempty"`
	// LossScale is the dynamic loss scale after this boundary, and
	// OverflowSteps the cumulative optimizer steps skipped on fp16
	// overflow (both 0 when the job's fp16_compute precision is off).
	LossScale     float64 `json:"loss_scale,omitempty"`
	OverflowSteps int     `json:"overflow_steps,omitempty"`
	// WireElems/WireBytes are rank 0's cumulative sent elements and native
	// dtype-accounted bytes.
	WireElems int64 `json:"wire_elems"`
	WireBytes int64 `json:"wire_bytes"`
	// PerStream maps ordering-domain name (default/grad/prefetch/...) to
	// cumulative elements sent on it by rank 0.
	PerStream map[string]int64 `json:"per_stream,omitempty"`
	// Allocs is the process-wide heap allocation count delta over the
	// step — an upper bound on the job's own allocations when worlds
	// share the process, and the live view of the zero-allocation
	// steady-state contract when one job runs alone.
	Allocs uint64 `json:"allocs"`
}

// Ring is a bounded, closeable metric buffer with follow semantics: one
// writer appends per-step records, any number of readers replay from a
// sequence cursor and block for more until the ring closes. Capacity
// bounds memory per job — a reader that falls more than cap records
// behind skips forward to the oldest retained record (readers observe the
// gap via the record's Step field jumping).
type Ring struct {
	mu     sync.Mutex
	cond   sync.Cond
	buf    []Record // circular; seq i lives at buf[i % cap]
	total  int64    // records ever appended; valid seqs are [total-retained, total)
	closed bool
}

// NewRing creates a ring retaining the most recent capacity records.
func NewRing(capacity int) *Ring {
	if capacity <= 0 {
		capacity = DefaultMetricRing
	}
	r := &Ring{buf: make([]Record, capacity)}
	r.cond.L = &r.mu
	return r
}

// Append adds a record, evicting the oldest when full, and wakes readers.
// Appending to a closed ring is a no-op (a cancelled job's last boundary
// may race its terminal transition).
func (r *Ring) Append(rec Record) {
	r.mu.Lock()
	if !r.closed {
		r.buf[r.total%int64(len(r.buf))] = rec
		r.total++
	}
	r.mu.Unlock()
	r.cond.Broadcast()
}

// Close marks the stream complete: blocked readers drain what is buffered
// and then see ok=false. Idempotent.
func (r *Ring) Close() {
	r.mu.Lock()
	r.closed = true
	r.mu.Unlock()
	r.cond.Broadcast()
}

// Closed reports whether the writer is done.
func (r *Ring) Closed() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.closed
}

// Total returns how many records have ever been appended.
func (r *Ring) Total() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Wake broadcasts to blocked readers so they re-poll their giveUp
// condition — the hook for context.AfterFunc on a streaming request.
func (r *Ring) Wake() { r.cond.Broadcast() }

// Next returns the record at sequence cursor, blocking until it exists.
// A cursor older than the retention window skips forward to the oldest
// retained record. The returned next is the cursor for the following call.
// ok=false means no record: the ring closed and cursor is past the end,
// or giveUp returned true on a wake-up (pair with Wake via
// context.AfterFunc to abort on client disconnect; pass nil to wait
// indefinitely).
func (r *Ring) Next(cursor int64, giveUp func() bool) (rec Record, next int64, ok bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for {
		if oldest := max(r.total-int64(len(r.buf)), 0); cursor < oldest {
			cursor = oldest
		}
		if cursor < r.total {
			return r.buf[cursor%int64(len(r.buf))], cursor + 1, true
		}
		if r.closed || (giveUp != nil && giveUp()) {
			return Record{}, cursor, false
		}
		r.cond.Wait()
	}
}
