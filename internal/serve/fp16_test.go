package serve

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
)

// An fp16_compute job streams its dynamic loss scale and cumulative
// overflow-skip count through the per-step metric records. The absurd
// initial scale forces a skip on the very first boundary, so both fields
// are exercised away from their omitempty zero values, on the wire and in
// the decoded Record.
func TestServeStreamsLossScaleMetrics(t *testing.T) {
	const steps = 8
	spec := fmt.Sprintf(`{
		"steps": %d,
		"config": {
			"model": {"layers": 1, "hidden": 16, "heads": 2, "vocab": 19, "seq": 8},
			"ranks": 2,
			"stage": 2,
			"optimizer": {"type": "adam", "lr": 3e-3},
			"global_batch": 4,
			"micro_batch": 4,
			"seed": 7,
			"precision": {"fp16_compute": true, "initial_loss_scale": %g}
		}
	}`, steps, float64(uint64(1)<<28))

	_, ts := newTestServer(t, Config{MaxWorlds: 1})
	st := submit(t, ts, spec)
	recs := streamRecords(t, ts, st.ID)
	if len(recs) != steps {
		t.Fatalf("streamed %d records, want %d", len(recs), steps)
	}
	if recs[0].OverflowSteps != 1 {
		t.Errorf("first record overflow_steps = %d, want 1 (2^28 must overflow)", recs[0].OverflowSteps)
	}
	for i, r := range recs {
		if r.LossScale <= 0 || r.LossScale >= float64(uint64(1)<<28) {
			t.Errorf("record %d: loss_scale %g outside (0, 2^28)", i, r.LossScale)
		}
		if r.OverflowSteps <= 0 {
			t.Errorf("record %d: overflow_steps %d, want > 0", i, r.OverflowSteps)
		}
		if i > 0 && r.OverflowSteps < recs[i-1].OverflowSteps {
			t.Errorf("record %d: overflow_steps went backwards", i)
		}
	}

	// The raw NDJSON carries the documented field names.
	resp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/metrics?from=0")
	if err != nil {
		t.Fatal(err)
	}
	blob, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(blob), `"loss_scale"`) || !strings.Contains(string(blob), `"overflow_steps"`) {
		t.Errorf("raw metrics stream missing precision fields: %s", blob)
	}

	// An f32 job omits both fields entirely (omitempty keeps old streams
	// byte-compatible).
	f32 := submit(t, ts, specJSON(2, 7))
	waitState(t, ts, f32.ID, func(s Status) bool { return s.State.Terminal() })
	resp, err = http.Get(ts.URL + "/v1/jobs/" + f32.ID + "/metrics?from=0")
	if err != nil {
		t.Fatal(err)
	}
	blob, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if strings.Contains(string(blob), "loss_scale") || strings.Contains(string(blob), "overflow_steps") {
		t.Errorf("f32 metrics stream leaked precision fields: %s", blob)
	}
}
