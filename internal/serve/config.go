// Package serve is the training-as-a-service control plane of the ZeRO
// reproduction: a long-running HTTP/JSON daemon that accepts engine.Config
// job submissions, runs each job in its own isolated comm.World under a
// bounded multi-job scheduler, streams live per-step metrics from a
// bounded ring buffer, and serves consolidated checkpoints — the front
// door the one-shot CLIs (zerotrain, zerobench) never were.
//
// The paper's pitch is that ZeRO "democratizes" large-model training by
// shipping as a service-grade library (§1, §9); this package is that claim
// made literal for the reproduction: many simulated worlds coexist in one
// process, each job's rank goroutines, wire channels and traffic counters
// fully contained in its private comm.World.
//
// # Job lifecycle
//
//	queued ──▶ running ──▶ succeeded
//	   │          ├──────▶ failed
//	   └──────────┴──────▶ cancelled
//
// Submission validates the engine.Config strictly (the engine's Err*
// sentinels map to HTTP 400) before the job is admitted to a FIFO queue;
// at most MaxWorlds jobs train concurrently. DELETE cancels: queued jobs
// die immediately, running jobs stop collectively at the next accumulation
// boundary and checkpoint what they have. Graceful drain (SIGTERM) is the
// same mechanism applied to every job at once.
package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
)

// Sentinel errors for the server's own failure classes. Handlers map each
// to one HTTP status (see statusFor); job-config failures reuse the engine
// package's sentinels.
var (
	// ErrConfig marks an invalid server configuration.
	ErrConfig = errors.New("serve: invalid server config")
	// ErrSpec marks an invalid job spec (bad steps, malformed JSON).
	ErrSpec = errors.New("serve: invalid job spec")
	// ErrUnknownJob marks a job id the scheduler has never seen.
	ErrUnknownJob = errors.New("serve: unknown job")
	// ErrQueueFull marks a submission rejected by queue backpressure.
	ErrQueueFull = errors.New("serve: job queue full")
	// ErrDraining marks a submission rejected because the server is
	// shutting down.
	ErrDraining = errors.New("serve: server draining")
	// ErrJobTerminal marks an operation on a job that already finished.
	ErrJobTerminal = errors.New("serve: job already terminal")
	// ErrNoCheckpoint marks a checkpoint request the job cannot satisfy
	// (still running, or it failed before consolidating state).
	ErrNoCheckpoint = errors.New("serve: checkpoint not available")
)

// Defaults for the zero-valued Config fields.
const (
	// DefaultAddr is the listen address when none is configured.
	DefaultAddr = ":8400"
	// DefaultMaxWorlds bounds concurrently training jobs (each is a full
	// comm.World of rank goroutines).
	DefaultMaxWorlds = 2
	// DefaultQueueDepth bounds jobs waiting behind the running ones.
	DefaultQueueDepth = 16
	// DefaultMetricRing is the per-job retained step-record count.
	DefaultMetricRing = 1024
	// DefaultMaxSteps caps a single job's optimizer steps.
	DefaultMaxSteps = 100000
	// DefaultJobSteps is the step count of a spec that omits it.
	DefaultJobSteps = 10
	// DefaultSnapshotKeep is the per-job checkpoint-file retention bound.
	DefaultSnapshotKeep = 2
)

// Config is the declarative server configuration, with the same
// strict-JSON treatment as engine.Config: zero values mean "use the
// documented default", ParseConfig rejects unknown fields, and Normalized
// validates everything with wrapped ErrConfig errors.
type Config struct {
	// Addr is the HTTP listen address (default ":8400").
	Addr string `json:"addr,omitempty"`
	// Token, when set, requires `Authorization: Bearer <token>` on every
	// endpoint except /healthz.
	Token string `json:"token,omitempty"`
	// MaxWorlds is the number of jobs training concurrently, each in its
	// own comm.World (default 2).
	MaxWorlds int `json:"max_worlds,omitempty"`
	// QueueDepth is how many admitted jobs may wait behind the running
	// ones before submissions bounce with 429 (default 16).
	QueueDepth int `json:"queue_depth,omitempty"`
	// MetricRing is the per-job metric ring capacity in step records;
	// slow metric readers skip over evicted records (default 1024).
	MetricRing int `json:"metric_ring,omitempty"`
	// MaxSteps caps the optimizer steps a single job may request
	// (default 100000).
	MaxSteps int `json:"max_steps,omitempty"`
	// SnapshotDir, when set, is where jobs that take elastic snapshots
	// persist them (one subdirectory per job, atomic rename-into-place,
	// pruned to SnapshotKeep files). Empty keeps snapshots in memory only —
	// recovery still works, but nothing survives the process.
	SnapshotDir string `json:"snapshot_dir,omitempty"`
	// SnapshotKeep bounds the checkpoint files retained per job in
	// SnapshotDir (default 2).
	SnapshotKeep int `json:"snapshot_keep,omitempty"`
}

// DefaultConfig returns the server configuration every entry point starts
// from: all documented defaults, no auth token.
func DefaultConfig() Config {
	return Config{
		Addr:       DefaultAddr,
		MaxWorlds:  DefaultMaxWorlds,
		QueueDepth: DefaultQueueDepth,
		MetricRing: DefaultMetricRing,
		MaxSteps:   DefaultMaxSteps,
	}
}

// ParseConfig decodes a JSON server config strictly: unknown fields,
// trailing data and type mismatches are ErrConfig.
func ParseConfig(data []byte) (Config, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var c Config
	if err := dec.Decode(&c); err != nil {
		return Config{}, fmt.Errorf("%w: %v", ErrConfig, err)
	}
	if dec.More() {
		return Config{}, fmt.Errorf("%w: trailing data after the config object", ErrConfig)
	}
	return c, nil
}

// Normalized returns the config with defaults filled in, validating every
// field. Negative sizing knobs are ErrConfig.
func (c Config) Normalized() (Config, error) {
	if c.MaxWorlds < 0 || c.QueueDepth < 0 || c.MetricRing < 0 || c.MaxSteps < 0 || c.SnapshotKeep < 0 {
		return c, fmt.Errorf("%w: max_worlds %d, queue_depth %d, metric_ring %d, max_steps %d, snapshot_keep %d (want ≥ 0)",
			ErrConfig, c.MaxWorlds, c.QueueDepth, c.MetricRing, c.MaxSteps, c.SnapshotKeep)
	}
	if c.Addr == "" {
		c.Addr = DefaultAddr
	}
	if c.MaxWorlds == 0 {
		c.MaxWorlds = DefaultMaxWorlds
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = DefaultQueueDepth
	}
	if c.MetricRing == 0 {
		c.MetricRing = DefaultMetricRing
	}
	if c.MaxSteps == 0 {
		c.MaxSteps = DefaultMaxSteps
	}
	if c.SnapshotKeep == 0 {
		c.SnapshotKeep = DefaultSnapshotKeep
	}
	return c, nil
}

// Validate reports whether the config is runnable (Normalized without the
// normalization).
func (c Config) Validate() error {
	_, err := c.Normalized()
	return err
}
