package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/model"
	"repro/internal/zero"
)

// specJSON is a tiny synthetic-data training job: 2 ranks, stage 2, one
// accumulation step per boundary pair — fast enough to run to completion
// inside unit tests.
func specJSON(steps int, seed int64) string {
	return fmt.Sprintf(`{
		"steps": %d,
		"config": {
			"model": {"layers": 1, "hidden": 16, "heads": 2, "vocab": 19, "seq": 8},
			"ranks": 2,
			"stage": 2,
			"optimizer": {"type": "adam", "lr": 3e-3},
			"global_batch": 8,
			"micro_batch": 4,
			"grad_accum_steps": 2,
			"seed": %d
		}
	}`, steps, seed)
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	srv, err := New(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		srv.Drain(ctx) //nolint:errcheck // best-effort test cleanup
	})
	return srv, ts
}

func submit(t *testing.T, ts *httptest.Server, body string) Status {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		blob, _ := io.ReadAll(resp.Body)
		t.Fatalf("submit: status %d, body %s", resp.StatusCode, blob)
	}
	if loc := resp.Header.Get("Location"); !strings.HasPrefix(loc, "/v1/jobs/") {
		t.Fatalf("submit: Location = %q", loc)
	}
	var st Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

func getStatus(t *testing.T, ts *httptest.Server, id string) Status {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// waitState polls until the job reaches a state accepted by ok.
func waitState(t *testing.T, ts *httptest.Server, id string, ok func(Status) bool) Status {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		st := getStatus(t, ts, id)
		if ok(st) {
			return st
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s: timed out waiting; last state %+v", id, getStatus(t, ts, id))
	return Status{}
}

func streamRecords(t *testing.T, ts *httptest.Server, id string) []Record {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("metrics Content-Type = %q, want application/x-ndjson", ct)
	}
	var recs []Record
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var r Record
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		recs = append(recs, r)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return recs
}

// The tentpole end-to-end path: submit → stream live metrics to EOF →
// fetch the checkpoint → restore it into a fresh engine world.
func TestServeSubmitStreamCheckpoint(t *testing.T) {
	const steps = 5
	_, ts := newTestServer(t, Config{MaxWorlds: 1})
	st := submit(t, ts, specJSON(steps, 7))
	if st.State != StateQueued && st.State != StateRunning {
		t.Fatalf("fresh job state = %s", st.State)
	}

	// The metrics stream follows the live job and EOFs when it finishes.
	recs := streamRecords(t, ts, st.ID)
	if len(recs) != steps {
		t.Fatalf("streamed %d records, want %d", len(recs), steps)
	}
	for i, r := range recs {
		if r.Step != i+1 {
			t.Errorf("record %d: step %d, want %d (monotonic per-step stream)", i, r.Step, i+1)
		}
		if r.Loss == 0 || r.WireBytes == 0 || len(r.PerStream) == 0 {
			t.Errorf("record %d missing payload: %+v", i, r)
		}
		if i > 0 && r.WireBytes < recs[i-1].WireBytes {
			t.Errorf("record %d: cumulative WireBytes went backwards", i)
		}
	}

	final := waitState(t, ts, st.ID, func(s Status) bool { return s.State.Terminal() })
	if final.State != StateSucceeded || final.StepsDone != steps || !final.Checkpoint {
		t.Fatalf("final status = %+v, want succeeded with checkpoint after %d steps", final, steps)
	}

	// ?from= replays from an explicit cursor.
	resp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/metrics?from=3")
	if err != nil {
		t.Fatal(err)
	}
	blob, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if n := strings.Count(string(blob), "\n"); n != steps-3 {
		t.Errorf("metrics?from=3 returned %d records, want %d", n, steps-3)
	}

	// Checkpoint round-trip: the served blob decodes and loads into a
	// fresh world built from the same config.
	resp, err = http.Get(ts.URL + "/v1/jobs/" + st.ID + "/checkpoint")
	if err != nil {
		t.Fatal(err)
	}
	blob, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("checkpoint: status %d, body %s", resp.StatusCode, blob)
	}
	if got := resp.Header.Get("X-Zeroserve-Job-State"); got != string(StateSucceeded) {
		t.Errorf("X-Zeroserve-Job-State = %q", got)
	}
	snap, err := zero.DecodeSnapshot(blob)
	if err != nil {
		t.Fatalf("served checkpoint does not decode: %v", err)
	}
	if snap.OptSteps != steps {
		t.Errorf("checkpoint OptSteps = %d, want %d", snap.OptSteps, steps)
	}
	spec, err := ParseSpec([]byte(specJSON(steps, 7)))
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := spec.Config.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := engine.Run(cfg, func(e *engine.Engine) {
		if err := e.Load(snap); err != nil {
			t.Errorf("rank %d: restoring served checkpoint: %v", e.Rank(), err)
		}
	}); err != nil {
		t.Fatal(err)
	}
}

// Two concurrent jobs run in fully isolated worlds: cancelling one
// mid-run does not move the other's loss trajectory by a single bit
// relative to a solo run of the same spec.
func TestServeConcurrentJobIsolation(t *testing.T) {
	const steps = 12
	soloLosses := func() []float64 {
		_, ts := newTestServer(t, Config{MaxWorlds: 1})
		st := submit(t, ts, specJSON(steps, 41))
		waitState(t, ts, st.ID, func(s Status) bool { return s.State == StateSucceeded })
		recs := streamRecords(t, ts, st.ID)
		losses := make([]float64, len(recs))
		for i, r := range recs {
			losses[i] = r.Loss
		}
		return losses
	}()

	_, ts := newTestServer(t, Config{MaxWorlds: 2})
	victim := submit(t, ts, specJSON(2000, 99)) // long-running cancel target
	probe := submit(t, ts, specJSON(steps, 41)) // same spec as the solo run

	// Cancel the victim once it is demonstrably mid-run.
	waitState(t, ts, victim.ID, func(s Status) bool { return s.StepsDone >= 2 })
	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+victim.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("cancel: status %d", resp.StatusCode)
	}

	vf := waitState(t, ts, victim.ID, func(s Status) bool { return s.State.Terminal() })
	if vf.State != StateCancelled {
		t.Fatalf("victim state = %s, want cancelled", vf.State)
	}
	if !vf.Checkpoint || vf.StepsDone >= 2000 {
		t.Errorf("victim should have checkpoint-and-stopped mid-run: %+v", vf)
	}
	// The cancelled job's checkpoint reflects its stopping boundary.
	cresp, err := http.Get(ts.URL + "/v1/jobs/" + victim.ID + "/checkpoint")
	if err != nil {
		t.Fatal(err)
	}
	blob, _ := io.ReadAll(cresp.Body)
	cresp.Body.Close()
	snap, err := zero.DecodeSnapshot(blob)
	if err != nil {
		t.Fatalf("cancelled job checkpoint does not decode: %v", err)
	}
	if snap.OptSteps != vf.StepsDone {
		t.Errorf("victim checkpoint OptSteps = %d, want %d", snap.OptSteps, vf.StepsDone)
	}

	pf := waitState(t, ts, probe.ID, func(s Status) bool { return s.State.Terminal() })
	if pf.State != StateSucceeded {
		t.Fatalf("probe state = %s (%s), want succeeded", pf.State, pf.Error)
	}
	recs := streamRecords(t, ts, probe.ID)
	if len(recs) != len(soloLosses) {
		t.Fatalf("probe streamed %d records, solo %d", len(recs), len(soloLosses))
	}
	for i, r := range recs {
		if r.Loss != soloLosses[i] {
			t.Errorf("step %d: concurrent loss %.17g != solo %.17g (world isolation broken)",
				r.Step, r.Loss, soloLosses[i])
		}
	}
}

// Saturation: with one world and a deep backlog the scheduler runs
// everything FIFO, and a full queue bounces with ErrQueueFull (429).
func TestServeSaturationFIFO(t *testing.T) {
	const backlog = 4
	_, ts := newTestServer(t, Config{MaxWorlds: 1, QueueDepth: backlog})
	// A long-running blocker occupies the single world; once it is
	// demonstrably running, `backlog` short jobs fill the queue and one
	// more must bounce.
	blocker := submit(t, ts, specJSON(2000, 9)).ID
	waitState(t, ts, blocker, func(s Status) bool { return s.State == StateRunning })
	ids := []string{blocker}
	for i := 0; i < backlog; i++ {
		ids = append(ids, submit(t, ts, specJSON(3, int64(10+i))).ID)
	}
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(specJSON(3, 99)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Errorf("over-capacity submit: status %d, want 429", resp.StatusCode)
	}

	// Release the world: cancel the blocker, let the backlog drain.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+blocker, nil)
	if resp, err := http.DefaultClient.Do(req); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
	}
	for i, id := range ids {
		st := waitState(t, ts, id, func(s Status) bool { return s.State.Terminal() })
		want := StateSucceeded
		if i == 0 {
			want = StateCancelled
		}
		if st.State != want {
			t.Fatalf("job %s: state %s (%s), want %s", id, st.State, st.Error, want)
		}
	}
	// FIFO: with one world, start times follow submission order.
	var prev time.Time
	for _, id := range ids {
		st := getStatus(t, ts, id)
		if st.StartedAt.Before(prev) {
			t.Errorf("job %s started %v before its predecessor %v (FIFO violated)", id, st.StartedAt, prev)
		}
		prev = st.StartedAt
	}
}

// Invalid submissions map to 400 with the engine's sentinel text; bad
// routes and states map to 404/409.
func TestServeValidationAndErrorMapping(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxWorlds: 1})
	post := func(body string) (int, string) {
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		blob, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(blob)
	}

	cases := []struct {
		name, body, wantErr string
	}{
		{"malformed json", `{"steps": `, "invalid job spec"},
		{"unknown field", `{"steps": 1, "bogus": 2, "config": {}}`, "invalid job spec"},
		{"empty config", `{"steps": 1, "config": {}}`, "invalid world"},
		{"negative steps", strings.Replace(specJSON(3, 1), `"steps": 3`, `"steps": -1`, 1), "invalid job spec"},
		{"over step cap", strings.Replace(specJSON(3, 1), `"steps": 3`, `"steps": 1000000`, 1), "invalid job spec"},
		{"relative data path", strings.Replace(specJSON(3, 1), `"seed": 1`,
			`"seed": 1, "data": {"path": "corpus.txt", "tokenizer": "byte", "seq_len": 8}`, 1), "relative"},
	}
	for _, tc := range cases {
		code, body := post(tc.body)
		if code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (body %s)", tc.name, code, body)
		}
		if !strings.Contains(body, tc.wantErr) {
			t.Errorf("%s: body %q does not mention %q", tc.name, body, tc.wantErr)
		}
	}

	for _, path := range []string{"/v1/jobs/nope", "/v1/jobs/nope/metrics", "/v1/jobs/nope/checkpoint"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s: status %d, want 404", path, resp.StatusCode)
		}
	}

	// Checkpoint before terminal is a 409; cancelling a terminal job too.
	st := submit(t, ts, specJSON(3, 5))
	resp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/checkpoint")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("checkpoint while %s: status %d, want 409", st.State, resp.StatusCode)
	}
	waitState(t, ts, st.ID, func(s Status) bool { return s.State.Terminal() })
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+st.ID, nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("cancel terminal job: status %d, want 409", resp.StatusCode)
	}
}

// Bearer-token auth: everything except /healthz requires the token.
func TestServeAuth(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxWorlds: 1, Token: "s3cret"})
	resp, err := http.Get(ts.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnauthorized {
		t.Errorf("no token: status %d, want 401", resp.StatusCode)
	}
	if h := resp.Header.Get("WWW-Authenticate"); !strings.Contains(h, "Bearer") {
		t.Errorf("WWW-Authenticate = %q", h)
	}

	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/jobs", nil)
	req.Header.Set("Authorization", "Bearer wrong")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnauthorized {
		t.Errorf("wrong token: status %d, want 401", resp.StatusCode)
	}

	req.Header.Set("Authorization", "Bearer s3cret")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("right token: status %d, want 200", resp.StatusCode)
	}

	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz without token: status %d, want 200", resp.StatusCode)
	}
}

// SSE framing: Accept: text/event-stream switches each record to a
// `data: {...}` frame with a blank-line terminator.
func TestServeMetricsSSE(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxWorlds: 1})
	st := submit(t, ts, specJSON(3, 7))
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/jobs/"+st.ID+"/metrics", nil)
	req.Header.Set("Accept", "text/event-stream")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Errorf("Content-Type = %q, want text/event-stream", ct)
	}
	blob, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	frames := 0
	for _, line := range strings.Split(string(blob), "\n") {
		if data, ok := strings.CutPrefix(line, "data: "); ok {
			var r Record
			if err := json.Unmarshal([]byte(data), &r); err != nil {
				t.Fatalf("bad SSE data frame %q: %v", line, err)
			}
			frames++
		}
	}
	if frames != 3 {
		t.Errorf("streamed %d SSE frames, want 3", frames)
	}
	if !strings.Contains(string(blob), "}\n\n") {
		t.Error("SSE frames are not blank-line terminated")
	}
}

// Drain: running jobs checkpoint-and-stop, queued jobs cancel, further
// submissions bounce with 503, and Drain returns once workers exit.
func TestServeDrain(t *testing.T) {
	srv, ts := newTestServer(t, Config{MaxWorlds: 1, QueueDepth: 4})
	running := submit(t, ts, specJSON(2000, 3))
	queued := submit(t, ts, specJSON(5, 4))
	waitState(t, ts, running.ID, func(s Status) bool { return s.StepsDone >= 2 })

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}

	rf := getStatus(t, ts, running.ID)
	if rf.State != StateCancelled || !rf.Checkpoint {
		t.Errorf("running job after drain = %+v, want cancelled with checkpoint", rf)
	}
	qf := getStatus(t, ts, queued.ID)
	if qf.State != StateCancelled || qf.Checkpoint {
		t.Errorf("queued job after drain = %+v, want cancelled without checkpoint", qf)
	}

	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(specJSON(3, 9)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("submit while draining: status %d, want 503", resp.StatusCode)
	}
}

// The scheduler API level: a queued job cancelled before a worker picks
// it up never runs, and the job list preserves submission order.
func TestSchedulerQueuedCancelAndList(t *testing.T) {
	s, err := NewScheduler(Config{MaxWorlds: 1, QueueDepth: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		s.Drain(ctx) //nolint:errcheck // best-effort test cleanup
	}()

	spec, err := ParseSpec([]byte(specJSON(2000, 1)))
	if err != nil {
		t.Fatal(err)
	}
	blocker, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	spec2, _ := ParseSpec([]byte(specJSON(5, 2)))
	victim, err := s.Submit(spec2)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Cancel(victim.ID()); err != nil {
		t.Fatal(err)
	}
	if st := victim.State(); st != StateCancelled {
		t.Errorf("queued victim state = %s, want cancelled", st)
	}
	if err := s.Cancel(victim.ID()); err == nil {
		t.Error("second cancel should be ErrJobTerminal")
	}
	if err := s.Cancel(blocker.ID()); err != nil {
		t.Fatal(err)
	}

	list := s.List()
	if len(list) != 2 || list[0] != blocker || list[1] != victim {
		t.Errorf("List() out of submission order: %v", list)
	}

	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) && !blocker.State().Terminal() {
		time.Sleep(2 * time.Millisecond)
	}
	if blocker.State() != StateCancelled {
		t.Errorf("blocker state = %s, want cancelled", blocker.State())
	}
	if victim.Checkpoint() != nil {
		t.Error("a job cancelled while queued must not have a checkpoint")
	}
}

// Synthetic micro-benchmark guard: the spec parser rejects configs the
// engine rejects, sharing sentinels end to end.
func TestSubmitPropagatesEngineSentinels(t *testing.T) {
	s, err := NewScheduler(Config{MaxWorlds: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s.Drain(ctx) //nolint:errcheck // best-effort test cleanup
	}()
	spec, err := ParseSpec([]byte(specJSON(3, 1)))
	if err != nil {
		t.Fatal(err)
	}
	spec.Config.Ranks = 0
	spec.Config.Model = model.Config{}
	if _, err := s.Submit(spec); err == nil {
		t.Fatal("invalid config must not be admitted")
	} else if statusFor(err) != http.StatusBadRequest {
		t.Errorf("engine sentinel mapped to %d, want 400: %v", statusFor(err), err)
	}
}

// elasticSpecJSON is specJSON plus the elastic supervisor knobs: snapshot
// cadence, restart budget, optional shrunk restart world, and an injected
// deterministic rank kill.
func elasticSpecJSON(steps, snapEvery, maxRestarts, restartRanks, faultRank, faultStep int) string {
	fault := ""
	if faultStep > 0 {
		fault = fmt.Sprintf(`, "fault": {"rank": %d, "step": %d}`, faultRank, faultStep)
	}
	ranks := ""
	if restartRanks > 0 {
		ranks = fmt.Sprintf(`, "restart_ranks": %d`, restartRanks)
	}
	return fmt.Sprintf(`{
		"steps": %d,
		"snapshot_every": %d,
		"max_restarts": %d%s%s,
		"config": {
			"model": {"layers": 1, "hidden": 16, "heads": 2, "vocab": 19, "seq": 8},
			"ranks": 2,
			"stage": 2,
			"optimizer": {"type": "adam", "lr": 3e-3},
			"global_batch": 8,
			"micro_batch": 4,
			"grad_accum_steps": 2,
			"seed": 11
		}
	}`, steps, snapEvery, maxRestarts, ranks, fault)
}

// The elastic fault-tolerance path end to end over HTTP: a rank is killed
// deterministically mid-run, the survivors error out instead of
// deadlocking, and the supervisor restarts the job from its last boundary
// snapshot — the job still runs to completion with a full-step checkpoint.
func TestElasticKillResume(t *testing.T) {
	const steps = 6
	dir := t.TempDir()
	_, ts := newTestServer(t, Config{MaxWorlds: 1, SnapshotDir: dir})

	st := submit(t, ts, elasticSpecJSON(steps, 1, 1, 0, 1, 3))
	final := waitState(t, ts, st.ID, func(s Status) bool { return s.State.Terminal() })
	if final.State != StateSucceeded {
		t.Fatalf("job ended %s (err %q), want succeeded", final.State, final.Error)
	}
	if final.Restarts != 1 {
		t.Errorf("restarts = %d, want 1 (one injected kill)", final.Restarts)
	}
	if final.StepsDone != steps {
		t.Errorf("steps_done = %d, want %d", final.StepsDone, steps)
	}
	if !final.Checkpoint {
		t.Fatal("no final checkpoint after recovery")
	}

	// The consolidated checkpoint is the full-budget state.
	resp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/checkpoint")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	blob, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := zero.DecodeSnapshot(blob)
	if err != nil {
		t.Fatal(err)
	}
	if snap.OptSteps != steps {
		t.Errorf("checkpoint at step %d, want %d", snap.OptSteps, steps)
	}

	// The metric stream covers the full step range despite the restart
	// (replayed boundaries may repeat step numbers; the last one must be
	// the budget).
	recs := streamRecords(t, ts, st.ID)
	if len(recs) == 0 || recs[len(recs)-1].Step != steps {
		t.Errorf("metric stream ends at step %d of %d (%d records)",
			recs[len(recs)-1].Step, steps, len(recs))
	}
}

// Elastic shrink on restart: the replacement world runs at restart_ranks=1,
// loading the 2-rank snapshot resharded down — and the job still finishes.
func TestElasticKillResumeShrunkWorld(t *testing.T) {
	const steps = 5
	_, ts := newTestServer(t, Config{MaxWorlds: 1})

	st := submit(t, ts, elasticSpecJSON(steps, 1, 2, 1, 0, 2))
	final := waitState(t, ts, st.ID, func(s Status) bool { return s.State.Terminal() })
	if final.State != StateSucceeded {
		t.Fatalf("job ended %s (err %q), want succeeded", final.State, final.Error)
	}
	if final.Ranks != 1 {
		t.Errorf("post-restart world size = %d, want 1", final.Ranks)
	}
	if final.Restarts != 1 || final.StepsDone != steps {
		t.Errorf("restarts=%d steps_done=%d, want 1 and %d", final.Restarts, final.StepsDone, steps)
	}
}

// Without a restart budget, a rank death fails the job — loudly, with the
// dead rank named, not a hang.
func TestElasticKillNoBudgetFails(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxWorlds: 1})
	st := submit(t, ts, elasticSpecJSON(6, 1, 0, 0, 1, 2))
	final := waitState(t, ts, st.ID, func(s Status) bool { return s.State.Terminal() })
	if final.State != StateFailed {
		t.Fatalf("job ended %s, want failed", final.State)
	}
	if !strings.Contains(final.Error, "killed by fault injection") {
		t.Errorf("failure cause %q does not name the injected kill", final.Error)
	}
}

// Supervisor knob validation at admission: bad fault geometry and
// non-divisible restart worlds bounce with 400-class spec errors.
func TestElasticSpecValidation(t *testing.T) {
	sched, err := NewScheduler(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		sched.Drain(ctx) //nolint:errcheck
	}()
	base := func() Spec {
		s, err := ParseSpec([]byte(specJSON(3, 1)))
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	bad := base()
	bad.Fault = &FaultSpec{Rank: 7, Step: 1}
	if _, err := sched.Submit(bad); err == nil {
		t.Error("fault rank outside the world accepted")
	}
	bad = base()
	bad.Fault = &FaultSpec{Rank: 0, Step: 0}
	if _, err := sched.Submit(bad); err == nil {
		t.Error("fault step 0 accepted")
	}
	bad = base()
	bad.RestartRanks = 3 // micro_batch 4 % 3 != 0
	if _, err := sched.Submit(bad); err == nil {
		t.Error("non-divisible restart_ranks accepted")
	}
	bad = base()
	bad.MaxRestarts = -1
	if _, err := sched.Submit(bad); err == nil {
		t.Error("negative max_restarts accepted")
	}
}
