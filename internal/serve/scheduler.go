package serve

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"repro/internal/comm"
	"repro/internal/engine"
	"repro/internal/model"
)

// Scheduler admits jobs through strict validation, queues them FIFO, and
// runs at most MaxWorlds of them concurrently — each in its own freshly
// built comm.World, so jobs share nothing but the process: rank
// goroutines, wire channels, traffic counters and the wire-buffer arena
// are all per-job. Cancellation is context-based and lands at the next
// accumulation boundary via the engine's collective stop vote; a
// cancelled running job consolidates a checkpoint before it stops.
type Scheduler struct {
	cfg   Config
	queue chan *Job
	wg    sync.WaitGroup // one entry per worker

	mu       sync.Mutex
	jobs     map[string]*Job
	order    []*Job // submission order, for List
	draining bool
	seq      int
}

// NewScheduler starts a scheduler with cfg.MaxWorlds worker goroutines.
// Call Drain to stop it.
func NewScheduler(cfg Config) (*Scheduler, error) {
	norm, err := cfg.Normalized()
	if err != nil {
		return nil, err
	}
	s := &Scheduler{
		cfg:   norm,
		queue: make(chan *Job, norm.QueueDepth),
		jobs:  make(map[string]*Job),
	}
	for i := 0; i < norm.MaxWorlds; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s, nil
}

// Submit validates the spec and admits it to the FIFO queue. The config
// error (one of the engine's Err* sentinels) or ErrSpec comes back for
// invalid submissions; ErrQueueFull under backpressure; ErrDraining after
// shutdown began. The returned job is already registered and observable.
func (s *Scheduler) Submit(spec Spec) (*Job, error) {
	if spec.Steps < 0 {
		return nil, fmt.Errorf("%w: steps %d (want ≥ 0)", ErrSpec, spec.Steps)
	}
	if spec.Steps == 0 {
		spec.Steps = DefaultJobSteps
	}
	if spec.Steps > s.cfg.MaxSteps {
		return nil, fmt.Errorf("%w: steps %d above the server cap %d", ErrSpec, spec.Steps, s.cfg.MaxSteps)
	}
	norm, err := spec.Config.Normalized()
	if err != nil {
		return nil, err
	}
	spec.Config = norm

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return nil, ErrDraining
	}
	s.seq++
	j := newJob(fmt.Sprintf("job-%06d", s.seq), spec, s.cfg.MetricRing)
	select {
	case s.queue <- j:
	default:
		s.seq--
		return nil, fmt.Errorf("%w: %d jobs queued", ErrQueueFull, len(s.queue))
	}
	s.jobs[j.id] = j
	s.order = append(s.order, j)
	return j, nil
}

// Get returns a job by id.
func (s *Scheduler) Get(id string) (*Job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownJob, id)
	}
	return j, nil
}

// List returns every known job in submission order.
func (s *Scheduler) List() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*Job(nil), s.order...)
}

// Draining reports whether Drain has begun.
func (s *Scheduler) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Cancel stops a job: a queued job dies immediately, a running job stops
// collectively at its next accumulation boundary and checkpoints first.
// Cancelling a terminal job is ErrJobTerminal.
func (s *Scheduler) Cancel(id string) error {
	j, err := s.Get(id)
	if err != nil {
		return err
	}
	if j.State().Terminal() {
		return fmt.Errorf("%w: %s is %s", ErrJobTerminal, id, j.State())
	}
	// Queued jobs go terminal here; the worker that later pulls the job
	// from the queue sees the state and skips it. Running jobs only get
	// the context cancel — their worker owns the terminal transition.
	if j.transition(StateQueued, StateCancelled) {
		j.finish(StateCancelled, nil)
		return nil
	}
	j.cancel()
	return nil
}

// Drain begins shutdown: no more submissions, queued jobs are cancelled,
// running jobs checkpoint-and-stop at their next boundary, and Drain
// blocks until every worker has exited or ctx expires. Idempotent.
func (s *Scheduler) Drain(ctx context.Context) error {
	s.mu.Lock()
	first := !s.draining
	s.draining = true
	jobs := append([]*Job(nil), s.order...)
	s.mu.Unlock()
	if first {
		close(s.queue) // Submit checks draining under mu before sending
	}
	for _, j := range jobs {
		if j.transition(StateQueued, StateCancelled) {
			j.finish(StateCancelled, nil)
			continue
		}
		j.cancel() // running jobs stop at the next boundary and checkpoint
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// worker runs queued jobs until the queue closes at drain.
func (s *Scheduler) worker() {
	defer s.wg.Done()
	for j := range s.queue {
		s.runJob(j)
	}
}

// runJob owns one job from running to terminal: it builds the job's
// private world, trains with the rank-0 step observer feeding the metric
// ring, and consolidates a checkpoint on both completion and cancellation
// (the engine's TrainLoop always exits on an accumulation boundary, where
// Save is legal).
func (s *Scheduler) runJob(j *Job) {
	if !j.transition(StateQueued, StateRunning) {
		return // cancelled while queued
	}
	cfg := j.spec.Config // normalized at Submit
	w := comm.NewWorld(cfg.Ranks)

	var mu sync.Mutex
	var bodyErr error // first per-rank failure (data open, encode)
	var snapBlob []byte
	var loopErr error
	fail := func(err error) {
		mu.Lock()
		if bodyErr == nil {
			bodyErr = err
		}
		mu.Unlock()
	}

	runErr := engine.RunOn(w, cfg, func(e *engine.Engine) {
		var b engine.Batcher
		if cfg.Data != nil {
			// The pipeline is deterministic, so an unopenable corpus fails
			// identically on every rank before any collective starts.
			ld, err := engine.OpenData(cfg)
			if err != nil {
				fail(err)
				return
			}
			defer ld.Close()
			b = ld
		} else {
			b = model.NewSyntheticStream(cfg.Seed, cfg.GlobalBatch, cfg.MicroBatch, cfg.Model.Seq, cfg.Model.Vocab)
		}
		if e.Rank() == 0 {
			lastMallocs := mallocs()
			e.Observe(func(info engine.StepInfo) {
				now := mallocs()
				st := w.Stats(0)
				j.ring.Append(Record{
					Step:      info.Step,
					Loss:      info.Loss,
					GradNorm:  info.GradNorm,
					WireElems: st.ElemsSent,
					WireBytes: st.BytesSent,
					PerStream: st.PerStream,
					Allocs:    now - lastMallocs,
				})
				lastMallocs = now
				j.noteStep(info.Step, info.Loss)
			})
		}
		_, err := e.TrainLoop(j.ctx, b, j.spec.Steps)
		if e.Rank() == 0 {
			mu.Lock()
			loopErr = err
			mu.Unlock()
		}
		// Checkpoint-and-stop: consolidate to rank 0 whether the loop ran
		// to completion or was cancelled at a boundary.
		if snap := e.Save(); snap != nil {
			blob, encErr := snap.Encode()
			if encErr != nil {
				fail(encErr)
				return
			}
			mu.Lock()
			snapBlob = blob
			mu.Unlock()
		}
	})

	switch {
	case runErr != nil:
		j.finish(StateFailed, runErr)
	case bodyErr != nil:
		j.finish(StateFailed, bodyErr)
	default:
		j.setCheckpoint(snapBlob)
		if loopErr != nil {
			j.finish(StateCancelled, nil)
		} else {
			j.finish(StateSucceeded, nil)
		}
	}
}

// mallocs reads the process-wide cumulative heap allocation count.
func mallocs() uint64 {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.Mallocs
}
