package serve

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"runtime"
	"sync"

	"repro/internal/comm"
	"repro/internal/elastic"
	"repro/internal/engine"
	"repro/internal/model"
	"repro/internal/zero"
)

// Scheduler admits jobs through strict validation, queues them FIFO, and
// runs at most MaxWorlds of them concurrently — each in its own freshly
// built comm.World, so jobs share nothing but the process: rank
// goroutines, wire channels, traffic counters and the wire-buffer arena
// are all per-job. Cancellation is context-based and lands at the next
// accumulation boundary via the engine's collective stop vote; a
// cancelled running job consolidates a checkpoint before it stops.
type Scheduler struct {
	cfg   Config
	queue chan *Job
	wg    sync.WaitGroup // one entry per worker

	mu       sync.Mutex
	jobs     map[string]*Job
	order    []*Job // submission order, for List
	draining bool
	seq      int
}

// NewScheduler starts a scheduler with cfg.MaxWorlds worker goroutines.
// Call Drain to stop it.
func NewScheduler(cfg Config) (*Scheduler, error) {
	norm, err := cfg.Normalized()
	if err != nil {
		return nil, err
	}
	s := &Scheduler{
		cfg:   norm,
		queue: make(chan *Job, norm.QueueDepth),
		jobs:  make(map[string]*Job),
	}
	for i := 0; i < norm.MaxWorlds; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s, nil
}

// Submit validates the spec and admits it to the FIFO queue. The config
// error (one of the engine's Err* sentinels) or ErrSpec comes back for
// invalid submissions; ErrQueueFull under backpressure; ErrDraining after
// shutdown began. The returned job is already registered and observable.
func (s *Scheduler) Submit(spec Spec) (*Job, error) {
	if spec.Steps < 0 {
		return nil, fmt.Errorf("%w: steps %d (want ≥ 0)", ErrSpec, spec.Steps)
	}
	if spec.Steps == 0 {
		spec.Steps = DefaultJobSteps
	}
	if spec.Steps > s.cfg.MaxSteps {
		return nil, fmt.Errorf("%w: steps %d above the server cap %d", ErrSpec, spec.Steps, s.cfg.MaxSteps)
	}
	norm, err := spec.Config.Normalized()
	if err != nil {
		return nil, err
	}
	spec.Config = norm
	if spec.SnapshotEvery < 0 || spec.MaxRestarts < 0 || spec.RestartRanks < 0 {
		return nil, fmt.Errorf("%w: snapshot_every %d, max_restarts %d, restart_ranks %d (want ≥ 0)",
			ErrSpec, spec.SnapshotEvery, spec.MaxRestarts, spec.RestartRanks)
	}
	if spec.MaxRestarts > 0 && spec.SnapshotEvery == 0 {
		spec.SnapshotEvery = 1 // restarts need snapshots to restart from
	}
	if spec.RestartRanks > 0 && spec.RestartRanks != norm.Ranks {
		// The shrunk world must pass the same batch-geometry gate the
		// original did — catch it at admission, not mid-recovery.
		shrunk := norm
		shrunk.Ranks = spec.RestartRanks
		if _, err := shrunk.Normalized(); err != nil {
			return nil, fmt.Errorf("restart_ranks %d: %w", spec.RestartRanks, err)
		}
	}
	if f := spec.Fault; f != nil {
		if f.Rank < 0 || f.Rank >= norm.Ranks || f.Step < 1 {
			return nil, fmt.Errorf("%w: fault rank %d step %d (want rank in [0,%d), step ≥ 1)",
				ErrSpec, f.Rank, f.Step, norm.Ranks)
		}
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return nil, ErrDraining
	}
	s.seq++
	j := newJob(fmt.Sprintf("job-%06d", s.seq), spec, s.cfg.MetricRing)
	select {
	case s.queue <- j:
	default:
		s.seq--
		return nil, fmt.Errorf("%w: %d jobs queued", ErrQueueFull, len(s.queue))
	}
	s.jobs[j.id] = j
	s.order = append(s.order, j)
	return j, nil
}

// Get returns a job by id.
func (s *Scheduler) Get(id string) (*Job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownJob, id)
	}
	return j, nil
}

// List returns every known job in submission order.
func (s *Scheduler) List() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*Job(nil), s.order...)
}

// Draining reports whether Drain has begun.
func (s *Scheduler) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Cancel stops a job: a queued job dies immediately, a running job stops
// collectively at its next accumulation boundary and checkpoints first.
// Cancelling a terminal job is ErrJobTerminal.
func (s *Scheduler) Cancel(id string) error {
	j, err := s.Get(id)
	if err != nil {
		return err
	}
	if j.State().Terminal() {
		return fmt.Errorf("%w: %s is %s", ErrJobTerminal, id, j.State())
	}
	// Queued jobs go terminal here; the worker that later pulls the job
	// from the queue sees the state and skips it. Running jobs only get
	// the context cancel — their worker owns the terminal transition.
	if j.transition(StateQueued, StateCancelled) {
		j.finish(StateCancelled, nil)
		return nil
	}
	j.cancel()
	return nil
}

// Drain begins shutdown: no more submissions, queued jobs are cancelled,
// running jobs checkpoint-and-stop at their next boundary, and Drain
// blocks until every worker has exited or ctx expires. Idempotent.
func (s *Scheduler) Drain(ctx context.Context) error {
	s.mu.Lock()
	first := !s.draining
	s.draining = true
	jobs := append([]*Job(nil), s.order...)
	s.mu.Unlock()
	if first {
		close(s.queue) // Submit checks draining under mu before sending
	}
	for _, j := range jobs {
		if j.transition(StateQueued, StateCancelled) {
			j.finish(StateCancelled, nil)
			continue
		}
		j.cancel() // running jobs stop at the next boundary and checkpoint
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// worker runs queued jobs until the queue closes at drain.
func (s *Scheduler) worker() {
	defer s.wg.Done()
	for j := range s.queue {
		s.runJob(j)
	}
}

// runJob owns one job from running to terminal. It is the supervisor of
// the elastic fault-tolerance story: each attempt trains in a freshly built
// world with rank-death containment; when a rank dies, the survivors error
// out collectively (no deadlock), the attempt returns, and — restart budget
// permitting — the next attempt resumes from the last completed boundary
// snapshot, optionally resharded down to Spec.RestartRanks. Clean attempts
// consolidate a final checkpoint exactly as before.
func (s *Scheduler) runJob(j *Job) {
	if !j.transition(StateQueued, StateRunning) {
		return // cancelled while queued
	}
	cfg := j.spec.Config // normalized at Submit
	var lastCk *elastic.Checkpoint
	for attempt := 0; ; attempt++ {
		res := s.runAttempt(j, cfg, lastCk, attempt)
		if res.latest != nil {
			lastCk = res.latest // newest completed boundary snapshot
		}
		if res.fatal != nil {
			j.finish(StateFailed, res.fatal)
			return
		}
		if res.death == nil {
			j.setCheckpoint(res.snapBlob)
			if res.cancelled {
				j.finish(StateCancelled, nil)
			} else {
				j.finish(StateSucceeded, nil)
			}
			return
		}
		if attempt >= j.spec.MaxRestarts {
			j.finish(StateFailed, fmt.Errorf("restart budget %d exhausted: %w", j.spec.MaxRestarts, res.death))
			return
		}
		next := cfg.Ranks
		if j.spec.RestartRanks > 0 {
			next = j.spec.RestartRanks // elastic shrink/grow on restart
		}
		if lastCk != nil && lastCk.WorldSize != next {
			rck, err := lastCk.Reshard(next)
			if err != nil {
				j.finish(StateFailed, err)
				return
			}
			lastCk = rck
		}
		cfg.Ranks = next // geometry validated at Submit
		j.noteRestart(next)
	}
}

// attemptResult is one attempt's outcome, partitioned into the supervisor's
// three cases: fatal (config/IO — never retried), death (a rank died —
// retryable), or clean (snapBlob/cancelled are meaningful).
type attemptResult struct {
	fatal     error
	death     error
	cancelled bool
	snapBlob  []byte
	latest    *elastic.Checkpoint
}

// runAttempt trains one attempt of the job in its own world and classifies
// how it ended. resume, when non-nil, is the boundary snapshot the attempt
// starts from (already resharded to cfg.Ranks).
func (s *Scheduler) runAttempt(j *Job, cfg engine.Config, resume *elastic.Checkpoint, attempt int) attemptResult {
	var res attemptResult
	pol := elastic.Policy{Every: j.spec.SnapshotEvery}
	if s.cfg.SnapshotDir != "" && pol.Every > 0 {
		pol.Dir = filepath.Join(s.cfg.SnapshotDir, j.id)
		pol.Keep = s.cfg.SnapshotKeep
	}
	snapper, err := elastic.NewSnapshotter(pol, cfg.Ranks)
	if err != nil {
		res.fatal = err
		return res
	}

	var resumeSnap *zero.Snapshot
	startSteps := 0
	if resume != nil {
		resumeSnap = resume.Snapshot() // shared read-only; Load copies out
		startSteps = resume.OptSteps
	}
	remaining := max(j.spec.Steps-startSteps, 0)

	var mu sync.Mutex
	var bodyErr error // first per-rank failure (data open, encode)
	var snapBlob []byte
	var loopErr error
	fail := func(err error) {
		mu.Lock()
		if bodyErr == nil {
			bodyErr = err
		}
		mu.Unlock()
	}

	w := comm.NewWorld(cfg.Ranks)
	errs, runErr := engine.RunOnFallible(w, cfg, func(e *engine.Engine) {
		var b engine.Batcher
		if cfg.Data != nil {
			// The pipeline is deterministic, so an unopenable corpus fails
			// identically on every rank before any collective starts.
			ld, err := engine.OpenData(cfg)
			if err != nil {
				fail(err)
				return
			}
			defer ld.Close()
			b = ld
		} else {
			b = model.NewSyntheticStream(cfg.Seed, cfg.GlobalBatch, cfg.MicroBatch, cfg.Model.Seq, cfg.Model.Vocab)
		}
		if resumeSnap != nil {
			if err := e.Load(resumeSnap); err != nil {
				fail(err)
				return
			}
			// The stream is deterministic: replaying the consumed prefix
			// puts every rank at the snapshot's data position.
			for i := 0; i < startSteps*cfg.GradAccumSteps; i++ {
				b.NextBatch()
			}
		}
		// The injected fault kills before the step's own snapshot fires
		// (hook order), so recovery genuinely restarts from the previous
		// boundary, not from state captured at the instant of death.
		if f := j.spec.Fault; f != nil && attempt == 0 && e.Rank() == f.Rank {
			e.OnBoundary(func(step int) {
				if step == f.Step {
					e.Comm().Fail()
				}
			})
		}
		if j.spec.SnapshotEvery > 0 {
			tr := e.Trainer()
			e.OnBoundary(func(step int) { snapper.Tick(step, tr) })
			defer snapper.Flush(e.Rank())
		}
		if e.Rank() == 0 {
			lastMallocs := mallocs()
			e.Observe(func(info engine.StepInfo) {
				now := mallocs()
				st := w.Stats(0)
				j.ring.Append(Record{
					Step:          info.Step,
					Loss:          info.Loss,
					GradNorm:      info.GradNorm,
					LossScale:     info.LossScale,
					OverflowSteps: info.OverflowSteps,
					WireElems:     st.ElemsSent,
					WireBytes:     st.BytesSent,
					PerStream:     st.PerStream,
					Allocs:        now - lastMallocs,
				})
				lastMallocs = now
				j.noteStep(info.Step, info.Loss)
			})
		}
		_, err := e.TrainLoop(j.ctx, b, remaining)
		if e.Rank() == 0 {
			mu.Lock()
			loopErr = err
			mu.Unlock()
		}
		// Checkpoint-and-stop: consolidate to rank 0 whether the loop ran
		// to completion or was cancelled at a boundary.
		if snap := e.Save(); snap != nil {
			blob, encErr := snap.Encode()
			if encErr != nil {
				fail(encErr)
				return
			}
			mu.Lock()
			snapBlob = blob
			mu.Unlock()
		}
	})
	res.latest = snapper.Latest()
	snapErr := snapper.Close()
	if runErr != nil {
		res.fatal = runErr
		return res
	}
	if death, rank := comm.FirstFailure(errs); death != nil {
		// Prefer the root cause — the rank that actually died — over the
		// lowest-numbered rank that merely observed the death.
		for r, e := range errs {
			var k comm.Killed
			if errors.As(e, &k) {
				death, rank = e, r
				break
			}
		}
		// Snapshot-path errors here are collateral of the death (a gather
		// cut mid-flight); the last *completed* snapshot is still intact.
		res.death = fmt.Errorf("rank %d: %w", rank, death)
		return res
	}
	if snapErr != nil {
		res.fatal = snapErr
		return res
	}
	if bodyErr != nil {
		res.fatal = bodyErr
		return res
	}
	res.cancelled = loopErr != nil
	res.snapBlob = snapBlob
	return res
}

// mallocs reads the process-wide cumulative heap allocation count.
func mallocs() uint64 {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.Mallocs
}
