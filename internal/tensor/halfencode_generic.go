//go:build !amd64

package tensor

// Portable fp32 → binary16 batch conversions: the scalar loops in half.go
// are the whole implementation off amd64.

func fromFloatsImpl(b HalfBuffer, src []float32) { fromFloatsScalar(b, src) }

func roundHalfImpl(x []float32) { roundHalfScalar(x) }

func fromFloatsRoundImpl(b HalfBuffer, src []float32) bool { return fromFloatsRoundScalar(b, src) }

func roundHalfCheckImpl(x []float32) bool { return roundHalfCheckScalar(x) }
