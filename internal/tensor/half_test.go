package tensor

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestHalfExactValues(t *testing.T) {
	cases := []struct {
		f    float32
		bits Half
	}{
		{0, 0x0000},
		{1, 0x3c00},
		{-1, 0xbc00},
		{2, 0x4000},
		{0.5, 0x3800},
		{65504, 0x7bff}, // largest finite fp16
		{-65504, 0xfbff},
		{6.103515625e-05, 0x0400},       // smallest normal
		{5.960464477539063e-08, 0x0001}, // smallest subnormal
		{0.333251953125, 0x3555},        // nearest fp16 to 1/3
	}
	for _, c := range cases {
		if got := FromFloat32(c.f); got != c.bits {
			t.Errorf("FromFloat32(%v) = %#04x, want %#04x", c.f, got, c.bits)
		}
		if got := c.bits.Float32(); got != c.f {
			t.Errorf("(%#04x).Float32() = %v, want %v", c.bits, got, c.f)
		}
	}
}

func TestHalfSpecials(t *testing.T) {
	inf := FromFloat32(float32(math.Inf(1)))
	if !inf.IsInf() || inf != 0x7c00 {
		t.Errorf("+Inf encodes to %#04x", inf)
	}
	ninf := FromFloat32(float32(math.Inf(-1)))
	if !ninf.IsInf() || ninf != 0xfc00 {
		t.Errorf("-Inf encodes to %#04x", ninf)
	}
	nan := FromFloat32(float32(math.NaN()))
	if !nan.IsNaN() {
		t.Errorf("NaN encodes to %#04x, not NaN", nan)
	}
	if !math.IsNaN(float64(nan.Float32())) {
		t.Error("NaN round-trip lost NaN-ness")
	}
	// Overflow rounds to infinity.
	if got := FromFloat32(70000); !got.IsInf() {
		t.Errorf("70000 should overflow to Inf, got %#04x", got)
	}
	// Tiny values flush to signed zero.
	if got := FromFloat32(1e-10); got != 0 {
		t.Errorf("1e-10 should flush to +0, got %#04x", got)
	}
	if got := FromFloat32(-1e-10); got != 0x8000 {
		t.Errorf("-1e-10 should flush to -0, got %#04x", got)
	}
}

func TestHalfRoundToNearestEven(t *testing.T) {
	// 1 + 2^-11 is exactly halfway between 1.0 and the next fp16 (1+2^-10);
	// RNE must pick the even mantissa, i.e. 1.0.
	f := float32(1) + float32(math.Ldexp(1, -11))
	if got := FromFloat32(f); got != 0x3c00 {
		t.Errorf("halfway 1+2^-11 rounds to %#04x, want 0x3c00 (even)", got)
	}
	// 1 + 3*2^-11 is halfway between 1+2^-10 and 1+2^-9; even neighbor is 1+2^-9.
	f = float32(1) + 3*float32(math.Ldexp(1, -11))
	if got := FromFloat32(f); got != 0x3c02 {
		t.Errorf("halfway 1+3*2^-11 rounds to %#04x, want 0x3c02 (even)", got)
	}
}

// Property: decoding any fp16 bit pattern and re-encoding is the identity
// (modulo NaN payload canonicalization).
func TestHalfRoundTripAllBitPatterns(t *testing.T) {
	for i := 0; i <= 0xffff; i++ {
		h := Half(i)
		f := h.Float32()
		back := FromFloat32(f)
		if h.IsNaN() {
			if !back.IsNaN() {
				t.Fatalf("NaN pattern %#04x lost on round trip", i)
			}
			continue
		}
		if back != h {
			t.Fatalf("bit pattern %#04x -> %v -> %#04x", i, f, back)
		}
	}
}

// Property: rounding error of FromFloat32 is at most half a ULP of the fp16
// target for in-range values.
func TestHalfRoundingErrorBound(t *testing.T) {
	f := func(v float32) bool {
		if math.IsNaN(float64(v)) || math.Abs(float64(v)) > MaxHalf {
			return true
		}
		got := float64(FromFloat32(v).Float32())
		// ULP at this magnitude: 2^(e-10) where e is the fp16 exponent.
		av := math.Abs(float64(v))
		ulp := math.Ldexp(1, -24) // subnormal ULP
		if av >= 6.103515625e-05 {
			_, e := math.Frexp(av)
			ulp = math.Ldexp(1, e-11)
		}
		return math.Abs(got-float64(v)) <= ulp/2+1e-30
	}
	cfg := &quick.Config{
		MaxCount: 5000,
		Values: func(args []reflect.Value, r *rand.Rand) {
			args[0] = reflect.ValueOf(float32(math.Ldexp(r.Float64()*2-1, r.Intn(36)-20)))
		},
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestHalfBuffer(t *testing.T) {
	src := []float32{0, 1, -2.5, 3.25, 100}
	b := NewHalfBuffer(len(src))
	b.FromFloats(src)
	if b.Bytes() != int64(len(src)*2) {
		t.Errorf("Bytes() = %d, want %d", b.Bytes(), len(src)*2)
	}
	got := b.Floats()
	for i := range src {
		if got[i] != src[i] {
			t.Errorf("element %d: got %v want %v", i, got[i], src[i])
		}
	}
	if b.Overflowed() {
		t.Error("finite buffer reported overflow")
	}
	b[2] = halfPosInf
	if !b.Overflowed() {
		t.Error("buffer with Inf did not report overflow")
	}
}

func TestHalfBufferLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on length mismatch")
		}
	}()
	NewHalfBuffer(3).FromFloats(make([]float32, 4))
}

// FuzzHalfRoundTrip drives the batch conversion surface with arbitrary
// fp32 bit patterns (NaN payloads, Inf, subnormals included): the batch
// encoders must match the scalar reference bit for bit, the fused
// round-and-store must agree with the separate passes, decoding what was
// encoded must round-trip exactly, and the overflow flag must track
// non-finite encodings.
func FuzzHalfRoundTrip(f *testing.F) {
	f.Add(uint32(0), uint32(0x3f800000), uint32(0x7f800001), uint32(0x00000001))
	f.Add(uint32(0x7fc00000), uint32(0xff800000), uint32(0x477fefff), uint32(0x33800000))
	f.Add(uint32(0x38800000), uint32(0x477ff000), uint32(0x80000001), uint32(0xb8000000))
	f.Fuzz(func(t *testing.T, u0, u1, u2, u3 uint32) {
		src := []float32{
			math.Float32frombits(u0), math.Float32frombits(u1),
			math.Float32frombits(u2), math.Float32frombits(u3),
		}
		enc := NewHalfBuffer(len(src))
		enc.FromFloats(src)
		rounded := append([]float32(nil), src...)
		RoundHalf(rounded)
		fused := append([]float32(nil), src...)
		fusedEnc := NewHalfBuffer(len(src))
		overflow := fusedEnc.FromFloatsRound(fused)
		checked := append([]float32(nil), src...)
		checkFlag := RoundHalfCheck(checked)
		dec := make([]float32, len(src))
		enc.ToFloats(dec)
		for i, v := range src {
			want := FromFloat32(v)
			if enc[i] != want || fusedEnc[i] != want {
				t.Fatalf("encode(%#08x): batch %#04x fused %#04x, want %#04x",
					math.Float32bits(v), enc[i], fusedEnc[i], want)
			}
			wantRound := math.Float32bits(want.Float32())
			for _, got := range []float32{rounded[i], fused[i], checked[i], dec[i]} {
				if math.Float32bits(got) != wantRound {
					t.Fatalf("round/decode(%#08x) = %#08x, want %#08x",
						math.Float32bits(v), math.Float32bits(got), wantRound)
				}
			}
			// Decode→encode is the identity (modulo NaN canonicalization).
			if back := FromFloat32(dec[i]); back != enc[i] && !enc[i].IsNaN() {
				t.Fatalf("round trip %#04x -> %v -> %#04x", enc[i], dec[i], back)
			}
		}
		if want := enc.Overflowed(); overflow != want || checkFlag != want {
			t.Fatalf("overflow flags fused=%v checked=%v, want %v", overflow, checkFlag, want)
		}
	})
}

// halfProbeValues enumerates the inputs that exercise every branch and
// boundary of the fp16 conversion: each fp16 bit pattern's exact fp32
// image, both neighbors of that image, halfway (tie) points, the
// subnormal/normal and finite/Inf borders, and specials.
func halfProbeValues() []float32 {
	var vs []float32
	add := func(f float32) {
		u := math.Float32bits(f)
		vs = append(vs, f,
			math.Float32frombits(u+1),
			math.Float32frombits(u-1))
	}
	for i := 0; i <= 0xffff; i++ {
		f := Half(i).Float32()
		add(f)
		// Tie point halfway to the next representable fp16 magnitude.
		next := Half(i + 1)
		if !Half(i).IsInf() && !Half(i).IsNaN() && !next.IsNaN() && !next.IsInf() && (i&0x7fff) != 0x7fff {
			add((f + next.Float32()) / 2)
		}
	}
	vs = append(vs,
		0, float32(math.Copysign(0, -1)),
		65504, 65519.999, 65520, 65536, 1e38,
		float32(math.Inf(1)), float32(math.Inf(-1)), float32(math.NaN()),
		6.103515625e-05, 5.960464477539063e-08, 2.9802322387695312e-08, 1e-10, -1e-10,
	)
	return vs
}

// The batch fast paths (FromFloats, ToFloats, RoundHalf) must match the
// scalar reference conversions bit for bit — the goldens and the wire
// quantization depend on it.
func TestHalfFastPathsMatchReference(t *testing.T) {
	probe := halfProbeValues()
	r := rand.New(rand.NewSource(11))
	for i := 0; i < 200000; i++ {
		probe = append(probe, float32(math.Ldexp(r.Float64()*2-1, r.Intn(60)-30)))
	}
	enc := NewHalfBuffer(len(probe))
	enc.FromFloats(probe)
	rounded := make([]float32, len(probe))
	copy(rounded, probe)
	RoundHalf(rounded)
	for i, f := range probe {
		want := FromFloat32(f)
		if enc[i] != want {
			t.Fatalf("FromFloats(%v = %#08x) = %#04x, want %#04x",
				f, math.Float32bits(f), enc[i], want)
		}
		if got, w := math.Float32bits(rounded[i]), math.Float32bits(want.Float32()); got != w {
			t.Fatalf("RoundHalf(%v = %#08x) = %#08x, want %#08x",
				f, math.Float32bits(f), got, w)
		}
	}
	// ToFloats over every fp16 bit pattern vs the scalar decode.
	all := NewHalfBuffer(0x10000)
	for i := range all {
		all[i] = Half(i)
	}
	dec := make([]float32, len(all))
	all.ToFloats(dec)
	for i, h := range all {
		if got, want := math.Float32bits(dec[i]), math.Float32bits(h.Float32()); got != want {
			t.Fatalf("ToFloats(%#04x) = %#08x, want %#08x", i, got, want)
		}
	}
}
