package tensor

import (
	"math"
	"math/rand"
	"runtime"
	"testing"
)

// halfDecode (both the SSE path and the generic fallback) must reproduce
// the scalar reference decode bit for bit over every fp16 pattern, at every
// alignment and tail length.
func TestHalfDecodeAllBitPatterns(t *testing.T) {
	src := make(HalfBuffer, 0x10000)
	for i := range src {
		src[i] = Half(i)
	}
	dst := make([]float32, len(src))
	halfDecode(dst, src)
	for i, h := range src {
		if got, want := math.Float32bits(dst[i]), math.Float32bits(h.Float32()); got != want {
			t.Fatalf("halfDecode(%#04x) = %#08x, want %#08x", i, got, want)
		}
		if got, want := math.Float32bits(halfVal(h)), math.Float32bits(h.Float32()); got != want {
			t.Fatalf("halfVal(%#04x) = %#08x, want %#08x", i, got, want)
		}
	}
	// Odd lengths and offsets exercise the vector/scalar tail split.
	for _, n := range []int{1, 3, 7, 8, 9, 15, 16, 17, 31, 100} {
		for _, off := range []int{0, 1, 5} {
			sub := src[off : off+n]
			out := make([]float32, n)
			halfDecode(out, sub)
			for i, h := range sub {
				if got, want := math.Float32bits(out[i]), math.Float32bits(h.Float32()); got != want {
					t.Fatalf("halfDecode len %d off %d elem %d (%#04x): got %#08x want %#08x",
						n, off, i, uint16(h), got, want)
				}
			}
		}
	}
}

// The fused round-and-store paths must match the separately pinned
// FromFloats/RoundHalf conversions bit for bit, and the overflow flag must
// agree with Overflowed on the encoded buffer.
func TestHalfFusedPathsMatchReference(t *testing.T) {
	probe := halfProbeValues()
	r := rand.New(rand.NewSource(23))
	for i := 0; i < 100000; i++ {
		probe = append(probe, float32(math.Ldexp(r.Float64()*2-1, r.Intn(60)-30)))
	}
	for _, chunk := range [][]float32{probe, probe[:7], probe[len(probe)-1:]} {
		wantEnc := NewHalfBuffer(len(chunk))
		wantEnc.FromFloats(chunk)
		wantRounded := make([]float32, len(chunk))
		copy(wantRounded, chunk)
		RoundHalf(wantRounded)

		gotSrc := make([]float32, len(chunk))
		copy(gotSrc, chunk)
		gotEnc := NewHalfBuffer(len(chunk))
		overflow := gotEnc.FromFloatsRound(gotSrc)
		for i := range chunk {
			if gotEnc[i] != wantEnc[i] {
				t.Fatalf("FromFloatsRound enc(%v) = %#04x, want %#04x", chunk[i], gotEnc[i], wantEnc[i])
			}
			if got, want := math.Float32bits(gotSrc[i]), math.Float32bits(wantRounded[i]); got != want {
				t.Fatalf("FromFloatsRound rounded(%v) = %#08x, want %#08x", chunk[i], got, want)
			}
		}
		if overflow != wantEnc.Overflowed() {
			t.Fatalf("FromFloatsRound overflow = %v, Overflowed = %v", overflow, wantEnc.Overflowed())
		}

		gotChecked := make([]float32, len(chunk))
		copy(gotChecked, chunk)
		checked := RoundHalfCheck(gotChecked)
		for i := range chunk {
			if got, want := math.Float32bits(gotChecked[i]), math.Float32bits(wantRounded[i]); got != want {
				t.Fatalf("RoundHalfCheck(%v) = %#08x, want %#08x", chunk[i], got, want)
			}
		}
		if checked != wantEnc.Overflowed() {
			t.Fatalf("RoundHalfCheck overflow = %v, Overflowed = %v", checked, wantEnc.Overflowed())
		}
	}
}

// randHalf fills a HalfBuffer and its exact fp32 image with fp16-rounded
// random values.
func randHalf(r *rand.Rand, n int) (HalfBuffer, []float32) {
	f := make([]float32, n)
	for i := range f {
		f[i] = float32(r.NormFloat64())
	}
	h := NewHalfBuffer(n)
	h.FromFloatsRound(f)
	return h, f
}

// The half kernels on fp16 operands must be bitwise identical to the f32
// kernels on the decoded images of the same operands — the property that
// makes the fp16 compute path testable against the f32 goldens. Shapes
// cover the ov1/ov4 split (k < 4), axpy tails, odd rows, and sizes beyond
// the parallel threshold on both sides.
func TestHalfMatMulMatchesF32OnDecoded(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	shapes := []struct{ m, k, n int }{
		{1, 1, 1}, {1, 2, 3}, {2, 3, 5}, {3, 4, 4}, {5, 7, 9}, {4, 8, 16},
		{7, 5, 3}, {16, 16, 16}, {13, 29, 17}, {64, 32, 48}, {96, 128, 64},
	}
	for _, s := range shapes {
		ha, fa := randHalf(r, s.m*s.k)
		hb, fb := randHalf(r, s.k*s.n)

		got := make([]float32, s.m*s.n)
		want := make([]float32, s.m*s.n)
		MatMulH(got, ha, hb, s.m, s.k, s.n)
		MatMul(want, fa, fb, s.m, s.k, s.n)
		if d := MaxDiff(got, want); d != 0 {
			t.Fatalf("MatMulH %dx%dx%d differs from f32 by %g", s.m, s.k, s.n, d)
		}

		// BT orientation: A[m×n] · B[k×n]ᵀ.
		ha2, fa2 := randHalf(r, s.m*s.n)
		hb2, fb2 := randHalf(r, s.k*s.n)
		gotBT := make([]float32, s.m*s.k)
		wantBT := make([]float32, s.m*s.k)
		MatMulBTH(gotBT, ha2, hb2, s.m, s.n, s.k)
		MatMulBT(wantBT, fa2, fb2, s.m, s.n, s.k)
		if d := MaxDiff(gotBT, wantBT); d != 0 {
			t.Fatalf("MatMulBTH %dx%dx%d differs from f32 by %g", s.m, s.n, s.k, d)
		}

		// AT orientations: A[m×k]ᵀ · B[m×n].
		hbn, fbn := randHalf(r, s.m*s.n)
		gotAT := make([]float32, s.k*s.n)
		wantAT := make([]float32, s.k*s.n)
		MatMulATH(gotAT, ha, hbn, s.m, s.k, s.n)
		MatMulAT(wantAT, fa, fbn, s.m, s.k, s.n)
		if d := MaxDiff(gotAT, wantAT); d != 0 {
			t.Fatalf("MatMulATH %dx%dx%d differs from f32 by %g", s.m, s.k, s.n, d)
		}

		seed := make([]float32, s.k*s.n)
		for i := range seed {
			seed[i] = float32(r.NormFloat64())
		}
		gotATA := append([]float32(nil), seed...)
		wantATA := append([]float32(nil), seed...)
		MatMulATAddH(gotATA, ha, hbn, s.m, s.k, s.n)
		MatMulATAdd(wantATA, fa, fbn, s.m, s.k, s.n)
		if d := MaxDiff(gotATA, wantATA); d != 0 {
			t.Fatalf("MatMulATAddH %dx%dx%d differs from f32 by %g", s.m, s.k, s.n, d)
		}
	}
}

// The parallel and serial half-kernel paths must agree bitwise, like their
// f32 counterparts.
func TestHalfMatMulParallelMatchesSerial(t *testing.T) {
	r := rand.New(rand.NewSource(43))
	m, k, n := 96, 64, 80 // above parallelThreshold
	ha, _ := randHalf(r, m*k)
	hb, _ := randHalf(r, k*n)
	par := make([]float32, m*n)
	MatMulH(par, ha, hb, m, k, n)

	prev := runtime.GOMAXPROCS(1)
	ser := make([]float32, m*n)
	MatMulH(ser, ha, hb, m, k, n)
	runtime.GOMAXPROCS(prev)

	if d := MaxDiff(par, ser); d != 0 {
		t.Fatalf("parallel and serial MatMulH differ by %g", d)
	}
}
