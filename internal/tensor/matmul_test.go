package tensor

import (
	"math/rand"
	"testing"
)

// naive reference implementations used to validate the blocked kernels.

func refMatMul(a, b []float32, m, k, n int) []float32 {
	c := make([]float32, m*n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var s float32
			for p := 0; p < k; p++ {
				s += a[i*k+p] * b[p*n+j]
			}
			c[i*n+j] = s
		}
	}
	return c
}

func randSlice(r *rand.Rand, n int) []float32 {
	s := make([]float32, n)
	for i := range s {
		s[i] = float32(r.NormFloat64())
	}
	return s
}

// refTranspose returns Aᵀ for A[rows×cols] (test-local; the library's fused
// Aᵀ·B kernels made a standalone Transpose unnecessary).
func refTranspose(a []float32, rows, cols int) []float32 {
	t := make([]float32, rows*cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			t[j*rows+i] = a[i*cols+j]
		}
	}
	return t
}

func TestMatMulAgainstReference(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for _, dims := range [][3]int{{1, 1, 1}, {2, 3, 4}, {7, 5, 9}, {16, 16, 16}, {33, 17, 65}, {64, 128, 32}} {
		m, k, n := dims[0], dims[1], dims[2]
		a, b := randSlice(r, m*k), randSlice(r, k*n)
		c := make([]float32, m*n)
		MatMul(c, a, b, m, k, n)
		want := refMatMul(a, b, m, k, n)
		if d := MaxDiff(c, want); d > 1e-4 {
			t.Errorf("MatMul %v: max diff %g", dims, d)
		}
	}
}

func TestMatMulBTAgainstReference(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for _, dims := range [][3]int{{2, 3, 4}, {7, 5, 9}, {33, 17, 65}} {
		m, n, k := dims[0], dims[1], dims[2]
		a := randSlice(r, m*n) // A[m×n]
		b := randSlice(r, k*n) // B[k×n]
		c := make([]float32, m*k)
		MatMulBT(c, a, b, m, n, k)
		// reference: C = A · Bᵀ
		bt := refTranspose(b, k, n)
		want := refMatMul(a, bt, m, n, k)
		if d := MaxDiff(c, want); d > 1e-4 {
			t.Errorf("MatMulBT %v: max diff %g", dims, d)
		}
	}
}

func TestMatMulATAddAgainstReference(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for _, dims := range [][3]int{{2, 3, 4}, {7, 5, 9}, {33, 17, 65}} {
		m, k, n := dims[0], dims[1], dims[2]
		a := randSlice(r, m*k) // A[m×k]
		b := randSlice(r, m*n) // B[m×n]
		c := make([]float32, k*n)
		initial := randSlice(r, k*n)
		copy(c, initial)
		MatMulATAdd(c, a, b, m, k, n)
		at := refTranspose(a, m, k)
		want := refMatMul(at, b, k, m, n)
		Add(want, initial)
		if d := MaxDiff(c, want); d > 1e-4 {
			t.Errorf("MatMulATAdd %v: max diff %g", dims, d)
		}
	}
}

func TestMatMulIdentity(t *testing.T) {
	n := 8
	id := make([]float32, n*n)
	for i := 0; i < n; i++ {
		id[i*n+i] = 1
	}
	r := rand.New(rand.NewSource(4))
	a := randSlice(r, n*n)
	c := make([]float32, n*n)
	MatMul(c, a, id, n, n, n)
	if d := MaxDiff(c, a); d != 0 {
		t.Errorf("A·I differs from A by %g", d)
	}
	MatMul(c, id, a, n, n, n)
	if d := MaxDiff(c, a); d != 0 {
		t.Errorf("I·A differs from A by %g", d)
	}
}

func TestAddBiasAndBiasGrad(t *testing.T) {
	m, n := 3, 4
	x := make([]float32, m*n)
	bias := []float32{1, 2, 3, 4}
	AddBiasRows(x, bias, m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			if x[i*n+j] != bias[j] {
				t.Fatalf("AddBiasRows wrong at (%d,%d)", i, j)
			}
		}
	}
	dBias := make([]float32, n)
	BiasGradRows(dBias, x, m, n)
	for j := range bias {
		if dBias[j] != float32(m)*bias[j] {
			t.Errorf("BiasGradRows[%d] = %v, want %v", j, dBias[j], float32(m)*bias[j])
		}
	}
}

func TestMatMulDimensionPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on dimension mismatch")
		}
	}()
	MatMul(make([]float32, 4), make([]float32, 4), make([]float32, 5), 2, 2, 2)
}

func BenchmarkMatMul256(b *testing.B) {
	r := rand.New(rand.NewSource(5))
	n := 256
	a, bb := randSlice(r, n*n), randSlice(r, n*n)
	c := make([]float32, n*n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMul(c, a, bb, n, n, n)
	}
	b.SetBytes(int64(n * n * 4))
}
