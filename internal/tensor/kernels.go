package tensor

import "math"

// Nonlinear kernels and their manual gradients. Forward signatures take
// destination first, mirroring the matmul kernels. Backward kernels follow
// the convention dX = backward(dY, saved-forward-state).

const sqrt2OverPi = 0.7978845608028654 // √(2/π), for the tanh GELU approximation

// GELU applies the tanh-approximated Gaussian error linear unit
// elementwise: y = 0.5x(1 + tanh(√(2/π)(x + 0.044715x³))).
func GELU(dst, x []float32) {
	if len(dst) != len(x) {
		panic("tensor: GELU length mismatch")
	}
	for i, v := range x {
		f := float64(v)
		u := sqrt2OverPi * (f + 0.044715*f*f*f)
		dst[i] = float32(0.5 * f * (1 + math.Tanh(u)))
	}
}

// GELUBackward accumulates dx[i] += dy[i] * g'(x[i]) for the tanh GELU.
func GELUBackward(dx, dy, x []float32) {
	if len(dx) != len(dy) || len(dx) != len(x) {
		panic("tensor: GELUBackward length mismatch")
	}
	for i, v := range x {
		f := float64(v)
		u := sqrt2OverPi * (f + 0.044715*f*f*f)
		t := math.Tanh(u)
		du := sqrt2OverPi * (1 + 3*0.044715*f*f)
		g := 0.5*(1+t) + 0.5*f*(1-t*t)*du
		dx[i] += dy[i] * float32(g)
	}
}

// LayerNorm normalizes each row of x[m×n] to zero mean and unit variance,
// then applies the learned affine (gamma, beta). It writes the normalized
// pre-affine values into xhat (needed by the backward pass) and the output
// into y. invStd receives 1/√(var+eps) per row.
func LayerNorm(y, xhat, invStd, x, gamma, beta []float32, m, n int, eps float32) {
	checkDims(len(x), m*n, "x")
	checkDims(len(y), m*n, "y")
	checkDims(len(xhat), m*n, "xhat")
	checkDims(len(invStd), m, "invStd")
	checkDims(len(gamma), n, "gamma")
	checkDims(len(beta), n, "beta")
	for i := 0; i < m; i++ {
		row := x[i*n : i*n+n]
		var mean float64
		for _, v := range row {
			mean += float64(v)
		}
		mean /= float64(n)
		var variance float64
		for _, v := range row {
			d := float64(v) - mean
			variance += d * d
		}
		variance /= float64(n)
		is := float32(1 / math.Sqrt(variance+float64(eps)))
		invStd[i] = is
		xh := xhat[i*n : i*n+n]
		yr := y[i*n : i*n+n]
		for j, v := range row {
			h := (v - float32(mean)) * is
			xh[j] = h
			yr[j] = gamma[j]*h + beta[j]
		}
	}
}

// LayerNormBackward accumulates input gradients into dx and parameter
// gradients into dGamma/dBeta, given upstream dy and the saved xhat/invStd.
func LayerNormBackward(dx, dGamma, dBeta, dy, xhat, invStd, gamma []float32, m, n int) {
	checkDims(len(dx), m*n, "dx")
	checkDims(len(dy), m*n, "dy")
	checkDims(len(xhat), m*n, "xhat")
	checkDims(len(invStd), m, "invStd")
	checkDims(len(gamma), n, "gamma")
	checkDims(len(dGamma), n, "dGamma")
	checkDims(len(dBeta), n, "dBeta")
	for i := 0; i < m; i++ {
		dyr := dy[i*n : i*n+n]
		xh := xhat[i*n : i*n+n]
		dxr := dx[i*n : i*n+n]
		// Parameter gradients.
		for j, g := range dyr {
			dGamma[j] += g * xh[j]
			dBeta[j] += g
		}
		// Input gradient: dx = invStd*(dxhat - mean(dxhat) - xhat*mean(dxhat⊙xhat)).
		var sumDxh, sumDxhXh float64
		for j, g := range dyr {
			dxh := float64(g) * float64(gamma[j])
			sumDxh += dxh
			sumDxhXh += dxh * float64(xh[j])
		}
		meanDxh := sumDxh / float64(n)
		meanDxhXh := sumDxhXh / float64(n)
		is := float64(invStd[i])
		for j, g := range dyr {
			dxh := float64(g) * float64(gamma[j])
			dxr[j] += float32(is * (dxh - meanDxh - float64(xh[j])*meanDxhXh))
		}
	}
}

// SoftmaxRows applies a numerically stable softmax to each row of x[m×n],
// writing into y (y may alias x).
func SoftmaxRows(y, x []float32, m, n int) {
	checkDims(len(x), m*n, "x")
	checkDims(len(y), m*n, "y")
	for i := 0; i < m; i++ {
		row := x[i*n : i*n+n]
		out := y[i*n : i*n+n]
		max := row[0]
		for _, v := range row[1:] {
			if v > max {
				max = v
			}
		}
		var sum float64
		for j, v := range row {
			e := math.Exp(float64(v - max))
			out[j] = float32(e)
			sum += e
		}
		inv := float32(1 / sum)
		for j := range out {
			out[j] *= inv
		}
	}
}

// SoftmaxRowsBackward accumulates dx given dy and the saved softmax output p:
// dx = p ⊙ (dy - Σ dy⊙p) per row.
func SoftmaxRowsBackward(dx, dy, p []float32, m, n int) {
	checkDims(len(dx), m*n, "dx")
	checkDims(len(dy), m*n, "dy")
	checkDims(len(p), m*n, "p")
	for i := 0; i < m; i++ {
		dyr := dy[i*n : i*n+n]
		pr := p[i*n : i*n+n]
		dxr := dx[i*n : i*n+n]
		var dot float64
		for j, v := range dyr {
			dot += float64(v) * float64(pr[j])
		}
		for j, v := range dyr {
			dxr[j] += pr[j] * (v - float32(dot))
		}
	}
}

// CrossEntropy computes the mean negative log-likelihood of targets under
// row-wise softmax(logits[m×v]) and writes softmax probabilities into probs
// (for the backward pass). It returns the scalar loss.
func CrossEntropy(probs, logits []float32, targets []int, m, v int) float64 {
	checkDims(len(logits), m*v, "logits")
	checkDims(len(probs), m*v, "probs")
	checkDims(len(targets), m, "targets")
	SoftmaxRows(probs, logits, m, v)
	var loss float64
	for i, t := range targets {
		if t < 0 || t >= v {
			panic("tensor: CrossEntropy target out of range")
		}
		p := float64(probs[i*v+t])
		if p < 1e-30 {
			p = 1e-30
		}
		loss -= math.Log(p)
	}
	return loss / float64(m)
}

// CrossEntropyBackward writes dLogits = (probs - onehot(targets)) / m.
func CrossEntropyBackward(dLogits, probs []float32, targets []int, m, v int) {
	checkDims(len(dLogits), m*v, "dLogits")
	checkDims(len(probs), m*v, "probs")
	checkDims(len(targets), m, "targets")
	inv := float32(1) / float32(m)
	for i := 0; i < m; i++ {
		row := probs[i*v : i*v+v]
		out := dLogits[i*v : i*v+v]
		for j, p := range row {
			out[j] = p * inv
		}
		out[targets[i]] -= inv
	}
}
