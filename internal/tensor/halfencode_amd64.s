// SSE2 fp32 → binary16 batch encode: the mirror of halfdecode_amd64.s.
// Each lane restates the branch-light scalar conversion from half.go with
// masks instead of branches — normals round by integer arithmetic on the
// fp32 bits (add 0xfff plus the round-to-odd bit, carry rolling into the
// exponent), subnormals ride the FP adder's own RNE (|f| + 0.5 places the
// fp16 subnormal count in the low mantissa bits), and the overflow/NaN
// lanes assemble sign | 0x7c00 (| 0x200 quiet) exactly as the scalar
// switch. Bitwise identical to the loops in half.go per element.
//
// One macro produces both results every caller wants some subset of: the
// packed fp16 image (H) and the binary16-rounded fp32 image (R), plus an
// accumulated overflow mask. The three entry points differ only in which
// results they store.

#include "textflag.h"

// Broadcast constant rows, one 16-byte row each; the 240-byte symbol is
// 16-aligned by the linker (data symbols ≥ 16 bytes), as the aligned
// m128 operands below require.
DATA heconst<>+0x00(SB)/8, $0x8000000080000000 // fp32 sign mask
DATA heconst<>+0x08(SB)/8, $0x8000000080000000
DATA heconst<>+0x10(SB)/8, $0x7fffffff7fffffff // abs mask
DATA heconst<>+0x18(SB)/8, $0x7fffffff7fffffff
DATA heconst<>+0x20(SB)/8, $0x0000000100000001 // round-to-odd bit
DATA heconst<>+0x28(SB)/8, $0x0000000100000001
DATA heconst<>+0x30(SB)/8, $0x00000fff00000fff // RNE increment
DATA heconst<>+0x38(SB)/8, $0x00000fff00000fff
DATA heconst<>+0x40(SB)/8, $0x3800000038000000 // exponent rebias
DATA heconst<>+0x48(SB)/8, $0x3800000038000000
DATA heconst<>+0x50(SB)/8, $0x00001fff00001fff // rounded-off low bits
DATA heconst<>+0x58(SB)/8, $0x00001fff00001fff
DATA heconst<>+0x60(SB)/8, $0x3f0000003f000000 // 0.5f, and the subnormal h bias
DATA heconst<>+0x68(SB)/8, $0x3f0000003f000000
DATA heconst<>+0x70(SB)/8, $0x3880000038800000 // smallest fp16-normal em
DATA heconst<>+0x78(SB)/8, $0x3880000038800000
DATA heconst<>+0x80(SB)/8, $0xc77fffffc77fffff // (0x47800000 ^ sign) - 1: unsigned ovf cmp
DATA heconst<>+0x88(SB)/8, $0xc77fffffc77fffff
DATA heconst<>+0x90(SB)/8, $0x7f8000007f800000 // fp32 Inf
DATA heconst<>+0x98(SB)/8, $0x7f8000007f800000
DATA heconst<>+0xa0(SB)/8, $0x0000020000000200 // fp16 NaN quiet bit
DATA heconst<>+0xa8(SB)/8, $0x0000020000000200
DATA heconst<>+0xb0(SB)/8, $0x00007c0000007c00 // fp16 Inf
DATA heconst<>+0xb8(SB)/8, $0x00007c0000007c00
DATA heconst<>+0xc0(SB)/8, $0x0040000000400000 // fp32 NaN quiet bit
DATA heconst<>+0xc8(SB)/8, $0x0040000000400000
DATA heconst<>+0xd0(SB)/8, $0x0000800000008000 // pack bias (dword)
DATA heconst<>+0xd8(SB)/8, $0x0000800000008000
DATA heconst<>+0xe0(SB)/8, $0x8000800080008000 // pack bias undo (words)
DATA heconst<>+0xe8(SB)/8, $0x8000800080008000
GLOBL heconst<>(SB), RODATA|NOPTR, $240

// encode4 converts the four fp32 bit patterns in X0 into the fp16 images
// (u32 lanes of X4) and the rounded fp32 images (X8), OR-ing the
// overflowed lanes' masks into X15. Clobbers X0..X13.
#define encode4 \
	MOVO    X0, X1                   \ // sign = u & 0x80000000
	PAND    heconst<>+0x00(SB), X1   \
	PAND    heconst<>+0x10(SB), X0   \
	MOVO    X0, X2                   \ // em = u & 0x7fffffff
	MOVO    X2, X3                   \ // T = em + 0xfff + (em>>13 & 1)
	PSRLL   $13, X3                  \
	PAND    heconst<>+0x20(SB), X3   \
	PADDL   X2, X3                   \
	PADDL   heconst<>+0x30(SB), X3   \
	MOVO    X3, X4                   \ // HN = (T - 0x38000000) >> 13
	PSUBL   heconst<>+0x40(SB), X4   \
	PSRLL   $13, X4                  \
	MOVO    heconst<>+0x50(SB), X5   \ // RN = sign | (T &^ 0x1fff)
	PANDN   X3, X5                   \
	POR     X1, X5                   \
	MOVO    X2, X6                   \ // S = |f| + 0.5 (FP adder's RNE rounds)
	ADDPS   heconst<>+0x60(SB), X6   \
	MOVO    X6, X7                   \ // RS = sign | (S - 0.5): Sterbenz-exact
	SUBPS   heconst<>+0x60(SB), X7   \
	POR     X1, X7                   \
	PSUBL   heconst<>+0x60(SB), X6   \ // HS = bits(S) - 0x3f000000
	MOVO    heconst<>+0x70(SB), X8   \ // MSUB: em below the fp16 normal range
	PCMPGTL X2, X8                   \
	MOVO    X3, X9                   \ // MOVF: T >= 0x47800000, unsigned via
	PXOR    heconst<>+0x00(SB), X9   \ // sign-bias so a wrapped T still compares
	PCMPGTL heconst<>+0x80(SB), X9   \
	MOVO    X2, X10                  \ // MNAN: em above fp32 Inf
	PCMPGTL heconst<>+0x90(SB), X10  \
	MOVO    X10, X11                 \ // HOVF = 0x7c00 | quiet bit on NaN lanes
	PAND    heconst<>+0xa0(SB), X11  \
	POR     heconst<>+0xb0(SB), X11  \
	MOVO    X10, X12                 \ // ROVF = sign | Inf | quiet bit on NaN
	PAND    heconst<>+0xc0(SB), X12  \
	POR     heconst<>+0x90(SB), X12  \
	POR     X1, X12                  \
	MOVO    X9, X13                  \ // H = MSUB ? HS : MOVF ? HOVF : HN
	PAND    X11, X13                 \
	MOVO    X9, X11                  \
	PANDN   X4, X11                  \
	POR     X13, X11                 \
	MOVO    X8, X13                  \
	PAND    X6, X13                  \
	MOVO    X8, X4                   \
	PANDN   X11, X4                  \
	POR     X13, X4                  \
	MOVO    X1, X13                  \ // | sign >> 16
	PSRLL   $16, X13                 \
	POR     X13, X4                  \
	MOVO    X9, X13                  \ // R = MSUB ? RS : MOVF ? ROVF : RN
	PAND    X12, X13                 \
	MOVO    X9, X12                  \
	PANDN   X5, X12                  \
	POR     X13, X12                 \
	MOVO    X8, X13                  \
	PAND    X7, X13                  \
	PANDN   X12, X8                  \
	POR     X13, X8                  \
	POR     X9, X15                    // overflow lanes accumulate

// pack8 squeezes the u32 fp16 lanes of Xlo (elements 0..3) and Xhi (4..7)
// into eight u16s in Xlo: PACKSSDW saturates signed, so bias both sides
// down by 0x8000, pack, and flip the bias back with a word XOR.
#define pack8(Xlo, Xhi) \
	PSUBL    heconst<>+0xd0(SB), Xlo \
	PSUBL    heconst<>+0xd0(SB), Xhi \
	PACKSSLW Xhi, Xlo                \
	PXOR     heconst<>+0xe0(SB), Xlo

// func halfEncodeSSE(dst []Half, src []float32)
// len(dst) is a non-zero multiple of 8; len(src) >= len(dst). src is not
// written.
TEXT ·halfEncodeSSE(SB), NOSPLIT, $0-48
	MOVQ dst_base+0(FP), DI
	MOVQ dst_len+8(FP), CX
	MOVQ src_base+24(FP), SI
	PXOR X15, X15
	XORQ AX, AX

encloop:
	MOVUPS (SI)(AX*4), X0
	encode4
	MOVO   X4, X14
	MOVUPS 16(SI)(AX*4), X0
	encode4
	pack8(X14, X4)
	MOVUPS X14, (DI)(AX*2)
	ADDQ   $8, AX
	CMPQ   AX, CX
	JL     encloop
	RET

// func halfEncodeRoundSSE(dst []Half, src []float32) int64
// As halfEncodeSSE, but also rounds src through binary16 in place and
// returns nonzero if any element overflowed the fp16 range.
TEXT ·halfEncodeRoundSSE(SB), NOSPLIT, $0-56
	MOVQ dst_base+0(FP), DI
	MOVQ dst_len+8(FP), CX
	MOVQ src_base+24(FP), SI
	PXOR X15, X15
	XORQ AX, AX

encrloop:
	MOVUPS (SI)(AX*4), X0
	encode4
	MOVUPS X8, (SI)(AX*4)
	MOVO   X4, X14
	MOVUPS 16(SI)(AX*4), X0
	encode4
	MOVUPS X8, 16(SI)(AX*4)
	pack8(X14, X4)
	MOVUPS X14, (DI)(AX*2)
	ADDQ   $8, AX
	CMPQ   AX, CX
	JL     encrloop
	MOVMSKPS X15, AX
	MOVQ     AX, ret+48(FP)
	RET

// func roundHalfSSE(x []float32) int64
// Rounds x through binary16 in place; returns nonzero if any element
// overflowed. len(x) is a non-zero multiple of 8.
TEXT ·roundHalfSSE(SB), NOSPLIT, $0-32
	MOVQ x_base+0(FP), SI
	MOVQ x_len+8(FP), CX
	PXOR X15, X15
	XORQ AX, AX

rndloop:
	MOVUPS (SI)(AX*4), X0
	encode4
	MOVUPS X8, (SI)(AX*4)
	MOVUPS 16(SI)(AX*4), X0
	encode4
	MOVUPS X8, 16(SI)(AX*4)
	ADDQ   $8, AX
	CMPQ   AX, CX
	JL     rndloop
	MOVMSKPS X15, AX
	MOVQ     AX, ret+24(FP)
	RET
