package tensor

import (
	"runtime"
	"sync"
)

// Persistent worker pool for the parallel kernels.
//
// The previous fan-out spawned GOMAXPROCS goroutines per matmul call — a
// closure, an escaping WaitGroup and one goroutine handoff per chunk, per
// call. A steady-state training step runs hundreds of parallel kernels, so
// that per-call churn was the last allocation source standing after the
// workspace/arena discipline (and why the alloc tests had to pin
// GOMAXPROCS to 1). The pool starts its workers once, on the first
// parallel kernel, and every later dispatch is allocation-free: tasks are
// small value structs copied into a buffered channel, and the per-call
// bookkeeping (kernel arguments + completion WaitGroup) lives in a job
// object recycled through a free list.
//
// Dispatch width adapts to runtime.GOMAXPROCS at every call (the pool
// keeps enough parked workers to cover a GOMAXPROCS raised above the
// physical core count, as tests on small containers do), the work is split
// into ranges whose sizes differ by at most one unit, and the caller
// executes the final range itself — so a split that resolves to a single
// chunk runs inline on the calling goroutine with no handoff at all.

// op selects the range kernel a task runs; see runKernel.
type op int8

const (
	opMM op = iota
	opMMCols
	opATAdd
	opATAddCols
	opAT
	opATCols
	opMMHF // fp16 A coefficients against decoded fp32 B
)

// job carries one parallel kernel invocation's arguments and its
// completion counter. Jobs are recycled through jobFree so steady-state
// dispatch does not allocate. The half-domain kernels carry their fp16
// operand in ha alongside the fp32 slices.
type job struct {
	kind       op
	c, a, b    []float32
	ha         HalfBuffer
	d0, d1, d2 int
	wg         sync.WaitGroup
}

// task is one worker's share of a job: rows (or columns) [lo,hi).
type task struct {
	j      *job
	lo, hi int
}

var (
	poolOnce sync.Once
	poolCh   chan task
	jobFree  chan *job
	poolSize int
)

// startPool launches the per-process workers: one per real core, with a
// small floor so a GOMAXPROCS raised above the detected count still
// exercises real fan-out. Parked workers cost one stack each and no CPU.
func startPool() {
	poolSize = runtime.NumCPU()
	if poolSize < 8 {
		poolSize = 8
	}
	poolCh = make(chan task, 4*poolSize)
	jobFree = make(chan *job, 4*poolSize)
	for i := 0; i < cap(jobFree); i++ {
		jobFree <- new(job)
	}
	for i := 0; i < poolSize; i++ {
		go func() {
			for t := range poolCh {
				runKernel(t.j.kind, t.j.c, t.j.a, t.j.b, t.j.ha, t.j.d0, t.j.d1, t.j.d2, t.lo, t.hi)
				t.j.wg.Done()
			}
		}()
	}
}

func runKernel(kind op, c, a, b []float32, ha HalfBuffer, d0, d1, d2, lo, hi int) {
	switch kind {
	case opMM:
		matMulRange(c, a, b, d0, d1, lo, hi)
	case opMMCols:
		matMulColsRange(c, a, b, d0, d1, lo, hi)
	case opATAdd:
		matMulATAddRange(c, a, b, d0, d1, d2, lo, hi)
	case opATAddCols:
		matMulATAddColsRange(c, a, b, d0, d1, lo, hi)
	case opAT:
		matMulATRange(c, a, b, d0, d1, d2, lo, hi)
	case opATCols:
		matMulATColsRange(c, a, b, d0, d1, lo, hi)
	case opMMHF:
		matMulHFRange(c, ha, b, d0, d1, lo, hi)
	}
}

// fanOut reports whether a kernel with the given number of splittable
// units and total fused multiply-adds should use the pool.
func fanOut(units, work int) bool {
	return work >= parallelThreshold && units > 1 && runtime.GOMAXPROCS(0) > 1
}

// chunk returns the i-th of width balanced ranges over units: every range
// gets units/width, and the first units%width ranges take one extra unit —
// ranges differ by at most one, so no core idles behind an uneven tail
// (the old ceil-division split could leave width-1 cores a full chunk
// short: 9 rows on 8 procs made five 2-row chunks and three idle cores).
func chunk(units, width, i int) (lo, hi int) {
	q, r := units/width, units%width
	lo = i*q + min(i, r)
	hi = lo + q
	if i < r {
		hi++
	}
	return lo, hi
}

// runParallel splits units across the pool and the calling goroutine.
// Callers have already checked fanOut.
func runParallel(kind op, c, a, b []float32, d0, d1, d2, units int) {
	dispatch(kind, c, a, b, nil, d0, d1, d2, units)
}

// runParallelH is runParallel for the half-domain kernels: ha carries the
// fp16 operand, b the already-decoded fp32 one.
func runParallelH(kind op, c []float32, ha HalfBuffer, b []float32, d0, d1, d2, units int) {
	dispatch(kind, c, nil, b, ha, d0, d1, d2, units)
}

func dispatch(kind op, c, a, b []float32, ha HalfBuffer, d0, d1, d2, units int) {
	poolOnce.Do(startPool)
	width := runtime.GOMAXPROCS(0)
	if width > poolSize+1 {
		width = poolSize + 1 // parked workers plus the caller itself
	}
	if width > units {
		width = units
	}
	if width <= 1 {
		runKernel(kind, c, a, b, ha, d0, d1, d2, 0, units)
		return
	}
	var jb *job
	select {
	case jb = <-jobFree:
	default:
		jb = new(job) // free list drained by concurrent ranks; rare
	}
	jb.kind, jb.c, jb.a, jb.b, jb.ha, jb.d0, jb.d1, jb.d2 = kind, c, a, b, ha, d0, d1, d2
	jb.wg.Add(width - 1)
	for i := 0; i < width-1; i++ {
		lo, hi := chunk(units, width, i)
		poolCh <- task{j: jb, lo: lo, hi: hi}
	}
	lo, _ := chunk(units, width, width-1)
	runKernel(kind, c, a, b, ha, d0, d1, d2, lo, units) // caller takes the last range
	jb.wg.Wait()
	jb.c, jb.a, jb.b, jb.ha = nil, nil, nil, nil
	select {
	case jobFree <- jb:
	default:
	}
}

// scratchFree recycles the B-transpose buffers MatMulBT uses above the
// threshold. A channel free list (not sync.Pool) so the steady state is
// deterministically allocation-free: buffers are never dropped by GC, and
// the capacity bounds how many concurrent ranks can park one.
var scratchFree = make(chan []float32, 16)

func getScratch(n int) []float32 {
	select {
	case s := <-scratchFree:
		if cap(s) >= n {
			return s[:n]
		}
	default:
	}
	return make([]float32, n)
}

func putScratch(s []float32) {
	select {
	case scratchFree <- s:
	default:
	}
}
