//go:build amd64

package tensor

// SSE2 fp32 → binary16 batch conversions (halfencode_amd64.s): the encode
// mirror of halfdecode_amd64.go. Each vector lane computes exactly the
// scalar branch-light conversion from half.go — same integer rounding on
// the fp32 bits for normals, same FP-adder trick for subnormals, same
// special-value assembly — so every impl is bitwise identical to its
// scalar fallback (pinned by TestHalfFastPathsMatchReference and
// TestHalfFusedPathsMatchReference). Vector bodies take the 8-multiple
// prefix; the scalar loops finish the tail.

// halfEncodeSSE encodes len(dst) fp32 values into binary16 without
// touching src. len(dst) must be a non-zero multiple of 8 and
// len(src) >= len(dst).
//
//go:noescape
func halfEncodeSSE(dst []Half, src []float32)

// halfEncodeRoundSSE encodes src into dst and rounds src through binary16
// in place, returning nonzero if any element overflowed the fp16 range.
// Length contract as halfEncodeSSE.
//
//go:noescape
func halfEncodeRoundSSE(dst []Half, src []float32) int64

// roundHalfSSE rounds x through binary16 in place, returning nonzero if
// any element overflowed. len(x) must be a non-zero multiple of 8.
//
//go:noescape
func roundHalfSSE(x []float32) int64

func fromFloatsImpl(b HalfBuffer, src []float32) {
	n8 := len(b) &^ 7
	if n8 > 0 {
		halfEncodeSSE(b[:n8], src[:n8])
	}
	fromFloatsScalar(b[n8:], src[n8:])
}

func roundHalfImpl(x []float32) {
	n8 := len(x) &^ 7
	if n8 > 0 {
		roundHalfSSE(x[:n8])
	}
	roundHalfScalar(x[n8:])
}

func fromFloatsRoundImpl(b HalfBuffer, src []float32) bool {
	overflow := false
	n8 := len(b) &^ 7
	if n8 > 0 {
		overflow = halfEncodeRoundSSE(b[:n8], src[:n8]) != 0
	}
	return fromFloatsRoundScalar(b[n8:], src[n8:]) || overflow
}

func roundHalfCheckImpl(x []float32) bool {
	overflow := false
	n8 := len(x) &^ 7
	if n8 > 0 {
		overflow = roundHalfSSE(x[:n8]) != 0
	}
	return roundHalfCheckScalar(x[n8:]) || overflow
}
