// SSE inner loops for the dense kernels. Lanes map to distinct output
// elements (vectorization across output columns), so each element's fold
// order is exactly the scalar fallback's — the SIMD path is bitwise
// identical to axpy_generic.go. SSE only: it is part of the amd64
// baseline, so no CPUID dispatch is needed.

#include "textflag.h"

// func axpy1(c, b []float32, a float32)
// c[j] = c[j] + a*b[j]
TEXT ·axpy1(SB), NOSPLIT, $0-52
	MOVQ  c_base+0(FP), DI
	MOVQ  c_len+8(FP), CX
	MOVQ  b_base+24(FP), SI
	MOVSS a+48(FP), X0
	SHUFPS $0x00, X0, X0
	XORQ  AX, AX
	MOVQ  CX, DX
	ANDQ  $-8, DX
axpy1_loop8:
	CMPQ  AX, DX
	JGE   axpy1_tail
	MOVUPS (SI)(AX*4), X1
	MOVUPS 16(SI)(AX*4), X3
	MULPS X0, X1
	MULPS X0, X3
	MOVUPS (DI)(AX*4), X2
	MOVUPS 16(DI)(AX*4), X4
	ADDPS X1, X2
	ADDPS X3, X4
	MOVUPS X2, (DI)(AX*4)
	MOVUPS X4, 16(DI)(AX*4)
	ADDQ  $8, AX
	JMP   axpy1_loop8
axpy1_tail:
	CMPQ  AX, CX
	JGE   axpy1_done
	MOVSS (SI)(AX*4), X1
	MULSS X0, X1
	MOVSS (DI)(AX*4), X2
	ADDSS X1, X2
	MOVSS X2, (DI)(AX*4)
	INCQ  AX
	JMP   axpy1_tail
axpy1_done:
	RET

// func ov1(c, b []float32, a float32)
// c[j] = a*b[j]
TEXT ·ov1(SB), NOSPLIT, $0-52
	MOVQ  c_base+0(FP), DI
	MOVQ  c_len+8(FP), CX
	MOVQ  b_base+24(FP), SI
	MOVSS a+48(FP), X0
	SHUFPS $0x00, X0, X0
	XORQ  AX, AX
	MOVQ  CX, DX
	ANDQ  $-8, DX
ov1_loop8:
	CMPQ  AX, DX
	JGE   ov1_tail
	MOVUPS (SI)(AX*4), X1
	MOVUPS 16(SI)(AX*4), X2
	MULPS X0, X1
	MULPS X0, X2
	MOVUPS X1, (DI)(AX*4)
	MOVUPS X2, 16(DI)(AX*4)
	ADDQ  $8, AX
	JMP   ov1_loop8
ov1_tail:
	CMPQ  AX, CX
	JGE   ov1_done
	MOVSS (SI)(AX*4), X1
	MULSS X0, X1
	MOVSS X1, (DI)(AX*4)
	INCQ  AX
	JMP   ov1_tail
ov1_done:
	RET

// func axpy4(c, b0, b1, b2, b3 []float32, a0, a1, a2, a3 float32)
// c[j] = c[j] + a0*b0[j] + a1*b1[j] + a2*b2[j] + a3*b3[j], folded left to
// right per element.
TEXT ·axpy4(SB), NOSPLIT, $0-136
	MOVQ  c_base+0(FP), DI
	MOVQ  c_len+8(FP), CX
	MOVQ  b0_base+24(FP), SI
	MOVQ  b1_base+48(FP), R8
	MOVQ  b2_base+72(FP), R9
	MOVQ  b3_base+96(FP), R10
	MOVSS a0+120(FP), X0
	SHUFPS $0x00, X0, X0
	MOVSS a1+124(FP), X1
	SHUFPS $0x00, X1, X1
	MOVSS a2+128(FP), X2
	SHUFPS $0x00, X2, X2
	MOVSS a3+132(FP), X3
	SHUFPS $0x00, X3, X3
	XORQ  AX, AX
	MOVQ  CX, DX
	ANDQ  $-8, DX
axpy4_loop8:
	CMPQ  AX, DX
	JGE   axpy4_red4
	MOVUPS (DI)(AX*4), X4
	MOVUPS 16(DI)(AX*4), X5
	MOVUPS (SI)(AX*4), X6
	MOVUPS 16(SI)(AX*4), X7
	MULPS X0, X6
	MULPS X0, X7
	ADDPS X6, X4
	ADDPS X7, X5
	MOVUPS (R8)(AX*4), X6
	MOVUPS 16(R8)(AX*4), X7
	MULPS X1, X6
	MULPS X1, X7
	ADDPS X6, X4
	ADDPS X7, X5
	MOVUPS (R9)(AX*4), X6
	MOVUPS 16(R9)(AX*4), X7
	MULPS X2, X6
	MULPS X2, X7
	ADDPS X6, X4
	ADDPS X7, X5
	MOVUPS (R10)(AX*4), X6
	MOVUPS 16(R10)(AX*4), X7
	MULPS X3, X6
	MULPS X3, X7
	ADDPS X6, X4
	ADDPS X7, X5
	MOVUPS X4, (DI)(AX*4)
	MOVUPS X5, 16(DI)(AX*4)
	ADDQ  $8, AX
	JMP   axpy4_loop8
axpy4_red4:
	MOVQ  CX, DX
	ANDQ  $-4, DX
axpy4_loop4:
	CMPQ  AX, DX
	JGE   axpy4_tail
	MOVUPS (DI)(AX*4), X4
	MOVUPS (SI)(AX*4), X6
	MULPS X0, X6
	ADDPS X6, X4
	MOVUPS (R8)(AX*4), X6
	MULPS X1, X6
	ADDPS X6, X4
	MOVUPS (R9)(AX*4), X6
	MULPS X2, X6
	ADDPS X6, X4
	MOVUPS (R10)(AX*4), X6
	MULPS X3, X6
	ADDPS X6, X4
	MOVUPS X4, (DI)(AX*4)
	ADDQ  $4, AX
	JMP   axpy4_loop4
axpy4_tail:
	CMPQ  AX, CX
	JGE   axpy4_done
	MOVSS (DI)(AX*4), X4
	MOVSS (SI)(AX*4), X6
	MULSS X0, X6
	ADDSS X6, X4
	MOVSS (R8)(AX*4), X6
	MULSS X1, X6
	ADDSS X6, X4
	MOVSS (R9)(AX*4), X6
	MULSS X2, X6
	ADDSS X6, X4
	MOVSS (R10)(AX*4), X6
	MULSS X3, X6
	ADDSS X6, X4
	MOVSS X4, (DI)(AX*4)
	INCQ  AX
	JMP   axpy4_tail
axpy4_done:
	RET

// func ov4(c, b0, b1, b2, b3 []float32, a0, a1, a2, a3 float32)
// c[j] = a0*b0[j] + a1*b1[j] + a2*b2[j] + a3*b3[j], folded left to right.
TEXT ·ov4(SB), NOSPLIT, $0-136
	MOVQ  c_base+0(FP), DI
	MOVQ  c_len+8(FP), CX
	MOVQ  b0_base+24(FP), SI
	MOVQ  b1_base+48(FP), R8
	MOVQ  b2_base+72(FP), R9
	MOVQ  b3_base+96(FP), R10
	MOVSS a0+120(FP), X0
	SHUFPS $0x00, X0, X0
	MOVSS a1+124(FP), X1
	SHUFPS $0x00, X1, X1
	MOVSS a2+128(FP), X2
	SHUFPS $0x00, X2, X2
	MOVSS a3+132(FP), X3
	SHUFPS $0x00, X3, X3
	XORQ  AX, AX
	MOVQ  CX, DX
	ANDQ  $-8, DX
ov4_loop8:
	CMPQ  AX, DX
	JGE   ov4_red4
	MOVUPS (SI)(AX*4), X4
	MOVUPS 16(SI)(AX*4), X5
	MULPS X0, X4
	MULPS X0, X5
	MOVUPS (R8)(AX*4), X6
	MOVUPS 16(R8)(AX*4), X7
	MULPS X1, X6
	MULPS X1, X7
	ADDPS X6, X4
	ADDPS X7, X5
	MOVUPS (R9)(AX*4), X6
	MOVUPS 16(R9)(AX*4), X7
	MULPS X2, X6
	MULPS X2, X7
	ADDPS X6, X4
	ADDPS X7, X5
	MOVUPS (R10)(AX*4), X6
	MOVUPS 16(R10)(AX*4), X7
	MULPS X3, X6
	MULPS X3, X7
	ADDPS X6, X4
	ADDPS X7, X5
	MOVUPS X4, (DI)(AX*4)
	MOVUPS X5, 16(DI)(AX*4)
	ADDQ  $8, AX
	JMP   ov4_loop8
ov4_red4:
	MOVQ  CX, DX
	ANDQ  $-4, DX
ov4_loop4:
	CMPQ  AX, DX
	JGE   ov4_tail
	MOVUPS (SI)(AX*4), X4
	MULPS X0, X4
	MOVUPS (R8)(AX*4), X6
	MULPS X1, X6
	ADDPS X6, X4
	MOVUPS (R9)(AX*4), X6
	MULPS X2, X6
	ADDPS X6, X4
	MOVUPS (R10)(AX*4), X6
	MULPS X3, X6
	ADDPS X6, X4
	MOVUPS X4, (DI)(AX*4)
	ADDQ  $4, AX
	JMP   ov4_loop4
ov4_tail:
	CMPQ  AX, CX
	JGE   ov4_done
	MOVSS (SI)(AX*4), X4
	MULSS X0, X4
	MOVSS (R8)(AX*4), X6
	MULSS X1, X6
	ADDSS X6, X4
	MOVSS (R9)(AX*4), X6
	MULSS X2, X6
	ADDSS X6, X4
	MOVSS (R10)(AX*4), X6
	MULSS X3, X6
	ADDSS X6, X4
	MOVSS X4, (DI)(AX*4)
	INCQ  AX
	JMP   ov4_tail
ov4_done:
	RET
