package tensor

import "math"

// Elementwise and reduction primitives on flat fp32 slices. These are the
// building blocks of the optimizer and of the manual-backprop layers in
// internal/model. All functions panic on length mismatch: a shape error in
// the training stack is a programming bug, not a runtime condition.

// Zero sets every element of x to 0.
func Zero(x []float32) {
	for i := range x {
		x[i] = 0
	}
}

// Fill sets every element of x to v.
func Fill(x []float32, v float32) {
	for i := range x {
		x[i] = v
	}
}

// Copy copies src into dst (equal lengths required).
func Copy(dst, src []float32) {
	if len(dst) != len(src) {
		panic("tensor: Copy length mismatch")
	}
	copy(dst, src)
}

// Add computes dst[i] += src[i].
func Add(dst, src []float32) {
	if len(dst) != len(src) {
		panic("tensor: Add length mismatch")
	}
	for i, v := range src {
		dst[i] += v
	}
}

// Sub computes dst[i] -= src[i].
func Sub(dst, src []float32) {
	if len(dst) != len(src) {
		panic("tensor: Sub length mismatch")
	}
	for i, v := range src {
		dst[i] -= v
	}
}

// Mul computes dst[i] *= src[i] (Hadamard product).
func Mul(dst, src []float32) {
	if len(dst) != len(src) {
		panic("tensor: Mul length mismatch")
	}
	for i, v := range src {
		dst[i] *= v
	}
}

// Scale computes x[i] *= a.
func Scale(x []float32, a float32) {
	for i := range x {
		x[i] *= a
	}
}

// AXPY computes y[i] += a*x[i].
func AXPY(a float32, x, y []float32) {
	if len(x) != len(y) {
		panic("tensor: AXPY length mismatch")
	}
	for i, v := range x {
		y[i] += a * v
	}
}

// Dot returns the inner product of x and y accumulated in float64 for
// stability.
func Dot(x, y []float32) float64 {
	if len(x) != len(y) {
		panic("tensor: Dot length mismatch")
	}
	var s float64
	for i, v := range x {
		s += float64(v) * float64(y[i])
	}
	return s
}

// Sum returns the float64-accumulated sum of x.
func Sum(x []float32) float64 {
	var s float64
	for _, v := range x {
		s += float64(v)
	}
	return s
}

// Norm2 returns the Euclidean norm of x.
func Norm2(x []float32) float64 {
	var s float64
	for _, v := range x {
		s += float64(v) * float64(v)
	}
	return math.Sqrt(s)
}

// MaxAbs returns the largest absolute value in x (0 for empty input).
func MaxAbs(x []float32) float32 {
	var m float32
	for _, v := range x {
		a := v
		if a < 0 {
			a = -a
		}
		if a > m {
			m = a
		}
	}
	return m
}

// HasNaNOrInf reports whether x contains a non-finite value.
func HasNaNOrInf(x []float32) bool {
	for _, v := range x {
		f := float64(v)
		if math.IsNaN(f) || math.IsInf(f, 0) {
			return true
		}
	}
	return false
}

// MaxDiff returns the largest absolute elementwise difference between x
// and y, for numeric-equivalence tests.
func MaxDiff(x, y []float32) float64 {
	if len(x) != len(y) {
		panic("tensor: MaxDiff length mismatch")
	}
	var m float64
	for i, v := range x {
		d := math.Abs(float64(v) - float64(y[i]))
		if d > m {
			m = d
		}
	}
	return m
}
