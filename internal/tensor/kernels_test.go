package tensor

import (
	"math"
	"math/rand"
	"testing"
)

// Finite-difference gradient checks for every nonlinear kernel. These anchor
// the manual backprop in internal/model: if the primitives' gradients are
// right and the chain rule is applied mechanically, the model gradients are
// right too.

const fdEps = 1e-3

// numericalGrad computes d loss/d x[i] by central differences for a scalar
// loss function of a slice.
func numericalGrad(x []float32, i int, loss func() float64) float64 {
	orig := x[i]
	x[i] = orig + fdEps
	lp := loss()
	x[i] = orig - fdEps
	lm := loss()
	x[i] = orig
	return (lp - lm) / (2 * fdEps)
}

func TestGELUGradient(t *testing.T) {
	r := rand.New(rand.NewSource(10))
	n := 16
	x := randSlice(r, n)
	w := randSlice(r, n) // random linear functional to form a scalar loss
	loss := func() float64 {
		y := make([]float32, n)
		GELU(y, x)
		return Dot(y, w)
	}
	dy := make([]float32, n)
	copy(dy, w)
	dx := make([]float32, n)
	GELUBackward(dx, dy, x)
	for i := 0; i < n; i++ {
		want := numericalGrad(x, i, loss)
		if diff := math.Abs(float64(dx[i]) - want); diff > 1e-2 {
			t.Errorf("GELU grad[%d]: analytic %v numeric %v", i, dx[i], want)
		}
	}
}

func TestLayerNormForwardStats(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	m, n := 4, 32
	x := randSlice(r, m*n)
	gamma := make([]float32, n)
	beta := make([]float32, n)
	Fill(gamma, 1)
	y := make([]float32, m*n)
	xhat := make([]float32, m*n)
	invStd := make([]float32, m)
	LayerNorm(y, xhat, invStd, x, gamma, beta, m, n, 1e-5)
	for i := 0; i < m; i++ {
		row := y[i*n : i*n+n]
		mean := Sum(row) / float64(n)
		if math.Abs(mean) > 1e-5 {
			t.Errorf("row %d mean %g, want ~0", i, mean)
		}
		var variance float64
		for _, v := range row {
			variance += (float64(v) - mean) * (float64(v) - mean)
		}
		variance /= float64(n)
		if math.Abs(variance-1) > 1e-3 {
			t.Errorf("row %d var %g, want ~1", i, variance)
		}
	}
}

func TestLayerNormGradient(t *testing.T) {
	r := rand.New(rand.NewSource(12))
	m, n := 2, 8
	x := randSlice(r, m*n)
	gamma := randSlice(r, n)
	beta := randSlice(r, n)
	w := randSlice(r, m*n)
	forward := func() float64 {
		y := make([]float32, m*n)
		xhat := make([]float32, m*n)
		invStd := make([]float32, m)
		LayerNorm(y, xhat, invStd, x, gamma, beta, m, n, 1e-5)
		return Dot(y, w)
	}
	y := make([]float32, m*n)
	xhat := make([]float32, m*n)
	invStd := make([]float32, m)
	LayerNorm(y, xhat, invStd, x, gamma, beta, m, n, 1e-5)
	dx := make([]float32, m*n)
	dGamma := make([]float32, n)
	dBeta := make([]float32, n)
	LayerNormBackward(dx, dGamma, dBeta, w, xhat, invStd, gamma, m, n)

	for i := 0; i < m*n; i++ {
		want := numericalGrad(x, i, forward)
		if diff := math.Abs(float64(dx[i]) - want); diff > 2e-2 {
			t.Errorf("LayerNorm dx[%d]: analytic %v numeric %v", i, dx[i], want)
		}
	}
	for j := 0; j < n; j++ {
		want := numericalGrad(gamma, j, forward)
		if diff := math.Abs(float64(dGamma[j]) - want); diff > 2e-2 {
			t.Errorf("LayerNorm dGamma[%d]: analytic %v numeric %v", j, dGamma[j], want)
		}
		want = numericalGrad(beta, j, forward)
		if diff := math.Abs(float64(dBeta[j]) - want); diff > 2e-2 {
			t.Errorf("LayerNorm dBeta[%d]: analytic %v numeric %v", j, dBeta[j], want)
		}
	}
}

func TestSoftmaxRows(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	m, n := 3, 10
	x := randSlice(r, m*n)
	y := make([]float32, m*n)
	SoftmaxRows(y, x, m, n)
	for i := 0; i < m; i++ {
		row := y[i*n : i*n+n]
		s := Sum(row)
		if math.Abs(s-1) > 1e-5 {
			t.Errorf("softmax row %d sums to %g", i, s)
		}
		for j, v := range row {
			if v <= 0 || v >= 1 {
				t.Errorf("softmax[%d][%d] = %v out of (0,1)", i, j, v)
			}
		}
	}
	// Shift invariance: softmax(x + c) == softmax(x).
	shifted := make([]float32, m*n)
	copy(shifted, x)
	for i := range shifted {
		shifted[i] += 1000
	}
	y2 := make([]float32, m*n)
	SoftmaxRows(y2, shifted, m, n)
	if d := MaxDiff(y, y2); d > 1e-5 {
		t.Errorf("softmax not shift invariant: %g", d)
	}
}

func TestSoftmaxGradient(t *testing.T) {
	r := rand.New(rand.NewSource(14))
	m, n := 2, 6
	x := randSlice(r, m*n)
	w := randSlice(r, m*n)
	forward := func() float64 {
		y := make([]float32, m*n)
		SoftmaxRows(y, x, m, n)
		return Dot(y, w)
	}
	p := make([]float32, m*n)
	SoftmaxRows(p, x, m, n)
	dx := make([]float32, m*n)
	SoftmaxRowsBackward(dx, w, p, m, n)
	for i := 0; i < m*n; i++ {
		want := numericalGrad(x, i, forward)
		if diff := math.Abs(float64(dx[i]) - want); diff > 1e-2 {
			t.Errorf("softmax dx[%d]: analytic %v numeric %v", i, dx[i], want)
		}
	}
}

func TestCrossEntropyGradient(t *testing.T) {
	r := rand.New(rand.NewSource(15))
	m, v := 3, 7
	logits := randSlice(r, m*v)
	targets := []int{2, 0, 6}
	forward := func() float64 {
		probs := make([]float32, m*v)
		return CrossEntropy(probs, logits, targets, m, v)
	}
	probs := make([]float32, m*v)
	CrossEntropy(probs, logits, targets, m, v)
	dLogits := make([]float32, m*v)
	CrossEntropyBackward(dLogits, probs, targets, m, v)
	for i := 0; i < m*v; i++ {
		want := numericalGrad(logits, i, forward)
		if diff := math.Abs(float64(dLogits[i]) - want); diff > 1e-2 {
			t.Errorf("CE dLogits[%d]: analytic %v numeric %v", i, dLogits[i], want)
		}
	}
}

func TestCrossEntropyPerfectPrediction(t *testing.T) {
	m, v := 2, 4
	logits := make([]float32, m*v)
	logits[0*v+1] = 50
	logits[1*v+3] = 50
	probs := make([]float32, m*v)
	loss := CrossEntropy(probs, logits, []int{1, 3}, m, v)
	if loss > 1e-5 {
		t.Errorf("confident correct prediction loss %g, want ~0", loss)
	}
}

func TestOpsBasics(t *testing.T) {
	x := []float32{1, 2, 3}
	y := []float32{4, 5, 6}
	AXPY(2, x, y)
	want := []float32{6, 9, 12}
	for i := range want {
		if y[i] != want[i] {
			t.Fatalf("AXPY: got %v", y)
		}
	}
	if Dot(x, x) != 14 {
		t.Errorf("Dot = %v, want 14", Dot(x, x))
	}
	if MaxAbs([]float32{-5, 3}) != 5 {
		t.Error("MaxAbs wrong")
	}
	if !HasNaNOrInf([]float32{1, float32(math.Inf(1))}) {
		t.Error("HasNaNOrInf missed Inf")
	}
	if HasNaNOrInf(x) {
		t.Error("HasNaNOrInf false positive")
	}
	Scale(x, 0)
	if Sum(x) != 0 {
		t.Error("Scale by 0 failed")
	}
}
