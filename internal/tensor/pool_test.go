package tensor

import (
	"math"
	"math/rand"
	"runtime"
	"testing"
)

// The blocked kernels fold every output element's products in the naive
// reference order, so these tests demand exact bit equality, not tolerance
// — on the serial path, the SSE path, and every pool fan-out split.
// Inputs are nonzero normals (NormFloat64 never returns exactly zero), so
// the one licensed divergence — the sign of an exactly-zero sum, which the
// overwrite-first blocks may produce as -0 where a zero-initialized fold
// gives +0 — cannot occur.

func refBT(a, b []float32, m, n, k int) []float32 {
	return refMatMul(a, refTranspose(b, k, n), m, n, k)
}

// refATAdd folds the products into the initial contents in ascending-i
// order — the accumulate semantics of MatMulATAdd. (Summing the products
// first and adding initial at the end is a different association and
// diverges by an ulp.)
func refATAdd(initial, a, b []float32, m, k, n int) []float32 {
	w := make([]float32, k*n)
	copy(w, initial)
	for i := 0; i < m; i++ {
		for j := 0; j < k; j++ {
			av := a[i*k+j]
			for x := 0; x < n; x++ {
				w[j*n+x] += av * b[i*n+x]
			}
		}
	}
	return w
}

func bitsEqual(t *testing.T, label string, got, want []float32) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d != %d", label, len(got), len(want))
	}
	for i := range got {
		if math.Float32bits(got[i]) != math.Float32bits(want[i]) {
			t.Fatalf("%s: element %d = %v (%#08x), want %v (%#08x)",
				label, i, got[i], math.Float32bits(got[i]), want[i], math.Float32bits(want[i]))
		}
	}
}

// kernelShapes spans the dispatch matrix: zero-size edges, odd/prime dims,
// fewer rows than workers, the m==1 (and k==1 for Aᵀ) column splits, and
// shapes that cross parallelThreshold in each orientation.
var kernelShapes = [][3]int{
	{0, 3, 2}, {3, 0, 2}, {3, 2, 0}, {0, 0, 0},
	{1, 1, 1}, {1, 2, 3}, {2, 3, 4}, {3, 1, 5}, {5, 7, 3},
	{7, 13, 11}, {13, 1, 7}, {31, 17, 29}, {67, 31, 37},
	{9, 64, 128},   // work ≥ threshold, rows < workers
	{1, 256, 257},  // matvec: column split must engage
	{257, 256, 1},  // n == 1
	{256, 1, 257},  // k == 1: Aᵀ column split
	{64, 128, 512}, // the bench FC1 shape
}

// runShapeMatrix validates all four kernel orientations against the naive
// references for every shape, at the current GOMAXPROCS.
func runShapeMatrix(t *testing.T, seed int64) {
	r := rand.New(rand.NewSource(seed))
	for _, dims := range kernelShapes {
		m, k, n := dims[0], dims[1], dims[2]

		a, b := randSlice(r, m*k), randSlice(r, k*n)
		c := make([]float32, m*n)
		MatMul(c, a, b, m, k, n)
		bitsEqual(t, "MatMul", c, refMatMul(a, b, m, k, n))

		// BT reads the triple as (m, n, k): A[m×n]·B[k×n]ᵀ.
		bm, bn, bk := m, k, n
		a, b = randSlice(r, bm*bn), randSlice(r, bk*bn)
		c = make([]float32, bm*bk)
		MatMulBT(c, a, b, bm, bn, bk)
		bitsEqual(t, "MatMulBT", c, refBT(a, b, bm, bn, bk))

		a, b = randSlice(r, m*k), randSlice(r, m*n)
		c = make([]float32, k*n)
		initial := randSlice(r, k*n)
		copy(c, initial)
		MatMulATAdd(c, a, b, m, k, n)
		bitsEqual(t, "MatMulATAdd", c, refATAdd(initial, a, b, m, k, n))

		c2 := make([]float32, k*n)
		MatMulAT(c2, a, b, m, k, n)
		bitsEqual(t, "MatMulAT", c2, refMatMul(refTranspose(a, m, k), b, k, m, n))
	}
}

func TestKernelShapeMatrixSerial(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	runShapeMatrix(t, 21)
}

// The same matrix with the worker pool engaged: GOMAXPROCS is raised so
// fanOut fires and the threshold-crossing shapes run split across the pool
// (including on the single-core CI box, where the pool keeps a floor of
// parked workers for exactly this).
func TestKernelShapeMatrixParallel(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	runShapeMatrix(t, 22)
}

// Serial and fanned-out runs of the same problem must agree bit for bit —
// the balanced split changes which goroutine folds which output row, never
// what any element folds.
func TestParallelMatchesSerialBitwise(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	m, k, n := 37, 64, 128 // work ≥ threshold, odd row count
	a, b := randSlice(r, m*k), randSlice(r, k*n)

	serial := make([]float32, m*n)
	prev := runtime.GOMAXPROCS(1)
	MatMul(serial, a, b, m, k, n)
	runtime.GOMAXPROCS(4)
	par := make([]float32, m*n)
	MatMul(par, a, b, m, k, n)
	runtime.GOMAXPROCS(prev)

	bitsEqual(t, "parallel MatMul", par, serial)
}

// chunk must cover [0,units) exactly once with ranges differing by at most
// one unit — the load-balance fix over the old ceil-division split, which
// could idle width-1 workers behind an uneven tail.
func TestChunkBalanced(t *testing.T) {
	for units := 1; units <= 67; units++ {
		for width := 1; width <= 16 && width <= units; width++ {
			next, minSz, maxSz := 0, units, 0
			for i := 0; i < width; i++ {
				lo, hi := chunk(units, width, i)
				if lo != next {
					t.Fatalf("units=%d width=%d: range %d starts at %d, want %d", units, width, i, lo, next)
				}
				if hi <= lo {
					t.Fatalf("units=%d width=%d: range %d is empty [%d,%d)", units, width, i, lo, hi)
				}
				if sz := hi - lo; sz < minSz {
					minSz = sz
				} else if sz > maxSz {
					maxSz = sz
				}
				next = hi
			}
			if next != units {
				t.Fatalf("units=%d width=%d: ranges cover [0,%d), want [0,%d)", units, width, next, units)
			}
			if maxSz-minSz > 1 {
				t.Fatalf("units=%d width=%d: range sizes span %d..%d, want max spread 1", units, width, minSz, maxSz)
			}
		}
	}
}

// Parallel kernels are allocation-free once the pool and the transpose
// scratch are warm: tasks are value structs over a buffered channel, jobs
// and scratches recycle through free lists. Measured with a Mallocs window
// (testing.AllocsPerRun pins GOMAXPROCS to 1, which would disable the very
// fan-out under test).
func TestParallelKernelAllocsZero(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	r := rand.New(rand.NewSource(24))
	m, k, n := 64, 128, 512
	a, b := randSlice(r, m*k), randSlice(r, k*n)
	c := make([]float32, m*n)
	cbt := make([]float32, m*k)
	cat := make([]float32, k*n)

	step := func() {
		MatMul(c, a, b, m, k, n)
		MatMulBT(cbt, c, b, m, n, k)
		MatMulATAdd(cat, a, c, m, k, n)
		MatMulAT(cat, a, c, m, k, n)
	}
	for i := 0; i < 3; i++ {
		step() // warm the pool, job free list, and transpose scratch
	}

	const rounds = 10
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	for i := 0; i < rounds; i++ {
		step()
	}
	runtime.ReadMemStats(&m1)
	perRound := float64(m1.Mallocs-m0.Mallocs) / rounds
	// Budget 0; 1 absorbs a stray background-goroutine allocation.
	if perRound > 1 {
		t.Errorf("parallel kernels allocate %.1f objects per round, want 0", perRound)
	}
}
