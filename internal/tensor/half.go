// Package tensor provides the numeric substrate for the ZeRO reproduction:
// a software implementation of IEEE-754 binary16 (the "fp16" storage format
// used by mixed-precision training), flat float32 buffers, and the dense
// kernels (matmul, layernorm, gelu, softmax, cross-entropy) needed by the
// transformer model together with their manual gradients.
//
// The package deliberately mirrors what a GPU runtime gives a training
// framework: fp16 is a storage format (2 bytes per element, used for
// parameters, gradients and activations) while arithmetic happens at fp32
// precision, exactly as on V100 tensor cores.
package tensor

import "math"

// Half is an IEEE-754 binary16 value stored in its raw bit representation.
// It is the storage type for mixed-precision parameters, gradients and
// activations; all arithmetic converts through float32.
type Half uint16

// Size constants for memory accounting, in bytes.
const (
	BytesPerHalf    = 2
	BytesPerFloat32 = 4
)

const (
	halfSignMask = 0x8000
	halfExpMask  = 0x7c00
	halfManMask  = 0x03ff
	halfPosInf   = 0x7c00
	halfNaN      = 0x7e00
)

// FromFloat32 converts an fp32 value to binary16 with round-to-nearest-even,
// the rounding mode used by GPU hardware. Values above the fp16 range become
// ±Inf; NaN payloads collapse to a quiet NaN.
func FromFloat32(f float32) Half {
	b := math.Float32bits(f)
	sign := uint16(b>>16) & halfSignMask
	exp := int32(b>>23) & 0xff
	man := b & 0x7fffff

	if exp == 0xff { // Inf or NaN
		if man != 0 {
			return Half(sign | halfNaN)
		}
		return Half(sign | halfPosInf)
	}

	e := exp - 127 + 15
	switch {
	case e >= 0x1f: // overflow: round to infinity
		return Half(sign | halfPosInf)
	case e <= 0: // subnormal or zero in fp16
		if e < -10 { // too small: flush to signed zero
			return Half(sign)
		}
		man |= 0x800000 // make the implicit leading bit explicit
		shift := uint32(14 - e)
		h := uint16(man >> shift)
		rem := man & (1<<shift - 1)
		half := uint32(1) << (shift - 1)
		if rem > half || (rem == half && h&1 == 1) {
			h++
		}
		return Half(sign | h)
	default: // normal
		h := uint16(e)<<10 | uint16(man>>13)
		rem := man & 0x1fff
		if rem > 0x1000 || (rem == 0x1000 && h&1 == 1) {
			h++ // carry may roll into the exponent; that is correct RNE
		}
		return Half(sign | h)
	}
}

// Float32 converts a binary16 value back to fp32. The conversion is exact:
// every fp16 value is representable in fp32.
func (h Half) Float32() float32 {
	sign := uint32(h&halfSignMask) << 16
	exp := uint32(h>>10) & 0x1f
	man := uint32(h & halfManMask)

	switch exp {
	case 0:
		if man == 0 {
			return math.Float32frombits(sign) // signed zero
		}
		// Subnormal: normalize into an fp32 normal.
		e := uint32(127 - 15 + 1)
		for man&0x400 == 0 {
			man <<= 1
			e--
		}
		man &= halfManMask
		return math.Float32frombits(sign | e<<23 | man<<13)
	case 0x1f:
		if man == 0 {
			return math.Float32frombits(sign | 0x7f800000)
		}
		return math.Float32frombits(sign | 0x7fc00000 | man<<13)
	default:
		return math.Float32frombits(sign | (exp+112)<<23 | man<<13)
	}
}

// IsNaN reports whether h encodes a NaN.
func (h Half) IsNaN() bool {
	return h&halfExpMask == halfExpMask && h&halfManMask != 0
}

// IsInf reports whether h encodes ±Inf.
func (h Half) IsInf() bool {
	return h&halfExpMask == halfExpMask && h&halfManMask == 0
}

// MaxHalf is the largest finite binary16 value (65504).
const MaxHalf = 65504.0

// HalfBuffer is a flat fp16 storage buffer, the unit of partitioning for
// ZeRO parameters and gradients.
type HalfBuffer []Half

// NewHalfBuffer allocates a zeroed fp16 buffer of n elements.
func NewHalfBuffer(n int) HalfBuffer { return make(HalfBuffer, n) }

// Bytes returns the storage size of the buffer in bytes.
func (b HalfBuffer) Bytes() int64 { return int64(len(b)) * BytesPerHalf }

// FromFloats overwrites b with the rounded fp16 images of src.
// The two slices must have equal length.
//
// The conversion is a branch-light restatement of FromFloat32 (bit-for-bit
// identical, pinned by TestHalfFastPathsMatchReference): normal values
// round via integer arithmetic on the fp32 bits — adding 0xfff plus the
// round-to-odd bit implements round-to-nearest-even, with a carry that
// correctly rolls into the exponent — and the subnormal range rides the
// FP adder: adding 0.5 (whose ulp is exactly the fp16 subnormal spacing,
// 2⁻²⁴) makes the hardware's own RNE do the rounding. On amd64 the bulk
// runs eight lanes at a time through halfencode_amd64.s.
func (b HalfBuffer) FromFloats(src []float32) {
	if len(b) != len(src) {
		panic("tensor: HalfBuffer.FromFloats length mismatch")
	}
	fromFloatsImpl(b, src)
}

// fromFloatsScalar is the portable FromFloats body: the generic build's
// whole implementation, and the sub-vector tail on amd64.
func fromFloatsScalar(b HalfBuffer, src []float32) {
	for i, f := range src {
		u := math.Float32bits(f)
		sign := uint16(u>>16) & halfSignMask
		em := u & 0x7fffffff
		switch {
		case em >= 0x47800000: // rounds past MaxHalf, Inf, or NaN
			if em > 0x7f800000 {
				b[i] = Half(sign | halfNaN)
			} else {
				b[i] = Half(sign | halfPosInf)
			}
		case em >= 0x38800000: // fp16 normal: rebias exponent, round, pack
			em += 0xfff + (em >> 13 & 1)
			b[i] = Half(sign | uint16((em-0x38000000)>>13))
		default: // fp16 subnormal or zero
			// s = 0x3f000000 + n where n counts fp16 subnormal ulps (RNE by
			// the FP adder); n = 1024 lands exactly on the smallest normal.
			s := math.Float32frombits(em) + 0.5
			b[i] = Half(sign | uint16(math.Float32bits(s)-0x3f000000))
		}
	}
}

// ToFloats expands b into dst as fp32. The two slices must have equal length.
//
// Finite values decode with the scaling trick: placing the fp16 exponent
// and mantissa bits in the fp32 fields yields the value times 2⁻¹¹²; one
// exact power-of-two multiply rescales it, and the FP multiplier's own
// normalization handles fp16 subnormals with no bit-twiddling branch.
func (b HalfBuffer) ToFloats(dst []float32) {
	if len(b) != len(dst) {
		panic("tensor: HalfBuffer.ToFloats length mismatch")
	}
	halfDecode(dst, b)
}

// halfVal decodes one binary16 value with the same scaling trick as
// ToFloats — the scalar building block of the half-domain matmul kernels,
// bitwise identical to the vectorized decode (halfdecode_amd64.s).
func halfVal(h Half) float32 {
	em := uint32(h) & 0x7fff
	if em >= halfPosInf { // Inf or NaN
		return h.Float32()
	}
	f := math.Float32frombits(em<<13) * 0x1p112
	return math.Float32frombits(math.Float32bits(f) | uint32(h&halfSignMask)<<16)
}

// RoundHalf rounds every element of x through binary16 in place — the
// quantization applied when an fp32-computed value is stored or shipped as
// fp16. Equivalent to FromFloat32(v).Float32() per element (pinned
// bit-for-bit by TestHalfFastPathsMatchReference) in a single fused pass:
// normals round on the fp32 bits directly and never leave fp32, so no
// decode step is needed. Vectorized on amd64 (halfencode_amd64.s).
func RoundHalf(x []float32) {
	roundHalfImpl(x)
}

// roundHalfScalar is the portable RoundHalf body and the amd64 tail.
func roundHalfScalar(x []float32) {
	for i, f := range x {
		u := math.Float32bits(f)
		sign := u & 0x80000000
		em := u & 0x7fffffff
		switch {
		case em >= 0x47800000: // rounds past MaxHalf, Inf, or NaN
			if em > 0x7f800000 {
				x[i] = math.Float32frombits(sign | 0x7fc00000)
			} else {
				x[i] = math.Float32frombits(sign | 0x7f800000)
			}
		case em >= 0x38800000: // fp16 normal: mask the rounded bits in place
			em += 0xfff + (em >> 13 & 1)
			if em >= 0x47800000 { // carry rounded up to 2¹⁶ → fp16 Inf
				x[i] = math.Float32frombits(sign | 0x7f800000)
				continue
			}
			x[i] = math.Float32frombits(sign | em&^0x1fff)
		default: // fp16 subnormal or zero: round on the FP adder…
			s := math.Float32frombits(em) + 0.5
			// …and strip the 0.5 again; Sterbenz makes the subtraction exact.
			x[i] = math.Float32frombits(math.Float32bits(s-0.5) | sign)
		}
	}
}

// FromFloatsRound is the fused store of the fp16 compute path: it rounds
// src through binary16 in place (so fp32 consumers see exactly the stored
// values), writes the fp16 images into b, and reports whether any element
// overflowed the fp16 range (rounded to ±Inf, or was already non-finite).
// Per element it is RoundHalf + FromFloats + Overflowed in one pass,
// bit-for-bit (pinned by TestHalfFusedPathsMatchReference); the overflow
// flag drives dynamic loss scaling.
func (b HalfBuffer) FromFloatsRound(src []float32) bool {
	if len(b) != len(src) {
		panic("tensor: HalfBuffer.FromFloatsRound length mismatch")
	}
	return fromFloatsRoundImpl(b, src)
}

// fromFloatsRoundScalar is the portable FromFloatsRound body and the
// amd64 tail.
func fromFloatsRoundScalar(b HalfBuffer, src []float32) bool {
	overflow := false
	for i, f := range src {
		u := math.Float32bits(f)
		sign16 := uint16(u>>16) & halfSignMask
		sign := u & 0x80000000
		em := u & 0x7fffffff
		switch {
		case em >= 0x47800000: // rounds past MaxHalf, Inf, or NaN
			overflow = true
			if em > 0x7f800000 {
				b[i] = Half(sign16 | halfNaN)
				src[i] = math.Float32frombits(sign | 0x7fc00000)
			} else {
				b[i] = Half(sign16 | halfPosInf)
				src[i] = math.Float32frombits(sign | 0x7f800000)
			}
		case em >= 0x38800000: // fp16 normal: rebias, round, pack
			em += 0xfff + (em >> 13 & 1)
			if em >= 0x47800000 { // carry rounded up to 2¹⁶ → fp16 Inf
				overflow = true
				b[i] = Half(sign16 | halfPosInf)
				src[i] = math.Float32frombits(sign | 0x7f800000)
				continue
			}
			b[i] = Half(sign16 | uint16((em-0x38000000)>>13))
			src[i] = math.Float32frombits(sign | em&^0x1fff)
		default: // fp16 subnormal or zero
			s := math.Float32frombits(em) + 0.5
			b[i] = Half(sign16 | uint16(math.Float32bits(s)-0x3f000000))
			src[i] = math.Float32frombits(math.Float32bits(s-0.5) | sign)
		}
	}
	return overflow
}

// RoundHalfCheck is RoundHalf with overflow detection: it rounds x through
// binary16 in place and reports whether any element left the finite fp16
// range. Used where the fp16 compute path keeps an fp32-resident tensor
// (master-copy writeback) but still needs the loss-scaling overflow signal.
func RoundHalfCheck(x []float32) bool {
	return roundHalfCheckImpl(x)
}

// roundHalfCheckScalar is the portable RoundHalfCheck body and the amd64
// tail.
func roundHalfCheckScalar(x []float32) bool {
	overflow := false
	for i, f := range x {
		u := math.Float32bits(f)
		sign := u & 0x80000000
		em := u & 0x7fffffff
		switch {
		case em >= 0x47800000: // rounds past MaxHalf, Inf, or NaN
			overflow = true
			if em > 0x7f800000 {
				x[i] = math.Float32frombits(sign | 0x7fc00000)
			} else {
				x[i] = math.Float32frombits(sign | 0x7f800000)
			}
		case em >= 0x38800000: // fp16 normal: mask the rounded bits in place
			em += 0xfff + (em >> 13 & 1)
			if em >= 0x47800000 { // carry rounded up to 2¹⁶ → fp16 Inf
				overflow = true
				x[i] = math.Float32frombits(sign | 0x7f800000)
				continue
			}
			x[i] = math.Float32frombits(sign | em&^0x1fff)
		default: // fp16 subnormal or zero
			s := math.Float32frombits(em) + 0.5
			x[i] = math.Float32frombits(math.Float32bits(s-0.5) | sign)
		}
	}
	return overflow
}

// Floats returns a freshly allocated fp32 expansion of b.
func (b HalfBuffer) Floats() []float32 {
	out := make([]float32, len(b))
	b.ToFloats(out)
	return out
}

// Overflowed reports whether any element of b is Inf or NaN. Mixed-precision
// training uses this to detect loss-scale overflow and skip the step.
func (b HalfBuffer) Overflowed() bool {
	for _, h := range b {
		if h&halfExpMask == halfExpMask {
			return true
		}
	}
	return false
}
