package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestGELUKnownValues(t *testing.T) {
	// GELU(0)=0, GELU is ≈x for large positive x, ≈0 for large negative x,
	// and GELU(1) ≈ 0.8412.
	xs := []float32{0, 1, 6, -6}
	y := make([]float32, len(xs))
	GELU(y, xs)
	if y[0] != 0 {
		t.Errorf("GELU(0) = %v", y[0])
	}
	if math.Abs(float64(y[1])-0.8412) > 1e-3 {
		t.Errorf("GELU(1) = %v, want ≈0.8412", y[1])
	}
	if math.Abs(float64(y[2]-6)) > 1e-3 {
		t.Errorf("GELU(6) = %v, want ≈6", y[2])
	}
	if math.Abs(float64(y[3])) > 1e-3 {
		t.Errorf("GELU(-6) = %v, want ≈0", y[3])
	}
}

// Property: softmax of extreme-but-finite logits stays finite and
// normalized (the max-shift at work).
func TestSoftmaxExtremeLogits(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 8
		x := make([]float32, n)
		for i := range x {
			x[i] = float32(r.NormFloat64()) * 1e4
		}
		y := make([]float32, n)
		SoftmaxRows(y, x, 1, n)
		if HasNaNOrInf(y) {
			return false
		}
		s := Sum(y)
		return math.Abs(s-1) < 1e-4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: MatMul distributes over addition: (A)(B1+B2) == AB1 + AB2
// within float tolerance.
func TestMatMulLinearity(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m, k, n := 3+r.Intn(5), 3+r.Intn(5), 3+r.Intn(5)
		a := randSlice(r, m*k)
		b1 := randSlice(r, k*n)
		b2 := randSlice(r, k*n)
		sum := make([]float32, k*n)
		copy(sum, b1)
		Add(sum, b2)
		lhs := make([]float32, m*n)
		MatMul(lhs, a, sum, m, k, n)
		r1 := make([]float32, m*n)
		r2 := make([]float32, m*n)
		MatMul(r1, a, b1, m, k, n)
		MatMul(r2, a, b2, m, k, n)
		Add(r1, r2)
		return MaxDiff(lhs, r1) < 1e-3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Large parallel matmul (crosses the goroutine fan-out threshold) must
// match the small-path result.
func TestParallelMatMulMatchesSerialPath(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	m, k, n := 128, 96, 80 // m*k*n > parallelThreshold
	a, b := randSlice(r, m*k), randSlice(r, k*n)
	c := make([]float32, m*n)
	MatMul(c, a, b, m, k, n)
	want := refMatMul(a, b, m, k, n)
	if d := MaxDiff(c, want); d > 1e-3 {
		t.Errorf("parallel matmul differs from reference by %g", d)
	}
}

func TestLayerNormConstantRow(t *testing.T) {
	// A constant row has zero variance; eps must keep the output finite.
	m, n := 1, 8
	x := make([]float32, n)
	Fill(x, 3)
	gamma := make([]float32, n)
	Fill(gamma, 1)
	beta := make([]float32, n)
	y := make([]float32, n)
	xhat := make([]float32, n)
	invStd := make([]float32, m)
	LayerNorm(y, xhat, invStd, x, gamma, beta, m, n, 1e-5)
	if HasNaNOrInf(y) {
		t.Error("LayerNorm of constant row produced non-finite output")
	}
	for _, v := range y {
		if v != 0 {
			t.Errorf("constant row should normalize to 0, got %v", v)
		}
	}
}

func TestCrossEntropyTargetOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	probs := make([]float32, 4)
	CrossEntropy(probs, make([]float32, 4), []int{7}, 1, 4)
}

func TestMaxDiffAndCopyPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"MaxDiff": func() { MaxDiff(make([]float32, 2), make([]float32, 3)) },
		"Copy":    func() { Copy(make([]float32, 2), make([]float32, 3)) },
		"Add":     func() { Add(make([]float32, 2), make([]float32, 3)) },
		"Mul":     func() { Mul(make([]float32, 2), make([]float32, 3)) },
		"Sub":     func() { Sub(make([]float32, 2), make([]float32, 3)) },
		"Dot":     func() { Dot(make([]float32, 2), make([]float32, 3)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic on length mismatch", name)
				}
			}()
			fn()
		}()
	}
}

func TestNorm2(t *testing.T) {
	if got := Norm2([]float32{3, 4}); math.Abs(got-5) > 1e-12 {
		t.Errorf("Norm2(3,4) = %v", got)
	}
	if Norm2(nil) != 0 {
		t.Error("Norm2(nil) != 0")
	}
}
