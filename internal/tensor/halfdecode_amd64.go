//go:build amd64

package tensor

// halfDecodeSSE decodes len(dst) binary16 values into fp32 — SSE2, eight
// elements per iteration (halfdecode_amd64.s). len(dst) must be a non-zero
// multiple of 8 and len(src) >= len(dst).
//
//go:noescape
func halfDecodeSSE(dst []float32, src []Half)

// halfDecode expands src into dst as fp32 (equal lengths, guaranteed by
// callers): the vector body plus a scalar tail. Each lane computes exactly
// the halfVal formula — the same exponent-rescale multiply and the same
// special-value bit assembly — so the output is bitwise identical to the
// portable fallback (pinned over all 65536 patterns by
// TestHalfDecodeAllBitPatterns).
func halfDecode(dst []float32, src []Half) {
	n8 := len(dst) &^ 7
	if n8 > 0 {
		halfDecodeSSE(dst[:n8], src[:n8])
	}
	for i := n8; i < len(dst); i++ {
		dst[i] = halfVal(src[i])
	}
}
