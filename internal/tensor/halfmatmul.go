package tensor

// Half-domain matrix multiplication: the fp16 compute path's kernels read
// binary16 operands and accumulate/write fp32, in the three orientations
// backpropagation needs (mirroring matmul.go):
//
//	forward:     Y  = X·W      (MatMulH)
//	grad input:  dX = dY·Wᵀ    (MatMulBTH)
//	grad weight: dW = Xᵀ·dY    (MatMulATH / MatMulATAddH)
//
// Decoding happens on the fly inside the sweep — MatMulH expands B four
// rows at a time into a pooled tile riding the vector decode
// (halfdecode_amd64.s) and feeds the same ov4/axpy4 inner loops as the f32
// kernels, while A's coefficients decode scalar per fold (one halfVal per
// swept row). The transpose orientations pay one fused decode(+transpose)
// pass over the smaller operand instead, an O(m·n) pass against the
// O(m·n·k) multiply. Every output element folds its products in exactly
// the f32 kernels' order (ascending p, or ascending i for Aᵀ), so a half
// kernel on fp16 operands is bitwise identical to the matching f32 kernel
// on their decoded images — the property the fp16-path tests pin.

// MatMulH computes C[m×n] = A[m×k] · B[k×n] with fp16 operands and fp32
// output, overwriting C. Serial problems run the fused tile-decode sweep;
// above the fan-out threshold B pays one pooled vector-decode pass shared
// by every worker (an O(k·n) pass against the O(m·k·n) multiply, and the
// only alloc-deterministic shape — per-worker tiles would churn the
// bounded scratch list) while A's coefficients still decode in the sweep.
func MatMulH(c []float32, a, b HalfBuffer, m, k, n int) {
	checkDims(len(a), m*k, "A")
	checkDims(len(b), k*n, "B")
	checkDims(len(c), m*n, "C")
	if fanOut(m, m*k*n) {
		bf := getScratch(k * n)
		halfDecode(bf, b)
		runParallelH(opMMHF, c, a, bf, k, n, 0, m)
		putScratch(bf)
		return
	}
	matMulHRange(c, a, b, k, n, 0, m)
}

// matMulHRange computes rows [lo,hi) of C = A·B from fp16 operands. The
// sweep is tiled k-outer: four B rows at a time decode into a pooled fp32
// tile (vector decode), then fold into every output row of the range with
// the same ov4/axpy4 blocks as matMulRange — first tile overwrites, tail
// rows fold one at a time. Tiles apply in ascending p, so each output
// element's fold order matches matMulRange on decoded operands exactly.
func matMulHRange(c []float32, a, b HalfBuffer, k, n, lo, hi int) {
	if k == 0 {
		for i := lo; i < hi; i++ {
			Zero(c[i*n : i*n+n])
		}
		return
	}
	bt := getScratch(4 * n)
	b0, b1, b2, b3 := bt[:n], bt[n:2*n], bt[2*n:3*n], bt[3*n:4*n]
	var p int
	if k >= 4 {
		halfDecode(bt, b[:4*n])
		for i := lo; i < hi; i++ {
			ai := a[i*k : i*k+k]
			ov4(c[i*n:i*n+n], b0, b1, b2, b3,
				halfVal(ai[0]), halfVal(ai[1]), halfVal(ai[2]), halfVal(ai[3]))
		}
		for p = 4; p+4 <= k; p += 4 {
			halfDecode(bt, b[p*n:(p+4)*n])
			for i := lo; i < hi; i++ {
				ai := a[i*k : i*k+k]
				axpy4(c[i*n:i*n+n], b0, b1, b2, b3,
					halfVal(ai[p]), halfVal(ai[p+1]), halfVal(ai[p+2]), halfVal(ai[p+3]))
			}
		}
	} else {
		halfDecode(b0, b[:n])
		for i := lo; i < hi; i++ {
			ov1(c[i*n:i*n+n], b0, halfVal(a[i*k]))
		}
		p = 1
	}
	for ; p < k; p++ {
		halfDecode(b0, b[p*n:(p+1)*n])
		for i := lo; i < hi; i++ {
			axpy1(c[i*n:i*n+n], b0, halfVal(a[i*k+p]))
		}
	}
	putScratch(bt)
}

// MatMulBTH computes C[m×k] = A[m×n] · B[k×n]ᵀ with fp16 operands and fp32
// output, overwriting C — the dX = dY·Wᵀ orientation for fp16-resident dY
// and W. B decodes and transposes in one fused pooled pass, then A's rows
// sweep it with scalar coefficient decodes; fold order is ascending p,
// bitwise-matching MatMulBT on the decoded operands.
func MatMulBTH(c []float32, a, b HalfBuffer, m, n, k int) {
	checkDims(len(a), m*n, "A")
	checkDims(len(b), k*n, "B")
	checkDims(len(c), m*k, "C")
	bt := getScratch(n * k)
	transposeHalfInto(bt, b, k, n)
	if fanOut(m, m*k*n) {
		runParallelH(opMMHF, c, a, bt, n, k, 0, m)
	} else {
		matMulHFRange(c, a, bt, n, k, 0, m)
	}
	putScratch(bt)
}

// matMulHFRange computes rows [lo,hi) of C = A·B with fp16 A coefficients
// against an already-decoded fp32 B. Coefficients decode through the
// vector decoder in 256-wide stack chunks (halfDecode is bitwise halfVal
// per element, and 256 is a multiple of 4, so the ov4/axpy4 group
// boundaries — and with them the fold order — match matMulRange on the
// decoded operands exactly).
func matMulHFRange(c []float32, a HalfBuffer, b []float32, k, n, lo, hi int) {
	var buf [256]float32
	for i := lo; i < hi; i++ {
		ci := c[i*n : i*n+n]
		ai := a[i*k : i*k+k]
		if k == 0 {
			Zero(ci)
			continue
		}
		for p0 := 0; p0 < k; p0 += len(buf) {
			cl := min(len(buf), k-p0)
			af := buf[:cl]
			halfDecode(af, ai[p0:p0+cl])
			var p int
			if p0 == 0 {
				if cl >= 4 {
					ov4(ci, b[:n], b[n:2*n], b[2*n:3*n], b[3*n:4*n],
						af[0], af[1], af[2], af[3])
					p = 4
				} else {
					ov1(ci, b[:n], af[0])
					p = 1
				}
			}
			for ; p+4 <= cl; p += 4 {
				q := p0 + p
				axpy4(ci, b[q*n:q*n+n], b[(q+1)*n:(q+2)*n], b[(q+2)*n:(q+3)*n], b[(q+3)*n:(q+4)*n],
					af[p], af[p+1], af[p+2], af[p+3])
			}
			for ; p < cl; p++ {
				axpy1(ci, b[(p0+p)*n:(p0+p)*n+n], af[p])
			}
		}
	}
}

// MatMulATH computes C[k×n] = A[m×k]ᵀ · B[m×n] with fp16 operands and fp32
// output, overwriting C. The transpose walks A by column (stride-k access
// the vector decoder cannot ride), so both operands pay one pooled
// vector-decode pass up front and the sweep delegates to the f32 Aᵀ
// kernels — an O(m·(k+n)) decode against the O(m·k·n) multiply, and the
// ascending-i fold makes the result bitwise MatMulAT on the decoded
// images by construction.
func MatMulATH(c []float32, a, b HalfBuffer, m, k, n int) {
	checkDims(len(a), m*k, "A")
	checkDims(len(b), m*n, "B")
	checkDims(len(c), k*n, "C")
	bf := getScratch(m * n)
	halfDecode(bf, b)
	af := getScratch(m * k)
	halfDecode(af, a)
	if fanOut(k, m*k*n) {
		runParallel(opAT, c, af, bf, m, k, n, k)
	} else {
		matMulATRange(c, af, bf, m, k, n, 0, k)
	}
	putScratch(af)
	putScratch(bf)
}

// MatMulATAddH computes C[k×n] += A[m×k]ᵀ · B[m×n] with fp16 operands,
// accumulating into fp32 C — the weight-gradient orientation, where the
// fp32 accumulator is the mixed-precision contract's whole point. Decode
// strategy as in MatMulATH.
func MatMulATAddH(c []float32, a, b HalfBuffer, m, k, n int) {
	checkDims(len(a), m*k, "A")
	checkDims(len(b), m*n, "B")
	checkDims(len(c), k*n, "C")
	bf := getScratch(m * n)
	halfDecode(bf, b)
	af := getScratch(m * k)
	halfDecode(af, a)
	if fanOut(k, m*k*n) {
		runParallel(opATAdd, c, af, bf, m, k, n, k)
	} else {
		matMulATAddRange(c, af, bf, m, k, n, 0, k)
	}
	putScratch(af)
	putScratch(bf)
}

// transposeHalfInto writes the decoded src[rows×cols]ᵀ into dst[cols×rows]
// in one fused pass. Row segments decode through the vector decoder into a
// stack tile before scattering, so the per-element cost is the SSE lane
// decode, not a scalar halfVal; 16 consecutive r land on one dst cache
// line per output column, keeping both sides resident like transposeInto.
func transposeHalfInto(dst []float32, src HalfBuffer, rows, cols int) {
	const tr, tc = 16, 64
	var buf [tc]float32
	for r0 := 0; r0 < rows; r0 += tr {
		rMax := min(r0+tr, rows)
		for c0 := 0; c0 < cols; c0 += tc {
			cMax := min(c0+tc, cols)
			row := buf[:cMax-c0]
			for r := r0; r < rMax; r++ {
				halfDecode(row, src[r*cols+c0:r*cols+cMax])
				for ci, v := range row {
					dst[(c0+ci)*rows+r] = v
				}
			}
		}
	}
}
