// SSE2 binary16 → binary32 batch decode: the half-decode prologue the
// fp16-domain kernels bolt onto the axpy sweeps. Lanes are independent, so
// each element decodes exactly as the scalar halfVal: finite values place
// the fp16 exponent/mantissa bits in the fp32 fields and rescale with one
// exact multiply by 2¹¹² (the FP multiplier normalizes fp16 subnormals for
// free), specials rebuild sign | 0x7f800000 | mantissa<<13 with the quiet
// bit forced on NaNs. Bitwise identical to halfdecode_generic.go.

#include "textflag.h"

// Splat sources: one fp32 word each, broadcast with PSHUFD at entry.
DATA hdconst<>+0x00(SB)/4, $0x00007fff // fp16 exp+man mask
DATA hdconst<>+0x04(SB)/4, $0x80000000 // fp32 sign mask
DATA hdconst<>+0x08(SB)/4, $0x00007bff // largest finite fp16 em
DATA hdconst<>+0x0c(SB)/4, $0x77800000 // 0x1p112
DATA hdconst<>+0x10(SB)/4, $0x007fe000 // fp16 mantissa after <<13
DATA hdconst<>+0x14(SB)/4, $0x00400000 // fp32 NaN quiet bit
DATA hdconst<>+0x18(SB)/4, $0x7f800000 // fp32 exponent mask (Inf)
GLOBL hdconst<>(SB), RODATA|NOPTR, $28

// decode4 turns four zero-extended fp16 words (32-bit lanes of Xh) into
// fp32 bit patterns in place, using Xt0..Xt4 as scratch.
#define decode4(Xh, Xt0, Xt1, Xt2, Xt3, Xt4) \
	MOVO    Xh, Xt0           \ // sign: (h << 16) & 0x80000000
	PSLLL   $16, Xt0          \
	PAND    X9, Xt0           \
	PAND    X8, Xh            \ // em = h & 0x7fff
	MOVO    Xh, Xt1           \
	PCMPGTL X10, Xt1          \ // special mask: em > 0x7bff
	PSLLL   $13, Xh           \ // em << 13
	MOVO    Xh, Xt2           \
	MULPS   X11, Xt2          \ // finite: bits(float(em<<13) * 0x1p112)
	PAND    X12, Xh           \ // man13 = (em<<13) & 0x007fe000
	MOVO    Xh, Xt3           \
	PCMPEQL X15, Xt3          \ // lanes with zero mantissa (Inf)
	PANDN   X13, Xt3          \ // quiet bit where mantissa != 0 (NaN)
	POR     X14, Xh           \ // special: 0x7f800000 | man13 | quiet
	POR     Xt3, Xh           \
	PAND    Xt1, Xh           \ // blend: special where mask …
	MOVO    Xt1, Xt4          \
	PANDN   Xt2, Xt4          \ // … finite elsewhere
	POR     Xt4, Xh           \
	POR     Xt0, Xh             // | sign

// func halfDecodeSSE(dst []float32, src []Half)
// len(dst) is a non-zero multiple of 8; len(src) >= len(dst).
TEXT ·halfDecodeSSE(SB), NOSPLIT, $0-48
	MOVQ   dst_base+0(FP), DI
	MOVQ   dst_len+8(FP), CX
	MOVQ   src_base+24(FP), SI
	PXOR   X15, X15
	MOVSS  hdconst<>+0x00(SB), X8
	PSHUFD $0x00, X8, X8
	MOVSS  hdconst<>+0x04(SB), X9
	PSHUFD $0x00, X9, X9
	MOVSS  hdconst<>+0x08(SB), X10
	PSHUFD $0x00, X10, X10
	MOVSS  hdconst<>+0x0c(SB), X11
	PSHUFD $0x00, X11, X11
	MOVSS  hdconst<>+0x10(SB), X12
	PSHUFD $0x00, X12, X12
	MOVSS  hdconst<>+0x14(SB), X13
	PSHUFD $0x00, X13, X13
	MOVSS  hdconst<>+0x18(SB), X14
	PSHUFD $0x00, X14, X14
	XORQ   AX, AX

loop8:
	MOVOU (SI)(AX*2), X0 // eight halves
	MOVO  X0, X1
	PUNPCKLWL X15, X0    // h0..h3 zero-extended to 32-bit lanes
	PUNPCKHWL X15, X1    // h4..h7
	decode4(X0, X2, X3, X4, X5, X6)
	decode4(X1, X2, X3, X4, X5, X6)
	MOVUPS X0, (DI)(AX*4)
	MOVUPS X1, 16(DI)(AX*4)
	ADDQ  $8, AX
	CMPQ  AX, CX
	JL    loop8
	RET
