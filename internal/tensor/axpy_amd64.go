//go:build amd64

package tensor

// SSE implementations of the axpy inner loops (axpy_amd64.s). The vector
// lanes map to distinct output elements, so every element folds its
// products in exactly the scalar order — the assembly is bitwise
// interchangeable with the fallbacks in axpy_generic.go, and kernels built
// on these helpers produce identical results on every architecture.
//
// Callers guarantee len(b*) >= len(c); the loops run over len(c).

// axpy1 computes c[j] += a*b[j].
//
//go:noescape
func axpy1(c, b []float32, a float32)

// ov1 computes c[j] = a*b[j].
//
//go:noescape
func ov1(c, b []float32, a float32)

// axpy4 computes c[j] = c[j] + a0*b0[j] + a1*b1[j] + a2*b2[j] + a3*b3[j],
// folding left to right per element.
//
//go:noescape
func axpy4(c, b0, b1, b2, b3 []float32, a0, a1, a2, a3 float32)

// ov4 computes c[j] = a0*b0[j] + a1*b1[j] + a2*b2[j] + a3*b3[j], folding
// left to right per element.
//
//go:noescape
func ov4(c, b0, b1, b2, b3 []float32, a0, a1, a2, a3 float32)
