package tensor

import (
	"runtime"
	"sync"
)

// Dense matrix multiplication kernels with the three orientations required
// by backpropagation through a linear layer:
//
//	forward:     Y  = X·W      (MatMul)
//	grad input:  dX = dY·Wᵀ    (MatMulBT)
//	grad weight: dW = Xᵀ·dY    (MatMulAT)
//
// All matrices are row-major flat slices. The kernels block over rows and
// fan out across GOMAXPROCS goroutines when the problem is large enough to
// amortize the spawn cost — the same compute/communication granularity
// argument the ZeRO paper makes for data parallelism applies inside a rank.

// parallelThreshold is the number of fused multiply-adds below which the
// kernels stay single-threaded.
const parallelThreshold = 1 << 16

// splitRows reports whether an m-row kernel with the given total work
// should fan out across goroutines. Kept separate from parallelRows so the
// common single-threaded path calls the named range kernel directly — a
// closure passed to parallelRows escapes to the heap, and one allocation
// per matmul is exactly the per-step churn the workspace discipline exists
// to eliminate.
func splitRows(m, work int) bool {
	return work >= parallelThreshold && runtime.GOMAXPROCS(0) > 1 && m > 1
}

// parallelRows runs fn over row ranges [lo,hi) of m rows, splitting across
// available CPUs. Callers have already checked splitRows.
func parallelRows(m int, fn func(lo, hi int)) {
	procs := runtime.GOMAXPROCS(0)
	if procs > m {
		procs = m
	}
	var wg sync.WaitGroup
	chunk := (m + procs - 1) / procs
	for lo := 0; lo < m; lo += chunk {
		hi := lo + chunk
		if hi > m {
			hi = m
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// MatMul computes C[m×n] = A[m×k] · B[k×n], overwriting C.
func MatMul(c, a, b []float32, m, k, n int) {
	checkDims(len(a), m*k, "A")
	checkDims(len(b), k*n, "B")
	checkDims(len(c), m*n, "C")
	if splitRows(m, m*k*n) {
		parallelRows(m, func(lo, hi int) { matMulRange(c, a, b, k, n, lo, hi) })
		return
	}
	matMulRange(c, a, b, k, n, 0, m)
}

func matMulRange(c, a, b []float32, k, n, lo, hi int) {
	for i := lo; i < hi; i++ {
		ci := c[i*n : i*n+n]
		for x := range ci {
			ci[x] = 0
		}
		ai := a[i*k : i*k+k]
		for p, av := range ai {
			if av == 0 {
				continue
			}
			bp := b[p*n : p*n+n]
			for j, bv := range bp {
				ci[j] += av * bv
			}
		}
	}
}

// MatMulBT computes C[m×k] = A[m×n] · B[k×n]ᵀ, overwriting C.
// This is the dX = dY·Wᵀ orientation when W is stored [k×n].
func MatMulBT(c, a, b []float32, m, n, k int) {
	checkDims(len(a), m*n, "A")
	checkDims(len(b), k*n, "B")
	checkDims(len(c), m*k, "C")
	if splitRows(m, m*k*n) {
		parallelRows(m, func(lo, hi int) { matMulBTRange(c, a, b, n, k, lo, hi) })
		return
	}
	matMulBTRange(c, a, b, n, k, 0, m)
}

func matMulBTRange(c, a, b []float32, n, k, lo, hi int) {
	for i := lo; i < hi; i++ {
		ai := a[i*n : i*n+n]
		ci := c[i*k : i*k+k]
		for j := 0; j < k; j++ {
			bj := b[j*n : j*n+n]
			var s float32
			for p, av := range ai {
				s += av * bj[p]
			}
			ci[j] = s
		}
	}
}

// MatMulATAdd computes C[k×n] += A[m×k]ᵀ · B[m×n]. It accumulates rather
// than overwrites because weight gradients sum over micro-batches.
func MatMulATAdd(c, a, b []float32, m, k, n int) {
	checkDims(len(a), m*k, "A")
	checkDims(len(b), m*n, "B")
	checkDims(len(c), k*n, "C")
	// Parallelize over the k rows of C so goroutines never share output rows.
	if splitRows(k, m*k*n) {
		parallelRows(k, func(lo, hi int) { matMulATAddRange(c, a, b, m, k, n, lo, hi) })
		return
	}
	matMulATAddRange(c, a, b, m, k, n, 0, k)
}

func matMulATAddRange(c, a, b []float32, m, k, n, lo, hi int) {
	for j := lo; j < hi; j++ {
		cj := c[j*n : j*n+n]
		for i := 0; i < m; i++ {
			av := a[i*k+j]
			if av == 0 {
				continue
			}
			bi := b[i*n : i*n+n]
			for x, bv := range bi {
				cj[x] += av * bv
			}
		}
	}
}

// AddBiasRows adds bias[n] to every row of x[m×n].
func AddBiasRows(x, bias []float32, m, n int) {
	checkDims(len(x), m*n, "X")
	checkDims(len(bias), n, "bias")
	for i := 0; i < m; i++ {
		xi := x[i*n : i*n+n]
		for j, b := range bias {
			xi[j] += b
		}
	}
}

// BiasGradRows accumulates column sums of dY[m×n] into dBias[n].
func BiasGradRows(dBias, dy []float32, m, n int) {
	checkDims(len(dy), m*n, "dY")
	checkDims(len(dBias), n, "dBias")
	for i := 0; i < m; i++ {
		row := dy[i*n : i*n+n]
		for j, v := range row {
			dBias[j] += v
		}
	}
}

// Transpose writes B[n×m] = A[m×n]ᵀ.
func Transpose(b, a []float32, m, n int) {
	checkDims(len(a), m*n, "A")
	checkDims(len(b), m*n, "B")
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			b[j*m+i] = a[i*n+j]
		}
	}
}

func checkDims(got, want int, name string) {
	if got != want {
		panic("tensor: dimension mismatch for " + name)
	}
}
