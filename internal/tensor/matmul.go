package tensor

// Dense matrix multiplication kernels with the orientations required by
// backpropagation through a linear layer:
//
//	forward:     Y  = X·W      (MatMul)
//	grad input:  dX = dY·Wᵀ    (MatMulBT)
//	grad weight: dW = Xᵀ·dY    (MatMulAT / MatMulATAdd)
//
// All matrices are row-major flat slices. The kernels are built on blocked
// axpy inner loops (axpy_amd64.s / axpy_generic.go): each output row is
// swept as a contiguous vector while up to four input rows fold into it
// per pass. Blocking and vectorization only span output elements — every
// element still folds its products left to right in the same operand order
// as the naive triple loop (ascending p for MatMul/MatMulBT, ascending i
// for the Aᵀ orientations), and neither the SSE path nor the Go compiler
// contracts a*b+c into an FMA — so results are bitwise identical to the
// scalar reference on every architecture and the stage-equivalence goldens
// hold exactly.
//
// Kernels fan out over a persistent worker pool (pool.go) when the problem
// is large enough to amortize the handoff — the same compute/communication
// granularity argument the ZeRO paper makes for data parallelism applies
// inside a rank. Row kernels split output rows; the matvec case (one
// output row, e.g. single-token generate) splits output columns instead.

// parallelThreshold is the number of fused multiply-adds below which the
// kernels stay single-threaded. It doubles as the floor above which
// MatMulBT buys a transposed copy of B to run in the row-sweep form.
const parallelThreshold = 1 << 16

// MatMul computes C[m×n] = A[m×k] · B[k×n], overwriting C.
func MatMul(c, a, b []float32, m, k, n int) {
	checkDims(len(a), m*k, "A")
	checkDims(len(b), k*n, "B")
	checkDims(len(c), m*n, "C")
	work := m * k * n
	switch {
	case fanOut(m, work):
		runParallel(opMM, c, a, b, k, n, 0, m)
	case m == 1 && fanOut(n, work):
		runParallel(opMMCols, c, a, b, k, n, 0, n)
	default:
		matMulRange(c, a, b, k, n, 0, m)
	}
}

// matMulRange computes rows [lo,hi) of C = A·B in the row-major "axpy"
// orientation: C's row i is a linear combination of B's rows with
// coefficients from A's row i, folded four B rows per pass. The first
// block overwrites, saving a zeroing pass.
func matMulRange(c, a, b []float32, k, n, lo, hi int) {
	for i := lo; i < hi; i++ {
		ci := c[i*n : i*n+n]
		ai := a[i*k : i*k+k]
		var p int
		switch {
		case k >= 4:
			ov4(ci, b[:n], b[n:2*n], b[2*n:3*n], b[3*n:4*n], ai[0], ai[1], ai[2], ai[3])
			p = 4
		case k >= 1:
			ov1(ci, b[:n], ai[0])
			p = 1
		default:
			Zero(ci)
		}
		for ; p+4 <= k; p += 4 {
			axpy4(ci, b[p*n:p*n+n], b[(p+1)*n:(p+2)*n], b[(p+2)*n:(p+3)*n], b[(p+3)*n:(p+4)*n],
				ai[p], ai[p+1], ai[p+2], ai[p+3])
		}
		for ; p < k; p++ {
			axpy1(ci, b[p*n:p*n+n], ai[p])
		}
	}
}

// matMulColsRange computes columns [lo,hi) of the single-row product
// C[1×n] = A[1×k]·B — the matvec orientation. Row splitting cannot
// parallelize m == 1 however large k·n grows, so the fan-out goes over
// output columns; the accumulation order per element (ascending p) matches
// matMulRange, keeping both paths bitwise interchangeable.
func matMulColsRange(c, a, b []float32, k, n, lo, hi int) {
	ci := c[lo:hi]
	var p int
	switch {
	case k >= 4:
		ov4(ci, b[lo:hi], b[n+lo:n+hi], b[2*n+lo:2*n+hi], b[3*n+lo:3*n+hi], a[0], a[1], a[2], a[3])
		p = 4
	case k >= 1:
		ov1(ci, b[lo:hi], a[0])
		p = 1
	default:
		Zero(ci)
	}
	for ; p+4 <= k; p += 4 {
		axpy4(ci, b[p*n+lo:p*n+hi], b[(p+1)*n+lo:(p+1)*n+hi], b[(p+2)*n+lo:(p+2)*n+hi], b[(p+3)*n+lo:(p+3)*n+hi],
			a[p], a[p+1], a[p+2], a[p+3])
	}
	for ; p < k; p++ {
		axpy1(ci, b[p*n+lo:p*n+hi], a[p])
	}
}

// MatMulBT computes C[m×k] = A[m×n] · B[k×n]ᵀ, overwriting C.
// This is the dX = dY·Wᵀ orientation when W is stored [k×n].
//
// Each output element is a dot product of two rows — a shape the axpy sweep
// cannot vectorize directly. Above parallelThreshold the kernel buys a
// transposed copy of B from a pooled scratch (an O(k·n) pass against the
// O(m·n·k) multiply) and runs the row-sweep MatMul form on it; the dot and
// the transposed sweep fold every element in ascending-p order, so the two
// paths are bitwise identical and the cutover is invisible.
func MatMulBT(c, a, b []float32, m, n, k int) {
	checkDims(len(a), m*n, "A")
	checkDims(len(b), k*n, "B")
	checkDims(len(c), m*k, "C")
	work := m * k * n
	if work >= parallelThreshold {
		bt := getScratch(n * k)
		transposeInto(bt, b, k, n)
		switch {
		case fanOut(m, work):
			runParallel(opMM, c, a, bt, n, k, 0, m)
		case m == 1 && fanOut(k, work):
			runParallel(opMMCols, c, a, bt, n, k, 0, k)
		default:
			matMulRange(c, a, bt, n, k, 0, m)
		}
		putScratch(bt)
		return
	}
	matMulBTRange(c, a, b, n, k, 0, m)
}

// matMulBTRange computes rows [lo,hi) of C = A·Bᵀ in dot form, for
// problems too small to pay for a B transpose. Each output element is a
// single loop-carried add chain — latency-bound naively — so the kernel
// blocks 2 A-rows × 4 B-rows into eight independent accumulators. Every
// accumulator still sums in ascending p order.
func matMulBTRange(c, a, b []float32, n, k, lo, hi int) {
	i := lo
	for ; i+2 <= hi; i += 2 {
		a0 := a[i*n : i*n+n]
		a1 := a[(i+1)*n : (i+1)*n+n][:n]
		c0 := c[i*k : i*k+k]
		c1 := c[(i+1)*k : (i+1)*k+k]
		j := 0
		for ; j+4 <= k; j += 4 {
			b0 := b[j*n : j*n+n][:n]
			b1 := b[(j+1)*n : (j+1)*n+n][:n]
			b2 := b[(j+2)*n : (j+2)*n+n][:n]
			b3 := b[(j+3)*n : (j+3)*n+n][:n]
			var s00, s01, s02, s03, s10, s11, s12, s13 float32
			for p, av0 := range a0 {
				av1 := a1[p]
				v0, v1, v2, v3 := b0[p], b1[p], b2[p], b3[p]
				s00 += av0 * v0
				s01 += av0 * v1
				s02 += av0 * v2
				s03 += av0 * v3
				s10 += av1 * v0
				s11 += av1 * v1
				s12 += av1 * v2
				s13 += av1 * v3
			}
			c0[j], c0[j+1], c0[j+2], c0[j+3] = s00, s01, s02, s03
			c1[j], c1[j+1], c1[j+2], c1[j+3] = s10, s11, s12, s13
		}
		for ; j < k; j++ {
			bj := b[j*n : j*n+n][:n]
			var s0, s1 float32
			for p, av0 := range a0 {
				bv := bj[p]
				s0 += av0 * bv
				s1 += a1[p] * bv
			}
			c0[j], c1[j] = s0, s1
		}
	}
	for ; i < hi; i++ {
		matMulBTColsRange(c[i*k:i*k+k], a[i*n:i*n+n], b, n, k, 0, k)
	}
}

// matMulBTColsRange computes output columns [lo,hi) of the single-row
// product C[1×k] = A[1×n]·Bᵀ (dot products of a against rows of B), with
// 4-wide independent accumulators. It is the odd-row tail of
// matMulBTRange.
func matMulBTColsRange(c, a, b []float32, n, k, lo, hi int) {
	ai := a[:n]
	j := lo
	for ; j+4 <= hi; j += 4 {
		b0 := b[j*n : j*n+n][:n]
		b1 := b[(j+1)*n : (j+1)*n+n][:n]
		b2 := b[(j+2)*n : (j+2)*n+n][:n]
		b3 := b[(j+3)*n : (j+3)*n+n][:n]
		var s0, s1, s2, s3 float32
		for p, av := range ai {
			s0 += av * b0[p]
			s1 += av * b1[p]
			s2 += av * b2[p]
			s3 += av * b3[p]
		}
		c[j], c[j+1], c[j+2], c[j+3] = s0, s1, s2, s3
	}
	for ; j < hi; j++ {
		bj := b[j*n : j*n+n][:n]
		var s float32
		for p, av := range ai {
			s += av * bj[p]
		}
		c[j] = s
	}
}

// MatMulAT computes C[k×n] = A[m×k]ᵀ · B[m×n], overwriting C — the fused
// transpose-multiply. Callers that need a fresh Aᵀ·B (per-head attention
// gradients) previously paid a Zero pass plus MatMulATAdd; here the first
// input row overwrites the output instead.
func MatMulAT(c, a, b []float32, m, k, n int) {
	checkDims(len(a), m*k, "A")
	checkDims(len(b), m*n, "B")
	checkDims(len(c), k*n, "C")
	work := m * k * n
	switch {
	case fanOut(k, work):
		runParallel(opAT, c, a, b, m, k, n, k)
	case k == 1 && fanOut(n, work):
		runParallel(opATCols, c, a, b, m, n, 0, n)
	default:
		matMulATRange(c, a, b, m, k, n, 0, k)
	}
}

// matMulATRange computes rows [lo,hi) of C = Aᵀ·B. Output row j sweeps B's
// rows scaled by A's column j — the transpose happens in the coefficient
// indexing (a[i*k+j]), never as a data movement — with the first input row
// overwriting so no zero pass is needed. Fold order is ascending i,
// matching matMulATAddRange exactly.
func matMulATRange(c, a, b []float32, m, k, n, lo, hi int) {
	for j := lo; j < hi; j++ {
		cj := c[j*n : j*n+n]
		var i int
		switch {
		case m >= 4:
			ov4(cj, b[:n], b[n:2*n], b[2*n:3*n], b[3*n:4*n], a[j], a[k+j], a[2*k+j], a[3*k+j])
			i = 4
		case m >= 1:
			ov1(cj, b[:n], a[j])
			i = 1
		default:
			Zero(cj)
		}
		for ; i+4 <= m; i += 4 {
			axpy4(cj, b[i*n:i*n+n], b[(i+1)*n:(i+2)*n], b[(i+2)*n:(i+3)*n], b[(i+3)*n:(i+4)*n],
				a[i*k+j], a[(i+1)*k+j], a[(i+2)*k+j], a[(i+3)*k+j])
		}
		for ; i < m; i++ {
			axpy1(cj, b[i*n:i*n+n], a[i*k+j])
		}
	}
}

func matMulATColsRange(c, a, b []float32, m, n, lo, hi int) {
	Zero(c[lo:hi])
	matMulATAddColsRange(c, a, b, m, n, lo, hi)
}

// MatMulATAdd computes C[k×n] += A[m×k]ᵀ · B[m×n]. It accumulates rather
// than overwrites because weight gradients sum over micro-batches.
func MatMulATAdd(c, a, b []float32, m, k, n int) {
	checkDims(len(a), m*k, "A")
	checkDims(len(b), m*n, "B")
	checkDims(len(c), k*n, "C")
	work := m * k * n
	switch {
	// Parallelize over the k rows of C so goroutines never share output rows.
	case fanOut(k, work):
		runParallel(opATAdd, c, a, b, m, k, n, k)
	case k == 1 && fanOut(n, work):
		runParallel(opATAddCols, c, a, b, m, n, 0, n)
	default:
		matMulATAddRange(c, a, b, m, k, n, 0, k)
	}
}

// matMulATAddRange accumulates rows [lo,hi) of C += Aᵀ·B: the same sweep
// as matMulATRange but folding into C's existing contents. Ascending i
// order per element, bitwise-matching the naive loop.
func matMulATAddRange(c, a, b []float32, m, k, n, lo, hi int) {
	for j := lo; j < hi; j++ {
		cj := c[j*n : j*n+n]
		i := 0
		for ; i+4 <= m; i += 4 {
			axpy4(cj, b[i*n:i*n+n], b[(i+1)*n:(i+2)*n], b[(i+2)*n:(i+3)*n], b[(i+3)*n:(i+4)*n],
				a[i*k+j], a[(i+1)*k+j], a[(i+2)*k+j], a[(i+3)*k+j])
		}
		for ; i < m; i++ {
			axpy1(cj, b[i*n:i*n+n], a[i*k+j])
		}
	}
}

// matMulATAddColsRange accumulates columns [lo,hi) of the single-row
// result C[1×n] += A[m×1]ᵀ·B — the k == 1 orientation (a column vector
// against a matrix), which row splitting cannot parallelize.
func matMulATAddColsRange(c, a, b []float32, m, n, lo, hi int) {
	cw := c[lo:hi]
	i := 0
	for ; i+4 <= m; i += 4 {
		axpy4(cw, b[i*n+lo:i*n+hi], b[(i+1)*n+lo:(i+1)*n+hi], b[(i+2)*n+lo:(i+2)*n+hi], b[(i+3)*n+lo:(i+3)*n+hi],
			a[i], a[i+1], a[i+2], a[i+3])
	}
	for ; i < m; i++ {
		axpy1(cw, b[i*n+lo:i*n+hi], a[i])
	}
}

// transposeInto writes src[rows×cols]ᵀ into dst[cols×rows], tiled so both
// sides stay within a few cache lines per pass.
func transposeInto(dst, src []float32, rows, cols int) {
	const tile = 16
	for r0 := 0; r0 < rows; r0 += tile {
		rMax := min(r0+tile, rows)
		for c0 := 0; c0 < cols; c0 += tile {
			cMax := min(c0+tile, cols)
			for r := r0; r < rMax; r++ {
				row := src[r*cols+c0 : r*cols+cMax]
				for ci, v := range row {
					dst[(c0+ci)*rows+r] = v
				}
			}
		}
	}
}

// AddBiasRows adds bias[n] to every row of x[m×n].
func AddBiasRows(x, bias []float32, m, n int) {
	checkDims(len(x), m*n, "X")
	checkDims(len(bias), n, "bias")
	for i := 0; i < m; i++ {
		xi := x[i*n : i*n+n]
		for j, b := range bias {
			xi[j] += b
		}
	}
}

// BiasGradRows accumulates column sums of dY[m×n] into dBias[n].
func BiasGradRows(dBias, dy []float32, m, n int) {
	checkDims(len(dy), m*n, "dY")
	checkDims(len(dBias), n, "dBias")
	for i := 0; i < m; i++ {
		row := dy[i*n : i*n+n]
		for j, v := range row {
			dBias[j] += v
		}
	}
}

func checkDims(got, want int, name string) {
	if got != want {
		panic("tensor: dimension mismatch for " + name)
	}
}
