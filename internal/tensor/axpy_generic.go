//go:build !amd64

package tensor

// Portable axpy inner loops. These fold each output element's products in
// the same left-to-right order as the SSE versions in axpy_amd64.s, so the
// kernels produce bitwise-identical results on every architecture.

func axpy1(c, b []float32, a float32) {
	b = b[:len(c)]
	for j := range c {
		c[j] += a * b[j]
	}
}

func ov1(c, b []float32, a float32) {
	b = b[:len(c)]
	for j := range c {
		c[j] = a * b[j]
	}
}

func axpy4(c, b0, b1, b2, b3 []float32, a0, a1, a2, a3 float32) {
	b0 = b0[:len(c)]
	b1 = b1[:len(c)]
	b2 = b2[:len(c)]
	b3 = b3[:len(c)]
	for j := range c {
		c[j] = c[j] + a0*b0[j] + a1*b1[j] + a2*b2[j] + a3*b3[j]
	}
}

func ov4(c, b0, b1, b2, b3 []float32, a0, a1, a2, a3 float32) {
	b0 = b0[:len(c)]
	b1 = b1[:len(c)]
	b2 = b2[:len(c)]
	b3 = b3[:len(c)]
	for j := range c {
		c[j] = a0*b0[j] + a1*b1[j] + a2*b2[j] + a3*b3[j]
	}
}
