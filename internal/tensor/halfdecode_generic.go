//go:build !amd64

package tensor

import "math"

// halfDecode expands src into dst as fp32 (equal lengths, guaranteed by
// callers). Portable scalar loop; the amd64 build replaces the body with
// the SSE2 lane decode in halfdecode_amd64.s. Both produce the bits of
// halfVal per element, so kernels built on halfDecode are bitwise
// identical on every architecture.
func halfDecode(dst []float32, src []Half) {
	for i, h := range src {
		em := uint32(h) & 0x7fff
		if em >= halfPosInf { // Inf or NaN
			dst[i] = h.Float32()
			continue
		}
		f := math.Float32frombits(em<<13) * 0x1p112
		dst[i] = math.Float32frombits(math.Float32bits(f) | uint32(h&halfSignMask)<<16)
	}
}
