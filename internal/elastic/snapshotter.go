package elastic

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/comm"
	"repro/internal/zero"
)

// Policy configures periodic snapshotting.
type Policy struct {
	// Every takes a snapshot when Tick's step is a multiple of Every.
	// Every <= 0 disables Tick (Snap still works).
	Every int
	// Dir, when non-empty, is where rank 0 persists encoded checkpoints
	// (ckpt-<step>.zelc, written via a temp file + atomic rename). Empty
	// keeps snapshots in memory only (Latest).
	Dir string
	// Keep bounds how many checkpoint files stay in Dir; older ones are
	// pruned after each write. <= 0 keeps all.
	Keep int
}

// Snapshotter takes asynchronous, double-buffered snapshots of a running
// world. Each rank calls Tick on its own goroutine right after an optimizer
// step; the capture is a local memcpy of the rank's Ψ/N shard, and the
// gather to rank 0 rides the "checkpoint" stream so training continues while
// the snapshot is in flight. Two capture buffers alternate per rank: a Tick
// only stalls if the snapshot from two Ticks ago is still on the wire, and
// that stall is measured (StallNs) rather than hidden.
//
// Tick is a collective: every rank must call it with the same step sequence,
// or the checkpoint stream's gathers desynchronize.
type Snapshotter struct {
	pol   Policy
	world int
	slots []rankSlot
	out   [][]float32 // rank 0 gather destination, stream-worker-only

	latest  atomic.Pointer[Checkpoint]
	count   atomic.Int64
	stallNs atomic.Int64

	writeCh   chan writeReq
	writerWG  sync.WaitGroup
	closeOnce sync.Once

	mu  sync.Mutex
	err error // first asynchronous failure (assembly or write)
}

// rankSlot is one rank's double buffer. All fields are touched only by that
// rank's goroutine.
type rankSlot struct {
	state   [2]zero.ShardState
	flat    [2][]float32
	pending [2]comm.Handle
	cur     int
}

type writeReq struct {
	step int
	ck   *Checkpoint
}

// NewSnapshotter builds a snapshotter for an n-rank world. When pol.Dir is
// set it is created if missing and a writer goroutine is started.
func NewSnapshotter(pol Policy, n int) (*Snapshotter, error) {
	if n <= 0 {
		return nil, fmt.Errorf("elastic: snapshotter for world size %d", n)
	}
	s := &Snapshotter{
		pol:   pol,
		world: n,
		slots: make([]rankSlot, n),
		out:   make([][]float32, n),
	}
	if pol.Dir != "" {
		if err := os.MkdirAll(pol.Dir, 0o755); err != nil {
			return nil, fmt.Errorf("elastic: snapshot dir: %w", err)
		}
		s.writeCh = make(chan writeReq, 2)
		s.writerWG.Add(1)
		go s.writer()
	}
	return s, nil
}

// Tick snapshots when step is a multiple of the policy's Every. Collective
// across ranks (same step sequence everywhere).
func (s *Snapshotter) Tick(step int, tr *zero.Trainer) {
	if s.pol.Every <= 0 || step <= 0 || step%s.pol.Every != 0 {
		return
	}
	s.Snap(step, tr)
}

// Snap takes a snapshot unconditionally. Collective across ranks. Legal
// mid-accumulation: the capture includes the pending gradient accumulator.
func (s *Snapshotter) Snap(step int, tr *zero.Trainer) {
	r := tr.Comm().Rank()
	sl := &s.slots[r]
	i := sl.cur & 1
	// Reusing this buffer requires its previous snapshot to be off the
	// wire. Any wait here is the snapshotter's only exposure to the
	// training loop — account for it.
	if h := sl.pending[i]; h.Valid() && !h.Done() {
		t0 := time.Now()
		h.Wait()
		s.stallNs.Add(time.Since(t0).Nanoseconds())
	}
	tr.CaptureShard(&sl.state[i])
	sl.flat[i] = flattenShard(&sl.state[i], sl.flat[i][:0])
	flat := sl.flat[i]
	st := tr.Scheduler().Stream(zero.StreamCheckpoint)
	if r == 0 {
		stage := sl.state[i].Stage
		numParams := sl.state[i].NumParams
		optSteps := sl.state[i].OptSteps
		accumMicros := sl.state[i].AccumMicros
		optK := len(sl.state[i].Opt)
		sl.pending[i] = st.Submit(func(c *comm.Comm) {
			c.Gather(flat, 0, s.out)
			ck, err := s.assemble(stage, numParams, optSteps, accumMicros, optK)
			if err != nil {
				s.setErr(err)
				return
			}
			s.latest.Store(ck)
			s.count.Add(1)
			if s.writeCh != nil {
				s.writeCh <- writeReq{step: step, ck: ck}
			}
		})
	} else {
		sl.pending[i] = st.Submit(func(c *comm.Comm) {
			c.Gather(flat, 0, nil)
		})
	}
	sl.cur++
}

// flattenShard packs a shard capture as [params | opt... | accum?] into dst.
func flattenShard(sh *zero.ShardState, dst []float32) []float32 {
	dst = append(dst, sh.Params...)
	for _, st := range sh.Opt {
		dst = append(dst, st...)
	}
	if sh.AccumMicros > 0 {
		dst = append(dst, sh.Accum...)
	}
	return dst
}

// assemble builds a Checkpoint from the gathered flats in s.out. Runs on
// rank 0's checkpoint-stream worker; the gather allocates fresh slices per
// call, so the checkpoint aliases them without copying.
func (s *Snapshotter) assemble(stage zero.Stage, numParams, optSteps, accumMicros, optK int) (*Checkpoint, error) {
	ck := &Checkpoint{
		Stage:       stage,
		WorldSize:   s.world,
		NumParams:   numParams,
		OptSteps:    optSteps,
		AccumMicros: accumMicros,
		Shards:      make([]Shard, s.world),
	}
	parts := comm.Partition(numParams, s.world)
	for r, p := range parts {
		n := p.Len()
		want := n * (1 + optK)
		if accumMicros > 0 {
			want += n
		}
		flat := s.out[r]
		if len(flat) != want {
			return nil, fmt.Errorf("elastic: rank %d gathered %d floats, geometry needs %d", r, len(flat), want)
		}
		sh := &ck.Shards[r]
		sh.Lo, sh.Hi = p.Lo, p.Hi
		sh.Params = flat[:n:n]
		sh.Opt = make([][]float32, optK)
		for i := range sh.Opt {
			off := (1 + i) * n
			sh.Opt[i] = flat[off : off+n : off+n]
		}
		if accumMicros > 0 {
			off := (1 + optK) * n
			sh.Accum = flat[off : off+n : off+n]
		}
	}
	if err := ck.Validate(); err != nil {
		return nil, err
	}
	return ck, nil
}

// Flush blocks the calling rank until its in-flight snapshots are off the
// wire. Call it before the rank's world body returns, so no gather is left
// pending when the scheduler shuts down.
func (s *Snapshotter) Flush(rank int) {
	sl := &s.slots[rank]
	for i := range sl.pending {
		if sl.pending[i].Valid() {
			sl.pending[i].Wait()
			sl.pending[i] = comm.Handle{}
		}
	}
}

// Close stops the writer (flushing queued writes) and reports the first
// asynchronous error. Call after the world has finished running.
func (s *Snapshotter) Close() error {
	s.closeOnce.Do(func() {
		if s.writeCh != nil {
			close(s.writeCh)
			s.writerWG.Wait()
		}
	})
	return s.Err()
}

// Latest returns the most recently assembled checkpoint (nil before the
// first snapshot completes). The checkpoint is immutable once published.
func (s *Snapshotter) Latest() *Checkpoint { return s.latest.Load() }

// Count returns how many snapshots have completed assembly.
func (s *Snapshotter) Count() int64 { return s.count.Load() }

// StallNs returns the cumulative wall time Ticks spent blocked on in-flight
// snapshots — the snapshotter's total exposed stall.
func (s *Snapshotter) StallNs() int64 { return s.stallNs.Load() }

// Err returns the first asynchronous assembly/write error, if any.
func (s *Snapshotter) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

func (s *Snapshotter) setErr(err error) {
	s.mu.Lock()
	if s.err == nil {
		s.err = err
	}
	s.mu.Unlock()
}

// writer persists checkpoints: encode, write a temp file, rename into place
// (readers never observe a torn file), prune to the retention bound.
func (s *Snapshotter) writer() {
	defer s.writerWG.Done()
	for req := range s.writeCh {
		if err := s.writeOne(req); err != nil {
			s.setErr(err)
		}
	}
}

func (s *Snapshotter) writeOne(req writeReq) error {
	blob, err := req.ck.Encode()
	if err != nil {
		return err
	}
	final := filepath.Join(s.pol.Dir, checkpointName(req.step))
	tmp := final + ".tmp"
	if err := os.WriteFile(tmp, blob, 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, final); err != nil {
		return err
	}
	return s.prune()
}

func (s *Snapshotter) prune() error {
	if s.pol.Keep <= 0 {
		return nil
	}
	files, err := ListCheckpoints(s.pol.Dir)
	if err != nil {
		return err
	}
	for len(files) > s.pol.Keep {
		if err := os.Remove(files[0]); err != nil {
			return err
		}
		files = files[1:]
	}
	return nil
}

func checkpointName(step int) string {
	return fmt.Sprintf("ckpt-%09d.zelc", step)
}

// ListCheckpoints returns the checkpoint files in dir, oldest step first.
func ListCheckpoints(dir string) ([]string, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "ckpt-*.zelc"))
	if err != nil {
		return nil, err
	}
	sort.Strings(matches)
	return matches, nil
}

// LatestFile returns the newest checkpoint file in dir, or "" when none
// exist yet.
func LatestFile(dir string) (string, error) {
	files, err := ListCheckpoints(dir)
	if err != nil || len(files) == 0 {
		return "", err
	}
	return files[len(files)-1], nil
}

// LoadFile reads and decodes a checkpoint file.
func LoadFile(path string) (*Checkpoint, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	ck, err := Decode(blob)
	if err != nil {
		return nil, fmt.Errorf("elastic: %s: %w", filepath.Base(path), err)
	}
	return ck, nil
}
