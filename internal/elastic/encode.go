package elastic

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"math"

	"repro/internal/zero"
)

// On-disk layout (little endian), sealed with zero.SealFrame's integrity
// trailer (length + CRC32):
//
//	magic "ZELC" | version u32 | headerLen u32 | header JSON
//	| payload float32s | trailer
//
// The JSON header is the self-describing part: a human can `dd` it out and
// read the shard geometry without this package. The payload is the shards'
// float data in header order — for each shard: params, then each optimizer
// tensor, then (if accum_micros > 0) the accumulator.

var ckptMagic = [4]byte{'Z', 'E', 'L', 'C'}

// Header is the checkpoint's self-describing JSON header.
type Header struct {
	Version     int         `json:"version"`
	Stage       int         `json:"stage"`
	WorldSize   int         `json:"world_size"`
	NumParams   int         `json:"num_params"`
	OptTensors  int         `json:"opt_tensors"`
	OptSteps    int         `json:"opt_steps"`
	AccumMicros int         `json:"accum_micros"`
	Shards      []ShardInfo `json:"shards"`
}

// ShardInfo is one shard's geometry in the header.
type ShardInfo struct {
	Rank int `json:"rank"`
	Lo   int `json:"lo"`
	Hi   int `json:"hi"`
}

// header builds the JSON header for the checkpoint.
func (ck *Checkpoint) header() Header {
	h := Header{
		Version:     Version,
		Stage:       int(ck.Stage),
		WorldSize:   ck.WorldSize,
		NumParams:   ck.NumParams,
		OptTensors:  ck.optTensors(),
		OptSteps:    ck.OptSteps,
		AccumMicros: ck.AccumMicros,
		Shards:      make([]ShardInfo, len(ck.Shards)),
	}
	for r := range ck.Shards {
		h.Shards[r] = ShardInfo{Rank: r, Lo: ck.Shards[r].Lo, Hi: ck.Shards[r].Hi}
	}
	return h
}

// payloadFloats returns the number of float32s a payload with k optimizer
// tensors carries (k is passed in, not read off Shards, so this also works
// in Decode before the shards are populated).
func (ck *Checkpoint) payloadFloats(k int) int {
	per := 1 + k
	if ck.AccumMicros > 0 {
		per++
	}
	return per * ck.NumParams
}

// Encode serializes the checkpoint, sealed with the integrity trailer.
func (ck *Checkpoint) Encode() ([]byte, error) {
	if err := ck.Validate(); err != nil {
		return nil, err
	}
	hdr, err := json.Marshal(ck.header())
	if err != nil {
		return nil, fmt.Errorf("elastic: encoding header: %w", err)
	}
	size := 4 + 4 + 4 + len(hdr) + 4*ck.payloadFloats(ck.optTensors())
	buf := make([]byte, 0, size+16)
	buf = append(buf, ckptMagic[:]...)
	buf = binary.LittleEndian.AppendUint32(buf, Version)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(hdr)))
	buf = append(buf, hdr...)
	appendFloats := func(xs []float32) {
		for _, x := range xs {
			buf = binary.LittleEndian.AppendUint32(buf, math.Float32bits(x))
		}
	}
	for r := range ck.Shards {
		sh := &ck.Shards[r]
		appendFloats(sh.Params)
		for _, st := range sh.Opt {
			appendFloats(st)
		}
		if ck.AccumMicros > 0 {
			appendFloats(sh.Accum)
		}
	}
	return zero.SealFrame(buf), nil
}

// Decode deserializes a checkpoint written by Encode, verifying the
// integrity trailer, magic, version, header consistency and payload size.
func Decode(data []byte) (*Checkpoint, error) {
	payload, err := zero.OpenFrame(data)
	if err != nil {
		return nil, err
	}
	if len(payload) < 12 {
		return nil, fmt.Errorf("elastic: blob too short (%d bytes)", len(payload))
	}
	if [4]byte(payload[0:4]) != ckptMagic {
		return nil, fmt.Errorf("elastic: bad magic %q (not an elastic checkpoint)", payload[0:4])
	}
	if v := binary.LittleEndian.Uint32(payload[4:8]); v != Version {
		return nil, fmt.Errorf("elastic: unsupported checkpoint version %d (this build reads %d)", v, Version)
	}
	hlen := int(binary.LittleEndian.Uint32(payload[8:12]))
	if hlen < 0 || 12+hlen > len(payload) {
		return nil, fmt.Errorf("elastic: header length %d exceeds blob", hlen)
	}
	var h Header
	if err := json.Unmarshal(payload[12:12+hlen], &h); err != nil {
		return nil, fmt.Errorf("elastic: decoding header: %w", err)
	}
	if h.Version != Version {
		return nil, fmt.Errorf("elastic: header version %d disagrees with container version %d", h.Version, Version)
	}
	if h.WorldSize <= 0 || len(h.Shards) != h.WorldSize || h.NumParams < 0 || h.OptTensors < 0 {
		return nil, fmt.Errorf("elastic: malformed header: %+v", h)
	}
	ck := &Checkpoint{
		Stage:       zero.Stage(h.Stage),
		WorldSize:   h.WorldSize,
		NumParams:   h.NumParams,
		OptSteps:    h.OptSteps,
		AccumMicros: h.AccumMicros,
		Shards:      make([]Shard, h.WorldSize),
	}
	body := payload[12+hlen:]
	if len(body) != 4*ck.payloadFloats(h.OptTensors) {
		return nil, fmt.Errorf("elastic: payload has %d bytes, header geometry needs %d", len(body), 4*ck.payloadFloats(h.OptTensors))
	}
	off := 0
	readFloats := func(n int) []float32 {
		out := make([]float32, n)
		for i := range out {
			out[i] = math.Float32frombits(binary.LittleEndian.Uint32(body[off : off+4]))
			off += 4
		}
		return out
	}
	for r := range ck.Shards {
		info := h.Shards[r]
		sh := &ck.Shards[r]
		sh.Lo, sh.Hi = info.Lo, info.Hi
		n := sh.Hi - sh.Lo
		if n < 0 {
			return nil, fmt.Errorf("elastic: shard %d has negative range [%d,%d)", r, sh.Lo, sh.Hi)
		}
		sh.Params = readFloats(n)
		sh.Opt = make([][]float32, h.OptTensors)
		for i := range sh.Opt {
			sh.Opt[i] = readFloats(n)
		}
		if ck.AccumMicros > 0 {
			sh.Accum = readFloats(n)
		}
	}
	if err := ck.Validate(); err != nil {
		return nil, err
	}
	return ck, nil
}
