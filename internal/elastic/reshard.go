package elastic

import (
	"fmt"

	"repro/internal/comm"
)

// Reshard regroups the checkpoint's Ψ/N partitions onto M ranks and returns
// a new checkpoint; the receiver is not modified. The transform is pure
// range arithmetic — every float lands at the same flat offset it came from,
// so the reassembled state is bitwise identical at any M, and resharding at
// M == WorldSize is a deep copy. This is the ZeRO elasticity claim made
// executable: partitioned state needs no migration logic beyond regrouping.
func (ck *Checkpoint) Reshard(m int) (*Checkpoint, error) {
	if m <= 0 {
		return nil, fmt.Errorf("elastic: reshard to world size %d", m)
	}
	if err := ck.Validate(); err != nil {
		return nil, err
	}
	out := &Checkpoint{
		Stage:       ck.Stage,
		WorldSize:   m,
		NumParams:   ck.NumParams,
		OptSteps:    ck.OptSteps,
		AccumMicros: ck.AccumMicros,
		Shards:      make([]Shard, m),
	}
	k := ck.optTensors()
	parts := comm.Partition(ck.NumParams, m)
	// src walks the source shards left to right; the source ranges tile
	// [0, NumParams) in order, so each target range consumes a run of
	// consecutive source shards.
	src := 0
	for r, p := range parts {
		dst := &out.Shards[r]
		dst.Lo, dst.Hi = p.Lo, p.Hi
		dst.Params = make([]float32, dst.Len())
		dst.Opt = make([][]float32, k)
		for i := range dst.Opt {
			dst.Opt[i] = make([]float32, dst.Len())
		}
		if ck.AccumMicros > 0 {
			dst.Accum = make([]float32, dst.Len())
		}
		for src < len(ck.Shards) && ck.Shards[src].Hi <= p.Lo {
			src++
		}
		for s := src; s < len(ck.Shards); s++ {
			from := &ck.Shards[s]
			lo, hi := max(from.Lo, p.Lo), min(from.Hi, p.Hi)
			if lo >= hi {
				break
			}
			// Copy the overlap [lo, hi) from source-local to target-local
			// coordinates.
			so, to := lo-from.Lo, lo-p.Lo
			n := hi - lo
			copy(dst.Params[to:to+n], from.Params[so:so+n])
			for i := range dst.Opt {
				copy(dst.Opt[i][to:to+n], from.Opt[i][so:so+n])
			}
			if ck.AccumMicros > 0 {
				copy(dst.Accum[to:to+n], from.Accum[so:so+n])
			}
		}
	}
	return out, nil
}
